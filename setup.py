"""Legacy setup shim.

The canonical metadata lives in ``pyproject.toml``.  This file exists so the
package can be installed editable in offline environments that lack the
``wheel`` package (``pip install -e . --no-build-isolation`` falls back to
``setup.py develop``).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24", "scipy>=1.10"],
)
