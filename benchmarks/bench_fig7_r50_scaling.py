"""Paper Fig. 7: ResNet-50 time-to-solution, SGD vs K-FAC-lw vs K-FAC-opt."""

from repro.experiments.scaling_exp import run_scaling_figure

from conftest import run_and_print


def test_fig7_resnet50_scaling(benchmark):
    result = run_and_print(benchmark, run_scaling_figure, 50)
    points = result.data["points"]
    # paper: K-FAC-opt outperforms SGD by 17.7-25.2% at all scales
    for pt in points:
        assert 0.10 < pt.improvement_opt() < 0.35, f"@{pt.gpus}"
    # paper: lw between (2.8-19.1% over SGD) except possibly the largest scale
    for pt in points[:3]:
        assert pt.kfac_opt_minutes < pt.kfac_lw_minutes < pt.sgd_minutes
