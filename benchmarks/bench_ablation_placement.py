"""Ablation (§VI-C4 future work + KAISA): placement policies and fractions.

Two placement spectra over the same factor set:

- round-robin vs size-balanced (greedy LPT) assignment of factors to
  workers (the paper's §VI-C4 proposal);
- the KAISA-style ``grad_worker_frac`` sweep between LAYER_WISE
  (``f = 1/P``) and COMM_OPT (``f = 1``): per-rank eigenbasis memory must
  fall and second-stage communication must rise, strictly, as ``f``
  decreases — and the endpoints must reproduce the existing strategies,
  both in the performance model and (bit-for-bit) in real trajectories.
"""

import numpy as np

from repro.experiments.ablations import (
    run_grad_worker_frac_sweep,
    run_placement_ablation,
)
from repro.perfmodel.hardware import FRONTERA_LIKE, V100_LIKE
from repro.perfmodel.iteration import IterationModel, KfacIntervals
from repro.perfmodel.specs import resnet_spec

from conftest import run_and_print


def test_placement_policy_ablation(benchmark):
    result = run_and_print(benchmark, run_placement_ablation)
    # greedy LPT is never worse, and strictly better where imbalance exists
    im = IterationModel(resnet_spec(101), V100_LIKE, FRONTERA_LIKE)
    for p in (16, 32, 64):
        rr = im.eig_stage_time(p, "comm-opt", "round_robin")
        gr = im.eig_stage_time(p, "comm-opt", "greedy")
        assert gr <= rr + 1e-12
    assert im.eig_stage_time(16, "comm-opt", "greedy") < im.eig_stage_time(
        16, "comm-opt", "round_robin"
    )


def test_grad_worker_frac_pareto_frontier(benchmark):
    """The modeled memory/comm trade is monotone in f at P=64 (ResNet-50)."""
    result = run_and_print(benchmark, run_grad_worker_frac_sweep)
    rows = result.data["rows"]  # sorted by decreasing frac
    assert rows[0]["frac"] == 1.0 and rows[-1]["frac"] == 1.0 / 64
    for hi, lo in zip(rows, rows[1:]):
        # per-rank eigenbasis memory strictly decreases as f decreases...
        assert lo["eigenbasis_bytes_per_rank"] < hi["eigenbasis_bytes_per_rank"]
        # ...while second-stage (preconditioned-grad) comm strictly increases
        assert lo["precond_share_bytes_per_rank"] > hi["precond_share_bytes_per_rank"]
        assert lo["precond_tcomm"] >= hi["precond_tcomm"]
        # and the group eigenbasis share shrinks with the group
        assert lo["eig_tcomm"] <= hi["eig_tcomm"]


def test_graph_scheduler_beats_retired_hybrid_pipeline():
    """The task-graph route prices the HYBRID group share as schedulable
    nodes: at P=64, f=0.5 its exposed eig comm is *strictly* below the
    retired hand-written hybrid pipeline's (which ran the share
    synchronously), and never worse anywhere on the sweep at P >= 4."""
    im = IterationModel(resnet_spec(50), V100_LIKE, FRONTERA_LIKE)
    legacy = im.stage_profile(64, pipelined=True, grad_worker_frac=0.5)
    graph = im.stage_profile(64, scheduler="graph", grad_worker_frac=0.5)
    assert graph.eig_tcomm_exposed < legacy.eig_tcomm_exposed
    assert graph.factor_tcomm_exposed <= legacy.factor_tcomm_exposed
    intervals = KfacIntervals.from_eig_interval(100)
    for p in (4, 16, 64):
        for frac in (1.0 / p, 0.25, 0.5, 1.0):
            g = im.kfac_iteration_time(
                p, "hybrid", intervals, grad_worker_frac=frac, scheduler="graph"
            )
            legacy_pipe = im.kfac_iteration_time(
                p, "hybrid", intervals, grad_worker_frac=frac, pipelined=True
            )
            assert g <= legacy_pipe + 1e-12, (p, frac)


def test_grad_worker_frac_model_endpoints():
    """f=1 reproduces the COMM_OPT model exactly; f=1/P the LAYER_WISE loads."""
    im = IterationModel(resnet_spec(50), V100_LIKE, FRONTERA_LIKE)
    intervals = KfacIntervals.from_eig_interval(100)
    p = 64
    for policy in ("round_robin", "greedy"):
        hybrid = im.kfac_iteration_time(
            p, "hybrid", intervals, policy=policy, grad_worker_frac=1.0
        )
        comm_opt = im.kfac_iteration_time(p, "comm-opt", intervals, policy=policy)
        assert hybrid == comm_opt
    assert im.hybrid_eig_stage_time(p, 1 / p) == im.eig_stage_time(p, "layer-wise")
    assert im.hybrid_precondition_time(p, 1 / p) == im.precondition_time_layer_wise(p)
    assert im.eig_group_comm_time(p, 1 / p) == 0.0
    assert im.precond_share_time(p, 1.0) == 0.0


def test_grad_worker_frac_trajectory_endpoints_bit_match():
    """Real P=4 trajectories: f=1 == COMM_OPT and f=1/P == LAYER_WISE, bitwise."""
    import sys
    from pathlib import Path

    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tests"))
    from test_grad_worker_frac import run_hybrid

    ref_opt = run_hybrid(4, strategy="comm-opt")
    ref_lw = run_hybrid(4, strategy="layer-wise")
    f_one = run_hybrid(4, grad_worker_frac=1.0)
    f_lw = run_hybrid(4, grad_worker_frac=0.25)
    for key in ref_opt:
        assert np.array_equal(f_one[key], ref_opt[key]), key
        assert np.array_equal(f_lw[key], ref_lw[key]), key
