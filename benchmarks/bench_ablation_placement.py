"""Ablation (§VI-C4 future work): round-robin vs size-balanced placement."""

from repro.experiments.ablations import run_placement_ablation
from repro.perfmodel.hardware import FRONTERA_LIKE, V100_LIKE
from repro.perfmodel.iteration import IterationModel
from repro.perfmodel.specs import resnet_spec

from conftest import run_and_print


def test_placement_policy_ablation(benchmark):
    result = run_and_print(benchmark, run_placement_ablation)
    # greedy LPT is never worse, and strictly better where imbalance exists
    im = IterationModel(resnet_spec(101), V100_LIKE, FRONTERA_LIKE)
    for p in (16, 32, 64):
        rr = im.eig_stage_time(p, "comm-opt", "round_robin")
        gr = im.eig_stage_time(p, "comm-opt", "greedy")
        assert gr <= rr + 1e-12
    assert im.eig_stage_time(16, "comm-opt", "greedy") < im.eig_stage_time(
        16, "comm-opt", "round_robin"
    )
