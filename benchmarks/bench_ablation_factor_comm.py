"""Ablation (§V-C): factor refresh interval vs accuracy."""

from repro.experiments.ablations import run_factor_comm_ablation

from conftest import run_and_print


def test_factor_comm_frequency_ablation(benchmark):
    result = run_and_print(benchmark, run_factor_comm_ablation, scale="tiny")
    accs = result.data["accuracy"]
    # the paper's claim: refreshing factors at 1/10 the eig interval is as
    # good as refreshing them every step (within noise at tiny scale)
    assert abs(accs["eig/10 (paper)"] - accs["every step"]) < 0.25
