"""Paper Table III + Fig. 6: accuracy & modeled time vs K-FAC update frequency."""

from repro.experiments.update_freq import run_table3_fig6

from conftest import run_and_print


def test_table3_fig6_update_frequency(benchmark):
    result = run_and_print(
        benchmark, run_table3_fig6, scale="tiny", intervals=(2, 10)
    )
    # modeled time decreases as the interval grows (staleness trade-off)
    for row in result.data["modeled_minutes"].values():
        kfac_times = [float(v) for v in row[1:]]
        assert kfac_times == sorted(kfac_times, reverse=True)
