"""Paper Table IV: K-FAC-opt improvement over SGD, models x scales."""

from repro.experiments.scaling_exp import run_table4

from conftest import run_and_print


def test_table4_improvement_matrix(benchmark):
    result = run_and_print(benchmark, run_table4)
    table = result.data["model"]
    # improvement decreases with model depth at every scale
    for i in range(5):
        assert table[50][i] > table[101][i] > table[152][i]
    # negative corner reproduced
    assert table[152][-1] < 0
