"""Paper Table VI: min/max eigendecomposition worker speedup (imbalance)."""

from repro.experiments.profile_exp import run_table6
from repro.perfmodel.scaling import worker_speedup_table

from conftest import run_and_print


def test_table6_worker_speedup(benchmark):
    result = run_and_print(benchmark, run_table6)
    for depth in (50, 101, 152):
        speedups = worker_speedup_table(depth)
        mn64, mx64 = speedups[64]
        # fastest workers speed up far more than the slowest (paper:
        # 6.18-8.27x vs 1.26-1.85x going 16 -> 64)
        assert mx64 / mn64 > 3.0, f"ResNet-{depth}"
