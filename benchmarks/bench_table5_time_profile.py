"""Paper Table V: factor & eigendecomposition stage time profile.

Also exercises the pipelined-engine accounting: with overlap enabled the
*exposed* factor/eig communication must be strictly below the synchronous
cost at every world size >= 4 (the SPD-KFAC savings the async engine
recovers), without changing any synchronous-path numbers.
"""

from repro.experiments.profile_exp import run_table5
from repro.perfmodel.hardware import FRONTERA_LIKE, V100_LIKE
from repro.perfmodel.iteration import IterationModel
from repro.perfmodel.specs import resnet_spec

from conftest import run_and_print


def test_table5_stage_profile(benchmark):
    result = run_and_print(benchmark, run_table5)
    # shape criteria from the paper's measurements:
    for depth in (50, 101, 152):
        im = IterationModel(resnet_spec(depth), V100_LIKE, FRONTERA_LIKE)
        # factor compute constant in GPU count
        assert im.factor_compute_time() == im.factor_compute_time()
        # eig compute decreases with GPU count
        assert im.eig_stage_time(16, "comm-opt") >= im.eig_stage_time(64, "comm-opt")
        # comm roughly flat across scales (within 10%)
        c16, c64 = im.factor_comm_time(16), im.factor_comm_time(64)
        assert abs(c64 - c16) / c16 < 0.10
        # pipelining strictly lowers exposed comm at world_size >= 4
        for p in (4, 16, 32, 64):
            sync = im.stage_profile(p)
            pipe = im.stage_profile(p, pipelined=True)
            assert pipe.factor_tcomm_exposed < sync.factor_tcomm
            assert pipe.eig_tcomm_exposed < sync.eig_tcomm
            # the overlap never rewrites the synchronous costs themselves
            assert pipe.factor_tcomm == sync.factor_tcomm
            assert pipe.eig_tcomm == sync.eig_tcomm
            assert pipe.hidden_comm > 0.0
            # the symmetric fast path ships strictly fewer factor bytes
            # (and therefore strictly less factor comm time) than full
            packed = im.stage_profile(p, pipelined=True, symmetric=True)
            assert packed.factor_comm_payload_bytes < sync.factor_comm_payload_bytes
            assert packed.factor_tcomm < sync.factor_tcomm
            # the task-graph scheduler is never worse than the retired
            # hand-written pipelines it replaced, at every world size >= 4
            graph = im.stage_profile(p, scheduler="graph")
            assert graph.factor_tcomm_exposed <= pipe.factor_tcomm_exposed
            assert graph.eig_tcomm_exposed <= pipe.eig_tcomm_exposed
            hybrid_legacy = im.stage_profile(p, pipelined=True, grad_worker_frac=0.5)
            hybrid_graph = im.stage_profile(p, scheduler="graph", grad_worker_frac=0.5)
            assert hybrid_graph.factor_tcomm_exposed <= hybrid_legacy.factor_tcomm_exposed
            assert hybrid_graph.eig_tcomm_exposed <= hybrid_legacy.eig_tcomm_exposed
    # the experiment artifact carries the exposed/hidden accounting
    assert all(h > 0.0 for h in result.data["hidden"].values())
    # ... and the packed-vs-full factor payloads (packed strictly lower)
    for depth in (50, 101, 152):
        assert (
            result.data["factor_payload_packed_bytes"][depth]
            < result.data["factor_payload_bytes"][depth]
        )
