"""Paper Table I: inverse vs eigendecomposition K-FAC across batch sizes."""

from repro.experiments.correctness import run_table1

from conftest import run_and_print


def test_table1_inverse_vs_eigen(benchmark):
    result = run_and_print(benchmark, run_table1, scale="tiny")
    accs = result.data["accuracy"]
    assert len(accs["K-FAC w/ Eigen-decomp."]) == 3
    # shape criterion (soft at tiny scale): eigen K-FAC at the largest batch
    # must not collapse to chance while inverse may
    assert accs["K-FAC w/ Eigen-decomp."][-1] >= 0.1
