"""Shared helpers for the benchmark harness.

Every paper table/figure has one bench module (see DESIGN.md §4).  Bench
functions regenerate the artifact once (``benchmark.pedantic`` with a
single round — the artifact generation itself is the thing being timed)
and print the same rows/series the paper reports, so ``pytest benchmarks/
--benchmark-only -s`` doubles as the reproduction harness.

Training-based benches run the ``tiny`` preset to stay CI-fast; the
recorded ``small``-preset results live in EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest


def run_and_print(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under the benchmark timer, print it."""
    result = benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
    print()
    print(result.render())
    return result
