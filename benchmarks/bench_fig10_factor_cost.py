"""Paper Fig. 10: factor computation time vs model complexity."""

from repro.experiments.profile_exp import run_fig10

from conftest import run_and_print


def test_fig10_factor_computation_superlinear(benchmark):
    result = run_and_print(benchmark, run_fig10)
    times = result.data["times_ms"]
    params = result.data["params_m"]
    assert times == sorted(times)
    assert times[-1] / times[0] > params[-1] / params[0]
