"""Paper Fig. 5: ImageNet-like validation curves, K-FAC (55-style) vs SGD (90-style)."""

from repro.experiments.correctness import run_fig5

from conftest import run_and_print


def test_fig5_imagenet_like_curves(benchmark):
    result = run_and_print(benchmark, run_fig5, scale="tiny")
    kx, ky = result.data["kfac_curve"]
    sx, sy = result.data["sgd_curve"]
    # K-FAC's epoch budget is the paper's 55:90 ratio of SGD's
    assert len(kx) < len(sx)
