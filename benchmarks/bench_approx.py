"""Block-diagonal approximation costs — emits BENCH_approx.json.

Two views of the ``KFAC(diag_blocks=k)`` eigendecomposition saving:

- **modeled** — ``IterationModel.stage_profile(diag_blocks=k)`` at
  ResNet-50/ImageNet scale: the slowest-worker eig stage time and the
  tri-packed factor wire payload must both shrink strictly as the block
  count grows (the widest-first policy splits the widest factors first,
  so every step of the sweep touches the critical-path tasks);
- **measured** — wall time of a real symmetric eigendecomposition of
  ResNet-50's widest factor (the 4608-dim stage-3 3x3 conv ``A``),
  whole vs split into the same diagonal blocks ``plan_block_bounds``
  produces.  The measured per-k total must decrease strictly too —
  the ``k^2`` cubic-cost reduction is what the approximation banks on.

The measurement uses SciPy's ``evr`` driver when SciPy is available (the
fastest symmetric-eig kernel in the image, keeping the k=1 leg CI-sized)
and falls back to ``numpy.linalg.eigh`` on a 2304-dim slice otherwise.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.approx.blocks import plan_block_bounds
from repro.perfmodel.hardware import FRONTERA_LIKE, V100_LIKE
from repro.perfmodel.iteration import IterationModel
from repro.perfmodel.specs import resnet_spec

try:
    import scipy.linalg as _sla
except ImportError:  # pragma: no cover - image always has scipy
    _sla = None

ARTIFACT = Path("BENCH_approx.json")
BLOCKS = (1, 2, 4)

#: ResNet-50's widest factor: the stage-3 bottleneck 3x3 conv A (512*3*3).
#: Without scipy the k=1 leg at 4608 takes minutes under reference
#: LAPACK, so the numpy fallback measures the 256*3*3 stage-2 dim instead.
WIDEST_DIM = 4608
FALLBACK_DIM = 2304


def _eigh(mat: np.ndarray) -> None:
    if _sla is not None:
        _sla.eigh(mat, driver="evr")
    else:
        np.linalg.eigh(mat)


def _measure_blocked_eig(dim: int, blocks: tuple[int, ...]) -> dict[str, float]:
    rng = np.random.default_rng(0)
    x = rng.normal(size=(dim, 64)).astype(np.float32)
    factor = x @ x.T / 64 + np.eye(dim, dtype=np.float32)
    times: dict[str, float] = {}
    for k in blocks:
        (bounds,) = plan_block_bounds((dim,), k)
        t0 = time.perf_counter()
        for lo, hi in bounds:
            _eigh(np.ascontiguousarray(factor[lo:hi, lo:hi]))
        times[str(k)] = time.perf_counter() - t0
    return times


def _collect_modeled() -> dict[str, dict[str, float]]:
    im = IterationModel(resnet_spec(50), V100_LIKE, FRONTERA_LIKE)
    rows: dict[str, dict[str, float]] = {}
    for k in BLOCKS:
        sp = im.stage_profile(64, policy="greedy", diag_blocks=k)
        rows[str(k)] = {
            "eig_stage_s": sp.eig_tcomp,
            "eig_comm_s": sp.eig_tcomm,
            "factor_payload_bytes": float(
                im.factor_comm_payload_bytes(packed=True, diag_blocks=k)
            ),
        }
    return rows


def _build_artifact() -> dict:
    dim = WIDEST_DIM if _sla is not None else FALLBACK_DIM
    return {
        "blocks": list(BLOCKS),
        "measured_dim": dim,
        "measured_eig_s": _measure_blocked_eig(dim, BLOCKS),
        "modeled_resnet50_p64": _collect_modeled(),
    }


def test_approx_artifact(benchmark):
    data = benchmark.pedantic(_build_artifact, rounds=1, iterations=1)

    modeled = data["modeled_resnet50_p64"]
    measured = data["measured_eig_s"]
    for prev, k in zip(BLOCKS, BLOCKS[1:]):
        # modeled: the slowest-worker eig stage and the wire both shrink
        assert modeled[str(k)]["eig_stage_s"] < modeled[str(prev)]["eig_stage_s"]
        assert (
            modeled[str(k)]["factor_payload_bytes"]
            < modeled[str(prev)]["factor_payload_bytes"]
        )
        # measured: the k^2 cubic-cost reduction is real on this machine
        assert measured[str(k)] < measured[str(prev)]

    ARTIFACT.write_text(json.dumps(data, indent=2, sort_keys=True))
    print(f"\nwrote {ARTIFACT.resolve()}")
    for k in BLOCKS:
        print(
            f"  k={k}: measured {measured[str(k)]:.2f}s   "
            f"modeled stage {modeled[str(k)]['eig_stage_s'] * 1e3:.1f}ms"
        )
