"""Paper Table II + Fig. 4: K-FAC vs SGD accuracy across worker counts."""

from repro.experiments.correctness import run_table2_fig4

from conftest import run_and_print


def test_table2_fig4_worker_scaling(benchmark):
    result = run_and_print(
        benchmark, run_table2_fig4, scale="tiny", worker_counts=(1, 2, 4)
    )
    assert len(result.data["sgd"]) == 3
    assert len(result.data["kfac"]) == 3
