"""Transformer workload costs — emits BENCH_workloads.json.

The widest factor of a transformer is the token-embedding activation
covariance: ``(vocab, vocab)`` against the model dimension's few hundred.
Two views of what ``KFAC(diag_blocks=k)`` buys on it:

- **modeled** — ``IterationModel.stage_profile(diag_blocks=k)`` over
  ``transformer_spec()`` (vocab 4096, dim 256, depth 4): the
  slowest-worker eig stage time and the tri-packed factor wire payload
  must both shrink strictly as the block count grows — the widest-first
  policy splits the embedding factor first;
- **measured** — wall time of a real symmetric eigendecomposition of a
  *genuine* embedding ``A`` factor (``embedding_factor_A`` over random
  token indices, damped), whole vs split into the same diagonal blocks
  ``plan_block_bounds`` produces.  The measured per-k total must
  decrease strictly too.

The measurement uses SciPy's ``evr`` driver when SciPy is available and
falls back to ``numpy.linalg.eigh`` at half the vocabulary otherwise.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.approx.blocks import plan_block_bounds
from repro.core.factors import embedding_factor_A
from repro.perfmodel.hardware import FRONTERA_LIKE, V100_LIKE
from repro.perfmodel.iteration import IterationModel
from repro.perfmodel.specs import transformer_spec

try:
    import scipy.linalg as _sla
except ImportError:  # pragma: no cover - image always has scipy
    _sla = None

ARTIFACT = Path("BENCH_workloads.json")
BLOCKS = (1, 2, 4)

#: transformer_spec()'s vocabulary — the widest factor in the model.
VOCAB = 4096
FALLBACK_VOCAB = 2048
DAMPING = 0.01


def _eigh(mat: np.ndarray) -> None:
    if _sla is not None:
        _sla.eigh(mat, driver="evr")
    else:
        np.linalg.eigh(mat)


def _measure_blocked_embedding_eig(
    vocab: int, blocks: tuple[int, ...]
) -> dict[str, float]:
    """Eig a genuine (damped) embedding A factor, whole vs blocked."""
    rng = np.random.default_rng(0)
    # a realistic token batch: 256 sequences of 512 tokens, zipf-ish skew
    idx = rng.integers(0, vocab, size=(256, 512)) ** 2 // vocab
    factor = embedding_factor_A(idx, vocab)
    factor += DAMPING * np.eye(vocab, dtype=factor.dtype)
    times: dict[str, float] = {}
    for k in blocks:
        (bounds,) = plan_block_bounds((vocab,), k)
        t0 = time.perf_counter()
        for lo, hi in bounds:
            _eigh(np.ascontiguousarray(factor[lo:hi, lo:hi]))
        times[str(k)] = time.perf_counter() - t0
    return times


def _collect_modeled() -> dict[str, dict[str, float]]:
    im = IterationModel(transformer_spec(), V100_LIKE, FRONTERA_LIKE)
    rows: dict[str, dict[str, float]] = {}
    for k in BLOCKS:
        sp = im.stage_profile(16, policy="greedy", diag_blocks=k)
        rows[str(k)] = {
            "eig_stage_s": sp.eig_tcomp,
            "eig_comm_s": sp.eig_tcomm,
            "factor_payload_bytes": float(
                im.factor_comm_payload_bytes(packed=True, diag_blocks=k)
            ),
        }
    return rows


def _build_artifact() -> dict:
    vocab = VOCAB if _sla is not None else FALLBACK_VOCAB
    return {
        "blocks": list(BLOCKS),
        "measured_vocab": vocab,
        "measured_embedding_eig_s": _measure_blocked_embedding_eig(vocab, BLOCKS),
        "modeled_transformer_p16": _collect_modeled(),
    }


def test_workloads_artifact(benchmark):
    data = benchmark.pedantic(_build_artifact, rounds=1, iterations=1)

    modeled = data["modeled_transformer_p16"]
    measured = data["measured_embedding_eig_s"]
    for prev, k in zip(BLOCKS, BLOCKS[1:]):
        # modeled: the slowest-worker eig stage and the wire both shrink
        assert modeled[str(k)]["eig_stage_s"] < modeled[str(prev)]["eig_stage_s"]
        assert (
            modeled[str(k)]["factor_payload_bytes"]
            < modeled[str(prev)]["factor_payload_bytes"]
        )
        # measured: blocking the real embedding factor pays on this machine
        assert measured[str(k)] < measured[str(prev)]

    ARTIFACT.write_text(json.dumps(data, indent=2, sort_keys=True))
    print(f"\nwrote {ARTIFACT.resolve()}")
    for k in BLOCKS:
        print(
            f"  k={k}: measured {measured[str(k)]:.2f}s   "
            f"modeled stage {modeled[str(k)]['eig_stage_s'] * 1e3:.1f}ms"
        )
