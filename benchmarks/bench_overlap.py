"""Overlap accounting for the task-graph scheduler — emits BENCH_overlap.json.

Two views of the same exposed-vs-hidden split:

- **measured** — real tiny-CNN runs through the drivers: the
  ``World.overlap`` ledger per phase and the per-task-kind profile, for
  the synchronous route, the graph route on COMM_OPT (P = 2, buckets
  small enough that the tiny model still splits into pipeline chunks),
  and the graph route on HYBRID ``f = 0.5`` at P = 4 (whose hidden
  ``eig_comm`` is the new capability — the retired hand-written hybrid
  pipeline ran its group shares synchronously and always reported zero
  there);
- **modeled** — ``IterationModel.stage_profile(scheduler=...)`` at
  ResNet-50/ImageNet scale for P in {4, 16, 64}, asserting the graph
  route's exposed comm never exceeds the retired pipelines'.

The JSON artifact lands next to the working directory as
``BENCH_overlap.json`` so the CI bench matrix can archive it alongside
``BENCH_micro.json``.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tests"))

from repro.comm.engine import task_overlap_profile
from repro.perfmodel.hardware import FRONTERA_LIKE, V100_LIKE
from repro.perfmodel.iteration import IterationModel
from repro.perfmodel.specs import resnet_spec

ARTIFACT = Path("BENCH_overlap.json")
PHASES = ("factor_comm", "eig_comm", "precond_comm")


def _measured_row(world) -> dict:
    return {
        "phases": {
            phase: {
                "exposed": world.overlap.exposed(phase),
                "hidden": world.overlap.hidden(phase),
            }
            for phase in PHASES
        },
        "tasks": task_overlap_profile(world.overlap),
    }


def _collect_measured() -> dict:
    from test_grad_worker_frac import run_hybrid

    rows = {}
    for name, p, kw in (
        ("comm-opt/sync", 4, {"strategy": "comm-opt", "scheduler": "sync"}),
        # P=2 + small buckets: every rank owns factors in every pipeline
        # chunk of the tiny model, so factor overlap is visible
        (
            "comm-opt/graph",
            2,
            {"strategy": "comm-opt", "scheduler": "graph", "bucket_bytes": 1 << 12},
        ),
        (
            "hybrid-0.5/graph",
            4,
            {"strategy": "hybrid", "grad_worker_frac": 0.5, "scheduler": "graph"},
        ),
    ):
        _, world = run_hybrid(p, steps=2, return_world=True, **kw)
        rows[name] = _measured_row(world)
    return rows


def _collect_modeled() -> dict:
    im = IterationModel(resnet_spec(50), V100_LIKE, FRONTERA_LIKE)
    rows = {}
    for p in (4, 16, 64):
        sync = im.stage_profile(p, scheduler="sync")
        graph = im.stage_profile(p, scheduler="graph")
        hy_legacy = im.stage_profile(p, pipelined=True, grad_worker_frac=0.5)
        hy_graph = im.stage_profile(p, scheduler="graph", grad_worker_frac=0.5)
        rows[str(p)] = {
            "comm_opt": {
                "factor_exposed_sync": sync.factor_tcomm,
                "factor_exposed_graph": graph.factor_tcomm_exposed,
                "eig_exposed_sync": sync.eig_tcomm,
                "eig_exposed_graph": graph.eig_tcomm_exposed,
            },
            "hybrid_0.5": {
                "eig_exposed_retired_pipeline": hy_legacy.eig_tcomm_exposed,
                "eig_exposed_graph": hy_graph.eig_tcomm_exposed,
                "factor_exposed_graph": hy_graph.factor_tcomm_exposed,
            },
        }
    return rows


def _build_artifact() -> dict:
    return {"measured_p4": _collect_measured(), "modeled_resnet50": _collect_modeled()}


def test_overlap_artifact(benchmark):
    data = benchmark.pedantic(_build_artifact, rounds=1, iterations=1)

    measured = data["measured_p4"]
    # the synchronous route never hides anything
    assert all(
        row["hidden"] == 0.0 for row in measured["comm-opt/sync"]["phases"].values()
    )
    # the graph route hides factor comm behind eigendecompositions
    assert measured["comm-opt/graph"]["phases"]["factor_comm"]["hidden"] > 0.0
    assert measured["comm-opt/graph"]["phases"]["eig_comm"]["hidden"] > 0.0
    # NEW capability: hybrid group shares overlap (hidden eig_comm at P=4)
    hybrid = measured["hybrid-0.5/graph"]
    assert hybrid["phases"]["eig_comm"]["hidden"] > 0.0
    assert hybrid["tasks"]["EigShare"]["hidden"] > 0.0

    modeled = data["modeled_resnet50"]
    for p, row in modeled.items():
        co = row["comm_opt"]
        assert co["factor_exposed_graph"] < co["factor_exposed_sync"], p
        assert co["eig_exposed_graph"] < co["eig_exposed_sync"], p
        hy = row["hybrid_0.5"]
        assert hy["eig_exposed_graph"] < hy["eig_exposed_retired_pipeline"], p

    ARTIFACT.write_text(json.dumps(data, indent=2, sort_keys=True))
    print(f"\nwrote {ARTIFACT.resolve()}")
