"""Microbenchmarks of the hot kernels (real timing, multiple rounds).

These are genuine pytest-benchmark measurements of the library's compute
primitives: im2col, conv forward/backward, factor computation,
eigendecomposition, eigen-basis preconditioning, and ring allreduce —
plus the symmetry fast path: syrk-vs-GEMM Gram products and
triangular-packed vs full factor allreduce at real ResNet-50 factor
shapes.  CI runs this file as a smoke job and uploads the
``BENCH_micro.json`` artifact so the perf trajectory is tracked across
PRs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.comm.collectives import ring_allreduce
from repro.comm.fusion import tri_pack, tri_unpack
from repro.core.factors import conv2d_factor_A, conv2d_factor_G
from repro.core.inverse import eigendecompose, precondition_eigen
from repro.nn.layers import Conv2d
from repro.tensor.gram import gram
from repro.tensor.im2col import im2col

RNG = np.random.default_rng(0)

#: real ResNet-50 Gram shapes (rows = batch 8 x spatial L, cols = a_dim):
#: a 3x3 stage-1 conv (64ch @ 56^2 / batch-of-2 slice) and the widest 3x3
#: conv's factor dimension (512*3*3 = 4608) at a small row count.
R50_GRAM_SHAPES = {
    "conv2_3x3": (8 * 28 * 28, 64 * 3 * 3),  # tall-skinny: rows dominate
    "conv5_3x3": (2 * 7 * 7, 512 * 3 * 3),  # wide: factor dim dominates
}

#: ResNet-50 factor side lengths for the packed-allreduce comparison:
#: 576 = 64*3*3 (early 3x3 conv A), 2304 = 256*3*3 (stage-3 conv A).
R50_FACTOR_DIMS = (576, 2304)


def test_im2col_kernel(benchmark):
    x = RNG.normal(size=(16, 16, 16, 16)).astype(np.float32)
    benchmark(im2col, x, (3, 3), (1, 1), (1, 1))


def test_conv_forward(benchmark):
    conv = Conv2d(16, 32, 3, padding=1, rng=RNG)
    x = RNG.normal(size=(8, 16, 16, 16)).astype(np.float32)
    benchmark(conv.forward, x)


def test_conv_backward(benchmark):
    conv = Conv2d(16, 32, 3, padding=1, rng=RNG)
    x = RNG.normal(size=(8, 16, 16, 16)).astype(np.float32)
    g = RNG.normal(size=conv.out_shape(x.shape)).astype(np.float32)

    # backward consumes the cached patch matrix (recycled into the
    # workspace arena), so each round re-primes with a fresh forward
    def setup():
        conv.zero_grad()
        conv.forward(x)
        return (g,), {}

    benchmark.pedantic(conv.backward, setup=setup, rounds=20)


def test_conv_factor_A(benchmark):
    x = RNG.normal(size=(16, 16, 12, 12)).astype(np.float32)
    benchmark(conv2d_factor_A, x, (3, 3), (1, 1), (1, 1), False)


def test_conv_factor_G(benchmark):
    g = RNG.normal(size=(16, 32, 12, 12)).astype(np.float32)
    benchmark(conv2d_factor_G, g)


@pytest.mark.parametrize("dim", [64, 256])
def test_eigendecomposition(benchmark, dim):
    m = RNG.normal(size=(dim, dim)).astype(np.float32)
    factor = m @ m.T / dim
    benchmark(eigendecompose, factor)


def test_precondition_eigen(benchmark):
    a = RNG.normal(size=(144, 144)).astype(np.float32)
    g = RNG.normal(size=(64, 64)).astype(np.float32)
    eig_a = eigendecompose(a @ a.T / 144)
    eig_g = eigendecompose(g @ g.T / 64)
    grad = RNG.normal(size=(64, 144)).astype(np.float32)
    benchmark(precondition_eigen, grad, eig_a, eig_g, 0.01)


@pytest.mark.parametrize("world", [2, 8])
def test_ring_allreduce(benchmark, world):
    bufs = [RNG.normal(size=65536).astype(np.float32) for _ in range(world)]
    benchmark(ring_allreduce, bufs)


# ---------------------------------------------------------------------------
# symmetry fast path: syrk Gram vs plain GEMM at ResNet-50 factor shapes
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("shape_name", sorted(R50_GRAM_SHAPES))
def test_gram_syrk(benchmark, shape_name):
    rows, cols = R50_GRAM_SHAPES[shape_name]
    x = RNG.normal(size=(rows, cols)).astype(np.float32)
    out = np.empty((cols, cols), dtype=np.float32)
    result = benchmark(gram, x, out)
    assert np.array_equal(result, result.T)


@pytest.mark.parametrize("shape_name", sorted(R50_GRAM_SHAPES))
def test_gram_gemm_baseline(benchmark, shape_name):
    rows, cols = R50_GRAM_SHAPES[shape_name]
    x = RNG.normal(size=(rows, cols)).astype(np.float32)

    def gemm():
        return x.T @ x

    benchmark(gemm)


# ---------------------------------------------------------------------------
# symmetry fast path: triangular-packed vs full factor allreduce
# ---------------------------------------------------------------------------
def _symmetric_factor(d: int, seed: int) -> np.ndarray:
    m = np.random.default_rng(seed).normal(size=(d, d)).astype(np.float32)
    return (m + m.T) / 2.0


@pytest.mark.parametrize("dim", R50_FACTOR_DIMS)
def test_factor_allreduce_full(benchmark, dim):
    world = 4
    factors = [_symmetric_factor(dim, r) for r in range(world)]

    def full():
        return ring_allreduce([f.reshape(-1) for f in factors])

    benchmark(full)


@pytest.mark.parametrize("dim", R50_FACTOR_DIMS)
def test_factor_allreduce_tri_packed(benchmark, dim):
    """Pack + allreduce + unpack — the whole fast path, including its
    packing overhead, against the full-matrix exchange above."""
    world = 4
    factors = [_symmetric_factor(dim, r) for r in range(world)]

    def packed():
        reduced = ring_allreduce([tri_pack(f) for f in factors])
        return [tri_unpack(r, dim) for r in reduced]

    result = benchmark(packed)
    assert result[0].shape == (dim, dim)
