"""Microbenchmarks of the hot kernels (real timing, multiple rounds).

These are genuine pytest-benchmark measurements of the library's compute
primitives: im2col, conv forward/backward, factor computation,
eigendecomposition, eigen-basis preconditioning, and ring allreduce.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.comm.collectives import ring_allreduce
from repro.core.factors import conv2d_factor_A, conv2d_factor_G
from repro.core.inverse import eigendecompose, precondition_eigen
from repro.nn.layers import Conv2d
from repro.tensor.im2col import im2col

RNG = np.random.default_rng(0)


def test_im2col_kernel(benchmark):
    x = RNG.normal(size=(16, 16, 16, 16)).astype(np.float32)
    benchmark(im2col, x, (3, 3), (1, 1), (1, 1))


def test_conv_forward(benchmark):
    conv = Conv2d(16, 32, 3, padding=1, rng=RNG)
    x = RNG.normal(size=(8, 16, 16, 16)).astype(np.float32)
    benchmark(conv.forward, x)


def test_conv_backward(benchmark):
    conv = Conv2d(16, 32, 3, padding=1, rng=RNG)
    x = RNG.normal(size=(8, 16, 16, 16)).astype(np.float32)
    out = conv.forward(x)
    g = RNG.normal(size=out.shape).astype(np.float32)

    def run():
        conv.zero_grad()
        return conv.backward(g)

    benchmark(run)


def test_conv_factor_A(benchmark):
    x = RNG.normal(size=(16, 16, 12, 12)).astype(np.float32)
    benchmark(conv2d_factor_A, x, (3, 3), (1, 1), (1, 1), False)


def test_conv_factor_G(benchmark):
    g = RNG.normal(size=(16, 32, 12, 12)).astype(np.float32)
    benchmark(conv2d_factor_G, g)


@pytest.mark.parametrize("dim", [64, 256])
def test_eigendecomposition(benchmark, dim):
    m = RNG.normal(size=(dim, dim)).astype(np.float32)
    factor = m @ m.T / dim
    benchmark(eigendecompose, factor)


def test_precondition_eigen(benchmark):
    a = RNG.normal(size=(144, 144)).astype(np.float32)
    g = RNG.normal(size=(64, 64)).astype(np.float32)
    eig_a = eigendecompose(a @ a.T / 144)
    eig_g = eigendecompose(g @ g.T / 64)
    grad = RNG.normal(size=(64, 144)).astype(np.float32)
    benchmark(precondition_eigen, grad, eig_a, eig_g, 0.01)


@pytest.mark.parametrize("world", [2, 8])
def test_ring_allreduce(benchmark, world):
    bufs = [RNG.normal(size=65536).astype(np.float32) for _ in range(world)]
    benchmark(ring_allreduce, bufs)
