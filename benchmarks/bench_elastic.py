"""Elastic-fleet robustness numbers — emits BENCH_elastic.json.

Three sections:

- **straggler sensitivity (measured)** — tiny-MLP trainer runs with a
  :class:`repro.elastic.ComputeJitter` straggler on the last rank's
  ``eig_comm`` phase, at P in {2, 4}: sensitivity is the *exposed*
  simulated-communication delta between the faulty and the clean run.
  The synchronous scheduler is lockstep, so it eats the full lateness;
  the graph scheduler settles its eigenbasis shares behind local
  second-order compute, so part (P = 4) or all (P = 2) of the lateness
  is absorbed — asserted strictly smaller at P = 4.
- **checkpoint cost (measured)** — wall-clock and bundle size for
  gathering a world-size-portable K-FAC bundle at P = 4 HYBRID
  ``f = 0.5`` and redistributing it into a P = 2 COMM_OPT fleet.
- **straggler penalty (modeled)** — ``IterationModel.straggler_penalty``
  at ResNet-50/ImageNet scale: the graph scheduler's penalty is the
  lateness minus the hidden-communication budget, strictly below the
  synchronous penalty at every P.

The JSON artifact lands in the working directory as
``BENCH_elastic.json`` so the CI bench job can archive it alongside
``BENCH_overlap.json``.
"""

from __future__ import annotations

import json
import pickle
import time
from pathlib import Path

import numpy as np

from repro.core.preconditioner import KFAC, KFACHyperParams
from repro.elastic import ComputeJitter, FaultPlan, gather_state_dict
from repro.nn import Linear, Sequential
from repro.parallel.trainer import DataParallelTrainer, TrainerConfig
from repro.perfmodel.hardware import FRONTERA_LIKE, V100_LIKE
from repro.perfmodel.iteration import IterationModel
from repro.perfmodel.specs import resnet_spec

ARTIFACT = Path("BENCH_elastic.json")

JITTER_SECONDS = 1e-5
_DATA_RNG = np.random.default_rng(0)
_X = _DATA_RNG.normal(size=(64, 64)).astype(np.float32)
_Y = (_X.sum(axis=1) > 0).astype(np.int64)


def _model_factory(rng: np.random.Generator) -> Sequential:
    return Sequential(
        Linear(64, 64, rng=rng), Linear(64, 32, rng=rng), Linear(32, 2, rng=rng)
    )


def _run_exposed(p: int, scheduler: str, jitter: float) -> float:
    """Total exposed simulated comm seconds of a 1-epoch trainer run."""
    plan = None
    if jitter > 0.0:
        plan = FaultPlan(
            jitter=(
                ComputeJitter(rank=p - 1, seconds=jitter, phases=("eig_comm",)),
            )
        )
    hp = KFACHyperParams(
        kfac_update_freq=1, fac_update_freq=1, damping=0.01, scheduler=scheduler
    )
    trainer = DataParallelTrainer(
        model_factory=_model_factory,
        train_x=_X,
        train_y=_Y,
        val_x=_X[:8],
        val_y=_Y[:8],
        config=TrainerConfig(
            world_size=p, batch_size=8, epochs=1, kfac=hp, fault_plan=plan
        ),
    )
    history = trainer.train()
    return sum(history.comm_seconds.values())


def _collect_straggler_sensitivity() -> dict:
    rows = {}
    for p in (2, 4):
        row = {}
        for scheduler in ("sync", "graph"):
            clean = _run_exposed(p, scheduler, 0.0)
            faulty = _run_exposed(p, scheduler, JITTER_SECONDS)
            row[scheduler] = {
                "clean_exposed_seconds": clean,
                "faulty_exposed_seconds": faulty,
                "sensitivity_seconds": faulty - clean,
            }
        rows[str(p)] = row
    return rows


def _collect_checkpoint_cost() -> dict:
    """Gather at P=4 HYBRID f=0.5, redistribute into P=2 COMM_OPT."""
    def build(p: int, frac: float | None) -> list[KFAC]:
        kfacs = []
        for r in range(p):
            model = _model_factory(np.random.default_rng(0))
            kfacs.append(
                KFAC(
                    model,
                    rank=r,
                    world_size=p,
                    kfac_update_freq=1,
                    fac_update_freq=1,
                    damping=0.01,
                    grad_worker_frac=frac,
                )
            )
        return kfacs

    # warm a P=4 hybrid fleet through one real trainer update
    hp = KFACHyperParams(
        kfac_update_freq=1, fac_update_freq=1, damping=0.01, grad_worker_frac=0.5
    )
    trainer = DataParallelTrainer(
        model_factory=_model_factory,
        train_x=_X,
        train_y=_Y,
        val_x=_X[:8],
        val_y=_Y[:8],
        config=TrainerConfig(world_size=4, batch_size=8, epochs=1, kfac=hp),
    )
    trainer.train()
    assert trainer.kfacs is not None

    t0 = time.perf_counter()
    bundle = gather_state_dict(trainer.kfacs[0], peers=trainer.kfacs)
    gather_seconds = time.perf_counter() - t0
    bundle_bytes = len(pickle.dumps(bundle, protocol=pickle.HIGHEST_PROTOCOL))

    dest = build(2, None)  # COMM_OPT at half the world size
    t0 = time.perf_counter()
    for k in dest:
        k.load_state_dict(bundle)
    redistribute_seconds = time.perf_counter() - t0
    hydrated = all(
        layer.eig_A is not None and layer.eig_G is not None
        for k in dest
        for layer in k.layers
    )
    return {
        "gather_wall_seconds": gather_seconds,
        "redistribute_wall_seconds": redistribute_seconds,
        "bundle_bytes": bundle_bytes,
        "dest_fully_hydrated": hydrated,
    }


def _collect_modeled_penalty() -> dict:
    im = IterationModel(resnet_spec(50), V100_LIKE, FRONTERA_LIKE)
    lateness = 0.05
    rows = {}
    for p in (4, 16, 64):
        rows[str(p)] = {
            "lateness_seconds": lateness,
            "sync_penalty": im.straggler_penalty(p, lateness, scheduler="sync"),
            "graph_penalty": im.straggler_penalty(p, lateness, scheduler="graph"),
        }
    return rows


def _build_artifact() -> dict:
    return {
        "straggler_sensitivity": _collect_straggler_sensitivity(),
        "checkpoint_cost": _collect_checkpoint_cost(),
        "modeled_resnet50_penalty": _collect_modeled_penalty(),
    }


def test_elastic_artifact(benchmark):
    data = benchmark.pedantic(_build_artifact, rounds=1, iterations=1)

    sens = data["straggler_sensitivity"]
    for p, row in sens.items():
        # the straggler costs the sync route its full lateness every step
        assert row["sync"]["sensitivity_seconds"] > 0.0, p
        # the graph route absorbs lateness behind local compute: strictly
        # less straggler-sensitive (the headline robustness claim)
        assert (
            row["graph"]["sensitivity_seconds"]
            < row["sync"]["sensitivity_seconds"]
        ), p
    # at P=2 the whole jitter fits in the overlap budget
    assert sens["2"]["graph"]["sensitivity_seconds"] == 0.0

    cost = data["checkpoint_cost"]
    assert cost["dest_fully_hydrated"]
    assert cost["bundle_bytes"] > 0

    modeled = data["modeled_resnet50_penalty"]
    for p, row in modeled.items():
        assert row["graph_penalty"] < row["sync_penalty"], p
        assert row["graph_penalty"] >= 0.0, p

    ARTIFACT.write_text(json.dumps(data, indent=2, sort_keys=True))
    print(f"\nwrote {ARTIFACT.resolve()}")
