"""Paper Fig. 9: ResNet-152 time-to-solution — K-FAC-opt loses at 256 GPUs."""

from repro.experiments.scaling_exp import run_scaling_figure

from conftest import run_and_print


def test_fig9_resnet152_scaling(benchmark):
    result = run_and_print(benchmark, run_scaling_figure, 152)
    points = result.data["points"]
    # paper: 4.9-8.2% improvement up to 128 GPUs...
    for pt in points[:4]:
        assert pt.improvement_opt() > 0, f"@{pt.gpus}"
    # ...and K-FAC-opt is SLOWER than SGD at 256 (the paper's -11.1%)
    assert points[-1].improvement_opt() < 0
