"""Mixed-precision benchmarks: cast overhead, compressed payloads, parity.

Three layers of evidence that the precision subsystem buys what it
claims, uploaded to CI as ``BENCH_precision.json``:

1. **cast overhead** — real timings of the fp16/bf16 quantization
   kernels and ``amp_matmul`` against the plain fp32 GEMM at a ResNet-50
   Gram shape (the emulation tax of the NumPy stack; on real Tensor
   Cores this sign flips);
2. **compressed collective payloads** — the measured wire bytes of the
   gradient and factor exchanges: fp16 transport is exactly 0.5x the
   fp32 path, and combined with triangular packing the factor payload is
   <= 0.26x dense fp32 (the acceptance criterion);
3. **end-to-end parity** — an fp16-AMP CIFAR-scale run tracks the fp32
   trajectory within tolerance with zero overflow-skipped steps after
   warmup, and the performance model projects strictly lower fp16
   iteration times at every world size >= 4.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.comm.backend import World
from repro.comm.compression import BF16Codec, FP16Codec
from repro.core.preconditioner import KFACHyperParams
from repro.experiments.common import (
    SCALE_PRESETS,
    default_kfac_hp,
    make_paired_task,
    train_once,
)
from repro.perfmodel.hardware import FRONTERA_LIKE, V100_LIKE
from repro.perfmodel.iteration import IterationModel, KfacIntervals
from repro.perfmodel.specs import resnet_spec
from repro.precision import GradScaler
from repro.tensor.amp import amp_matmul, autocast, quantize_bf16

RNG = np.random.default_rng(0)

#: the widest ResNet-50 3x3 Gram shape (see bench_micro_kernels)
GRAM_ROWS, GRAM_COLS = 2 * 7 * 7, 512 * 3 * 3


# ---------------------------------------------------------------------------
# 1. cast overhead
# ---------------------------------------------------------------------------
def test_cast_fp16_roundtrip(benchmark):
    x = RNG.normal(size=(GRAM_ROWS, GRAM_COLS)).astype(np.float32)
    codec = FP16Codec()
    benchmark(lambda: codec.decode(codec.encode(x)))


def test_cast_bf16_roundtrip(benchmark):
    x = RNG.normal(size=(GRAM_ROWS, GRAM_COLS)).astype(np.float32)
    codec = BF16Codec()
    benchmark(lambda: codec.decode(codec.encode(x)))


def test_quantize_bf16_inplace_grid(benchmark):
    x = RNG.normal(size=(GRAM_ROWS, GRAM_COLS)).astype(np.float32)
    benchmark(quantize_bf16, x)


def test_matmul_fp32_baseline(benchmark):
    a = RNG.normal(size=(GRAM_ROWS, GRAM_COLS)).astype(np.float32)
    b = RNG.normal(size=(GRAM_COLS, 64)).astype(np.float32)
    benchmark(lambda: a @ b)


@pytest.mark.parametrize("dtype", ["float16", "bfloat16"])
def test_amp_matmul_emulation(benchmark, dtype):
    """The emulated AMP GEMM: quantize operands + fp32 BLAS product."""
    a = RNG.normal(size=(GRAM_ROWS, GRAM_COLS)).astype(np.float32)
    b = RNG.normal(size=(GRAM_COLS, 64)).astype(np.float32)

    def run():
        with autocast(dtype):
            return amp_matmul(a, b)

    out = benchmark(run)
    assert out.dtype == np.float32


# ---------------------------------------------------------------------------
# 2. compressed collective payloads (the acceptance measurements)
# ---------------------------------------------------------------------------
def _grad_exchange_bytes(codec: str | None) -> float:
    world = World(4)
    grads = [RNG.normal(size=4096).astype(np.float32) for _ in range(4)]
    world.allreduce(grads, phase="grad", codec=codec)
    return world.stats.bytes_by_phase["grad"]


def test_compressed_grad_payload_half(benchmark):
    ratio = benchmark(
        lambda: _grad_exchange_bytes("fp16") / _grad_exchange_bytes(None)
    )
    print(f"\ngrad allreduce payload fp16/fp32: {ratio:.3f}x")
    assert ratio == 0.5


def _factor_exchange_bytes(symmetric: bool, comm_dtype: str | None) -> float:
    """Measured factor_comm wire bytes of one 2-worker K-FAC update."""
    from repro.core.distributed import PhaseController
    from repro.core.preconditioner import KFAC
    from repro.nn.loss import CrossEntropyLoss
    from repro.nn.resnet import resnet20_cifar

    world = World(2)
    replicas = [
        resnet20_cifar(np.random.default_rng(0), width_multiplier=0.25, num_classes=4)
        for _ in range(2)
    ]
    hp = KFACHyperParams(
        fac_update_freq=1, kfac_update_freq=1,
        symmetric_comm=symmetric, comm_dtype=comm_dtype,
    )
    kfacs = [KFAC(m, rank=r, world_size=2, hyper=hp) for r, m in enumerate(replicas)]
    controller = PhaseController(kfacs, world)
    x = np.random.default_rng(1).normal(size=(4, 3, 8, 8)).astype(np.float32)
    y = np.random.default_rng(2).integers(0, 4, size=4)
    for m in replicas:
        loss = CrossEntropyLoss()
        m.zero_grad()
        loss(m(x), y)
        m.backward(loss.backward())
    controller.step()
    return world.stats.bytes_by_phase["factor_comm"]


def test_compressed_factor_payload(benchmark):
    def measure():
        dense = _factor_exchange_bytes(symmetric=False, comm_dtype=None)
        fp16 = _factor_exchange_bytes(symmetric=False, comm_dtype="fp16")
        combined = _factor_exchange_bytes(symmetric=True, comm_dtype="fp16")
        return dense, fp16, combined

    dense, fp16, combined = benchmark(measure)
    print(
        f"\nfactor allreduce payload: dense fp32 {int(dense)}B, "
        f"fp16 {fp16 / dense:.3f}x, tri-packed+fp16 {combined / dense:.4f}x"
    )
    # acceptance: <= 0.5x compressed; <= 0.26x combined with tri-packing
    assert fp16 / dense == 0.5
    assert combined / dense <= 0.26


# ---------------------------------------------------------------------------
# 3. end-to-end parity + modeled speedup
# ---------------------------------------------------------------------------
def test_fp16_trajectory_parity(benchmark):
    """fp16-AMP CIFAR run within tolerance of fp32, no post-warmup skips."""
    preset = SCALE_PRESETS["tiny"]
    dataset = make_paired_task(preset, seed=7)

    def run():
        h32 = train_once(dataset, preset, 2, preset.kfac_epochs,
                         default_kfac_hp(), seed=7)
        h16 = train_once(dataset, preset, 2, preset.kfac_epochs,
                         default_kfac_hp(), seed=7, precision="fp16")
        return h32, h16

    h32, h16 = benchmark.pedantic(run, rounds=1, iterations=1)
    losses32 = [e.train_loss for e in h32.epochs]
    losses16 = [e.train_loss for e in h16.epochs]
    print(f"\nfp32 losses {losses32}\nfp16 losses {losses16}")
    print(f"fp16 skipped {h16.amp_skipped_steps} steps, "
          f"final scale {h16.final_loss_scale:g}")
    assert all(np.isfinite(losses16))
    # documented tolerance: final-epoch training loss within 10% relative,
    # accuracies within 0.15 absolute on the tiny noisy task
    assert losses16[-1] == pytest.approx(losses32[-1], rel=0.10)
    assert h16.final_val_accuracy == pytest.approx(h32.final_val_accuracy, abs=0.15)
    # overflow skips may only happen during scale warmup (first epoch)
    assert h16.amp_skipped_steps <= len(h16.epochs) and np.isfinite(
        h16.final_loss_scale
    )


def test_stage_profile_fp16_strictly_faster(benchmark):
    """The perfmodel projects lower fp16 iteration time at every p >= 4."""

    def project():
        out = {}
        for depth in (50, 101, 152):
            im = IterationModel(resnet_spec(depth), V100_LIKE, FRONTERA_LIKE)
            iv = KfacIntervals.from_eig_interval(100)
            for p in (4, 8, 16, 32, 64):
                t32 = im.kfac_iteration_time(p, "comm-opt", iv, symmetric=True)
                t16 = im.kfac_iteration_time(
                    p, "comm-opt", iv, symmetric=True, precision="fp16"
                )
                out[(depth, p)] = (t32, t16)
        return out

    projections = benchmark(project)
    for (depth, p), (t32, t16) in projections.items():
        assert t16 < t32, (depth, p)
        im = IterationModel(resnet_spec(depth), V100_LIKE, FRONTERA_LIKE)
        sp32 = im.stage_profile(p, symmetric=True)
        sp16 = im.stage_profile(p, symmetric=True, precision="fp16")
        # stage-level: compressed factor wire is half the packed fp32 wire,
        # compute rides the Tensor-Core rate; eig stage is fp32 either way
        assert sp16.factor_comm_payload_bytes == sp32.factor_comm_payload_bytes / 2
        assert sp16.factor_tcomp < sp32.factor_tcomp
        assert sp16.factor_tcomm < sp32.factor_tcomm
        assert sp16.eig_tcomp == sp32.eig_tcomp
    r50 = IterationModel(resnet_spec(50), V100_LIKE, FRONTERA_LIKE)
    speedup = r50.kfac_iteration_time(
        64, "comm-opt", KfacIntervals.from_eig_interval(100), symmetric=True
    ) / r50.kfac_iteration_time(
        64, "comm-opt", KfacIntervals.from_eig_interval(100),
        symmetric=True, precision="fp16",
    )
    print(f"\nmodeled ResNet-50 @64 fp16 iteration speedup: {speedup:.2f}x")
