"""Paper Fig. 8: ResNet-101 time-to-solution across scales."""

from repro.experiments.scaling_exp import run_scaling_figure

from conftest import run_and_print


def test_fig8_resnet101_scaling(benchmark):
    result = run_and_print(benchmark, run_scaling_figure, 101)
    points = result.data["points"]
    # paper: K-FAC-opt outperforms SGD by 9.7-19.5% on ResNet-101
    for pt in points:
        assert 0.05 < pt.improvement_opt() < 0.30, f"@{pt.gpus}"
