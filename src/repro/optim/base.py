"""Optimizer base class."""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.nn.module import Parameter

__all__ = ["Optimizer"]


class Optimizer:
    """Holds a parameter list and a mutable learning rate.

    Subclasses implement :meth:`step`.  The learning rate is a plain
    attribute so LR schedules (and the trainer) can set it per iteration.

    Example
    -------
    >>> import numpy as np
    >>> from repro.nn.module import Parameter
    >>> from repro.optim import SGD
    >>> p = Parameter(np.ones(2))
    >>> opt = SGD([p], lr=0.5)      # any Optimizer subclass
    >>> p.grad[...] = 1.0
    >>> opt.step(); p.data.tolist()
    [0.5, 0.5]
    >>> opt.zero_grad(); float(p.grad.sum())
    0.0
    """

    def __init__(self, params: Iterable[Parameter], lr: float) -> None:
        self.params: Sequence[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer constructed with no parameters")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = float(lr)

    def step(self) -> None:
        raise NotImplementedError

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def state_dict(self) -> dict:
        """Subclasses extend with their per-parameter state."""
        return {"lr": self.lr}

    def load_state_dict(self, state: dict) -> None:
        self.lr = float(state["lr"])
