"""Learning-rate schedules.

The paper's recipes (§VI-C):

- CIFAR:    lr = N * 0.1, decay x0.1 at epochs {35, 75, 90} (K-FAC) /
            {100, 150} (SGD), 5-epoch linear warmup.
- ImageNet: lr = N * 0.0125, decay at {25, 35, 40, 45, 50} (K-FAC) /
            {30, 40, 80} (SGD), 5-epoch linear warmup.

Schedules map a *fractional epoch* to a learning rate so warmup can be
applied per-iteration, exactly as "linear learning rate warmup for the
first five epochs" requires.
"""

from __future__ import annotations

from typing import Sequence

__all__ = [
    "LRSchedule",
    "ConstantSchedule",
    "MultiStepSchedule",
    "PolynomialSchedule",
    "LinearWarmupSchedule",
]


class LRSchedule:
    """Base: callable mapping fractional epoch -> learning rate.

    Example
    -------
    >>> from repro.optim import ConstantSchedule, LRSchedule
    >>> schedule: LRSchedule = ConstantSchedule(0.1)
    >>> schedule(3.5)
    0.1
    """

    def __call__(self, epoch: float) -> float:
        raise NotImplementedError


class ConstantSchedule(LRSchedule):
    """Always ``base_lr``.

    Example
    -------
    >>> from repro.optim.lr_scheduler import ConstantSchedule
    >>> ConstantSchedule(0.05)(10.0)
    0.05
    """

    def __init__(self, base_lr: float) -> None:
        if base_lr <= 0:
            raise ValueError(f"base_lr must be positive, got {base_lr}")
        self.base_lr = base_lr

    def __call__(self, epoch: float) -> float:
        return self.base_lr


class MultiStepSchedule(LRSchedule):
    """Multiply by ``gamma`` at each milestone epoch.

    Example
    -------
    >>> from repro.optim.lr_scheduler import MultiStepSchedule
    >>> sched = MultiStepSchedule(1.0, milestones=[2, 4], gamma=0.1)
    >>> [sched(e) for e in (0, 2, 4)]
    [1.0, 0.1, 0.010000000000000002]
    """

    def __init__(self, base_lr: float, milestones: Sequence[float], gamma: float = 0.1) -> None:
        if base_lr <= 0:
            raise ValueError(f"base_lr must be positive, got {base_lr}")
        if sorted(milestones) != list(milestones):
            raise ValueError(f"milestones must be sorted, got {milestones}")
        if not 0 < gamma <= 1:
            raise ValueError(f"gamma must be in (0, 1], got {gamma}")
        self.base_lr = base_lr
        self.milestones = list(milestones)
        self.gamma = gamma

    def __call__(self, epoch: float) -> float:
        n_passed = sum(1 for m in self.milestones if epoch >= m)
        return self.base_lr * self.gamma**n_passed


class PolynomialSchedule(LRSchedule):
    """Polynomial decay from ``base_lr`` to ``end_lr`` over ``total_epochs``.

    Example
    -------
    >>> from repro.optim.lr_scheduler import PolynomialSchedule
    >>> sched = PolynomialSchedule(1.0, total_epochs=10, power=2.0)
    >>> sched(0.0), sched(5.0), sched(10.0)
    (1.0, 0.25, 0.0)
    """

    def __init__(
        self, base_lr: float, total_epochs: float, power: float = 2.0, end_lr: float = 0.0
    ) -> None:
        if total_epochs <= 0:
            raise ValueError(f"total_epochs must be positive, got {total_epochs}")
        self.base_lr = base_lr
        self.total_epochs = total_epochs
        self.power = power
        self.end_lr = end_lr

    def __call__(self, epoch: float) -> float:
        frac = min(max(epoch / self.total_epochs, 0.0), 1.0)
        return self.end_lr + (self.base_lr - self.end_lr) * (1.0 - frac) ** self.power


class LinearWarmupSchedule(LRSchedule):
    """Linear ramp from ``start_factor * lr`` to the wrapped schedule's lr.

    During warmup the target is the wrapped schedule evaluated at the
    current epoch (so a decay inside the warmup window still applies —
    this matches Horovod's reference ResNet recipe).

    Example
    -------
    >>> from repro.optim import ConstantSchedule, LinearWarmupSchedule
    >>> sched = LinearWarmupSchedule(ConstantSchedule(1.0), warmup_epochs=5)
    >>> round(sched(0.0), 3), round(sched(2.5), 3), sched(5.0)
    (0.1, 0.55, 1.0)
    """

    def __init__(
        self, schedule: LRSchedule, warmup_epochs: float, start_factor: float = 0.1
    ) -> None:
        if warmup_epochs < 0:
            raise ValueError(f"warmup_epochs must be non-negative, got {warmup_epochs}")
        if not 0 <= start_factor <= 1:
            raise ValueError(f"start_factor must be in [0, 1], got {start_factor}")
        self.schedule = schedule
        self.warmup_epochs = warmup_epochs
        self.start_factor = start_factor

    def __call__(self, epoch: float) -> float:
        target = self.schedule(epoch)
        if self.warmup_epochs == 0 or epoch >= self.warmup_epochs:
            return target
        frac = epoch / self.warmup_epochs
        return target * (self.start_factor + (1.0 - self.start_factor) * frac)
