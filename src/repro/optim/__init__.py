"""First-order optimizers and learning-rate schedules.

K-FAC in this paper is a *gradient preconditioner*: it rewrites
``param.grad`` in place and any of these optimizers then applies the update
(§IV: "our K-FAC algorithm [acts] as a gradient preconditioner such that
K-FAC can be used in-place with any standard optimizer, such as Adam, LARS,
or SGD").
"""

from repro.optim.base import Optimizer
from repro.optim.sgd import SGD
from repro.optim.adam import Adam
from repro.optim.lars import LARS
from repro.optim.lr_scheduler import (
    ConstantSchedule,
    LinearWarmupSchedule,
    LRSchedule,
    MultiStepSchedule,
    PolynomialSchedule,
)

__all__ = [
    "Optimizer",
    "SGD",
    "Adam",
    "LARS",
    "LRSchedule",
    "ConstantSchedule",
    "MultiStepSchedule",
    "LinearWarmupSchedule",
    "PolynomialSchedule",
]
