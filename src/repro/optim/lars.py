"""LARS — Layer-wise Adaptive Rate Scaling (You et al.).

The paper's §III-A discusses LARS as the leading large-batch SGD variant;
we provide it both as a composable optimizer for the K-FAC preconditioner
and as an additional large-batch baseline.

Per layer:  local_lr = eta * ||w|| / (||g|| + wd * ||w|| + eps)
            update via momentum on local_lr-scaled gradient.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.nn.module import Parameter
from repro.optim.base import Optimizer

__all__ = ["LARS"]


class LARS(Optimizer):
    """LARS with momentum; parameters with ~zero norm fall back to plain SGD.

    The layer-wise adaptive rate the paper pairs with K-FAC for large
    global batch sizes (§V-C cites You et al.'s LARS recipe).

    Example
    -------
    >>> import numpy as np
    >>> from repro.nn.module import Parameter
    >>> from repro.optim.lars import LARS
    >>> p = Parameter(np.full(4, 2.0))
    >>> opt = LARS([p], lr=0.1, momentum=0.0, trust_coefficient=0.01)
    >>> p.grad[...] = 1.0
    >>> opt.step()
    >>> bool(p.data[0] < 2.0)             # scaled by ||w|| / ||g||
    True
    """

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float,
        momentum: float = 0.9,
        weight_decay: float = 0.0,
        trust_coefficient: float = 0.001,
        eps: float = 1e-9,
    ) -> None:
        super().__init__(params, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.trust_coefficient = trust_coefficient
        self.eps = eps
        self._buffers = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for i, p in enumerate(self.params):
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            w_norm = float(np.linalg.norm(p.data))
            g_norm = float(np.linalg.norm(g))
            if w_norm > self.eps and g_norm > self.eps:
                local_lr = self.trust_coefficient * w_norm / (g_norm + self.eps)
            else:
                local_lr = 1.0
            buf = self._buffers[i]
            buf *= self.momentum
            buf += local_lr * g
            p.data -= self.lr * buf

    def state_dict(self) -> dict:
        state = super().state_dict()
        state["buffers"] = [b.copy() for b in self._buffers]
        return state

    def load_state_dict(self, state: dict) -> None:
        super().load_state_dict(state)
        self._buffers = [b.copy() for b in state["buffers"]]
