"""Stochastic gradient descent with momentum (the paper's baseline).

Implements the PyTorch-style momentum update the paper builds on
(momentum 0.9, optional weight decay, optional Nesterov):

    buf <- mu * buf + grad (+ wd * param)
    param <- param - lr * buf            (or lr * (grad + mu * buf) if nesterov)
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.nn.module import Parameter
from repro.optim.base import Optimizer

__all__ = ["SGD"]


class SGD(Optimizer):
    """SGD with momentum, weight decay, and optional Nesterov momentum.

    Example
    -------
    >>> import numpy as np
    >>> from repro.nn.module import Parameter
    >>> from repro.optim.sgd import SGD
    >>> p = Parameter(np.zeros(1))
    >>> opt = SGD([p], lr=0.1, momentum=0.9)
    >>> for _ in range(2):
    ...     p.grad[...] = 1.0
    ...     opt.step()
    >>> round(float(p.data[0]), 3)        # -0.1, then -(0.1 + 0.19)
    -0.29
    """

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        nesterov: bool = False,
    ) -> None:
        super().__init__(params, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        if weight_decay < 0.0:
            raise ValueError(f"weight_decay must be non-negative, got {weight_decay}")
        if nesterov and momentum == 0.0:
            raise ValueError("nesterov momentum requires momentum > 0")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.nesterov = nesterov
        self._buffers: list[np.ndarray | None] = [None] * len(self.params)

    def step(self) -> None:
        for i, p in enumerate(self.params):
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            if self.momentum:
                buf = self._buffers[i]
                if buf is None:
                    buf = g.astype(p.data.dtype).copy()
                else:
                    buf *= self.momentum
                    buf += g
                self._buffers[i] = buf
                g = g + self.momentum * buf if self.nesterov else buf
            p.data -= self.lr * g

    def state_dict(self) -> dict:
        state = super().state_dict()
        state["buffers"] = [None if b is None else b.copy() for b in self._buffers]
        return state

    def load_state_dict(self, state: dict) -> None:
        super().load_state_dict(state)
        self._buffers = [None if b is None else b.copy() for b in state["buffers"]]
