"""Adam optimizer (Kingma & Ba) — one of the standard optimizers the paper's
preconditioner is designed to compose with."""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.nn.module import Parameter
from repro.optim.base import Optimizer

__all__ = ["Adam"]


class Adam(Optimizer):
    """Adam with bias-corrected first/second moments and optional weight decay.

    Example
    -------
    >>> import numpy as np
    >>> from repro.nn.module import Parameter
    >>> from repro.optim.adam import Adam
    >>> p = Parameter(np.zeros(1))
    >>> opt = Adam([p], lr=0.1)
    >>> p.grad[...] = 1.0
    >>> opt.step()
    >>> round(float(p.data[0]), 6)        # first step ~= -lr
    -0.1
    """

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        b1, b2 = betas
        if not (0.0 <= b1 < 1.0 and 0.0 <= b2 < 1.0):
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.betas = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        b1, b2 = self.betas
        bc1 = 1.0 - b1**self._t
        bc2 = 1.0 - b2**self._t
        for i, p in enumerate(self.params):
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            self._m[i] *= b1
            self._m[i] += (1 - b1) * g
            self._v[i] *= b2
            self._v[i] += (1 - b2) * np.square(g)
            m_hat = self._m[i] / bc1
            v_hat = self._v[i] / bc2
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def state_dict(self) -> dict:
        state = super().state_dict()
        state.update(t=self._t, m=[m.copy() for m in self._m], v=[v.copy() for v in self._v])
        return state

    def load_state_dict(self, state: dict) -> None:
        super().load_state_dict(state)
        self._t = int(state["t"])
        self._m = [m.copy() for m in state["m"]]
        self._v = [v.copy() for v in state["v"]]
