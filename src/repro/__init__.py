"""repro — reproduction of *Convolutional Neural Network Training with
Distributed K-FAC* (Pauloski, Zhang, Huang, Xu, Foster; SC 2020).

The package is organised bottom-up:

- :mod:`repro.tensor` / :mod:`repro.nn` — a from-scratch numpy neural network
  framework with the layer hooks K-FAC needs (activations and output grads).
- :mod:`repro.comm` — a simulated Horovod-like communication substrate with
  ring collectives, async handles, fusion buffers, and an alpha-beta cost
  model.
- :mod:`repro.parallel` — synchronous data-parallel training (Fig. 1 of the
  paper).
- :mod:`repro.core` — the paper's contribution: the distributed K-FAC
  gradient preconditioner (Algorithm 1), with both the layer-wise (K-FAC-lw)
  and optimized (K-FAC-opt) distribution strategies.
- :mod:`repro.perfmodel` — calibrated performance model used to regenerate
  the paper's scaling tables/figures from real ResNet-50/101/152 shapes.
- :mod:`repro.experiments` — one runner per paper table/figure.
"""

from repro.version import __version__


def __getattr__(name: str):
    """Lazily re-export the most-used entry points at package top level.

    Lazy so that ``import repro`` stays fast and the subpackages keep no
    import-order constraints.
    """
    top_level = {
        "KFAC": ("repro.core.preconditioner", "KFAC"),
        "KFACHyperParams": ("repro.core.preconditioner", "KFACHyperParams"),
        "KFACParamScheduler": ("repro.core.schedule", "KFACParamScheduler"),
        "SGD": ("repro.optim.sgd", "SGD"),
        "World": ("repro.comm.backend", "World"),
        "DataParallelTrainer": ("repro.parallel.trainer", "DataParallelTrainer"),
        "TrainerConfig": ("repro.parallel.trainer", "TrainerConfig"),
    }
    if name in top_level:
        import importlib

        module, attr = top_level[name]
        return getattr(importlib.import_module(module), attr)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")


__all__ = [
    "__version__",
    "KFAC",
    "KFACHyperParams",
    "KFACParamScheduler",
    "SGD",
    "World",
    "DataParallelTrainer",
    "TrainerConfig",
]
