"""Typed per-rank span tracing on the simulated clock.

The simulation charges every collective, every scheduled task, and every
injected fault to per-phase *ledgers* (``TimerRegistry``,
``OverlapStats``) — post-hoc scalar aggregates.  This module records the
same events as **typed spans** on a per-rank simulated timeline, so
tests and tools can ask *what actually happened, in what order, on which
rank* — the per-task record SPD-KFAC-style schedulers make decisions
from (arXiv:2107.06533).

Design points:

- **Zero cost when disabled.**  The default tracer everywhere is
  :data:`NULL_TRACER`, whose ``enabled`` flag is ``False``; every call
  site guards with ``if tracer.enabled:`` so no span objects are ever
  allocated on the default path and existing histories are bitwise
  unchanged.
- **Deterministic on the simulated clock.**  Each rank owns a simulated
  clock that only *recorded spans* advance: a span of duration ``d`` on
  rank ``r`` occupies ``[clock_r, clock_r + d)`` and bumps the clock.
  Per-rank timelines are therefore strictly monotone and non-overlapping,
  and — because each rank's events are recorded in that rank's program
  order — two SPMD replicas of the same program produce *identical*
  canonical traces, diffable in tests.
- **Chrome-trace export.**  :meth:`Tracer.to_chrome` emits the Chrome
  trace event format (one ``pid`` per rank, ``"X"`` complete events in
  simulated microseconds, ``"s"``/``"f"`` flow events linking a launch
  to its wait) — loadable in Perfetto / ``chrome://tracing``.

Example
-------
>>> tr = Tracer()
>>> _ = tr.span("factor_comm", "comm", rank=0, duration=0.5,
...             attrs={"exposed": 0.1, "hidden": 0.4, "bytes": 4096.0})
>>> _ = tr.launch(0, "fac:0", attrs={"bucket": 0})
>>> _ = tr.wait(0, "fac:0")
>>> [s.name for s in tr.spans(rank=0)]
['factor_comm', 'launch:fac:0', 'wait:fac:0']
>>> tr.clock(0)
0.5
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from typing import Iterable

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "validate_chrome_trace",
]


@dataclass
class Span:
    """One typed event on a rank's simulated timeline.

    ``t_start``/``t_end`` are simulated seconds on the owning rank's
    clock; ``seq`` is the rank-local record index (canonical order);
    ``attrs`` carries typed payload fields (layer, bucket, bytes,
    exposed/hidden split, …).  ``flow`` marks launch→wait linkage as
    ``(phase, id, tag)`` with phase ``"s"`` (launch) or ``"f"`` (wait).
    Wall-clock fields are excluded from equality so traces from lockstep
    replicas compare equal.

    Example
    -------
    >>> Span("eig", "task", rank=1, t_start=0.0, t_end=0.25, seq=0).duration
    0.25
    """

    name: str
    cat: str
    rank: int
    t_start: float
    t_end: float
    seq: int
    attrs: dict = field(default_factory=dict)
    flow: tuple[str, str, str] | None = None
    wall_start: float = field(default=0.0, compare=False)
    wall_end: float = field(default=0.0, compare=False)

    @property
    def duration(self) -> float:
        """Simulated duration in seconds (``t_end - t_start``)."""
        return self.t_end - self.t_start


class Tracer:
    """Records :class:`Span` objects on deterministic per-rank sim clocks.

    Thread-safe: SPMD worlds record from one thread per rank (plus the
    completer thread of a matched collective); all mutation happens under
    one lock, and the canonical order — sorted by ``(rank, seq)`` — is
    independent of cross-rank thread interleaving because each rank's
    subsequence is its own program order.

    Example
    -------
    >>> tr = Tracer()
    >>> _ = tr.span("precondition", "task", rank=0, duration=0.001)
    >>> trace = tr.to_chrome()
    >>> sorted(trace) == ["displayTimeUnit", "traceEvents"]
    True
    >>> validate_chrome_trace(trace) >= 2   # metadata + the span
    True
    """

    enabled: bool = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._spans: list[Span] = []
        self._clocks: dict[int, float] = {}
        self._seq: dict[int, int] = {}
        self._flow_opened: dict[tuple[int, str], int] = {}
        self._flow_closed: dict[tuple[int, str], int] = {}

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def span(
        self,
        name: str,
        cat: str,
        rank: int,
        duration: float = 0.0,
        attrs: dict | None = None,
        wall_seconds: float = 0.0,
        flow: tuple[str, str, str] | None = None,
    ) -> Span:
        """Record a span of ``duration`` simulated seconds on ``rank``.

        The rank's simulated clock advances by the full duration, so
        successive spans on one rank never overlap.

        >>> tr = Tracer()
        >>> s = tr.span("eig", "task", rank=2, duration=0.125)
        >>> (s.t_start, s.t_end, s.rank)
        (0.0, 0.125, 2)
        """
        if duration < 0.0:
            raise ValueError(f"span duration must be >= 0, got {duration}")
        wall_end = time.perf_counter()
        with self._lock:
            t0 = self._clocks.get(rank, 0.0)
            seq = self._seq.get(rank, 0)
            span = Span(
                name=name,
                cat=cat,
                rank=rank,
                t_start=t0,
                t_end=t0 + duration,
                seq=seq,
                attrs=dict(attrs) if attrs else {},
                flow=flow,
                wall_start=wall_end - wall_seconds,
                wall_end=wall_end,
            )
            self._spans.append(span)
            self._clocks[rank] = span.t_end
            self._seq[rank] = seq + 1
        return span

    def instant(
        self, name: str, cat: str, rank: int, attrs: dict | None = None
    ) -> Span:
        """Record a zero-duration marker (fault, retry, fallback, …).

        >>> tr = Tracer()
        >>> tr.instant("retry:eig_comm", "fault", rank=1).duration
        0.0
        """
        return self.span(name, cat, rank, 0.0, attrs)

    def launch(
        self, rank: int, tag: str, cat: str = "sched", attrs: dict | None = None
    ) -> Span:
        """Record an async-collective launch, opening a flow arrow.

        Repeated launches of one tag on one rank get distinct flow ids
        (``"{rank}:{tag}:{n}"``) paired FIFO with :meth:`wait` calls.

        >>> tr = Tracer()
        >>> tr.launch(0, "fac:1").flow
        ('s', '0:fac:1:0', 'fac:1')
        """
        with self._lock:
            n = self._flow_opened.get((rank, tag), 0)
            self._flow_opened[(rank, tag)] = n + 1
        return self.span(
            f"launch:{tag}", cat, rank, 0.0, attrs, flow=("s", f"{rank}:{tag}:{n}", tag)
        )

    def wait(
        self,
        rank: int,
        tag: str,
        cat: str = "sched",
        duration: float = 0.0,
        attrs: dict | None = None,
    ) -> Span:
        """Record the wait completing the oldest open launch of ``tag``.

        >>> tr = Tracer()
        >>> tr.launch(0, "eig:0")              # doctest: +ELLIPSIS
        Span(...)
        >>> tr.wait(0, "eig:0").flow
        ('f', '0:eig:0:0', 'eig:0')
        """
        with self._lock:
            n = self._flow_closed.get((rank, tag), 0)
            self._flow_closed[(rank, tag)] = n + 1
        return self.span(
            f"wait:{tag}", cat, rank, duration, attrs,
            flow=("f", f"{rank}:{tag}:{n}", tag),
        )

    # ------------------------------------------------------------------
    # querying (the compact in-memory timeline)
    # ------------------------------------------------------------------
    def spans(
        self,
        rank: int | None = None,
        cat: str | None = None,
        name: str | None = None,
    ) -> list[Span]:
        """Spans in canonical order ``(rank, seq)``, optionally filtered.

        >>> tr = Tracer()
        >>> _ = tr.span("a", "task", rank=1); _ = tr.span("b", "comm", rank=0)
        >>> [(s.rank, s.name) for s in tr.spans()]
        [(0, 'b'), (1, 'a')]
        >>> [s.name for s in tr.spans(cat="comm")]
        ['b']
        """
        with self._lock:
            out = sorted(self._spans, key=lambda s: (s.rank, s.seq))
        if rank is not None:
            out = [s for s in out if s.rank == rank]
        if cat is not None:
            out = [s for s in out if s.cat == cat]
        if name is not None:
            out = [s for s in out if s.name == name]
        return out

    def ranks(self) -> list[int]:
        """Sorted ranks that recorded at least one span.

        >>> tr = Tracer()
        >>> _ = tr.span("x", "task", rank=3)
        >>> tr.ranks()
        [3]
        """
        with self._lock:
            return sorted({s.rank for s in self._spans})

    def clock(self, rank: int) -> float:
        """Current simulated clock of ``rank`` in seconds.

        >>> Tracer().clock(0)
        0.0
        """
        with self._lock:
            return self._clocks.get(rank, 0.0)

    def phase_totals(
        self, rank: int | None = None, cat: str = "comm"
    ) -> dict[str, dict[str, float]]:
        """Per-phase ``exposed``/``hidden``/``bytes`` sums.

        With ``rank=None`` (the default) this is the **ledger view**:
        only spans marked ``owner=True`` count (each collective charges
        the world's ledgers once, and exactly one member span owns that
        charge), summed in record order — so the result reconciles
        exactly (not just approximately) with
        ``TrainingHistory.comm_seconds`` and ``comm_hidden_seconds``.
        With an explicit ``rank`` it is that rank's display view: every
        span on the rank's track, group-shared timings included.

        >>> tr = Tracer()
        >>> _ = tr.span("eig_comm", "comm", rank=0, duration=1.0,
        ...             attrs={"exposed": 0.25, "hidden": 0.75, "bytes": 8.0})
        >>> tr.phase_totals(0)["eig_comm"]
        {'exposed': 0.25, 'hidden': 0.75, 'bytes': 8.0}
        >>> tr.phase_totals()["eig_comm"]["exposed"]    # ledger view
        0.25
        """
        out: dict[str, dict[str, float]] = {}
        for s in self.spans(rank=rank, cat=cat):
            if rank is None and not s.attrs.get("owner", True):
                continue
            bucket = out.setdefault(
                s.name, {"exposed": 0.0, "hidden": 0.0, "bytes": 0.0}
            )
            bucket["exposed"] += s.attrs.get("exposed", 0.0)
            bucket["hidden"] += s.attrs.get("hidden", 0.0)
            bucket["bytes"] += s.attrs.get("bytes", 0.0)
        return out

    def reset(self) -> None:
        """Drop all spans and rewind every rank clock to zero.

        >>> tr = Tracer()
        >>> _ = tr.span("x", "task", rank=0, duration=1.0)
        >>> tr.reset(); (tr.spans(), tr.clock(0))
        ([], 0.0)
        """
        with self._lock:
            self._spans.clear()
            self._clocks.clear()
            self._seq.clear()
            self._flow_opened.clear()
            self._flow_closed.clear()

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def to_chrome(self) -> dict:
        """Export the Chrome trace event format (Perfetto-loadable).

        One ``pid`` per rank (with a ``process_name`` metadata event),
        ``"X"`` complete events with ``ts``/``dur`` in simulated
        microseconds, and ``"s"``/``"f"`` flow events linking each
        launch to its wait.  Wall-clock times ride in ``args``.

        >>> tr = Tracer()
        >>> tr.launch(0, "fac:0"); tr.wait(0, "fac:0")  # doctest: +ELLIPSIS
        Span(...)
        Span(...)
        >>> phs = [e["ph"] for e in tr.to_chrome()["traceEvents"]]
        >>> ("s" in phs, "f" in phs, "M" in phs)
        (True, True, True)
        """
        events: list[dict] = []
        spans = self.spans()
        for r in sorted({s.rank for s in spans}):
            events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": r,
                    "tid": 0,
                    "args": {"name": f"rank {r}"},
                }
            )
        for s in spans:
            ts = s.t_start * 1e6
            args = dict(s.attrs)
            args["wall_start"] = s.wall_start
            args["wall_end"] = s.wall_end
            events.append(
                {
                    "name": s.name,
                    "cat": s.cat,
                    "ph": "X",
                    "pid": s.rank,
                    "tid": 0,
                    "ts": ts,
                    "dur": s.duration * 1e6,
                    "args": args,
                }
            )
            if s.flow is not None:
                ph, flow_id, tag = s.flow
                flow_event = {
                    "name": tag,
                    "cat": "flow",
                    "ph": ph,
                    "pid": s.rank,
                    "tid": 0,
                    "ts": ts,
                    "id": flow_id,
                }
                if ph == "f":
                    flow_event["bp"] = "e"
                events.append(flow_event)
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def to_json(self, indent: int | None = None) -> str:
        """Chrome-trace export serialized to a JSON string.

        >>> import json
        >>> tr = Tracer()
        >>> _ = tr.span("x", "task", rank=0)
        >>> json.loads(tr.to_json())["displayTimeUnit"]
        'ms'
        """
        return json.dumps(self.to_chrome(), indent=indent)

    def write(self, path) -> None:
        """Write the Chrome-trace JSON to ``path``.

        >>> import json, tempfile, os
        >>> tr = Tracer(); _ = tr.span("x", "task", rank=0)
        >>> p = os.path.join(tempfile.mkdtemp(), "trace.json")
        >>> tr.write(p)
        >>> "traceEvents" in json.load(open(p))
        True
        """
        with open(path, "w") as fh:
            fh.write(self.to_json())


class NullTracer:
    """The zero-cost disabled tracer: every method is a no-op.

    Call sites guard span construction with ``if tracer.enabled:``, so
    with the null tracer installed no span (or attrs dict) is ever
    allocated and all simulated ledgers are bitwise identical to an
    uninstrumented run.

    Example
    -------
    >>> NULL_TRACER.enabled
    False
    >>> NULL_TRACER.span("x", "task", rank=0) is None
    True
    >>> NULL_TRACER.spans()
    []
    """

    enabled: bool = False

    def span(self, *args, **kwargs) -> None:
        return None

    def instant(self, *args, **kwargs) -> None:
        return None

    def launch(self, *args, **kwargs) -> None:
        return None

    def wait(self, *args, **kwargs) -> None:
        return None

    def spans(self, *args, **kwargs) -> list:
        return []

    def ranks(self) -> list:
        return []

    def clock(self, rank: int) -> float:
        return 0.0

    def phase_totals(self, *args, **kwargs) -> dict:
        return {}

    def reset(self) -> None:
        return None

    def to_chrome(self) -> dict:
        return {"traceEvents": [], "displayTimeUnit": "ms"}


#: Shared process-wide disabled tracer (the default everywhere).
NULL_TRACER = NullTracer()


def validate_chrome_trace(trace: dict) -> int:
    """Validate a Chrome-trace dict; return its event count.

    Checks the schema (required keys per event phase), per-pid timestamp
    monotonicity of ``"X"`` events, and ``"s"``/``"f"`` flow pairing
    (every flow id opened exactly once and closed at most once, never
    closed before it opens).  Raises :class:`ValueError` on violation.

    >>> tr = Tracer()
    >>> tr.launch(0, "t"); tr.wait(0, "t")   # doctest: +ELLIPSIS
    Span(...)
    Span(...)
    >>> validate_chrome_trace(tr.to_chrome())
    5
    >>> validate_chrome_trace({"traceEvents": [{"ph": "X"}]})
    Traceback (most recent call last):
        ...
    ValueError: event 0 missing keys: ...
    """
    if not isinstance(trace, dict) or "traceEvents" not in trace:
        raise ValueError("trace must be a dict with a 'traceEvents' list")
    events = trace["traceEvents"]
    if not isinstance(events, list):
        raise ValueError("traceEvents must be a list")
    required = {
        "M": ("name", "ph", "pid", "tid", "args"),
        "X": ("name", "cat", "ph", "pid", "tid", "ts", "dur"),
        "i": ("name", "cat", "ph", "pid", "tid", "ts"),
        "s": ("name", "cat", "ph", "pid", "tid", "ts", "id"),
        "f": ("name", "cat", "ph", "pid", "tid", "ts", "id"),
    }
    last_ts: dict[int, float] = {}
    open_flows: dict[str, int] = {}
    closed_flows: set[str] = set()
    for i, ev in enumerate(events):
        ph = ev.get("ph")
        if ph not in required:
            raise ValueError(f"event {i} has unknown phase {ph!r}")
        missing = [k for k in required[ph] if k not in ev]
        if missing:
            raise ValueError(f"event {i} missing keys: {missing}")
        if ph == "X":
            pid = ev["pid"]
            ts = float(ev["ts"])
            if ts < last_ts.get(pid, 0.0) - 1e-9:
                raise ValueError(
                    f"event {i}: ts {ts} regresses on pid {pid} "
                    f"(last {last_ts[pid]})"
                )
            if float(ev["dur"]) < 0.0:
                raise ValueError(f"event {i}: negative dur")
            last_ts[pid] = ts + float(ev["dur"])
        elif ph == "s":
            fid = str(ev["id"])
            open_flows[fid] = open_flows.get(fid, 0) + 1
            if open_flows[fid] > 1:
                raise ValueError(f"event {i}: flow id {fid!r} opened twice")
        elif ph == "f":
            fid = str(ev["id"])
            if fid not in open_flows:
                raise ValueError(f"event {i}: flow id {fid!r} closed before open")
            if fid in closed_flows:
                raise ValueError(f"event {i}: flow id {fid!r} closed twice")
            closed_flows.add(fid)
    return len(events)
