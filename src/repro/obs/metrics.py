"""A unified metrics registry: counters, gauges, histograms with labels.

Before this module the run's counters were scattered across
``TrainingHistory`` fields, ``World`` ledgers, ``FaultPlan`` tallies and
the ``GradScaler`` — each with its own ad-hoc access path.  The
:class:`MetricsRegistry` is the single collection point: instruments are
created by name, carry optional label sets (``phase=...``,
``factor=...``), and the whole registry snapshots to one nested dict
that ``TrainingHistory.metrics`` stores verbatim.

The registry is *pull-based*: the trainer collects from the live objects
at the end of ``train()`` (see
:meth:`MetricsRegistry.collect_training_run`), so instrumenting a run
costs nothing per step.

Example
-------
>>> reg = MetricsRegistry()
>>> reg.counter("comm.retries").inc()
>>> reg.gauge("amp.loss_scale").set(65536.0)
>>> reg.histogram("task.seconds").observe(0.25, kind="Eig")
>>> snap = reg.snapshot()
>>> snap["counters"]["comm.retries"][""]
1.0
>>> snap["histograms"]["task.seconds"]["kind=Eig"]["count"]
1
"""

from __future__ import annotations

from typing import Iterable

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


def _label_key(labels: dict[str, object]) -> str:
    """Canonical string key for a label set (sorted ``k=v`` pairs).

    >>> _label_key({"phase": "eig_comm", "rank": 0})
    'phase=eig_comm,rank=0'
    >>> _label_key({})
    ''
    """
    return ",".join(f"{k}={labels[k]}" for k in sorted(labels))


class Counter:
    """A monotonically increasing labeled counter.

    Example
    -------
    >>> c = Counter("kfac.steps")
    >>> c.inc(); c.inc(2, strategy="hybrid")
    >>> (c.value(), c.value(strategy="hybrid"), c.total())
    (1.0, 2.0, 3.0)
    """

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._values: dict[str, float] = {}

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        """Add ``amount`` (default 1) to the labeled series."""
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease by {amount}")
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: object) -> float:
        """Current value of one labeled series (0 if never incremented)."""
        return self._values.get(_label_key(labels), 0.0)

    def total(self) -> float:
        """Sum over every labeled series."""
        return sum(self._values.values())

    def snapshot(self) -> dict[str, float]:
        """``{label_key: value}`` for every series."""
        return dict(sorted(self._values.items()))


class Gauge:
    """A labeled gauge: a value that can move both ways.

    Example
    -------
    >>> g = Gauge("comm.bytes")
    >>> g.set(1024.0, phase="factor_comm"); g.add(512.0, phase="factor_comm")
    >>> g.value(phase="factor_comm")
    1536.0
    """

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._values: dict[str, float] = {}

    def set(self, value: float, **labels: object) -> None:
        """Set the labeled series to ``value``."""
        self._values[_label_key(labels)] = float(value)

    def add(self, amount: float, **labels: object) -> None:
        """Add ``amount`` (either sign) to the labeled series."""
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: object) -> float:
        """Current value of one labeled series (0 if never set)."""
        return self._values.get(_label_key(labels), 0.0)

    def snapshot(self) -> dict[str, float]:
        """``{label_key: value}`` for every series."""
        return dict(sorted(self._values.items()))


class Histogram:
    """A labeled summary histogram (count/sum/min/max/mean).

    Deterministic and dependency-free: observations fold into running
    summary statistics rather than stored samples.

    Example
    -------
    >>> h = Histogram("span.seconds")
    >>> for v in (0.1, 0.3): h.observe(v, cat="comm")
    >>> s = h.summary(cat="comm")
    >>> (s["count"], round(s["sum"], 3), s["min"], s["max"])
    (2, 0.4, 0.1, 0.3)
    """

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._stats: dict[str, dict[str, float]] = {}

    def observe(self, value: float, **labels: object) -> None:
        """Fold one observation into the labeled series."""
        key = _label_key(labels)
        s = self._stats.get(key)
        if s is None:
            self._stats[key] = {
                "count": 1,
                "sum": float(value),
                "min": float(value),
                "max": float(value),
            }
        else:
            s["count"] += 1
            s["sum"] += value
            s["min"] = min(s["min"], value)
            s["max"] = max(s["max"], value)

    def summary(self, **labels: object) -> dict[str, float]:
        """Summary stats for one labeled series, with ``mean`` derived."""
        s = self._stats.get(_label_key(labels))
        if s is None:
            return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0}
        out = dict(s)
        out["mean"] = s["sum"] / s["count"]
        return out

    def snapshot(self) -> dict[str, dict[str, float]]:
        """``{label_key: summary}`` for every series."""
        return {
            key: {**s, "mean": s["sum"] / s["count"]}
            for key, s in sorted(self._stats.items())
        }


class MetricsRegistry:
    """Creates-or-returns named instruments and snapshots them all.

    Example
    -------
    >>> reg = MetricsRegistry()
    >>> reg.counter("a") is reg.counter("a")
    True
    >>> reg.counter("a").inc(3)
    >>> reg.snapshot()["counters"]["a"]
    {'': 3.0}
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str, help: str = "") -> Counter:
        """Get (creating on first use) the named :class:`Counter`."""
        if name not in self._counters:
            self._counters[name] = Counter(name, help)
        return self._counters[name]

    def gauge(self, name: str, help: str = "") -> Gauge:
        """Get (creating on first use) the named :class:`Gauge`."""
        if name not in self._gauges:
            self._gauges[name] = Gauge(name, help)
        return self._gauges[name]

    def histogram(self, name: str, help: str = "") -> Histogram:
        """Get (creating on first use) the named :class:`Histogram`."""
        if name not in self._histograms:
            self._histograms[name] = Histogram(name, help)
        return self._histograms[name]

    def snapshot(self) -> dict:
        """One nested dict over every instrument: the ``metrics`` field.

        >>> reg = MetricsRegistry()
        >>> reg.gauge("x").set(1.0)
        >>> sorted(reg.snapshot())
        ['counters', 'gauges', 'histograms']
        """
        return {
            "counters": {
                name: c.snapshot() for name, c in sorted(self._counters.items())
            },
            "gauges": {name: g.snapshot() for name, g in sorted(self._gauges.items())},
            "histograms": {
                name: h.snapshot() for name, h in sorted(self._histograms.items())
            },
        }

    # ------------------------------------------------------------------
    # collection from the live training objects
    # ------------------------------------------------------------------
    def collect_world(self, world) -> None:
        """Fold a ``World``'s time/byte/overlap ledgers into the registry.

        >>> import numpy as np
        >>> from repro.comm.backend import World
        >>> w = World(2)
        >>> _ = w.allreduce([np.ones(4, dtype="float32") for _ in range(2)],
        ...                 phase="grad_allreduce")
        >>> reg = MetricsRegistry(); reg.collect_world(w)
        >>> reg.gauge("comm.exposed_seconds").value(phase="grad_allreduce") > 0
        True
        """
        exposed = self.gauge("comm.exposed_seconds")
        for phase, seconds in world.timers.as_dict().items():
            exposed.set(seconds, phase=phase)
        hidden = self.gauge("comm.hidden_seconds")
        for phase, h in sorted(world.overlap.hidden_by_phase.items()):
            hidden.set(h, phase=phase)
        nbytes = self.gauge("comm.bytes")
        ops = self.counter("comm.ops")
        for phase in sorted(world.stats.bytes_by_phase):
            nbytes.set(world.stats.bytes_by_phase[phase], phase=phase)
            ops.inc(world.stats.ops_by_phase.get(phase, 0), phase=phase)

    def collect_scaler(self, scaler) -> None:
        """Fold a ``GradScaler``'s step tallies and live scale in."""
        self.counter("amp.steps_taken").inc(scaler.steps_taken)
        self.counter("amp.steps_skipped").inc(scaler.steps_skipped)
        self.gauge("amp.loss_scale").set(scaler.scale)

    def collect_kfacs(self, kfacs: Iterable) -> None:
        """Fold per-replica KFAC counters in (labeled by rank)."""
        stale = self.counter("kfac.stale_fallbacks")
        eigs = self.counter("kfac.local_eigs")
        staleness = self.gauge("kfac.staleness")
        for kfac in kfacs:
            rank = kfac.rank
            eigs.inc(kfac.n_eigs_computed_locally, rank=rank)
            stale.inc(kfac.n_stale_fallbacks, rank=rank)
            for key in sorted(kfac.staleness):
                staleness.set(kfac.staleness[key], rank=rank, factor=key)
        first = next(iter(kfacs), None)
        if first is not None:
            self.counter("kfac.steps").inc(first.steps)
            self.counter("kfac.factor_updates").inc(first.n_factor_updates)
            self.counter("kfac.second_order_updates").inc(
                first.n_second_order_updates
            )
            # drift-triggered refresh bookkeeping (zero when the trigger
            # is disabled; counters are lockstep so rank 0 suffices)
            self.counter("kfac.drift_refreshes").inc(
                getattr(first, "n_drift_refreshes", 0)
            )
            self.counter("kfac.drift_skips").inc(
                getattr(first, "n_drift_skips", 0)
            )
            # parameterized-but-unpreconditioned layers (identical across
            # replicas): total plus a per-type breakdown
            unsupported = getattr(first, "unsupported_layers", ())
            gauge = self.gauge("kfac.unsupported_layers")
            gauge.set(len(unsupported))
            by_type: dict[str, int] = {}
            for _name, type_name in unsupported:
                by_type[type_name] = by_type.get(type_name, 0) + 1
            for type_name in sorted(by_type):
                gauge.set(by_type[type_name], kind=type_name)

    def collect_driver(self, driver) -> None:
        """Fold a driver's retry/fallback tallies in."""
        self.counter("comm.retries").inc(driver.comm_retries)
        self.counter("comm.fallbacks").inc(driver.comm_fallbacks)

    def collect_faults(self, fault_plan) -> None:
        """Fold a ``FaultPlan``'s injection tallies in."""
        self.counter("faults.injected").inc(fault_plan.events)
        self.counter("faults.failures").inc(fault_plan.injected_failures)
        self.gauge("faults.delay_seconds").set(fault_plan.injected_delay_seconds)

    def collect_training_run(self, trainer) -> None:
        """One-call collection from a ``DataParallelTrainer`` after ``train()``.

        Folds in the world's comm ledgers, the grad scaler, the
        preconditioners and phase controller when K-FAC ran, and the fault
        plan when one was installed — the pull that rebuilds the scalar
        ``TrainingHistory`` fields from a single source.
        """
        self.collect_world(trainer.world)
        self.collect_scaler(trainer.grad_scaler)
        if trainer.kfacs is not None:
            self.collect_kfacs(trainer.kfacs)
        if trainer.kfac_controller is not None:
            self.collect_driver(trainer.kfac_controller)
        if trainer.world.fault_plan is not None:
            self.collect_faults(trainer.world.fault_plan)
