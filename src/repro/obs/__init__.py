"""Observability: per-rank tracing, unified metrics, and drift reports.

Three pieces, layered from recording to analysis:

- :mod:`repro.obs.tracer` — typed :class:`Span` records on deterministic
  per-rank simulated clocks, exported as Chrome-trace JSON (Perfetto),
  with a zero-cost :data:`NULL_TRACER` default.
- :mod:`repro.obs.metrics` — the :class:`MetricsRegistry` of labeled
  counters/gauges/histograms that ``TrainingHistory`` is built on.
- :mod:`repro.obs.report` — the modeled-vs-measured drift report
  aligning traced stage times with :class:`IterationModel` predictions
  (imported lazily: it pulls in :mod:`repro.perfmodel`, which the
  low-level comm/sched instrumentation must not depend on).

Example
-------
>>> from repro.obs import NULL_TRACER, Tracer
>>> NULL_TRACER.enabled
False
>>> tr = Tracer()
>>> _ = tr.span("forward", "trainer", rank=0, duration=0.0)
>>> len(tr.spans())
1
"""

from __future__ import annotations

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    validate_chrome_trace,
)

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "validate_chrome_trace",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DriftRow",
    "DriftReport",
    "fig1_drift_report",
]

_LAZY = {"DriftRow", "DriftReport", "fig1_drift_report"}


def __getattr__(name: str):
    if name in _LAZY:
        from repro.obs import report

        return getattr(report, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
