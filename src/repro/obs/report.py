"""Modeled-vs-measured drift report for the paper's Fig. 1 stages.

The perfmodel (:mod:`repro.perfmodel.iteration`) prices every placement
decision; the trainer measures what actually happened.  This module
aligns the two: for each stage of the paper's Fig. 1 decomposition
(``io`` / ``forward`` / ``gradient`` / ``exchange`` / ``update``) plus
the K-FAC communication sub-stages (``factor_comm`` / ``eig_comm`` /
``precond_comm``), it tabulates the modeled per-iteration time next to
the measured one and the relative error — so perfmodel regressions
become assertable instead of anecdotal.

Measured times come from a :class:`~repro.parallel.trainer.TrainingHistory`:
wall-clock stopwatches for the compute stages, the simulated
exposed+hidden comm ledgers for the communication stages.  Modeled times
come from :meth:`IterationModel.fig1_stage_times` and
:meth:`IterationModel.stage_profile`.  The two sides price different
machines (this host's wall clock and the backend's simulated wire vs.
the modeled cluster), so large absolute drift is expected; the report's
value is the *structure* — every stage is present, finite, and
trackable across commits, so a perfmodel or scheduler regression moves
a number somebody is watching.

Example
-------
>>> from repro.obs.report import DriftRow
>>> round(DriftRow(stage="io", modeled=0.02, measured=0.021).rel_error, 3)
0.05
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.perfmodel.iteration import (
    DEFAULT_BUCKET_BYTES,
    IterationModel,
    KfacIntervals,
    PRECISIONS,
)
from repro.utils.tables import format_table

__all__ = ["DriftRow", "DriftReport", "fig1_drift_report"]

#: The Fig. 1 stages, in paper order, followed by the K-FAC comm sub-stages.
FIG1_STAGES = ("io", "forward", "gradient", "exchange", "update")
COMM_STAGES = ("factor_comm", "eig_comm", "precond_comm")


@dataclass(frozen=True)
class DriftRow:
    """One stage's modeled-vs-measured comparison (seconds per iteration).

    Example
    -------
    >>> row = DriftRow(stage="exchange", modeled=0.5, measured=0.6)
    >>> (row.abs_error, round(row.rel_error, 3))
    (0.09999999999999998, 0.2)
    >>> DriftRow(stage="update", modeled=0.0, measured=0.0).rel_error
    0.0
    """

    stage: str
    modeled: float
    measured: float

    @property
    def abs_error(self) -> float:
        """``measured - modeled`` in seconds per iteration."""
        return self.measured - self.modeled

    @property
    def rel_error(self) -> float:
        """``(measured - modeled) / modeled``; ``inf`` when only one is 0."""
        if self.modeled > 0.0:
            return self.abs_error / self.modeled
        return 0.0 if self.measured == 0.0 else math.inf


@dataclass
class DriftReport:
    """A set of :class:`DriftRow` entries with a rendered ASCII table.

    Example
    -------
    >>> rep = DriftReport(rows=[DriftRow("io", 0.02, 0.03)])
    >>> rep.row("io").measured
    0.03
    >>> print(rep.render())        # doctest: +ELLIPSIS
    +-...
    | stage | modeled s/iter | measured s/iter | rel error |
    ...
    """

    rows: list[DriftRow] = field(default_factory=list)
    meta: dict = field(default_factory=dict)

    def row(self, stage: str) -> DriftRow:
        """The row for ``stage`` (raises :class:`KeyError` if absent)."""
        for r in self.rows:
            if r.stage == stage:
                return r
        raise KeyError(stage)

    def stages(self) -> list[str]:
        """Stage names in row order."""
        return [r.stage for r in self.rows]

    def as_dict(self) -> dict[str, dict[str, float]]:
        """``{stage: {modeled, measured, abs_error, rel_error}}``."""
        return {
            r.stage: {
                "modeled": r.modeled,
                "measured": r.measured,
                "abs_error": r.abs_error,
                "rel_error": r.rel_error,
            }
            for r in self.rows
        }

    def render(self, title: str | None = None) -> str:
        """The modeled-vs-measured table as ASCII art."""
        body = []
        for r in self.rows:
            rel = "inf" if math.isinf(r.rel_error) else f"{r.rel_error:+.1%}"
            body.append(
                [r.stage, f"{r.modeled:.3e}", f"{r.measured:.3e}", rel]
            )
        return format_table(
            ["stage", "modeled s/iter", "measured s/iter", "rel error"],
            body,
            title=title,
        )


def _normalize_precision(name: str | None) -> str:
    """Map a precision-policy name onto the perfmodel precision axis.

    >>> (_normalize_precision("fp16"), _normalize_precision("weird"),
    ...  _normalize_precision(None))
    ('fp16', 'fp32', 'fp32')
    """
    return name if name in PRECISIONS else "fp32"


def fig1_drift_report(
    history,
    model: IterationModel,
    p: int,
    intervals: KfacIntervals,
    policy: str = "round_robin",
    bucket_bytes: int = DEFAULT_BUCKET_BYTES,
    symmetric: bool = False,
    scheduler: str | None = None,
) -> DriftReport:
    """Align a traced run's stage times with the perfmodel's predictions.

    ``history`` is a :class:`~repro.parallel.trainer.TrainingHistory`;
    strategy, gradient-worker fraction and precision are read off it, so
    the modeled configuration always matches what actually ran.
    Measured compute stages (``io``/``forward``/``gradient``/``update``)
    use the trainer's wall-clock stopwatches; measured communication
    stages (``exchange`` and the K-FAC sub-stages) use the simulated
    exposed+hidden ledgers, divided by the iteration count.

    Example
    -------
    >>> from repro.parallel.trainer import TrainingHistory
    >>> from repro.perfmodel.hardware import FRONTERA_LIKE, V100_LIKE
    >>> from repro.perfmodel.iteration import IterationModel, KfacIntervals
    >>> from repro.perfmodel.specs import resnet_spec
    >>> hist = TrainingHistory()
    >>> hist.total_iterations = 10
    >>> hist.phase_seconds = {"io": 0.2, "forward": 1.0, "backward": 2.0,
    ...                       "update": 0.5}
    >>> hist.comm_seconds = {"grad_allreduce": 0.3, "factor_comm": 0.1}
    >>> hist.kfac_strategy = "comm-opt"
    >>> im = IterationModel(resnet_spec(50), V100_LIKE, FRONTERA_LIKE)
    >>> rep = fig1_drift_report(hist, im, p=8,
    ...                         intervals=KfacIntervals.from_eig_interval(10))
    >>> rep.stages()[:5]
    ['io', 'forward', 'gradient', 'exchange', 'update']
    >>> all(r.modeled >= 0 and r.measured >= 0 for r in rep.rows)
    True
    """
    iters = max(1, history.total_iterations)
    precision = _normalize_precision(getattr(history, "precision", None))
    strategy = getattr(history, "kfac_strategy", None)
    grad_worker_frac = getattr(history, "grad_worker_frac", None)

    modeled = model.fig1_stage_times(
        p,
        strategy=strategy,
        intervals=intervals if strategy else None,
        policy=policy,
        bucket_bytes=bucket_bytes,
        symmetric=symmetric,
        precision=precision,
        grad_worker_frac=grad_worker_frac,
        scheduler=scheduler,
    )

    wall = history.phase_seconds
    hidden = history.comm_hidden_seconds

    def sim_total(phase: str) -> float:
        return history.comm_seconds.get(phase, 0.0) + hidden.get(phase, 0.0)

    measured = {
        "io": wall.get("io", 0.0) / iters,
        "forward": wall.get("forward", 0.0) / iters,
        "gradient": wall.get("backward", 0.0) / iters,
        "exchange": sim_total("grad_allreduce") / iters,
        "update": wall.get("update", 0.0) / iters,
    }
    rows = [DriftRow(s, modeled[s], measured[s]) for s in FIG1_STAGES]

    if strategy:
        profile = model.stage_profile(
            p,
            policy=policy,
            bucket_bytes=bucket_bytes,
            symmetric=symmetric,
            precision=precision,
            grad_worker_frac=grad_worker_frac,
            scheduler=scheduler,
        )
        modeled_comm = {
            "factor_comm": profile.factor_tcomm / intervals.fac_interval,
            "eig_comm": profile.eig_tcomm / intervals.eig_interval,
            "precond_comm": profile.precond_tcomm,
        }
        for s in COMM_STAGES:
            rows.append(DriftRow(s, modeled_comm[s], sim_total(s) / iters))

    return DriftReport(
        rows=rows,
        meta={
            "p": p,
            "strategy": strategy,
            "grad_worker_frac": grad_worker_frac,
            "precision": precision,
            "scheduler": scheduler,
            "iterations": history.total_iterations,
        },
    )
