"""Numpy data augmentation (random crop with padding, horizontal flip).

The standard CIFAR recipe the paper's training scripts use; available for
experiments that want extra regularization realism.
"""

from __future__ import annotations

import numpy as np

__all__ = ["random_crop", "random_flip", "augment_batch"]


def random_crop(
    x: np.ndarray, rng: np.random.Generator, padding: int = 2
) -> np.ndarray:
    """Random crop after zero-padding (per-sample offsets).

    Example
    -------
    >>> import numpy as np
    >>> from repro.data.augment import random_crop
    >>> x = np.ones((2, 3, 8, 8), dtype=np.float32)
    >>> random_crop(x, np.random.default_rng(0), padding=2).shape
    (2, 3, 8, 8)
    """
    if x.ndim != 4:
        raise ValueError(f"expected NCHW batch, got {x.shape}")
    n, c, h, w = x.shape
    padded = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    out = np.empty_like(x)
    offs = rng.integers(0, 2 * padding + 1, size=(n, 2))
    for i in range(n):
        dy, dx = offs[i]
        out[i] = padded[i, :, dy : dy + h, dx : dx + w]
    return out


def random_flip(x: np.ndarray, rng: np.random.Generator, p: float = 0.5) -> np.ndarray:
    """Horizontal flip with probability ``p`` per sample.

    Example
    -------
    >>> import numpy as np
    >>> from repro.data.augment import random_flip
    >>> x = np.arange(8, dtype=np.float32).reshape(1, 1, 2, 4)
    >>> flipped = random_flip(x, np.random.default_rng(0), p=1.0)
    >>> flipped[0, 0, 0].tolist()         # each row reversed
    [3.0, 2.0, 1.0, 0.0]
    """
    if x.ndim != 4:
        raise ValueError(f"expected NCHW batch, got {x.shape}")
    flip = rng.random(len(x)) < p
    out = x.copy()
    out[flip] = out[flip, :, :, ::-1]
    return out


def augment_batch(
    x: np.ndarray, rng: np.random.Generator, padding: int = 2, flip_p: float = 0.5
) -> np.ndarray:
    """Standard crop+flip pipeline."""
    return random_flip(random_crop(x, rng, padding), rng, flip_p)
