"""Synthetic image-classification datasets (CIFAR-10 / ImageNet stand-ins).

The real datasets are unavailable offline; per DESIGN.md these generators
produce deterministic, learnable, *ill-conditioned* classification tasks
that exercise the same code paths and preserve the qualitative comparisons
the paper makes (K-FAC vs SGD convergence, inverse vs eigen stability,
update-frequency sensitivity).
"""

from repro.data.augment import random_crop, random_flip
from repro.data.loader import DataLoader, batch_iterator
from repro.data.synthetic import (
    SyntheticImageDataset,
    SyntheticSpec,
    cifar10_like,
    imagenet_like,
)

__all__ = [
    "SyntheticSpec",
    "SyntheticImageDataset",
    "cifar10_like",
    "imagenet_like",
    "DataLoader",
    "batch_iterator",
    "random_crop",
    "random_flip",
]
