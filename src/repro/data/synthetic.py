"""Deterministic synthetic image-classification generators.

Construction (per class ``k``):

1. draw a smooth random *template* ``T_k`` (low-pass-filtered Gaussian
   noise) — classes are distinguishable by spatial structure, so
   convolutions genuinely help;
2. scale channels/frequency bands by a log-spaced factor — the resulting
   input covariance has a wide eigenvalue spread, i.e. the optimization
   problem is **ill-conditioned**, which is precisely the regime where
   second-order preconditioning (K-FAC) converges in fewer iterations than
   SGD (the paper's central convergence claim);
3. each sample is ``amplitude * shift(T_k) + noise``, with random
   per-sample amplitude, circular spatial shift, and Gaussian pixel noise
   controlling task difficulty.

Everything is a pure function of the spec's seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import ndimage

__all__ = ["SyntheticSpec", "SyntheticImageDataset", "cifar10_like", "imagenet_like"]


@dataclass(frozen=True)
class SyntheticSpec:
    """Parameters of a synthetic dataset.

    Attributes
    ----------
    n_train / n_val:
        Sample counts.
    num_classes:
        Number of balanced classes.
    image_size:
        Square image side.
    channels:
        Image channels.
    noise:
        Additive Gaussian pixel-noise std (task difficulty).
    max_shift:
        Maximum circular shift (pixels) applied per sample.
    amplitude_jitter:
        Relative std of the per-sample template amplitude.
    conditioning:
        Ratio between the largest and smallest channel scale (>= 1);
        larger = more ill-conditioned inputs.
    smoothing:
        Gaussian blur sigma applied to templates (spatial smoothness).
    class_pairing:
        When > 0, classes come in *pairs* sharing a base template and
        differing only by ``+/- class_pairing * delta`` for a small random
        direction ``delta`` — a fine-grained discrimination task whose
        informative gradient directions have small curvature (the
        ill-conditioned regime where second-order methods help).
        Requires an even ``num_classes``.
    seed:
        Root seed.

    Example
    -------
    >>> from repro.data.synthetic import SyntheticSpec
    >>> spec = SyntheticSpec(n_train=64, n_val=16, num_classes=4, image_size=8)
    >>> spec.num_classes, spec.image_size
    (4, 8)
    """

    n_train: int = 2000
    n_val: int = 500
    num_classes: int = 10
    image_size: int = 16
    channels: int = 3
    noise: float = 0.6
    max_shift: int = 2
    amplitude_jitter: float = 0.25
    conditioning: float = 25.0
    smoothing: float = 1.5
    class_pairing: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_train < self.num_classes or self.n_val < 1:
            raise ValueError("dataset too small for the class count")
        if self.conditioning < 1.0:
            raise ValueError(f"conditioning must be >= 1, got {self.conditioning}")
        if self.class_pairing > 0 and self.num_classes % 2 != 0:
            raise ValueError("class_pairing requires an even number of classes")


class SyntheticImageDataset:
    """Materialized synthetic dataset with train/val splits.

    Example
    -------
    >>> from repro.data.synthetic import SyntheticImageDataset, SyntheticSpec
    >>> ds = SyntheticImageDataset(
    ...     SyntheticSpec(n_train=32, n_val=8, num_classes=4, image_size=8)
    ... )
    >>> ds.train_x.shape, ds.val_y.shape
    ((32, 3, 8, 8), (8,))
    """

    def __init__(self, spec: SyntheticSpec) -> None:
        self.spec = spec
        rng = np.random.default_rng(spec.seed)
        self.templates = self._make_templates(rng)
        self.train_x, self.train_y = self._make_split(rng, spec.n_train)
        self.val_x, self.val_y = self._make_split(rng, spec.n_val)

    def _make_templates(self, rng: np.random.Generator) -> np.ndarray:
        s = self.spec

        def smooth_unit(shape: tuple[int, ...], sigma: float) -> np.ndarray:
            raw = rng.normal(size=shape)
            sm = ndimage.gaussian_filter(raw, sigma=(0, 0, sigma, sigma), mode="wrap")
            norms = np.sqrt((sm**2).mean(axis=(1, 2, 3), keepdims=True))
            return sm / np.maximum(norms, 1e-8)

        if s.class_pairing > 0:
            half = s.num_classes // 2
            base = smooth_unit(
                (half, s.channels, s.image_size, s.image_size), s.smoothing
            )
            delta = smooth_unit(
                (half, s.channels, s.image_size, s.image_size), s.smoothing * 0.67
            )
            templates = np.empty(
                (s.num_classes, s.channels, s.image_size, s.image_size)
            )
            templates[0::2] = base + s.class_pairing * delta
            templates[1::2] = base - s.class_pairing * delta
        else:
            templates = smooth_unit(
                (s.num_classes, s.channels, s.image_size, s.image_size), s.smoothing
            )
        # ill-conditioned channel scales
        scales = np.logspace(0, np.log10(s.conditioning), s.channels)
        scales = scales / scales.mean()
        templates *= scales[None, :, None, None]
        return templates.astype(np.float32)

    def _make_split(
        self, rng: np.random.Generator, n: int
    ) -> tuple[np.ndarray, np.ndarray]:
        s = self.spec
        labels = rng.integers(0, s.num_classes, size=n)
        x = np.empty((n, s.channels, s.image_size, s.image_size), dtype=np.float32)
        amplitudes = 1.0 + s.amplitude_jitter * rng.standard_normal(n)
        shifts = rng.integers(-s.max_shift, s.max_shift + 1, size=(n, 2))
        noise = rng.normal(0.0, s.noise, size=x.shape).astype(np.float32)
        for i in range(n):
            t = self.templates[labels[i]]
            if s.max_shift > 0:
                t = np.roll(t, shift=tuple(shifts[i]), axis=(1, 2))
            x[i] = amplitudes[i] * t
        x += noise
        return x, labels.astype(np.int64)

    @property
    def splits(
        self,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """``(train_x, train_y, val_x, val_y)``."""
        return self.train_x, self.train_y, self.val_x, self.val_y


def cifar10_like(
    n_train: int = 2000,
    n_val: int = 500,
    image_size: int = 16,
    seed: int = 0,
    **kw: object,
) -> SyntheticImageDataset:
    """CIFAR-10 stand-in: 10 classes, 3 channels (default 16x16 for CPU).

    Example
    -------
    >>> from repro.data.synthetic import cifar10_like
    >>> ds = cifar10_like(n_train=50, n_val=10, image_size=8)
    >>> ds.train_x.shape
    (50, 3, 8, 8)
    """
    return SyntheticImageDataset(
        SyntheticSpec(
            n_train=n_train, n_val=n_val, num_classes=10, image_size=image_size,
            channels=3, seed=seed, **kw,  # type: ignore[arg-type]
        )
    )


def imagenet_like(
    n_train: int = 4000,
    n_val: int = 1000,
    num_classes: int = 20,
    image_size: int = 32,
    seed: int = 0,
    **kw: object,
) -> SyntheticImageDataset:
    """ImageNet-1k stand-in, scaled (more classes, larger images, noisier).

    Example
    -------
    >>> from repro.data.synthetic import imagenet_like
    >>> ds = imagenet_like(n_train=40, n_val=20, num_classes=4, image_size=8)
    >>> int(ds.train_y.max()) < 4
    True
    """
    return SyntheticImageDataset(
        SyntheticSpec(
            n_train=n_train, n_val=n_val, num_classes=num_classes,
            image_size=image_size, channels=3, noise=0.8, max_shift=4,
            seed=seed, **kw,  # type: ignore[arg-type]
        )
    )
