"""Mini-batch iteration utilities."""

from __future__ import annotations

from typing import Iterator

import numpy as np

__all__ = ["batch_iterator", "DataLoader"]


def batch_iterator(
    x: np.ndarray,
    y: np.ndarray,
    indices: np.ndarray,
    batch_size: int,
    drop_last: bool = False,
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Yield ``(x_batch, y_batch)`` over ``indices`` in order.

    Example
    -------
    >>> import numpy as np
    >>> from repro.data.loader import batch_iterator
    >>> x, y = np.arange(10), np.arange(10) % 2
    >>> [len(bx) for bx, _ in batch_iterator(x, y, np.arange(10), 4)]
    [4, 4, 2]
    """
    if len(x) != len(y):
        raise ValueError(f"x/y length mismatch: {len(x)} vs {len(y)}")
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    n = len(indices)
    for lo in range(0, n, batch_size):
        idx = indices[lo : lo + batch_size]
        if drop_last and len(idx) < batch_size:
            return
        yield x[idx], y[idx]


class DataLoader:
    """Shuffling batch loader with deterministic per-epoch order.

    Example
    -------
    >>> import numpy as np
    >>> from repro.data.loader import DataLoader
    >>> loader = DataLoader(np.arange(8), np.arange(8), batch_size=4, seed=0)
    >>> loader.set_epoch(0)
    >>> len(loader)                       # batches per epoch
    2
    >>> sorted(int(v) for bx, _ in loader for v in bx)   # a permutation
    [0, 1, 2, 3, 4, 5, 6, 7]
    """

    def __init__(
        self,
        x: np.ndarray,
        y: np.ndarray,
        batch_size: int,
        shuffle: bool = True,
        seed: int = 0,
        drop_last: bool = False,
    ) -> None:
        if len(x) != len(y):
            raise ValueError(f"x/y length mismatch: {len(x)} vs {len(y)}")
        self.x = x
        self.y = y
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.seed = seed
        self.drop_last = drop_last
        self.epoch = 0

    def set_epoch(self, epoch: int) -> None:
        self.epoch = epoch

    def __len__(self) -> int:
        n = len(self.x)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        n = len(self.x)
        if self.shuffle:
            rng = np.random.default_rng(np.random.SeedSequence((self.seed, self.epoch)))
            indices = rng.permutation(n)
        else:
            indices = np.arange(n)
        yield from batch_iterator(self.x, self.y, indices, self.batch_size, self.drop_last)
