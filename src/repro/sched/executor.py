"""Graph executor: run a :class:`repro.sched.planner.StepPlan` on a KFAC.

One executor replaces the three hand-written update pipelines the
preconditioner used to carry (synchronous, pipelined COMM_OPT, pipelined
HYBRID).  It walks the plan's schedule and turns each task into the
launch/wait step-generator protocol of :mod:`repro.core.comm_ops`:

- synchronous plans yield blocking requests in exactly the order the
  retired pipelines did (bit-identical request stream);
- pipelined plans launch collectives and defer their waits until a
  dependent task needs the data, crediting the *deterministic* simulated
  compute performed in between as overlap — so factor buckets, the
  eigenbasis shares (world allgather, or per-group allgathers under the
  gradient-worker-fraction placement) and the final gradient broadcasts
  all hide behind local eigendecomposition/preconditioning work.

Numerics never depend on the interleaving: the same reductions, the same
decompositions, the same packing — only the exposed-communication
accounting changes between ``scheduler="sync"`` and ``scheduler="graph"``.
"""

from __future__ import annotations

from typing import Any, Generator, Sequence

import numpy as np

from repro.comm.engine import (
    estimate_precondition_seconds,
    estimate_second_order_seconds,
)
from repro.approx.blockeig import block_eigendecompose
from repro.comm.faults import CollectiveFailed
from repro.comm.fusion import tri_pack, tri_unpack
from repro.core.clipping import kl_clip_factor
from repro.core.comm_ops import (
    AllGatherLaunch,
    AllGatherRequest,
    AllReduceLaunch,
    AllReduceRequest,
    GroupAllGatherLaunch,
    GroupAllGatherRequest,
    GroupBroadcastLaunch,
    GroupBroadcastRequest,
    WaitRequest,
    pack_arrays,
    pack_symmetric,
    unpack_arrays,
)
from repro.core.inverse import eigendecompose, explicit_damped_inverse
from repro.obs.tracer import NULL_TRACER

__all__ = ["GraphExecutor"]


class GraphExecutor:
    """Execute one planned K-FAC update step over the comm protocol.

    ``kfac`` is the :class:`repro.core.preconditioner.KFAC` instance whose
    layers/assignment the plan was derived from; :meth:`run` is a
    generator speaking the same request protocol as
    ``KFAC.step_generator`` (drivers cannot tell the difference).

    Example
    -------
    >>> import numpy as np
    >>> from repro.core.preconditioner import KFAC
    >>> from repro.nn import Linear, Sequential
    >>> from repro.nn.loss import CrossEntropyLoss
    >>> from repro.sched.executor import GraphExecutor
    >>> model = Sequential(Linear(4, 3))
    >>> kfac = KFAC(model, kfac_update_freq=1, damping=0.01)
    >>> loss_fn = CrossEntropyLoss()
    >>> x = np.random.default_rng(0).normal(size=(6, 4)).astype(np.float32)
    >>> _ = loss_fn(model(x), np.arange(6) % 3)
    >>> _ = model.backward(loss_fn.backward())
    >>> for layer in kfac.layers:
    ...     layer.update_factors(kfac.hp.factor_decay)
    >>> plan = kfac.build_plan(update_factors=True, update_second_order=True)
    >>> list(GraphExecutor(kfac, plan).run())   # world of one: no requests
    []
    >>> kfac.layers[0].eig_A is not None
    True
    """

    def __init__(self, kfac: Any, plan: Any) -> None:
        self.kfac = kfac
        self.plan = plan
        #: launched-but-unwaited collectives: tag -> result installer,
        #: in launch order (the order the epilogue drains them)
        self._pending: dict[str, Any] = {}
        self._task_tag: dict[str, str] = {}
        #: simulated compute seconds since the last wait (overlap budget)
        self._pending_compute = 0.0
        #: this rank's freshly decomposed second-order payloads, by factor key
        self._computed: dict[str, list[np.ndarray]] = {}
        self._pre: dict[str, np.ndarray] = {}
        self._raw: dict[str, np.ndarray] = {}
        self._wire: list[np.ndarray] | None = None
        self._transport_dtype: np.dtype | None = None
        #: blocked plans (diag_blocks past warmup) resolve meta indices
        #: against the preconditioner's block metas/assignment — every
        #: task below works on either granularity through these two views
        self._blocked: bool = bool(getattr(plan, "blocked", False))
        self._metas = kfac.comm_metas(self._blocked)
        self._assignment = kfac.comm_assignment(self._blocked)
        #: span recorder (repro.obs); inherited from the preconditioner
        self.tracer = getattr(kfac, "tracer", NULL_TRACER)

    # ------------------------------------------------------------------
    # protocol
    # ------------------------------------------------------------------
    def run(self) -> Generator[Any, Any, None]:
        """Yield comm requests for every task in schedule order."""
        plan = self.plan
        graph = plan.graph
        if any(t.kind == "FactorComm" for t in graph.tasks):
            self._prepare_wire()
        for name in plan.schedule:
            task = graph[name]
            yield from self._wait_deps(task)
            yield from self._dispatch(task)
        for tag in list(self._pending):
            yield from self._wait_tag(tag)
        self._finalize()

    def _wait_deps(self, task: Any) -> Generator[Any, Any, None]:
        """Settle any in-flight collective a dependency launched."""
        for dep in task.deps:
            tag = self._task_tag.get(dep)
            if tag is not None and tag in self._pending:
                yield from self._wait_tag(tag)

    def _wait_tag(self, tag: str) -> Generator[Any, Any, None]:
        budget = self._pending_compute
        result = yield WaitRequest(tag=tag, compute_seconds=budget)
        self._pending_compute = 0.0
        install = self._pending.pop(tag)
        install(result)
        if self.tracer.enabled:
            self.tracer.wait(
                self.kfac.rank,
                tag,
                attrs={
                    "compute_seconds": budget,
                    "failed": isinstance(result, CollectiveFailed),
                },
            )

    def _dispatch(self, task: Any) -> Generator[Any, Any, None]:
        kind = task.kind
        if kind == "FactorComm":
            yield from self._run_factor_comm(task)
        elif kind == "Eig":
            self._run_eig(task)
        elif kind == "EigShare":
            yield from self._run_eig_share(task)
        elif kind == "Precondition":
            self._run_precondition(task)
        elif kind == "GradShare":
            yield from self._run_grad_share(task)
        else:  # pragma: no cover - planner only emits known kinds
            raise TypeError(f"unknown task kind {kind!r}")

    # ------------------------------------------------------------------
    # FactorComm
    # ------------------------------------------------------------------
    def _prepare_wire(self) -> None:
        """Build the factor wire payloads (tri-packed, EF-compressed).

        Blocked plans ship only each meta's diagonal block — the
        off-block entries never travel (that is where the byte savings
        come from); the exact path packs whole factors as before.
        """
        kfac = self.kfac
        if self._blocked:
            tensors = []
            for meta in self._metas:
                layer = kfac._layer_by_name(meta.layer)
                factor = layer.A if meta.kind == "A" else layer.G
                assert factor is not None, "wire built before factor update"
                sub = np.ascontiguousarray(factor[meta.lo : meta.hi, meta.lo : meta.hi])
                tensors.append(tri_pack(sub) if kfac.hp.symmetric_comm else sub)
            tensors = kfac._compress_factor_tensors(tensors, self._metas)
        else:
            factors = [l.A for l in kfac.layers] + [l.G for l in kfac.layers]
            tensors = (
                pack_symmetric(factors) if kfac.hp.symmetric_comm else list(factors)
            )
            tensors = kfac._compress_factor_tensors(tensors)
        self._wire = tensors
        # same promotion rule as pack_arrays(dtype=None), pinned explicitly
        # because ranks owning nothing in a share chunk still contribute an
        # empty buffer of the matching dtype
        self._transport_dtype = np.result_type(*tensors)

    def _run_factor_comm(self, task: Any) -> Generator[Any, Any, None]:
        kfac = self.kfac
        b = task.payload["bucket"]
        idxs = tuple(self.plan.buckets[b])
        assert self._wire is not None
        tensors = [self._wire[i] for i in idxs]
        if self.plan.pipelined:
            tag = f"fac:{b}"
            if self.tracer.enabled:
                self.tracer.launch(
                    kfac.rank,
                    tag,
                    attrs={
                        "task": "FactorComm",
                        "bucket": b,
                        "bytes": float(sum(t.nbytes for t in tensors)),
                    },
                )
            yield AllReduceLaunch(
                tensors=tensors,
                op="average",
                phase="factor_comm",
                tag=tag,
                comm_dtype=kfac.hp.comm_dtype,
            )
            self._task_tag[task.name] = tag
            self._pending[tag] = lambda reduced: self._install_factors(idxs, reduced)
        else:
            reduced = yield AllReduceRequest(
                tensors=tensors,
                op="average",
                phase="factor_comm",
                comm_dtype=kfac.hp.comm_dtype,
            )
            self._install_factors(idxs, reduced)

    def _install_factors(self, idxs: Sequence[int], reduced: Sequence[np.ndarray]) -> None:
        kfac = self.kfac
        if isinstance(reduced, CollectiveFailed):
            # exchange lost past the retry budget: keep the local running
            # averages for this refresh (graceful degradation)
            kfac._note_factor_comm_failure([self._metas[i] for i in idxs])
            return
        for i, arr in zip(idxs, reduced):
            meta = self._metas[i]
            layer = kfac._layer_by_name(meta.layer)
            if self._blocked:
                # write the averaged block in place; off-block entries stay
                # local (they are never read once blocks are active)
                target = layer.A if meta.kind == "A" else layer.G
                db = meta.dim
                block = (
                    tri_unpack(arr, db)
                    if kfac.hp.symmetric_comm
                    else np.asarray(arr).reshape(db, db)
                )
                target[meta.lo : meta.hi, meta.lo : meta.hi] = block
            else:
                if kfac.hp.symmetric_comm:
                    arr = tri_unpack(arr, meta.dim)
                if meta.kind == "A":
                    layer.A = arr
                else:
                    layer.G = arr

    # ------------------------------------------------------------------
    # Eig
    # ------------------------------------------------------------------
    def _run_eig(self, task: Any) -> None:
        kfac = self.kfac
        eigen = kfac.hp.use_eigen_decomp
        if "meta" in task.payload:
            # per-factor (or per-block) decomposition on the owning rank
            # (COMM_OPT/HYBRID)
            meta = self._metas[task.payload["meta"]]
            if self._assignment[meta.key] != kfac.rank:
                return
            layer = kfac._layer_by_name(meta.layer)
            factor = layer.A if meta.kind == "A" else layer.G
            assert factor is not None, "second-order update before factor update"
            if self._blocked:
                factor = np.ascontiguousarray(
                    factor[meta.lo : meta.hi, meta.lo : meta.hi]
                )
            if eigen:
                eig = eigendecompose(factor)
                self._computed[meta.key] = [eig.Q, eig.lam]
            else:
                self._computed[meta.key] = [
                    explicit_damped_inverse(factor, kfac.damping)
                ]
            kfac.n_eigs_computed_locally += 1
            seconds = estimate_second_order_seconds([meta.dim], eigen)
            self._pending_compute += seconds
            if self.tracer.enabled:
                self.tracer.span(
                    f"Eig:{meta.key}",
                    "task",
                    kfac.rank,
                    seconds,
                    attrs={"layer": meta.layer, "dim": meta.dim},
                )
        else:
            # per-layer decomposition that stays local (LAYER_WISE owner)
            name = task.payload["layer"]
            if kfac._layer_assignment[name] != kfac.rank:
                return
            layer = kfac._layer_by_name(name)
            if eigen:
                if self._blocked:
                    layer.eig_A = block_eigendecompose(
                        layer.A, kfac._block_bounds[f"{name}/A"]
                    )
                    layer.eig_G = block_eigendecompose(
                        layer.G, kfac._block_bounds[f"{name}/G"]
                    )
                else:
                    layer.eig_A, layer.eig_G = layer.compute_eigen()
            else:
                layer.inv_A, layer.inv_G = layer.compute_inverses(kfac.damping)
            # local refresh succeeded: reset any drift-skip staleness the
            # layer's metas accrued (no share step will do it for us here)
            kfac._clear_staleness([m for m in self._metas if m.layer == name])
            kfac.n_eigs_computed_locally += 2
            if self.tracer.enabled:
                self.tracer.span(
                    f"Eig:{name}",
                    "task",
                    kfac.rank,
                    estimate_second_order_seconds(
                        [layer.a_dim, layer.g_dim], eigen
                    ),
                    attrs={"layer": name},
                )

    # ------------------------------------------------------------------
    # EigShare
    # ------------------------------------------------------------------
    def _run_eig_share(self, task: Any) -> Generator[Any, Any, None]:
        if "ranks" in task.payload:
            yield from self._run_group_share(task)
        else:
            yield from self._run_world_share(task)

    def _run_world_share(self, task: Any) -> Generator[Any, Any, None]:
        """COMM_OPT: allgather this chunk's decompositions world-wide."""
        kfac = self.kfac
        metas = [self._metas[i] for i in task.payload["metas"]]
        payload = [a for m in metas for a in self._computed.get(m.key, [])]
        dtype = self._transport_dtype if self.plan.pipelined else None
        flat = pack_arrays(payload, dtype=dtype)

        def install(gathered: Sequence[np.ndarray]) -> None:
            if isinstance(gathered, CollectiveFailed):
                # no rank installs a lost share (the owner included), so
                # every replica keeps the identical last-known eigenbasis
                kfac._note_eig_share_failure(metas)
                return
            kfac._install_second_order_chunk(gathered, metas)
            kfac._clear_staleness(metas)

        if kfac.world_size == 1:
            install([flat])
        elif self.plan.pipelined:
            tag = f"eig:{task.payload['bucket']}"
            if self.tracer.enabled:
                self.tracer.launch(
                    kfac.rank,
                    tag,
                    attrs={
                        "task": "EigShare",
                        "bucket": task.payload["bucket"],
                        "bytes": float(flat.nbytes),
                    },
                )
            yield AllGatherLaunch(tensor=flat, phase="eig_comm", tag=tag)
            self._task_tag[task.name] = tag
            self._pending[tag] = install
        else:
            gathered = yield AllGatherRequest(tensor=flat, phase="eig_comm")
            install(gathered)

    def _run_group_share(self, task: Any) -> Generator[Any, Any, None]:
        """HYBRID: allgather decompositions inside one gradient-worker group.

        Singleton groups (the LAYER_WISE endpoint) install locally with no
        communication; ranks outside the group contribute/receive nothing
        — they will get only the final preconditioned gradient.
        """
        kfac = self.kfac
        ranks = tuple(task.payload["ranks"])
        grp_metas = [self._metas[i] for i in task.payload["metas"]]
        member_metas = {
            r: [m for m in grp_metas if self._assignment[m.key] == r]
            for r in ranks
        }
        in_group = kfac.rank in ranks
        if len(ranks) == 1:
            if in_group:
                for meta in member_metas[kfac.rank]:
                    kfac._install_factor_state(meta, self._computed[meta.key])
            return
        flat: np.ndarray | None = None
        if in_group:
            mine = [a for m in member_metas[kfac.rank] for a in self._computed[m.key]]
            flat = pack_arrays(mine)

        def install(gathered: Sequence[np.ndarray] | None) -> None:
            if isinstance(gathered, CollectiveFailed):
                # only members track the lost share: non-members never hold
                # second-order state (they receive preconditioned grads)
                if in_group:
                    kfac._note_eig_share_failure(grp_metas)
                return
            if gathered is None:  # non-members receive nothing
                return
            kfac._clear_staleness(grp_metas)
            step = 2 if kfac.hp.use_eigen_decomp else 1
            for r, buf in zip(ranks, gathered):
                shapes: list[tuple[int, ...]] = []
                for meta in member_metas[r]:
                    if kfac.hp.use_eigen_decomp:
                        shapes.extend([(meta.dim, meta.dim), (meta.dim,)])
                    else:
                        shapes.append((meta.dim, meta.dim))
                arrays = unpack_arrays(buf, shapes)
                for j, meta in enumerate(member_metas[r]):
                    kfac._install_factor_state(meta, arrays[j * step : (j + 1) * step])

        if self.plan.pipelined:
            tag = f"share:grp{ranks[0]}"
            if self.tracer.enabled:
                self.tracer.launch(
                    kfac.rank,
                    tag,
                    attrs={
                        "task": "EigShare",
                        "group": list(ranks),
                        "member": in_group,
                        "bytes": float(flat.nbytes) if flat is not None else 0.0,
                    },
                )
            yield GroupAllGatherLaunch(
                tensor=flat, ranks=ranks, phase="eig_comm", tag=tag
            )
            self._task_tag[task.name] = tag
            self._pending[tag] = install
        else:
            gathered = yield GroupAllGatherRequest(
                tensor=flat, ranks=ranks, phase="eig_comm"
            )
            install(gathered if in_group else None)

    # ------------------------------------------------------------------
    # Precondition
    # ------------------------------------------------------------------
    def _run_precondition(self, task: Any) -> None:
        kfac = self.kfac
        name = task.payload["layer"]
        layer = kfac._layer_by_name(name)
        raw = layer.get_grad_matrix()
        self._raw[name] = raw  # every rank keeps raw grads for Eq. 18 clipping
        if not self._is_grad_worker(name):
            return
        self._pre[name] = layer.precondition(
            raw, kfac.damping, kfac.hp.use_eigen_decomp
        )
        seconds = estimate_precondition_seconds([(layer.g_dim, layer.a_dim)])
        self._pending_compute += seconds
        if self.tracer.enabled:
            self.tracer.span(
                f"Precondition:{name}",
                "task",
                kfac.rank,
                seconds,
                attrs={"layer": name},
            )

    def _is_grad_worker(self, layer_name: str) -> bool:
        return self.kfac.is_grad_worker(layer_name)

    # ------------------------------------------------------------------
    # GradShare
    # ------------------------------------------------------------------
    def _run_grad_share(self, task: Any) -> Generator[Any, Any, None]:
        if "entry" in task.payload:
            yield from self._run_grad_broadcast(task)
        else:
            yield from self._run_grad_allgather(task)

    def _run_grad_broadcast(self, task: Any) -> Generator[Any, Any, None]:
        """HYBRID: root ships fused preconditioned grads to non-members."""
        kfac = self.kfac
        root, layers_r, participants = kfac._bcast_plan[task.payload["entry"]]
        flat: np.ndarray | None = None
        if kfac.rank == root:
            flat = pack_arrays([self._pre[l.name] for l in layers_r])

        def install(got: np.ndarray | None) -> None:
            if got is None or kfac.rank == root:
                return
            shapes = [(l.g_dim, l.a_dim) for l in layers_r]
            for l, arr in zip(layers_r, unpack_arrays(got, shapes)):
                self._pre[l.name] = arr

        if self.plan.pipelined:
            tag = f"grad:root{root}"
            if self.tracer.enabled:
                self.tracer.launch(
                    kfac.rank,
                    tag,
                    attrs={
                        "task": "GradShare",
                        "root": root,
                        "bytes": float(flat.nbytes) if flat is not None else 0.0,
                    },
                )
            yield GroupBroadcastLaunch(
                tensor=flat, root=root, ranks=participants, phase="precond_comm", tag=tag
            )
            self._task_tag[task.name] = tag
            self._pending[tag] = install
        else:
            got = yield GroupBroadcastRequest(
                tensor=flat, root=root, ranks=participants, phase="precond_comm"
            )
            install(got)

    def _run_grad_allgather(self, task: Any) -> Generator[Any, Any, None]:
        """LAYER_WISE: allgather every owner's preconditioned grads."""
        kfac = self.kfac
        mine = [
            self._pre[l.name]
            for l in kfac.layers
            if kfac._layer_assignment[l.name] == kfac.rank
        ]
        flat = pack_arrays(mine)
        gathered = yield AllGatherRequest(tensor=flat, phase="precond_comm")
        for worker in range(kfac.world_size):
            owned = [
                l for l in kfac.layers if kfac._layer_assignment[l.name] == worker
            ]
            shapes = [(l.g_dim, l.a_dim) for l in owned]
            arrays = unpack_arrays(gathered[worker], shapes)
            for l, arr in zip(owned, arrays):
                self._pre[l.name] = arr

    # ------------------------------------------------------------------
    # epilogue
    # ------------------------------------------------------------------
    def _finalize(self) -> None:
        """Eq. 18 clipping over the full layer set, then write the grads."""
        kfac = self.kfac
        pre = [self._pre[layer.name] for layer in kfac.layers]
        raw = [self._raw[layer.name] for layer in kfac.layers]
        nu = kl_clip_factor(pre, raw, kfac.lr, kfac.hp.kl_clip)
        ad = getattr(kfac, "_adaptive_damping", None)
        if ad is not None:
            # nu is computed from pre-averaged gradients, so every rank sees
            # the same value and the damping schedule stays in lockstep
            old = kfac.damping
            kfac.damping = ad.update(nu)
            if kfac.damping != old and self.tracer.enabled:
                self.tracer.instant(
                    "damping:adapt",
                    "approx",
                    kfac.rank,
                    attrs={"nu": float(nu), "damping": float(kfac.damping)},
                )
        for layer, p in zip(kfac.layers, pre):
            layer.set_grad_matrix(nu * p)
