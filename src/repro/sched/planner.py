"""Step planner: derive a task graph + schedule from K-FAC placement.

The planner is the *single* place where bucket-partition and tensor-fusion
decisions are made (SPD-KFAC's cost-model-driven tensor partitioning):

- :func:`plan_buckets` — the one bucket-partition entry point (the greedy
  contiguous partition previously copy-pasted across the private pipeline
  generators in ``core/preconditioner.py``);
- :func:`choose_bucket_bytes` — pick the bytes-per-bucket from the
  :mod:`repro.comm.costmodel` rates when the caller did not pin one: the
  latency/bandwidth crossover sets the floor (chunks below
  ``p * alpha * beta`` bytes are latency-dominated and cannot pipeline
  profitably), the payload split into ``target_buckets`` chunks sets the
  goal, and :data:`repro.comm.engine.DEFAULT_BUCKET_BYTES` caps the chunk
  so transfers stay interruptible;
- :func:`build_step_plan` — derive the full :class:`StepPlan` (task graph
  plus deterministic schedule) for any strategy and any
  ``grad_worker_frac`` in ``[1/P, 1]`` from the factor metas, the
  factor/layer assignment, and the :class:`repro.core.assignment.GroupPlacement`-derived
  group/broadcast structures.

Every input is identical on every rank, so the resulting graph, schedule
and bucket partition are too — the lockstep property the drivers need.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.comm.costmodel import EDR_LIKE, NetworkProfile
from repro.comm.engine import DEFAULT_BUCKET_BYTES, partition_buckets
from repro.sched.graph import Task, TaskGraph, lint_schedule

__all__ = ["StepPlan", "build_step_plan", "choose_bucket_bytes", "plan_buckets"]

# strategy names (stable public strings; mirrored by repro.core.preconditioner)
_COMM_OPT = "comm-opt"
_LAYER_WISE = "layer-wise"
_HYBRID = "hybrid"


def plan_buckets(nbytes_list: Sequence[int], bucket_bytes: int) -> list[list[int]]:
    """The single bucket-partition entry point for pipelined K-FAC comm.

    Contiguous, order-preserving, at most ``bucket_bytes`` per bucket
    (oversize items get a bucket of their own) — delegates to
    :func:`repro.comm.engine.partition_buckets`, the one greedy
    implementation shared with the fusion-buffer sizing.

    Example
    -------
    >>> from repro.sched.planner import plan_buckets
    >>> plan_buckets([10, 10, 10, 25], bucket_bytes=20)
    [[0, 1], [2], [3]]
    """
    return partition_buckets(nbytes_list, bucket_bytes)


def choose_bucket_bytes(
    total_nbytes: int,
    world_size: int,
    net: NetworkProfile = EDR_LIKE,
    target_buckets: int = 4,
) -> int:
    """Bytes-per-bucket from the cost model, when none was pinned.

    Aims for ``target_buckets`` pipeline chunks, floored at the ring
    latency/bandwidth crossover ``p * alpha * beta`` (below which a chunk's
    ``(p-1)`` latency hops dominate its transfer time, so splitting buys no
    overlap) and capped at :data:`repro.comm.engine.DEFAULT_BUCKET_BYTES`.
    The floor wins over the cap on very high-latency/large worlds: there a
    coarser pipeline is the bandwidth-optimal choice.

    Example
    -------
    >>> from repro.sched.planner import choose_bucket_bytes
    >>> small = choose_bucket_bytes(1 << 10, world_size=4)
    >>> small >= 1 << 10          # tiny payloads stay a single bucket
    True
    >>> big = choose_bucket_bytes(1 << 30, world_size=4)
    >>> from repro.comm.engine import DEFAULT_BUCKET_BYTES
    >>> big == DEFAULT_BUCKET_BYTES
    True
    """
    if world_size < 1:
        raise ValueError(f"world size must be >= 1, got {world_size}")
    if target_buckets < 1:
        raise ValueError(f"target_buckets must be >= 1, got {target_buckets}")
    if total_nbytes <= 0:
        return DEFAULT_BUCKET_BYTES
    floor = max(1, int(world_size * net.latency * net.bandwidth))
    target = math.ceil(total_nbytes / target_buckets)
    return max(floor, min(DEFAULT_BUCKET_BYTES, target))


@dataclass(frozen=True)
class StepPlan:
    """One K-FAC update step, planned: graph + schedule + bucket partition.

    ``buckets`` holds factor-meta *indices* per pipeline chunk (a single
    all-inclusive bucket for synchronous plans); ``schedule`` is the
    deterministic linearisation the executor walks; ``pipelined`` selects
    launch/wait execution over blocking requests.

    Example
    -------
    >>> from repro.sched.graph import Task, TaskGraph
    >>> from repro.sched.planner import StepPlan
    >>> g = TaskGraph([Task("precondition:fc", "Precondition")])
    >>> plan = StepPlan(g, ("precondition:fc",), ((0,),), 4096, False)
    >>> plan.pipelined
    False
    """

    graph: TaskGraph
    schedule: tuple[str, ...]
    buckets: tuple[tuple[int, ...], ...]
    bucket_bytes: int
    pipelined: bool
    #: the plan's comm/eig unit is the diagonal *block*, not the factor
    #: (``KFAC(diag_blocks=k)`` past warmup) — the executor then resolves
    #: meta indices against the preconditioner's block metas
    blocked: bool = False


def build_step_plan(
    *,
    strategy: str,
    world_size: int,
    factor_metas: Sequence,
    layer_names: Sequence[str],
    groups: Sequence[tuple[tuple[int, ...], Sequence[int]]] = (),
    bcast_entries: Sequence[tuple[int, Sequence[str]]] = (),
    wire_nbytes_list: Sequence[int] | None = None,
    bucket_bytes: int | None = None,
    net: NetworkProfile = EDR_LIKE,
    update_factors: bool = True,
    update_second_order: bool = True,
    pipelined: bool = False,
    blocked: bool = False,
) -> StepPlan:
    """Derive the validated task graph + schedule for one update step.

    Parameters mirror the preconditioner's per-rank-identical metadata:
    ``factor_metas`` (objects with ``key``/``dim``/``layer``/``kind``, in
    communication order), ``layer_names`` (model order), ``groups`` (for
    the hybrid strategy: per gradient-worker group, its rank tuple and the
    indices of its factor metas), ``bcast_entries`` (per fused
    second-stage broadcast: root rank and the layer names it ships), and
    ``wire_nbytes_list`` (per-factor wire bytes, required when a factor
    allreduce happens, i.e. ``update_factors`` and ``world_size > 1``).
    ``bucket_bytes=None`` defers to :func:`choose_bucket_bytes`.

    The synchronous plan reproduces the retired hand-written pipelines'
    request stream exactly; the pipelined plan launches factor buckets up
    front and lets eigendecompositions, group shares, preconditioning and
    gradient broadcasts overlap the in-flight transfers.

    Example
    -------
    >>> from repro.core.assignment import FactorMeta
    >>> from repro.sched.planner import build_step_plan
    >>> metas = [FactorMeta("fc", "A", 4), FactorMeta("fc", "G", 3)]
    >>> plan = build_step_plan(
    ...     strategy="comm-opt", world_size=2, factor_metas=metas,
    ...     layer_names=["fc"], wire_nbytes_list=[64, 36],
    ...     bucket_bytes=32, pipelined=True)
    >>> [t.name for t in plan.graph.tasks][:3]
    ['factor_comm:0', 'factor_comm:1', 'eig:fc/A']
    >>> plan.graph.reachable("factor_comm:0", "precondition:fc")
    True
    """
    if strategy not in (_COMM_OPT, _LAYER_WISE, _HYBRID):
        raise ValueError(f"unknown strategy {strategy!r}")
    n = len(factor_metas)
    has_factor_comm = update_factors and world_size > 1
    if has_factor_comm and wire_nbytes_list is None:
        raise ValueError("wire_nbytes_list required when the factor allreduce runs")

    if bucket_bytes is None:
        total = int(sum(wire_nbytes_list)) if wire_nbytes_list is not None else 0
        bucket_bytes = choose_bucket_bytes(total, max(1, world_size), net)

    if has_factor_comm and pipelined:
        buckets = plan_buckets(list(wire_nbytes_list), bucket_bytes)
    else:
        # synchronous exchange (or none): one all-inclusive chunk
        buckets = [list(range(n))] if n else []
    bucket_of = {i: b for b, idxs in enumerate(buckets) for i in idxs}

    graph = TaskGraph()
    factor_task_names: tuple[str, ...] = ()
    if has_factor_comm:
        names = []
        for b, idxs in enumerate(buckets):
            layers = tuple(dict.fromkeys(factor_metas[i].layer for i in idxs))
            graph.add(
                Task(f"factor_comm:{b}", "FactorComm", layers=layers, payload={"bucket": b})
            )
            names.append(f"factor_comm:{b}")
        factor_task_names = tuple(names)

    eig_names_by_bucket: dict[int, list[str]] = {b: [] for b in range(len(buckets))}
    layer_eig_share: dict[str, tuple[str, ...]] = {}
    share_names: list[str] = []
    share_after_bucket: dict[int, list[str]] = {b: [] for b in range(len(buckets))}
    if update_second_order:
        if strategy == _LAYER_WISE:
            for name in layer_names:
                graph.add(
                    Task(
                        f"eig:{name}",
                        "Eig",
                        deps=factor_task_names,
                        layers=(name,),
                        payload={"layer": name},
                    )
                )
                layer_eig_share[name] = (f"eig:{name}",)
        else:
            for i, meta in enumerate(factor_metas):
                deps = (f"factor_comm:{bucket_of[i]}",) if has_factor_comm else ()
                graph.add(
                    Task(
                        f"eig:{meta.key}",
                        "Eig",
                        deps=deps,
                        layers=(meta.layer,),
                        payload={"meta": i},
                    )
                )
                eig_names_by_bucket[bucket_of[i]].append(f"eig:{meta.key}")
        if strategy == _COMM_OPT:
            for b, idxs in enumerate(buckets):
                name = f"eig_share:{b}"
                graph.add(
                    Task(
                        name,
                        "EigShare",
                        deps=tuple(f"eig:{factor_metas[i].key}" for i in idxs),
                        layers=tuple(dict.fromkeys(factor_metas[i].layer for i in idxs)),
                        payload={"bucket": b, "metas": tuple(idxs)},
                    )
                )
                share_names.append(name)
                share_after_bucket[b].append(name)
            for i, meta in enumerate(factor_metas):
                share = f"eig_share:{bucket_of[i]}"
                prev = layer_eig_share.get(meta.layer, ())
                if share not in prev:
                    layer_eig_share[meta.layer] = prev + (share,)
        elif strategy == _HYBRID:
            for gi, (ranks, idxs) in enumerate(groups):
                name = f"eig_share:grp{ranks[0]}"
                layers = tuple(dict.fromkeys(factor_metas[i].layer for i in idxs))
                graph.add(
                    Task(
                        name,
                        "EigShare",
                        deps=tuple(f"eig:{factor_metas[i].key}" for i in idxs),
                        layers=layers,
                        payload={"group": gi, "metas": tuple(idxs), "ranks": tuple(ranks)},
                    )
                )
                share_names.append(name)
                last = max(bucket_of[i] for i in idxs) if idxs else 0
                share_after_bucket.setdefault(last, []).append(name)
                for layer in layers:
                    layer_eig_share[layer] = (name,)

    precondition_names: list[str] = []
    for name in layer_names:
        deps = layer_eig_share.get(name, factor_task_names if not update_second_order else ())
        graph.add(
            Task(
                f"precondition:{name}",
                "Precondition",
                deps=tuple(deps),
                layers=(name,),
                payload={"layer": name},
            )
        )
        precondition_names.append(f"precondition:{name}")

    grad_share_names: list[str] = []
    if strategy == _HYBRID:
        for ei, (root, entry_layers) in enumerate(bcast_entries):
            name = f"grad_share:root{root}"
            graph.add(
                Task(
                    name,
                    "GradShare",
                    deps=tuple(f"precondition:{ln}" for ln in entry_layers),
                    layers=tuple(entry_layers),
                    payload={"entry": ei, "root": root},
                )
            )
            grad_share_names.append(name)
    elif strategy == _LAYER_WISE and world_size > 1:
        graph.add(
            Task(
                "grad_share:all",
                "GradShare",
                deps=tuple(precondition_names),
                layers=tuple(layer_names),
                payload={},
            )
        )
        grad_share_names.append("grad_share:all")

    if pipelined:
        # launch every factor bucket up front, then interleave: a bucket's
        # eigendecompositions run behind the next buckets' transfers, each
        # share launches as soon as its last factor bucket's eigs are done,
        # and preconditioning/gradient broadcasts overlap the tail.
        schedule: list[str] = list(factor_task_names)
        for b in range(len(buckets)):
            schedule.extend(eig_names_by_bucket.get(b, ()))
            schedule.extend(share_after_bucket.get(b, ()))
        schedule.extend(precondition_names)
        schedule.extend(grad_share_names)
    else:
        # synchronous plan: insertion order reproduces the retired
        # hand-written pipelines' request stream exactly
        schedule = [t.name for t in graph.tasks]

    graph.validate()
    lint_schedule(graph, schedule)
    return StepPlan(
        graph=graph,
        schedule=tuple(schedule),
        buckets=tuple(tuple(b) for b in buckets),
        bucket_bytes=int(bucket_bytes),
        pipelined=bool(pipelined),
        blocked=bool(blocked),
    )
