"""Dependency-graph task scheduler for the K-FAC update step.

The three hand-written K-FAC pipelines (synchronous, pipelined COMM_OPT,
pipelined HYBRID) are unified here, SPD-KFAC style:

- :mod:`repro.sched.graph` — :class:`Task`/:class:`TaskGraph`: per-layer
  task nodes (``FactorComm``, ``Eig``, ``EigShare``, ``Precondition``,
  ``GradShare``) with explicit data-dependency edges, deterministic
  topological ordering, and a schedule linter;
- :mod:`repro.sched.planner` — derive a :class:`StepPlan` from the
  factor/layer assignment for any ``grad_worker_frac`` in ``[1/P, 1]``,
  with bucket-partition and tensor-fusion decisions priced by the
  :mod:`repro.comm.costmodel` rates;
- :mod:`repro.sched.executor` — :class:`GraphExecutor` runs the plan over
  the launch/wait step-generator protocol of :mod:`repro.core.comm_ops`,
  so the existing drivers execute it unchanged.

Select it with ``KFAC(scheduler="graph")`` (``"sync"`` reproduces the
retired synchronous request stream bit-for-bit).
"""

from repro.sched.graph import (
    TASK_KINDS,
    SchedulerError,
    Task,
    TaskGraph,
    lint_schedule,
)
from repro.sched.planner import (
    StepPlan,
    build_step_plan,
    choose_bucket_bytes,
    plan_buckets,
)
from repro.sched.executor import GraphExecutor

__all__ = [
    "TASK_KINDS",
    "Task",
    "TaskGraph",
    "SchedulerError",
    "lint_schedule",
    "StepPlan",
    "build_step_plan",
    "choose_bucket_bytes",
    "plan_buckets",
    "GraphExecutor",
]
