"""Task dependency graph for the unified K-FAC update scheduler.

One K-FAC update step decomposes into per-layer tasks (SPD-KFAC,
arXiv:2107.06533):

- ``FactorComm`` — allreduce one bucket of running-average factors;
- ``Eig`` — eigendecompose (or invert) factors this step refreshes;
- ``EigShare`` — distribute second-order state (world allgather for
  COMM_OPT, per-group allgather for the gradient-worker-fraction
  strategy, nothing for LAYER_WISE where state stays local);
- ``Precondition`` — apply a layer's eigenbasis to its gradient;
- ``GradShare`` — ship preconditioned gradients to ranks that do not
  hold the eigenbasis (group broadcast / layer-wise allgather).

Nodes carry explicit data-dependency edges; the planner
(:mod:`repro.sched.planner`) derives the graph from the factor/layer
assignment, and the executor (:mod:`repro.sched.executor`) walks a
linearisation of it, turning comm tasks into the launch/wait protocol of
:mod:`repro.core.comm_ops`.  Every rank builds the graph from identical
metadata, so :meth:`TaskGraph.topo_order` is deterministic and
rank-independent — the property the lockstep drivers rely on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

__all__ = [
    "TASK_KINDS",
    "Task",
    "TaskGraph",
    "SchedulerError",
    "lint_schedule",
]

#: the task vocabulary, in rough pipeline order
TASK_KINDS = ("FactorComm", "Eig", "EigShare", "Precondition", "GradShare")


class SchedulerError(ValueError):
    """An invalid task graph or schedule (cycle, unknown dep, bad order).

    Example
    -------
    >>> from repro.sched.graph import SchedulerError
    >>> issubclass(SchedulerError, ValueError)
    True
    """


@dataclass(frozen=True)
class Task:
    """One schedulable unit of K-FAC work.

    ``deps`` name the tasks whose outputs this task consumes; ``layers``
    the model layers it touches (for reporting); ``payload`` carries
    planner-private execution detail (bucket index, group ranks, ...).

    Example
    -------
    >>> from repro.sched.graph import Task
    >>> t = Task("eig:conv1/A", "Eig", deps=("factor_comm:0",))
    >>> t.kind, t.deps
    ('Eig', ('factor_comm:0',))
    """

    name: str
    kind: str
    deps: tuple[str, ...] = ()
    layers: tuple[str, ...] = ()
    payload: dict = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise SchedulerError("task name must be non-empty")
        if self.kind not in TASK_KINDS:
            raise SchedulerError(
                f"unknown task kind {self.kind!r}; choose from {TASK_KINDS}"
            )


class TaskGraph:
    """Insertion-ordered DAG of :class:`Task` nodes.

    Example
    -------
    >>> from repro.sched.graph import Task, TaskGraph
    >>> g = TaskGraph()
    >>> g.add(Task("factor_comm:0", "FactorComm"))
    >>> g.add(Task("eig:fc/A", "Eig", deps=("factor_comm:0",)))
    >>> g.topo_order()
    ['factor_comm:0', 'eig:fc/A']
    >>> g.reachable("factor_comm:0", "eig:fc/A")
    True
    """

    def __init__(self, tasks: Iterable[Task] = ()) -> None:
        self._tasks: dict[str, Task] = {}
        for task in tasks:
            self.add(task)

    def add(self, task: Task) -> None:
        """Insert a node; duplicate names are a scheduling bug."""
        if task.name in self._tasks:
            raise SchedulerError(f"duplicate task name {task.name!r}")
        self._tasks[task.name] = task

    def __len__(self) -> int:
        return len(self._tasks)

    def __contains__(self, name: str) -> bool:
        return name in self._tasks

    def __getitem__(self, name: str) -> Task:
        return self._tasks[name]

    @property
    def tasks(self) -> list[Task]:
        """All tasks, in insertion order."""
        return list(self._tasks.values())

    def validate(self) -> None:
        """Raise :class:`SchedulerError` on unknown deps or cycles."""
        for task in self._tasks.values():
            for dep in task.deps:
                if dep not in self._tasks:
                    raise SchedulerError(
                        f"task {task.name!r} depends on unknown task {dep!r}"
                    )
        self.topo_order()  # raises on cycles

    def topo_order(self) -> list[str]:
        """Deterministic topological order (Kahn's algorithm).

        Ties are broken by insertion order, which every rank derives from
        the same metadata — so the linearisation is identical across
        ranks, a requirement for lockstep launch/wait matching.
        """
        indegree = {name: 0 for name in self._tasks}
        dependents: dict[str, list[str]] = {name: [] for name in self._tasks}
        for task in self._tasks.values():
            for dep in task.deps:
                if dep in indegree:
                    indegree[task.name] += 1
                    dependents[dep].append(task.name)
        ready = [name for name in self._tasks if indegree[name] == 0]
        order: list[str] = []
        while ready:
            name = ready.pop(0)
            order.append(name)
            next_ready = []
            for child in dependents[name]:
                indegree[child] -= 1
                if indegree[child] == 0:
                    next_ready.append(child)
            # preserve insertion order among newly-ready tasks
            ready = sorted(
                ready + next_ready, key=list(self._tasks).index
            )
        if len(order) != len(self._tasks):
            stuck = sorted(set(self._tasks) - set(order))
            raise SchedulerError(f"task graph has a cycle through {stuck}")
        return order

    def reachable(self, src: str, dst: str) -> bool:
        """True iff ``dst`` transitively depends on ``src``."""
        if src not in self._tasks or dst not in self._tasks:
            raise SchedulerError(f"unknown task in reachability query: {src!r} -> {dst!r}")
        frontier = [dst]
        seen = set()
        while frontier:
            name = frontier.pop()
            if name == src:
                return True
            if name in seen:
                continue
            seen.add(name)
            frontier.extend(self._tasks[name].deps)
        return False


def lint_schedule(graph: TaskGraph, schedule: Sequence[str]) -> None:
    """Reject schedules that could not execute the graph correctly.

    Checks, in order: duplicate entries, entries naming no graph task,
    graph tasks missing from the schedule (unreachable — they would never
    run), and dependency-order violations (a task scheduled before one of
    its deps).  Raises :class:`SchedulerError` on the first offence.

    Example
    -------
    >>> from repro.sched.graph import Task, TaskGraph, lint_schedule
    >>> g = TaskGraph([Task("a", "Eig"), Task("b", "Precondition", deps=("a",))])
    >>> lint_schedule(g, ["a", "b"])          # valid: no exception
    >>> lint_schedule(g, ["b", "a"])
    Traceback (most recent call last):
        ...
    repro.sched.graph.SchedulerError: task 'b' scheduled before its dependency 'a'
    """
    seen: set[str] = set()
    for name in schedule:
        if name in seen:
            raise SchedulerError(f"duplicate task {name!r} in schedule")
        if name not in graph:
            raise SchedulerError(f"schedule names unknown task {name!r}")
        for dep in graph[name].deps:
            if dep not in seen:
                raise SchedulerError(
                    f"task {name!r} scheduled before its dependency {dep!r}"
                )
        seen.add(name)
    missing = [t.name for t in graph.tasks if t.name not in seen]
    if missing:
        raise SchedulerError(
            f"schedule leaves tasks unreachable (never executed): {missing}"
        )
