"""Alpha-beta (latency-bandwidth) cost model for collectives.

Horovod's allreduce "is implemented by using the scatter-reduce algorithm,
which is bandwidth optimal in the ring topology" (§II-D).  The standard
costs for ``p`` ranks and an ``n``-byte payload on a link with latency
``alpha`` (s) and bandwidth ``beta`` (B/s):

- ring allreduce       : 2(p-1) alpha + 2 n (p-1)/p / beta
- ring reduce-scatter  :  (p-1) alpha +   n (p-1)/p / beta
- ring allgather       :  (p-1) alpha +   n (p-1)/p / beta   (n = total gathered)
- binomial broadcast   : ceil(log2 p) (alpha + n / beta)

These functions are used (a) by the data-moving collectives to charge
simulated seconds and (b) by :mod:`repro.perfmodel` to project the paper's
16–256 GPU scaling behaviour.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "NetworkProfile",
    "allreduce_time",
    "reduce_scatter_time",
    "allgather_time",
    "broadcast_time",
    "scatter_broadcast_time",
    "EDR_LIKE",
    "SLOW_ETHERNET",
]


@dataclass(frozen=True)
class NetworkProfile:
    """Point-to-point link model.

    Attributes
    ----------
    latency:
        Per-message latency in seconds (alpha).
    bandwidth:
        Link bandwidth in bytes/second (1/beta).
    name:
        Label for reports.
    """

    latency: float
    bandwidth: float
    name: str = "custom"

    def __post_init__(self) -> None:
        if self.latency < 0:
            raise ValueError(f"latency must be non-negative, got {self.latency}")
        if self.bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {self.bandwidth}")

    def transfer_time(self, nbytes: float) -> float:
        """Time for a single point-to-point message.

        Example
        -------
        >>> from repro.comm.costmodel import NetworkProfile
        >>> net = NetworkProfile(latency=1e-6, bandwidth=1e9)
        >>> net.transfer_time(1e9)     # 1 GB at 1 GB/s (+1 us latency)
        1.000001
        """
        return self.latency + nbytes / self.bandwidth


#: InfiniBand EDR-like profile (Frontera GPU subsystem, §VI-A): ~100 Gb/s
#: per link, ~2 microseconds latency.  Effective bandwidth derated to
#: account for protocol overheads seen by NCCL/Horovod in practice.
EDR_LIKE = NetworkProfile(latency=2.0e-6, bandwidth=10.5e9, name="infiniband-edr")

#: A slow-network profile for ablation studies.
SLOW_ETHERNET = NetworkProfile(latency=50.0e-6, bandwidth=1.1e9, name="10gbe")


def _check(nbytes: float, p: int) -> None:
    if nbytes < 0:
        raise ValueError(f"nbytes must be non-negative, got {nbytes}")
    if p < 1:
        raise ValueError(f"world size must be >= 1, got {p}")


def allreduce_time(nbytes: float, p: int, net: NetworkProfile) -> float:
    """Ring allreduce time for an ``nbytes`` payload across ``p`` ranks.

    Example
    -------
    >>> from repro.comm.costmodel import EDR_LIKE, allreduce_time
    >>> allreduce_time(1 << 20, 1, EDR_LIKE)            # no peers, no cost
    0.0
    >>> t8 = allreduce_time(1 << 20, 8, EDR_LIKE)
    >>> t64 = allreduce_time(1 << 20, 64, EDR_LIKE)
    >>> 0.0 < t8 < t64                                  # bandwidth-bound
    True
    """
    _check(nbytes, p)
    if p == 1 or nbytes == 0:
        return 0.0
    steps = 2 * (p - 1)
    return steps * net.latency + 2.0 * nbytes * (p - 1) / p / net.bandwidth


def reduce_scatter_time(nbytes: float, p: int, net: NetworkProfile) -> float:
    """Ring reduce-scatter time (``nbytes`` = full input payload).

    Example
    -------
    >>> from repro.comm.costmodel import EDR_LIKE, allreduce_time, reduce_scatter_time
    >>> rs = reduce_scatter_time(1 << 20, 8, EDR_LIKE)
    >>> rs * 2 == allreduce_time(1 << 20, 8, EDR_LIKE)   # half the ring
    True
    """
    _check(nbytes, p)
    if p == 1 or nbytes == 0:
        return 0.0
    return (p - 1) * net.latency + nbytes * (p - 1) / p / net.bandwidth


def allgather_time(total_nbytes: float, p: int, net: NetworkProfile) -> float:
    """Ring allgather time (``total_nbytes`` = size of the gathered result).

    Example
    -------
    >>> from repro.comm.costmodel import EDR_LIKE, allgather_time
    >>> 0.0 < allgather_time(1 << 20, 4, EDR_LIKE) < allgather_time(1 << 20, 8, EDR_LIKE)
    True
    """
    _check(total_nbytes, p)
    if p == 1 or total_nbytes == 0:
        return 0.0
    return (p - 1) * net.latency + total_nbytes * (p - 1) / p / net.bandwidth


def broadcast_time(nbytes: float, p: int, net: NetworkProfile) -> float:
    """Binomial-tree broadcast time.

    Example
    -------
    >>> from repro.comm.costmodel import EDR_LIKE, broadcast_time
    >>> t4, t8 = (broadcast_time(1 << 10, p, EDR_LIKE) for p in (4, 8))
    >>> round(t8 / t4, 2)                # ceil(log2 p) rounds: 3/2
    1.5
    """
    _check(nbytes, p)
    if p == 1 or nbytes == 0:
        return 0.0
    rounds = math.ceil(math.log2(p))
    return rounds * net.transfer_time(nbytes)


def scatter_broadcast_time(nbytes: float, p: int, net: NetworkProfile) -> float:
    """Bandwidth-optimal large-payload broadcast: scatter + ring allgather.

    The van-de-Geijn algorithm NCCL-style collectives use above the
    latency regime: the root scatters ``1/p`` chunks, then a ring
    allgather reassembles them — ``2 (p-1) alpha + 2 n (p-1)/p / beta``,
    strictly increasing in ``p`` for fixed payload (unlike the stepwise
    binomial tree).  This prices the second-stage preconditioned-gradient
    broadcasts of the gradient-worker-fraction placement.

    Example
    -------
    >>> from repro.comm.costmodel import EDR_LIKE, scatter_broadcast_time
    >>> t33 = scatter_broadcast_time(1 << 20, 33, EDR_LIKE)
    >>> t64 = scatter_broadcast_time(1 << 20, 64, EDR_LIKE)
    >>> 0.0 < t33 < t64
    True
    """
    _check(nbytes, p)
    if p == 1 or nbytes == 0:
        return 0.0
    steps = 2 * (p - 1)
    return steps * net.latency + 2.0 * nbytes * (p - 1) / p / net.bandwidth
