"""Horovod-style tensor fusion buffer and triangular factor packing.

Horovod accumulates small tensors into a 16–32 MB fusion buffer and issues
one allreduce per full buffer "to guarantee that each allreduce() is
bandwidth dominated" (§II-D).  This class reproduces that batching for the
phase-style world: callers ``add`` named per-rank tensor groups; once the
accumulated payload reaches capacity the buffer flushes as a *single*
fused ring allreduce (one latency charge instead of one per tensor).

Buffers are meant to be *persistent*: obtain one per (op, phase) from
:meth:`repro.comm.engine.CommEngine.fusion` and reuse it every iteration —
capacity-respecting flushes then carry across iterations and
``flush_count``/``bytes_flushed`` accumulate over the whole run.

Planning-time bucket partitioning (deciding *which* factors fuse into
which pipeline chunk, before any tensor exists) lives elsewhere:
:func:`repro.sched.planner.plan_buckets` is the single entry point, and
:func:`repro.comm.engine.partition_buckets` the shared greedy primitive.

**Triangular packing** (:func:`tri_pack` / :func:`tri_unpack`): a Kronecker
factor is symmetric, so its ``d*d`` payload carries ``d*(d-1)/2`` redundant
elements.  Packing the upper triangle into a flat ``d*(d+1)/2`` vector
before the factor allreduce nearly halves the factor-stage bytes (the
Osawa et al. 2019 symmetry-aware communication trick); since averaging is
elementwise, reducing packed triangles then mirroring is *bit-identical*
to reducing the full matrices — provided the inputs are exactly symmetric,
which :func:`repro.tensor.gram.gram` guarantees by construction.
"""

from __future__ import annotations

import numpy as np

from repro.comm.backend import World
from repro.comm.compression import ErrorFeedback, WireCodec, get_codec, wire_nbytes
from repro.tensor.gram import mirror_upper

__all__ = [
    "FusionBuffer",
    "tri_len",
    "tri_pack",
    "tri_unpack",
    "block_tri_len",
    "tri_pack_blocks",
    "tri_unpack_blocks",
]

#: cached packed-row offsets, keyed by side length: row ``i`` of the upper
#: triangle occupies ``flat[offsets[i]:offsets[i+1]]`` (row-major layout)
_ROW_OFFSET_CACHE: dict[int, np.ndarray] = {}


def _row_offsets(d: int) -> np.ndarray:
    offs = _ROW_OFFSET_CACHE.get(d)
    if offs is None:
        offs = np.zeros(d + 1, dtype=np.int64)
        np.cumsum(np.arange(d, 0, -1), out=offs[1:])
        _ROW_OFFSET_CACHE[d] = offs
    return offs


def tri_len(d: int) -> int:
    """Packed length of one ``d x d`` symmetric matrix: ``d*(d+1)/2``.

    Example
    -------
    >>> from repro.comm.fusion import tri_len
    >>> tri_len(4)
    10
    """
    return d * (d + 1) // 2


def tri_pack(mat: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
    """Flatten the upper triangle (row-major, diagonal included) of ``mat``.

    The matrix is *assumed* symmetric — only the upper triangle is read, so
    any asymmetry in the lower triangle is silently discarded.  Row-wise
    contiguous slice copies (~14x faster than a fancy-index gather at
    ResNet factor sizes).

    Example
    -------
    >>> import numpy as np
    >>> from repro.comm.fusion import tri_pack
    >>> m = np.array([[1.0, 2.0], [2.0, 3.0]])
    >>> tri_pack(m).tolist()
    [1.0, 2.0, 3.0]
    """
    if mat.ndim != 2 or mat.shape[0] != mat.shape[1]:
        raise ValueError(f"tri_pack expects a square matrix, got {mat.shape}")
    d = mat.shape[0]
    if out is None:
        out = np.empty(tri_len(d), dtype=mat.dtype)
    elif out.shape != (tri_len(d),) or out.dtype != mat.dtype:
        raise ValueError(
            f"tri_pack out must be ({tri_len(d)},) {mat.dtype}, "
            f"got {out.shape} {out.dtype}"
        )
    offs = _row_offsets(d)
    for i in range(d):
        out[offs[i] : offs[i + 1]] = mat[i, i:]
    return out


def tri_unpack(flat: np.ndarray, d: int, out: np.ndarray | None = None) -> np.ndarray:
    """Rebuild the full symmetric ``d x d`` matrix from a packed triangle.

    Example
    -------
    >>> import numpy as np
    >>> from repro.comm.fusion import tri_unpack
    >>> tri_unpack(np.array([1.0, 2.0, 3.0]), 2).tolist()
    [[1.0, 2.0], [2.0, 3.0]]
    """
    if flat.shape != (tri_len(d),):
        raise ValueError(
            f"packed triangle for d={d} must have {tri_len(d)} elements, "
            f"got shape {flat.shape}"
        )
    if out is None:
        out = np.empty((d, d), dtype=flat.dtype)
    elif out.shape != (d, d) or out.dtype != flat.dtype:
        raise ValueError(
            f"tri_unpack out must be ({d}, {d}) {flat.dtype}, "
            f"got {out.shape} {out.dtype}"
        )
    offs = _row_offsets(d)
    for i in range(d):
        out[i, i:] = flat[offs[i] : offs[i + 1]]
    return mirror_upper(out)


def block_tri_len(bounds) -> int:
    """Packed length of a block-diagonal symmetric payload.

    Sum of the per-block upper triangles — what a blocked factor
    allreduce actually ships instead of the full ``tri_len(d)`` triangle
    (see :mod:`repro.approx.blocks` for the partition policy).

    Example
    -------
    >>> from repro.comm.fusion import block_tri_len, tri_len
    >>> block_tri_len(((0, 4),)) == tri_len(4)
    True
    >>> block_tri_len(((0, 2), (2, 4)))      # 2 * tri_len(2)
    6
    """
    return sum(tri_len(hi - lo) for lo, hi in bounds)


def tri_pack_blocks(mat: np.ndarray, bounds) -> np.ndarray:
    """Pack the upper triangles of ``mat``'s diagonal blocks, concatenated.

    Row-major per block, blocks in ``bounds`` order.  With a single
    block covering the whole matrix this is exactly :func:`tri_pack`.

    Example
    -------
    >>> import numpy as np
    >>> from repro.comm.fusion import tri_pack_blocks
    >>> m = np.arange(16.0).reshape(4, 4)
    >>> tri_pack_blocks(m, ((0, 2), (2, 4))).tolist()
    [0.0, 1.0, 5.0, 10.0, 11.0, 15.0]
    """
    if mat.ndim != 2 or mat.shape[0] != mat.shape[1]:
        raise ValueError(f"tri_pack_blocks expects a square matrix, got {mat.shape}")
    out = np.empty(block_tri_len(bounds), dtype=mat.dtype)
    pos = 0
    for lo, hi in bounds:
        n = tri_len(hi - lo)
        tri_pack(np.ascontiguousarray(mat[lo:hi, lo:hi]), out=out[pos : pos + n])
        pos += n
    return out


def tri_unpack_blocks(
    flat: np.ndarray, bounds, out: np.ndarray | None = None
) -> np.ndarray:
    """Scatter packed block triangles back into a matrix's diagonal blocks.

    When ``out`` is given, only the diagonal-block regions are written —
    off-block entries keep their existing values (the blocked factor
    exchange leaves them local).  Without ``out`` the off-block entries
    are zero, i.e. the block-diagonal approximation itself.

    Example
    -------
    >>> import numpy as np
    >>> from repro.comm.fusion import tri_pack_blocks, tri_unpack_blocks
    >>> m = np.arange(16.0).reshape(4, 4); m = (m + m.T) / 2
    >>> bounds = ((0, 2), (2, 4))
    >>> back = tri_unpack_blocks(tri_pack_blocks(m, bounds), bounds, out=m.copy())
    >>> bool(np.array_equal(back, m))
    True
    """
    if flat.shape != (block_tri_len(bounds),):
        raise ValueError(
            f"packed block payload must have {block_tri_len(bounds)} elements, "
            f"got shape {flat.shape}"
        )
    d = bounds[-1][1]
    if out is None:
        out = np.zeros((d, d), dtype=flat.dtype)
    elif out.shape != (d, d):
        raise ValueError(f"tri_unpack_blocks out must be ({d}, {d}), got {out.shape}")
    pos = 0
    for lo, hi in bounds:
        db = hi - lo
        n = tri_len(db)
        out[lo:hi, lo:hi] = tri_unpack(flat[pos : pos + n].astype(out.dtype, copy=False), db)
        pos += n
    return out


class FusionBuffer:
    """Accumulate named tensors and allreduce them in fused batches.

    Example
    -------
    >>> import numpy as np
    >>> from repro.comm.backend import World
    >>> from repro.comm.fusion import FusionBuffer
    >>> buf = FusionBuffer(World(2), capacity_bytes=1 << 20)
    >>> buf.add("w", [np.array([2.0]), np.array([4.0])])
    >>> buf.flush()
    >>> [v.tolist() for v in buf.pop("w")]     # averaged, one per rank
    [[3.0], [3.0]]
    """

    def __init__(
        self,
        world: World,
        capacity_bytes: int = 16 << 20,
        op: str = "average",
        phase: str = "fused_allreduce",
        codec: WireCodec | str | None = None,
        error_feedback: bool = True,
    ) -> None:
        if capacity_bytes <= 0:
            raise ValueError(f"capacity must be positive, got {capacity_bytes}")
        self.world = world
        self.capacity_bytes = capacity_bytes
        self.op = op
        self.phase = phase
        #: wire compression for every flush (fp16/bf16 transport with fp32
        #: reduction accumulators); ``error_feedback`` banks each tensor's
        #: per-rank quantization residual and re-injects it on the next add
        self.codec = get_codec(codec)
        self._error_feedback: ErrorFeedback | None = (
            ErrorFeedback(self.codec) if self.codec is not None and error_feedback else None
        )
        self._entries: list[tuple[str, list[np.ndarray]]] = []
        self._pending_bytes = 0
        self._results: dict[str, list[np.ndarray]] = {}
        self.flush_count = 0
        #: cumulative per-rank payload actually sent through fused flushes —
        #: the "true fused payload" a persistent buffer accumulates across
        #: iterations (trainer accounting reads this), priced at the wire
        #: itemsize when a codec is set.
        self.bytes_flushed = 0

    def add(self, name: str, per_rank_tensors: list[np.ndarray]) -> None:
        """Queue one named tensor group (one tensor per rank) for reduction."""
        if len(per_rank_tensors) != self.world.size:
            raise ValueError(
                f"{name!r}: expected {self.world.size} tensors, got {len(per_rank_tensors)}"
            )
        if name in self._results or any(n == name for n, _ in self._entries):
            raise ValueError(f"duplicate tensor name {name!r} in fusion buffer")
        shape = per_rank_tensors[0].shape
        for r, t in enumerate(per_rank_tensors):
            if t.shape != shape:
                raise ValueError(f"{name!r}: rank {r} shape {t.shape} != {shape}")
        tensors = list(per_rank_tensors)
        if self._error_feedback is not None:
            tensors = [
                self._error_feedback.apply((name, r), t) for r, t in enumerate(tensors)
            ]
        self._entries.append((name, tensors))
        self._pending_bytes += wire_nbytes(tensors[0], self.codec)
        if self._pending_bytes >= self.capacity_bytes:
            self.flush()

    def flush(self) -> None:
        """Fuse all queued tensors into one flat allreduce and scatter results."""
        if not self._entries:
            return
        names = [n for n, _ in self._entries]
        shapes = [tensors[0].shape for _, tensors in self._entries]
        sizes = [int(np.prod(s)) if s else 1 for s in shapes]
        offsets = np.concatenate([[0], np.cumsum(sizes)])
        fused = [
            np.concatenate([tensors[r].reshape(-1) for _, tensors in self._entries])
            for r in range(self.world.size)
        ]
        reduced = self.world.allreduce(
            fused, op=self.op, phase=self.phase, codec=self.codec
        )
        for i, name in enumerate(names):
            lo, hi = int(offsets[i]), int(offsets[i + 1])
            self._results[name] = [r[lo:hi].reshape(shapes[i]).copy() for r in reduced]
        self._entries.clear()
        self._pending_bytes = 0
        self.flush_count += 1
        self.bytes_flushed += wire_nbytes(fused[0], self.codec)

    def rescale_residuals(self, factor: float) -> None:
        """Rescale banked error-feedback residuals (no-op without EF).

        Callers feeding *loss-scaled* gradients must invoke this with
        ``new_scale / old_scale`` whenever the scale changes, so residuals
        banked in old-scale units re-inject at the right magnitude.
        """
        if self._error_feedback is not None:
            self._error_feedback.rescale(factor)

    def pop(self, name: str) -> list[np.ndarray]:
        """Return (and forget) the reduced per-rank results for ``name``.

        Flushes first if the tensor is still queued.
        """
        if name not in self._results:
            self.flush()
        if name not in self._results:
            raise KeyError(f"tensor {name!r} was never added to the fusion buffer")
        return self._results.pop(name)

    @property
    def pending_bytes(self) -> int:
        return self._pending_bytes
