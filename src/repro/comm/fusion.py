"""Horovod-style tensor fusion buffer.

Horovod accumulates small tensors into a 16–32 MB fusion buffer and issues
one allreduce per full buffer "to guarantee that each allreduce() is
bandwidth dominated" (§II-D).  This class reproduces that batching for the
phase-style world: callers ``add`` named per-rank tensor groups; once the
accumulated payload reaches capacity the buffer flushes as a *single*
fused ring allreduce (one latency charge instead of one per tensor).

Buffers are meant to be *persistent*: obtain one per (op, phase) from
:meth:`repro.comm.engine.CommEngine.fusion` and reuse it every iteration —
capacity-respecting flushes then carry across iterations and
``flush_count``/``bytes_flushed`` accumulate over the whole run.
"""

from __future__ import annotations

import numpy as np

from repro.comm.backend import World

__all__ = ["FusionBuffer"]


class FusionBuffer:
    """Accumulate named tensors and allreduce them in fused batches."""

    def __init__(
        self,
        world: World,
        capacity_bytes: int = 16 << 20,
        op: str = "average",
        phase: str = "fused_allreduce",
    ) -> None:
        if capacity_bytes <= 0:
            raise ValueError(f"capacity must be positive, got {capacity_bytes}")
        self.world = world
        self.capacity_bytes = capacity_bytes
        self.op = op
        self.phase = phase
        self._entries: list[tuple[str, list[np.ndarray]]] = []
        self._pending_bytes = 0
        self._results: dict[str, list[np.ndarray]] = {}
        self.flush_count = 0
        #: cumulative per-rank payload actually sent through fused flushes —
        #: the "true fused payload" a persistent buffer accumulates across
        #: iterations (trainer accounting reads this).
        self.bytes_flushed = 0

    def add(self, name: str, per_rank_tensors: list[np.ndarray]) -> None:
        """Queue one named tensor group (one tensor per rank) for reduction."""
        if len(per_rank_tensors) != self.world.size:
            raise ValueError(
                f"{name!r}: expected {self.world.size} tensors, got {len(per_rank_tensors)}"
            )
        if name in self._results or any(n == name for n, _ in self._entries):
            raise ValueError(f"duplicate tensor name {name!r} in fusion buffer")
        shape = per_rank_tensors[0].shape
        for r, t in enumerate(per_rank_tensors):
            if t.shape != shape:
                raise ValueError(f"{name!r}: rank {r} shape {t.shape} != {shape}")
        self._entries.append((name, list(per_rank_tensors)))
        self._pending_bytes += per_rank_tensors[0].nbytes
        if self._pending_bytes >= self.capacity_bytes:
            self.flush()

    def flush(self) -> None:
        """Fuse all queued tensors into one flat allreduce and scatter results."""
        if not self._entries:
            return
        names = [n for n, _ in self._entries]
        shapes = [tensors[0].shape for _, tensors in self._entries]
        sizes = [int(np.prod(s)) if s else 1 for s in shapes]
        offsets = np.concatenate([[0], np.cumsum(sizes)])
        fused = [
            np.concatenate([tensors[r].reshape(-1) for _, tensors in self._entries])
            for r in range(self.world.size)
        ]
        reduced = self.world.allreduce(fused, op=self.op, phase=self.phase)
        for i, name in enumerate(names):
            lo, hi = int(offsets[i]), int(offsets[i + 1])
            self._results[name] = [r[lo:hi].reshape(shapes[i]).copy() for r in reduced]
        self._entries.clear()
        self._pending_bytes = 0
        self.flush_count += 1
        self.bytes_flushed += fused[0].nbytes

    def pop(self, name: str) -> list[np.ndarray]:
        """Return (and forget) the reduced per-rank results for ``name``.

        Flushes first if the tensor is still queued.
        """
        if name not in self._results:
            self.flush()
        if name not in self._results:
            raise KeyError(f"tensor {name!r} was never added to the fusion buffer")
        return self._results.pop(name)

    @property
    def pending_bytes(self) -> int:
        return self._pending_bytes
