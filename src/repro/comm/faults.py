"""Fault and straggler injection for the simulated communication world.

A production fleet is never as clean as a simulation: individual ranks
run slow (stragglers), network links hiccup (latency spikes), collectives
time out, and nodes die mid-run.  This module models those events as a
declarative :class:`FaultPlan` attached to a :class:`~repro.comm.backend.World`
(``world.fault_plan = plan``): every collective consults the plan, adds
the injected delay to its simulated cost (so stragglers flow into the
exposed/hidden overlap ledger end to end), and raises
:class:`CollectiveError` / :class:`RankDeadError` for failed operations.

The drivers in :mod:`repro.core.distributed` turn those errors into
bounded retries and — for factor/eigenbasis exchanges — a graceful
stale-state fallback (see :mod:`repro.elastic`).  Because faults are
injected *below* the rank-facing APIs, both the phase-style
:class:`~repro.comm.backend.World` collectives and the per-rank
:class:`~repro.comm.horovod.HorovodContext` frontend observe them.

Also defined here (they travel with the errors to avoid import cycles):
:class:`RetryPolicy`, the drivers' bounded retry-with-backoff schedule,
and :class:`CollectiveFailed`, the sentinel a driver hands the step
generator when retries are exhausted on a degradable phase.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

__all__ = [
    "CollectiveError",
    "RankDeadError",
    "StaleEigenbasisError",
    "ComputeJitter",
    "LatencySpike",
    "CollectiveFailure",
    "RankDeath",
    "FaultPlan",
    "RetryPolicy",
    "CollectiveFailed",
]


class CollectiveError(RuntimeError):
    """A collective operation failed (dropped, timed out, or was killed).

    Carries the K-FAC ``phase`` the operation was charged to so drivers
    can decide between retry, degrade, and hard failure.

    Example
    -------
    >>> from repro.comm.faults import CollectiveError
    >>> err = CollectiveError("allreduce dropped", phase="factor_comm")
    >>> err.phase
    'factor_comm'
    """

    def __init__(self, message: str, phase: str | None = None) -> None:
        super().__init__(message)
        self.phase = phase


class RankDeadError(CollectiveError):
    """A collective involved a rank that died at an earlier step.

    Unlike a transient :class:`CollectiveError`, a dead rank fails every
    subsequent matching collective — retries cannot succeed, only the
    stale-state fallback (or a restart from a portable checkpoint) can.

    Example
    -------
    >>> from repro.comm.faults import RankDeadError
    >>> err = RankDeadError("rank 3 is dead", phase="eig_comm")
    >>> isinstance(err, Exception) and err.phase
    'eig_comm'
    """


class StaleEigenbasisError(RuntimeError):
    """Degraded preconditioning cannot continue from the available state.

    Raised by the stale-eigenbasis fallback when a layer has *no*
    last-known eigenbasis to fall back to, or when a factor's staleness
    counter exceeds ``KFACHyperParams.max_eig_staleness`` consecutive
    failed refreshes.

    Example
    -------
    >>> from repro.comm.faults import StaleEigenbasisError
    >>> raise StaleEigenbasisError("conv1/A stale for 4 > 3 refreshes")
    Traceback (most recent call last):
        ...
    repro.comm.faults.StaleEigenbasisError: conv1/A stale for 4 > 3 refreshes
    """


@dataclass(frozen=True)
class ComputeJitter:
    """Per-rank straggler lateness, applied once per step.

    Models a rank arriving ``seconds`` late at its first matching
    collective of the step (background daemon, thermal throttling, a slow
    I/O stall).  Every collective involving ``rank`` is a candidate; only
    the first match in each step is charged.  ``phases`` restricts the
    candidates (``None`` means any phase), ``start_step``/``end_step``
    bound the affected steps (half-open; ``None`` end means forever).

    Example
    -------
    >>> from repro.comm.faults import ComputeJitter
    >>> ComputeJitter(rank=3, seconds=0.01, phases=("eig_comm",)).rank
    3
    """

    rank: int
    seconds: float
    phases: tuple[str, ...] | None = None
    start_step: int = 0
    end_step: int | None = None

    def matches(self, step: int, phase: str, group: Sequence[int]) -> bool:
        """True when this jitter applies to the given collective."""
        if self.rank not in group:
            return False
        if self.phases is not None and phase not in self.phases:
            return False
        if step < self.start_step:
            return False
        return self.end_step is None or step < self.end_step


@dataclass(frozen=True)
class LatencySpike:
    """Extra network latency on matching collectives.

    Unlike :class:`ComputeJitter` (once per rank per step), a spike hits
    *every* matching collective: ``phase=None`` matches any phase,
    ``step=None`` any step, and ``every=n`` selects steps where
    ``step % n == 0`` (a periodic congestion pattern).

    Example
    -------
    >>> from repro.comm.faults import LatencySpike
    >>> LatencySpike(seconds=0.002, phase="grad_allreduce", every=10).every
    10
    """

    seconds: float
    phase: str | None = None
    step: int | None = None
    every: int | None = None

    def matches(self, step: int, phase: str) -> bool:
        """True when this spike applies to the given collective."""
        if self.phase is not None and phase != self.phase:
            return False
        if self.step is not None and step != self.step:
            return False
        return self.every is None or step % self.every == 0


@dataclass(frozen=True)
class CollectiveFailure:
    """Fail the first ``count`` matching collective attempts outright.

    ``count=1`` models a transient drop (the driver's first retry
    succeeds); a larger ``count`` exhausts the retry budget and forces
    the degradation path; ``count=None`` fails every attempt forever.

    Example
    -------
    >>> from repro.comm.faults import CollectiveFailure
    >>> CollectiveFailure(phase="factor_comm", step=2, count=1).count
    1
    """

    phase: str
    step: int | None = None
    count: int | None = 1

    def matches(self, step: int, phase: str) -> bool:
        """True when this failure spec targets the given collective."""
        if phase != self.phase:
            return False
        return self.step is None or step == self.step


@dataclass(frozen=True)
class RankDeath:
    """Rank ``rank`` dies at ``step``: matching collectives fail forever.

    From ``step`` on, any collective whose group contains the dead rank
    raises :class:`RankDeadError`.  ``phases`` scopes the blast radius —
    e.g. ``("eig_comm",)`` models a rank whose K-FAC service died while
    its gradient path still works — so tests can exercise degradation in
    one subsystem without killing the whole run.

    Example
    -------
    >>> from repro.comm.faults import RankDeath
    >>> RankDeath(rank=1, step=5, phases=("eig_comm",)).step
    5
    """

    rank: int
    step: int
    phases: tuple[str, ...] | None = None

    def matches(self, step: int, phase: str, group: Sequence[int]) -> bool:
        """True when the dead rank poisons the given collective."""
        if step < self.step or self.rank not in group:
            return False
        return self.phases is None or phase in self.phases


class FaultPlan:
    """A declarative schedule of faults for a simulated ``World``.

    Attach with ``world.fault_plan = plan`` and advance the step clock
    with ``world.begin_step(step)`` (the trainer does both).  Collectives
    then consult :meth:`apply`, which raises for failed ops and returns
    the injected straggler/latency seconds to add to the op's simulated
    cost.  Totals are tracked on the plan (``injected_failures``,
    ``injected_delay_seconds``, ``events``) and surfaced through
    ``TrainingHistory``.

    Example
    -------
    >>> from repro.comm.faults import ComputeJitter, FaultPlan
    >>> plan = FaultPlan(jitter=[ComputeJitter(rank=1, seconds=0.5)])
    >>> plan.apply(step=0, phase="grad_allreduce", group=(0, 1))
    0.5
    >>> plan.apply(step=0, phase="eig_comm", group=(0, 1))  # once per step
    0.0
    >>> plan.injected_delay_seconds
    0.5
    """

    def __init__(
        self,
        jitter: Sequence[ComputeJitter] = (),
        spikes: Sequence[LatencySpike] = (),
        failures: Sequence[CollectiveFailure] = (),
        deaths: Sequence[RankDeath] = (),
    ) -> None:
        self.jitter = tuple(jitter)
        self.spikes = tuple(spikes)
        self.failures = tuple(failures)
        self.deaths = tuple(deaths)
        self.reset()

    def reset(self) -> None:
        """Forget all consumed events and zero the injection counters.

        Example
        -------
        >>> from repro.comm.faults import CollectiveFailure, FaultPlan
        >>> plan = FaultPlan(failures=[CollectiveFailure(phase="eig_comm")])
        >>> try:
        ...     plan.apply(step=0, phase="eig_comm", group=(0,))
        ... except Exception as exc:
        ...     print(type(exc).__name__)
        CollectiveError
        >>> plan.reset(); plan.injected_failures
        0
        """
        self._jitter_fired: set[tuple[int, int]] = set()
        self._failure_hits: dict[int, int] = {}
        self.injected_failures = 0
        self.injected_delay_seconds = 0.0
        self.events = 0

    def apply(self, step: int, phase: str, group: Sequence[int]) -> float:
        """Consult the plan for one collective; raise or return extra seconds.

        Raises :class:`RankDeadError` if the group contains a dead rank,
        :class:`CollectiveError` for a scheduled failure (consuming one
        of its ``count`` hits), and otherwise returns the total injected
        delay (consumed jitter plus matching latency spikes).
        """
        for death in self.deaths:
            if death.matches(step, phase, group):
                self.injected_failures += 1
                self.events += 1
                raise RankDeadError(
                    f"rank {death.rank} died at step {death.step}; "
                    f"{phase} collective over ranks {tuple(group)} cannot "
                    f"complete (step {step})",
                    phase=phase,
                )
        for i, failure in enumerate(self.failures):
            if not failure.matches(step, phase):
                continue
            hits = self._failure_hits.get(i, 0)
            if failure.count is not None and hits >= failure.count:
                continue
            self._failure_hits[i] = hits + 1
            self.injected_failures += 1
            self.events += 1
            raise CollectiveError(
                f"injected {phase} collective failure at step {step} "
                f"(attempt {hits + 1}"
                + (f" of {failure.count})" if failure.count is not None else ")"),
                phase=phase,
            )
        extra = 0.0
        for i, jit in enumerate(self.jitter):
            if (i, step) in self._jitter_fired:
                continue
            if jit.matches(step, phase, group):
                self._jitter_fired.add((i, step))
                extra += jit.seconds
                self.events += 1
        for spike in self.spikes:
            if spike.matches(step, phase):
                extra += spike.seconds
                self.events += 1
        self.injected_delay_seconds += extra
        return extra


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry-with-backoff for failed collectives in the drivers.

    A failed collective is retried up to ``max_retries`` times, charging
    exponentially growing backoff (``backoff_seconds * factor**attempt``)
    to the ``retry_backoff`` timer phase.  When retries are exhausted on
    a phase listed in ``fallback_phases`` the driver returns a
    :class:`CollectiveFailed` sentinel to the step generator — K-FAC then
    preconditions with its last-known (stale) state instead of crashing.
    Failures on any other phase re-raise after the retries.

    Example
    -------
    >>> from repro.comm.faults import RetryPolicy
    >>> policy = RetryPolicy(max_retries=2, backoff_seconds=0.001)
    >>> [policy.backoff(a) for a in range(2)]
    [0.001, 0.002]
    """

    max_retries: int = 2
    backoff_seconds: float = 0.001
    backoff_factor: float = 2.0
    fallback_phases: tuple[str, ...] = ("factor_comm", "eig_comm")

    def backoff(self, attempt: int) -> float:
        """Backoff seconds charged before retry number ``attempt`` (0-based)."""
        return self.backoff_seconds * self.backoff_factor**attempt


@dataclass(frozen=True)
class CollectiveFailed:
    """Sentinel response: a collective failed past the retry budget.

    Delivered by a driver to the step generator *in place of* the
    collective's result, for phases in ``RetryPolicy.fallback_phases``.
    The graph executor reacts by skipping the corresponding state
    install and bumping the per-factor staleness counters — the layer
    keeps preconditioning with its last-known eigenbasis.

    Example
    -------
    >>> from repro.comm.faults import CollectiveError, CollectiveFailed
    >>> failed = CollectiveFailed("eig_comm", CollectiveError("dropped"))
    >>> failed.phase
    'eig_comm'
    """

    phase: str
    error: CollectiveError = field(compare=False)
