"""Simulated Horovod-like communication substrate.

The paper's implementation communicates through Horovod's ``allreduce()``,
``allgather()`` and ``broadcast()`` with asynchronous handles and a fusion
buffer (§II-D, §V-A).  This package reproduces those semantics for
*simulated* workers living in one process:

- :mod:`repro.comm.backend` — the :class:`World`: ranks, op matching with
  deadlock detection, byte/time accounting;
- :mod:`repro.comm.collectives` — data-moving ring allreduce/allgather,
  binomial-tree broadcast, reduce-scatter (bit-level testable);
- :mod:`repro.comm.costmodel` — alpha-beta cost functions for the same
  algorithms (drives the paper's scaling results);
- :mod:`repro.comm.fusion` — Horovod's fusion buffer (accumulate small
  tensors, flush as one bandwidth-bound allreduce);
- :mod:`repro.comm.engine` — the pipelined async engine: persistent fusion
  buffers, a shared bucketing policy, async launch/wait, and exposed vs.
  hidden communication-time accounting (SPD-KFAC-style overlap);
- :mod:`repro.comm.horovod` — a ``hvd``-flavoured per-rank frontend
  (``size``/``rank``/``allreduce_async_``/``synchronize``/
  ``broadcast_parameters``/``DistributedOptimizer``).
"""

from repro.comm.backend import OverlapStats, World
from repro.comm.engine import (
    CommEngine,
    estimate_second_order_seconds,
    partition_buckets,
    symmetric_payload_nbytes,
)
from repro.comm.collectives import (
    binomial_broadcast,
    ring_allgather,
    ring_allreduce,
    ring_reduce_scatter,
)
from repro.comm.costmodel import (
    NetworkProfile,
    allgather_time,
    allreduce_time,
    broadcast_time,
    reduce_scatter_time,
)
from repro.comm.fusion import (
    FusionBuffer,
    block_tri_len,
    tri_len,
    tri_pack,
    tri_pack_blocks,
    tri_unpack,
    tri_unpack_blocks,
)
from repro.comm.horovod import Average, DistributedOptimizer, HorovodContext, Sum

__all__ = [
    "World",
    "OverlapStats",
    "CommEngine",
    "estimate_second_order_seconds",
    "partition_buckets",
    "symmetric_payload_nbytes",
    "tri_len",
    "tri_pack",
    "tri_unpack",
    "block_tri_len",
    "tri_pack_blocks",
    "tri_unpack_blocks",
    "ring_allreduce",
    "ring_allgather",
    "ring_reduce_scatter",
    "binomial_broadcast",
    "NetworkProfile",
    "allreduce_time",
    "allgather_time",
    "broadcast_time",
    "reduce_scatter_time",
    "FusionBuffer",
    "HorovodContext",
    "DistributedOptimizer",
    "Average",
    "Sum",
]
