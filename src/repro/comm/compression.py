"""Wire compression for collectives: half-precision transport codecs.

Large-scale K-FAC (Osawa et al. 2019) communicates gradients and factors
in half precision while *reducing* in FP32; this module provides that
contract for the simulated world:

- a :class:`WireCodec` turns an fp32(+) tensor into its wire form —
  ``float16`` arrays for fp16, bit-packed ``uint16`` for bf16 (NumPy has
  no bf16 dtype) — so payload byte accounting falls out of ``.nbytes``;
- :meth:`WireCodec.decode` recovers FP32 values, which is what the ring
  reduction actually sums (**fp32 reduction accumulators**: the wire
  carries half precision, the arithmetic never does).  The reduced result
  is re-quantized, because a real allreduce also returns wire-precision
  values;
- :class:`ErrorFeedback` keeps per-bucket residuals (1-bit/deep-compression
  style): what quantization rounds away this step is added back before the
  next quantization, so repeated small updates are never silently lost.

Codecs are addressed by name (``"fp16"`` / ``"bf16"``) so they can cross
the SPMD matched-op metadata, which must compare equal across ranks.
"""

from __future__ import annotations

import numpy as np

from repro.tensor.amp import bf16_pack, bf16_unpack, quantize_bf16

__all__ = [
    "WireCodec",
    "FP16Codec",
    "BF16Codec",
    "get_codec",
    "wire_nbytes",
    "ErrorFeedback",
]


class WireCodec:
    """Encode/decode one tensor for transport; ``itemsize`` prices the wire."""

    name: str = "none"
    itemsize: int = 4

    def encode(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def decode(self, wire: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def quantize(self, x: np.ndarray) -> np.ndarray:
        """The fp32 values a round trip through the wire preserves."""
        return self.decode(self.encode(x))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}()"


class FP16Codec(WireCodec):
    """IEEE half-precision transport (overflow saturates to inf)."""

    name = "fp16"
    itemsize = 2

    def encode(self, x: np.ndarray) -> np.ndarray:
        if x.dtype == np.float16:
            return x
        with np.errstate(over="ignore"):
            return x.astype(np.float16)

    def decode(self, wire: np.ndarray) -> np.ndarray:
        return wire.astype(np.float32)


class BF16Codec(WireCodec):
    """bfloat16 transport, bit-packed into uint16 (fp32 dynamic range).

    Delegates to the grid definition in :mod:`repro.tensor.amp`, so the
    wire encoding is definitionally the compute grid.
    """

    name = "bf16"
    itemsize = 2

    def encode(self, x: np.ndarray) -> np.ndarray:
        return bf16_pack(x)

    def decode(self, wire: np.ndarray) -> np.ndarray:
        return bf16_unpack(wire)

    def quantize(self, x: np.ndarray) -> np.ndarray:
        return quantize_bf16(x)


_CODECS: dict[str, WireCodec] = {c.name: c for c in (FP16Codec(), BF16Codec())}


def get_codec(name: "str | WireCodec | None") -> WireCodec | None:
    """Resolve a codec by name; ``None``/``"none"``/``"fp32"`` disable it."""
    if name is None or isinstance(name, WireCodec):
        return name
    if name in ("none", "fp32"):
        return None
    codec = _CODECS.get(name)
    if codec is None:
        raise ValueError(
            f"unknown wire codec {name!r}; choose from {sorted(_CODECS)} "
            "(or 'fp32'/'none' for uncompressed transport)"
        )
    return codec


def wire_nbytes(x: np.ndarray, codec: WireCodec | None) -> int:
    """Bytes ``x`` occupies on the wire under ``codec`` (its own bytes if none)."""
    if codec is None:
        return int(x.nbytes)
    return int(x.size) * codec.itemsize


class ErrorFeedback:
    """Per-key quantization residuals re-injected before the next send."""

    def __init__(self, codec: WireCodec) -> None:
        self.codec = codec
        self._residuals: dict[object, np.ndarray] = {}

    def apply(self, key: object, value: np.ndarray) -> np.ndarray:
        """Quantize ``value`` plus the key's residual; bank the new error.

        Returns a fresh array of wire-precision fp32 values — the caller's
        ``value`` is never mutated.
        """
        residual = self._residuals.get(key)
        adjusted = value if residual is None else value + residual
        with np.errstate(invalid="ignore"):
            quantized = self.codec.quantize(adjusted)
            error = adjusted - quantized
        if not np.isfinite(error).all():
            # overflow steps (scaled AMP gradients) must not bank inf/nan
            # residuals: the step will be skipped, the error forgotten
            error = np.nan_to_num(error, nan=0.0, posinf=0.0, neginf=0.0)
        self._residuals[key] = error
        return quantized

    def residual(self, key: object) -> np.ndarray | None:
        return self._residuals.get(key)

    def rescale(self, factor: float) -> None:
        """Multiply every banked residual by ``factor``.

        Required when the values being fed through :meth:`apply` change
        units — e.g. loss-scaled gradients after a ``GradScaler``
        backoff/growth: a residual banked at scale ``S`` re-injected into
        gradients at scale ``S'`` would be mis-weighted by ``S/S'`` unless
        rescaled by ``S'/S`` first.
        """
        for residual in self._residuals.values():
            residual *= factor

    def reset(self) -> None:
        self._residuals.clear()
