"""Asynchronous operation handles.

Horovod returns handles from ``allreduce_async_`` that are resolved by
``synchronize()``.  In the simulated world a handle either already carries
its result (phase-style execution) or defers a blocking matched post until
``wait()`` (SPMD style) — either way callers observe Horovod's
register-then-synchronize pattern (§V-A: "handles are registered to
communication operations ... and wait to do the communication in batches").
"""

from __future__ import annotations

from typing import Any, Callable, Generic, TypeVar

__all__ = ["Handle", "ImmediateHandle", "DeferredHandle"]

T = TypeVar("T")


class Handle(Generic[T]):
    """Abstract async-op handle."""

    def done(self) -> bool:
        raise NotImplementedError

    def wait(self) -> T:
        raise NotImplementedError


class ImmediateHandle(Handle[T]):
    """A handle whose result is already available."""

    def __init__(self, result: T) -> None:
        self._result = result

    def done(self) -> bool:
        return True

    def wait(self) -> T:
        return self._result


class DeferredHandle(Handle[T]):
    """A handle that runs ``fn`` on first ``wait()`` and caches the result."""

    def __init__(self, fn: Callable[[], T]) -> None:
        self._fn = fn
        self._done = False
        self._result: Any = None

    def done(self) -> bool:
        return self._done

    def wait(self) -> T:
        if not self._done:
            self._result = self._fn()
            self._done = True
        return self._result
