"""Asynchronous operation handles.

Horovod returns handles from ``allreduce_async_`` that are resolved by
``synchronize()``.  In the simulated world a handle either already carries
its result (phase-style execution) or defers a blocking matched post until
``wait()`` (SPMD style) — either way callers observe Horovod's
register-then-synchronize pattern (§V-A: "handles are registered to
communication operations ... and wait to do the communication in batches").

Pipelined execution adds two handle flavours used by the async engine
(:mod:`repro.comm.engine`):

- :class:`InFlightHandle` — the collective's *data movement* already
  happened (phase-style worlds are deterministic), but its simulated time
  is only settled at ``wait(overlap_seconds=...)``, splitting the cost
  into exposed vs. hidden-behind-compute seconds;
- :class:`LaunchedHandle` — a per-rank SPMD launch whose blocking matched
  post is deferred to ``wait(overlap_seconds=...)``, forwarding this
  rank's overlap budget to the world's accounting.
"""

from __future__ import annotations

from typing import Any, Callable, Generic, TypeVar

__all__ = [
    "Handle",
    "ImmediateHandle",
    "DeferredHandle",
    "InFlightHandle",
    "LaunchedHandle",
]

T = TypeVar("T")


class Handle(Generic[T]):
    """Abstract async-op handle."""

    def done(self) -> bool:
        raise NotImplementedError

    def wait(self) -> T:
        raise NotImplementedError


class ImmediateHandle(Handle[T]):
    """A handle whose result is already available."""

    def __init__(self, result: T) -> None:
        self._result = result

    def done(self) -> bool:
        return True

    def wait(self) -> T:
        return self._result


class DeferredHandle(Handle[T]):
    """A handle that runs ``fn`` on first ``wait()`` and caches the result."""

    def __init__(self, fn: Callable[[], T]) -> None:
        self._fn = fn
        self._done = False
        self._result: Any = None

    def done(self) -> bool:
        return self._done

    def wait(self) -> T:
        if not self._done:
            self._result = self._fn()
            self._done = True
        return self._result


class InFlightHandle(Handle[T]):
    """A launched collective: result ready, simulated time settled on wait.

    ``settle(overlap_seconds)`` is invoked exactly once, on the first
    ``wait``; it charges ``max(0, comm_seconds - overlap_seconds)`` as
    exposed time and records the rest as hidden (see
    :meth:`repro.comm.backend.World.allreduce_async`).  Waiting twice is
    fine — the cost is only settled once.
    """

    def __init__(
        self,
        result: T,
        comm_seconds: float,
        settle: Callable[[float], None],
    ) -> None:
        self._result = result
        self.comm_seconds = comm_seconds
        self._settle = settle
        self._settled = False

    def done(self) -> bool:
        return self._settled

    def wait(self, overlap_seconds: float = 0.0) -> T:
        if not self._settled:
            self._settle(overlap_seconds)
            self._settled = True
        return self._result


class LaunchedHandle(Handle[T]):
    """A deferred per-rank matched post that carries an overlap budget.

    SPMD ranks launch collectives without blocking; the blocking matched
    post happens at ``wait(overlap_seconds=...)``, and the world uses the
    *minimum* budget across ranks when splitting the op's cost into
    exposed/hidden seconds (the least-overlapped rank sets the barrier).
    """

    def __init__(self, fn: Callable[[float], T]) -> None:
        self._fn = fn
        self._done = False
        self._result: Any = None

    def done(self) -> bool:
        return self._done

    def wait(self, overlap_seconds: float = 0.0) -> T:
        if not self._done:
            self._result = self._fn(overlap_seconds)
            self._done = True
        return self._result
