"""Data-moving collective algorithms over per-rank numpy buffers.

These functions take a list of arrays — element ``r`` being rank ``r``'s
local buffer — and return the per-rank results, having *actually executed*
the distributed algorithm's data movement step by step.  That makes the
substrate testable at the bit level (e.g. the ring allreduce really
performs the reduce-scatter + allgather phases, with the same chunking and
summation order a real ring would use, so floating-point non-associativity
behaves like the real thing).

Reduction-op note: ``ring_allreduce`` computes the *sum*; callers divide by
world size for Horovod's default average semantics.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "ring_allreduce",
    "ring_reduce_scatter",
    "ring_allgather",
    "binomial_broadcast",
    "chunk_bounds",
]


def _validate(buffers: list[np.ndarray]) -> int:
    if not buffers:
        raise ValueError("no rank buffers supplied")
    shape = buffers[0].shape
    dtype = buffers[0].dtype
    for r, b in enumerate(buffers):
        if b.shape != shape:
            raise ValueError(f"rank {r} buffer shape {b.shape} != rank 0 shape {shape}")
        if b.dtype != dtype:
            raise ValueError(f"rank {r} buffer dtype {b.dtype} != rank 0 dtype {dtype}")
    return len(buffers)


def chunk_bounds(n: int, p: int) -> list[tuple[int, int]]:
    """Split ``n`` elements into ``p`` contiguous chunks (first chunks larger).

    Matches the standard ring-allreduce chunking: chunk ``i`` has
    ``ceil`` size for ``i < n % p`` and ``floor`` size otherwise.
    """
    base, extra = divmod(n, p)
    bounds = []
    start = 0
    for i in range(p):
        size = base + (1 if i < extra else 0)
        bounds.append((start, start + size))
        start += size
    assert start == n
    return bounds


def ring_reduce_scatter(buffers: list[np.ndarray]) -> list[np.ndarray]:
    """Ring reduce-scatter: rank ``r`` ends up with the summed chunk ``r``.

    Returns a list of 1-D arrays (rank ``r``'s owned chunk of the sum).
    Input buffers are not modified.

    Example
    -------
    >>> import numpy as np
    >>> from repro.comm.collectives import ring_reduce_scatter
    >>> chunks = ring_reduce_scatter([np.arange(4.0), np.arange(4.0)])
    >>> sorted(float(v) for c in chunks for v in c)   # doubled elements
    [0.0, 2.0, 4.0, 6.0]
    """
    p = _validate(buffers)
    flats = [b.reshape(-1).copy() for b in buffers]
    n = flats[0].size
    bounds = chunk_bounds(n, p)
    if p == 1:
        return [flats[0]]
    # Step s: rank r sends chunk (r - s) to rank (r + 1), receives chunk
    # (r - s - 1) from rank (r - 1) and accumulates into its local copy.
    for step in range(p - 1):
        incoming = []
        for r in range(p):
            src = (r - 1) % p
            chunk_id = (r - step - 1) % p
            lo, hi = bounds[chunk_id]
            incoming.append((r, chunk_id, flats[src][lo:hi].copy()))
        for r, chunk_id, data in incoming:
            lo, hi = bounds[chunk_id]
            flats[r][lo:hi] += data
    out = []
    for r in range(p):
        lo, hi = bounds[(r + 1) % p]
        out.append(flats[r][lo:hi].copy())
    return out


def ring_allreduce(buffers: list[np.ndarray]) -> list[np.ndarray]:
    """Full ring allreduce (reduce-scatter + allgather).  Returns the *sum*
    on every rank, with the original shape.

    Example
    -------
    >>> import numpy as np
    >>> from repro.comm.collectives import ring_allreduce
    >>> out = ring_allreduce([np.array([1.0, 2.0]), np.array([3.0, 4.0])])
    >>> out[0].tolist(), out[1].tolist()
    ([4.0, 6.0], [4.0, 6.0])
    """
    p = _validate(buffers)
    shape = buffers[0].shape
    if p == 1:
        return [buffers[0].copy()]
    n = buffers[0].size
    bounds = chunk_bounds(n, p)
    owned = ring_reduce_scatter(buffers)
    # allgather phase: circulate owned chunks around the ring.
    results = [np.empty(n, dtype=buffers[0].dtype) for _ in range(p)]
    for r in range(p):
        lo, hi = bounds[(r + 1) % p]
        results[r][lo:hi] = owned[r]
    for step in range(p - 1):
        moves = []
        for r in range(p):
            src = (r - 1) % p
            chunk_id = (src - step + 1) % p
            lo, hi = bounds[chunk_id]
            moves.append((r, lo, hi, results[src][lo:hi].copy()))
        for r, lo, hi, data in moves:
            results[r][lo:hi] = data
    return [res.reshape(shape) for res in results]


def ring_allgather(contributions: list[np.ndarray]) -> list[list[np.ndarray]]:
    """Ring allgather of (possibly differently-shaped) per-rank tensors.

    Returns, for each rank, the full list ``[contribution_0, ...,
    contribution_{p-1}]``.  Data circulates around the ring in ``p - 1``
    steps, as Horovod's allgather does (after its shape-negotiation phase,
    which we model as metadata exchange with no payload).

    Example
    -------
    >>> import numpy as np
    >>> from repro.comm.collectives import ring_allgather
    >>> out = ring_allgather([np.array([1.0]), np.array([2.0, 3.0])])
    >>> [a.tolist() for a in out[0]]      # every rank sees every shard
    [[1.0], [2.0, 3.0]]
    """
    p = len(contributions)
    if p == 0:
        raise ValueError("no rank contributions supplied")
    # gathered[r][i] is rank r's copy of rank i's contribution (or None).
    gathered: list[list[np.ndarray | None]] = [[None] * p for _ in range(p)]
    for r in range(p):
        gathered[r][r] = contributions[r].copy()
    for step in range(p - 1):
        moves = []
        for r in range(p):
            src = (r - 1) % p
            item_id = (src - step) % p
            data = gathered[src][item_id]
            assert data is not None, "ring allgather schedule violated"
            moves.append((r, item_id, data.copy()))
        for r, item_id, data in moves:
            gathered[r][item_id] = data
    out: list[list[np.ndarray]] = []
    for r in range(p):
        row = gathered[r]
        assert all(x is not None for x in row)
        out.append([x for x in row if x is not None])
    return out


def binomial_broadcast(value: np.ndarray, p: int, root: int = 0) -> list[np.ndarray]:
    """Binomial-tree broadcast of ``value`` from ``root`` to ``p`` ranks.

    Returns one (independent) copy per rank.  The tree structure only
    matters for cost accounting; data-wise every rank receives an exact
    copy.

    Example
    -------
    >>> import numpy as np
    >>> from repro.comm.collectives import binomial_broadcast
    >>> copies = binomial_broadcast(np.array([7.0]), p=3, root=1)
    >>> [c.tolist() for c in copies]
    [[7.0], [7.0], [7.0]]
    """
    if p < 1:
        raise ValueError(f"world size must be >= 1, got {p}")
    if not 0 <= root < p:
        raise ValueError(f"root {root} out of range for world size {p}")
    # Recursive-doubling schedule over virtual ranks (actual - root) mod p:
    # in round k every rank v < 2^k sends to v + 2^k.  Executed here only to
    # assert the schedule covers all ranks; payload-wise each rank gets a
    # private copy.  Cost accounting lives in costmodel.broadcast_time.
    have = {0}
    offset = 1
    while offset < p:
        for v in [v for v in have if v + offset < p]:
            have.add(v + offset)
        offset *= 2
    assert len(have) == p, "broadcast schedule failed to cover all ranks"
    return [value.copy() for _ in range(p)]
