"""The simulated communication world.

Two usage styles, sharing the same collective algorithms and cost model:

1. **Phase-style (synchronous)** — the caller holds all ranks' buffers and
   invokes ``world.allreduce([buf_0, ..., buf_{p-1}])``.  Deterministic and
   fast; used by the data-parallel trainer and the distributed K-FAC
   implementation.

2. **SPMD-style (threaded)** — ``world.run_spmd(program)`` launches one
   thread per rank; each thread's :class:`RankView` offers *blocking*
   ``allreduce``/``allgather``/``broadcast``/``barrier`` calls matched by
   operation name, exactly like Horovod ops are matched by tensor name.
   Mismatched or missing posts raise :class:`DeadlockError` instead of
   hanging forever.

Every collective charges simulated seconds (from
:mod:`repro.comm.costmodel`) and payload bytes to per-phase accounting, so
experiments can report the communication profile the paper shows in
Table V.
"""

from __future__ import annotations

import threading
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

import numpy as np

from repro.comm.collectives import (
    binomial_broadcast,
    ring_allgather,
    ring_allreduce,
    ring_reduce_scatter,
)
from repro.comm.compression import WireCodec, get_codec, wire_nbytes
from repro.comm.faults import CollectiveError, FaultPlan
from repro.comm.costmodel import (
    EDR_LIKE,
    NetworkProfile,
    allgather_time,
    allreduce_time,
    broadcast_time,
    reduce_scatter_time,
)
from repro.comm.handles import InFlightHandle, LaunchedHandle
from repro.obs.tracer import NULL_TRACER
from repro.utils.timer import TimerRegistry

__all__ = ["World", "RankView", "DeadlockError", "CommStats", "OverlapStats"]


class DeadlockError(RuntimeError):
    """Raised when a matched collective cannot complete (missing ranks)."""


@dataclass
class CommStats:
    """Aggregate communication accounting for one world."""

    bytes_by_phase: dict[str, float] = field(default_factory=lambda: defaultdict(float))
    ops_by_phase: dict[str, int] = field(default_factory=lambda: defaultdict(int))

    def record(self, phase: str, nbytes: float) -> None:
        self.bytes_by_phase[phase] += nbytes
        self.ops_by_phase[phase] += 1

    def total_bytes(self) -> float:
        return sum(self.bytes_by_phase.values())

    def total_ops(self) -> int:
        return sum(self.ops_by_phase.values())


@dataclass
class OverlapStats:
    """Exposed vs. hidden communication seconds, per phase.

    Every collective's simulated cost lands here exactly once: synchronous
    calls are fully *exposed*; asynchronous calls launched through the
    engine split into ``exposed = max(0, t - overlap_budget)`` plus the
    ``hidden`` remainder (comm time masked by concurrent local compute,
    the SPD-KFAC pipelining gain).

    Example
    -------
    >>> from repro.comm.backend import OverlapStats
    >>> stats = OverlapStats()
    >>> stats.record("factor_comm", exposed=0.2, hidden=0.8)
    >>> stats.total("factor_comm"), stats.total_hidden()
    (1.0, 0.8)
    """

    exposed_by_phase: dict[str, float] = field(default_factory=lambda: defaultdict(float))
    hidden_by_phase: dict[str, float] = field(default_factory=lambda: defaultdict(float))

    def record(self, phase: str, exposed: float, hidden: float) -> None:
        self.exposed_by_phase[phase] += exposed
        self.hidden_by_phase[phase] += hidden

    def exposed(self, phase: str) -> float:
        return self.exposed_by_phase.get(phase, 0.0)

    def hidden(self, phase: str) -> float:
        return self.hidden_by_phase.get(phase, 0.0)

    def total(self, phase: str) -> float:
        return self.exposed(phase) + self.hidden(phase)

    def total_hidden(self) -> float:
        return sum(self.hidden_by_phase.values())

    def as_dict(self) -> dict[str, dict[str, float]]:
        phases = set(self.exposed_by_phase) | set(self.hidden_by_phase)
        return {
            p: {"exposed": self.exposed(p), "hidden": self.hidden(p)}
            for p in sorted(phases)
        }


class World:
    """A simulated set of ``size`` communicating workers.

    Example
    -------
    >>> import numpy as np
    >>> from repro.comm.backend import World
    >>> world = World(2)
    >>> out = world.allreduce([np.array([1.0]), np.array([3.0])])
    >>> out[0].tolist()                          # averaged across ranks
    [2.0]
    >>> world.stats.total_ops()                  # and accounted
    1
    """

    def __init__(self, size: int, net: NetworkProfile = EDR_LIKE) -> None:
        if size < 1:
            raise ValueError(f"world size must be >= 1, got {size}")
        self.size = size
        self.net = net
        self.timers = TimerRegistry()
        self.stats = CommStats()
        self.overlap = OverlapStats()
        # SPMD matching state
        self._lock = threading.Condition()
        self._pending: dict[str, dict[int, np.ndarray]] = {}
        self._results: dict[str, list[Any]] = {}
        self._consumed: dict[str, int] = {}
        self._op_meta: dict[str, tuple[str, Any, tuple[int, ...]]] = {}
        self._overlap_budget: dict[str, float] = {}
        # per (kind, name, rank) repost counter so op names can be reused
        # across iterations without racing slow consumers
        self._generation: dict[tuple[str, str, int], int] = {}
        self._spmd_failed: BaseException | None = None
        # fault/straggler injection (repro.comm.faults); None = clean fleet
        self.fault_plan: FaultPlan | None = None
        self.current_step = 0
        # span tracing (repro.obs.tracer); the null tracer records nothing
        self.tracer = NULL_TRACER

    def begin_step(self, step: int) -> None:
        """Advance the fault-injection step clock (no-op without a plan).

        Example
        -------
        >>> from repro.comm.backend import World
        >>> w = World(2)
        >>> w.begin_step(3)
        >>> w.current_step
        3
        """
        self.current_step = int(step)

    def _fault_gate(self, phase: str, group: Sequence[int] | None = None) -> float:
        """Consult the fault plan for one collective.

        Raises :class:`~repro.comm.faults.CollectiveError` for injected
        failures/dead ranks; returns extra straggler/latency seconds to
        fold into the op's simulated cost.
        """
        if self.fault_plan is None:
            return 0.0
        members = tuple(range(self.size)) if group is None else tuple(group)
        tracer = self.tracer
        try:
            extra = self.fault_plan.apply(self.current_step, phase, members)
        except CollectiveError as exc:
            if tracer.enabled:
                for r in members:
                    tracer.instant(
                        f"fault:{phase}", "fault", r,
                        attrs={"error": type(exc).__name__, "step": self.current_step},
                    )
            raise
        if extra and tracer.enabled:
            for r in members:
                tracer.instant(
                    f"fault:{phase}", "fault", r,
                    attrs={"delay_seconds": float(extra), "step": self.current_step},
                )
        return extra

    # ------------------------------------------------------------------
    # phase-style synchronous API
    # ------------------------------------------------------------------
    def _trace_comm(
        self,
        phase: str,
        seconds: float,
        exposed: float,
        hidden: float,
        nbytes: float,
        group: Sequence[int] | None,
    ) -> None:
        """Record one comm span per participating rank (tracing enabled only).

        Spans are recorded at the *exact* ledger-charge sites with the
        same floats in the same order, so per-phase trace sums reconcile
        with ``TimerRegistry``/``OverlapStats`` without tolerance.  The
        ledgers charge each op *once* regardless of group membership, so
        only the first member's span carries ``owner=True`` — summing
        owner spans (``Tracer.phase_totals()`` with no rank) rebuilds the
        global ledger; per-rank spans all carry the timings for display.
        """
        tracer = self.tracer
        members = list(range(self.size)) if group is None else list(group)
        for r in members:
            tracer.span(
                phase,
                "comm",
                r,
                seconds,
                attrs={
                    "exposed": exposed,
                    "hidden": hidden,
                    "bytes": float(nbytes),
                    "owner": r == members[0],
                },
            )

    def _charge(
        self,
        phase: str,
        seconds: float,
        nbytes: float,
        group: Sequence[int] | None = None,
    ) -> None:
        self.timers.charge(phase, seconds)
        self.stats.record(phase, nbytes)
        self.overlap.record(phase, seconds, 0.0)
        if self.tracer.enabled:
            self._trace_comm(phase, seconds, seconds, 0.0, nbytes, group)

    def _settle_async(
        self,
        phase: str,
        seconds: float,
        overlap_seconds: float,
        nbytes: float = 0.0,
        group: Sequence[int] | None = None,
    ) -> None:
        """Split an async op's cost into exposed + hidden and account it."""
        hidden = min(seconds, max(0.0, overlap_seconds))
        exposed = seconds - hidden
        self.timers.charge(phase, exposed)
        self.overlap.record(phase, exposed, hidden)
        if self.tracer.enabled:
            self._trace_comm(phase, seconds, exposed, hidden, nbytes, group)

    def allreduce(
        self,
        buffers: Sequence[np.ndarray],
        op: str = "average",
        phase: str = "allreduce",
        codec: WireCodec | str | None = None,
    ) -> list[np.ndarray]:
        """Ring-allreduce per-rank buffers; ``op`` is ``"sum"`` or ``"average"``."""
        return self.allreduce_async(buffers, op=op, phase=phase, codec=codec).wait()

    def allreduce_async(
        self,
        buffers: Sequence[np.ndarray],
        op: str = "average",
        phase: str = "allreduce",
        codec: WireCodec | str | None = None,
    ) -> InFlightHandle[list[np.ndarray]]:
        """Non-blocking ring allreduce.

        The data movement happens eagerly (the phase-style world is
        deterministic); the simulated cost is settled at
        ``handle.wait(overlap_seconds=...)``, splitting it into exposed and
        compute-hidden seconds.

        With a ``codec`` (``"fp16"``/``"bf16"``) the wire carries the
        compressed representation — bytes and seconds are charged at the
        codec's itemsize — while the reduction itself runs on decoded
        **fp32 accumulators**; the result is re-quantized to wire
        precision, exactly like an NCCL half-precision allreduce with
        fp32 arithmetic.
        """
        bufs = list(buffers)
        if len(bufs) != self.size:
            raise ValueError(f"expected {self.size} buffers, got {len(bufs)}")
        extra = self._fault_gate(phase)
        codec = get_codec(codec)
        # non-finite payloads are legitimate here: AMP overflow steps ship
        # saturated values and detect them *after* the reduce, so the ring
        # arithmetic must not warn about inf/nan propagation
        with np.errstate(invalid="ignore", over="ignore"):
            if codec is not None:
                nbytes = wire_nbytes(bufs[0], codec)
                bufs = [codec.decode(codec.encode(b)) for b in bufs]
            else:
                nbytes = bufs[0].nbytes
            out = ring_allreduce(bufs)
            if op == "average":
                out = [o / self.size for o in out]
            elif op != "sum":
                raise ValueError(f"unknown reduction op {op!r}")
            if codec is not None:
                out = [codec.quantize(o) for o in out]
        t = allreduce_time(nbytes, self.size, self.net) + extra
        self.stats.record(phase, nbytes)
        return InFlightHandle(
            out, t, lambda ov: self._settle_async(phase, t, ov, nbytes)
        )

    def allgather(
        self, contributions: Sequence[np.ndarray], phase: str = "allgather"
    ) -> list[list[np.ndarray]]:
        """Ring-allgather per-rank tensors (shapes may differ across ranks)."""
        return self.allgather_async(contributions, phase=phase).wait()

    def allgather_async(
        self, contributions: Sequence[np.ndarray], phase: str = "allgather"
    ) -> InFlightHandle[list[list[np.ndarray]]]:
        """Non-blocking ring allgather (see :meth:`allreduce_async`)."""
        contribs = list(contributions)
        if len(contribs) != self.size:
            raise ValueError(f"expected {self.size} contributions, got {len(contribs)}")
        extra = self._fault_gate(phase)
        total = float(sum(c.nbytes for c in contribs))
        out = ring_allgather(contribs)
        t = allgather_time(total, self.size, self.net) + extra
        self.stats.record(phase, total)
        return InFlightHandle(
            out, t, lambda ov: self._settle_async(phase, t, ov, total)
        )

    def broadcast(
        self, value: np.ndarray, root: int = 0, phase: str = "broadcast"
    ) -> list[np.ndarray]:
        """Binomial broadcast from ``root``; returns one copy per rank."""
        extra = self._fault_gate(phase)
        out = binomial_broadcast(value, self.size, root)
        t = broadcast_time(value.nbytes, self.size, self.net) + extra
        self._charge(phase, t, value.nbytes)
        return out

    def group_allgather(
        self,
        contributions: Sequence[np.ndarray],
        ranks: Sequence[int],
        phase: str = "allgather",
    ) -> list[list[np.ndarray]]:
        """Ring allgather restricted to a rank subset (a worker group).

        ``contributions`` is ordered as ``ranks``; each member receives
        the full list of member contributions.  Cost and bytes are those
        of a ``len(ranks)``-rank ring — the gradient-worker-fraction
        strategy's cheaper eigenbasis exchange.
        """
        return self.group_allgather_async(contributions, ranks, phase=phase).wait()

    def group_allgather_async(
        self,
        contributions: Sequence[np.ndarray],
        ranks: Sequence[int],
        phase: str = "allgather",
    ) -> InFlightHandle[list[list[np.ndarray]]]:
        """Non-blocking group allgather (see :meth:`allreduce_async`).

        A singleton group moves no data and charges nothing, matching the
        blocking shortcut.
        """
        group = tuple(ranks)
        contribs = list(contributions)
        if len(contribs) != len(group):
            raise ValueError(f"expected {len(group)} contributions, got {len(contribs)}")
        if len(set(group)) != len(group) or any(not 0 <= r < self.size for r in group):
            raise ValueError(f"invalid group ranks {group} for world size {self.size}")
        extra = self._fault_gate(phase, group)
        if len(group) == 1:
            if extra:
                return InFlightHandle(
                    [[contribs[0]]],
                    extra,
                    lambda ov: self._settle_async(phase, extra, ov, 0.0, group),
                )
            return InFlightHandle([[contribs[0]]], 0.0, lambda ov: None)
        total = float(sum(c.nbytes for c in contribs))
        out = ring_allgather(contribs)
        t = allgather_time(total, len(group), self.net) + extra
        self.stats.record(phase, total)
        return InFlightHandle(
            out, t, lambda ov: self._settle_async(phase, t, ov, total, group)
        )

    def group_broadcast(
        self,
        value: np.ndarray,
        root: int,
        ranks: Sequence[int],
        phase: str = "broadcast",
    ) -> list[np.ndarray]:
        """Binomial broadcast from ``root`` to the subset ``ranks``.

        Returns one copy per listed rank (ordered as ``ranks``).  The
        simulated tree spans only the group, so a broadcast to few ranks
        is proportionally cheaper than a world broadcast.
        """
        return self.group_broadcast_async(value, root, ranks, phase=phase).wait()

    def group_broadcast_async(
        self,
        value: np.ndarray,
        root: int,
        ranks: Sequence[int],
        phase: str = "broadcast",
    ) -> InFlightHandle[list[np.ndarray]]:
        """Non-blocking group broadcast (see :meth:`allreduce_async`)."""
        group = tuple(ranks)
        if root not in group:
            raise ValueError(f"root {root} not in group {group}")
        if len(set(group)) != len(group) or any(not 0 <= r < self.size for r in group):
            raise ValueError(f"invalid group ranks {group} for world size {self.size}")
        extra = self._fault_gate(phase, group)
        if len(group) == 1:
            if extra:
                return InFlightHandle(
                    [value],
                    extra,
                    lambda ov: self._settle_async(phase, extra, ov, 0.0, group),
                )
            return InFlightHandle([value], 0.0, lambda ov: None)
        out = binomial_broadcast(value, len(group), group.index(root))
        t = broadcast_time(value.nbytes, len(group), self.net) + extra
        self.stats.record(phase, float(value.nbytes))
        return InFlightHandle(
            out,
            t,
            lambda ov: self._settle_async(phase, t, ov, float(value.nbytes), group),
        )

    def reduce_scatter(
        self, buffers: Sequence[np.ndarray], phase: str = "reduce_scatter"
    ) -> list[np.ndarray]:
        """Ring reduce-scatter; rank ``r`` receives summed chunk ``r``."""
        bufs = list(buffers)
        if len(bufs) != self.size:
            raise ValueError(f"expected {self.size} buffers, got {len(bufs)}")
        extra = self._fault_gate(phase)
        nbytes = bufs[0].nbytes
        out = ring_reduce_scatter(bufs)
        t = reduce_scatter_time(nbytes, self.size, self.net) + extra
        self._charge(phase, t, nbytes)
        return out

    # ------------------------------------------------------------------
    # SPMD-style threaded API
    # ------------------------------------------------------------------
    def run_spmd(
        self,
        program: Callable[["RankView"], Any],
        timeout: float = 60.0,
    ) -> list[Any]:
        """Run ``program(rank_view)`` on every rank in its own thread.

        Returns the per-rank return values.  Any exception in any rank is
        re-raised in the caller (other ranks are unblocked and drained).
        """
        results: list[Any] = [None] * self.size
        errors: list[BaseException | None] = [None] * self.size

        def runner(r: int) -> None:
            try:
                results[r] = program(RankView(self, r, timeout))
            except BaseException as exc:  # noqa: BLE001 - propagated below
                errors[r] = exc
                with self._lock:
                    if self._spmd_failed is None:
                        self._spmd_failed = exc
                    self._lock.notify_all()

        threads = [threading.Thread(target=runner, args=(r,), daemon=True) for r in range(self.size)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=timeout * 2)
            if t.is_alive():  # pragma: no cover - defensive
                with self._lock:
                    self._spmd_failed = DeadlockError("rank thread failed to terminate")
                    self._lock.notify_all()
                raise DeadlockError("SPMD program did not terminate (deadlock?)")
        self._spmd_failed = None
        first_error = next((e for e in errors if e is not None), None)
        if first_error is not None:
            raise first_error
        return results

    def _post_matched(
        self,
        kind: str,
        name: str,
        rank: int,
        tensor: np.ndarray,
        meta: Any,
        timeout: float,
        overlap_seconds: float = 0.0,
        ranks: Sequence[int] | None = None,
    ) -> Any:
        """Post one rank's contribution to a named op; blocks until matched.

        ``overlap_seconds`` is this rank's compute time since the op was
        launched; the *minimum* across ranks bounds how much of the op's
        cost counts as hidden (the least-overlapped rank sets the barrier).
        ``ranks`` restricts the op to a worker group: only listed ranks
        post, and the op completes once all of them have (the default is
        the whole world).
        """
        group = tuple(range(self.size)) if ranks is None else tuple(ranks)
        with self._lock:
            if rank not in group:
                raise DeadlockError(
                    f"op {name!r}: rank {rank} posted to group {group} it is not in"
                )
            gen = self._generation.get((kind, name, rank), 0)
            self._generation[(kind, name, rank)] = gen + 1
            key = f"{kind}:{name}#{gen}"
            if key in self._op_meta:
                prev_kind, prev_meta, prev_group = self._op_meta[key]
                if prev_kind != kind or prev_meta != meta or prev_group != group:
                    raise DeadlockError(
                        f"op {name!r}: rank {rank} posted {kind}/{meta}/{group}, "
                        f"but op was registered as {prev_kind}/{prev_meta}/{prev_group}"
                    )
            else:
                self._op_meta[key] = (kind, meta, group)
            pending = self._pending.setdefault(key, {})
            if rank in pending:
                raise DeadlockError(f"op {name!r}: rank {rank} posted twice")
            pending[rank] = tensor
            self._overlap_budget[key] = min(
                self._overlap_budget.get(key, float("inf")), max(0.0, overlap_seconds)
            )
            if len(pending) == len(group):
                ordered = [pending[r] for r in group]
                try:
                    values = self._execute(
                        kind, ordered, meta, self._overlap_budget.pop(key, 0.0)
                    )
                except CollectiveError as exc:
                    # deliver the failure to every member in lockstep: each
                    # rank re-raises the same error on consume, so all ranks
                    # observe (and can retry) the op identically
                    self._results[key] = {r: exc for r in group}
                else:
                    self._results[key] = dict(zip(group, values))
                self._consumed[key] = 0
                self._lock.notify_all()
            else:
                deadline = threading.TIMEOUT_MAX if timeout is None else timeout
                while key not in self._results:
                    if self._spmd_failed is not None:
                        raise DeadlockError(
                            f"op {name!r} aborted: another rank failed "
                            f"({type(self._spmd_failed).__name__})"
                        )
                    if not self._lock.wait(timeout=deadline):
                        missing = [r for r in group if r not in pending]
                        raise DeadlockError(
                            f"op {name!r} timed out waiting for ranks {missing}"
                        )
            result = self._results[key][rank]
            self._consumed[key] += 1
            if self._consumed[key] == len(group):
                # whole op consumed: clear so the name can be reused next iter
                del self._results[key]
                del self._pending[key]
                del self._consumed[key]
                del self._op_meta[key]
            if isinstance(result, CollectiveError):
                raise result
            return result

    def _execute(
        self, kind: str, ordered: list[np.ndarray], meta: Any, overlap_seconds: float = 0.0
    ) -> list[Any]:
        if kind == "allreduce":
            codec = meta[2] if len(meta) > 2 else None
            return self.allreduce_async(
                ordered, op=meta[0], phase=meta[1], codec=codec
            ).wait(overlap_seconds)
        if kind == "allgather":
            return self.allgather_async(ordered, phase=meta[1]).wait(overlap_seconds)
        if kind == "broadcast":
            root = meta[0]
            return self.broadcast(ordered[root], root=root, phase=meta[1])
        if kind == "group_allgather":
            ranks, phase = meta
            return self.group_allgather_async(ordered, ranks, phase=phase).wait(
                overlap_seconds
            )
        if kind == "group_broadcast":
            root, ranks, phase = meta
            return self.group_broadcast_async(
                ordered[ranks.index(root)], root, ranks, phase=phase
            ).wait(overlap_seconds)
        if kind == "barrier":
            return [None] * len(ordered)
        raise ValueError(f"unknown collective kind {kind!r}")


class RankView:
    """One rank's blocking view of the world (SPMD style)."""

    def __init__(self, world: World, rank: int, timeout: float = 60.0) -> None:
        self.world = world
        self.rank = rank
        self.timeout = timeout

    @property
    def size(self) -> int:
        return self.world.size

    def begin_step(self, step: int) -> None:
        """Advance the shared fault-injection step clock from this rank.

        All ranks of an SPMD program call this with the same step value
        at the same loop point, so the benign last-writer-wins race is
        invisible.
        """
        self.world.begin_step(step)

    def allreduce(
        self,
        tensor: np.ndarray,
        name: str,
        op: str = "average",
        phase: str = "allreduce",
        codec: str | None = None,
    ) -> np.ndarray:
        """Blocking named allreduce (matched across ranks by ``name``).

        ``codec`` names a wire compression (``"fp16"``/``"bf16"``); it is
        part of the matched metadata, so every rank must request the same
        transport precision.
        """
        return self.world._post_matched(
            "allreduce", name, self.rank, tensor, (op, phase, codec), self.timeout
        )

    def allreduce_async(
        self,
        tensor: np.ndarray,
        name: str,
        op: str = "average",
        phase: str = "allreduce",
        codec: str | None = None,
    ) -> LaunchedHandle[np.ndarray]:
        """Non-blocking named allreduce; the matched post happens at wait.

        ``wait(overlap_seconds=...)`` forwards this rank's compute-overlap
        budget; the op's hidden time is bounded by the minimum budget
        across ranks.
        """
        return LaunchedHandle(
            lambda ov: self.world._post_matched(
                "allreduce", name, self.rank, tensor, (op, phase, codec), self.timeout, ov
            )
        )

    def allgather(self, tensor: np.ndarray, name: str, phase: str = "allgather") -> list[np.ndarray]:
        """Blocking named allgather; returns all ranks' contributions."""
        return self.world._post_matched(
            "allgather", name, self.rank, tensor, (None, phase), self.timeout
        )

    def allgather_async(
        self, tensor: np.ndarray, name: str, phase: str = "allgather"
    ) -> LaunchedHandle[list[np.ndarray]]:
        """Non-blocking named allgather (see :meth:`allreduce_async`)."""
        return LaunchedHandle(
            lambda ov: self.world._post_matched(
                "allgather", name, self.rank, tensor, (None, phase), self.timeout, ov
            )
        )

    def broadcast(
        self, tensor: np.ndarray, name: str, root: int = 0, phase: str = "broadcast"
    ) -> np.ndarray:
        """Blocking named broadcast from ``root``."""
        return self.world._post_matched(
            "broadcast", name, self.rank, tensor, (root, phase), self.timeout
        )

    def group_allgather(
        self,
        tensor: np.ndarray,
        name: str,
        ranks: Sequence[int],
        phase: str = "allgather",
    ) -> list[np.ndarray]:
        """Blocking allgather among a rank subset (this rank must be in it).

        Only ranks listed in ``ranks`` may post; the op completes once all
        of them have.  Returns the members' contributions ordered as
        ``ranks``.
        """
        group = tuple(ranks)
        return self.world._post_matched(
            "group_allgather", name, self.rank, tensor, (group, phase),
            self.timeout, ranks=group,
        )

    def group_allgather_async(
        self,
        tensor: np.ndarray,
        name: str,
        ranks: Sequence[int],
        phase: str = "allgather",
    ) -> LaunchedHandle[list[np.ndarray]]:
        """Non-blocking group allgather (see :meth:`allreduce_async`)."""
        group = tuple(ranks)
        return LaunchedHandle(
            lambda ov: self.world._post_matched(
                "group_allgather", name, self.rank, tensor, (group, phase),
                self.timeout, ov, ranks=group,
            )
        )

    def group_broadcast(
        self,
        tensor: np.ndarray,
        name: str,
        root: int,
        ranks: Sequence[int],
        phase: str = "broadcast",
    ) -> np.ndarray:
        """Blocking broadcast from ``root`` to the subset ``ranks``."""
        group = tuple(ranks)
        return self.world._post_matched(
            "group_broadcast", name, self.rank, tensor, (root, group, phase),
            self.timeout, ranks=group,
        )

    def group_broadcast_async(
        self,
        tensor: np.ndarray,
        name: str,
        root: int,
        ranks: Sequence[int],
        phase: str = "broadcast",
    ) -> LaunchedHandle[np.ndarray]:
        """Non-blocking group broadcast (see :meth:`allreduce_async`)."""
        group = tuple(ranks)
        return LaunchedHandle(
            lambda ov: self.world._post_matched(
                "group_broadcast", name, self.rank, tensor, (root, group, phase),
                self.timeout, ov, ranks=group,
            )
        )

    def barrier(self, name: str = "barrier") -> None:
        """Block until every rank reaches the barrier."""
        self.world._post_matched(
            "barrier", name, self.rank, np.zeros(0, dtype=np.float32), (None, "barrier"), self.timeout
        )
