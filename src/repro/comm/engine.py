"""Pipelined asynchronous communication engine.

One engine per :class:`repro.comm.backend.World` centralises the policies
the rest of the stack used to improvise per call site:

- **Bucketing** — one ``bucket_bytes`` knob governs both the Horovod-style
  gradient fusion buffer *and* how the K-FAC factor exchange is split into
  pipelineable chunks (SPD-KFAC's tensor partitioning: chunks small enough
  that communication of chunk ``k+1`` can hide behind compute on chunk
  ``k``, large enough to stay bandwidth-bound).  Under symmetric factor
  communication the partition runs over the *packed* triangular payloads
  (:func:`symmetric_payload_nbytes`), so the pipeline depth follows the
  roughly-halved bytes actually on the wire.
- **Persistent fusion buffers** — ``engine.fusion(op, phase)`` returns one
  long-lived :class:`repro.comm.fusion.FusionBuffer` per (op, phase), so
  the trainer no longer rebuilds a buffer every iteration and flush
  accounting accumulates across the whole run.
- **Async launch/wait** — thin wrappers over the world's
  ``allreduce_async``/``allgather_async`` that track in-flight handles so
  a driver can assert nothing is left un-waited at a step boundary.
- **Overlap accounting** — per-phase exposed vs. hidden communication
  seconds (from :class:`repro.comm.backend.OverlapStats`), the quantity
  the paper's Table V cares about and SPD-KFAC optimises.

Compute-overlap budgets must be *deterministic* (simulated seconds, never
wall clock), so the engine also provides a nominal second-order compute
estimator used by the pipelined K-FAC step to price the eigendecomposition
work it interleaves between launches and waits.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.comm.backend import World
from repro.comm.fusion import FusionBuffer, tri_len
from repro.comm.handles import InFlightHandle

__all__ = [
    "CommEngine",
    "DEFAULT_BUCKET_BYTES",
    "estimate_precondition_seconds",
    "estimate_second_order_seconds",
    "partition_buckets",
    "symmetric_payload_nbytes",
    "task_overlap_profile",
]

#: default pipeline chunk size — small enough that a ResNet-scale factor
#: exchange splits into many chunks, large enough to stay bandwidth-bound.
DEFAULT_BUCKET_BYTES = 4 << 20

#: nominal dense eigensolver throughput (FLOP/s) for overlap budgets.
#: Deliberately a *model* constant, not a measurement: budgets must be
#: identical across machines so pipelined runs stay deterministic.
NOMINAL_SECOND_ORDER_FLOPS = 25.0e9

#: syevd-style eigendecomposition costs ~(26/3) n^3 FLOPs; explicit damped
#: inversion (Cholesky + solve) ~2 n^3.
EIG_FLOP_COEF = 26.0 / 3.0
INV_FLOP_COEF = 2.0


def estimate_second_order_seconds(dims: Sequence[int], eigen: bool = True) -> float:
    """Deterministic simulated seconds to eigendecompose/invert factors.

    ``dims`` are the factor side lengths handled locally between an async
    launch and its wait; the result prices how much in-flight communication
    that compute can hide.

    Example
    -------
    >>> from repro.comm.engine import estimate_second_order_seconds
    >>> t = estimate_second_order_seconds([256, 512])
    >>> t == estimate_second_order_seconds([256, 512])   # deterministic
    True
    >>> t > estimate_second_order_seconds([256])
    True
    """
    coef = EIG_FLOP_COEF if eigen else INV_FLOP_COEF
    return sum(coef * float(d) ** 3 for d in dims) / NOMINAL_SECOND_ORDER_FLOPS


def estimate_precondition_seconds(layer_dims: Sequence[tuple[int, int]]) -> float:
    """Deterministic simulated seconds to precondition layer gradients.

    ``layer_dims`` are ``(g_dim, a_dim)`` pairs of the layers preconditioned
    locally between an async launch and its wait.  The eigenbasis path costs
    two changes of basis plus the rescale — roughly ``4 * (g^2 a + g a^2)``
    FLOPs per layer — priced at the same nominal throughput as the
    second-order estimator so graph-scheduler overlap budgets stay
    machine-independent.

    Example
    -------
    >>> from repro.comm.engine import estimate_precondition_seconds
    >>> t = estimate_precondition_seconds([(10, 20)])
    >>> t == estimate_precondition_seconds([(10, 20)])   # deterministic
    True
    >>> t < estimate_precondition_seconds([(10, 20), (30, 30)])
    True
    """
    flops = sum(
        4.0 * (float(g) ** 2 * float(a) + float(g) * float(a) ** 2)
        for g, a in layer_dims
    )
    return flops / NOMINAL_SECOND_ORDER_FLOPS


#: comm phase -> scheduler task kind responsible for that traffic
_PHASE_TO_TASK_KIND = {
    "factor_comm": "FactorComm",
    "eig_comm": "EigShare",
    "precond_comm": "GradShare",
    "grad_allreduce": "GradAllReduce",
}


def task_overlap_profile(overlap) -> dict[str, dict[str, float]]:
    """Exposed/hidden seconds keyed by scheduler task kind.

    Translates the per-phase :class:`repro.comm.backend.OverlapStats` into
    the task vocabulary of :mod:`repro.sched` (``FactorComm``, ``EigShare``,
    ``GradShare``, ...), so training histories can report which *task kind*
    paid exposed communication and which overlapped.  Every mapped task
    kind is always present — kinds that never ran report zeroed fields, so
    downstream tables see a stable schema.  Phases without a task mapping
    keep their phase name.

    Example
    -------
    >>> from repro.comm.backend import OverlapStats
    >>> from repro.comm.engine import task_overlap_profile
    >>> stats = OverlapStats()
    >>> stats.record("factor_comm", exposed=0.2, hidden=0.8)
    >>> profile = task_overlap_profile(stats)
    >>> profile["FactorComm"]
    {'exposed': 0.2, 'hidden': 0.8}
    >>> sorted(profile)                       # zeroed kinds still present
    ['EigShare', 'FactorComm', 'GradAllReduce', 'GradShare']
    >>> profile["EigShare"]
    {'exposed': 0.0, 'hidden': 0.0}
    """
    out: dict[str, dict[str, float]] = {
        kind: {"exposed": 0.0, "hidden": 0.0}
        for kind in _PHASE_TO_TASK_KIND.values()
    }
    for phase, entry in overlap.as_dict().items():
        kind = _PHASE_TO_TASK_KIND.get(phase, phase)
        bucket = out.setdefault(kind, {"exposed": 0.0, "hidden": 0.0})
        bucket["exposed"] += entry["exposed"]
        bucket["hidden"] += entry["hidden"]
    return out


def symmetric_payload_nbytes(dims: Sequence[int], itemsize: int = 4) -> list[int]:
    """Per-factor wire bytes under triangular packing.

    A ``d x d`` symmetric factor ships as ``d*(d+1)/2`` elements; feed the
    result to :func:`partition_buckets` to derive the pipeline chunking
    the packed exchange actually sees.

    Example
    -------
    >>> from repro.comm.engine import symmetric_payload_nbytes
    >>> symmetric_payload_nbytes([3, 4])      # 6 and 10 elements, fp32
    [24, 40]
    """
    return [tri_len(int(d)) * int(itemsize) for d in dims]


def partition_buckets(nbytes_list: Sequence[int], bucket_bytes: int) -> list[list[int]]:
    """Split item indices into contiguous buckets of at most ``bucket_bytes``.

    Items larger than the capacity get a bucket of their own; order is
    preserved so every rank derives the identical partition from the same
    metadata (a hard requirement for lockstep matching).

    Example
    -------
    >>> from repro.comm.engine import partition_buckets
    >>> partition_buckets([10, 10, 10, 25], bucket_bytes=20)
    [[0, 1], [2], [3]]
    """
    if bucket_bytes <= 0:
        raise ValueError(f"bucket_bytes must be positive, got {bucket_bytes}")
    buckets: list[list[int]] = []
    current: list[int] = []
    current_bytes = 0
    for i, nbytes in enumerate(nbytes_list):
        if current and current_bytes + int(nbytes) > bucket_bytes:
            buckets.append(current)
            current = []
            current_bytes = 0
        current.append(i)
        current_bytes += int(nbytes)
    if current:
        buckets.append(current)
    return buckets


class CommEngine:
    """Asynchronous, bucketed communication engine over one world.

    Example
    -------
    >>> import numpy as np
    >>> from repro.comm.backend import World
    >>> from repro.comm.engine import CommEngine
    >>> engine = CommEngine(World(2), bucket_bytes=1 << 20)
    >>> handle = engine.allreduce_async([np.ones(4), np.ones(4)])
    >>> engine.in_flight
    1
    >>> reduced = handle.wait(overlap_seconds=0.5)   # comm hidden by compute
    >>> reduced[0].tolist()
    [1.0, 1.0, 1.0, 1.0]
    """

    def __init__(self, world: World, bucket_bytes: int = DEFAULT_BUCKET_BYTES) -> None:
        if bucket_bytes <= 0:
            raise ValueError(f"bucket_bytes must be positive, got {bucket_bytes}")
        self.world = world
        self.bucket_bytes = bucket_bytes
        self._fusions: dict[tuple[str, str, str | None], FusionBuffer] = {}
        self._in_flight: list[InFlightHandle] = []

    # ------------------------------------------------------------------
    # fusion (gradient exchange and any other bucketed sync reduction)
    # ------------------------------------------------------------------
    def fusion(
        self,
        op: str = "average",
        phase: str = "fused_allreduce",
        codec: str | None = None,
        error_feedback: bool = True,
    ) -> FusionBuffer:
        """The persistent fusion buffer for (op, phase, codec) — created once.

        ``codec`` selects the wire compression (``"fp16"``/``"bf16"``,
        fp32 reduction accumulators); ``error_feedback`` banks the
        per-bucket quantization residuals across flushes.
        """
        key = (op, phase, codec if codec is None else str(codec))
        if key not in self._fusions:
            self._fusions[key] = FusionBuffer(
                self.world,
                capacity_bytes=self.bucket_bytes,
                op=op,
                phase=phase,
                codec=codec,
                error_feedback=error_feedback,
            )
        return self._fusions[key]

    # ------------------------------------------------------------------
    # async collectives
    # ------------------------------------------------------------------
    def allreduce_async(
        self,
        buffers: Sequence[np.ndarray],
        op: str = "average",
        phase: str = "allreduce",
    ) -> InFlightHandle[list[np.ndarray]]:
        handle = self.world.allreduce_async(buffers, op=op, phase=phase)
        self._track(handle)
        return handle

    def allgather_async(
        self, contributions: Sequence[np.ndarray], phase: str = "allgather"
    ) -> InFlightHandle[list[list[np.ndarray]]]:
        handle = self.world.allgather_async(contributions, phase=phase)
        self._track(handle)
        return handle

    def _track(self, handle: InFlightHandle) -> None:
        # prune settled handles on every launch so directly-waited handles
        # don't pin their result arrays for the life of the engine
        self._in_flight = [h for h in self._in_flight if not h.done()]
        self._in_flight.append(handle)

    @property
    def in_flight(self) -> int:
        """Number of launched-but-unsettled collectives."""
        self._in_flight = [h for h in self._in_flight if not h.done()]
        return len(self._in_flight)

    def wait_all(self) -> None:
        """Settle every in-flight handle (fully exposed — no overlap credit)."""
        for h in self._in_flight:
            h.wait()
        self._in_flight.clear()

    # ------------------------------------------------------------------
    # bucketing + accounting
    # ------------------------------------------------------------------
    def make_buckets(self, arrays: Sequence[np.ndarray]) -> list[list[int]]:
        """Partition array indices into pipeline chunks by this engine's policy."""
        return partition_buckets([a.nbytes for a in arrays], self.bucket_bytes)

    def overlap_report(self) -> dict[str, dict[str, float]]:
        """Per-phase exposed/hidden communication seconds so far."""
        return self.world.overlap.as_dict()

    def exposed_seconds(self, phase: str) -> float:
        return self.world.overlap.exposed(phase)

    def hidden_seconds(self, phase: str) -> float:
        return self.world.overlap.hidden(phase)
