"""Horovod-flavoured per-rank frontend.

Gives SPMD rank programs the API surface the paper's Listing 1 uses::

    hvd = HorovodContext(view)                     # ~ hvd.init()
    hvd.broadcast_parameters(model)                # sync initial weights
    opt = SGD(model.parameters(), lr=...)
    opt = DistributedOptimizer(opt, hvd, model.named_parameters())
    ...
    loss.backward()
    opt.synchronize()                              # grads averaged here
    preconditioner.step()                          # K-FAC on averaged grads
    with opt.skip_synchronize():
        opt.step()

``DistributedOptimizer`` mirrors Horovod's contract: gradients are averaged
across ranks on ``synchronize()`` (or implicitly in ``step()`` if the user
never synchronized), and ``skip_synchronize()`` suppresses the implicit
reduction after an explicit one — exactly the dance Listing 1 performs so
K-FAC preconditions *averaged* gradients.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterable, Iterator

import numpy as np

from repro.comm.backend import RankView
from repro.comm.compression import ErrorFeedback, get_codec
from repro.comm.handles import DeferredHandle, Handle, LaunchedHandle
from repro.nn.module import Module, Parameter
from repro.optim.base import Optimizer

__all__ = ["Average", "Sum", "HorovodContext", "DistributedOptimizer"]

#: reduction-op constants, mirroring ``horovod.torch.Average`` / ``Sum``
Average = "average"
Sum = "sum"


class HorovodContext:
    """Per-rank communication API bound to a :class:`RankView`.

    Example
    -------
    >>> import numpy as np
    >>> from repro.comm.backend import World
    >>> from repro.comm.horovod import HorovodContext
    >>> def program(view):
    ...     hvd = HorovodContext(view)
    ...     out = hvd.allreduce(np.array([float(hvd.rank())]), name="r")
    ...     return float(out[0])
    >>> World(4).run_spmd(program)        # mean of ranks 0..3
    [1.5, 1.5, 1.5, 1.5]
    """

    def __init__(self, view: RankView) -> None:
        self._view = view

    def rank(self) -> int:
        return self._view.rank

    def size(self) -> int:
        return self._view.size

    def allreduce(
        self,
        tensor: np.ndarray,
        name: str,
        op: str = Average,
        phase: str = "allreduce",
        codec: str | None = None,
    ) -> np.ndarray:
        """Blocking allreduce matched across ranks by ``name``.

        ``codec`` compresses the wire (``"fp16"``/``"bf16"``, mirroring
        ``hvd.Compression.fp16``); every rank must pass the same value.
        """
        return self._view.allreduce(tensor, name=name, op=op, phase=phase, codec=codec)

    def allreduce_async_(
        self, tensor: np.ndarray, name: str, op: str = Average, phase: str = "allreduce"
    ) -> Handle[np.ndarray]:
        """Handle-returning allreduce (resolved on ``synchronize``)."""
        return DeferredHandle(lambda: self.allreduce(tensor, name, op, phase))

    def allreduce_async(
        self,
        tensor: np.ndarray,
        name: str,
        op: str = Average,
        phase: str = "allreduce",
        codec: str | None = None,
    ) -> LaunchedHandle[np.ndarray]:
        """Non-blocking allreduce whose wait accepts an overlap budget.

        ``handle.wait(overlap_seconds=t)`` reports ``t`` simulated seconds
        of local compute performed since the launch; the world hides up to
        the minimum budget across ranks from the op's accounted time.
        """
        return self._view.allreduce_async(
            tensor, name=name, op=op, phase=phase, codec=codec
        )

    def allgather(self, tensor: np.ndarray, name: str, phase: str = "allgather") -> list[np.ndarray]:
        return self._view.allgather(tensor, name=name, phase=phase)

    def allgather_async(
        self, tensor: np.ndarray, name: str, phase: str = "allgather"
    ) -> LaunchedHandle[list[np.ndarray]]:
        """Non-blocking allgather (see :meth:`allreduce_async`)."""
        return self._view.allgather_async(tensor, name=name, phase=phase)

    def broadcast(self, tensor: np.ndarray, name: str, root: int = 0) -> np.ndarray:
        return self._view.broadcast(tensor, name=name, root=root)

    def group_allgather(
        self,
        tensor: np.ndarray,
        name: str,
        ranks: tuple[int, ...],
        phase: str = "allgather",
    ) -> list[np.ndarray]:
        """Blocking allgather among a rank subset (this rank must belong).

        Used by the gradient-worker-fraction strategy to share
        eigendecompositions inside a group instead of across the world.
        """
        return self._view.group_allgather(tensor, name=name, ranks=ranks, phase=phase)

    def group_allgather_async(
        self,
        tensor: np.ndarray,
        name: str,
        ranks: tuple[int, ...],
        phase: str = "allgather",
    ) -> LaunchedHandle[list[np.ndarray]]:
        """Non-blocking group allgather (see :meth:`allreduce_async`)."""
        return self._view.group_allgather_async(
            tensor, name=name, ranks=ranks, phase=phase
        )

    def group_broadcast(
        self,
        tensor: np.ndarray,
        name: str,
        root: int,
        ranks: tuple[int, ...],
        phase: str = "broadcast",
    ) -> np.ndarray:
        """Blocking broadcast from ``root`` to the subset ``ranks``."""
        return self._view.group_broadcast(
            tensor, name=name, root=root, ranks=ranks, phase=phase
        )

    def group_broadcast_async(
        self,
        tensor: np.ndarray,
        name: str,
        root: int,
        ranks: tuple[int, ...],
        phase: str = "broadcast",
    ) -> LaunchedHandle[np.ndarray]:
        """Non-blocking group broadcast (see :meth:`allreduce_async`)."""
        return self._view.group_broadcast_async(
            tensor, name=name, root=root, ranks=ranks, phase=phase
        )

    def barrier(self, name: str = "barrier") -> None:
        self._view.barrier(name)

    @staticmethod
    def synchronize(handle: Handle[np.ndarray]) -> np.ndarray:
        """Resolve a handle (mirrors ``hvd.synchronize``)."""
        return handle.wait()

    def broadcast_parameters(self, model: Module, root: int = 0) -> None:
        """Broadcast every parameter and buffer from ``root`` in place."""
        for name, p in model.named_parameters():
            p.data[...] = self.broadcast(p.data, name=f"param:{name}", root=root)
        owners = model._buffer_owners()
        for name, (owner, bname) in sorted(owners.items()):
            current = np.asarray(getattr(owner, bname))
            owner._set_buffer(bname, self.broadcast(current, name=f"buffer:{name}", root=root))


class DistributedOptimizer:
    """Wraps a local optimizer with gradient averaging (Horovod contract).

    Example
    -------
    >>> import numpy as np
    >>> from repro.comm.backend import World
    >>> from repro.comm.horovod import DistributedOptimizer, HorovodContext
    >>> from repro.nn.layers import Linear
    >>> from repro.optim.sgd import SGD
    >>> def program(view):
    ...     hvd = HorovodContext(view)
    ...     model = Linear(2, 1, rng=np.random.default_rng(0))
    ...     opt = DistributedOptimizer(
    ...         SGD(model.parameters(), lr=0.1), hvd, model.named_parameters()
    ...     )
    ...     model.weight.grad[...] = float(hvd.rank())   # divergent grads...
    ...     opt.synchronize()                            # ...averaged here
    ...     return float(model.weight.grad[0, 0])
    >>> World(2).run_spmd(program)
    [0.5, 0.5]
    """

    def __init__(
        self,
        optimizer: Optimizer,
        hvd: HorovodContext,
        named_parameters: Iterable[tuple[str, Parameter]],
        op: str = Average,
        compression: str | None = None,
    ) -> None:
        self.optimizer = optimizer
        self.hvd = hvd
        self.named_params = list(named_parameters)
        if not self.named_params:
            raise ValueError("DistributedOptimizer requires named parameters")
        self.op = op
        #: wire codec for the gradient exchange (~ ``hvd.Compression.fp16``),
        #: with per-parameter error-feedback residuals kept rank-locally
        self.compression = compression
        codec = get_codec(compression)
        self._error_feedback = ErrorFeedback(codec) if codec is not None else None
        self._synchronized = False
        self._skip = False
        self._round = 0

    @property
    def lr(self) -> float:
        return self.optimizer.lr

    @lr.setter
    def lr(self, value: float) -> None:
        self.optimizer.lr = value

    def zero_grad(self) -> None:
        self.optimizer.zero_grad()

    def synchronize(self) -> None:
        """Average all parameter gradients across ranks, in place."""
        tag = self._round
        for name, p in self.named_params:
            g = p.grad
            if self._error_feedback is not None:
                g = self._error_feedback.apply(name, g)
            p.grad[...] = self.hvd.allreduce(
                g,
                name=f"grad:{name}:{tag}",
                op=self.op,
                phase="grad_allreduce",
                codec=self.compression,
            )
        self._round += 1
        self._synchronized = True

    def rescale_error_feedback(self, factor: float) -> None:
        """Rescale compression residuals after a loss-scale change.

        With ``compression`` set and gradients arriving loss-scaled, call
        with ``new_scale / old_scale`` right after ``GradScaler.update``
        changes the scale (see the quickstart example).
        """
        if self._error_feedback is not None:
            self._error_feedback.rescale(factor)

    @contextmanager
    def skip_synchronize(self) -> Iterator[None]:
        """Suppress the implicit synchronize inside the next ``step()``."""
        self._skip = True
        try:
            yield
        finally:
            self._skip = False

    def step(self) -> None:
        if not self._synchronized and not self._skip:
            self.synchronize()
        self.optimizer.step()
        self._synchronized = False

    def state_dict(self) -> dict:
        """The wrapped optimizer's snapshot (momentum buffers etc.).

        Checkpoint/resume passthrough: the wrapper itself holds no
        persistent numeric state (error-feedback residuals are transient
        within a scale window), so saving and restoring the inner
        optimizer is sufficient for an elastic resume.
        """
        return self.optimizer.state_dict()

    def load_state_dict(self, state: dict) -> None:
        """Restore the wrapped optimizer from :meth:`state_dict`."""
        self.optimizer.load_state_dict(state)
