"""Precision policies: which dtype each tensor class lives and computes in.

A :class:`PrecisionPolicy` is the single switch that configures the whole
mixed-precision recipe of Osawa et al. (arXiv:1811.12019) for this stack:

=================  =========  =========  =========  =========
tensor class       fp32       fp16       bf16       fp64
=================  =========  =========  =========  =========
params (master)    fp32       fp32       fp32       fp64*
grads              fp32       fp32       fp32       fp64*
activations        fp32       fp32       fp32       fp64*
factors/eigenbasis fp32       fp32       fp32       fp64*
GEMMs + im2col     fp32       fp16       bf16       fp64
wire (grad+factor) as stored  fp16       bf16       as stored
loss scaling       off        on         off        off
=================  =========  =========  =========  =========

(*) storage follows ``REPRO_DEFAULT_DTYPE``; the fp64 policy only forces
the compute dtype up.

The half policies are *AMP* recipes: storage stays fp32 (master weights),
compute runs through the fp32-accumulating cast helpers in
:mod:`repro.tensor.amp`, and the wire carries codec-compressed payloads
(:mod:`repro.comm.compression`).  fp16 also enables dynamic loss scaling
(:class:`repro.precision.GradScaler`); bf16 shares fp32's exponent range
and does not need it.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

from repro.tensor.amp import autocast as _amp_autocast

__all__ = ["PrecisionPolicy", "POLICIES", "resolve_policy"]

_ALIASES = {
    "fp16-amp": "fp16",
    "bf16-amp": "bf16",
    "float16": "fp16",
    "bfloat16": "bf16",
    "float32": "fp32",
    "float64": "fp64",
    "amp": "fp16",
}


@dataclass(frozen=True)
class PrecisionPolicy:
    """Per-tensor-class precision rules for one training run.

    Attributes
    ----------
    name:
        ``"fp32"`` / ``"fp16"`` / ``"bf16"`` / ``"fp64"``.
    compute_dtype:
        Dtype of forward/backward GEMMs and the im2col lowering
        (``None`` = storage dtype, no autocast).
    comm_dtype:
        Wire codec for gradient and factor collectives (``None`` =
        dtype-preserving transport).
    loss_scaling:
        Whether :class:`repro.precision.GradScaler` should be armed.

    Example
    -------
    >>> from repro.precision.policy import POLICIES
    >>> fp16 = POLICIES["fp16"]
    >>> fp16.compute_dtype, fp16.comm_dtype, fp16.loss_scaling
    ('float16', 'fp16', True)
    >>> POLICIES["fp32"].is_amp
    False
    """

    name: str
    compute_dtype: str | None = None
    comm_dtype: str | None = None
    loss_scaling: bool = False

    @contextmanager
    def autocast(self) -> Iterator[None]:
        """Install this policy's compute dtype for the enclosed block."""
        with _amp_autocast(self.compute_dtype):
            yield

    @property
    def is_amp(self) -> bool:
        """True for the half-precision (fp16/bf16) recipes."""
        return self.compute_dtype in ("float16", "bfloat16")


POLICIES: dict[str, PrecisionPolicy] = {
    "fp32": PrecisionPolicy(name="fp32"),
    "fp16": PrecisionPolicy(
        name="fp16", compute_dtype="float16", comm_dtype="fp16", loss_scaling=True
    ),
    "bf16": PrecisionPolicy(
        name="bf16", compute_dtype="bfloat16", comm_dtype="bf16", loss_scaling=False
    ),
    "fp64": PrecisionPolicy(name="fp64", compute_dtype="float64"),
}


def resolve_policy(policy: "PrecisionPolicy | str | None") -> PrecisionPolicy:
    """Resolve a policy object, name, or alias (``None`` -> fp32).

    Example
    -------
    >>> from repro.precision.policy import resolve_policy
    >>> resolve_policy("amp").name        # alias for the fp16 recipe
    'fp16'
    >>> resolve_policy(None).name
    'fp32'
    """
    if policy is None:
        return POLICIES["fp32"]
    if isinstance(policy, PrecisionPolicy):
        return policy
    name = _ALIASES.get(policy, policy)
    if name not in POLICIES:
        raise ValueError(
            f"unknown precision policy {policy!r}; choose from {sorted(POLICIES)}"
        )
    return POLICIES[name]
