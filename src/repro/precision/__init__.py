"""Mixed-precision subsystem: policies, loss scaling, master weights.

Ties together the three precision axes of the stack:

- **compute** — :class:`PrecisionPolicy` + the fp32-accumulating cast
  helpers in :mod:`repro.tensor.amp` (forward/backward GEMMs and im2col
  in fp16/bf16, everything else in the storage dtype);
- **numerics** — :class:`GradScaler` dynamic loss scaling with
  skip-step-and-rescale, and :class:`MasterWeightOptimizer` fp32 masters
  over fp16 working copies;
- **transport** — the wire codecs in :mod:`repro.comm.compression`
  (fp16/bf16 payloads, fp32 reduction accumulators, error feedback),
  selected per policy and threaded through the trainer and
  ``KFAC(comm_dtype=...)``.
"""

from repro.precision.master import MasterWeightOptimizer
from repro.precision.policy import POLICIES, PrecisionPolicy, resolve_policy
from repro.precision.scaler import GradScaler

__all__ = [
    "GradScaler",
    "MasterWeightOptimizer",
    "POLICIES",
    "PrecisionPolicy",
    "resolve_policy",
]
