"""Master-weight management: fp32 masters driving low-precision workers.

The second half of the mixed-precision recipe: when the *model* itself is
stored in fp16 (``model.cast_(np.float16)`` working copies — half the
parameter memory and wire bytes), the optimizer must not update in fp16,
because a converged update step (``lr * grad``) is routinely smaller than
the fp16 resolution at the weight's magnitude and would round to zero.

:class:`MasterWeightOptimizer` keeps an fp32 master copy of every working
parameter and runs the wrapped optimizer (SGD/LARS/Adam — anything built
on :class:`repro.optim.base.Optimizer`) on the masters:

1. working gradients are upcast into the master ``.grad`` slots;
2. the inner optimizer steps in fp32 (momentum/moment state in fp32);
3. the updated masters are rounded back into the working parameters.

Small updates therefore *accumulate* in the masters even when each
individual rounded working-copy step would be invisible.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

import numpy as np

from repro.nn.module import Parameter
from repro.optim.base import Optimizer

__all__ = ["MasterWeightOptimizer"]


class MasterWeightOptimizer:
    """Wrap an optimizer factory with fp32 master copies of the params.

    Sub-resolution updates accumulate in the fp32 masters instead of
    rounding to zero in the fp16 working copies (the classic
    mixed-precision-training recipe).

    Example
    -------
    >>> import numpy as np
    >>> from repro.nn.module import Parameter
    >>> from repro.optim.sgd import SGD
    >>> from repro.precision.master import MasterWeightOptimizer
    >>> working = Parameter(np.ones(2, dtype=np.float16))
    >>> opt = MasterWeightOptimizer(lambda ps: SGD(ps, lr=0.1), [working])
    >>> opt.master_params[0].data.dtype
    dtype('float32')
    """

    def __init__(
        self,
        optimizer_factory: Callable[[Sequence[Parameter]], Optimizer],
        params: Iterable[Parameter],
        master_dtype: "np.dtype | str" = np.float32,
    ) -> None:
        self.working_params: list[Parameter] = list(params)
        if not self.working_params:
            raise ValueError("MasterWeightOptimizer requires parameters")
        dt = np.dtype(master_dtype)
        self.master_params = [
            Parameter(p.data.astype(dt), name=p.name) for p in self.working_params
        ]
        self.optimizer = optimizer_factory(self.master_params)

    @property
    def lr(self) -> float:
        return self.optimizer.lr

    @lr.setter
    def lr(self, value: float) -> None:
        self.optimizer.lr = value

    def zero_grad(self) -> None:
        for p in self.working_params:
            p.zero_grad()
        self.optimizer.zero_grad()

    def step(self) -> None:
        """Upcast grads, step the masters in fp32, round back the workers."""
        for mp, wp in zip(self.master_params, self.working_params):
            mp.grad[...] = wp.grad.astype(mp.grad.dtype)
        self.optimizer.step()
        with np.errstate(over="ignore"):
            for mp, wp in zip(self.master_params, self.working_params):
                wp.data[...] = mp.data.astype(wp.data.dtype)

    def state_dict(self) -> dict:
        return {
            "masters": [p.data.copy() for p in self.master_params],
            "optimizer": self.optimizer.state_dict(),
        }

    def load_state_dict(self, state: dict) -> None:
        masters = state["masters"]
        if len(masters) != len(self.master_params):
            raise ValueError(
                f"checkpoint has {len(masters)} masters for "
                f"{len(self.master_params)} parameters"
            )
        with np.errstate(over="ignore"):
            for mp, wp, saved in zip(
                self.master_params, self.working_params, masters
            ):
                mp.data[...] = saved
                wp.data[...] = saved.astype(wp.data.dtype)
        self.optimizer.load_state_dict(state["optimizer"])
