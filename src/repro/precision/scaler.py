"""Dynamic loss scaling for fp16 training.

fp16 gradients underflow: most of a converged ResNet's gradient mass sits
below ``2^-24``.  The standard fix (Micikevicius et al., mixed-precision
training) multiplies the loss — equivalently its backward seed — by a
large scale so the backward pass computes scaled gradients that survive
half precision, then divides them back out before the optimizer step.

The scale is adapted dynamically with the skip-step-and-rescale protocol:

- after unscaling, if any gradient is non-finite, the whole update
  (K-FAC preconditioning *and* optimizer step) is **skipped** and the
  scale is multiplied by ``backoff_factor``;
- after ``growth_interval`` consecutive good steps the scale is
  multiplied by ``growth_factor``, probing for the largest safe value.

All replicas must share one scaler (or identical state): the overflow
decision is taken on allreduced gradients, which are bit-identical across
ranks, so every worker skips — or steps — in lockstep.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

__all__ = ["GradScaler"]


class GradScaler:
    """PyTorch-flavoured dynamic loss scaler for the NumPy stack.

    Example
    -------
    >>> from repro.precision.scaler import GradScaler
    >>> scaler = GradScaler(init_scale=1024.0)
    >>> scaler.update(found_inf=True)      # overflow: back off and skip
    >>> scaler.scale, scaler.steps_skipped
    (512.0, 1)
    >>> scaler.update(found_inf=False)
    >>> scaler.steps_taken
    1
    """

    def __init__(
        self,
        init_scale: float = 2.0**16,
        growth_factor: float = 2.0,
        backoff_factor: float = 0.5,
        growth_interval: int = 200,
        min_scale: float = 2.0**-14,
        enabled: bool = True,
    ) -> None:
        if init_scale <= 0:
            raise ValueError(f"init_scale must be positive, got {init_scale}")
        if growth_factor <= 1.0:
            raise ValueError(f"growth_factor must be > 1, got {growth_factor}")
        if not 0.0 < backoff_factor < 1.0:
            raise ValueError(f"backoff_factor must be in (0, 1), got {backoff_factor}")
        if growth_interval < 1:
            raise ValueError(f"growth_interval must be >= 1, got {growth_interval}")
        self.growth_factor = growth_factor
        self.backoff_factor = backoff_factor
        self.growth_interval = growth_interval
        self.min_scale = min_scale
        self.enabled = enabled
        self._scale = float(init_scale)
        self._growth_tracker = 0
        #: successful updates / skipped (overflowed) updates so far
        self.steps_taken = 0
        self.steps_skipped = 0

    @property
    def scale(self) -> float:
        """The current loss scale (1.0 when disabled)."""
        return self._scale if self.enabled else 1.0

    def scale_grad(self, grad: np.ndarray) -> np.ndarray:
        """Scale a backward seed (the loss gradient) by the current scale."""
        if not self.enabled:
            return grad
        return grad * grad.dtype.type(self._scale)

    def unscale_(self, grads: Iterable[np.ndarray]) -> bool:
        """Divide gradients by the scale in place; report non-finite values.

        Returns True when any gradient contains inf/NaN — the caller must
        then skip the update and call :meth:`update(found_inf=True)`.
        """
        found = False
        inv = 1.0 / self.scale
        for g in grads:
            if self.enabled:
                g *= g.dtype.type(inv)
            if not found and not np.isfinite(g).all():
                found = True
        return found

    def update(self, found_inf: bool) -> None:
        """Adapt the scale after one iteration's overflow verdict."""
        if not self.enabled:
            return
        if found_inf:
            self._scale = max(self._scale * self.backoff_factor, self.min_scale)
            self._growth_tracker = 0
            self.steps_skipped += 1
        else:
            self.steps_taken += 1
            self._growth_tracker += 1
            if self._growth_tracker >= self.growth_interval:
                self._scale *= self.growth_factor
                self._growth_tracker = 0

    def state_dict(self) -> dict:
        """Serializable snapshot (checkpoint alongside the optimizer)."""
        return {
            "scale": self._scale,
            "growth_tracker": self._growth_tracker,
            "steps_taken": self.steps_taken,
            "steps_skipped": self.steps_skipped,
            "enabled": self.enabled,
        }

    def load_state_dict(self, state: dict) -> None:
        self._scale = float(state["scale"])
        self._growth_tracker = int(state["growth_tracker"])
        self.steps_taken = int(state["steps_taken"])
        self.steps_skipped = int(state["steps_skipped"])
        self.enabled = bool(state["enabled"])

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"GradScaler(scale={self._scale:g}, enabled={self.enabled})"
