"""Block-diagonal approximation sweep (:mod:`repro.approx`).

Prices ``KFAC(diag_blocks=k)`` with the performance model: splitting each
``d x d`` Kronecker factor into ``k`` diagonal blocks turns one ``O(d^3)``
eigendecomposition into ``k`` independent ``O((d/k)^3)`` ones — an
``~k^2`` FLOP reduction at the widest factor — and shrinks the factor
exchange to the diagonal-block triangles.  The sweep reports, per block
count, the slowest-worker eigendecomposition stage time (greedy LPT over
the finer block tasks), the eigendecomposition payload, the tri-packed
factor wire payload, and the amortized iteration time.

``benchmarks/bench_approx.py`` checks the modeled eig-stage trend against
measured per-block ``eigh`` wall time on the real widest ResNet-50 factor.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.perfmodel.hardware import FRONTERA_LIKE, V100_LIKE
from repro.perfmodel.iteration import IterationModel, KfacIntervals
from repro.perfmodel.specs import resnet_spec
from repro.utils.tables import format_table

__all__ = ["run_approximation_sweep"]


def run_approximation_sweep(
    depth: int = 50,
    p: int = 64,
    blocks: tuple[int, ...] = (1, 2, 4, 8),
    eig_interval: int = 100,
) -> ExperimentResult:
    """Modeled cost of the block-diagonal factor approximation per ``k``.

    ``blocks`` must start at 1 so the first row is the exact whole-factor
    baseline every other row is compared against.

    Example
    -------
    >>> from repro.experiments.approx_exp import run_approximation_sweep
    >>> result = run_approximation_sweep(depth=50, p=8, blocks=(1, 4))
    >>> rows = result.data["raw"]
    >>> rows[1]["eig_stage_s"] < rows[0]["eig_stage_s"]
    True
    >>> rows[1]["factor_payload_bytes"] < rows[0]["factor_payload_bytes"]
    True
    """
    if not blocks or blocks[0] != 1:
        raise ValueError(f"blocks must start with the exact baseline 1, got {blocks}")
    result = ExperimentResult(
        "approximation-sweep",
        f"diag_blocks sweep: ResNet-{depth} at {p} GPUs (greedy LPT)",
    )
    im = IterationModel(resnet_spec(depth), V100_LIKE, FRONTERA_LIKE)
    intervals = KfacIntervals.from_eig_interval(eig_interval)
    rows = []
    raw = []
    base_eig = None
    for k in blocks:
        sp = im.stage_profile(p, policy="greedy", diag_blocks=k)
        iter_t = im.kfac_iteration_time(
            p, "comm-opt", intervals, policy="greedy", diag_blocks=k
        )
        fac_payload = im.factor_comm_payload_bytes(packed=True, diag_blocks=k)
        if base_eig is None:
            base_eig = sp.eig_tcomp
        rows.append(
            [
                k,
                f"{sp.eig_tcomp * 1e3:.1f}",
                f"{base_eig / sp.eig_tcomp:.1f}x",
                f"{sp.eigenbasis_bytes_per_rank / 2**20:.1f}",
                f"{fac_payload / 2**20:.1f}",
                f"{iter_t * 1e3:.2f}",
            ]
        )
        raw.append(
            {
                "diag_blocks": k,
                "eig_stage_s": sp.eig_tcomp,
                "eig_comm_s": sp.eig_tcomm,
                "eig_payload_bytes": sp.eigenbasis_bytes_per_rank,
                "factor_payload_bytes": fac_payload,
                "iteration_s": iter_t,
            }
        )
    result.add(
        format_table(
            [
                "diag_blocks",
                "eig stage (ms)",
                "speedup",
                "eig payload (MiB)",
                "factor wire (MiB)",
                "iteration (ms)",
            ],
            rows,
        )
    )
    result.data = {"depth": depth, "gpus": p, "rows": rows, "raw": raw}
    return result
