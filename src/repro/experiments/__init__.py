"""Experiment runners — one per table/figure of the paper's §VI.

Every runner returns an :class:`repro.experiments.common.ExperimentResult`
whose ``render()`` prints the same rows/series the paper reports.  Runners
accept a ``scale`` preset (``"tiny"`` for CI-speed smoke runs, ``"small"``
for the recorded EXPERIMENTS.md results); the performance-model experiments
(Figs. 7–10, Tables IV–VI) always run at paper scale because they are
analytic.

See DESIGN.md §4 for the experiment-id -> module -> bench mapping.
"""

from repro.experiments.common import (
    ExperimentResult,
    ScalePreset,
    SCALE_PRESETS,
    make_paired_task,
    make_model_factory,
)
from repro.experiments.registry import EXPERIMENTS, run_experiment

__all__ = [
    "ExperimentResult",
    "ScalePreset",
    "SCALE_PRESETS",
    "make_paired_task",
    "make_model_factory",
    "EXPERIMENTS",
    "run_experiment",
]
