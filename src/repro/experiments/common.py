"""Shared experiment infrastructure.

Scaled-down convergence experiments substitute (per DESIGN.md):

- CIFAR-10 + ResNet-32  ->  paired-class synthetic task + width-scaled
  CIFAR ResNet-20 (identical architecture family, CPU-trainable);
- ImageNet-1k + ResNet-50  ->  a larger/noisier synthetic task; epoch
  budgets keep the paper's 55:90 K-FAC:SGD ratio;
- the MLPerf 75.9% acceptance threshold  ->  a per-task baseline accuracy
  recorded in the preset (chosen so a well-tuned run clears it and a
  degraded run does not).

Hyper-parameters mirror the paper's recipes proportionally: lr scaled by
global batch, 10–15% linear warmup, multi-step decay at 50%/80% of the
budget, label smoothing 0.1, momentum 0.9, K-FAC damping 0.003 with
update decoupling.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable

import numpy as np

from repro.core.preconditioner import KFACHyperParams
from repro.data.synthetic import SyntheticImageDataset, SyntheticSpec
from repro.nn.module import Module
from repro.nn.resnet import resnet20_cifar
from repro.optim.lr_scheduler import LinearWarmupSchedule, MultiStepSchedule
from repro.parallel.trainer import DataParallelTrainer, TrainerConfig, TrainingHistory

__all__ = [
    "ScalePreset",
    "SCALE_PRESETS",
    "ExperimentResult",
    "make_paired_task",
    "make_model_factory",
    "train_once",
    "kfac_epochs_for",
    "sgd_epochs_for",
]


@dataclass(frozen=True)
class ScalePreset:
    """Sizing of a convergence experiment.

    ``baseline_accuracy`` plays the role of the paper's acceptance
    threshold (92.49% for CIFAR ResNet, 75.9% MLPerf for ImageNet).

    Example
    -------
    >>> from repro.experiments.common import SCALE_PRESETS
    >>> SCALE_PRESETS["tiny"].n_train < SCALE_PRESETS["small"].n_train
    True
    """

    name: str
    n_train: int
    n_val: int
    image_size: int
    width_multiplier: float
    kfac_epochs: int
    batch_size_per_worker: int
    base_lr_per_128: float
    noise: float
    baseline_accuracy: float


SCALE_PRESETS: dict[str, ScalePreset] = {
    "tiny": ScalePreset(
        name="tiny",
        n_train=384,
        n_val=160,
        image_size=10,
        width_multiplier=0.25,
        kfac_epochs=3,
        batch_size_per_worker=32,
        base_lr_per_128=0.2,
        noise=0.8,
        baseline_accuracy=0.35,
    ),
    "small": ScalePreset(
        name="small",
        n_train=1500,
        n_val=400,
        image_size=14,
        width_multiplier=0.5,
        kfac_epochs=8,
        batch_size_per_worker=64,
        base_lr_per_128=0.2,
        noise=1.2,
        baseline_accuracy=0.90,
    ),
}


@dataclass
class ExperimentResult:
    """Rendered output + raw data of one experiment.

    Example
    -------
    >>> from repro.experiments.common import ExperimentResult
    >>> result = ExperimentResult("table-5", "time profile")
    >>> result.add("row 1")
    >>> print(result.render())
    === table-5: time profile ===
    row 1
    """

    experiment_id: str
    title: str
    lines: list[str] = field(default_factory=list)
    data: dict = field(default_factory=dict)

    def add(self, text: str) -> None:
        self.lines.extend(text.splitlines())

    def render(self) -> str:
        header = f"=== {self.experiment_id}: {self.title} ==="
        return "\n".join([header, *self.lines])


def make_paired_task(
    preset: ScalePreset, seed: int = 7, **overrides: object
) -> SyntheticImageDataset:
    """The standard fine-grained paired-class task for a preset.

    Example
    -------
    >>> from repro.experiments.common import SCALE_PRESETS, make_paired_task
    >>> ds = make_paired_task(SCALE_PRESETS["tiny"])
    >>> len(ds.train_x) == SCALE_PRESETS["tiny"].n_train
    True
    """
    spec = SyntheticSpec(
        n_train=preset.n_train,
        n_val=preset.n_val,
        num_classes=10,
        image_size=preset.image_size,
        channels=3,
        noise=preset.noise,
        max_shift=2,
        amplitude_jitter=0.2,
        conditioning=25.0,
        class_pairing=0.3,
        seed=seed,
    )
    if overrides:
        spec = replace(spec, **overrides)  # type: ignore[arg-type]
    return SyntheticImageDataset(spec)


def make_model_factory(preset: ScalePreset, num_classes: int = 10) -> Callable[[np.random.Generator], Module]:
    """Width-scaled CIFAR ResNet-20 factory for the preset.

    Example
    -------
    >>> import numpy as np
    >>> from repro.experiments.common import SCALE_PRESETS, make_model_factory
    >>> factory = make_model_factory(SCALE_PRESETS["tiny"])
    >>> model = factory(np.random.default_rng(0))
    >>> type(model).__name__
    'ResNet'
    """

    def factory(rng: np.random.Generator) -> Module:
        return resnet20_cifar(
            rng, width_multiplier=preset.width_multiplier, num_classes=num_classes
        )

    return factory


def kfac_epochs_for(preset: ScalePreset) -> int:
    return preset.kfac_epochs


def sgd_epochs_for(preset: ScalePreset) -> int:
    """SGD budget keeps the paper's 90:55 epoch ratio vs K-FAC."""
    return max(preset.kfac_epochs + 1, int(round(preset.kfac_epochs * 90 / 55)))


def train_once(
    dataset: SyntheticImageDataset,
    preset: ScalePreset,
    world_size: int,
    epochs: int,
    kfac: KFACHyperParams | None,
    seed: int = 0,
    batch_size: int | None = None,
    lr: float | None = None,
    label_smoothing: float = 0.1,
    precision: str = "fp32",
) -> TrainingHistory:
    """One training run with the paper-proportional recipe."""
    bs = batch_size if batch_size is not None else preset.batch_size_per_worker
    global_batch = bs * world_size
    base_lr = lr if lr is not None else preset.base_lr_per_128 * global_batch / 128.0
    epochs = max(2, epochs)
    schedule = LinearWarmupSchedule(
        MultiStepSchedule(base_lr, [epochs * 0.5, epochs * 0.8]),
        warmup_epochs=max(0.5, epochs * 0.15),
    )
    cfg = TrainerConfig(
        world_size=world_size,
        batch_size=bs,
        epochs=epochs,
        lr_schedule=schedule,
        label_smoothing=label_smoothing,
        seed=seed,
        kfac=kfac,
        precision=precision,
    )
    tx, ty, vx, vy = dataset.splits
    trainer = DataParallelTrainer(
        make_model_factory(preset, num_classes=dataset.spec.num_classes),
        tx, ty, vx, vy, cfg,
    )
    return trainer.train()


def default_kfac_hp(**overrides: object) -> KFACHyperParams:
    """The paper-flavoured K-FAC hyper-parameters for scaled experiments."""
    base = dict(
        damping=0.003,
        factor_decay=0.95,
        kl_clip=0.01,
        fac_update_freq=1,
        kfac_update_freq=5,
        use_eigen_decomp=True,
    )
    base.update(overrides)
    return KFACHyperParams(**base)  # type: ignore[arg-type]
