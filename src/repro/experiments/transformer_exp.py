"""The transformer smoke experiment: K-FAC beyond ResNet.

Trains a :class:`repro.nn.transformer.TinyTransformer` (token +
positional embeddings, pre-LN attention blocks, margin-softmax head) on a
synthetic token-classification task under the *full* feature stack at
once: graph scheduler, KAISA hybrid placement (``grad_worker_frac=0.5``),
fp16 factor compression with error feedback, and the block-diagonal
approximation (``diag_blocks=4``) on the wide embedding factor.  The
report shows the per-step loss and what the preconditioner captured —
the one-command proof that the second model family rides the whole
pipeline unchanged.
"""

from __future__ import annotations

import numpy as np

from repro.comm.backend import World
from repro.core.distributed import PhaseController
from repro.core.preconditioner import KFAC
from repro.experiments.common import ExperimentResult
from repro.nn import MarginSoftmaxLoss, TinyTransformer
from repro.optim.sgd import SGD
from repro.utils.tables import format_table

__all__ = ["make_token_task", "run_transformer_smoke"]


def make_token_task(
    n: int, seq_len: int, vocab: int, num_classes: int, seed: int = 17
) -> tuple[np.ndarray, np.ndarray]:
    """Synthetic learnable token task: each class favors a vocabulary band.

    Example
    -------
    >>> from repro.experiments.transformer_exp import make_token_task
    >>> x, y = make_token_task(8, 4, vocab=20, num_classes=2)
    >>> x.shape, y.shape, int(x.max()) < 20
    ((8, 4), (8,), True)
    """
    rng = np.random.default_rng(seed)
    y = rng.integers(0, num_classes, n)
    band = vocab // num_classes
    tokens = (y[:, None] * band + rng.integers(0, band, (n, seq_len))) % vocab
    return tokens.astype(np.int64), y.astype(np.int64)


def run_transformer_smoke(
    world_size: int = 2,
    steps: int = 8,
    vocab: int = 40,
    seq_len: int = 6,
    dim: int = 16,
    num_heads: int = 2,
    depth: int = 1,
    num_classes: int = 4,
    n_samples: int = 24,
    seed: int = 5,
) -> ExperimentResult:
    """Train a TinyTransformer under the full K-FAC feature stack.

    Example
    -------
    >>> from repro.experiments.transformer_exp import run_transformer_smoke
    >>> result = run_transformer_smoke(world_size=2, steps=4, vocab=20,
    ...                                seq_len=4, dim=8, num_classes=2,
    ...                                n_samples=8)
    >>> result.data["losses"][-1] < result.data["losses"][0]
    True
    >>> result.data["unsupported_layers"]
    []
    """
    x, y = make_token_task(n_samples, seq_len, vocab, num_classes)
    shard = [np.arange(r, n_samples, world_size) for r in range(world_size)]
    world = World(world_size)
    models = [
        TinyTransformer(
            vocab, seq_len, dim=dim, num_heads=num_heads, depth=depth,
            num_classes=num_classes, rng=np.random.default_rng(seed),
        )
        for _ in range(world_size)
    ]
    kfacs = [
        KFAC(
            m, rank=r, world_size=world_size,
            damping=0.01, kfac_update_freq=2, fac_update_freq=1, lr=0.1,
            scheduler="graph", grad_worker_frac=0.5, comm_dtype="fp16",
            diag_blocks=4, diag_warmup=1,
        )
        for r, m in enumerate(models)
    ]
    controller = PhaseController(kfacs, world)
    opts = [SGD(m.parameters(), lr=0.1, momentum=0.9) for m in models]
    loss_fns = [MarginSoftmaxLoss() for _ in range(world_size)]

    losses: list[float] = []
    for _ in range(steps):
        step_loss = 0.0
        for r in range(world_size):
            opts[r].zero_grad()
            out = models[r](x[shard[r]])
            step_loss += loss_fns[r](out, y[shard[r]]) / world_size
            models[r].backward(loss_fns[r].backward())
        for grads in zip(*[[p.grad for p in m.parameters()] for m in models]):
            reduced = world.allreduce(list(grads), op="average", phase="grad_allreduce")
            for g, red in zip(grads, reduced):
                g[...] = red
        controller.step()
        for r in range(world_size):
            opts[r].step()
        losses.append(float(step_loss))

    kfac = kfacs[0]
    result = ExperimentResult(
        "transformer-smoke",
        f"TinyTransformer(vocab={vocab}, seq={seq_len}, dim={dim}) x "
        f"{world_size} workers: graph + hybrid f=0.5 + fp16 + diag_blocks=4",
    )
    result.add(
        format_table(
            ["step", "mean loss"],
            [[i, f"{l:.4f}"] for i, l in enumerate(losses)],
        )
    )
    captured = [(l.name, type(l).__name__) for l in kfac.layers]
    result.add(
        f"captured {len(captured)} layers "
        f"({sum(1 for _, t in captured if 'Embedding' in t)} embedding, "
        f"{sum(1 for _, t in captured if 'LayerNorm' in t)} layernorm); "
        f"blocks_active={kfac.blocks_active}; "
        f"loss {losses[0]:.4f} -> {losses[-1]:.4f}"
    )
    result.data = {
        "losses": losses,
        "captured_layers": captured,
        "unsupported_layers": list(kfac.unsupported_layers),
        "blocks_active": bool(kfac.blocks_active),
        "factor_updates": kfac.n_factor_updates,
        "second_order_updates": kfac.n_second_order_updates,
    }
    return result
