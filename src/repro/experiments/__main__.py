"""CLI: run paper experiments by id.

Usage::

    python -m repro.experiments list
    python -m repro.experiments table4
    python -m repro.experiments table1 --scale small
    python -m repro.experiments all --scale tiny
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments.registry import EXPERIMENTS, run_experiment

#: experiments that train (accept a ``scale`` argument)
TRAINING_EXPERIMENTS = {"table1", "table2+fig4", "fig5", "table3+fig6", "ablation-factor-comm"}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro.experiments", description=__doc__)
    parser.add_argument("experiment", help="experiment id, 'list', or 'all'")
    parser.add_argument("--scale", default="tiny", help="preset for training runs")
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args(argv)

    if args.experiment == "list":
        for eid in sorted(EXPERIMENTS):
            kind = "training" if eid in TRAINING_EXPERIMENTS else "analytic"
            print(f"{eid:24s} [{kind}]")
        return 0

    ids = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for eid in ids:
        kwargs = {}
        if eid in TRAINING_EXPERIMENTS:
            kwargs = {"scale": args.scale, "seed": args.seed}
        t0 = time.time()
        result = run_experiment(eid, **kwargs)
        print(result.render())
        print(f"[{eid} took {time.time() - t0:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
