"""Experiment registry: id -> runner (see DESIGN.md §4 for the index)."""

from __future__ import annotations

from typing import Callable

from repro.experiments.ablations import (
    run_factor_comm_ablation,
    run_grad_worker_frac_sweep,
    run_placement_ablation,
)
from repro.experiments.approx_exp import run_approximation_sweep
from repro.experiments.common import ExperimentResult
from repro.experiments.correctness import run_fig5, run_table1, run_table2_fig4
from repro.experiments.drift import run_drift_report
from repro.experiments.profile_exp import run_fig10, run_table5, run_table6
from repro.experiments.scaling_exp import run_scaling_figure, run_table4
from repro.experiments.transformer_exp import run_transformer_smoke
from repro.experiments.update_freq import run_table3_fig6

__all__ = ["EXPERIMENTS", "run_experiment"]

EXPERIMENTS: dict[str, Callable[..., ExperimentResult]] = {
    "table1": run_table1,
    "table2+fig4": run_table2_fig4,
    "fig5": run_fig5,
    "table3+fig6": run_table3_fig6,
    "fig7": lambda **kw: run_scaling_figure(50),
    "fig8": lambda **kw: run_scaling_figure(101),
    "fig9": lambda **kw: run_scaling_figure(152),
    "table4": lambda **kw: run_table4(),
    "table5": lambda **kw: run_table5(),
    "table6": lambda **kw: run_table6(),
    "fig10": lambda **kw: run_fig10(),
    "ablation-placement": lambda **kw: run_placement_ablation(),
    "ablation-grad-worker-frac": lambda **kw: run_grad_worker_frac_sweep(),
    "ablation-factor-comm": run_factor_comm_ablation,
    "approximation-sweep": run_approximation_sweep,
    "drift-report": run_drift_report,
    "transformer-smoke": run_transformer_smoke,
}


def run_experiment(experiment_id: str, **kwargs: object) -> ExperimentResult:
    """Run one experiment by id; raises ``KeyError`` for unknown ids.

    Example
    -------
    >>> from repro.experiments.registry import EXPERIMENTS, run_experiment
    >>> "table5" in EXPERIMENTS and "ablation-grad-worker-frac" in EXPERIMENTS
    True
    >>> run_experiment("no-such-id")
    Traceback (most recent call last):
        ...
    KeyError: "unknown experiment 'no-such-id'; known: [...]"
    """
    if experiment_id not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {sorted(EXPERIMENTS)}"
        )
    return EXPERIMENTS[experiment_id](**kwargs)
