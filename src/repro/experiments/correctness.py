"""Correctness experiments (paper §VI-C1): Tables I & II, Figures 4 & 5.

All use the scaled-down paired-class synthetic task in place of
CIFAR-10/ImageNet (DESIGN.md substitution table).  Shape criteria:

- **Table I**: eigendecomposition K-FAC holds accuracy as global batch
  grows, explicit-inverse K-FAC degrades (and plain SGD degrades at the
  largest batch);
- **Table II / Fig. 4**: K-FAC matches or beats SGD's final accuracy at
  every worker count while training on the paper's 55:90 epoch ratio;
- **Fig. 5**: on the ImageNet-like task, K-FAC reaches the baseline
  accuracy in fewer epochs than SGD.
"""

from __future__ import annotations

from repro.experiments.common import (
    SCALE_PRESETS,
    ExperimentResult,
    default_kfac_hp,
    make_paired_task,
    sgd_epochs_for,
    train_once,
)
from repro.utils.tables import format_series, format_table

__all__ = ["run_table1", "run_table2_fig4", "run_fig5"]


def run_table1(scale: str = "small", seed: int = 7) -> ExperimentResult:
    """Table I: inverse vs eigendecomposition K-FAC across batch sizes."""
    preset = SCALE_PRESETS[scale]
    dataset = make_paired_task(preset, seed=seed)
    world = 2
    batch_multipliers = (1, 2, 4)
    rows = {"SGD": [], "K-FAC w/ Inverse": [], "K-FAC w/ Eigen-decomp.": []}
    batches = []
    for mult in batch_multipliers:
        bs = preset.batch_size_per_worker * mult
        batches.append(bs * world)
        for label, kfac in (
            ("SGD", None),
            ("K-FAC w/ Inverse", default_kfac_hp(use_eigen_decomp=False)),
            ("K-FAC w/ Eigen-decomp.", default_kfac_hp(use_eigen_decomp=True)),
        ):
            hist = train_once(
                dataset, preset, world, preset.kfac_epochs, kfac,
                seed=seed, batch_size=bs,
            )
            rows[label].append(hist.final_val_accuracy)
    result = ExperimentResult(
        "table1",
        "validation accuracy, inverse vs eigendecomposition K-FAC (paper Table I)",
    )
    result.add(
        format_table(
            ["Optimizer"] + [f"batch {b}" for b in batches],
            [[label, *[f"{a:.3f}" for a in accs]] for label, accs in rows.items()],
        )
    )
    result.data = {"batches": batches, "accuracy": rows, "baseline": preset.baseline_accuracy}
    return result


def run_table2_fig4(
    scale: str = "small", seed: int = 7, worker_counts: tuple[int, ...] = (1, 2, 4, 8)
) -> ExperimentResult:
    """Table II + Fig. 4: K-FAC vs SGD across worker counts."""
    preset = SCALE_PRESETS[scale]
    dataset = make_paired_task(preset, seed=seed)
    sgd_acc: list[float] = []
    kfac_acc: list[float] = []
    curves: dict[str, tuple[list[int], list[float]]] = {}
    for world in worker_counts:
        hist_sgd = train_once(
            dataset, preset, world, sgd_epochs_for(preset), None, seed=seed
        )
        hist_kfac = train_once(
            dataset, preset, world, preset.kfac_epochs, default_kfac_hp(), seed=seed
        )
        sgd_acc.append(hist_sgd.final_val_accuracy)
        kfac_acc.append(hist_kfac.final_val_accuracy)
        if world in worker_counts[:2]:
            curves[f"SGD-{world}w"] = hist_sgd.accuracy_curve()
            curves[f"KFAC-{world}w"] = hist_kfac.accuracy_curve()
    result = ExperimentResult(
        "table2+fig4", "K-FAC vs SGD final accuracy across worker counts (Table II, Fig. 4)"
    )
    result.add(
        format_table(
            ["Workers"] + [str(w) for w in worker_counts],
            [
                ["SGD", *[f"{a:.3f}" for a in sgd_acc]],
                ["K-FAC", *[f"{a:.3f}" for a in kfac_acc]],
            ],
        )
    )
    for name, (xs, ys) in curves.items():
        result.add(format_series(name, xs, [f"{y:.3f}" for y in ys], "epoch", "val_acc"))
    result.data = {
        "workers": list(worker_counts),
        "sgd": sgd_acc,
        "kfac": kfac_acc,
        "curves": curves,
        "baseline": preset.baseline_accuracy,
    }
    return result


def run_fig5(scale: str = "small", seed: int = 11) -> ExperimentResult:
    """Fig. 5: ImageNet-like convergence, K-FAC (55-style) vs SGD (90-style)."""
    preset = SCALE_PRESETS[scale]
    dataset = make_paired_task(
        preset, seed=seed, num_classes=20, noise=preset.noise * 0.9
    )
    world = 2
    kfac_epochs = preset.kfac_epochs
    sgd_epochs = sgd_epochs_for(preset)
    hist_kfac = train_once(
        dataset, preset, world, kfac_epochs, default_kfac_hp(), seed=seed
    )
    hist_sgd = train_once(dataset, preset, world, sgd_epochs, None, seed=seed)
    baseline = preset.baseline_accuracy
    result = ExperimentResult(
        "fig5", "ImageNet-like validation curves, K-FAC vs SGD (paper Fig. 5)"
    )
    for name, hist in (("K-FAC", hist_kfac), ("SGD", hist_sgd)):
        xs, ys = hist.accuracy_curve()
        result.add(format_series(name, xs, [f"{y:.3f}" for y in ys], "epoch", "val_acc"))
    e_kfac = hist_kfac.epochs_to_accuracy(baseline)
    e_sgd = hist_sgd.epochs_to_accuracy(baseline)
    result.add(
        f"epochs to baseline {baseline:.2f}: K-FAC={e_kfac} (budget {kfac_epochs}), "
        f"SGD={e_sgd} (budget {sgd_epochs})"
    )
    result.data = {
        "kfac_curve": hist_kfac.accuracy_curve(),
        "sgd_curve": hist_sgd.accuracy_curve(),
        "epochs_to_baseline": {"kfac": e_kfac, "sgd": e_sgd},
        "baseline": baseline,
    }
    return result
