"""Ablations beyond the paper's headline results.

- **Placement policy** (§VI-C4 future work): round-robin vs greedy
  size-balanced (LPT) factor assignment.  The paper proposes this as the
  fix for the Table VI imbalance; we implement and quantify it.
- **Gradient-worker fraction** (KAISA, arXiv:2107.01739): the continuous
  memory-vs-communication spectrum between the paper's COMM_OPT and
  LAYER_WISE placements, priced by the performance model per fraction.
- **Factor communication frequency** (§V-C): validates the claim that the
  factors can be refreshed at one tenth of the eigendecomposition interval
  "without loss in performance" by comparing fac_interval in
  {1, eig/10, eig}.
"""

from __future__ import annotations

from repro.experiments.common import (
    SCALE_PRESETS,
    ExperimentResult,
    default_kfac_hp,
    make_paired_task,
    train_once,
)
from repro.perfmodel.hardware import FRONTERA_LIKE, V100_LIKE
from repro.perfmodel.iteration import IterationModel, KfacIntervals
from repro.perfmodel.specs import resnet_spec
from repro.utils.tables import format_table

__all__ = [
    "run_placement_ablation",
    "run_grad_worker_frac_sweep",
    "run_factor_comm_ablation",
]


def run_placement_ablation(
    depths: tuple[int, ...] = (50, 101, 152),
    gpus: tuple[int, ...] = (16, 32, 64, 128, 256),
) -> ExperimentResult:
    """Round-robin vs greedy (LPT) assignment: slowest-worker eig time."""
    result = ExperimentResult(
        "ablation-placement",
        "eig stage time: round-robin vs size-balanced placement (§VI-C4)",
    )
    rows = []
    for depth in depths:
        im = IterationModel(resnet_spec(depth), V100_LIKE, FRONTERA_LIKE)
        for p in gpus:
            rr = im.eig_stage_time(p, "comm-opt", "round_robin")
            greedy = im.eig_stage_time(p, "comm-opt", "greedy")
            rows.append(
                [
                    f"ResNet-{depth}",
                    p,
                    f"{rr * 1e3:.0f}",
                    f"{greedy * 1e3:.0f}",
                    f"{100 * (1 - greedy / rr):.1f}%",
                ]
            )
    result.add(
        format_table(
            ["Model", "GPUs", "round-robin (ms)", "greedy LPT (ms)", "improvement"],
            rows,
        )
    )
    result.data = {"rows": rows}
    return result


def run_grad_worker_frac_sweep(
    depth: int = 50,
    p: int = 64,
    fracs: tuple[float, ...] = (),
    eig_interval: int = 100,
) -> ExperimentResult:
    """The KAISA memory-vs-communication Pareto frontier, per fraction.

    For each ``grad_worker_frac`` value the performance model reports the
    per-rank eigenbasis memory, the per-rank second-stage
    (preconditioned-gradient broadcast) volume, the per-stage comm times,
    and the amortized iteration time.  The endpoints are the paper's two
    strategies: ``f = 1`` is COMM_OPT (max memory, no second stage),
    ``f = 1/P`` is LAYER_WISE (min memory, per-iteration broadcasts).
    """
    if not fracs:
        # halving sweep 1, 1/2, 1/4, ... plus the exact 1/p LAYER_WISE
        # endpoint (the halving sequence misses it when p is not a power
        # of two)
        fracs = tuple(1.0 / (1 << k) for k in range(p.bit_length()) if (1 << k) <= p)
        if 1.0 / p not in fracs:
            fracs = fracs + (1.0 / p,)
    result = ExperimentResult(
        "ablation-grad-worker-frac",
        f"KAISA grad_worker_frac sweep: ResNet-{depth} at {p} GPUs",
    )
    im = IterationModel(resnet_spec(depth), V100_LIKE, FRONTERA_LIKE)
    intervals = KfacIntervals.from_eig_interval(eig_interval)
    rows = []
    raw = []
    for f in sorted(fracs, reverse=True):
        sp = im.stage_profile(p, grad_worker_frac=f)
        g = im.grad_workers(p, f)
        iter_t = im.kfac_iteration_time(p, "hybrid", intervals, grad_worker_frac=f)
        rows.append(
            [
                f"{f:.4f}",
                g,
                f"{sp.eigenbasis_bytes_per_rank / 2**20:.1f}",
                f"{sp.precond_share_bytes_per_rank / 2**20:.1f}",
                f"{sp.eig_tcomm * 1e3:.1f}",
                f"{sp.precond_tcomm * 1e3:.1f}",
                f"{iter_t * 1e3:.2f}",
            ]
        )
        raw.append(
            {
                "frac": f,
                "grad_workers": g,
                "eigenbasis_bytes_per_rank": sp.eigenbasis_bytes_per_rank,
                "precond_share_bytes_per_rank": sp.precond_share_bytes_per_rank,
                "eig_tcomm": sp.eig_tcomm,
                "precond_tcomm": sp.precond_tcomm,
                "iteration_time": iter_t,
            }
        )
    result.add(
        format_table(
            [
                "frac",
                "grad workers",
                "eig mem/rank (MiB)",
                "bcast recv/rank (MiB)",
                "eig comm (ms)",
                "bcast comm (ms)",
                "iter (ms)",
            ],
            rows,
            title="memory decreases / second-stage comm increases as f decreases",
        )
    )
    result.data = {"rows": raw, "p": p, "depth": depth}
    return result


def run_factor_comm_ablation(scale: str = "small", seed: int = 7) -> ExperimentResult:
    """Accuracy vs factor update interval at a fixed eig interval."""
    preset = SCALE_PRESETS[scale]
    dataset = make_paired_task(preset, seed=seed)
    eig_interval = 10
    rows = []
    accs: dict[str, float] = {}
    for label, fac_interval in (
        ("every step", 1),
        ("eig/10 (paper)", max(1, eig_interval // 10)),
        ("== eig (stale)", eig_interval),
    ):
        hp = default_kfac_hp(
            kfac_update_freq=eig_interval, fac_update_freq=fac_interval
        )
        hist = train_once(dataset, preset, 2, preset.kfac_epochs, hp, seed=seed)
        accs[label] = hist.final_val_accuracy
        rows.append([label, fac_interval, f"{hist.final_val_accuracy:.3f}"])
    result = ExperimentResult(
        "ablation-factor-comm",
        "factor update interval vs accuracy (§V-C 10x-frequency claim)",
    )
    result.add(format_table(["Factor update", "interval", "val acc"], rows))
    result.data = {"accuracy": accs, "eig_interval": eig_interval}
    return result
