"""Ablations beyond the paper's headline results.

- **Placement policy** (§VI-C4 future work): round-robin vs greedy
  size-balanced (LPT) factor assignment.  The paper proposes this as the
  fix for the Table VI imbalance; we implement and quantify it.
- **Factor communication frequency** (§V-C): validates the claim that the
  factors can be refreshed at one tenth of the eigendecomposition interval
  "without loss in performance" by comparing fac_interval in
  {1, eig/10, eig}.
"""

from __future__ import annotations

from repro.experiments.common import (
    SCALE_PRESETS,
    ExperimentResult,
    default_kfac_hp,
    make_paired_task,
    train_once,
)
from repro.perfmodel.hardware import FRONTERA_LIKE, V100_LIKE
from repro.perfmodel.iteration import IterationModel
from repro.perfmodel.specs import resnet_spec
from repro.utils.tables import format_table

__all__ = ["run_placement_ablation", "run_factor_comm_ablation"]


def run_placement_ablation(
    depths: tuple[int, ...] = (50, 101, 152),
    gpus: tuple[int, ...] = (16, 32, 64, 128, 256),
) -> ExperimentResult:
    """Round-robin vs greedy (LPT) assignment: slowest-worker eig time."""
    result = ExperimentResult(
        "ablation-placement",
        "eig stage time: round-robin vs size-balanced placement (§VI-C4)",
    )
    rows = []
    for depth in depths:
        im = IterationModel(resnet_spec(depth), V100_LIKE, FRONTERA_LIKE)
        for p in gpus:
            rr = im.eig_stage_time(p, "comm-opt", "round_robin")
            greedy = im.eig_stage_time(p, "comm-opt", "greedy")
            rows.append(
                [
                    f"ResNet-{depth}",
                    p,
                    f"{rr * 1e3:.0f}",
                    f"{greedy * 1e3:.0f}",
                    f"{100 * (1 - greedy / rr):.1f}%",
                ]
            )
    result.add(
        format_table(
            ["Model", "GPUs", "round-robin (ms)", "greedy LPT (ms)", "improvement"],
            rows,
        )
    )
    result.data = {"rows": rows}
    return result


def run_factor_comm_ablation(scale: str = "small", seed: int = 7) -> ExperimentResult:
    """Accuracy vs factor update interval at a fixed eig interval."""
    preset = SCALE_PRESETS[scale]
    dataset = make_paired_task(preset, seed=seed)
    eig_interval = 10
    rows = []
    accs: dict[str, float] = {}
    for label, fac_interval in (
        ("every step", 1),
        ("eig/10 (paper)", max(1, eig_interval // 10)),
        ("== eig (stale)", eig_interval),
    ):
        hp = default_kfac_hp(
            kfac_update_freq=eig_interval, fac_update_freq=fac_interval
        )
        hist = train_once(dataset, preset, 2, preset.kfac_epochs, hp, seed=seed)
        accs[label] = hist.final_val_accuracy
        rows.append([label, fac_interval, f"{hist.final_val_accuracy:.3f}"])
    result = ExperimentResult(
        "ablation-factor-comm",
        "factor update interval vs accuracy (§V-C 10x-frequency claim)",
    )
    result.add(format_table(["Factor update", "interval", "val acc"], rows))
    result.data = {"accuracy": accs, "eig_interval": eig_interval}
    return result
