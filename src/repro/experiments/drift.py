"""Modeled-vs-measured drift report (perfmodel calibration check).

Runs one short traced training — P=4, KAISA-style HYBRID placement at
``grad_worker_frac=0.5`` under the dependency-graph scheduler, with a
transient collective failure and a compute straggler injected so the
degraded paths show up in the trace — then aligns the measured per-stage
times against the :class:`repro.perfmodel.iteration.IterationModel`
prediction for the *same* width-scaled CIFAR ResNet
(:func:`repro.perfmodel.specs.cifar_resnet_spec` with the preset's
``width_multiplier``).

The rendered table is :meth:`repro.obs.report.DriftReport.render`: one
row per Fig. 1 stage (``io``/``forward``/``gradient``/``exchange``/
``update``) plus the K-FAC comm sub-stages, each with modeled and
measured seconds per iteration and the relative error.

Example
-------
>>> from repro.experiments.registry import EXPERIMENTS
>>> "drift-report" in EXPERIMENTS
True
"""

from __future__ import annotations

from repro.comm.engine import DEFAULT_BUCKET_BYTES
from repro.comm.faults import CollectiveFailure, ComputeJitter, FaultPlan
from repro.experiments.common import (
    SCALE_PRESETS,
    ExperimentResult,
    default_kfac_hp,
    make_model_factory,
    make_paired_task,
)
from repro.obs.report import fig1_drift_report
from repro.obs.tracer import Tracer, validate_chrome_trace
from repro.parallel.trainer import DataParallelTrainer, TrainerConfig
from repro.perfmodel.hardware import FRONTERA_LIKE, V100_LIKE
from repro.perfmodel.iteration import IterationModel, KfacIntervals
from repro.perfmodel.specs import cifar_resnet_spec

__all__ = ["run_drift_report"]


def run_drift_report(
    scale: str = "tiny",
    world_size: int = 4,
    epochs: int = 2,
    seed: int = 0,
    trace_path: str | None = None,
    **_: object,
) -> ExperimentResult:
    """Traced HYBRID run + per-stage modeled-vs-measured drift table.

    ``trace_path`` additionally writes the run's Chrome-trace JSON there
    (load it at ``ui.perfetto.dev``).  The returned result carries the
    full report dict under ``data["report"]`` and the validated trace
    event count under ``data["trace_events"]``.
    """
    preset = SCALE_PRESETS[scale]
    dataset = make_paired_task(preset)
    hp = default_kfac_hp(grad_worker_frac=0.5, scheduler="graph")
    plan = FaultPlan(
        jitter=[ComputeJitter(rank=1, seconds=0.002, start_step=1, end_step=2)],
        failures=[CollectiveFailure(phase="factor_comm", step=1, count=1)],
    )
    tracer = Tracer()
    cfg = TrainerConfig(
        world_size=world_size,
        batch_size=preset.batch_size_per_worker,
        epochs=max(2, epochs),
        label_smoothing=0.1,
        seed=seed,
        kfac=hp,
        fault_plan=plan,
        tracer=tracer,
    )
    tx, ty, vx, vy = dataset.splits
    trainer = DataParallelTrainer(
        make_model_factory(preset, num_classes=dataset.spec.num_classes),
        tx, ty, vx, vy, cfg,
    )
    history = trainer.train()

    n_events = validate_chrome_trace(tracer.to_chrome())
    if trace_path is not None:
        tracer.write(trace_path)

    spec = cifar_resnet_spec(
        20,
        input_size=preset.image_size,
        width_multiplier=preset.width_multiplier,
    )
    model = IterationModel(spec, V100_LIKE, FRONTERA_LIKE)
    intervals = KfacIntervals(
        eig_interval=hp.kfac_update_freq, fac_interval=hp.fac_update_freq
    )
    report = fig1_drift_report(
        history,
        model,
        p=world_size,
        intervals=intervals,
        bucket_bytes=DEFAULT_BUCKET_BYTES,
        symmetric=hp.symmetric_comm,
        scheduler=hp.scheduler,
    )

    result = ExperimentResult(
        "drift-report",
        "modeled vs. measured per-stage time (Fig. 1 decomposition)",
    )
    result.add(
        f"P={world_size} strategy={history.kfac_strategy} "
        f"f={history.grad_worker_frac} scheduler={hp.scheduler} "
        f"iterations={history.total_iterations}"
    )
    result.add(
        f"trace: {n_events} events, {len(tracer.spans())} spans; "
        f"faults injected={history.faults_injected} "
        f"retries={history.comm_retries}"
    )
    result.add(report.render())
    result.add(
        "(compute rows compare this machine's wall clock against the modeled"
    )
    result.add(
        " cluster and comm rows compare the simulated wire against it, so"
    )
    result.add(
        " absolute drift is expected — the value is that every stage is"
    )
    result.add(" present, finite, and trackable across commits)")
    result.data["report"] = report.as_dict()
    result.data["meta"] = report.meta
    result.data["trace_events"] = n_events
    return result
