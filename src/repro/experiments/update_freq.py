"""Update-frequency experiments (paper §VI-C2): Table III and Fig. 6.

Hybrid mode (DESIGN.md): validation accuracy across K-FAC update intervals
comes from scaled-down training on the synthetic task; the training-time
column comes from the calibrated performance model at the paper's scale
(ResNet-50/101/152 @ 64 GPUs, intervals {100, 500, 1000}).

Shape criteria: accuracy stays near the no-staleness value for moderate
intervals and degrades at the most extreme one, while modeled training
time decreases with the interval — the staleness/time trade-off of
Table III.
"""

from __future__ import annotations

from repro.experiments.common import (
    SCALE_PRESETS,
    ExperimentResult,
    default_kfac_hp,
    make_paired_task,
    train_once,
)
from repro.perfmodel.hardware import FRONTERA_LIKE, V100_LIKE
from repro.perfmodel.iteration import IterationModel, KfacIntervals
from repro.perfmodel.scaling import IMAGENET_TRAIN_SIZE, KFAC_EPOCHS, SGD_EPOCHS
from repro.perfmodel.specs import resnet_spec
from repro.utils.tables import format_series, format_table

__all__ = ["run_table3_fig6", "modeled_training_minutes"]


def modeled_training_minutes(
    depth: int, gpus: int = 64, eig_interval: int | None = None
) -> float:
    """Modeled end-to-end training minutes at paper scale.

    ``eig_interval=None`` -> SGD (90 epochs); otherwise K-FAC-opt
    (55 epochs) at the given update interval.
    """
    im = IterationModel(resnet_spec(depth), V100_LIKE, FRONTERA_LIKE)
    if eig_interval is None:
        return SGD_EPOCHS * im.epoch_time(gpus, "sgd", IMAGENET_TRAIN_SIZE) / 60.0
    intervals = KfacIntervals.from_eig_interval(eig_interval)
    return (
        KFAC_EPOCHS
        * im.epoch_time(gpus, "kfac-opt", IMAGENET_TRAIN_SIZE, intervals)
        / 60.0
    )


def run_table3_fig6(
    scale: str = "small",
    seed: int = 7,
    intervals: tuple[int, ...] = (2, 10, 50),
    paper_intervals: tuple[int, ...] = (100, 500, 1000),
) -> ExperimentResult:
    """Table III + Fig. 6: accuracy and time vs K-FAC update frequency.

    ``intervals`` are the scaled eigendecomposition intervals actually
    trained; ``paper_intervals`` drive the modeled time columns.
    """
    preset = SCALE_PRESETS[scale]
    dataset = make_paired_task(preset, seed=seed)
    world = 2

    # measured accuracy on the scaled task
    acc_by_interval: dict[int, float] = {}
    curves: dict[int, tuple[list[int], list[float]]] = {}
    hist_sgd = train_once(dataset, preset, world, preset.kfac_epochs, None, seed=seed)
    for interval in intervals:
        hp = default_kfac_hp(
            kfac_update_freq=interval, fac_update_freq=max(1, interval // 10)
        )
        hist = train_once(dataset, preset, world, preset.kfac_epochs, hp, seed=seed)
        acc_by_interval[interval] = hist.final_val_accuracy
        curves[interval] = hist.accuracy_curve()

    # modeled time at paper scale
    time_rows = []
    for depth in (50, 101, 152):
        row = [f"ResNet-{depth}", f"{modeled_training_minutes(depth):.0f}"]
        for pi in paper_intervals:
            row.append(f"{modeled_training_minutes(depth, eig_interval=pi):.0f}")
        time_rows.append(row)

    result = ExperimentResult(
        "table3+fig6", "accuracy & modeled time vs K-FAC update frequency (Table III, Fig. 6)"
    )
    result.add(
        format_table(
            ["Interval (scaled)", "SGD"] + [str(i) for i in intervals],
            [
                [
                    "Val accuracy",
                    f"{hist_sgd.final_val_accuracy:.3f}",
                    *[f"{acc_by_interval[i]:.3f}" for i in intervals],
                ]
            ],
        )
    )
    result.add(
        format_table(
            ["Model", "SGD (min, modeled)"]
            + [f"K-FAC @{pi} (min)" for pi in paper_intervals],
            time_rows,
            title="modeled training time @64 GPUs (paper-scale intervals)",
        )
    )
    for interval, (xs, ys) in curves.items():
        tail = max(0, len(xs) - 5)
        result.add(
            format_series(
                f"freq-{interval} (last epochs)",
                xs[tail:],
                [f"{y:.3f}" for y in ys[tail:]],
                "epoch",
                "val_acc",
            )
        )
    result.data = {
        "sgd_accuracy": hist_sgd.final_val_accuracy,
        "accuracy": acc_by_interval,
        "curves": curves,
        "modeled_minutes": {r[0]: r[1:] for r in time_rows},
        "baseline": preset.baseline_accuracy,
    }
    return result
