"""Profiling experiments (paper §VI-C4): Tables V & VI and Figure 10.

Performance-model experiments driven by the real ResNet layer shapes.
Shape criteria:

- **Table V**: factor-computation time constant in GPU count; factor/eig
  communication roughly flat; eigendecomposition compute decreasing with
  GPU count but sub-linearly (imbalance);
- **Table VI**: the fastest worker's eigendecomposition time shrinks
  near-linearly with GPU count while the slowest's barely improves;
- **Fig. 10**: factor-computation time grows super-linearly with model
  parameter count.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.perfmodel.hardware import FRONTERA_LIKE, V100_LIKE
from repro.perfmodel.iteration import IterationModel
from repro.perfmodel.scaling import worker_speedup_table
from repro.perfmodel.specs import resnet_spec
from repro.utils.tables import format_series, format_table

__all__ = ["run_table5", "run_table6", "run_fig10"]

#: paper Table V (ms): (model, gpus) -> (fac Tcomp, fac Tcomm, eig Tcomp, eig Tcomm)
PAPER_TABLE5 = {
    (50, 16): (36.83, 155.79, 2256.64, 117.28),
    (50, 32): (43.30, 171.57, 1668.19, 149.60),
    (50, 64): (44.90, 154.63, 1497.96, 142.93),
    (101, 16): (125.23, 224.15, 3271.72, 199.69),
    (101, 32): (126.14, 267.08, 2280.38, 265.57),
    (101, 64): (126.95, 239.33, 2410.24, 253.23),
    (152, 16): (218.36, 276.83, 4067.69, 279.08),
    (152, 32): (219.00, 313.17, 2758.42, 329.05),
    (152, 64): (219.12, 312.52, 2212.24, 347.99),
}

#: paper Table VI: (model, gpus) -> (min speedup, max speedup)
PAPER_TABLE6 = {
    (50, 16): (1.00, 1.00), (50, 32): (1.34, 2.88), (50, 64): (1.55, 6.61),
    (101, 16): (1.00, 1.00), (101, 32): (1.41, 3.33), (101, 64): (1.26, 6.18),
    (152, 16): (1.00, 1.00), (152, 32): (1.51, 2.03), (152, 64): (1.85, 8.27),
}


def run_table5(
    depths: tuple[int, ...] = (50, 101, 152),
    gpus: tuple[int, ...] = (16, 32, 64),
    pipelined: bool = True,
) -> ExperimentResult:
    """Table V: per-stage time profile of a K-FAC update step.

    With ``pipelined=True`` two extra columns report the *exposed*
    (non-overlapped) communication once the async engine hides chunked
    transfers behind compute — the SPD-KFAC-style savings the synchronous
    drivers leave on the table.  The factor-stage wire payload is reported
    for both the full-matrix exchange and the triangular-packed fast path
    (``KFAC(symmetric_comm=True)``) — the packed bytes are strictly lower.
    """
    result = ExperimentResult(
        "table5", "factor & eigendecomposition time profile (paper Table V, ms)"
    )
    rows = []
    exposed: dict[tuple[int, int], tuple[float, float]] = {}
    hidden: dict[tuple[int, int], float] = {}
    payload_full: dict[int, float] = {}
    payload_packed: dict[int, float] = {}
    for depth in depths:
        im = IterationModel(resnet_spec(depth), V100_LIKE, FRONTERA_LIKE)
        payload_full[depth] = float(im.factor_comm_payload_bytes(packed=False))
        payload_packed[depth] = float(im.factor_comm_payload_bytes(packed=True))
        for p in gpus:
            prof = im.stage_profile(p, pipelined=pipelined)
            paper = PAPER_TABLE5.get((depth, p))
            exposed[(depth, p)] = (prof.factor_tcomm_exposed, prof.eig_tcomm_exposed)
            hidden[(depth, p)] = prof.hidden_comm
            row = [
                f"ResNet-{depth}",
                p,
                f"{prof.factor_tcomp * 1e3:.1f}",
                f"{prof.factor_tcomm * 1e3:.1f}",
                f"{prof.eig_tcomp * 1e3:.0f}",
                f"{prof.eig_tcomm * 1e3:.0f}",
            ]
            if pipelined:
                row += [
                    f"{prof.factor_tcomm_exposed * 1e3:.1f}",
                    f"{prof.eig_tcomm_exposed * 1e3:.1f}",
                ]
            row.append("/".join(f"{v:.0f}" for v in paper) if paper else "-")
            rows.append(row)
    headers = ["Model", "GPUs", "fac Tcomp", "fac Tcomm", "eig Tcomp", "eig Tcomm"]
    if pipelined:
        headers += ["fac Texpose", "eig Texpose"]
    headers.append("paper (fc/fx/ec/ex)")
    result.add(format_table(headers, rows))
    result.add(
        format_table(
            ["Model", "factor payload (MB, full)", "factor payload (MB, tri-packed)"],
            [
                [
                    f"ResNet-{d}",
                    f"{payload_full[d] / 1e6:.1f}",
                    f"{payload_packed[d] / 1e6:.1f}",
                ]
                for d in depths
            ],
        )
    )
    result.data = {
        "paper": PAPER_TABLE5,
        "exposed": exposed,
        "hidden": hidden,
        "factor_payload_bytes": payload_full,
        "factor_payload_packed_bytes": payload_packed,
    }
    return result


def run_table6(
    depths: tuple[int, ...] = (50, 101, 152), gpus: tuple[int, ...] = (16, 32, 64)
) -> ExperimentResult:
    """Table VI: min/max eigendecomposition worker speedup (imbalance)."""
    result = ExperimentResult(
        "table6", "min/max eig worker speedup vs 16 GPUs (paper Table VI)"
    )
    rows = []
    for depth in depths:
        speedups = worker_speedup_table(depth, gpus)
        for p in gpus:
            mn, mx = speedups[p]
            pmn, pmx = PAPER_TABLE6[(depth, p)]
            rows.append(
                [f"ResNet-{depth}", p, f"{mn:.2f}", f"{mx:.2f}", f"{pmn:.2f}", f"{pmx:.2f}"]
            )
    result.add(
        format_table(
            ["Model", "GPUs", "min (model)", "max (model)", "min (paper)", "max (paper)"],
            rows,
        )
    )
    result.data = {"paper": PAPER_TABLE6}
    return result


def run_fig10(depths: tuple[int, ...] = (34, 50, 101, 152)) -> ExperimentResult:
    """Fig. 10: factor computation time vs model complexity (super-linear)."""
    result = ExperimentResult(
        "fig10", "factor computation time vs model complexity (paper Fig. 10)"
    )
    params = []
    times = []
    for depth in depths:
        spec = resnet_spec(depth)
        im = IterationModel(spec, V100_LIKE, FRONTERA_LIKE)
        params.append(spec.total_params / 1e6)
        times.append(im.factor_compute_time() * 1e3)
    result.add(
        format_series(
            "factor-compute-ms",
            [f"R{d} ({p:.1f}M)" for d, p in zip(depths, params)],
            [f"{t:.1f}" for t in times],
            "model",
            "ms",
        )
    )
    # super-linearity check: time ratio should exceed parameter ratio
    ratio_t = times[-1] / times[0]
    ratio_p = params[-1] / params[0]
    result.add(f"time ratio {ratio_t:.2f} vs param ratio {ratio_p:.2f} (super-linear: {ratio_t > ratio_p})")
    result.data = {"depths": depths, "params_m": params, "times_ms": times}
    return result
