"""Scaling experiments (paper §VI-C3/C4): Figures 7–9 and Table IV.

Pure performance-model experiments at the paper's true scale (ImageNet,
16–256 V100s).  Shape criteria:

- K-FAC-opt faster than SGD on ResNet-50 at every scale, K-FAC-lw in
  between (Fig. 7);
- the K-FAC advantage shrinks with model depth and with scale, crossing
  to *negative* for ResNet-152 at 256 GPUs (Fig. 9 / Table IV);
- K-FAC-opt scales better than K-FAC-lw (its non-update iterations are
  communication-free).
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.perfmodel.scaling import PAPER_GPU_SCALES, ScalingStudy, improvement_table
from repro.utils.tables import format_table

__all__ = ["run_scaling_figure", "run_table4"]

#: paper Table IV, % improvement of K-FAC-opt over SGD (for side-by-side)
PAPER_TABLE4 = {
    50: (20.9, 19.7, 25.2, 23.5, 17.7),
    101: (18.4, 11.1, 15.1, 19.5, 9.7),
    152: (8.2, 7.6, 6.0, 4.9, -11.1),
}


def run_scaling_figure(depth: int) -> ExperimentResult:
    """Fig. 7 (R50) / Fig. 8 (R101) / Fig. 9 (R152): time-to-solution."""
    fig = {50: "fig7", 101: "fig8", 152: "fig9"}.get(depth, f"scaling-{depth}")
    study = ScalingStudy(depth=depth)
    points = study.run()
    eff = study.scaling_efficiency(points)
    result = ExperimentResult(
        fig, f"ResNet-{depth} time-to-solution vs scale (SGD / K-FAC-lw / K-FAC-opt)"
    )
    rows = []
    for i, pt in enumerate(points):
        rows.append(
            [
                pt.gpus,
                f"{pt.sgd_minutes:.0f}",
                f"{pt.kfac_lw_minutes:.0f}",
                f"{pt.kfac_opt_minutes:.0f}",
                f"{100 * pt.improvement_opt():.1f}%",
                f"{eff['sgd'][i]:.3f}",
                f"{eff['kfac-opt'][i]:.3f}",
            ]
        )
    result.add(
        format_table(
            ["GPUs", "SGD (min)", "K-FAC-lw (min)", "K-FAC-opt (min)",
             "opt vs SGD", "eff SGD", "eff opt"],
            rows,
        )
    )
    result.data = {
        "points": points,
        "efficiency": eff,
    }
    return result


def run_table4() -> ExperimentResult:
    """Table IV: K-FAC-opt improvement over SGD, models x scales."""
    table = improvement_table()
    result = ExperimentResult(
        "table4", "K-FAC-opt improvement over SGD (paper Table IV, model vs paper)"
    )
    rows = []
    for depth, improvements in table.items():
        rows.append(
            [f"ResNet-{depth} (model)"]
            + [f"{100 * v:+.1f}%" for v in improvements]
        )
        rows.append(
            [f"ResNet-{depth} (paper)"]
            + [f"{v:+.1f}%" for v in PAPER_TABLE4[depth]]
        )
    result.add(format_table(["Scale"] + [str(g) for g in PAPER_GPU_SCALES], rows))
    result.data = {"model": table, "paper": PAPER_TABLE4}
    return result
