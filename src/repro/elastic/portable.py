"""World-size-portable K-FAC checkpoints: gather and redistribute.

A per-rank :meth:`repro.core.preconditioner.KFAC.state_dict` snapshot only
carries the second-order shards *this* rank owns under *this* placement —
it cannot resume at a different world size or ``grad_worker_frac``.
:func:`gather_state_dict` allgathers every rank's owned eigendecompositions
(or explicit inverses) into one rank-agnostic bundle stamped
``portable: True``; ``KFAC.load_state_dict`` then redistributes it on load,
hydrating second-order state only where the *current* placement makes the
loading rank a gradient worker.  :func:`redistribution_plan` is the pure
metadata mirror of that hydration rule — it answers "which ranks will hold
which layers' eigenbases" for any (world size, strategy, fraction) without
constructing a preconditioner.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.core.assignment import grad_worker_groups, layer_wise_assignment
from repro.core.preconditioner import COMM_OPT, HYBRID, LAYER_WISE

__all__ = ["gather_state_dict", "redistribution_plan"]

#: second-order entry keys a gathered bundle may carry per layer
_SECOND_ORDER_KEYS = (
    "eig_A_Q",
    "eig_A_lam",
    "eig_G_Q",
    "eig_G_lam",
    "inv_A",
    "inv_G",
)

#: wire codes for the original dtype of a gathered shard (0 = absent);
#: shards travel as float64 (exact for every code) and are cast back
_DTYPE_CODES = {1: np.float32, 2: np.float64, 3: np.float16}


def redistribution_plan(
    layer_names: Sequence[str],
    world_size: int,
    strategy: str,
    grad_worker_frac: float | None = None,
) -> dict[int, tuple[str, ...]]:
    """Which ranks hold which layers' second-order state under a placement.

    Returns ``{rank: (layer names...)}`` covering every rank in
    ``range(world_size)``.  This is exactly the set of layers
    ``KFAC.load_state_dict`` hydrates eigenbases for when a portable
    bundle is loaded at that rank (``KFAC.is_grad_worker`` agrees rank by
    rank): every rank under ``COMM_OPT``, only the ``i % P`` owner under
    ``LAYER_WISE``, the contiguous wrap-around gradient-worker group under
    ``HYBRID``.

    Example
    -------
    >>> from repro.elastic import redistribution_plan
    >>> redistribution_plan(["a", "b", "c"], 2, "comm-opt")
    {0: ('a', 'b', 'c'), 1: ('a', 'b', 'c')}
    >>> redistribution_plan(["a", "b", "c"], 2, "layer-wise")
    {0: ('a', 'c'), 1: ('b',)}
    >>> redistribution_plan(["a", "b"], 4, "hybrid", grad_worker_frac=0.5)
    {0: ('a',), 1: ('a', 'b'), 2: ('b',), 3: ()}
    """
    if world_size < 1:
        raise ValueError(f"world_size must be >= 1, got {world_size}")
    names = list(layer_names)
    if strategy == COMM_OPT:
        return {r: tuple(names) for r in range(world_size)}
    if strategy == LAYER_WISE:
        owner = layer_wise_assignment(names, world_size)
        return {
            r: tuple(n for n in names if owner[n] == r)
            for r in range(world_size)
        }
    if strategy == HYBRID:
        if grad_worker_frac is None:
            raise ValueError("HYBRID placement needs grad_worker_frac")
        groups = grad_worker_groups(names, world_size, grad_worker_frac)
        return {
            r: tuple(n for n in names if r in groups[n])
            for r in range(world_size)
        }
    raise ValueError(f"unknown strategy {strategy!r}")


def gather_state_dict(
    kfac: Any, hvd: Any | None = None, peers: Sequence[Any] | None = None
) -> dict:
    """Gather a rank-agnostic (*portable*) K-FAC snapshot.

    The result is ``KFAC.state_dict()`` completed with **every** layer's
    second-order state and stamped ``portable: True`` plus a
    ``gathered_from`` record; ``KFAC.load_state_dict`` accepts it under
    any world size / strategy / ``grad_worker_frac`` and redistributes on
    load.  Call it at a step boundary (after ``optimizer.step()``), when
    the running-average factors are identical on every rank.

    How the missing shards are collected depends on the execution style:

    - ``world_size == 1`` or ``COMM_OPT``: the local snapshot is already
      complete — no communication.
    - ``peers=[kfac_rank0, kfac_rank1, ...]`` (phase-style drivers, all
      replicas in one process): merged directly from the peer objects.
    - ``hvd=HorovodContext`` (SPMD): two allgathers — a per-factor
      presence/dtype flag vector, then the owned shards packed as
      ``float64`` (exact for every supported dtype) and cast back.  This
      is a collective: **every** rank must call it.

    Example
    -------
    >>> import numpy as np
    >>> from repro.core.preconditioner import KFAC
    >>> from repro.elastic import gather_state_dict
    >>> from repro.nn import Linear, Sequential
    >>> from repro.nn.loss import CrossEntropyLoss
    >>> model = Sequential(Linear(4, 3))
    >>> kfac = KFAC(model, kfac_update_freq=1, damping=0.01)
    >>> loss_fn = CrossEntropyLoss()
    >>> x = np.random.default_rng(0).normal(size=(6, 4)).astype(np.float32)
    >>> _ = loss_fn(model(x), np.arange(6) % 3)
    >>> _ = model.backward(loss_fn.backward())
    >>> kfac.step()
    >>> bundle = gather_state_dict(kfac)       # world of one: already complete
    >>> bundle["portable"], bundle["gathered_from"]["world_size"]
    (True, 1)
    >>> sorted(k for k in bundle["layers"]["m0"] if k.startswith("eig_A"))
    ['eig_A_Q', 'eig_A_lam']
    """
    if hvd is not None and peers is not None:
        raise ValueError("pass at most one of hvd= and peers=")
    state = kfac.state_dict()
    state["portable"] = True
    state["gathered_from"] = {
        "world_size": kfac.world_size,
        "rank": kfac.rank,
        "strategy": kfac.hp.strategy,
        "grad_worker_frac": kfac.hp.grad_worker_frac,
    }
    if kfac.world_size == 1:
        return state
    if peers is not None:
        _merge_from_peers(state, peers)
    elif hvd is not None:
        _allgather_shards(kfac, state, hvd)
    elif kfac.hp.strategy != COMM_OPT:
        raise ValueError(
            f"{kfac.hp.strategy} keeps second-order state sharded across "
            f"{kfac.world_size} ranks; gather_state_dict needs hvd= (SPMD) "
            "or peers= (phase-style replicas) to collect the missing shards"
        )
    return state


# ----------------------------------------------------------------------
# phase-style gather: all replicas live in this process
# ----------------------------------------------------------------------
def _merge_from_peers(state: dict, peers: Sequence[Any]) -> None:
    for peer in peers:
        pstate = peer.state_dict()
        for name, pentry in pstate["layers"].items():
            entry = state["layers"].setdefault(name, {})
            for key in _SECOND_ORDER_KEYS:
                if key in pentry and key not in entry:
                    entry[key] = pentry[key]


# ----------------------------------------------------------------------
# SPMD gather: two allgathers over the HorovodContext
# ----------------------------------------------------------------------
def _factor_owner(kfac: Any, meta: Any) -> int:
    """The rank that computed (and therefore holds) a factor's shard."""
    if kfac.hp.strategy == LAYER_WISE:
        return kfac._layer_assignment[meta.layer]
    return kfac._factor_assignment[meta.key]


def _local_arrays(kfac: Any, meta: Any) -> list[np.ndarray] | None:
    layer = kfac._layer_by_name(meta.layer)
    if kfac.hp.use_eigen_decomp:
        eig = layer.eig_A if meta.kind == "A" else layer.eig_G
        return None if eig is None else [eig.Q, eig.lam]
    inv = layer.inv_A if meta.kind == "A" else layer.inv_G
    return None if inv is None else [inv]


def _entry_keys(kfac: Any, meta: Any) -> tuple[str, ...]:
    if kfac.hp.use_eigen_decomp:
        return (f"eig_{meta.kind}_Q", f"eig_{meta.kind}_lam")
    return (f"inv_{meta.kind}",)


def _shard_shapes(kfac: Any, meta: Any) -> tuple[tuple[int, ...], ...]:
    if kfac.hp.use_eigen_decomp:
        return ((meta.dim, meta.dim), (meta.dim,))
    return ((meta.dim, meta.dim),)


def _dtype_code(dtype: np.dtype) -> int:
    for code, dt in _DTYPE_CODES.items():
        if np.dtype(dt) == np.dtype(dtype):
            return code
    raise TypeError(f"cannot transport second-order shards of dtype {dtype}")


def _allgather_shards(kfac: Any, state: dict, hvd: Any) -> None:
    metas = kfac.factor_metas
    owner = {m.key: _factor_owner(kfac, m) for m in metas}
    owned = [m for m in metas if owner[m.key] == kfac.rank]
    flags: list[float] = []
    chunks: list[np.ndarray] = []
    for meta in owned:
        arrays = _local_arrays(kfac, meta)
        if arrays is None:
            flags.append(0.0)
            continue
        flags.append(float(_dtype_code(np.result_type(*arrays))))
        chunks.extend(
            np.ascontiguousarray(a, dtype=np.float64).reshape(-1) for a in arrays
        )
    flags_buf = np.asarray(flags, dtype=np.float64)
    payload = (
        np.concatenate(chunks) if chunks else np.zeros(0, dtype=np.float64)
    )
    all_flags = hvd.allgather(flags_buf, name="elastic:gather:flags")
    all_payloads = hvd.allgather(payload, name="elastic:gather:shards")
    for r in range(kfac.world_size):
        r_owned = [m for m in metas if owner[m.key] == r]
        r_flags, buf = all_flags[r], all_payloads[r]
        offset = 0
        for meta, flag in zip(r_owned, r_flags):
            code = int(flag)
            if code == 0:
                continue
            dtype = _DTYPE_CODES[code]
            entry = state["layers"].setdefault(meta.layer, {})
            for key, shape in zip(_entry_keys(kfac, meta), _shard_shapes(kfac, meta)):
                size = int(np.prod(shape))
                entry[key] = (
                    buf[offset : offset + size].reshape(shape).astype(dtype)
                )
                offset += size
