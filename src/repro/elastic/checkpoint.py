"""Trainer-level checkpoint bundle with atomic, verified persistence.

:class:`Checkpoint` packages everything a resumable run needs — model
parameters, optimizer slots, a (preferably *portable*, see
:func:`repro.elastic.gather_state_dict`) K-FAC snapshot, the AMP
``GradScaler``, and RNG state — into one pickle written with
write-to-temp + fsync + :func:`os.replace` so a crash mid-save can never
leave a torn file, then read back and deep-compared so a save that would
not round-trip fails loudly (:class:`CheckpointError`) instead of at
resume time.  :func:`broadcast_scaler_state` re-shares the loss scale
across SPMD ranks after a resume so no replica steps with a divergent
scale.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from pathlib import Path
from typing import Any

import numpy as np

__all__ = ["Checkpoint", "CheckpointError", "broadcast_scaler_state"]

#: format stamp written into (and demanded from) every checkpoint file
MAGIC = "repro.elastic.checkpoint/1"


class CheckpointError(RuntimeError):
    """A checkpoint failed to save, verify, or load.

    Example
    -------
    >>> from repro.elastic import CheckpointError
    >>> issubclass(CheckpointError, RuntimeError)
    True
    """


def _deep_equal(a: Any, b: Any) -> bool:
    """Structural equality that treats NaN == NaN inside arrays."""
    if type(a) is not type(b):
        return False
    if isinstance(a, dict):
        return a.keys() == b.keys() and all(_deep_equal(a[k], b[k]) for k in a)
    if isinstance(a, (list, tuple)):
        return len(a) == len(b) and all(map(_deep_equal, a, b))
    if isinstance(a, np.ndarray):
        if a.dtype != b.dtype or a.shape != b.shape:
            return False
        equal_nan = a.dtype.kind in "fc"
        return bool(np.array_equal(a, b, equal_nan=equal_nan))
    if isinstance(a, float):
        return a == b or (a != a and b != b)
    return bool(a == b)


class Checkpoint:
    """One resumable checkpoint file (atomic save, verified round-trip).

    ``capture`` assembles a payload from live training objects,
    ``save``/``load`` move it through ``path``, and ``restore`` pushes a
    loaded payload back into (possibly different-world-size) objects —
    the K-FAC entry should be a portable bundle so
    ``KFAC.load_state_dict`` can redistribute it.

    Example
    -------
    >>> import tempfile, os
    >>> import numpy as np
    >>> from repro.elastic import Checkpoint
    >>> from repro.nn import Linear, Sequential
    >>> from repro.optim import SGD
    >>> model = Sequential(Linear(3, 2))
    >>> opt = SGD(model.parameters(), lr=0.1, momentum=0.9)
    >>> path = os.path.join(tempfile.mkdtemp(), "step10.ckpt")
    >>> ckpt = Checkpoint(path)
    >>> payload = ckpt.capture(model=model, optimizer=opt, step=10)
    >>> ckpt.save(payload)
    >>> loaded = ckpt.load()
    >>> loaded["step"], loaded["format"]
    (10, 'repro.elastic.checkpoint/1')
    >>> model2 = Sequential(Linear(3, 2))
    >>> opt2 = SGD(model2.parameters(), lr=0.1, momentum=0.9)
    >>> ckpt.restore(loaded, model=model2, optimizer=opt2)
    10
    >>> bool(np.array_equal(model2.parameters()[0].data,
    ...                     model.parameters()[0].data))
    True
    """

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = Path(path)

    # ------------------------------------------------------------------
    # assemble / apply
    # ------------------------------------------------------------------
    def capture(
        self,
        model: Any | None = None,
        optimizer: Any | None = None,
        kfac_state: dict | None = None,
        grad_scaler: Any | None = None,
        rng: np.random.Generator | None = None,
        step: int = 0,
        epoch: int = 0,
        extra: dict | None = None,
    ) -> dict:
        """Snapshot live objects into a serializable payload.

        ``kfac_state`` is an *already materialized* state dict (pass
        ``gather_state_dict(kfac, ...)`` for a world-size-portable one —
        the gather is a collective, so it must happen outside ``capture``).
        """
        return {
            "format": MAGIC,
            "step": int(step),
            "epoch": int(epoch),
            "model": None if model is None else model.state_dict(),
            "optimizer": None if optimizer is None else optimizer.state_dict(),
            "kfac": kfac_state,
            "grad_scaler": (
                None if grad_scaler is None else grad_scaler.state_dict()
            ),
            "rng": None if rng is None else rng.bit_generator.state,
            "extra": dict(extra) if extra else {},
        }

    def restore(
        self,
        payload: dict,
        model: Any | None = None,
        optimizer: Any | None = None,
        kfac: Any | None = None,
        grad_scaler: Any | None = None,
        rng: np.random.Generator | None = None,
        strict: bool = True,
    ) -> int:
        """Push a loaded payload into live objects; returns the saved step.

        Only the components passed are restored, so a resume can hydrate
        e.g. just the model.  ``strict`` is forwarded to
        ``KFAC.load_state_dict`` (portable bundles redistribute for the
        *current* placement regardless of the world size they were
        gathered at).
        """
        if payload.get("format") != MAGIC:
            raise CheckpointError(
                f"not a {MAGIC} payload: format={payload.get('format')!r}"
            )
        if model is not None and payload["model"] is not None:
            model.load_state_dict(payload["model"])
        if optimizer is not None and payload["optimizer"] is not None:
            optimizer.load_state_dict(payload["optimizer"])
        if kfac is not None and payload["kfac"] is not None:
            kfac.load_state_dict(payload["kfac"], strict=strict)
        if grad_scaler is not None and payload["grad_scaler"] is not None:
            grad_scaler.load_state_dict(payload["grad_scaler"])
        if rng is not None and payload["rng"] is not None:
            rng.bit_generator.state = payload["rng"]
        return int(payload["step"])

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def save(self, payload: dict) -> None:
        """Atomically write ``payload`` and verify it round-trips.

        The bytes land in a temp file in the destination directory, are
        fsynced, and only then renamed over ``path`` — readers never see
        a partial file.  The written file is immediately re-read and
        deep-compared against ``payload``; any divergence raises
        :class:`CheckpointError` with the file already in place removed.
        """
        if payload.get("format") != MAGIC:
            raise CheckpointError(
                f"refusing to save payload without the {MAGIC} stamp; "
                "build it with Checkpoint.capture()"
            )
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=self.path.parent, prefix=self.path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, self.path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
        reread = self.load()
        if not _deep_equal(payload, reread):
            self.path.unlink()
            raise CheckpointError(
                f"checkpoint {self.path} did not survive a save/load "
                "round-trip; the corrupt file has been removed"
            )

    def load(self) -> dict:
        """Read and validate the payload at ``path``."""
        try:
            with open(self.path, "rb") as fh:
                payload = pickle.load(fh)
        except FileNotFoundError:
            raise CheckpointError(f"no checkpoint at {self.path}") from None
        except (pickle.UnpicklingError, EOFError) as exc:
            raise CheckpointError(
                f"checkpoint {self.path} is corrupt: {exc}"
            ) from exc
        if not isinstance(payload, dict) or payload.get("format") != MAGIC:
            raise CheckpointError(
                f"{self.path} is not a {MAGIC} checkpoint"
            )
        return payload


def broadcast_scaler_state(scaler: Any, hvd: Any, root: int = 0) -> None:
    """Share ``root``'s loss-scale state with every SPMD rank.

    After a resume the ranks that read the checkpoint file may disagree
    with ranks that did not (or a freshly-constructed scaler may still sit
    at its init scale); a single diverged scale makes the unscaled
    gradients inconsistent across replicas.  This packs the five
    :class:`repro.precision.GradScaler` fields into one float64 vector,
    broadcasts it, and loads it everywhere.  Collective: every rank must
    call it.

    Example
    -------
    >>> import numpy as np
    >>> from repro.comm.backend import World
    >>> from repro.comm.horovod import HorovodContext
    >>> from repro.elastic import broadcast_scaler_state
    >>> from repro.precision import GradScaler
    >>> def program(view):
    ...     hvd = HorovodContext(view)
    ...     scaler = GradScaler(init_scale=2.0 if view.rank == 0 else 512.0)
    ...     broadcast_scaler_state(scaler, hvd, root=0)
    ...     return scaler.scale
    >>> World(2).run_spmd(program)
    [2.0, 2.0]
    """
    state = scaler.state_dict()
    vec = np.array(
        [
            float(state["scale"]),
            float(state["growth_tracker"]),
            float(state["steps_taken"]),
            float(state["steps_skipped"]),
            1.0 if state["enabled"] else 0.0,
        ],
        dtype=np.float64,
    )
    vec = hvd.broadcast(vec, name="elastic:scaler", root=root)
    scaler.load_state_dict(
        {
            "scale": float(vec[0]),
            "growth_tracker": int(vec[1]),
            "steps_taken": int(vec[2]),
            "steps_skipped": int(vec[3]),
            "enabled": bool(vec[4]),
        }
    )
