"""Elastic fleet: portable checkpoints, fault injection, degradation.

Three robustness layers for the distributed K-FAC stack:

1. **World-size-portable checkpoints** — :func:`gather_state_dict`
   allgathers every rank's owned second-order shards into one
   rank-agnostic bundle; ``KFAC.load_state_dict`` redistributes it for
   the *current* world size / ``grad_worker_frac`` on load
   (:func:`redistribution_plan` is the pure metadata mirror of that
   rule).  :class:`Checkpoint` bundles model / optimizer / K-FAC /
   ``GradScaler`` / RNG with atomic write-then-rename and a verified
   save/load round-trip; :func:`broadcast_scaler_state` re-shares the
   loss scale across SPMD ranks after a resume.

2. **Fault and straggler injection** — a :class:`FaultPlan` of
   :class:`ComputeJitter` / :class:`LatencySpike` /
   :class:`CollectiveFailure` / :class:`RankDeath` specs attached to a
   simulated ``World`` perturbs or fails its collectives, so straggler
   sensitivity and failure handling are measurable end to end.

3. **Graceful degradation** — drivers retry failed collectives under a
   :class:`RetryPolicy`; exhaustion in an eligible phase degrades to a
   :class:`CollectiveFailed` sentinel and the preconditioner falls back
   to its last-known eigenbasis, up to a bounded staleness
   (:class:`StaleEigenbasisError` past it).

See ``docs/elasticity.md`` for the full semantics.
"""

from repro.comm.faults import (
    CollectiveError,
    CollectiveFailed,
    CollectiveFailure,
    ComputeJitter,
    FaultPlan,
    LatencySpike,
    RankDeath,
    RankDeadError,
    RetryPolicy,
    StaleEigenbasisError,
)
from repro.elastic.checkpoint import (
    Checkpoint,
    CheckpointError,
    broadcast_scaler_state,
)
from repro.elastic.portable import gather_state_dict, redistribution_plan

__all__ = [
    "Checkpoint",
    "CheckpointError",
    "CollectiveError",
    "CollectiveFailed",
    "CollectiveFailure",
    "ComputeJitter",
    "FaultPlan",
    "LatencySpike",
    "RankDeath",
    "RankDeadError",
    "RetryPolicy",
    "StaleEigenbasisError",
    "broadcast_scaler_state",
    "gather_state_dict",
    "redistribution_plan",
]
