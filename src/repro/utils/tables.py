"""ASCII table / series formatting for experiment output.

The experiment runners print results in the same row/column layout as the
paper's tables so that paper-vs-measured comparison is immediate.
"""

from __future__ import annotations

from typing import Any, Sequence

__all__ = ["format_table", "format_series"]


def _cell(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4g}" if abs(value) < 1000 else f"{value:.1f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str | None = None,
) -> str:
    """Render a fixed-width ASCII table.

    Parameters
    ----------
    headers:
        Column names.
    rows:
        Row values; each row must have ``len(headers)`` entries.
    title:
        Optional title line printed above the table.

    Example
    -------
    >>> from repro.utils.tables import format_table
    >>> print(format_table(["p", "t"], [[2, 1.5], [4, 0.9]]))
    +---+-----+
    | p | t   |
    +---+-----+
    | 2 | 1.5 |
    | 4 | 0.9 |
    +---+-----+
    """
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
    str_rows = [[_cell(v) for v in row] for row in rows]
    widths = [
        max(len(headers[c]), *(len(r[c]) for r in str_rows)) if str_rows else len(headers[c])
        for c in range(len(headers))
    ]
    sep = "+".join("-" * (w + 2) for w in widths)
    sep = f"+{sep}+"

    def render_row(cells: Sequence[str]) -> str:
        inner = " | ".join(c.ljust(w) for c, w in zip(cells, widths))
        return f"| {inner} |"

    lines = []
    if title:
        lines.append(title)
    lines.append(sep)
    lines.append(render_row(headers))
    lines.append(sep)
    for r in str_rows:
        lines.append(render_row(r))
    lines.append(sep)
    return "\n".join(lines)


def format_series(
    name: str,
    xs: Sequence[Any],
    ys: Sequence[Any],
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render a figure series as aligned ``x -> y`` pairs.

    Used for the paper's figures (accuracy curves, time-to-solution vs
    scale) where a plot is summarised as its underlying series.

    Example
    -------
    >>> from repro.utils.tables import format_series
    >>> print(format_series("acc", [1, 2], [0.5, 0.75], "epoch", "top1"))
    series: acc (epoch -> top1)
               1 -> 0.5
               2 -> 0.75
    """
    if len(xs) != len(ys):
        raise ValueError(f"series length mismatch: {len(xs)} vs {len(ys)}")
    lines = [f"series: {name} ({x_label} -> {y_label})"]
    for x, y in zip(xs, ys):
        lines.append(f"  {_cell(x):>10} -> {_cell(y)}")
    return "\n".join(lines)
