"""Tiny logging helper: a namespaced stdout logger with verbosity levels.

Kept dependency-free (no ``logging`` configuration side effects) so library
users can embed ``repro`` without inheriting global logging state.
"""

from __future__ import annotations

import sys
from typing import TextIO

__all__ = ["Logger", "NULL_LOGGER"]


class Logger:
    """Minimal leveled logger.

    Levels: 0 = silent, 1 = info + warn, 2 = debug.

    Example
    -------
    >>> import io
    >>> log = Logger("driver", stream=io.StringIO())
    >>> log.warn("eig_comm retry 1/2")
    >>> log.stream.getvalue()
    '[driver:warn] eig_comm retry 1/2\\n'
    """

    def __init__(self, name: str, level: int = 1, stream: TextIO | None = None) -> None:
        self.name = name
        self.level = level
        self.stream = stream if stream is not None else sys.stdout

    def info(self, msg: str) -> None:
        if self.level >= 1:
            print(f"[{self.name}] {msg}", file=self.stream)

    def warn(self, msg: str) -> None:
        """Always-on at level >= 1, tagged ``[name:warn]`` — degraded-path
        events (retries, fallbacks) that should not pass silently."""
        if self.level >= 1:
            print(f"[{self.name}:warn] {msg}", file=self.stream)

    def debug(self, msg: str) -> None:
        if self.level >= 2:
            print(f"[{self.name}:debug] {msg}", file=self.stream)

    def child(self, suffix: str) -> "Logger":
        return Logger(f"{self.name}.{suffix}", self.level, self.stream)


NULL_LOGGER = Logger("null", level=0)
