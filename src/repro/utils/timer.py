"""Lightweight timing instrumentation.

Two layers:

- :class:`Stopwatch` — wall-clock measurement of real code (used by the
  training loop to report measured per-phase times, mirroring the paper's
  Fig. 1 decomposition into I/O, forward, gradient evaluation, exchange,
  update).
- :class:`Timer` / :class:`TimerRegistry` — *accounted* (simulated) time.
  The communication substrate and the performance model charge simulated
  seconds to named phases; these never consult the real clock, so results
  are machine-independent and deterministic.
"""

from __future__ import annotations

import time
from collections import defaultdict
from dataclasses import dataclass, field

__all__ = ["Stopwatch", "Timer", "TimerRegistry"]


class Stopwatch:
    """Accumulating wall-clock stopwatch usable as a context manager.

    Example
    -------
    >>> from repro.utils.timer import Stopwatch
    >>> sw = Stopwatch()
    >>> with sw:
    ...     _ = sum(range(1000))
    >>> sw.count, sw.total > 0.0
    (1, True)
    """

    def __init__(self) -> None:
        self.total = 0.0
        self.count = 0
        self._start: float | None = None

    def __enter__(self) -> "Stopwatch":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        assert self._start is not None, "Stopwatch exited without entering"
        self.total += time.perf_counter() - self._start
        self.count += 1
        self._start = None

    @property
    def mean(self) -> float:
        """Mean duration per timed section (0 if never used)."""
        return self.total / self.count if self.count else 0.0

    def reset(self) -> None:
        self.total = 0.0
        self.count = 0


@dataclass
class Timer:
    """An accounted-time accumulator for one named phase.

    Example
    -------
    >>> from repro.utils.timer import Timer
    >>> t = Timer("factor_comm")
    >>> t.charge(0.25); t.charge(0.75)
    >>> t.total, t.mean
    (1.0, 0.5)
    """

    name: str
    total: float = 0.0
    count: int = 0

    def charge(self, seconds: float) -> None:
        """Add ``seconds`` of simulated time to this phase."""
        if seconds < 0:
            raise ValueError(f"cannot charge negative time: {seconds}")
        self.total += seconds
        self.count += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


@dataclass
class TimerRegistry:
    """A registry of accounted-time phases, keyed by name.

    Used by the simulated collectives and the performance model to attribute
    simulated seconds to phases like ``grad_allreduce``, ``factor_comm``,
    ``eig_compute`` — the same breakdown the paper reports in Table V.

    Example
    -------
    >>> from repro.utils.timer import TimerRegistry
    >>> reg = TimerRegistry()
    >>> reg.charge("grad_allreduce", 0.1); reg.charge("factor_comm", 0.2)
    >>> reg.as_dict()
    {'factor_comm': 0.2, 'grad_allreduce': 0.1}
    >>> round(reg.grand_total(), 10)
    0.3
    """

    timers: dict[str, Timer] = field(default_factory=dict)

    def charge(self, name: str, seconds: float) -> None:
        self.get(name).charge(seconds)

    def get(self, name: str) -> Timer:
        if name not in self.timers:
            self.timers[name] = Timer(name)
        return self.timers[name]

    def total(self, name: str) -> float:
        """Total accounted seconds for phase ``name`` (0 if absent)."""
        return self.timers[name].total if name in self.timers else 0.0

    def grand_total(self) -> float:
        return sum(t.total for t in self.timers.values())

    def as_dict(self) -> dict[str, float]:
        return {name: t.total for name, t in sorted(self.timers.items())}

    def reset(self) -> None:
        self.timers.clear()

    def merged_with(self, other: "TimerRegistry") -> "TimerRegistry":
        """Return a new registry with per-phase totals summed."""
        out = TimerRegistry()
        totals: dict[str, float] = defaultdict(float)
        counts: dict[str, int] = defaultdict(int)
        for reg in (self, other):
            for name, t in reg.timers.items():
                totals[name] += t.total
                counts[name] += t.count
        for name in totals:
            out.timers[name] = Timer(name, totals[name], counts[name])
        return out
