"""Deterministic random-number management.

Everything stochastic in the library (weight init, data generation, data
shuffling, dropout-free but noise-bearing synthetic tasks) draws from
:class:`numpy.random.Generator` objects derived from explicit seeds, so any
experiment is exactly repeatable.  Per-worker generators are spawned from a
root ``SeedSequence`` so that simulated data-parallel workers see distinct
but reproducible streams — the same discipline one would use with real MPI
ranks.
"""

from __future__ import annotations

import random
from typing import Iterator

import numpy as np

__all__ = ["seed_everything", "spawn_rng", "RngPool"]


def seed_everything(seed: int) -> np.random.Generator:
    """Seed Python's ``random`` and return a fresh numpy Generator.

    Parameters
    ----------
    seed:
        Non-negative integer seed.

    Returns
    -------
    numpy.random.Generator
        A PCG64 generator seeded with ``seed``.

    Example
    -------
    >>> from repro.utils.rng import seed_everything
    >>> a, b = seed_everything(7), seed_everything(7)
    >>> float(a.random()) == float(b.random())   # deterministic stream
    True
    """
    if seed < 0:
        raise ValueError(f"seed must be non-negative, got {seed}")
    random.seed(seed)
    return np.random.default_rng(seed)


def spawn_rng(seed: int, n: int) -> list[np.random.Generator]:
    """Spawn ``n`` independent generators from one root seed.

    Uses ``SeedSequence.spawn`` so streams are statistically independent —
    the recommended pattern for per-rank RNG in parallel numpy programs.

    Example
    -------
    >>> from repro.utils.rng import spawn_rng
    >>> rngs = spawn_rng(0, 4)                      # one per worker
    >>> len(rngs)
    4
    >>> float(rngs[0].random()) != float(rngs[1].random())
    True
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    root = np.random.SeedSequence(seed)
    return [np.random.default_rng(s) for s in root.spawn(n)]


class RngPool:
    """A named pool of generators derived from a single experiment seed.

    Separate named streams (e.g. ``"init"``, ``"data"``, ``"shuffle"``)
    guarantee that changing how many draws one consumer makes does not
    perturb the others — critical when comparing optimizers on identical
    initial weights and data order.

    Example
    -------
    >>> from repro.utils.rng import RngPool
    >>> pool = RngPool(seed=123)
    >>> _ = pool.get("data").random(100)            # draws on one stream...
    >>> w = pool.get("init").random()
    >>> w == RngPool(123).get("init").random()      # ...leave others intact
    True
    """

    def __init__(self, seed: int) -> None:
        self._seed = int(seed)
        self._root = np.random.SeedSequence(self._seed)
        self._streams: dict[str, np.random.Generator] = {}
        self._counter = 0

    @property
    def seed(self) -> int:
        """The root seed this pool was created with."""
        return self._seed

    def get(self, name: str) -> np.random.Generator:
        """Return the generator for stream ``name``, creating it on demand.

        Stream identity is a pure function of ``(seed, name)`` — the order
        in which streams are first requested does not matter.
        """
        if name not in self._streams:
            child = np.random.SeedSequence(
                entropy=self._root.entropy,
                spawn_key=(_stable_hash(name),),
            )
            self._streams[name] = np.random.default_rng(child)
        return self._streams[name]

    def per_worker(self, name: str, world_size: int) -> list[np.random.Generator]:
        """Return one generator per simulated worker for stream ``name``."""
        if world_size <= 0:
            raise ValueError(f"world_size must be positive, got {world_size}")
        return [
            np.random.default_rng(
                np.random.SeedSequence(
                    entropy=self._root.entropy,
                    spawn_key=(_stable_hash(name), rank),
                )
            )
            for rank in range(world_size)
        ]

    def streams(self) -> Iterator[str]:
        """Iterate over the names of streams created so far."""
        return iter(sorted(self._streams))


def _stable_hash(name: str) -> int:
    """A stable (process-independent) 32-bit hash of ``name``.

    Python's ``hash`` is salted per process; spawn keys must be stable
    across runs, so we use a small FNV-1a instead.
    """
    h = 2166136261
    for byte in name.encode("utf-8"):
        h ^= byte
        h = (h * 16777619) & 0xFFFFFFFF
    return h
