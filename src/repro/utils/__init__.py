"""Small shared utilities: RNG management, timers, tables, logging."""

from repro.utils.rng import RngPool, seed_everything, spawn_rng
from repro.utils.timer import Stopwatch, Timer, TimerRegistry
from repro.utils.tables import format_series, format_table

__all__ = [
    "RngPool",
    "seed_everything",
    "spawn_rng",
    "Stopwatch",
    "Timer",
    "TimerRegistry",
    "format_table",
    "format_series",
]
