"""Drivers binding the K-FAC step generator to a communication substrate.

Three drivers, one algorithm:

- :class:`LocalDriver` — world of one; requests are satisfied locally.
- :class:`PhaseController` — lockstep execution of P replicas' step
  generators against a :class:`repro.comm.World` (deterministic; used by
  the data-parallel trainer and all experiments).  AllReduce requests are
  fused into a single flat ring-allreduce per matched request, reproducing
  Horovod's fusion-buffer behaviour for factor communication.
- :class:`SPMDDriver` — executes a single rank's generator inside a
  threaded SPMD program via matched named collectives (what the
  Listing 1-style quickstart uses).

All three understand both step-generator protocols from
:mod:`repro.core.comm_ops`: the blocking request/response protocol and the
pipelined launch/wait protocol (``scheduler="graph"``), where factor
allreduces run asynchronously while the generator eigendecomposes
already-reduced factors and the driver credits that compute as hidden
communication time.
"""

from __future__ import annotations

from typing import Any, Generator, Sequence

import numpy as np

from repro.comm.backend import World
from repro.comm.faults import CollectiveError, CollectiveFailed, RetryPolicy
from repro.comm.handles import Handle, LaunchedHandle
from repro.comm.horovod import HorovodContext
from repro.core.comm_ops import (
    AllGatherLaunch,
    AllGatherRequest,
    AllReduceLaunch,
    AllReduceRequest,
    GroupAllGatherLaunch,
    GroupAllGatherRequest,
    GroupBroadcastLaunch,
    GroupBroadcastRequest,
    WaitRequest,
    pack_arrays,
    unpack_arrays,
)
from repro.core.preconditioner import KFAC
from repro.utils.logging import NULL_LOGGER, Logger

__all__ = ["LocalDriver", "PhaseController", "SPMDDriver"]


class LocalDriver:
    """Drive one KFAC instance with no communication (world of one).

    Example
    -------
    >>> import numpy as np
    >>> from repro.core.distributed import LocalDriver
    >>> from repro.core.preconditioner import KFAC
    >>> from repro.nn import Linear, Sequential
    >>> from repro.nn.loss import CrossEntropyLoss
    >>> model = Sequential(Linear(4, 3))
    >>> driver = LocalDriver(KFAC(model, kfac_update_freq=1))
    >>> loss_fn = CrossEntropyLoss()
    >>> _ = loss_fn(model(np.ones((4, 4), dtype=np.float32)), np.arange(4) % 3)
    >>> _ = model.backward(loss_fn.backward())
    >>> driver.step()
    >>> driver.kfac.steps
    1
    """

    def __init__(self, kfac: KFAC) -> None:
        if kfac.world_size != 1:
            raise ValueError("LocalDriver requires world_size == 1")
        self.kfac = kfac

    def step(self) -> None:
        self.kfac.step()


def _advance(gen: Generator, value: Any = None, first: bool = False) -> Any | None:
    """Advance a generator; return the next request or None when finished."""
    try:
        return next(gen) if first else gen.send(value)
    except StopIteration:
        return None


class PhaseController:
    """Lockstep driver for P replicas' preconditioners over one World.

    All replicas must be configured with the same hyper-parameters and
    ``world_size == world.size`` and ``rank == index``; the controller
    matches their yielded requests step by step and executes each matched
    request as one fused collective.

    Example
    -------
    >>> import numpy as np
    >>> from repro.comm.backend import World
    >>> from repro.core.distributed import PhaseController
    >>> from repro.core.preconditioner import KFAC
    >>> from repro.nn import Linear, Sequential
    >>> from repro.nn.loss import CrossEntropyLoss
    >>> world = World(2)
    >>> models = [Sequential(Linear(4, 3, rng=np.random.default_rng(1)))
    ...           for _ in range(2)]
    >>> kfacs = [KFAC(m, rank=r, world_size=2, kfac_update_freq=1)
    ...          for r, m in enumerate(models)]
    >>> controller = PhaseController(kfacs, world)
    >>> x = np.ones((4, 4), dtype=np.float32)
    >>> for m in models:
    ...     loss_fn = CrossEntropyLoss()
    ...     _ = loss_fn(m(x), np.arange(4) % 3)
    ...     _ = m.backward(loss_fn.backward())
    >>> controller.step()             # one lockstep K-FAC step, fused comm
    >>> world.stats.total_ops() > 0
    True
    """

    def __init__(
        self,
        kfacs: Sequence[KFAC],
        world: World,
        retry_policy: RetryPolicy | None = RetryPolicy(),
        logger: Logger = NULL_LOGGER,
    ) -> None:
        if len(kfacs) != world.size:
            raise ValueError(f"got {len(kfacs)} KFAC replicas for world size {world.size}")
        for i, k in enumerate(kfacs):
            if k.rank != i or k.world_size != world.size:
                raise ValueError(
                    f"replica {i} has rank/world {k.rank}/{k.world_size}, "
                    f"expected {i}/{world.size}"
                )
        self.kfacs = list(kfacs)
        self.world = world
        #: bounded retry-with-backoff for failed collectives; ``None``
        #: propagates the first :class:`CollectiveError` unchanged
        self.retry_policy = retry_policy
        #: degraded-path events (retries, fallbacks) surface as warnings
        self.logger = logger
        self.comm_retries = 0
        self.comm_fallbacks = 0

    def _with_retry(self, phase: str, attempt_fn: Any) -> Any:
        """Run a collective with bounded retry-with-backoff.

        Returns the collective's result, or a :class:`CollectiveFailed`
        sentinel when the retry budget is exhausted on a degradable phase
        (the step generator then falls back to stale state); re-raises on
        any other phase.  Backoff seconds are charged to the
        ``retry_backoff`` timer phase so degraded steps are visible in the
        simulated time ledger; each retry/fallback is warned through
        ``self.logger`` and marked on the trace.
        """
        policy = self.retry_policy
        tracer = self.world.tracer
        attempt = 0
        while True:
            try:
                return attempt_fn()
            except CollectiveError as exc:
                if policy is None:
                    raise
                if attempt < policy.max_retries:
                    backoff = policy.backoff(attempt)
                    self.world.timers.charge("retry_backoff", backoff)
                    self.world.overlap.record("retry_backoff", backoff, 0.0)
                    self.comm_retries += 1
                    attempt += 1
                    self.logger.warn(
                        f"{phase}: collective failed ({exc}); retry "
                        f"{attempt}/{policy.max_retries} after {backoff:.4g}s"
                    )
                    if tracer.enabled:
                        for r in range(self.world.size):
                            tracer.instant(
                                f"retry:{phase}", "fault", r,
                                attrs={"attempt": attempt},
                            )
                            tracer.span(
                                "retry_backoff", "comm", r, backoff,
                                attrs={
                                    "exposed": backoff,
                                    "hidden": 0.0,
                                    "bytes": 0.0,
                                    "retry_of": phase,
                                    "owner": r == 0,
                                },
                            )
                    continue
                if phase in policy.fallback_phases:
                    self.comm_fallbacks += 1
                    self.logger.warn(
                        f"{phase}: retries exhausted ({exc}); falling back "
                        "to stale state"
                    )
                    if tracer.enabled:
                        for r in range(self.world.size):
                            tracer.instant(f"fallback:{phase}", "fault", r)
                    return CollectiveFailed(phase=phase, error=exc)
                raise

    def step(self) -> None:
        """Execute one K-FAC step on every replica, in lockstep.

        Handles both the synchronous protocol (AllReduce/AllGather
        requests, resolved immediately) and the pipelined protocol
        (Launch requests answered with ``None`` while the collective runs
        asynchronously; the matching WaitRequest settles it with the
        minimum compute-overlap budget across replicas — the
        least-overlapped rank sets the barrier).
        """
        gens = [k.step_generator() for k in self.kfacs]
        requests = [_advance(g, first=True) for g in gens]
        # tag -> (handle, finalize(raw) -> per-rank responses, member ranks
        # whose compute budgets bound the hidden time, or None for all)
        pending: dict[str, tuple[Handle, Any, tuple[int, ...] | None]] = {}
        while any(r is not None for r in requests):
            kinds = {type(r) for r in requests}
            if len(kinds) != 1 or None in requests:
                raise RuntimeError(
                    f"replicas diverged: mixed requests {[type(r).__name__ for r in requests]}"
                )
            first = requests[0]
            if isinstance(first, AllReduceRequest):
                responses = self._run_allreduce(requests)  # type: ignore[arg-type]
            elif isinstance(first, AllGatherRequest):
                responses = self._run_allgather(requests)  # type: ignore[arg-type]
            elif isinstance(first, GroupAllGatherRequest):
                responses = self._run_group_allgather(requests)  # type: ignore[arg-type]
            elif isinstance(first, GroupBroadcastRequest):
                responses = self._run_group_broadcast(requests)  # type: ignore[arg-type]
            elif isinstance(
                first,
                (AllReduceLaunch, AllGatherLaunch, GroupAllGatherLaunch, GroupBroadcastLaunch),
            ):
                responses = self._launch(requests, pending)  # type: ignore[arg-type]
            elif isinstance(first, WaitRequest):
                responses = self._wait(requests, pending)  # type: ignore[arg-type]
            else:  # pragma: no cover - defensive
                raise TypeError(f"unknown request type {type(first)}")
            requests = [_advance(g, resp) for g, resp in zip(gens, responses)]
        if pending:  # pragma: no cover - defensive
            raise RuntimeError(f"step ended with unawaited collectives: {sorted(pending)}")

    def _run_allreduce(self, reqs: list[AllReduceRequest]) -> list[list[np.ndarray]]:
        shapes = [t.shape for t in reqs[0].tensors]
        for r, req in enumerate(reqs):
            if [t.shape for t in req.tensors] != shapes:
                raise RuntimeError(f"rank {r} allreduce shapes diverged")
        fused = [pack_arrays(req.tensors) for req in reqs]
        reduced = self._with_retry(
            reqs[0].phase,
            lambda: self.world.allreduce(
                fused, op=reqs[0].op, phase=reqs[0].phase, codec=reqs[0].comm_dtype
            ),
        )
        if isinstance(reduced, CollectiveFailed):
            return [reduced] * len(reqs)
        return [unpack_arrays(flat, shapes) for flat in reduced]

    def _run_allgather(self, reqs: list[AllGatherRequest]) -> list[list[np.ndarray]]:
        contributions = [req.tensor for req in reqs]
        gathered = self._with_retry(
            reqs[0].phase,
            lambda: self.world.allgather(contributions, phase=reqs[0].phase),
        )
        if isinstance(gathered, CollectiveFailed):
            return [gathered] * len(reqs)
        return gathered

    def _run_group_allgather(
        self, reqs: list[GroupAllGatherRequest]
    ) -> list[list[np.ndarray] | None]:
        """Group allgather: members contribute/receive, others get None."""
        groups = {req.ranks for req in reqs}
        if len(groups) != 1:
            raise RuntimeError(f"replicas diverged: mixed groups {sorted(groups)}")
        ranks = reqs[0].ranks
        for r, req in enumerate(reqs):
            if (req.tensor is None) != (r not in ranks):
                raise RuntimeError(
                    f"rank {r}: group-allgather contribution does not match "
                    f"membership of group {ranks}"
                )
        gathered = self._with_retry(
            reqs[0].phase,
            lambda: self.world.group_allgather(
                [reqs[r].tensor for r in ranks], ranks, phase=reqs[0].phase
            ),
        )
        if isinstance(gathered, CollectiveFailed):
            # every replica (members and non-members) observes the failure
            # so the stale-state ledgers stay in lockstep
            return [gathered] * len(reqs)
        by_rank = dict(zip(ranks, gathered))
        return [by_rank.get(r) for r in range(len(reqs))]

    def _run_group_broadcast(
        self, reqs: list[GroupBroadcastRequest]
    ) -> list[np.ndarray | None]:
        """Group-rooted broadcast: listed ranks receive, others get None."""
        keys = {(req.root, req.ranks) for req in reqs}
        if len(keys) != 1:
            raise RuntimeError(f"replicas diverged: mixed broadcast groups {sorted(keys)}")
        root, ranks = reqs[0].root, reqs[0].ranks
        if reqs[root].tensor is None:
            raise RuntimeError(f"broadcast root {root} provided no tensor")
        out = self._with_retry(
            reqs[0].phase,
            lambda: self.world.group_broadcast(
                reqs[root].tensor, root, ranks, phase=reqs[0].phase
            ),
        )
        if isinstance(out, CollectiveFailed):
            return [out] * len(reqs)
        by_rank = dict(zip(ranks, out))
        return [by_rank.get(r) for r in range(len(reqs))]

    def _launch(
        self,
        reqs: Sequence[AllReduceLaunch | AllGatherLaunch | GroupAllGatherLaunch | GroupBroadcastLaunch],
        pending: dict[str, tuple[Handle, Any, tuple[int, ...] | None]],
    ) -> list[None]:
        tags = {req.tag for req in reqs}
        if len(tags) != 1:
            raise RuntimeError(f"replicas diverged: mixed launch tags {sorted(tags)}")
        tag = reqs[0].tag
        if tag in pending:
            raise RuntimeError(f"duplicate launch tag {tag!r} within one step")
        if isinstance(reqs[0], AllReduceLaunch):
            shapes = [t.shape for t in reqs[0].tensors]
            for r, req in enumerate(reqs):
                if [t.shape for t in req.tensors] != shapes:
                    raise RuntimeError(f"rank {r} launch {tag!r} shapes diverged")
            fused = [pack_arrays(req.tensors) for req in reqs]
            handle = self._with_retry(
                reqs[0].phase,
                lambda: self.world.allreduce_async(
                    fused, op=reqs[0].op, phase=reqs[0].phase, codec=reqs[0].comm_dtype
                ),
            )
            finalize = lambda result: [unpack_arrays(flat, shapes) for flat in result]  # noqa: E731
            pending[tag] = (handle, finalize, None)
        elif isinstance(reqs[0], AllGatherLaunch):
            contributions = [req.tensor for req in reqs]
            handle = self._with_retry(
                reqs[0].phase,
                lambda: self.world.allgather_async(contributions, phase=reqs[0].phase),
            )
            pending[tag] = (handle, lambda result: result, None)
        elif isinstance(reqs[0], GroupAllGatherLaunch):
            groups = {req.ranks for req in reqs}
            if len(groups) != 1:
                raise RuntimeError(f"replicas diverged: mixed groups {sorted(groups)}")
            ranks = reqs[0].ranks
            for r, req in enumerate(reqs):
                if (req.tensor is None) != (r not in ranks):
                    raise RuntimeError(
                        f"rank {r}: group-allgather launch {tag!r} contribution "
                        f"does not match membership of group {ranks}"
                    )
            handle = self._with_retry(
                reqs[0].phase,
                lambda: self.world.group_allgather_async(
                    [reqs[r].tensor for r in ranks], ranks, phase=reqs[0].phase
                ),
            )

            def finalize(result, ranks=ranks, n=len(reqs)):
                by_rank = dict(zip(ranks, result))
                return [by_rank.get(r) for r in range(n)]

            pending[tag] = (handle, finalize, ranks)
        else:
            keys = {(req.root, req.ranks) for req in reqs}
            if len(keys) != 1:
                raise RuntimeError(f"replicas diverged: mixed broadcast groups {sorted(keys)}")
            root, ranks = reqs[0].root, reqs[0].ranks
            if reqs[root].tensor is None:
                raise RuntimeError(f"broadcast root {root} provided no tensor")
            handle = self._with_retry(
                reqs[0].phase,
                lambda: self.world.group_broadcast_async(
                    reqs[root].tensor, root, ranks, phase=reqs[0].phase
                ),
            )

            def finalize(result, ranks=ranks, n=len(reqs)):
                by_rank = dict(zip(ranks, result))
                return [by_rank.get(r) for r in range(n)]

            pending[tag] = (handle, finalize, ranks)
        return [None] * len(reqs)

    def _wait(
        self,
        reqs: list[WaitRequest],
        pending: dict[str, tuple[Handle, Any, tuple[int, ...] | None]],
    ) -> list[list[np.ndarray]]:
        tags = {req.tag for req in reqs}
        if len(tags) != 1:
            raise RuntimeError(f"replicas diverged: mixed wait tags {sorted(tags)}")
        tag = reqs[0].tag
        if tag not in pending:
            raise RuntimeError(f"wait on unknown tag {tag!r} (never launched?)")
        handle, finalize, member_ranks = pending.pop(tag)
        if isinstance(handle, CollectiveFailed):
            # the launch failed past the retry budget: every replica gets
            # the sentinel so the stale-state ledgers stay in lockstep
            return [handle] * len(reqs)
        # only participating ranks' compute can hide a group op's cost
        budgets = (
            [reqs[r].compute_seconds for r in member_ranks]
            if member_ranks is not None
            else [req.compute_seconds for req in reqs]
        )
        result = handle.wait(min(budgets))
        return finalize(result)


class SPMDDriver:
    """Per-rank driver using matched named collectives (threaded SPMD).

    Example
    -------
    >>> import numpy as np
    >>> from repro.comm.backend import World
    >>> from repro.comm.horovod import HorovodContext
    >>> from repro.core.distributed import SPMDDriver
    >>> from repro.core.preconditioner import KFAC
    >>> from repro.nn import Linear, Sequential
    >>> from repro.nn.loss import CrossEntropyLoss
    >>> def program(view):
    ...     model = Sequential(Linear(4, 3, rng=np.random.default_rng(1)))
    ...     kfac = KFAC(model, rank=view.rank, world_size=2, kfac_update_freq=1)
    ...     driver = SPMDDriver(kfac, HorovodContext(view))
    ...     loss_fn = CrossEntropyLoss()
    ...     _ = loss_fn(model(np.ones((4, 4), dtype=np.float32)), np.arange(4) % 3)
    ...     _ = model.backward(loss_fn.backward())
    ...     driver.step()
    ...     return kfac.steps
    >>> World(2).run_spmd(program)
    [1, 1]
    """

    def __init__(
        self,
        kfac: KFAC,
        hvd: HorovodContext,
        retry_policy: RetryPolicy | None = RetryPolicy(),
        logger: Logger = NULL_LOGGER,
    ) -> None:
        if kfac.world_size != hvd.size():
            raise ValueError(
                f"KFAC world_size {kfac.world_size} != hvd size {hvd.size()}"
            )
        if kfac.rank != hvd.rank():
            raise ValueError(f"KFAC rank {kfac.rank} != hvd rank {hvd.rank()}")
        self.kfac = kfac
        self.hvd = hvd
        self.retry_policy = retry_policy
        #: degraded-path events (retries, fallbacks) surface as warnings
        self.logger = logger
        self.comm_retries = 0
        self.comm_fallbacks = 0

    def _with_retry(self, phase: str, attempt_fn: Any) -> Any:
        """Per-rank bounded retry (see :meth:`PhaseController._with_retry`).

        The world distributes an injected failure to *every* posting rank
        in lockstep, so all members retry the same number of times and
        their matched-op generation counters stay aligned.  Backoff time
        is charged by rank 0 only (the world ledger is shared); each rank
        warns through its own ``logger`` and marks its own trace track.
        """
        policy = self.retry_policy
        tracer = self.hvd._view.world.tracer
        attempt = 0
        while True:
            try:
                return attempt_fn()
            except CollectiveError as exc:
                if policy is None:
                    raise
                ph = phase if phase is not None else (exc.phase or "")
                if attempt < policy.max_retries:
                    backoff = policy.backoff(attempt)
                    if self.kfac.rank == 0:
                        world = self.hvd._view.world
                        world.timers.charge("retry_backoff", backoff)
                        world.overlap.record("retry_backoff", backoff, 0.0)
                        if tracer.enabled:
                            tracer.span(
                                "retry_backoff", "comm", 0, backoff,
                                attrs={
                                    "exposed": backoff,
                                    "hidden": 0.0,
                                    "bytes": 0.0,
                                    "retry_of": ph,
                                    "owner": True,
                                },
                            )
                    self.comm_retries += 1
                    attempt += 1
                    self.logger.warn(
                        f"{ph}: collective failed ({exc}); retry "
                        f"{attempt}/{policy.max_retries} after {backoff:.4g}s"
                    )
                    if tracer.enabled:
                        tracer.instant(
                            f"retry:{ph}", "fault", self.kfac.rank,
                            attrs={"attempt": attempt},
                        )
                    continue
                if ph in policy.fallback_phases:
                    self.comm_fallbacks += 1
                    self.logger.warn(
                        f"{ph}: retries exhausted ({exc}); falling back "
                        "to stale state"
                    )
                    if tracer.enabled:
                        tracer.instant(f"fallback:{ph}", "fault", self.kfac.rank)
                    return CollectiveFailed(phase=ph, error=exc)
                raise

    def step(self) -> None:
        gen = self.kfac.step_generator()
        req = _advance(gen, first=True)
        seq = 0
        pending: dict[str, tuple[Handle, list[tuple[int, ...]] | None]] = {}
        while req is not None:
            if isinstance(req, AllReduceRequest):
                name = f"kfac:{req.phase}:{seq}"
                seq += 1
                shapes = [t.shape for t in req.tensors]
                flat = pack_arrays(req.tensors)
                reduced = self._with_retry(
                    req.phase,
                    lambda: self.hvd.allreduce(
                        flat, name=name, op=req.op, phase=req.phase, codec=req.comm_dtype
                    ),
                )
                if not isinstance(reduced, CollectiveFailed):
                    reduced = unpack_arrays(reduced, shapes)
                req = _advance(gen, reduced)
            elif isinstance(req, AllGatherRequest):
                name = f"kfac:{req.phase}:{seq}"
                seq += 1
                gathered = self._with_retry(
                    req.phase,
                    lambda: self.hvd.allgather(req.tensor, name=name, phase=req.phase),
                )
                req = _advance(gen, gathered)
            elif isinstance(req, GroupAllGatherRequest):
                # only group members post; the name must be stable per
                # *logical group* (not per yield position) because the
                # world's op-generation counters advance per posting rank —
                # a seq-based name would desync ranks whose membership
                # differs between steps.  Contiguous groups have distinct
                # leading ranks, so the leader identifies the group.
                name = f"kfac:{req.phase}:grp{req.ranks[0]}"
                if self.kfac.rank in req.ranks:
                    assert req.tensor is not None
                    gathered = self._with_retry(
                        req.phase,
                        lambda: self.hvd.group_allgather(
                            req.tensor, name=name, ranks=req.ranks, phase=req.phase
                        ),
                    )
                    req = _advance(gen, gathered)
                else:
                    # non-members never post, so they cannot observe a
                    # member-side failure: degradation is member-local
                    req = _advance(gen, None)
            elif isinstance(req, GroupBroadcastRequest):
                name = f"kfac:{req.phase}:root{req.root}"
                if self.kfac.rank in req.ranks:
                    payload = (
                        req.tensor
                        if self.kfac.rank == req.root
                        else np.zeros(0, dtype=np.float32)
                    )
                    assert payload is not None
                    got = self._with_retry(
                        req.phase,
                        lambda: self.hvd.group_broadcast(
                            payload, name=name, root=req.root, ranks=req.ranks,
                            phase=req.phase,
                        ),
                    )
                    req = _advance(gen, got)
                else:
                    req = _advance(gen, None)
            elif isinstance(req, AllReduceLaunch):
                # matched op names must be identical across ranks, so key
                # launches by tag (deterministic) rather than sequence
                if req.tag in pending:
                    raise RuntimeError(f"duplicate launch tag {req.tag!r} within one step")
                shapes = [t.shape for t in req.tensors]
                flat = pack_arrays(req.tensors)
                handle = self.hvd.allreduce_async(
                    flat,
                    name=f"kfac:{req.phase}:{req.tag}",
                    op=req.op,
                    phase=req.phase,
                    codec=req.comm_dtype,
                )
                pending[req.tag] = (handle, shapes)
                req = _advance(gen, None)
            elif isinstance(req, AllGatherLaunch):
                if req.tag in pending:
                    raise RuntimeError(f"duplicate launch tag {req.tag!r} within one step")
                handle = self.hvd.allgather_async(
                    req.tensor, name=f"kfac:{req.phase}:{req.tag}", phase=req.phase
                )
                pending[req.tag] = (handle, None)
                req = _advance(gen, None)
            elif isinstance(req, GroupAllGatherLaunch):
                if req.tag in pending:
                    raise RuntimeError(f"duplicate launch tag {req.tag!r} within one step")
                # stable per-logical-group name, same reasoning as the
                # blocking GroupAllGatherRequest above
                name = f"kfac:{req.phase}:grp{req.ranks[0]}"
                if self.kfac.rank in req.ranks:
                    assert req.tensor is not None
                    handle = self.hvd.group_allgather_async(
                        req.tensor, name=name, ranks=req.ranks, phase=req.phase
                    )
                else:
                    handle = LaunchedHandle(lambda ov: None)
                pending[req.tag] = (handle, None)
                req = _advance(gen, None)
            elif isinstance(req, GroupBroadcastLaunch):
                if req.tag in pending:
                    raise RuntimeError(f"duplicate launch tag {req.tag!r} within one step")
                name = f"kfac:{req.phase}:root{req.root}"
                if self.kfac.rank in req.ranks:
                    payload = (
                        req.tensor
                        if self.kfac.rank == req.root
                        else np.zeros(0, dtype=np.float32)
                    )
                    assert payload is not None
                    handle = self.hvd.group_broadcast_async(
                        payload, name=name, root=req.root, ranks=req.ranks,
                        phase=req.phase,
                    )
                else:
                    handle = LaunchedHandle(lambda ov: None)
                pending[req.tag] = (handle, None)
                req = _advance(gen, None)
            elif isinstance(req, WaitRequest):
                if req.tag not in pending:
                    raise RuntimeError(f"wait on unknown tag {req.tag!r} (never launched?)")
                handle, shapes = pending.pop(req.tag)
                # a failed launched collective raises at wait time; the
                # handle re-posts on each retry (its result is not cached
                # until a wait succeeds), keeping generations aligned
                result = self._with_retry(
                    None, lambda: handle.wait(req.compute_seconds)
                )
                if shapes is not None and not isinstance(result, CollectiveFailed):
                    result = unpack_arrays(result, shapes)
                req = _advance(gen, result)
            else:  # pragma: no cover - defensive
                raise TypeError(f"unknown request type {type(req)}")
        if pending:  # pragma: no cover - defensive
            raise RuntimeError(f"step ended with unawaited collectives: {sorted(pending)}")
