"""Distributed K-FAC gradient preconditioner — the paper's contribution.

Layout:

- :mod:`repro.core.factors` — Kronecker factor computation ``A``/``G`` for
  Linear and Conv2d (KFC math for convolutions) and running averages
  (Eqs. 5, 16, 17);
- :mod:`repro.core.inverse` — the two update algorithms the paper compares:
  explicit factored inverse (Eq. 11–12) and implicit eigendecomposition
  (Eqs. 13–15), plus dense reference operators for testing;
- :mod:`repro.core.layers` — per-layer handlers bridging module hooks to
  factor math;
- :mod:`repro.core.assignment` — factor -> worker placement (round-robin as
  in Algorithm 1; greedy size-balanced LPT as the §VI-C4 extension);
- :mod:`repro.core.clipping` — the Eq. 18 gradient-scaling factor;
- :mod:`repro.core.schedule` — damping decay and update-frequency decay;
- :mod:`repro.core.preconditioner` — the :class:`KFAC` preconditioner
  implementing Algorithm 1 as a driver-agnostic generator;
- :mod:`repro.core.distributed` — drivers: local, phase-style lockstep
  controller, and threaded SPMD adapter.
"""

from repro.core.assignment import (
    BlockMeta,
    FactorMeta,
    GroupPlacement,
    plan_block_metas,
    build_group_placement,
    grad_worker_count,
    grad_worker_groups,
    greedy_balanced_assignment,
    round_robin_assignment,
)
from repro.core.clipping import kl_clip_factor
from repro.core.factors import (
    conv2d_factor_A,
    conv2d_factor_A_from_patches,
    conv2d_factor_G,
    ema_update,
    linear_factor_A,
    linear_factor_G,
)
from repro.core.inverse import (
    FactorEig,
    dense_damped_inverse_apply,
    dense_fisher_block,
    eigendecompose,
    explicit_damped_inverse,
    precondition_eigen,
    precondition_inverse,
)
from repro.core.preconditioner import (
    COMM_OPT,
    HYBRID,
    LAYER_WISE,
    KFAC,
    KFACHyperParams,
)
from repro.core.distributed import (
    LocalDriver,
    PhaseController,
    SPMDDriver,
)
from repro.core.schedule import KFACParamScheduler

__all__ = [
    "KFAC",
    "KFACHyperParams",
    "COMM_OPT",
    "LAYER_WISE",
    "HYBRID",
    "LocalDriver",
    "PhaseController",
    "SPMDDriver",
    "KFACParamScheduler",
    "FactorMeta",
    "BlockMeta",
    "plan_block_metas",
    "round_robin_assignment",
    "greedy_balanced_assignment",
    "GroupPlacement",
    "build_group_placement",
    "grad_worker_count",
    "grad_worker_groups",
    "kl_clip_factor",
    "linear_factor_A",
    "linear_factor_G",
    "conv2d_factor_A",
    "conv2d_factor_A_from_patches",
    "conv2d_factor_G",
    "ema_update",
    "FactorEig",
    "eigendecompose",
    "explicit_damped_inverse",
    "precondition_eigen",
    "precondition_inverse",
    "dense_fisher_block",
    "dense_damped_inverse_apply",
]
