"""Per-layer K-FAC handlers.

A handler owns everything K-FAC knows about one supported module:

- captured activations / output-gradients (fed by module hooks);
- running-average factors ``A`` and ``G``;
- the current second-order state (eigendecompositions, or explicit damped
  inverses when running the Table I "inverse" variant);
- gradient packing: weight grad and bias grad are fused into one
  ``(d_out, d_in + 1)`` matrix so a single pair of factors preconditions
  both, exactly as the reference implementation does.

Supported families: ``Linear``, ``Conv2d``, ``Embedding`` (diagonal
gather-path ``A`` factor), and ``LayerNorm`` (elementwise affine on the
normalized activations).  Anything else is "ignored by the K-FAC
preconditioner and updated normally" (§V) — and reported through
``KFAC.unsupported_layers`` so the skip is never silent.
"""

from __future__ import annotations

import numpy as np

from repro.core.factors import (
    conv2d_factor_A,
    conv2d_factor_A_from_patches,
    conv2d_factor_G,
    ema_update,
    embedding_factor_A,
    linear_factor_A,
    linear_factor_G,
)
from repro.core.inverse import (
    FactorEig,
    eigendecompose,
    explicit_damped_inverse,
    precondition_eigen,
    precondition_inverse,
)
from repro.nn.layers import Conv2d, Linear
from repro.nn.module import Module
from repro.nn.transformer import Embedding, LayerNorm
from repro.tensor.workspace import Workspace, default_workspace

__all__ = [
    "KFACLayer",
    "LinearKFACLayer",
    "Conv2dKFACLayer",
    "EmbeddingKFACLayer",
    "LayerNormKFACLayer",
    "make_kfac_layer",
]


class KFACLayer:
    """Base K-FAC handler for one module."""

    def __init__(
        self, name: str, module: Module, workspace: Workspace | None = None
    ) -> None:
        self.name = name
        self.module = module
        self.workspace = workspace if workspace is not None else default_workspace()
        self.a_input: np.ndarray | None = None
        self.g_output: np.ndarray | None = None
        self.A: np.ndarray | None = None  # running-average activation factor
        self.G: np.ndarray | None = None  # running-average grad factor
        self.eig_A: FactorEig | BlockFactorEig | None = None
        self.eig_G: FactorEig | BlockFactorEig | None = None
        self.inv_A: np.ndarray | None = None
        self.inv_G: np.ndarray | None = None
        # per-block eigenbases staged by the distributed install path until
        # every block of a factor has arrived: kind -> {block index -> eig}
        self._pending_block_eig: dict[str, dict[int, FactorEig]] = {}

    # -- shapes ----------------------------------------------------------
    @property
    def has_bias(self) -> bool:
        return getattr(self.module, "bias", None) is not None

    @property
    def a_dim(self) -> int:
        raise NotImplementedError

    @property
    def g_dim(self) -> int:
        raise NotImplementedError

    # -- hook sinks -----------------------------------------------------
    def save_input(self, x: np.ndarray) -> None:
        self.a_input = x

    def save_grad_output(self, g: np.ndarray) -> None:
        self.g_output = g

    # -- factor math ------------------------------------------------------
    def compute_A(self) -> np.ndarray:
        raise NotImplementedError

    def compute_G(self) -> np.ndarray:
        raise NotImplementedError

    def update_factors(self, decay: float) -> None:
        """Compute current factors from captures and fold into the EMAs.

        Fresh factor readings come out of the workspace arena and go back
        into it as soon as they are folded into the running average, so the
        steady-state factor stage allocates nothing.
        """
        if self.a_input is None or self.g_output is None:
            raise RuntimeError(
                f"layer {self.name}: factor update requested but no "
                "activations/gradients were captured this step"
            )
        new_A = self.compute_A()
        self.A = ema_update(self.A, new_A, decay, self.workspace)
        if new_A is not self.A:
            self.workspace.release(new_A)
        new_G = self.compute_G()
        self.G = ema_update(self.G, new_G, decay, self.workspace)
        if new_G is not self.G:
            self.workspace.release(new_G)
        # release captures; they are only valid for this iteration
        self._release_captures()

    def _release_captures(self) -> None:
        """Drop captured activations/gradients (subclasses may recycle)."""
        self.a_input = None
        self.g_output = None

    # -- second-order state -------------------------------------------------
    def compute_eigen(self) -> tuple[FactorEig, FactorEig]:
        """Eigendecompose both running-average factors (Eq. 13 inputs)."""
        if self.A is None or self.G is None:
            raise RuntimeError(f"layer {self.name}: factors not yet computed")
        return eigendecompose(self.A), eigendecompose(self.G)

    def compute_inverses(self, gamma: float) -> tuple[np.ndarray, np.ndarray]:
        """Explicit damped inverses of both factors (Eq. 11)."""
        if self.A is None or self.G is None:
            raise RuntimeError(f"layer {self.name}: factors not yet computed")
        return explicit_damped_inverse(self.A, gamma), explicit_damped_inverse(self.G, gamma)

    # -- gradient packing ---------------------------------------------------
    def get_grad_matrix(self) -> np.ndarray:
        """Weight grad as ``(g_dim, a_dim)``, bias grad in the last column.

        Always a copy — never a view of ``.grad`` — so callers can hold the
        raw gradient across a later :meth:`set_grad_matrix`.
        """
        w = self.module.weight.grad  # type: ignore[attr-defined]
        mat = w.reshape(self.g_dim, -1)
        if self.has_bias:
            b = self.module.bias.grad  # type: ignore[attr-defined]
            return np.concatenate([mat, b[:, None]], axis=1)
        return mat.copy()

    def set_grad_matrix(self, mat: np.ndarray) -> None:
        """Scatter a packed gradient matrix back into parameter ``.grad``s."""
        if mat.shape != (self.g_dim, self.a_dim):
            raise ValueError(
                f"layer {self.name}: grad matrix {mat.shape} != "
                f"({self.g_dim}, {self.a_dim})"
            )
        w = self.module.weight  # type: ignore[attr-defined]
        if self.has_bias:
            w.grad[...] = mat[:, :-1].reshape(w.grad.shape)
            self.module.bias.grad[...] = mat[:, -1]  # type: ignore[attr-defined]
        else:
            w.grad[...] = mat.reshape(w.grad.shape)

    def install_block_eig(
        self,
        kind: str,
        block: int,
        eig: FactorEig,
        bounds: tuple[tuple[int, int], ...],
    ) -> None:
        """Stage one block's eigendecomposition; assemble when all arrived.

        Blocks of one factor may arrive in any order (they are assigned to
        different workers and shipped in different buckets); the factor's
        ``eig_A``/``eig_G`` flips to the new :class:`BlockFactorEig`
        atomically once the last block lands, so preconditioning never
        sees a half-refreshed basis.
        """
        # imported lazily: repro.approx.blockeig itself imports
        # repro.core.inverse, and a module-level import here would close
        # that loop when repro.approx is the first package loaded
        from repro.approx.blockeig import BlockFactorEig

        if not 0 <= block < len(bounds):
            raise ValueError(
                f"layer {self.name}: block {block} out of range for "
                f"{len(bounds)} bounds"
            )
        parts = self._pending_block_eig.setdefault(kind, {})
        parts[block] = eig
        if len(parts) == len(bounds):
            assembled = BlockFactorEig(
                blocks=tuple(parts[j] for j in range(len(bounds))), bounds=tuple(bounds)
            )
            if kind == "A":
                self.eig_A = assembled
            else:
                self.eig_G = assembled
            del self._pending_block_eig[kind]

    def precondition(self, grad_mat: np.ndarray, gamma: float, use_eigen: bool) -> np.ndarray:
        """Apply the current second-order state to a packed gradient."""
        from repro.approx.blockeig import BlockFactorEig, precondition_block_eigen

        if use_eigen:
            if self.eig_A is None or self.eig_G is None:
                raise RuntimeError(f"layer {self.name}: eigendecompositions not ready")
            if isinstance(self.eig_A, BlockFactorEig) or isinstance(
                self.eig_G, BlockFactorEig
            ):
                return precondition_block_eigen(grad_mat, self.eig_A, self.eig_G, gamma)
            return precondition_eigen(grad_mat, self.eig_A, self.eig_G, gamma)
        if self.inv_A is None or self.inv_G is None:
            raise RuntimeError(f"layer {self.name}: inverses not ready")
        return precondition_inverse(grad_mat, self.inv_A, self.inv_G)

    @property
    def ready(self) -> bool:
        """True once second-order state exists (first K-FAC update done)."""
        return (self.eig_A is not None and self.eig_G is not None) or (
            self.inv_A is not None and self.inv_G is not None
        )


class LinearKFACLayer(KFACLayer):
    """Handler for :class:`repro.nn.layers.Linear`."""

    def __init__(
        self, name: str, module: Linear, workspace: Workspace | None = None
    ) -> None:
        super().__init__(name, module, workspace)
        self._module: Linear = module

    @property
    def a_dim(self) -> int:
        return self._module.in_features + (1 if self.has_bias else 0)

    @property
    def g_dim(self) -> int:
        return self._module.out_features

    def compute_A(self) -> np.ndarray:
        assert self.a_input is not None
        return linear_factor_A(self.a_input, self.has_bias, self.workspace)

    def compute_G(self) -> np.ndarray:
        assert self.g_output is not None
        return linear_factor_G(self.g_output, batch_averaged=True, workspace=self.workspace)


class Conv2dKFACLayer(KFACLayer):
    """Handler for :class:`repro.nn.layers.Conv2d` (KFC factors).

    The capture hook claims the im2col patch matrix the module's forward
    already produced (see :meth:`repro.nn.layers.Conv2d.claim_patches`), so
    ``compute_A`` never re-lowers the activations; the claimed buffer is
    recycled into the module's workspace once the factor is folded in.
    """

    def __init__(
        self, name: str, module: Conv2d, workspace: Workspace | None = None
    ) -> None:
        super().__init__(name, module, workspace)
        self._module: Conv2d = module
        self._input_is_patches = False

    @property
    def a_dim(self) -> int:
        kh, kw = self._module.kernel_size
        return self._module.in_channels * kh * kw + (1 if self.has_bias else 0)

    @property
    def g_dim(self) -> int:
        return self._module.out_channels

    def save_input(self, x: np.ndarray) -> None:
        cols = self._module.claim_patches()
        if cols is not None:
            self.a_input = cols
            self._input_is_patches = True
        else:  # no cached lowering (e.g. hook fired without a forward)
            self.a_input = x
            self._input_is_patches = False

    def compute_A(self) -> np.ndarray:
        assert self.a_input is not None
        if self._input_is_patches:
            return conv2d_factor_A_from_patches(
                self.a_input, self.has_bias, self.workspace
            )
        return conv2d_factor_A(
            self.a_input,
            self._module.kernel_size,
            self._module.stride,
            self._module.padding,
            self.has_bias,
            self.workspace,
        )

    def compute_G(self) -> np.ndarray:
        assert self.g_output is not None
        return conv2d_factor_G(self.g_output, batch_averaged=True, workspace=self.workspace)

    def _release_captures(self) -> None:
        if self._input_is_patches and self.a_input is not None:
            self._module.workspace.release(self.a_input)
        self._input_is_patches = False
        super()._release_captures()


class EmbeddingKFACLayer(KFACLayer):
    """Handler for :class:`repro.nn.transformer.Embedding`.

    The layer is a Linear over one-hot rows, so ``A`` is the *diagonal*
    ``diag(bincount(indices)) / rows`` — built straight from the captured
    index array via :func:`repro.core.factors.embedding_factor_A`; the
    dense one-hot matrix is never materialized.  ``G`` is the ordinary
    Linear output-gradient covariance over the ``N*T`` token rows.

    The module's weight is stored ``(num_embeddings, embedding_dim)`` —
    the transpose of the pipeline's ``(g_dim, a_dim)`` packing — so the
    grad-matrix accessors transpose both ways.
    """

    def __init__(
        self, name: str, module: Embedding, workspace: Workspace | None = None
    ) -> None:
        super().__init__(name, module, workspace)
        self._module: Embedding = module

    @property
    def a_dim(self) -> int:
        return self._module.num_embeddings

    @property
    def g_dim(self) -> int:
        return self._module.embedding_dim

    def compute_A(self) -> np.ndarray:
        assert self.a_input is not None
        return embedding_factor_A(
            self.a_input,
            self._module.num_embeddings,
            dtype=self._module.weight.data.dtype,
            workspace=self.workspace,
        )

    def compute_G(self) -> np.ndarray:
        assert self.g_output is not None
        g = np.ascontiguousarray(
            self.g_output.reshape(-1, self._module.embedding_dim)
        )
        return linear_factor_G(g, batch_averaged=True, workspace=self.workspace)

    def get_grad_matrix(self) -> np.ndarray:
        return np.ascontiguousarray(self._module.weight.grad.T)

    def set_grad_matrix(self, mat: np.ndarray) -> None:
        if mat.shape != (self.g_dim, self.a_dim):
            raise ValueError(
                f"layer {self.name}: grad matrix {mat.shape} != "
                f"({self.g_dim}, {self.a_dim})"
            )
        self._module.weight.grad[...] = mat.T


class LayerNormKFACLayer(KFACLayer):
    """Handler for :class:`repro.nn.transformer.LayerNorm`.

    The affine part ``y = w * x_hat + b`` is an *elementwise* Linear over
    the normalized activations, so the capture uses ``x_hat`` (the
    module's cache, not the hook's pre-normalization input) with the
    standard biased Linear factors.  The full ``(d, d+1)`` natural
    gradient is then projected back onto the feasible set — the diagonal
    of the weight part plus the bias column — since LayerNorm has only
    ``2d`` free parameters (see ``docs/workloads.md``).
    """

    def __init__(
        self, name: str, module: LayerNorm, workspace: Workspace | None = None
    ) -> None:
        super().__init__(name, module, workspace)
        self._module: LayerNorm = module

    @property
    def a_dim(self) -> int:
        return self._module.dim + 1  # weight diagonal + bias column

    @property
    def g_dim(self) -> int:
        return self._module.dim

    def save_input(self, x: np.ndarray) -> None:
        # the hook hands us the pre-normalization input; the affine
        # parameters act on x_hat, which the module caches in forward
        x_hat = self._module.cached_normalized
        self.a_input = x_hat if x_hat is not None else x

    def compute_A(self) -> np.ndarray:
        assert self.a_input is not None
        a = np.ascontiguousarray(self.a_input.reshape(-1, self._module.dim))
        return linear_factor_A(a, has_bias=True, workspace=self.workspace)

    def compute_G(self) -> np.ndarray:
        assert self.g_output is not None
        g = np.ascontiguousarray(self.g_output.reshape(-1, self._module.dim))
        return linear_factor_G(g, batch_averaged=True, workspace=self.workspace)

    def get_grad_matrix(self) -> np.ndarray:
        d = self._module.dim
        w_grad = self._module.weight.grad
        mat = np.zeros((d, d + 1), dtype=w_grad.dtype)
        idx = np.arange(d)
        mat[idx, idx] = w_grad
        mat[:, d] = self._module.bias.grad
        return mat

    def set_grad_matrix(self, mat: np.ndarray) -> None:
        if mat.shape != (self.g_dim, self.a_dim):
            raise ValueError(
                f"layer {self.name}: grad matrix {mat.shape} != "
                f"({self.g_dim}, {self.a_dim})"
            )
        d = self._module.dim
        idx = np.arange(d)
        self._module.weight.grad[...] = mat[idx, idx]
        self._module.bias.grad[...] = mat[:, d]


def make_kfac_layer(
    name: str, module: Module, workspace: Workspace | None = None
) -> KFACLayer | None:
    """Return a handler for supported module types, else ``None``."""
    if isinstance(module, Linear):
        return LinearKFACLayer(name, module, workspace)
    if isinstance(module, Conv2d):
        return Conv2dKFACLayer(name, module, workspace)
    if isinstance(module, Embedding):
        return EmbeddingKFACLayer(name, module, workspace)
    if isinstance(module, LayerNorm):
        return LayerNormKFACLayer(name, module, workspace)
    return None
