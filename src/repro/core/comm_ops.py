"""Communication requests yielded by the K-FAC step generator.

Algorithm 1 is implemented exactly once, as a generator that *yields*
communication requests and receives their results (see
:mod:`repro.core.preconditioner`).  Drivers in
:mod:`repro.core.distributed` execute those requests:

- locally (world of one — requests are satisfied with the local data),
- phase-style (a lockstep controller matching requests across simulated
  workers and executing fused :class:`repro.comm.World` collectives), or
- SPMD-style (each rank's thread resolves requests through matched
  Horovod-like collectives).

This mirrors how the real implementation separates the K-FAC math from
Horovod communication handles (§V-A).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["AllReduceRequest", "AllGatherRequest", "pack_arrays", "unpack_arrays"]


@dataclass
class AllReduceRequest:
    """Average (or sum) each tensor across all workers.

    ``tensors`` is this rank's contribution; the response is the list of
    reduced tensors in the same order/shapes.  Drivers fuse the list into
    one flat buffer (Horovod fusion-buffer behaviour).
    """

    tensors: list[np.ndarray]
    op: str = "average"
    phase: str = "allreduce"


@dataclass
class AllGatherRequest:
    """Gather one flat per-rank contribution from every worker.

    The response is ``[contribution_rank0, ..., contribution_rank{P-1}]``.
    Contributions may have different lengths (factor shards differ per
    worker).
    """

    tensor: np.ndarray
    phase: str = "allgather"
    meta: dict = field(default_factory=dict)


def pack_arrays(arrays: list[np.ndarray], dtype: str = "float32") -> np.ndarray:
    """Concatenate arrays into one flat buffer (deterministic order)."""
    if not arrays:
        return np.zeros(0, dtype=dtype)
    return np.concatenate([np.ascontiguousarray(a, dtype=dtype).reshape(-1) for a in arrays])


def unpack_arrays(flat: np.ndarray, shapes: list[tuple[int, ...]]) -> list[np.ndarray]:
    """Split a flat buffer back into arrays of the given shapes."""
    sizes = [int(np.prod(s)) if s else 1 for s in shapes]
    total = sum(sizes)
    if flat.size != total:
        raise ValueError(f"flat buffer has {flat.size} elements, shapes need {total}")
    out = []
    offset = 0
    for shape, size in zip(shapes, sizes):
        out.append(flat[offset : offset + size].reshape(shape).copy())
        offset += size
    return out
