"""Communication requests yielded by the K-FAC step generator.

Algorithm 1 is implemented exactly once, as a generator that *yields*
communication requests and receives their results (see
:mod:`repro.core.preconditioner`).  Drivers in
:mod:`repro.core.distributed` execute those requests:

- locally (world of one — requests are satisfied with the local data),
- phase-style (a lockstep controller matching requests across simulated
  workers and executing fused :class:`repro.comm.World` collectives), or
- SPMD-style (each rank's thread resolves requests through matched
  Horovod-like collectives).

This mirrors how the real implementation separates the K-FAC math from
Horovod communication handles (§V-A).

Synchronous protocol
--------------------
``yield AllReduceRequest(tensors, op, phase)`` → receives the reduced
tensors; ``yield AllGatherRequest(tensor, phase)`` → receives the list of
every rank's contribution.  The driver blocks on the collective before
resuming the generator.

Asynchronous (pipelined) protocol
---------------------------------
The SPD-KFAC-style pipeline splits every collective into a *launch* and a
*wait* so the generator can interleave local compute with in-flight
communication:

1. ``yield AllReduceLaunch(tensors, op, phase, tag)`` (or
   :class:`AllGatherLaunch`) — the driver starts the collective and
   resumes the generator immediately with ``None``.  ``tag`` must be
   unique within the step and identical across ranks (lockstep drivers
   match launches by position *and* tag).
2. The generator performs local work (e.g. eigendecomposing factor
   chunks whose reduction already completed), accumulating a
   *deterministic* estimate of the simulated seconds spent (see
   :func:`repro.comm.engine.estimate_second_order_seconds`).
3. ``yield WaitRequest(tag, compute_seconds)`` — the driver resolves the
   matching launch and responds with the collective's result (same shape
   as the synchronous response).  ``compute_seconds`` is the local
   compute performed since the previous wait; the world credits
   ``min(compute_seconds across ranks)`` of the op's cost as *hidden*
   (overlapped) rather than exposed time.

Every rank must wait every tag it launched, in the same order — drivers
may deadlock-check but do not reorder.  A generator that never launches
asynchronously is a valid degenerate case (the synchronous protocol).

Group collectives participate in the same protocol:
:class:`GroupAllGatherLaunch`/:class:`GroupBroadcastLaunch` start the
group op and a later :class:`WaitRequest` on the same ``tag`` resolves
it, so the gradient-worker-fraction share steps can overlap with other
in-flight work (the task-graph scheduler in :mod:`repro.sched` relies on
this).  Like their blocking counterparts, *every* rank yields the launch
and the wait in lockstep — non-members simply pass ``tensor=None`` and
receive ``None``.

Packing
-------
:func:`pack_arrays`/:func:`unpack_arrays` flatten tensor groups for fused
transport.  Packing *preserves the caller's dtype* (promoting mixed inputs
via ``np.result_type``); a float64 factor crossing a worker boundary comes
back float64 — the historical hard-coded ``float32`` downcast silently
degraded multi-worker precision relative to single-worker runs.

:func:`pack_symmetric`/:func:`unpack_symmetric` are the symmetry-aware
variant used by the factor allreduce (both the synchronous request and the
pipelined bucket path): each ``d x d`` factor travels as its
``d*(d+1)/2``-element upper triangle and is mirrored back on arrival —
lossless for the exactly-symmetric factors the syrk Gram kernel produces,
and a ~2x reduction in factor-stage bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.comm.fusion import tri_pack, tri_unpack

__all__ = [
    "AllReduceRequest",
    "AllGatherRequest",
    "AllReduceLaunch",
    "AllGatherLaunch",
    "GroupAllGatherRequest",
    "GroupBroadcastRequest",
    "GroupAllGatherLaunch",
    "GroupBroadcastLaunch",
    "WaitRequest",
    "pack_arrays",
    "unpack_arrays",
    "pack_symmetric",
    "unpack_symmetric",
]


@dataclass
class AllReduceRequest:
    """Average (or sum) each tensor across all workers.

    ``tensors`` is this rank's contribution; the response is the list of
    reduced tensors in the same order/shapes.  Drivers fuse the list into
    one flat buffer (Horovod fusion-buffer behaviour).
    """

    tensors: list[np.ndarray]
    op: str = "average"
    phase: str = "allreduce"
    #: wire compression name ("fp16"/"bf16"); None = dtype-preserving
    comm_dtype: str | None = None


@dataclass
class AllGatherRequest:
    """Gather one flat per-rank contribution from every worker.

    The response is ``[contribution_rank0, ..., contribution_rank{P-1}]``.
    Contributions may have different lengths (factor shards differ per
    worker).
    """

    tensor: np.ndarray
    phase: str = "allgather"
    meta: dict = field(default_factory=dict)


@dataclass
class AllReduceLaunch:
    """Start an allreduce without blocking; resolved by a later WaitRequest.

    The driver responds ``None`` immediately.  ``tag`` identifies the op
    within the step and must match across ranks.
    """

    tensors: list[np.ndarray]
    op: str = "average"
    phase: str = "allreduce"
    tag: str = ""
    #: wire compression name ("fp16"/"bf16"); None = dtype-preserving
    comm_dtype: str | None = None


@dataclass
class AllGatherLaunch:
    """Start an allgather without blocking; resolved by a later WaitRequest."""

    tensor: np.ndarray
    phase: str = "allgather"
    tag: str = ""
    meta: dict = field(default_factory=dict)


@dataclass
class GroupAllGatherRequest:
    """Allgather restricted to a rank subset (a gradient-worker group).

    Every rank yields this request in lockstep, but only ranks listed in
    ``ranks`` contribute a tensor (others pass ``None``) and only they
    receive the response: the list of members' contributions ordered as
    ``ranks``.  Non-members are resumed with ``None``.  The rank order in
    ``ranks`` is the group's ring order (root first) and must be
    identical on every rank.
    """

    tensor: np.ndarray | None
    ranks: tuple[int, ...]
    phase: str = "allgather"
    meta: dict = field(default_factory=dict)


@dataclass
class GroupBroadcastRequest:
    """Broadcast from ``root`` to a rank subset.

    Used by the gradient-worker-fraction strategy's second stage: the
    group root ships the final preconditioned gradients to the ranks
    *outside* the gradient-worker group, so ``ranks`` is
    ``(root, *non_members)``.  Only ``root`` provides ``tensor``; every
    listed rank is resumed with the broadcast value, everyone else with
    ``None``.
    """

    tensor: np.ndarray | None
    root: int
    ranks: tuple[int, ...]
    phase: str = "broadcast"


@dataclass
class GroupAllGatherLaunch:
    """Start a group allgather without blocking; resolved by a WaitRequest.

    The asynchronous twin of :class:`GroupAllGatherRequest`: every rank
    yields the launch in lockstep (non-members with ``tensor=None``) and
    later yields ``WaitRequest(tag)``; members receive the list of member
    contributions ordered as ``ranks``, non-members ``None``.  Lets the
    gradient-worker eigenbasis share overlap with in-flight factor
    buckets instead of running synchronously after them.
    """

    tensor: np.ndarray | None
    ranks: tuple[int, ...]
    phase: str = "allgather"
    tag: str = ""
    meta: dict = field(default_factory=dict)


@dataclass
class GroupBroadcastLaunch:
    """Start a group broadcast without blocking; resolved by a WaitRequest.

    Asynchronous twin of :class:`GroupBroadcastRequest`: only ``root``
    provides ``tensor``; at the matching wait every rank listed in
    ``ranks`` receives the broadcast value, everyone else ``None``.
    """

    tensor: np.ndarray | None
    root: int
    ranks: tuple[int, ...]
    phase: str = "broadcast"
    tag: str = ""


@dataclass
class WaitRequest:
    """Block on a previously launched collective identified by ``tag``.

    ``compute_seconds`` is the *simulated* local compute performed since
    the previous wait (deterministic estimate, never wall clock); the
    driver forwards it as the overlap budget so that much of the op's cost
    is accounted as hidden rather than exposed.
    """

    tag: str
    compute_seconds: float = 0.0


def pack_arrays(arrays: list[np.ndarray], dtype: str | np.dtype | None = None) -> np.ndarray:
    """Concatenate arrays into one flat buffer (deterministic order).

    The buffer dtype defaults to ``np.result_type`` of the inputs, so the
    caller's precision survives the collective round trip; pass ``dtype``
    explicitly to force a transport precision (e.g. empty contributions
    that must match peers' dtype).
    """
    if not arrays:
        return np.zeros(0, dtype=dtype if dtype is not None else "float32")
    if dtype is None:
        dtype = np.result_type(*arrays)
    return np.concatenate([np.ascontiguousarray(a, dtype=dtype).reshape(-1) for a in arrays])


def pack_symmetric(factors: Sequence[np.ndarray]) -> list[np.ndarray]:
    """Triangular-pack each square symmetric factor for transport."""
    return [tri_pack(f) for f in factors]


def unpack_symmetric(flats: Sequence[np.ndarray], dims: Sequence[int]) -> list[np.ndarray]:
    """Rebuild full symmetric factors from packed triangles."""
    if len(flats) != len(dims):
        raise ValueError(f"got {len(flats)} packed factors for {len(dims)} dims")
    return [tri_unpack(flat, d) for flat, d in zip(flats, dims)]


def unpack_arrays(flat: np.ndarray, shapes: list[tuple[int, ...]]) -> list[np.ndarray]:
    """Split a flat buffer back into arrays of the given shapes."""
    sizes = [int(np.prod(s)) if s else 1 for s in shapes]
    total = sum(sizes)
    if flat.size != total:
        raise ValueError(f"flat buffer has {flat.size} elements, shapes need {total}")
    out = []
    offset = 0
    for shape, size in zip(shapes, sizes):
        out.append(flat[offset : offset + size].reshape(shape).copy())
        offset += size
    return out
