"""Gradient scaling after preconditioning (Eq. 18).

The preconditioned gradient can be much larger than the raw gradient early
in training; the paper rescales it by

    nu = min(1, sqrt(kappa / (alpha^2 * sum_i |precond_i . grad_i|)))

"to prevent the norm of [the preconditioned gradient] becoming large
compared to w" — the same KL-clip used in the reference implementation
(kappa ~ 1e-3).
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

__all__ = ["kl_clip_factor"]


def kl_clip_factor(
    precond_grads: Sequence[np.ndarray],
    raw_grads: Sequence[np.ndarray],
    lr: float,
    kl_clip: float = 1e-3,
    eps: float = 1e-16,
) -> float:
    """Compute the Eq. 18 scale ``nu`` over all preconditioned layers.

    Parameters
    ----------
    precond_grads / raw_grads:
        Matched sequences of preconditioned and raw gradient arrays.
    lr:
        Current learning rate ``alpha``.
    kl_clip:
        The user constant ``kappa``.

    Example
    -------
    >>> import numpy as np
    >>> from repro.core.clipping import kl_clip_factor
    >>> g = [np.ones((2, 2))]
    >>> nu = kl_clip_factor(g, g, lr=0.1, kl_clip=1e-3)
    >>> 0.0 < nu <= 1.0       # min(1, sqrt(kappa / sum)) scaling
    True
    """
    if len(precond_grads) != len(raw_grads):
        raise ValueError(
            f"mismatched lists: {len(precond_grads)} precond vs {len(raw_grads)} raw"
        )
    if kl_clip <= 0:
        raise ValueError(f"kl_clip must be positive, got {kl_clip}")
    vg_sum = 0.0
    for pg, g in zip(precond_grads, raw_grads):
        if pg.shape != g.shape:
            raise ValueError(f"shape mismatch {pg.shape} vs {g.shape}")
        # accumulate the Eq. 18 inner products in float64 regardless of the
        # gradient dtype: fp16 grads of magnitude ~1e2 already overflow a
        # half-precision product sum (max 65504), and tiny ones underflow
        # to a spuriously-clipped nu
        inner = np.dot(
            pg.ravel().astype(np.float64, copy=False),
            g.ravel().astype(np.float64, copy=False),
        )
        vg_sum += abs(float(inner)) * lr * lr
    if vg_sum <= eps:
        return 1.0
    return min(1.0, math.sqrt(kl_clip / vg_sum))
