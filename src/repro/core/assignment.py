"""Factor -> worker placement policies.

Algorithm 1 line 9: "Assign factors A_{0:L-1} and G_{1:L} to unique workers"
in a *round-robin* fashion.  §VI-C4 diagnoses the resulting load imbalance
(factor sizes vary by orders of magnitude, Table VI) and proposes
size-balanced placement as future work — we implement that too, as a
greedy longest-processing-time (LPT) heuristic on a cubic cost model, and
benchmark both (``bench_ablation_placement``).

The same module also provides layer-wise assignment for the K-FAC-lw
baseline, where *both* factors of a layer (and its gradient
preconditioning) live on one worker — the scheme of Osawa et al. [6] that
the paper improves upon.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

__all__ = [
    "FactorMeta",
    "eig_cost",
    "round_robin_assignment",
    "greedy_balanced_assignment",
    "layer_wise_assignment",
    "worker_costs",
]


@dataclass(frozen=True)
class FactorMeta:
    """Identity and size of one Kronecker factor."""

    layer: str  # owning layer name
    kind: str  # "A" or "G"
    dim: int  # square matrix dimension

    @property
    def key(self) -> str:
        return f"{self.layer}/{self.kind}"

    @property
    def n_elements(self) -> int:
        return self.dim * self.dim


def eig_cost(meta: FactorMeta) -> float:
    """Relative eigendecomposition cost, ``O(n^3)``."""
    return float(meta.dim) ** 3


def round_robin_assignment(
    factors: Sequence[FactorMeta], n_workers: int
) -> dict[str, int]:
    """Paper placement: factor ``j`` (enumeration order) -> worker ``j % P``.

    Note both factors of one layer generally land on *different* workers —
    the "double the worker utilization" property of §IV-C.
    """
    if n_workers < 1:
        raise ValueError(f"n_workers must be >= 1, got {n_workers}")
    return {meta.key: i % n_workers for i, meta in enumerate(factors)}


def greedy_balanced_assignment(
    factors: Sequence[FactorMeta],
    n_workers: int,
    cost_fn: Callable[[FactorMeta], float] = eig_cost,
) -> dict[str, int]:
    """LPT heuristic: sort by cost descending, give each to the least-loaded
    worker.  This is the §VI-C4 "placement policy that uses factor size as
    a heuristic for the eigen decomposition time"."""
    if n_workers < 1:
        raise ValueError(f"n_workers must be >= 1, got {n_workers}")
    loads = [0.0] * n_workers
    assignment: dict[str, int] = {}
    order = sorted(factors, key=cost_fn, reverse=True)
    for meta in order:
        worker = min(range(n_workers), key=loads.__getitem__)
        assignment[meta.key] = worker
        loads[worker] += cost_fn(meta)
    return assignment


def layer_wise_assignment(
    layer_names: Sequence[str], n_workers: int
) -> dict[str, int]:
    """K-FAC-lw placement: layer ``i`` -> worker ``i % P`` (whole layer)."""
    if n_workers < 1:
        raise ValueError(f"n_workers must be >= 1, got {n_workers}")
    return {name: i % n_workers for i, name in enumerate(layer_names)}


def worker_costs(
    factors: Sequence[FactorMeta],
    assignment: dict[str, int],
    n_workers: int,
    cost_fn: Callable[[FactorMeta], float] = eig_cost,
) -> list[float]:
    """Aggregate assigned cost per worker (Table VI's imbalance metric)."""
    loads = [0.0] * n_workers
    for meta in factors:
        loads[assignment[meta.key]] += cost_fn(meta)
    return loads
