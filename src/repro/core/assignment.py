"""Factor -> worker placement policies.

Algorithm 1 line 9: "Assign factors A_{0:L-1} and G_{1:L} to unique workers"
in a *round-robin* fashion.  §VI-C4 diagnoses the resulting load imbalance
(factor sizes vary by orders of magnitude, Table VI) and proposes
size-balanced placement as future work — we implement that too, as a
greedy longest-processing-time (LPT) heuristic on a cubic cost model, and
benchmark both (``bench_ablation_placement``).

The same module also provides layer-wise assignment for the K-FAC-lw
baseline, where *both* factors of a layer (and its gradient
preconditioning) live on one worker — the scheme of Osawa et al. [6] that
the paper improves upon.

Between those two extremes sits the KAISA-style *gradient-worker
fraction* (arXiv:2107.01739): each layer gets a **gradient-worker
group** of ``max(1, round(f * P))`` ranks that hold the layer's
eigendecompositions and compute its preconditioned gradient locally;
the remaining ranks receive only the final preconditioned gradient via
a group-rooted broadcast.  ``f = 1/P`` recovers the layer-wise
placement, ``f = 1`` recovers the comm-opt placement, and intermediate
values trade per-rank eigenbasis memory against second-stage
communication.  :func:`build_group_placement` constructs the groups and
the within-group factor assignment; :class:`GroupPlacement` carries the
placement metadata the preconditioner and the drivers consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

__all__ = [
    "FactorMeta",
    "BlockMeta",
    "plan_block_metas",
    "eig_cost",
    "round_robin_assignment",
    "greedy_balanced_assignment",
    "layer_wise_assignment",
    "worker_costs",
    "grad_worker_count",
    "grad_worker_groups",
    "GroupPlacement",
    "build_group_placement",
]


@dataclass(frozen=True)
class FactorMeta:
    """Identity and size of one Kronecker factor.

    Example
    -------
    >>> from repro.core.assignment import FactorMeta
    >>> meta = FactorMeta(layer="conv1", kind="A", dim=27)
    >>> meta.key, meta.n_elements
    ('conv1/A', 729)
    """

    layer: str  # owning layer name
    kind: str  # "A" or "G"
    dim: int  # square matrix dimension

    @property
    def key(self) -> str:
        return f"{self.layer}/{self.kind}"

    @property
    def n_elements(self) -> int:
        return self.dim * self.dim


@dataclass(frozen=True)
class BlockMeta:
    """Identity and size of one diagonal block of a Kronecker factor.

    When ``diag_blocks > 1`` the unit of assignment, scheduling, and
    communication becomes the *block*, not the factor: every placement
    policy in this module works on either (they only read ``key`` and
    ``dim``), so finer blocks directly improve LPT balance.  ``dim`` is
    the block edge; ``(lo, hi)`` is the half-open row/col range the block
    occupies in its parent factor (see
    :func:`repro.approx.blocks.plan_block_bounds` for the partition
    policy).

    Example
    -------
    >>> from repro.core.assignment import BlockMeta
    >>> blk = BlockMeta(layer="conv1", kind="A", dim=14, block=1, lo=14, hi=28)
    >>> blk.key, blk.n_elements, blk.parent_key
    ('conv1/A#1', 196, 'conv1/A')
    """

    layer: str  # owning layer name
    kind: str  # "A" or "G"
    dim: int  # block edge (hi - lo)
    block: int  # block index within the parent factor
    lo: int  # first row/col of the block in the parent factor
    hi: int  # one past the last row/col

    @property
    def key(self) -> str:
        return f"{self.layer}/{self.kind}#{self.block}"

    @property
    def parent_key(self) -> str:
        return f"{self.layer}/{self.kind}"

    @property
    def n_elements(self) -> int:
        return self.dim * self.dim


def plan_block_metas(
    factors: Sequence[FactorMeta],
    bounds_list: Sequence[Sequence[tuple[int, int]]],
) -> list[BlockMeta]:
    """Expand factor metas into per-block metas, factor order preserved.

    Blocks of one factor are consecutive, so wire payload order stays
    deterministic across ranks.

    Example
    -------
    >>> from repro.core.assignment import FactorMeta, plan_block_metas
    >>> metas = plan_block_metas([FactorMeta("l0", "A", 4)], [((0, 2), (2, 4))])
    >>> [(m.key, m.dim, m.lo, m.hi) for m in metas]
    [('l0/A#0', 2, 0, 2), ('l0/A#1', 2, 2, 4)]
    """
    if len(factors) != len(bounds_list):
        raise ValueError(
            f"{len(factors)} factors but {len(bounds_list)} bound sets"
        )
    out: list[BlockMeta] = []
    for meta, bounds in zip(factors, bounds_list):
        if bounds[-1][1] != meta.dim:
            raise ValueError(
                f"{meta.key}: bounds cover {bounds[-1][1]} of {meta.dim} rows"
            )
        for j, (lo, hi) in enumerate(bounds):
            out.append(
                BlockMeta(
                    layer=meta.layer, kind=meta.kind, dim=hi - lo, block=j, lo=lo, hi=hi
                )
            )
    return out


def eig_cost(meta: FactorMeta) -> float:
    """Relative eigendecomposition cost, ``O(n^3)``."""
    return float(meta.dim) ** 3


def round_robin_assignment(
    factors: Sequence[FactorMeta], n_workers: int
) -> dict[str, int]:
    """Paper placement: factor ``j`` (enumeration order) -> worker ``j % P``.

    Note both factors of one layer generally land on *different* workers —
    the "double the worker utilization" property of §IV-C.

    Example
    -------
    >>> from repro.core.assignment import FactorMeta, round_robin_assignment
    >>> metas = [FactorMeta("l0", "A", 4), FactorMeta("l1", "A", 4),
    ...          FactorMeta("l0", "G", 2)]
    >>> round_robin_assignment(metas, 2)
    {'l0/A': 0, 'l1/A': 1, 'l0/G': 0}
    """
    if n_workers < 1:
        raise ValueError(f"n_workers must be >= 1, got {n_workers}")
    return {meta.key: i % n_workers for i, meta in enumerate(factors)}


def greedy_balanced_assignment(
    factors: Sequence[FactorMeta],
    n_workers: int,
    cost_fn: Callable[[FactorMeta], float] = eig_cost,
) -> dict[str, int]:
    """LPT heuristic: sort by cost descending, give each to the least-loaded
    worker.  This is the §VI-C4 "placement policy that uses factor size as
    a heuristic for the eigen decomposition time".

    Example
    -------
    >>> from repro.core.assignment import FactorMeta, greedy_balanced_assignment
    >>> metas = [FactorMeta("big", "A", 100), FactorMeta("s1", "A", 10),
    ...          FactorMeta("s2", "A", 10)]
    >>> a = greedy_balanced_assignment(metas, 2)
    >>> a["big"+"/A"] != a["s1/A"] == a["s2/A"]   # small ones pack together
    True
    """
    if n_workers < 1:
        raise ValueError(f"n_workers must be >= 1, got {n_workers}")
    loads = [0.0] * n_workers
    assignment: dict[str, int] = {}
    order = sorted(factors, key=cost_fn, reverse=True)
    for meta in order:
        worker = min(range(n_workers), key=loads.__getitem__)
        assignment[meta.key] = worker
        loads[worker] += cost_fn(meta)
    return assignment


def layer_wise_assignment(
    layer_names: Sequence[str], n_workers: int
) -> dict[str, int]:
    """K-FAC-lw placement: layer ``i`` -> worker ``i % P`` (whole layer)."""
    if n_workers < 1:
        raise ValueError(f"n_workers must be >= 1, got {n_workers}")
    return {name: i % n_workers for i, name in enumerate(layer_names)}


def worker_costs(
    factors: Sequence[FactorMeta],
    assignment: dict[str, int],
    n_workers: int,
    cost_fn: Callable[[FactorMeta], float] = eig_cost,
) -> list[float]:
    """Aggregate assigned cost per worker (Table VI's imbalance metric)."""
    loads = [0.0] * n_workers
    for meta in factors:
        loads[assignment[meta.key]] += cost_fn(meta)
    return loads


# ----------------------------------------------------------------------
# KAISA-style gradient-worker groups (arXiv:2107.01739)
# ----------------------------------------------------------------------
def grad_worker_count(n_workers: int, frac: float) -> int:
    """Gradient-worker group size ``max(1, round(frac * P))``, clamped to P.

    Example
    -------
    >>> grad_worker_count(8, 0.5)
    4
    >>> grad_worker_count(8, 1 / 8)   # layer-wise endpoint
    1
    >>> grad_worker_count(8, 1.0)     # comm-opt endpoint
    8
    """
    if n_workers < 1:
        raise ValueError(f"n_workers must be >= 1, got {n_workers}")
    if not 0.0 < frac <= 1.0:
        raise ValueError(f"grad_worker_frac must be in (0, 1], got {frac}")
    return max(1, min(n_workers, round(frac * n_workers)))


def grad_worker_groups(
    layer_names: Sequence[str], n_workers: int, frac: float
) -> dict[str, tuple[int, ...]]:
    """Per-layer gradient-worker groups: contiguous rank windows.

    Layer ``i``'s group starts at its canonical owner ``i % P`` (so the
    first element is the group's broadcast root) and wraps around the
    ring.  With ``frac = 1/P`` every group is the singleton owner (the
    layer-wise placement); with ``frac = 1`` every group is the whole
    world (the comm-opt placement).

    Example
    -------
    >>> grad_worker_groups(["a", "b", "c"], 4, 0.5)
    {'a': (0, 1), 'b': (1, 2), 'c': (2, 3)}
    >>> grad_worker_groups(["a", "b"], 2, 0.5)   # f = 1/P: singletons
    {'a': (0,), 'b': (1,)}
    """
    g = grad_worker_count(n_workers, frac)
    if g == n_workers:
        # every rank is a gradient worker: one canonical world group (no
        # broadcast root needed), so factor assignment degenerates to the
        # exact global round-robin/greedy policies of the COMM_OPT path
        world = tuple(range(n_workers))
        return {name: world for name in layer_names}
    return {
        name: tuple((i + j) % n_workers for j in range(g))
        for i, name in enumerate(layer_names)
    }


@dataclass
class GroupPlacement:
    """Placement metadata for the gradient-worker-fraction strategy.

    Attributes
    ----------
    n_workers:
        World size P.
    group_size:
        Gradient workers per layer, ``max(1, round(frac * P))``.
    groups:
        layer name -> gradient-worker ranks (root first, ring order).
    assignment:
        factor key -> eigendecomposition worker (a member of the
        factor's layer group).

    Example
    -------
    >>> metas = [FactorMeta("a", "A", 4), FactorMeta("a", "G", 2)]
    >>> gp = build_group_placement(metas, n_workers=4, frac=0.5)
    >>> gp.group_size, gp.groups["a"], gp.root("a")
    (2, (0, 1), 0)
    >>> gp.is_grad_worker(1, "a"), gp.is_grad_worker(3, "a")
    (True, False)
    """

    n_workers: int
    group_size: int
    groups: dict[str, tuple[int, ...]] = field(default_factory=dict)
    assignment: dict[str, int] = field(default_factory=dict)

    def root(self, layer: str) -> int:
        """The layer's canonical owner — root of its grad broadcast."""
        return self.groups[layer][0]

    def is_grad_worker(self, rank: int, layer: str) -> bool:
        """True iff ``rank`` holds the layer's eigenbasis."""
        return rank in self.groups[layer]


def build_group_placement(
    factors: Sequence[FactorMeta],
    n_workers: int,
    frac: float,
    policy: str = "round_robin",
    cost_fn: Callable[[FactorMeta], float] = eig_cost,
) -> GroupPlacement:
    """Construct groups + within-group factor assignment for a fraction.

    ``policy`` mirrors the global policies: ``"round_robin"`` cycles each
    group's members in factor-enumeration order (with ``frac = 1`` every
    layer shares the whole-world group, so this degenerates to the exact
    global round-robin of :func:`round_robin_assignment`); ``"greedy"``
    gives each factor to the least-loaded member of its layer's group
    (degenerating to :func:`greedy_balanced_assignment` at ``frac = 1``).

    Example
    -------
    >>> metas = [FactorMeta("a", "A", 4), FactorMeta("b", "A", 4),
    ...          FactorMeta("a", "G", 2), FactorMeta("b", "G", 2)]
    >>> gp = build_group_placement(metas, n_workers=2, frac=1.0)
    >>> gp.assignment == round_robin_assignment(metas, 2)
    True
    >>> build_group_placement(metas, n_workers=2, frac=0.5).assignment
    {'a/A': 0, 'b/A': 1, 'a/G': 0, 'b/G': 1}
    """
    if policy not in ("round_robin", "greedy"):
        raise ValueError(f"unknown assignment policy {policy!r}")
    layer_names: list[str] = []
    for meta in factors:
        if meta.layer not in layer_names:
            layer_names.append(meta.layer)
    groups = grad_worker_groups(layer_names, n_workers, frac)
    assignment: dict[str, int] = {}
    if policy == "greedy":
        loads = [0.0] * n_workers
        for meta in sorted(factors, key=cost_fn, reverse=True):
            grp = groups[meta.layer]
            worker = min(grp, key=loads.__getitem__)
            assignment[meta.key] = worker
            loads[worker] += cost_fn(meta)
    else:
        cursor: dict[tuple[int, ...], int] = {}
        for meta in factors:
            grp = groups[meta.layer]
            i = cursor.get(grp, 0)
            assignment[meta.key] = grp[i % len(grp)]
            cursor[grp] = i + 1
    return GroupPlacement(
        n_workers=n_workers,
        group_size=grad_worker_count(n_workers, frac),
        groups=groups,
        assignment=assignment,
    )
