"""The two K-FAC update algorithms the paper compares (§IV-A).

1. **Explicit factored inverse** (Eq. 11–12)::

       precond = (G + gamma I)^{-1} grad (A + gamma I)^{-1}

   i.e. the damping is applied *per factor*.  Note this is NOT the exact
   Tikhonov-damped inverse of the Kronecker block: expanding the product
   introduces cross terms ``gamma(A (x) I + I (x) G) + gamma^2 I`` instead
   of ``gamma I``.  The paper shows this approximation degrades validation
   accuracy as batch size grows (Table I).

2. **Implicit eigendecomposition** (Eqs. 13–15, from Grosse & Martens
   App. A.2)::

       A = Q_A diag(v_A) Q_A^T,   G = Q_G diag(v_G) Q_G^T
       V1 = Q_G^T grad Q_A
       V2 = V1 / (v_G v_A^T + gamma)
       precond = Q_G V2 Q_A^T

   which IS the exact ``(G (x) A + gamma I)^{-1} vec(grad)`` under
   row-major ``vec`` — the property our tests verify against a dense
   reference.

(The paper's §IV-A prose swaps the ``Q_A``/``Q_G`` symbols when stating the
decompositions; we implement the mathematically consistent pairing: ``Q_G``
acts on the output dimension, ``Q_A`` on the input dimension.)
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.linalg

__all__ = [
    "FactorEig",
    "eigendecompose",
    "explicit_damped_inverse",
    "precondition_eigen",
    "precondition_inverse",
    "dense_fisher_block",
    "dense_damped_inverse_apply",
]


@dataclass
class FactorEig:
    """Eigendecomposition of a symmetric PSD factor: ``M = Q diag(lam) Q^T``.

    Example
    -------
    >>> import numpy as np
    >>> from repro.core.inverse import eigendecompose
    >>> eig = eigendecompose(np.eye(3, dtype=np.float64))
    >>> eig.dim, eig.lam.tolist()
    (3, [1.0, 1.0, 1.0])
    """

    Q: np.ndarray
    lam: np.ndarray

    @property
    def dim(self) -> int:
        return self.Q.shape[0]

    def nbytes(self) -> int:
        return int(self.Q.nbytes + self.lam.nbytes)


def eigendecompose(factor: np.ndarray, clip_negative: bool = True) -> FactorEig:
    """Symmetric eigendecomposition via LAPACK ``eigh``.

    Factors are covariance matrices, hence PSD up to floating-point noise;
    ``clip_negative`` zeroes tiny negative eigenvalues so the damped
    denominator ``v_G v_A^T + gamma`` can never cross zero — this numerical
    robustness is the mechanism behind the eigen path's stability advantage
    in Table I.

    Example
    -------
    >>> import numpy as np
    >>> from repro.core.inverse import eigendecompose
    >>> eig = eigendecompose(np.diag([4.0, 9.0]))
    >>> sorted(eig.lam.tolist())
    [4.0, 9.0]
    >>> recon = eig.Q @ np.diag(eig.lam) @ eig.Q.T
    >>> bool(np.allclose(recon, np.diag([4.0, 9.0])))
    True
    """
    if factor.ndim != 2 or factor.shape[0] != factor.shape[1]:
        raise ValueError(f"factor must be square, got {factor.shape}")
    lam, q = scipy.linalg.eigh(factor)
    if clip_negative:
        np.maximum(lam, 0.0, out=lam)
    return FactorEig(Q=np.ascontiguousarray(q), lam=lam)


def explicit_damped_inverse(factor: np.ndarray, gamma: float) -> np.ndarray:
    """``(factor + gamma I)^{-1}`` via Cholesky, falling back to ``pinv``.

    The fallback mirrors what happens in practice when the damped factor is
    numerically singular at FP32 — the resulting preconditioner is the
    source of the accuracy loss the paper reports for the inverse method.

    Example
    -------
    >>> import numpy as np
    >>> from repro.core.inverse import explicit_damped_inverse
    >>> inv = explicit_damped_inverse(np.eye(2), gamma=1.0)
    >>> bool(np.allclose(inv, 0.5 * np.eye(2)))    # (I + I)^-1
    True
    """
    if factor.ndim != 2 or factor.shape[0] != factor.shape[1]:
        raise ValueError(f"factor must be square, got {factor.shape}")
    if gamma < 0:
        raise ValueError(f"damping must be non-negative, got {gamma}")
    damped = factor + gamma * np.eye(factor.shape[0], dtype=factor.dtype)
    try:
        cho = scipy.linalg.cho_factor(damped, lower=True)
        return scipy.linalg.cho_solve(cho, np.eye(factor.shape[0], dtype=factor.dtype))
    except scipy.linalg.LinAlgError:
        return np.linalg.pinv(damped)


def precondition_eigen(
    grad: np.ndarray, eig_A: FactorEig, eig_G: FactorEig, gamma: float
) -> np.ndarray:
    """Apply Eqs. 13–15: the exact damped Kronecker inverse of the gradient.

    Parameters
    ----------
    grad:
        Gradient matrix of shape ``(d_out, d_in)`` (bias column included
        when the layer has one).

    Example
    -------
    >>> import numpy as np
    >>> from repro.core.inverse import eigendecompose, precondition_eigen
    >>> eig = eigendecompose(np.eye(2))
    >>> grad = np.ones((2, 2))
    >>> precondition_eigen(grad, eig, eig, gamma=1.0).tolist()
    [[0.5, 0.5], [0.5, 0.5]]
    """
    if grad.shape != (eig_G.dim, eig_A.dim):
        raise ValueError(
            f"grad shape {grad.shape} incompatible with factors "
            f"G:{eig_G.dim} A:{eig_A.dim}"
        )
    if gamma <= 0:
        raise ValueError(f"damping must be positive for the eigen path, got {gamma}")
    v1 = eig_G.Q.T @ grad @ eig_A.Q
    denom = np.outer(eig_G.lam, eig_A.lam) + gamma
    v2 = v1 / denom
    return eig_G.Q @ v2 @ eig_A.Q.T


def precondition_inverse(
    grad: np.ndarray, inv_A: np.ndarray, inv_G: np.ndarray
) -> np.ndarray:
    """Apply Eq. 12: ``inv_G @ grad @ inv_A`` (factored damping).

    Example
    -------
    >>> import numpy as np
    >>> from repro.core.inverse import precondition_inverse
    >>> precondition_inverse(np.ones((2, 2)), 0.5 * np.eye(2), np.eye(2)).tolist()
    [[0.5, 0.5], [0.5, 0.5]]
    """
    if grad.shape != (inv_G.shape[0], inv_A.shape[0]):
        raise ValueError(
            f"grad shape {grad.shape} incompatible with inverses "
            f"G:{inv_G.shape} A:{inv_A.shape}"
        )
    return inv_G @ grad @ inv_A


def dense_fisher_block(a_factor: np.ndarray, g_factor: np.ndarray) -> np.ndarray:
    """Dense ``F_hat = G (x) A`` under row-major ``vec`` (testing reference).

    For ``W`` of shape ``(d_out, d_in)`` and ``vec = W.reshape(-1)``,
    ``(G (x) A) vec(W) == vec(G @ W @ A^T)``.

    Example
    -------
    >>> import numpy as np
    >>> from repro.core.inverse import dense_fisher_block
    >>> dense_fisher_block(np.eye(2), 2.0 * np.eye(3)).shape
    (6, 6)
    """
    return np.kron(g_factor, a_factor)


def dense_damped_inverse_apply(
    grad: np.ndarray, a_factor: np.ndarray, g_factor: np.ndarray, gamma: float
) -> np.ndarray:
    """Reference ``(F_hat + gamma I)^{-1} vec(grad)``, reshaped like ``grad``.

    Cubic in ``d_out * d_in`` — only usable on tiny layers, which is the
    point: it is the ground truth the fast paths are tested against.

    Example
    -------
    >>> import numpy as np
    >>> from repro.core.inverse import dense_damped_inverse_apply
    >>> grad = np.ones((2, 2))
    >>> out = dense_damped_inverse_apply(grad, np.eye(2), np.eye(2), gamma=1.0)
    >>> out.tolist()                       # (I (x) I + I)^-1 vec = vec / 2
    [[0.5, 0.5], [0.5, 0.5]]
    """
    f_hat = dense_fisher_block(a_factor, g_factor)
    n = f_hat.shape[0]
    damped = f_hat + gamma * np.eye(n, dtype=f_hat.dtype)
    flat = np.linalg.solve(damped, grad.reshape(-1))
    return flat.reshape(grad.shape)
