"""Kronecker factor computation (Eq. 5) and running averages (Eqs. 16–17).

Conventions
-----------
Let the training loss be the *mean* over the local mini-batch of ``N``
examples (that is what ``repro.nn`` losses produce, matching PyTorch).  The
backward pass therefore yields ``g0 = d(mean loss)/d(layer output)``; the
per-example gradient of the *summed* loss is ``N * g0``.  With that:

- **Linear** (input ``a``: ``(N, d_in)``; output grad ``g0``: ``(N, d_out)``)::

      A = a^T a / N                      (append a ones column when bias)
      G = N * g0^T g0                    ( = (1/N) sum_i (N g0_i)(N g0_i)^T )

- **Conv2d** (KFC, Grosse & Martens 2016).  With ``patches`` the im2col
  expansion ``(N*L, C_in*kh*kw)`` over ``L`` spatial positions and ``g0``
  reshaped to ``(N*L, C_out)``::

      A = patches^T patches / (N * L)    (Omega, expectation over (n, t))
      G = N * g0^T g0                    ( = |T| * Gamma with de-averaged grads)

  so that ``G (x) A`` equals KFC's ``|T| * Omega (x) Gamma`` approximation
  of the Fisher block for the *mean* loss scaled consistently with the
  Linear case.  (Row-major ``vec``: the Fisher block on ``vec(W)`` is
  ``G (x) A``, with ``W`` of shape ``(d_out, d_in)``.)

Exactness anchor (tested): for a single sample through a Linear layer,
``vec(dW) vec(dW)^T == G (x) A`` holds *exactly*.

Symmetry fast path: every Gram product goes through
:func:`repro.tensor.gram.gram` (BLAS ``?syrk``, half the GEMM FLOPs), so
factors are *exactly* symmetric by construction — the invariant that makes
the triangular-packed factor communication in :mod:`repro.comm.fusion`
lossless.  ``conv2d_factor_A_from_patches`` accepts the patch matrix a
``Conv2d`` forward already lowered, skipping the second ``im2col`` pass
over the activations; every function takes an optional
:class:`repro.tensor.workspace.Workspace` whose scratch makes the whole
factor stage allocation-free at steady state.

Running average (paper Eqs. 16–17): the paper writes the new reading with
weight ``xi in [0.9, 1)``, but the reference implementation (and any sane
running average) weights the *old* value by the decay; we follow the
implementation: ``ema = decay * ema + (1 - decay) * new`` with
``decay = 0.95`` by default (the paper's ``xi`` is our ``1 - decay``).
"""

from __future__ import annotations

import numpy as np

from repro.tensor.gram import gram
from repro.tensor.im2col import im2col
from repro.tensor.workspace import Workspace

__all__ = [
    "append_bias_column",
    "linear_factor_A",
    "linear_factor_G",
    "conv2d_factor_A",
    "conv2d_factor_A_from_patches",
    "conv2d_factor_G",
    "embedding_factor_A",
    "embedding_factor_A_dense",
    "ema_update",
]


def append_bias_column(mat: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
    """Append a column of ones (homogeneous coordinates for the bias).

    With ``out`` (shape ``(rows, cols + 1)``, e.g. workspace scratch) the
    augmentation writes in place instead of allocating a concatenation.
    """
    rows, cols = mat.shape
    if out is None:
        out = np.empty((rows, cols + 1), dtype=mat.dtype)
    elif out.shape != (rows, cols + 1) or out.dtype != mat.dtype:
        raise ValueError(
            f"bias-column buffer must be {(rows, cols + 1)} {mat.dtype}, "
            f"got {out.shape} {out.dtype}"
        )
    out[:, :cols] = mat
    out[:, cols] = 1.0
    return out


def _gram_scaled(
    mat: np.ndarray, count: int, multiply: bool, workspace: Workspace | None
) -> np.ndarray:
    """Gram product via syrk, scaled ``* count`` or ``/ count`` in place.

    Workspace-backed outputs are owned by the caller, who releases them
    once folded into the running average.
    """
    d = mat.shape[1]
    out = workspace.request((d, d), mat.dtype) if workspace is not None else None
    factor = gram(mat, out=out)
    if multiply:
        factor *= count
    else:
        factor /= count
    return factor


def linear_factor_A(
    a: np.ndarray, has_bias: bool, workspace: Workspace | None = None
) -> np.ndarray:
    """Activation covariance for a Linear layer.

    Parameters
    ----------
    a:
        Layer input, shape ``(N, d_in)``.
    has_bias:
        Append the homogeneous ones column when the layer has a bias.
    workspace:
        Optional scratch arena for the bias column and the factor itself.

    Example
    -------
    >>> import numpy as np
    >>> from repro.core.factors import linear_factor_A
    >>> a = np.ones((8, 3), dtype=np.float32)
    >>> linear_factor_A(a, has_bias=True).shape    # (d_in + 1)^2
    (4, 4)
    """
    if a.ndim != 2:
        raise ValueError(f"linear activations must be (N, d_in), got {a.shape}")
    n = a.shape[0]
    if not has_bias:
        return _gram_scaled(a, n, False, workspace)
    shape = (n, a.shape[1] + 1)
    if workspace is not None:
        with workspace.borrow(shape, a.dtype) as scratch:
            biased = append_bias_column(a, out=scratch)
            return _gram_scaled(biased, n, False, workspace)
    return _gram_scaled(append_bias_column(a), n, False, None)


def linear_factor_G(
    g0: np.ndarray, batch_averaged: bool = True, workspace: Workspace | None = None
) -> np.ndarray:
    """Output-gradient covariance for a Linear layer.

    Parameters
    ----------
    g0:
        Gradient w.r.t. the layer output, shape ``(N, d_out)``.
    batch_averaged:
        True when ``g0`` came from a mean-reduced loss (our convention);
        the per-example gradients are then recovered as ``N * g0``.

    Example
    -------
    >>> import numpy as np
    >>> from repro.core.factors import linear_factor_G
    >>> g0 = np.ones((8, 2), dtype=np.float32)
    >>> G = linear_factor_G(g0)
    >>> G.shape, bool(np.array_equal(G, G.T))
    ((2, 2), True)
    """
    if g0.ndim != 2:
        raise ValueError(f"output grads must be (N, d_out), got {g0.shape}")
    n = g0.shape[0]
    return _gram_scaled(g0, n, batch_averaged, workspace)


def conv2d_factor_A(
    x: np.ndarray,
    kernel_size: tuple[int, int],
    stride: tuple[int, int],
    padding: tuple[int, int],
    has_bias: bool,
    workspace: Workspace | None = None,
) -> np.ndarray:
    """Patch covariance (KFC's Omega) for a Conv2d layer.

    Parameters
    ----------
    x:
        Layer input, shape ``(N, C_in, H, W)``.

    Notes
    -----
    Lowers ``x`` with a fresh ``im2col`` pass.  The K-FAC capture hooks
    avoid this entirely by feeding the patch matrix the layer's forward
    already produced to :func:`conv2d_factor_A_from_patches`.

    Example
    -------
    >>> import numpy as np
    >>> from repro.core.factors import conv2d_factor_A
    >>> x = np.ones((2, 3, 4, 4), dtype=np.float32)
    >>> conv2d_factor_A(x, (3, 3), (1, 1), (1, 1), has_bias=False).shape
    (27, 27)
    """
    patches = im2col(x, kernel_size, stride, padding)
    factor = conv2d_factor_A_from_patches(patches, has_bias, workspace)
    return factor


def conv2d_factor_A_from_patches(
    patches: np.ndarray, has_bias: bool, workspace: Workspace | None = None
) -> np.ndarray:
    """Patch covariance from an already-lowered im2col matrix ``(N*L, D)``.

    Bit-identical to :func:`conv2d_factor_A` on the matching input — the
    patch matrix cached by ``Conv2d.forward`` *is* the im2col expansion —
    but skips the second lowering pass, the single largest redundant
    compute in the training loop.

    Example
    -------
    >>> import numpy as np
    >>> from repro.core.factors import conv2d_factor_A, conv2d_factor_A_from_patches
    >>> from repro.tensor.im2col import im2col
    >>> x = np.random.default_rng(0).normal(size=(2, 1, 4, 4)).astype(np.float32)
    >>> cached = im2col(x, (3, 3), (1, 1), (1, 1))
    >>> a = conv2d_factor_A_from_patches(cached, has_bias=False)
    >>> b = conv2d_factor_A(x, (3, 3), (1, 1), (1, 1), has_bias=False)
    >>> bool(np.array_equal(a, b))
    True
    """
    if patches.ndim != 2:
        raise ValueError(f"patches must be (N*L, D), got {patches.shape}")
    if patches.dtype == np.float16:
        # AMP caches fp16 patches, but factors accumulate in fp32 (the
        # precision-policy rule) — and fp16 has no BLAS syrk anyway
        patches = patches.astype(np.float32)
    rows = patches.shape[0]
    if not has_bias:
        return _gram_scaled(patches, rows, False, workspace)
    shape = (rows, patches.shape[1] + 1)
    if workspace is not None:
        with workspace.borrow(shape, patches.dtype) as scratch:
            biased = append_bias_column(patches, out=scratch)
            return _gram_scaled(biased, rows, False, workspace)
    return _gram_scaled(append_bias_column(patches), rows, False, None)


def conv2d_factor_G(
    g0: np.ndarray, batch_averaged: bool = True, workspace: Workspace | None = None
) -> np.ndarray:
    """Output-gradient covariance (scaled KFC Gamma) for a Conv2d layer.

    Parameters
    ----------
    g0:
        Gradient w.r.t. the layer output, shape ``(N, C_out, OH, OW)``.

    Example
    -------
    >>> import numpy as np
    >>> from repro.core.factors import conv2d_factor_G
    >>> g0 = np.ones((2, 4, 3, 3), dtype=np.float32)
    >>> conv2d_factor_G(g0).shape      # (C_out, C_out)
    (4, 4)
    """
    if g0.ndim != 4:
        raise ValueError(f"conv output grads must be (N, C, OH, OW), got {g0.shape}")
    n, c, oh, ow = g0.shape
    if workspace is not None:
        with workspace.borrow((n * oh * ow, c), g0.dtype) as flat:
            np.copyto(flat.reshape(n, oh, ow, c), g0.transpose(0, 2, 3, 1))
            return _gram_scaled(flat, n, batch_averaged, workspace)
    flat = g0.transpose(0, 2, 3, 1).reshape(-1, c)  # (N*L, C_out)
    return _gram_scaled(flat, n, batch_averaged, None)


def embedding_factor_A(
    indices: np.ndarray,
    num_embeddings: int,
    dtype: np.dtype | type = np.float32,
    workspace: Workspace | None = None,
) -> np.ndarray:
    """Activation covariance of an Embedding layer — the gather fast path.

    An embedding is a Linear layer applied to one-hot rows, so its ``A``
    factor is ``onehot^T onehot / rows = diag(bincount(indices)) / rows``.
    This builds that diagonal directly from the index multiset: the dense
    ``(rows, num_embeddings)`` one-hot matrix is **never materialized**,
    turning an ``O(rows * V^2)`` Gram product into an ``O(rows + V)``
    bincount.  Bit-identical to :func:`embedding_factor_A_dense` (0/1
    products and their sums are exact in floating point).

    Parameters
    ----------
    indices:
        Integer index array of any shape; ``indices.size`` is the row
        (sample) count.
    num_embeddings:
        Vocabulary size ``V`` — the factor is ``(V, V)``.
    dtype:
        Factor dtype (the owning weight's dtype).

    Example
    -------
    >>> import numpy as np
    >>> from repro.core.factors import embedding_factor_A
    >>> A = embedding_factor_A(np.array([0, 2, 2, 1]), num_embeddings=3)
    >>> np.diag(A).tolist()                    # counts / rows
    [0.25, 0.25, 0.5]
    >>> float(np.abs(A - np.diag(np.diag(A))).max())   # exactly diagonal
    0.0
    """
    if not np.issubdtype(np.asarray(indices).dtype, np.integer):
        raise ValueError(f"indices must be integers, got {np.asarray(indices).dtype}")
    flat = np.asarray(indices).ravel()
    if flat.size == 0:
        raise ValueError("cannot build an embedding factor from zero indices")
    if flat.min() < 0 or flat.max() >= num_embeddings:
        raise ValueError(
            f"indices out of range [0, {num_embeddings}): "
            f"[{flat.min()}, {flat.max()}]"
        )
    rows = flat.size
    counts = np.bincount(flat, minlength=num_embeddings)
    dt = np.dtype(dtype)
    if workspace is not None:
        out = workspace.request((num_embeddings, num_embeddings), dt)
        out[...] = 0.0  # workspace buffers come back uninitialized
    else:
        out = np.zeros((num_embeddings, num_embeddings), dtype=dt)
    diag = out.reshape(-1)[:: num_embeddings + 1]  # writable diagonal view
    diag[...] = counts.astype(dt)
    diag /= rows  # same in-place divide as the dense Gram path
    return out


def embedding_factor_A_dense(
    indices: np.ndarray, num_embeddings: int, dtype: np.dtype | type = np.float32
) -> np.ndarray:
    """Reference construction: materialize the one-hot matrix, then Gram.

    Exists only as the equality oracle for :func:`embedding_factor_A` in
    tests and docs — the training capture path never calls it.

    Example
    -------
    >>> import numpy as np
    >>> from repro.core.factors import embedding_factor_A, embedding_factor_A_dense
    >>> idx = np.random.default_rng(0).integers(0, 7, size=(3, 5))
    >>> fast = embedding_factor_A(idx, num_embeddings=7)
    >>> dense = embedding_factor_A_dense(idx, num_embeddings=7)
    >>> bool(np.array_equal(fast, dense))      # bitwise, not just close
    True
    """
    flat = np.asarray(indices).ravel()
    onehot = np.zeros((flat.size, num_embeddings), dtype=np.dtype(dtype))
    onehot[np.arange(flat.size), flat] = 1.0
    return linear_factor_A(onehot, has_bias=False)


def ema_update(
    ema: np.ndarray | None,
    new: np.ndarray,
    decay: float,
    workspace: Workspace | None = None,
) -> np.ndarray:
    """Running-average update, ``decay`` weighting the old value.

    On the first call (``ema is None``) the new reading is adopted
    directly, avoiding cold-start bias.  With a ``workspace`` the scaled
    temporary comes from pooled scratch, making the steady-state update
    allocation-free (bit-identical arithmetic either way).

    Example
    -------
    >>> import numpy as np
    >>> from repro.core.factors import ema_update
    >>> first = ema_update(None, np.array([2.0]), decay=0.9)
    >>> first.tolist()                     # cold start adopts the reading
    [2.0]
    >>> ema_update(first, np.array([0.0]), decay=0.9).tolist()
    [1.8]
    """
    if not 0.0 <= decay < 1.0:
        raise ValueError(f"decay must be in [0, 1), got {decay}")
    if ema is None:
        return new.copy()
    if ema.shape != new.shape:
        raise ValueError(f"EMA shape {ema.shape} != new reading shape {new.shape}")
    if workspace is not None and ema.dtype == new.dtype:
        with workspace.borrow(new.shape, new.dtype) as scratch:
            np.multiply(new, new.dtype.type(1.0 - decay), out=scratch)
            ema *= decay
            ema += scratch
        return ema
    ema *= decay
    ema += (1.0 - decay) * new
    return ema
