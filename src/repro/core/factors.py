"""Kronecker factor computation (Eq. 5) and running averages (Eqs. 16–17).

Conventions
-----------
Let the training loss be the *mean* over the local mini-batch of ``N``
examples (that is what ``repro.nn`` losses produce, matching PyTorch).  The
backward pass therefore yields ``g0 = d(mean loss)/d(layer output)``; the
per-example gradient of the *summed* loss is ``N * g0``.  With that:

- **Linear** (input ``a``: ``(N, d_in)``; output grad ``g0``: ``(N, d_out)``)::

      A = a^T a / N                      (append a ones column when bias)
      G = N * g0^T g0                    ( = (1/N) sum_i (N g0_i)(N g0_i)^T )

- **Conv2d** (KFC, Grosse & Martens 2016).  With ``patches`` the im2col
  expansion ``(N*L, C_in*kh*kw)`` over ``L`` spatial positions and ``g0``
  reshaped to ``(N*L, C_out)``::

      A = patches^T patches / (N * L)    (Omega, expectation over (n, t))
      G = N * g0^T g0                    ( = |T| * Gamma with de-averaged grads)

  so that ``G (x) A`` equals KFC's ``|T| * Omega (x) Gamma`` approximation
  of the Fisher block for the *mean* loss scaled consistently with the
  Linear case.  (Row-major ``vec``: the Fisher block on ``vec(W)`` is
  ``G (x) A``, with ``W`` of shape ``(d_out, d_in)``.)

Exactness anchor (tested): for a single sample through a Linear layer,
``vec(dW) vec(dW)^T == G (x) A`` holds *exactly*.

Running average (paper Eqs. 16–17): the paper writes the new reading with
weight ``xi in [0.9, 1)``, but the reference implementation (and any sane
running average) weights the *old* value by the decay; we follow the
implementation: ``ema = decay * ema + (1 - decay) * new`` with
``decay = 0.95`` by default (the paper's ``xi`` is our ``1 - decay``).
"""

from __future__ import annotations

import numpy as np

from repro.tensor.im2col import im2col

__all__ = [
    "append_bias_column",
    "linear_factor_A",
    "linear_factor_G",
    "conv2d_factor_A",
    "conv2d_factor_G",
    "ema_update",
]


def append_bias_column(mat: np.ndarray) -> np.ndarray:
    """Append a column of ones (homogeneous coordinates for the bias)."""
    ones = np.ones((mat.shape[0], 1), dtype=mat.dtype)
    return np.concatenate([mat, ones], axis=1)


def linear_factor_A(a: np.ndarray, has_bias: bool) -> np.ndarray:
    """Activation covariance for a Linear layer.

    Parameters
    ----------
    a:
        Layer input, shape ``(N, d_in)``.
    has_bias:
        Append the homogeneous ones column when the layer has a bias.
    """
    if a.ndim != 2:
        raise ValueError(f"linear activations must be (N, d_in), got {a.shape}")
    if has_bias:
        a = append_bias_column(a)
    return (a.T @ a) / a.shape[0]


def linear_factor_G(g0: np.ndarray, batch_averaged: bool = True) -> np.ndarray:
    """Output-gradient covariance for a Linear layer.

    Parameters
    ----------
    g0:
        Gradient w.r.t. the layer output, shape ``(N, d_out)``.
    batch_averaged:
        True when ``g0`` came from a mean-reduced loss (our convention);
        the per-example gradients are then recovered as ``N * g0``.
    """
    if g0.ndim != 2:
        raise ValueError(f"output grads must be (N, d_out), got {g0.shape}")
    n = g0.shape[0]
    if batch_averaged:
        return (g0.T @ g0) * n
    return (g0.T @ g0) / n


def conv2d_factor_A(
    x: np.ndarray,
    kernel_size: tuple[int, int],
    stride: tuple[int, int],
    padding: tuple[int, int],
    has_bias: bool,
) -> np.ndarray:
    """Patch covariance (KFC's Omega) for a Conv2d layer.

    Parameters
    ----------
    x:
        Layer input, shape ``(N, C_in, H, W)``.
    """
    patches = im2col(x, kernel_size, stride, padding)  # (N*L, D)
    if has_bias:
        patches = append_bias_column(patches)
    return (patches.T @ patches) / patches.shape[0]


def conv2d_factor_G(g0: np.ndarray, batch_averaged: bool = True) -> np.ndarray:
    """Output-gradient covariance (scaled KFC Gamma) for a Conv2d layer.

    Parameters
    ----------
    g0:
        Gradient w.r.t. the layer output, shape ``(N, C_out, OH, OW)``.
    """
    if g0.ndim != 4:
        raise ValueError(f"conv output grads must be (N, C, OH, OW), got {g0.shape}")
    n = g0.shape[0]
    flat = g0.transpose(0, 2, 3, 1).reshape(-1, g0.shape[1])  # (N*L, C_out)
    if batch_averaged:
        return (flat.T @ flat) * n
    # treat rows as per-example-per-position grads of a summed loss
    return (flat.T @ flat) / n


def ema_update(ema: np.ndarray | None, new: np.ndarray, decay: float) -> np.ndarray:
    """Running-average update, ``decay`` weighting the old value.

    On the first call (``ema is None``) the new reading is adopted
    directly, avoiding cold-start bias.
    """
    if not 0.0 <= decay < 1.0:
        raise ValueError(f"decay must be in [0, 1), got {decay}")
    if ema is None:
        return new.copy()
    if ema.shape != new.shape:
        raise ValueError(f"EMA shape {ema.shape} != new reading shape {new.shape}")
    ema *= decay
    ema += (1.0 - decay) * new
    return ema
