"""K-FAC hyper-parameter schedules (§V-C).

Two decays, both applied at fixed epochs:

- **Damping decay** — "we reduce the damping by a fixed scalar quantity at
  fixed epochs.  Starting with a larger damping accounts for rapid changes
  in the FIM at the start of training."
- **Update-frequency decay** — "At fixed training epochs, we decrease
  kfac-update-freq by a scalar quantity to reduce the computation and
  communication required while preserving accuracy."  (Decreasing the
  *frequency* = multiplying the step interval.)

The scheduler mutates a :class:`repro.core.preconditioner.KFAC` instance in
place, mirroring the reference ``KFACParamScheduler``.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["KFACParamScheduler"]


class KFACParamScheduler:
    """Epoch-driven damping and update-interval schedule for a KFAC instance.

    Parameters
    ----------
    kfac:
        The preconditioner to mutate (anything exposing ``damping``,
        ``kfac_update_freq`` and ``fac_update_freq`` attributes).
    damping_alpha:
        Multiplier applied to the damping at each ``damping_schedule`` epoch
        (e.g. ``0.5`` halves it).
    damping_schedule:
        Sorted epochs at which damping decays.
    update_freq_alpha:
        Multiplier applied to both update *intervals* at each
        ``update_freq_schedule`` epoch (``> 1`` makes K-FAC updates rarer).
    update_freq_schedule:
        Sorted epochs at which the intervals grow.

    Example
    -------
    >>> from types import SimpleNamespace
    >>> from repro.core.schedule import KFACParamScheduler
    >>> kfac = SimpleNamespace(damping=0.003, kfac_update_freq=10, fac_update_freq=1)
    >>> sched = KFACParamScheduler(kfac, damping_alpha=0.5, damping_schedule=[2])
    >>> sched.step(0); round(kfac.damping, 4)
    0.003
    >>> sched.step(2); round(kfac.damping, 4)    # halved at epoch 2
    0.0015
    """

    def __init__(
        self,
        kfac,
        damping_alpha: float = 1.0,
        damping_schedule: Sequence[float] = (),
        update_freq_alpha: float = 1.0,
        update_freq_schedule: Sequence[float] = (),
    ) -> None:
        if damping_alpha <= 0:
            raise ValueError(f"damping_alpha must be positive, got {damping_alpha}")
        if update_freq_alpha <= 0:
            raise ValueError(f"update_freq_alpha must be positive, got {update_freq_alpha}")
        if sorted(damping_schedule) != list(damping_schedule):
            raise ValueError("damping_schedule must be sorted")
        if sorted(update_freq_schedule) != list(update_freq_schedule):
            raise ValueError("update_freq_schedule must be sorted")
        self.kfac = kfac
        self.damping_alpha = damping_alpha
        self.damping_schedule = list(damping_schedule)
        self.update_freq_alpha = update_freq_alpha
        self.update_freq_schedule = list(update_freq_schedule)
        self._base_damping = float(kfac.damping)
        self._base_kfac_freq = int(kfac.kfac_update_freq)
        self._base_fac_freq = int(kfac.fac_update_freq)

    def step(self, epoch: float) -> None:
        """Set the K-FAC hyper-parameters appropriate for ``epoch``."""
        n_damp = sum(1 for e in self.damping_schedule if epoch >= e)
        self.kfac.damping = self._base_damping * self.damping_alpha**n_damp

        n_freq = sum(1 for e in self.update_freq_schedule if epoch >= e)
        factor = self.update_freq_alpha**n_freq
        self.kfac.kfac_update_freq = max(1, int(round(self._base_kfac_freq * factor)))
        self.kfac.fac_update_freq = max(1, int(round(self._base_fac_freq * factor)))
