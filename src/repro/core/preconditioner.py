"""The distributed K-FAC gradient preconditioner (paper Algorithm 1).

``KFAC`` attaches hooks to every supported layer of a model, maintains
running-average Kronecker factors, and — on ``step()`` — rewrites
``param.grad`` in place with the preconditioned gradient so that any
standard optimizer can apply the update (paper Listing 1).

Two distribution strategies (§VI-C3) are implemented behind one code path:

- ``COMM_OPT`` (the paper's **K-FAC-opt**): each *factor* is assigned to a
  worker round-robin; workers eigendecompose only their assigned factors;
  decompositions are allgathered; every worker preconditions every layer
  locally.  Iterations without a K-FAC update need **no communication
  beyond the ordinary gradient allreduce**.

- ``LAYER_WISE`` (the paper's **K-FAC-lw**, the scheme of Osawa et al.):
  each *layer* is assigned to a worker, which computes both of its
  eigendecompositions *and* its preconditioned gradient; the preconditioned
  gradients are then allgathered — on **every** iteration, since only the
  owner holds the layer's second-order state.

The step logic is a generator yielding
:class:`repro.core.comm_ops.AllReduceRequest` /
:class:`AllGatherRequest`; drivers in :mod:`repro.core.distributed` bind it
to a world.  Counters (``steps``, update frequencies, captures) follow the
reference implementation: factors are captured/updated every
``fac_update_freq`` steps and second-order state every
``kfac_update_freq`` steps, with ``fac_update_freq`` typically 10x more
frequent (§V-C).

Every strategy executes through one dependency-graph scheduler
(:mod:`repro.sched`): the step is planned as per-layer tasks
(``FactorComm -> Eig -> EigShare -> Precondition -> GradShare``) and a
single :class:`repro.sched.executor.GraphExecutor` walks the schedule.
``scheduler="sync"`` (default) emits the classic blocking request stream;
``scheduler="graph"`` pipelines it SPD-KFAC style — bucketed asynchronous
factor allreduces, eigenbasis shares and gradient broadcasts all
overlapping local second-order compute.
"""

from __future__ import annotations

import sys
import warnings
from dataclasses import dataclass, fields
from typing import Any, Generator, Sequence

import numpy as np

from repro.approx.adaptive import AdaptiveDamping, DriftTrigger
from repro.approx.blocks import plan_block_bounds
from repro.comm.compression import ErrorFeedback, get_codec
from repro.comm.faults import StaleEigenbasisError
from repro.comm.fusion import tri_len
from repro.core.assignment import (
    BlockMeta,
    FactorMeta,
    GroupPlacement,
    build_group_placement,
    greedy_balanced_assignment,
    layer_wise_assignment,
    plan_block_metas,
    round_robin_assignment,
)
from repro.core.comm_ops import (
    AllGatherRequest,
    AllReduceRequest,
    unpack_arrays,
)
from repro.core.inverse import FactorEig
from repro.core.layers import KFACLayer, make_kfac_layer
from repro.nn.module import Module
from repro.obs.tracer import NULL_TRACER
from repro.utils.logging import Logger

__all__ = ["KFAC", "KFACHyperParams", "COMM_OPT", "LAYER_WISE", "HYBRID"]

COMM_OPT = "comm-opt"
LAYER_WISE = "layer-wise"
HYBRID = "hybrid"


@dataclass
class KFACHyperParams:
    """Hyper-parameters of the preconditioner (defaults follow the paper).

    Example
    -------
    >>> from repro.core.preconditioner import HYBRID, KFACHyperParams
    >>> hp = KFACHyperParams(kfac_update_freq=100, grad_worker_frac=0.5)
    >>> hp.strategy == HYBRID      # the fraction selects the hybrid placement
    True

    Attributes
    ----------
    lr:
        Learning rate used by the Eq. 18 scaling (kept in sync with the
        wrapped optimizer by the trainer).
    damping:
        Tikhonov damping ``gamma`` (paper uses 0.001–0.003).
    factor_decay:
        Running-average decay on the old factor value (paper ``1 - xi``).
    kl_clip:
        Eq. 18 constant ``kappa``.
    fac_update_freq:
        Interval (steps) between factor recomputation + factor allreduce.
    kfac_update_freq:
        Interval (steps) between eigendecomposition refreshes; the paper's
        *K-FAC update frequency* knob (Table III).
    use_eigen_decomp:
        Eigendecomposition path (True, Eqs. 13–15) or explicit factored
        inverse (False, Eq. 11) — the Table I comparison.
    strategy:
        ``COMM_OPT``, ``LAYER_WISE``, or ``HYBRID`` (selected implicitly
        by setting ``grad_worker_frac``).
    grad_worker_frac:
        KAISA-style gradient-worker fraction ``f`` (arXiv:2107.01739):
        each layer gets a group of ``max(1, round(f * P))`` ranks that
        hold its eigendecompositions (shared by *group* allgather rather
        than world allgather) and compute the preconditioned gradient
        locally; everyone else receives only the final preconditioned
        gradient via a group-rooted broadcast.  ``f = 1/P`` recovers
        ``LAYER_WISE``, ``f = 1`` recovers ``COMM_OPT`` (trajectories
        bit-match both endpoints); intermediate values trade per-rank
        eigenbasis memory against per-iteration broadcast volume.
        Setting this switches ``strategy`` to ``HYBRID``.
    assignment:
        ``"round_robin"`` (paper) or ``"greedy"`` (the §VI-C4 LPT policy).
    skip_layers:
        Layer-name substrings to exclude from preconditioning.  Entries
        must be non-empty (an empty string is a substring of *every* name
        and would silently skip the whole model).
    scheduler:
        ``"sync"`` (default) — the task-graph executor emits the classic
        blocking request stream; ``"graph"`` — SPD-KFAC-style pipelined
        execution: bucketed asynchronous factor allreduces overlapped with
        local eigendecompositions, and eigenbasis shares / gradient
        broadcasts scheduled as ordinary graph nodes that overlap the
        remaining factor buckets.  Numerically equivalent; only the
        exposed-communication accounting changes.
    async_comm:
        Deprecated alias for ``scheduler``: ``True`` selects
        ``scheduler="graph"``.  Emits a :class:`DeprecationWarning`.
    bucket_bytes:
        Pipeline chunk size (per-bucket payload cap) for
        ``scheduler="graph"``.  ``None`` (default) lets the planner pick
        it from the :mod:`repro.comm.costmodel` rates
        (:func:`repro.sched.planner.choose_bucket_bytes`).
    symmetric_comm:
        Exchange each ``d x d`` factor as its ``d*(d+1)/2``-element upper
        triangle (Osawa et al. 2019), nearly halving factor-stage bytes on
        both the synchronous and pipelined paths.  Lossless: the syrk Gram
        kernel makes factors exactly symmetric, and averaging triangles
        then mirroring is bit-identical to averaging full matrices.
    comm_dtype:
        Wire precision of the factor allreduce: ``None`` (dtype-preserving,
        the default), ``"fp16"`` or ``"bf16"``.  Compressed transport uses
        fp32 reduction accumulators and per-factor error-feedback
        residuals, halves factor-stage bytes *again* on top of
        ``symmetric_comm``, and composes with both the synchronous and
        pipelined routes.  Lossy (unlike ``symmetric_comm``) but bounded:
        the EMA absorbs the quantization noise and the residuals re-inject
        it, so trajectories track the full-precision run.
    max_eig_staleness:
        Graceful-degradation bound: how many *consecutive* failed
        second-order refreshes (factor exchange or eigenbasis share lost
        past the driver's retry budget) a factor may absorb by
        preconditioning with its last-known eigenbasis before the step
        hard-fails with :class:`repro.comm.faults.StaleEigenbasisError`.
        With ``drift_tol`` set it doubles as the drift trigger's hard
        refresh budget: a basis may skip at most this many refresh
        candidates, however small its drift.
    diag_blocks:
        Block-diagonal factor approximation (:mod:`repro.approx`): the
        *widest* factor in the model is partitioned into this many
        diagonal blocks, and every other factor into proportionally
        fewer (same target block edge; factors narrower than one block
        stay exact).  Each block is eigendecomposed, assigned, and
        communicated independently — finer Eig/EigShare tasks for the
        graph scheduler, ``~k^2``-fold cheaper eigs on the widest
        layers, and block-triangle-only factor payloads.  ``1``
        (default) is the exact path, bit-identical to the seed code.
        Requires ``use_eigen_decomp=True`` when ``> 1``.
    diag_warmup:
        Number of leading *second-order updates* that use exact (full
        factor) eigendecompositions before block approximation engages
        — early steps benefit from exact curvature while the factors
        are still moving fast.
    drift_tol:
        Staleness-tolerant eigenbases: replace the fixed
        ``kfac_update_freq`` refresh schedule with a drift trigger.  On
        every factor-update step, refresh the eigendecompositions iff
        the relative Frobenius drift of any factor (or block) from the
        snapshot it was last decomposed in exceeds this tolerance — or
        a basis has exhausted its ``max_eig_staleness`` skip budget, or
        has no basis yet (step 0).  ``None`` (default) keeps the fixed
        schedule.  Decisions are computed from post-allreduce factor
        state, so every rank decides identically in lockstep.
    adapt_damping:
        Levenberg–Marquardt-style adaptive damping driven by the Eq. 18
        KL-clip statistic (:class:`repro.approx.adaptive.AdaptiveDamping`):
        persistent clipping grows ``damping``, persistently unclipped
        steps decay it toward its floor.  Lockstep across ranks (the
        statistic is computed from already-averaged gradients).
    """

    lr: float = 0.1
    damping: float = 0.003
    factor_decay: float = 0.95
    kl_clip: float = 1e-3
    fac_update_freq: int = 1
    kfac_update_freq: int = 10
    use_eigen_decomp: bool = True
    strategy: str = COMM_OPT
    grad_worker_frac: float | None = None
    assignment: str = "round_robin"
    skip_layers: tuple[str, ...] = ()
    scheduler: str = "sync"
    async_comm: bool | None = None
    bucket_bytes: int | None = None
    symmetric_comm: bool = True
    comm_dtype: str | None = None
    max_eig_staleness: int = 3
    diag_blocks: int = 1
    diag_warmup: int = 0
    drift_tol: float | None = None
    adapt_damping: bool = False

    def __post_init__(self) -> None:
        if self.comm_dtype in ("fp32", "none"):
            self.comm_dtype = None
        if self.comm_dtype not in (None, "fp16", "bf16"):
            raise ValueError(
                f"comm_dtype must be None, 'fp16' or 'bf16', got {self.comm_dtype!r}"
            )
        if self.damping <= 0:
            raise ValueError(f"damping must be positive, got {self.damping}")
        if not 0 <= self.factor_decay < 1:
            raise ValueError(f"factor_decay must be in [0,1), got {self.factor_decay}")
        if self.fac_update_freq < 1 or self.kfac_update_freq < 1:
            raise ValueError("update frequencies must be >= 1")
        if self.grad_worker_frac is not None:
            if not 0.0 < self.grad_worker_frac <= 1.0:
                raise ValueError(
                    f"grad_worker_frac must be in (0, 1], got {self.grad_worker_frac}"
                )
            if self.strategy == LAYER_WISE:
                raise ValueError(
                    "grad_worker_frac generalizes the placement spectrum; "
                    "LAYER_WISE is its f=1/P endpoint — drop strategy= and "
                    "pick the fraction instead"
                )
            self.strategy = HYBRID
        elif self.strategy == HYBRID:
            raise ValueError("strategy=HYBRID requires grad_worker_frac to be set")
        if self.strategy not in (COMM_OPT, LAYER_WISE, HYBRID):
            raise ValueError(f"unknown strategy {self.strategy!r}")
        if self.assignment not in ("round_robin", "greedy"):
            raise ValueError(f"unknown assignment {self.assignment!r}")
        for entry in self.skip_layers:
            if not isinstance(entry, str) or not entry:
                raise ValueError(
                    f"skip_layers entries must be non-empty strings, got {entry!r} "
                    "(an empty string matches every layer name, excluding the "
                    "whole model from K-FAC)"
                )
        if self.scheduler not in ("sync", "graph"):
            raise ValueError(
                f"scheduler must be 'sync' or 'graph', got {self.scheduler!r}"
            )
        if self.async_comm is not None:
            warnings.warn(
                "KFAC(async_comm=...) is deprecated; use "
                "scheduler='graph' (pipelined) or scheduler='sync'",
                DeprecationWarning,
                stacklevel=2,
            )
            if self.async_comm and self.scheduler == "sync":
                self.scheduler = "graph"
            # normalize so dataclass round trips don't re-warn
            self.async_comm = None
        if self.bucket_bytes is not None and self.bucket_bytes <= 0:
            raise ValueError(f"bucket_bytes must be positive, got {self.bucket_bytes}")
        if not isinstance(self.diag_blocks, int) or self.diag_blocks < 1:
            raise ValueError(f"diag_blocks must be an int >= 1, got {self.diag_blocks!r}")
        if self.diag_blocks > 1 and not self.use_eigen_decomp:
            raise ValueError(
                "diag_blocks > 1 requires the eigendecomposition path "
                "(use_eigen_decomp=True); the explicit-inverse variant has no "
                "blocked form"
            )
        if not isinstance(self.diag_warmup, int) or self.diag_warmup < 0:
            raise ValueError(f"diag_warmup must be an int >= 0, got {self.diag_warmup!r}")
        if self.drift_tol is not None and not self.drift_tol > 0:
            raise ValueError(f"drift_tol must be > 0 (or None), got {self.drift_tol}")


class KFAC:
    """K-FAC preconditioner for one model replica.

    Parameters
    ----------
    model:
        The replica whose supported layers will be preconditioned.
    rank / world_size:
        This replica's position in the (simulated) worker world.
    hyper:
        Hyper-parameters; keyword overrides are also accepted.
    logger:
        Destination for degraded-path warnings — parameterized layers
        with no K-FAC handler are reported here (and recorded in
        :attr:`unsupported_layers`) instead of being dropped silently.
        Defaults to a ``Logger("kfac")`` on stderr; pass
        ``repro.utils.logging.NULL_LOGGER`` to silence.

    Example
    -------
    >>> import numpy as np
    >>> from repro.core.preconditioner import KFAC
    >>> from repro.nn import Linear, ReLU, Sequential
    >>> from repro.nn.loss import CrossEntropyLoss
    >>> model = Sequential(Linear(4, 8), ReLU(), Linear(8, 3))
    >>> kfac = KFAC(model, kfac_update_freq=1, damping=0.01)
    >>> loss_fn = CrossEntropyLoss()
    >>> x = np.random.default_rng(0).normal(size=(8, 4)).astype(np.float32)
    >>> _ = loss_fn(model(x), np.arange(8) % 3)
    >>> _ = model.backward(loss_fn.backward())
    >>> kfac.step()                   # rewrites every param.grad in place
    >>> kfac.steps, kfac.n_second_order_updates
    (1, 1)
    """

    def __init__(
        self,
        model: Module,
        rank: int = 0,
        world_size: int = 1,
        hyper: KFACHyperParams | None = None,
        grad_scaler: Any | None = None,
        logger: Logger | None = None,
        **overrides: Any,
    ) -> None:
        if world_size < 1 or not 0 <= rank < world_size:
            raise ValueError(f"invalid rank/world_size: {rank}/{world_size}")
        base = hyper if hyper is not None else KFACHyperParams()
        if overrides:
            valid = {f.name for f in fields(KFACHyperParams)}
            for key in overrides:
                if key not in valid:
                    raise TypeError(
                        f"KFAC() got an unknown hyper-parameter {key!r}; "
                        f"valid keys: {', '.join(sorted(valid))}"
                    )
            base = KFACHyperParams(
                **{**base.__dict__, **overrides}  # type: ignore[arg-type]
            )
        self.hp = base
        self.model = model
        self.rank = rank
        self.world_size = world_size
        #: AMP loss scaler (see :class:`repro.precision.GradScaler`): when
        #: set, captured output-gradients are divided by the current scale
        #: so ``G`` factors are built from *unscaled* statistics
        self.grad_scaler = grad_scaler
        #: per-factor quantization residuals for compressed factor comm
        codec = get_codec(base.comm_dtype)
        self._comm_ef: ErrorFeedback | None = (
            ErrorFeedback(codec) if codec is not None else None
        )
        self.steps = 0
        # mutable knobs (targets of KFACParamScheduler)
        self.lr = base.lr
        self.damping = base.damping
        self.fac_update_freq = base.fac_update_freq
        self.kfac_update_freq = base.kfac_update_freq

        self.logger = logger if logger is not None else Logger("kfac", stream=sys.stderr)
        self.layers: list[KFACLayer] = []
        self._hook_removers: list = []
        unsupported: list[tuple[str, str]] = []
        for name, module in model.named_modules():
            if any(s in name for s in base.skip_layers):
                continue
            handler = make_kfac_layer(name, module)
            if handler is None:
                if module._parameters:
                    # parameterized but unhandled: the layer trains
                    # first-order only — record and warn, never drop it
                    # silently (the satellite-fixed footgun)
                    unsupported.append((name, type(module).__name__))
                continue
            self.layers.append(handler)
            self._hook_removers.append(
                module.register_forward_hook(self._make_forward_hook(handler))
            )
            self._hook_removers.append(
                module.register_backward_hook(self._make_backward_hook(handler))
            )
        #: parameterized layers K-FAC does not precondition, as
        #: ``(dotted_name, type_name)`` pairs (surfaced by the metrics
        #: registry as the ``kfac.unsupported_layers`` gauge)
        self.unsupported_layers: tuple[tuple[str, str], ...] = tuple(unsupported)
        if self.rank == 0 and unsupported:
            listing = ", ".join(f"{n} ({t})" for n, t in unsupported)
            self.logger.warn(
                f"{len(unsupported)} parameterized layer(s) have no K-FAC "
                f"handler and will train first-order only: {listing}"
            )
        if not self.layers:
            raise ValueError(
                "model has no K-FAC-supported layers "
                "(Linear/Conv2d/Embedding/LayerNorm)"
            )

        self._factor_metas = self._build_factor_metas()
        self._factor_assignment: dict[str, int] = self._assign_factors()
        self._layer_assignment: dict[str, int] = layer_wise_assignment(
            [l.name for l in self.layers], world_size
        )
        #: gradient-worker placement (HYBRID strategy only): per-layer
        #: groups, broadcast roots, and the within-group factor assignment
        self._placement: GroupPlacement | None = None
        self._group_metas: list[tuple[tuple[int, ...], list[FactorMeta]]] = []
        self._bcast_plan: list[tuple[int, list[KFACLayer], tuple[int, ...]]] = []
        if base.strategy == HYBRID:
            assert base.grad_worker_frac is not None
            self._placement = build_group_placement(
                self._factor_metas,
                world_size,
                base.grad_worker_frac,
                policy=base.assignment,
            )
            self._factor_assignment = dict(self._placement.assignment)
            # the placement is immutable, so the per-step structures —
            # factor metas bucketed by group, and the fused (root,
            # participants) broadcast plan — are built once here
            self._group_metas = self._build_group_metas()
            self._bcast_plan = self._build_broadcast_plan()
        # block-diagonal approximation (repro.approx): past diag_warmup
        # second-order updates the unit of assignment, scheduling, and
        # communication becomes the diagonal *block*; these mirror the
        # factor-level structures above and are built once, here
        self._block_bounds: dict[str, tuple[tuple[int, int], ...]] = {}
        self._block_metas: list[BlockMeta] = []
        self._block_assignment: dict[str, int] = {}
        self._group_block_metas: list[tuple[tuple[int, ...], list[BlockMeta]]] = []
        if base.diag_blocks > 1:
            bounds_list = plan_block_bounds(
                [m.dim for m in self._factor_metas], base.diag_blocks
            )
            self._block_bounds = {
                m.key: tuple(b) for m, b in zip(self._factor_metas, bounds_list)
            }
            self._block_metas = plan_block_metas(self._factor_metas, bounds_list)
            if base.strategy == HYBRID:
                assert self._placement is not None
                # same layer->group map as the factor-level placement (groups
                # depend only on the layer list); only the within-group owner
                # of each *block* is re-balanced
                block_placement = build_group_placement(
                    self._block_metas,
                    world_size,
                    base.grad_worker_frac,
                    policy=base.assignment,
                )
                self._block_assignment = dict(block_placement.assignment)
                grouped: dict[tuple[int, ...], list[BlockMeta]] = {}
                for bm in self._block_metas:
                    grouped.setdefault(self._placement.groups[bm.layer], []).append(bm)
                self._group_block_metas = list(grouped.items())
            elif base.assignment == "greedy":
                self._block_assignment = greedy_balanced_assignment(
                    self._block_metas, world_size
                )
            else:
                self._block_assignment = round_robin_assignment(
                    self._block_metas, world_size
                )
        # staleness-tolerant eigenbases: drift-triggered refresh state
        self._drift_trigger: DriftTrigger | None = (
            DriftTrigger(base.drift_tol, base.max_eig_staleness)
            if base.drift_tol is not None
            else None
        )
        #: per-meta factor snapshots taken at each refresh (the state the
        #: current eigenbases were decomposed in), fed to the drift metric
        self._basis_snapshot: dict[str, np.ndarray] = {}
        self.n_drift_refreshes = 0
        self.n_drift_skips = 0
        # adaptive damping fed by the Eq. 18 KL statistic (executor hook)
        self._adaptive_damping: AdaptiveDamping | None = (
            AdaptiveDamping(base.damping) if base.adapt_damping else None
        )
        # instrumentation counters
        self.n_factor_updates = 0
        self.n_second_order_updates = 0
        self.n_eigs_computed_locally = 0
        # span tracing (repro.obs); the executor inherits this recorder
        self.tracer = NULL_TRACER
        # graceful-degradation ledger: consecutive failed refreshes per
        # factor key (reset on the next successful exchange), plus totals
        # for TrainingHistory
        self.staleness: dict[str, int] = {}
        self.n_stale_fallbacks = 0
        self.n_factor_comm_failures = 0
        self.n_eig_share_failures = 0
        #: step plans cached per (update_factors, update_second_order,
        #: blocks_active) — the graph/schedule depend only on static
        #: placement metadata plus which approximation phase is active
        self._plans: dict[tuple[bool, bool, bool], Any] = {}

    # ------------------------------------------------------------------
    # hooks
    # ------------------------------------------------------------------
    def _make_forward_hook(self, handler: KFACLayer):
        def hook(module: Module, inp: np.ndarray, out: np.ndarray) -> None:
            if module.training and self._capture_now:
                handler.save_input(inp)

        return hook

    def _make_backward_hook(self, handler: KFACLayer):
        def hook(module: Module, grad_out: np.ndarray) -> None:
            if module.training and self._capture_now:
                scaler = self.grad_scaler
                if scaler is not None and getattr(scaler, "enabled", True):
                    # undo the loss scale so G sees true gradient statistics
                    grad_out = grad_out / scaler.scale
                handler.save_grad_output(grad_out)

        return hook

    @property
    def _capture_now(self) -> bool:
        """Capture activations/grads on iterations that update factors."""
        return self.steps % self.fac_update_freq == 0

    def remove_hooks(self) -> None:
        """Detach from the model (e.g. before pickling the model)."""
        for remove in self._hook_removers:
            remove()
        self._hook_removers.clear()

    # ------------------------------------------------------------------
    # assignment
    # ------------------------------------------------------------------
    def _build_factor_metas(self) -> list[FactorMeta]:
        metas: list[FactorMeta] = []
        for layer in self.layers:
            metas.append(FactorMeta(layer.name, "A", layer.a_dim))
        for layer in self.layers:
            metas.append(FactorMeta(layer.name, "G", layer.g_dim))
        return metas

    def _assign_factors(self) -> dict[str, int]:
        if self.hp.assignment == "greedy":
            return greedy_balanced_assignment(self._factor_metas, self.world_size)
        return round_robin_assignment(self._factor_metas, self.world_size)

    @property
    def factor_metas(self) -> list[FactorMeta]:
        """All factor identities, in communication order (A's then G's)."""
        return list(self._factor_metas)

    @property
    def factor_assignment(self) -> dict[str, int]:
        """factor key -> owning worker."""
        return dict(self._factor_assignment)

    @property
    def blocks_active(self) -> bool:
        """Is the block-diagonal approximation phase currently engaged?

        True once ``diag_blocks > 1`` and ``diag_warmup`` exact
        second-order updates have completed; from then on plans, wire
        payloads, and Eig/EigShare tasks operate on block metas.
        """
        return (
            self.hp.diag_blocks > 1
            and self.n_second_order_updates >= self.hp.diag_warmup
        )

    def comm_metas(self, blocked: bool) -> "list[FactorMeta] | list[BlockMeta]":
        """The step's comm/eig units: block metas when ``blocked``."""
        return self._block_metas if blocked else self._factor_metas

    def comm_assignment(self, blocked: bool) -> dict[str, int]:
        """meta key -> owning worker, for the step's comm units."""
        return self._block_assignment if blocked else self._factor_assignment

    def _owner_of(self, meta: "FactorMeta | BlockMeta") -> int:
        if isinstance(meta, BlockMeta):
            return self._block_assignment[meta.key]
        return self._factor_assignment[meta.key]

    @property
    def grad_worker_placement(self) -> GroupPlacement | None:
        """Gradient-worker placement metadata (``HYBRID`` strategy only)."""
        return self._placement

    @property
    def grad_worker_count(self) -> int:
        """Ranks holding each layer's eigenbasis (P for COMM_OPT, 1 for LW)."""
        if self._placement is not None:
            return self._placement.group_size
        if self.hp.strategy == LAYER_WISE:
            return 1
        return self.world_size

    def is_grad_worker(self, layer_name: str, rank: int | None = None) -> bool:
        """Does ``rank`` (default: this rank) hold ``layer_name``'s eigenbasis?

        The single placement predicate shared by the executor (who
        preconditions), the portable-checkpoint redistribute-on-load path
        (who hydrates second-order state), and
        :func:`repro.elastic.redistribution_plan` (its pure-metadata
        mirror).
        """
        r = self.rank if rank is None else rank
        if self._placement is not None:
            return self._placement.is_grad_worker(r, layer_name)
        if self.hp.strategy == LAYER_WISE:
            return self._layer_assignment[layer_name] == r
        return True  # COMM_OPT: every rank preconditions every layer

    # ------------------------------------------------------------------
    # graceful degradation (stale-eigenbasis fallback)
    # ------------------------------------------------------------------
    def _has_second_order(self, meta: FactorMeta) -> bool:
        """Does the layer carry last-known second-order state for ``meta``?"""
        layer = self._layer_by_name(meta.layer)
        if self.hp.use_eigen_decomp:
            prior = layer.eig_A if meta.kind == "A" else layer.eig_G
        else:
            prior = layer.inv_A if meta.kind == "A" else layer.inv_G
        return prior is not None

    def _note_factor_comm_failure(self, metas: Sequence[FactorMeta]) -> None:
        """A factor allreduce was lost past the retry budget.

        Ranks keep their *local* running averages for this refresh — the
        owned eigendecompositions still happen (from un-averaged factors)
        and their shares keep all replicas in lockstep, so no staleness
        accrues; the next successful exchange re-averages the histories.
        """
        del metas  # per-bucket granularity not needed: one counter per event
        self.n_factor_comm_failures += 1
        self.n_stale_fallbacks += 1

    def _note_eig_share_failure(self, metas: Sequence[FactorMeta]) -> None:
        """An eigenbasis share was lost past the retry budget.

        *No* rank installs this exchange (the owner included), keeping
        every replica preconditioning with the identical last-known
        eigenbasis.  Consecutive failures accrue per-factor staleness;
        past ``hp.max_eig_staleness`` — or if a factor has no prior state
        at all — the step hard-fails.
        """
        self.n_eig_share_failures += 1
        self.n_stale_fallbacks += 1
        for meta in metas:
            if not self._has_second_order(meta):
                raise StaleEigenbasisError(
                    f"eigenbasis share for {meta.key} failed and the layer has "
                    "no last-known second-order state to fall back to"
                )
            count = self.staleness.get(meta.key, 0) + 1
            self.staleness[meta.key] = count
            if count > self.hp.max_eig_staleness:
                raise StaleEigenbasisError(
                    f"{meta.key} eigenbasis is stale for {count} consecutive "
                    f"refreshes (> max_eig_staleness={self.hp.max_eig_staleness})"
                )

    def _clear_staleness(self, metas: Sequence[FactorMeta]) -> None:
        """A successful second-order exchange resets the counters."""
        for meta in metas:
            self.staleness.pop(meta.key, None)

    # ------------------------------------------------------------------
    # the Algorithm 1 step (generator)
    # ------------------------------------------------------------------
    def step_generator(self) -> Generator[Any, Any, None]:
        """One preconditioning step; yields comm requests, mutates grads.

        Preconditions: forward+backward already ran (hooks captured data on
        factor-update iterations) and gradients are already averaged across
        workers (Listing 1 calls ``optimizer.synchronize()`` first).

        The step is planned as a task graph (:mod:`repro.sched`) and run
        by one :class:`repro.sched.executor.GraphExecutor` for every
        strategy; ``scheduler="graph"`` pipelines the collectives,
        ``"sync"`` yields the classic blocking request stream.
        """
        # imported here, not at module top: repro.sched.executor imports
        # repro.core submodules, whose package __init__ imports this module
        from repro.sched.executor import GraphExecutor

        update_factors = self.steps % self.fac_update_freq == 0
        # fixed kfac_update_freq schedule, or the drift trigger's verdict
        # (decided *before* this step's EMA fold-in, from post-allreduce
        # factor state — identical on every rank, hence lockstep plans)
        update_second_order = self._refresh_due(update_factors)

        if update_factors:
            # Algorithm 1 step 1: local factors, running averages
            for layer in self.layers:
                layer.update_factors(self.hp.factor_decay)
            self.n_factor_updates += 1

        plan = self.build_plan(update_factors, update_second_order)
        yield from GraphExecutor(self, plan).run()
        if update_second_order:
            self.n_second_order_updates += 1
            self._snapshot_basis_factors()
        self.steps += 1

    def _refresh_due(self, update_factors: bool) -> bool:
        """Should this step refresh the eigendecompositions?

        Without ``drift_tol`` this is the classic fixed schedule
        (``steps % kfac_update_freq == 0``, so step 0 always refreshes).
        With the drift trigger, refresh candidates are factor-update
        steps; the decision refreshes iff any basis is missing, any
        factor (or block) drifted past tolerance since it was last
        decomposed, or any basis has exhausted its ``max_eig_staleness``
        skip budget — the budget binds even when the drift metric says
        "fresh enough".  Skipped candidates accrue per-meta staleness.
        """
        trig = self._drift_trigger
        if trig is None:
            return self.steps % self.kfac_update_freq == 0
        if not update_factors:
            return False
        metas = self.comm_metas(self.blocks_active)
        max_drift = 0.0
        worst_staleness = 0
        has_basis = True
        for meta in metas:
            layer = self._layer_by_name(meta.layer)
            factor = layer.A if meta.kind == "A" else layer.G
            snap = self._basis_snapshot.get(meta.key)
            if factor is None or snap is None or not self._has_second_order(meta):
                has_basis = False
                break
            lo, hi = (meta.lo, meta.hi) if isinstance(meta, BlockMeta) else (0, meta.dim)
            max_drift = max(max_drift, trig.drift(factor[lo:hi, lo:hi], snap))
            worst_staleness = max(worst_staleness, self.staleness.get(meta.key, 0))
        refresh = trig.should_refresh(max_drift, worst_staleness, has_basis)
        if refresh:
            self.n_drift_refreshes += 1
        else:
            self.n_drift_skips += 1
            for meta in metas:
                self.staleness[meta.key] = self.staleness.get(meta.key, 0) + 1
        self.tracer.instant(
            f"refresh:{'go' if refresh else 'skip'}",
            "approx",
            self.rank,
            attrs={
                "step": self.steps,
                "max_drift": round(max_drift, 6),
                "worst_staleness": worst_staleness,
                "has_basis": has_basis,
            },
        )
        return refresh

    def _snapshot_basis_factors(self) -> None:
        """Record the factor state the just-refreshed bases decompose.

        Runs after the executor, so the snapshots hold post-allreduce
        values — identical on every rank, which keeps later drift
        decisions in lockstep.  Keys follow the *next* step's meta
        granularity (the warmup-to-blocked transition therefore reads as
        "no basis" and forces one refresh under the new keys).
        """
        if self._drift_trigger is None:
            return
        self._basis_snapshot.clear()
        for meta in self.comm_metas(self.blocks_active):
            layer = self._layer_by_name(meta.layer)
            factor = layer.A if meta.kind == "A" else layer.G
            if factor is None:  # pragma: no cover - refresh implies factors
                continue
            lo, hi = (meta.lo, meta.hi) if isinstance(meta, BlockMeta) else (0, meta.dim)
            self._basis_snapshot[meta.key] = np.array(factor[lo:hi, lo:hi], copy=True)

    def build_plan(
        self, update_factors: bool = True, update_second_order: bool = True
    ) -> Any:
        """The :class:`repro.sched.planner.StepPlan` for this step shape.

        Cached per ``(update_factors, update_second_order)`` pair — the
        graph, schedule and bucket partition depend only on static
        placement metadata.  ``scheduler="graph"`` plans pipelined
        launch/wait execution for the COMM_OPT and HYBRID strategies;
        ``"sync"`` plans the blocking request stream.  With
        ``bucket_bytes=None`` the pipeline chunk size comes from the
        cost-model rates (:func:`repro.sched.planner.choose_bucket_bytes`).
        Factors must exist when a factor exchange is planned (the wire
        partition is derived from their dtypes).
        """
        from repro.sched.planner import build_step_plan

        blocked = self.blocks_active
        key = (bool(update_factors), bool(update_second_order), blocked)
        plan = self._plans.get(key)
        if plan is not None:
            return plan
        comm_metas = self.comm_metas(blocked)
        pipelined = (
            self.hp.scheduler == "graph"
            and self.world_size > 1
            and self.hp.strategy in (COMM_OPT, HYBRID)
            and update_factors
            and update_second_order
        )
        wire: list[int] | None = None
        if update_factors and self.world_size > 1:
            # per-unit wire bytes (block metas past warmup — only the block
            # triangles ship): triangular packing and compressed transport
            # shrink the payloads the partition actually sees
            codec = get_codec(self.hp.comm_dtype)
            wire = []
            for meta in comm_metas:
                layer = self._layer_by_name(meta.layer)
                factor = layer.A if meta.kind == "A" else layer.G
                assert factor is not None, "plan built before factor update"
                elems = tri_len(meta.dim) if self.hp.symmetric_comm else meta.dim**2
                itemsize = codec.itemsize if codec is not None else factor.dtype.itemsize
                wire.append(elems * itemsize)
        groups: tuple = ()
        bcast_entries: tuple = ()
        if self.hp.strategy == HYBRID:
            index = {m.key: i for i, m in enumerate(comm_metas)}
            group_metas = self._group_block_metas if blocked else self._group_metas
            groups = tuple(
                (grp, [index[m.key] for m in metas]) for grp, metas in group_metas
            )
            bcast_entries = tuple(
                (root, [l.name for l in layers_r])
                for root, layers_r, _ in self._bcast_plan
            )
        plan = build_step_plan(
            strategy=self.hp.strategy,
            world_size=self.world_size,
            factor_metas=comm_metas,
            layer_names=[l.name for l in self.layers],
            groups=groups,
            bcast_entries=bcast_entries,
            wire_nbytes_list=wire,
            bucket_bytes=self.hp.bucket_bytes,
            update_factors=update_factors,
            update_second_order=update_second_order,
            pipelined=pipelined,
            blocked=blocked,
        )
        self._plans[key] = plan
        return plan

    def _compress_factor_tensors(
        self, tensors: list[np.ndarray], metas: "Sequence[FactorMeta | BlockMeta] | None" = None
    ) -> list[np.ndarray]:
        """Quantize factor payloads for compressed transport, with EF.

        A no-op without ``comm_dtype``.  Residuals are keyed by comm unit
        (factor, or block past warmup) so what fp16/bf16 rounds away this
        exchange is re-injected into the next one; the yielded arrays are
        wire-precision fp32 values (the driver's codec round-trips them
        losslessly and charges wire bytes).
        """
        if self._comm_ef is None:
            return tensors
        if metas is None:
            metas = self._factor_metas
        return [self._comm_ef.apply(meta.key, t) for meta, t in zip(metas, tensors)]

    def _install_second_order_chunk(
        self,
        gathered: Sequence[np.ndarray],
        chunk_metas: "Sequence[FactorMeta | BlockMeta]",
    ) -> None:
        """Install one pipeline chunk's gathered second-order payloads."""
        for worker in range(self.world_size):
            metas = [m for m in chunk_metas if self._owner_of(m) == worker]
            shapes: list[tuple[int, ...]] = []
            for meta in metas:
                if self.hp.use_eigen_decomp:
                    shapes.extend([(meta.dim, meta.dim), (meta.dim,)])
                else:
                    shapes.append((meta.dim, meta.dim))
            arrays = unpack_arrays(gathered[worker], shapes)
            idx = 0
            step = 2 if self.hp.use_eigen_decomp else 1
            for meta in metas:
                self._install_factor_state(meta, arrays[idx : idx + step])
                idx += step

    def _install_factor_state(
        self, meta: "FactorMeta | BlockMeta", arrays: Sequence[np.ndarray]
    ) -> None:
        """Install one factor's (or factor block's) payload into its layer.

        Block payloads are *staged*: the layer assembles a
        :class:`repro.approx.blockeig.BlockFactorEig` only once every
        block of the factor has arrived, so a half-shipped refresh never
        preconditions.
        """
        layer = self._layer_by_name(meta.layer)
        if self.hp.use_eigen_decomp:
            eig = FactorEig(Q=arrays[0], lam=arrays[1])
            if isinstance(meta, BlockMeta):
                layer.install_block_eig(
                    meta.kind, meta.block, eig, self._block_bounds[meta.parent_key]
                )
            elif meta.kind == "A":
                layer.eig_A = eig
            else:
                layer.eig_G = eig
        else:
            if meta.kind == "A":
                layer.inv_A = arrays[0]
            else:
                layer.inv_G = arrays[0]

    def _build_group_metas(self) -> list[tuple[tuple[int, ...], list[FactorMeta]]]:
        """Factor metas bucketed by gradient-worker group (stable order)."""
        assert self._placement is not None
        grouped: dict[tuple[int, ...], list[FactorMeta]] = {}
        for meta in self._factor_metas:
            grouped.setdefault(self._placement.groups[meta.layer], []).append(meta)
        return list(grouped.items())

    def _build_broadcast_plan(self) -> list[tuple[int, list[KFACLayer], tuple[int, ...]]]:
        """Fuse per-layer grad broadcasts by (root, participant set).

        With contiguous groups every layer owned by root ``r`` shares the
        same non-member set, so the second stage is at most P broadcasts
        of fused per-root payloads — each spanning ``P - g + 1`` ranks.
        """
        assert self._placement is not None
        plan: dict[tuple[int, tuple[int, ...]], list[KFACLayer]] = {}
        for layer in self.layers:
            grp = self._placement.groups[layer.name]
            if len(grp) >= self.world_size:
                continue  # everyone is a grad worker: nothing to broadcast
            root = grp[0]
            participants = (root,) + tuple(
                r for r in range(self.world_size) if r not in grp
            )
            plan.setdefault((root, participants), []).append(layer)
        return [(root, layers, ranks) for (root, ranks), layers in plan.items()]

    def _layer_by_name(self, name: str) -> KFACLayer:
        for layer in self.layers:
            if layer.name == name:
                return layer
        raise KeyError(f"no K-FAC layer named {name!r}")

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    def placement_metadata(self) -> dict:
        """The placement stamp written into every checkpoint.

        Records everything needed to (a) detect a mismatched naive resume
        and (b) re-plan shard ownership when a *portable* bundle (see
        :func:`repro.elastic.gather_state_dict`) is loaded into a
        different world size / ``grad_worker_frac``.
        """
        return {
            "strategy": self.hp.strategy,
            "grad_worker_frac": self.hp.grad_worker_frac,
            "world_size": self.world_size,
            "rank": self.rank,
            "assignment": self.hp.assignment,
            "use_eigen_decomp": self.hp.use_eigen_decomp,
            "symmetric_comm": self.hp.symmetric_comm,
            "comm_dtype": self.hp.comm_dtype,
            # informational (not a naive-resume match key): blocked bases
            # checkpoint as their dense block-diagonal assembly and any
            # diag_blocks run can resume them — the next refresh re-blocks
            "diag_blocks": self.hp.diag_blocks,
        }

    def state_dict(self) -> dict:
        """Serializable snapshot: counters, knobs, factors, second-order state.

        Mirrors the reference implementation's ``KFAC.state_dict`` so
        training can resume mid-run without re-warming the running
        averages.  The snapshot is stamped with :meth:`placement_metadata`
        and ``portable: False`` — it contains only *this rank's* owned
        second-order shards, so :meth:`load_state_dict` rejects it under a
        different world size / placement.  Use
        :func:`repro.elastic.gather_state_dict` for a rank-agnostic bundle
        that resumes anywhere.
        """
        layers: dict[str, dict[str, np.ndarray]] = {}
        for layer in self.layers:
            entry: dict[str, np.ndarray] = {}
            if layer.A is not None:
                entry["A"] = layer.A.copy()
                entry["G"] = layer.G.copy()  # type: ignore[union-attr]
            if layer.eig_A is not None and layer.eig_G is not None:
                entry["eig_A_Q"] = layer.eig_A.Q.copy()
                entry["eig_A_lam"] = layer.eig_A.lam.copy()
                entry["eig_G_Q"] = layer.eig_G.Q.copy()
                entry["eig_G_lam"] = layer.eig_G.lam.copy()
            if layer.inv_A is not None and layer.inv_G is not None:
                entry["inv_A"] = layer.inv_A.copy()
                entry["inv_G"] = layer.inv_G.copy()
            layers[layer.name] = entry
        return {
            "steps": self.steps,
            "lr": self.lr,
            "damping": self.damping,
            "fac_update_freq": self.fac_update_freq,
            "kfac_update_freq": self.kfac_update_freq,
            "layers": layers,
            "placement": self.placement_metadata(),
            "portable": False,
        }

    #: placement fields that must match for a non-portable resume
    _PLACEMENT_MATCH_KEYS = (
        "strategy",
        "grad_worker_frac",
        "world_size",
        "assignment",
        "use_eigen_decomp",
    )

    def load_state_dict(self, state: dict, strict: bool = True) -> None:
        """Restore a snapshot produced by :meth:`state_dict`.

        ``strict=True`` (default) raises ``KeyError`` if the checkpoint
        names a layer this model doesn't have **or** is missing a layer
        this model *does* have (a silent partial restore would train some
        layers from re-warmed factors without warning), and ``ValueError``
        if a non-portable snapshot was taken under a different placement
        (world size, strategy, ``grad_worker_frac``, assignment policy, or
        inverse method).  ``strict=False`` restores the intersection and
        skips the placement check.

        A *portable* bundle (``portable: True``, from
        :func:`repro.elastic.gather_state_dict`) carries every layer's
        complete second-order state; it is redistributed on load — running
        averages hydrate everywhere, eigenbases only where the *current*
        placement makes this rank a gradient worker — so it resumes under
        any world size / ``grad_worker_frac``.
        """
        portable = bool(state.get("portable", False))
        meta = state.get("placement")
        by_name = {layer.name: layer for layer in self.layers}
        unknown = sorted(set(state["layers"]) - set(by_name))
        missing = sorted(set(by_name) - set(state["layers"]))
        if strict and unknown:
            raise KeyError(f"checkpoint has unknown K-FAC layer {unknown[0]!r}")
        if strict and missing:
            raise KeyError(
                f"checkpoint is missing K-FAC layers {missing}; their factors "
                "would silently re-warm from scratch (pass strict=False to "
                "restore the intersection anyway)"
            )
        if strict and not portable and meta is not None:
            current = self.placement_metadata()
            mismatched = [
                key
                for key in self._PLACEMENT_MATCH_KEYS
                if meta.get(key) != current[key]
            ]
            if mismatched:
                detail = ", ".join(
                    f"{k}: checkpoint={meta.get(k)!r} != current={current[k]!r}"
                    for k in mismatched
                )
                raise ValueError(
                    "checkpoint placement does not match this preconditioner "
                    f"({detail}); per-rank snapshots only resume under the "
                    "identical placement — gather a portable bundle with "
                    "repro.elastic.gather_state_dict() to resume across world "
                    "sizes, or pass strict=False"
                )
        self.steps = int(state["steps"])
        self.lr = float(state["lr"])
        self.damping = float(state["damping"])
        self.fac_update_freq = int(state["fac_update_freq"])
        self.kfac_update_freq = int(state["kfac_update_freq"])
        for name, entry in state["layers"].items():
            if name not in by_name:
                continue  # tolerated under strict=False
            layer = by_name[name]
            if "A" in entry:
                layer.A = entry["A"].copy()
                layer.G = entry["G"].copy()
            # portable bundles are redistributed: second-order state
            # hydrates only where the *current* placement wants it
            if portable and not self.is_grad_worker(name):
                continue
            if "eig_A_Q" in entry:
                layer.eig_A = FactorEig(entry["eig_A_Q"].copy(), entry["eig_A_lam"].copy())
                layer.eig_G = FactorEig(entry["eig_G_Q"].copy(), entry["eig_G_lam"].copy())
            if "inv_A" in entry:
                layer.inv_A = entry["inv_A"].copy()
                layer.inv_G = entry["inv_G"].copy()

    # ------------------------------------------------------------------
    # convenience: run the step with no communication (world of one)
    # ------------------------------------------------------------------
    def step(self) -> None:
        """Single-worker step (Listing 1's ``preconditioner.step()``)."""
        if self.world_size != 1:
            raise RuntimeError(
                "step() is the single-worker entry point; use a driver from "
                "repro.core.distributed for multi-worker execution"
            )
        gen = self.step_generator()
        try:
            req = next(gen)
            while True:
                if isinstance(req, AllReduceRequest):
                    req = gen.send(list(req.tensors))
                elif isinstance(req, AllGatherRequest):
                    req = gen.send([req.tensor])
                else:  # pragma: no cover - defensive
                    raise TypeError(f"unknown comm request {type(req)}")
        except StopIteration:
            pass
