"""The distributed K-FAC gradient preconditioner (paper Algorithm 1).

``KFAC`` attaches hooks to every supported layer of a model, maintains
running-average Kronecker factors, and — on ``step()`` — rewrites
``param.grad`` in place with the preconditioned gradient so that any
standard optimizer can apply the update (paper Listing 1).

Two distribution strategies (§VI-C3) are implemented behind one code path:

- ``COMM_OPT`` (the paper's **K-FAC-opt**): each *factor* is assigned to a
  worker round-robin; workers eigendecompose only their assigned factors;
  decompositions are allgathered; every worker preconditions every layer
  locally.  Iterations without a K-FAC update need **no communication
  beyond the ordinary gradient allreduce**.

- ``LAYER_WISE`` (the paper's **K-FAC-lw**, the scheme of Osawa et al.):
  each *layer* is assigned to a worker, which computes both of its
  eigendecompositions *and* its preconditioned gradient; the preconditioned
  gradients are then allgathered — on **every** iteration, since only the
  owner holds the layer's second-order state.

The step logic is a generator yielding
:class:`repro.core.comm_ops.AllReduceRequest` /
:class:`AllGatherRequest`; drivers in :mod:`repro.core.distributed` bind it
to a world.  Counters (``steps``, update frequencies, captures) follow the
reference implementation: factors are captured/updated every
``fac_update_freq`` steps and second-order state every
``kfac_update_freq`` steps, with ``fac_update_freq`` typically 10x more
frequent (§V-C).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any, Generator, Sequence

import numpy as np

from repro.comm.compression import ErrorFeedback, get_codec, wire_nbytes
from repro.comm.engine import (
    DEFAULT_BUCKET_BYTES,
    estimate_second_order_seconds,
    partition_buckets,
)
from repro.comm.fusion import tri_unpack
from repro.core.assignment import (
    FactorMeta,
    greedy_balanced_assignment,
    layer_wise_assignment,
    round_robin_assignment,
)
from repro.core.clipping import kl_clip_factor
from repro.core.comm_ops import (
    AllGatherLaunch,
    AllGatherRequest,
    AllReduceLaunch,
    AllReduceRequest,
    WaitRequest,
    pack_arrays,
    pack_symmetric,
    unpack_arrays,
    unpack_symmetric,
)
from repro.core.inverse import FactorEig, eigendecompose, explicit_damped_inverse
from repro.core.layers import KFACLayer, make_kfac_layer
from repro.nn.module import Module

__all__ = ["KFAC", "KFACHyperParams", "COMM_OPT", "LAYER_WISE"]

COMM_OPT = "comm-opt"
LAYER_WISE = "layer-wise"


@dataclass
class KFACHyperParams:
    """Hyper-parameters of the preconditioner (defaults follow the paper).

    Attributes
    ----------
    lr:
        Learning rate used by the Eq. 18 scaling (kept in sync with the
        wrapped optimizer by the trainer).
    damping:
        Tikhonov damping ``gamma`` (paper uses 0.001–0.003).
    factor_decay:
        Running-average decay on the old factor value (paper ``1 - xi``).
    kl_clip:
        Eq. 18 constant ``kappa``.
    fac_update_freq:
        Interval (steps) between factor recomputation + factor allreduce.
    kfac_update_freq:
        Interval (steps) between eigendecomposition refreshes; the paper's
        *K-FAC update frequency* knob (Table III).
    use_eigen_decomp:
        Eigendecomposition path (True, Eqs. 13–15) or explicit factored
        inverse (False, Eq. 11) — the Table I comparison.
    strategy:
        ``COMM_OPT`` or ``LAYER_WISE``.
    assignment:
        ``"round_robin"`` (paper) or ``"greedy"`` (the §VI-C4 LPT policy).
    skip_layers:
        Layer-name substrings to exclude from preconditioning.  Entries
        must be non-empty (an empty string is a substring of *every* name
        and would silently skip the whole model).
    async_comm:
        Pipeline the COMM_OPT factor exchange SPD-KFAC-style: bucketed
        asynchronous factor allreduces overlapped with local
        eigendecompositions and a chunked eigendecomposition allgather.
        Numerically equivalent to the synchronous path; only the
        exposed-communication accounting changes.
    bucket_bytes:
        Pipeline chunk size for ``async_comm`` (per-bucket payload cap).
    symmetric_comm:
        Exchange each ``d x d`` factor as its ``d*(d+1)/2``-element upper
        triangle (Osawa et al. 2019), nearly halving factor-stage bytes on
        both the synchronous and pipelined paths.  Lossless: the syrk Gram
        kernel makes factors exactly symmetric, and averaging triangles
        then mirroring is bit-identical to averaging full matrices.
    comm_dtype:
        Wire precision of the factor allreduce: ``None`` (dtype-preserving,
        the default), ``"fp16"`` or ``"bf16"``.  Compressed transport uses
        fp32 reduction accumulators and per-factor error-feedback
        residuals, halves factor-stage bytes *again* on top of
        ``symmetric_comm``, and composes with both the synchronous and
        pipelined routes.  Lossy (unlike ``symmetric_comm``) but bounded:
        the EMA absorbs the quantization noise and the residuals re-inject
        it, so trajectories track the full-precision run.
    """

    lr: float = 0.1
    damping: float = 0.003
    factor_decay: float = 0.95
    kl_clip: float = 1e-3
    fac_update_freq: int = 1
    kfac_update_freq: int = 10
    use_eigen_decomp: bool = True
    strategy: str = COMM_OPT
    assignment: str = "round_robin"
    skip_layers: tuple[str, ...] = ()
    async_comm: bool = False
    bucket_bytes: int = DEFAULT_BUCKET_BYTES
    symmetric_comm: bool = True
    comm_dtype: str | None = None

    def __post_init__(self) -> None:
        if self.comm_dtype in ("fp32", "none"):
            self.comm_dtype = None
        if self.comm_dtype not in (None, "fp16", "bf16"):
            raise ValueError(
                f"comm_dtype must be None, 'fp16' or 'bf16', got {self.comm_dtype!r}"
            )
        if self.damping <= 0:
            raise ValueError(f"damping must be positive, got {self.damping}")
        if not 0 <= self.factor_decay < 1:
            raise ValueError(f"factor_decay must be in [0,1), got {self.factor_decay}")
        if self.fac_update_freq < 1 or self.kfac_update_freq < 1:
            raise ValueError("update frequencies must be >= 1")
        if self.strategy not in (COMM_OPT, LAYER_WISE):
            raise ValueError(f"unknown strategy {self.strategy!r}")
        if self.assignment not in ("round_robin", "greedy"):
            raise ValueError(f"unknown assignment {self.assignment!r}")
        for entry in self.skip_layers:
            if not isinstance(entry, str) or not entry:
                raise ValueError(
                    f"skip_layers entries must be non-empty strings, got {entry!r} "
                    "(an empty string matches every layer name, excluding the "
                    "whole model from K-FAC)"
                )
        if self.bucket_bytes <= 0:
            raise ValueError(f"bucket_bytes must be positive, got {self.bucket_bytes}")


class KFAC:
    """K-FAC preconditioner for one model replica.

    Parameters
    ----------
    model:
        The replica whose supported layers will be preconditioned.
    rank / world_size:
        This replica's position in the (simulated) worker world.
    hyper:
        Hyper-parameters; keyword overrides are also accepted.
    """

    def __init__(
        self,
        model: Module,
        rank: int = 0,
        world_size: int = 1,
        hyper: KFACHyperParams | None = None,
        grad_scaler: Any | None = None,
        **overrides: Any,
    ) -> None:
        if world_size < 1 or not 0 <= rank < world_size:
            raise ValueError(f"invalid rank/world_size: {rank}/{world_size}")
        base = hyper if hyper is not None else KFACHyperParams()
        if overrides:
            valid = {f.name for f in fields(KFACHyperParams)}
            for key in overrides:
                if key not in valid:
                    raise TypeError(
                        f"KFAC() got an unknown hyper-parameter {key!r}; "
                        f"valid keys: {', '.join(sorted(valid))}"
                    )
            base = KFACHyperParams(
                **{**base.__dict__, **overrides}  # type: ignore[arg-type]
            )
        self.hp = base
        self.model = model
        self.rank = rank
        self.world_size = world_size
        #: AMP loss scaler (see :class:`repro.precision.GradScaler`): when
        #: set, captured output-gradients are divided by the current scale
        #: so ``G`` factors are built from *unscaled* statistics
        self.grad_scaler = grad_scaler
        #: per-factor quantization residuals for compressed factor comm
        codec = get_codec(base.comm_dtype)
        self._comm_ef: ErrorFeedback | None = (
            ErrorFeedback(codec) if codec is not None else None
        )
        self.steps = 0
        # mutable knobs (targets of KFACParamScheduler)
        self.lr = base.lr
        self.damping = base.damping
        self.fac_update_freq = base.fac_update_freq
        self.kfac_update_freq = base.kfac_update_freq

        self.layers: list[KFACLayer] = []
        self._hook_removers: list = []
        for name, module in model.named_modules():
            if any(s in name for s in base.skip_layers):
                continue
            handler = make_kfac_layer(name, module)
            if handler is None:
                continue
            self.layers.append(handler)
            self._hook_removers.append(
                module.register_forward_hook(self._make_forward_hook(handler))
            )
            self._hook_removers.append(
                module.register_backward_hook(self._make_backward_hook(handler))
            )
        if not self.layers:
            raise ValueError("model has no K-FAC-supported layers (Linear/Conv2d)")

        self._factor_metas = self._build_factor_metas()
        self._factor_assignment: dict[str, int] = self._assign_factors()
        self._layer_assignment: dict[str, int] = layer_wise_assignment(
            [l.name for l in self.layers], world_size
        )
        # instrumentation counters
        self.n_factor_updates = 0
        self.n_second_order_updates = 0
        self.n_eigs_computed_locally = 0

    # ------------------------------------------------------------------
    # hooks
    # ------------------------------------------------------------------
    def _make_forward_hook(self, handler: KFACLayer):
        def hook(module: Module, inp: np.ndarray, out: np.ndarray) -> None:
            if module.training and self._capture_now:
                handler.save_input(inp)

        return hook

    def _make_backward_hook(self, handler: KFACLayer):
        def hook(module: Module, grad_out: np.ndarray) -> None:
            if module.training and self._capture_now:
                scaler = self.grad_scaler
                if scaler is not None and getattr(scaler, "enabled", True):
                    # undo the loss scale so G sees true gradient statistics
                    grad_out = grad_out / scaler.scale
                handler.save_grad_output(grad_out)

        return hook

    @property
    def _capture_now(self) -> bool:
        """Capture activations/grads on iterations that update factors."""
        return self.steps % self.fac_update_freq == 0

    def remove_hooks(self) -> None:
        """Detach from the model (e.g. before pickling the model)."""
        for remove in self._hook_removers:
            remove()
        self._hook_removers.clear()

    # ------------------------------------------------------------------
    # assignment
    # ------------------------------------------------------------------
    def _build_factor_metas(self) -> list[FactorMeta]:
        metas: list[FactorMeta] = []
        for layer in self.layers:
            metas.append(FactorMeta(layer.name, "A", layer.a_dim))
        for layer in self.layers:
            metas.append(FactorMeta(layer.name, "G", layer.g_dim))
        return metas

    def _assign_factors(self) -> dict[str, int]:
        if self.hp.assignment == "greedy":
            return greedy_balanced_assignment(self._factor_metas, self.world_size)
        return round_robin_assignment(self._factor_metas, self.world_size)

    @property
    def factor_metas(self) -> list[FactorMeta]:
        """All factor identities, in communication order (A's then G's)."""
        return list(self._factor_metas)

    @property
    def factor_assignment(self) -> dict[str, int]:
        """factor key -> owning worker."""
        return dict(self._factor_assignment)

    # ------------------------------------------------------------------
    # the Algorithm 1 step (generator)
    # ------------------------------------------------------------------
    def step_generator(self) -> Generator[Any, Any, None]:
        """One preconditioning step; yields comm requests, mutates grads.

        Preconditions: forward+backward already ran (hooks captured data on
        factor-update iterations) and gradients are already averaged across
        workers (Listing 1 calls ``optimizer.synchronize()`` first).
        """
        update_factors = self.steps % self.fac_update_freq == 0
        update_second_order = self.steps % self.kfac_update_freq == 0

        if update_factors:
            # Algorithm 1 step 1: local factors, running averages
            for layer in self.layers:
                layer.update_factors(self.hp.factor_decay)
            self.n_factor_updates += 1

        pipelined = (
            self.hp.async_comm
            and self.world_size > 1
            and self.hp.strategy == COMM_OPT
            and update_factors
            and update_second_order
        )
        if pipelined:
            # SPD-KFAC-style pipeline: bucketed async factor allreduce
            # overlapped with local eigendecompositions + chunked allgather.
            yield from self._pipelined_update_comm_opt()
            self.n_second_order_updates += 1
        else:
            if update_factors and self.world_size > 1:
                factors = [l.A for l in self.layers] + [l.G for l in self.layers]
                if self.hp.symmetric_comm:
                    # ship only the upper triangles: d*(d+1)/2 elements each
                    tensors = pack_symmetric(factors)
                else:
                    tensors = factors
                tensors = self._compress_factor_tensors(tensors)
                reduced = yield AllReduceRequest(
                    tensors=tensors,  # type: ignore[arg-type]
                    op="average",
                    phase="factor_comm",
                    comm_dtype=self.hp.comm_dtype,
                )
                if self.hp.symmetric_comm:
                    reduced = unpack_symmetric(
                        reduced, [m.dim for m in self._factor_metas]
                    )
                n = len(self.layers)
                for i, layer in enumerate(self.layers):
                    layer.A = reduced[i]
                    layer.G = reduced[n + i]

            if update_second_order:
                if self.hp.strategy == COMM_OPT:
                    yield from self._update_second_order_comm_opt()
                else:
                    self._update_second_order_layer_wise()
                self.n_second_order_updates += 1

        if self.hp.strategy == COMM_OPT:
            self._precondition_all_local()
        else:
            yield from self._precondition_layer_wise()

        self.steps += 1

    def _compress_factor_tensors(self, tensors: list[np.ndarray]) -> list[np.ndarray]:
        """Quantize factor payloads for compressed transport, with EF.

        A no-op without ``comm_dtype``.  Residuals are keyed by factor so
        what fp16/bf16 rounds away this exchange is re-injected into the
        next one; the yielded arrays are wire-precision fp32 values (the
        driver's codec round-trips them losslessly and charges wire bytes).
        """
        if self._comm_ef is None:
            return tensors
        return [
            self._comm_ef.apply(meta.key, t)
            for meta, t in zip(self._factor_metas, tensors)
        ]

    # -- pipelined COMM_OPT factor + second-order update -------------------
    def _pipelined_update_comm_opt(self) -> Generator[Any, Any, None]:
        """Bucketed factor allreduce overlapped with eigendecompositions.

        The factor list (A's then G's, communication order) is split into
        buckets of at most ``bucket_bytes``.  While bucket ``b+1``'s
        allreduce is in flight, this rank installs bucket ``b``'s reduced
        factors, decomposes the ones it owns, and launches the chunked
        allgather of those decompositions — so factor communication hides
        behind second-order compute and only the install point blocks.
        Numerically identical to the synchronous path (same reductions,
        same decompositions, different interleaving).  With
        ``symmetric_comm`` the buckets carry packed upper triangles, so the
        partition — and therefore the pipeline depth — follows the halved
        payload.
        """
        eigen = self.hp.use_eigen_decomp
        symmetric = self.hp.symmetric_comm
        codec = get_codec(self.hp.comm_dtype)
        factors = [l.A for l in self.layers] + [l.G for l in self.layers]
        metas = self._factor_metas  # same order as ``factors``
        tensors = pack_symmetric(factors) if symmetric else factors
        tensors = self._compress_factor_tensors(tensors)
        # partition by *wire* bytes: under compressed transport the halved
        # payload (again on top of triangular packing) sets pipeline depth
        buckets = partition_buckets(
            [wire_nbytes(t, codec) for t in tensors], self.hp.bucket_bytes
        )
        # same promotion rule as the sync path's pack_arrays(dtype=None), so
        # mixed-precision models keep their widest dtype in transit; pinned
        # explicitly because ranks owning nothing in a chunk still must
        # contribute an empty buffer of the matching dtype
        transport_dtype = np.result_type(*tensors)

        yield AllReduceLaunch(
            tensors=[tensors[i] for i in buckets[0]],
            op="average",
            phase="factor_comm",
            tag="fac:0",
            comm_dtype=self.hp.comm_dtype,
        )
        pending_compute = 0.0
        for b, bucket in enumerate(buckets):
            reduced = yield WaitRequest(tag=f"fac:{b}", compute_seconds=pending_compute)
            pending_compute = 0.0
            for idx, arr in zip(bucket, reduced):
                meta = metas[idx]
                layer = self._layer_by_name(meta.layer)
                if symmetric:
                    arr = tri_unpack(arr, meta.dim)
                if meta.kind == "A":
                    layer.A = arr
                else:
                    layer.G = arr
            if b + 1 < len(buckets):
                yield AllReduceLaunch(
                    tensors=[tensors[i] for i in buckets[b + 1]],
                    op="average",
                    phase="factor_comm",
                    tag=f"fac:{b + 1}",
                    comm_dtype=self.hp.comm_dtype,
                )
            # decompose this rank's share of the just-reduced bucket while
            # the next bucket's allreduce is in flight
            payload: list[np.ndarray] = []
            dims: list[int] = []
            for idx in bucket:
                meta = metas[idx]
                if self._factor_assignment[meta.key] != self.rank:
                    continue
                layer = self._layer_by_name(meta.layer)
                factor = layer.A if meta.kind == "A" else layer.G
                assert factor is not None, "second-order update before factor update"
                if eigen:
                    eig = eigendecompose(factor)
                    payload.extend([eig.Q, eig.lam])
                else:
                    payload.append(explicit_damped_inverse(factor, self.damping))
                dims.append(meta.dim)
                self.n_eigs_computed_locally += 1
            pending_compute += estimate_second_order_seconds(dims, eigen)
            yield AllGatherLaunch(
                tensor=pack_arrays(payload, dtype=transport_dtype),
                phase="eig_comm",
                tag=f"eig:{b}",
            )
        for b, bucket in enumerate(buckets):
            gathered = yield WaitRequest(tag=f"eig:{b}", compute_seconds=pending_compute)
            pending_compute = 0.0
            self._install_second_order_chunk(gathered, [metas[i] for i in bucket])

    def _install_second_order_chunk(
        self, gathered: Sequence[np.ndarray], chunk_metas: Sequence[FactorMeta]
    ) -> None:
        """Install one pipeline chunk's gathered second-order payloads."""
        for worker in range(self.world_size):
            metas = [m for m in chunk_metas if self._factor_assignment[m.key] == worker]
            shapes: list[tuple[int, ...]] = []
            for meta in metas:
                if self.hp.use_eigen_decomp:
                    shapes.extend([(meta.dim, meta.dim), (meta.dim,)])
                else:
                    shapes.append((meta.dim, meta.dim))
            arrays = unpack_arrays(gathered[worker], shapes)
            idx = 0
            for meta in metas:
                layer = self._layer_by_name(meta.layer)
                if self.hp.use_eigen_decomp:
                    eig = FactorEig(Q=arrays[idx], lam=arrays[idx + 1])
                    idx += 2
                    if meta.kind == "A":
                        layer.eig_A = eig
                    else:
                        layer.eig_G = eig
                else:
                    inv = arrays[idx]
                    idx += 1
                    if meta.kind == "A":
                        layer.inv_A = inv
                    else:
                        layer.inv_G = inv

    # -- COMM_OPT second-order update (Algorithm 1 steps 2 + allgather) ----
    def _update_second_order_comm_opt(self) -> Generator[Any, Any, None]:
        mine = [m for m in self._factor_metas if self._factor_assignment[m.key] == self.rank]
        local_payload: list[np.ndarray] = []
        for meta in mine:
            layer = self._layer_by_name(meta.layer)
            factor = layer.A if meta.kind == "A" else layer.G
            assert factor is not None, "second-order update before factor update"
            if self.hp.use_eigen_decomp:
                eig = eigendecompose(factor)
                local_payload.extend([eig.Q, eig.lam])
            else:
                local_payload.append(explicit_damped_inverse(factor, self.damping))
            self.n_eigs_computed_locally += 1
        flat = pack_arrays(local_payload)
        if self.world_size > 1:
            gathered = yield AllGatherRequest(tensor=flat, phase="eig_comm")
        else:
            gathered = [flat]
        self._install_second_order(gathered)

    def _install_second_order(self, gathered: Sequence[np.ndarray]) -> None:
        """Unpack every worker's factor shard and install into layers."""
        per_worker: dict[int, list[FactorMeta]] = {r: [] for r in range(self.world_size)}
        for meta in self._factor_metas:
            per_worker[self._factor_assignment[meta.key]].append(meta)
        for worker, metas in per_worker.items():
            shapes: list[tuple[int, ...]] = []
            for meta in metas:
                if self.hp.use_eigen_decomp:
                    shapes.extend([(meta.dim, meta.dim), (meta.dim,)])
                else:
                    shapes.append((meta.dim, meta.dim))
            arrays = unpack_arrays(gathered[worker], shapes)
            idx = 0
            for meta in metas:
                layer = self._layer_by_name(meta.layer)
                if self.hp.use_eigen_decomp:
                    eig = FactorEig(Q=arrays[idx], lam=arrays[idx + 1])
                    idx += 2
                    if meta.kind == "A":
                        layer.eig_A = eig
                    else:
                        layer.eig_G = eig
                else:
                    inv = arrays[idx]
                    idx += 1
                    if meta.kind == "A":
                        layer.inv_A = inv
                    else:
                        layer.inv_G = inv

    # -- LAYER_WISE second-order update (owner keeps state local) -----------
    def _update_second_order_layer_wise(self) -> None:
        for layer in self.layers:
            if self._layer_assignment[layer.name] != self.rank:
                continue
            if self.hp.use_eigen_decomp:
                layer.eig_A, layer.eig_G = layer.compute_eigen()
                self.n_eigs_computed_locally += 2
            else:
                layer.inv_A, layer.inv_G = layer.compute_inverses(self.damping)
                self.n_eigs_computed_locally += 2

    # -- preconditioning ------------------------------------------------
    def _precondition_all_local(self) -> None:
        raw = [layer.get_grad_matrix() for layer in self.layers]
        pre = [
            layer.precondition(g, self.damping, self.hp.use_eigen_decomp)
            for layer, g in zip(self.layers, raw)
        ]
        nu = kl_clip_factor(pre, raw, self.lr, self.hp.kl_clip)
        for layer, p in zip(self.layers, pre):
            layer.set_grad_matrix(nu * p)

    def _precondition_layer_wise(self) -> Generator[Any, Any, None]:
        raw = [layer.get_grad_matrix() for layer in self.layers]
        mine_payload: list[np.ndarray] = []
        for layer, g in zip(self.layers, raw):
            if self._layer_assignment[layer.name] == self.rank:
                mine_payload.append(
                    layer.precondition(g, self.damping, self.hp.use_eigen_decomp)
                )
        flat = pack_arrays(mine_payload)
        if self.world_size > 1:
            gathered = yield AllGatherRequest(tensor=flat, phase="precond_comm")
        else:
            gathered = [flat]
        pre_by_layer: dict[str, np.ndarray] = {}
        for worker in range(self.world_size):
            metas = [
                layer for layer in self.layers if self._layer_assignment[layer.name] == worker
            ]
            shapes = [(l.g_dim, l.a_dim) for l in metas]
            arrays = unpack_arrays(gathered[worker], shapes)
            for l, arr in zip(metas, arrays):
                pre_by_layer[l.name] = arr
        pre = [pre_by_layer[layer.name] for layer in self.layers]
        nu = kl_clip_factor(pre, raw, self.lr, self.hp.kl_clip)
        for layer, p in zip(self.layers, pre):
            layer.set_grad_matrix(nu * p)

    def _layer_by_name(self, name: str) -> KFACLayer:
        for layer in self.layers:
            if layer.name == name:
                return layer
        raise KeyError(f"no K-FAC layer named {name!r}")

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Serializable snapshot: counters, knobs, factors, second-order state.

        Mirrors the reference implementation's ``KFAC.state_dict`` so
        training can resume mid-run without re-warming the running
        averages.
        """
        layers: dict[str, dict[str, np.ndarray]] = {}
        for layer in self.layers:
            entry: dict[str, np.ndarray] = {}
            if layer.A is not None:
                entry["A"] = layer.A.copy()
                entry["G"] = layer.G.copy()  # type: ignore[union-attr]
            if layer.eig_A is not None and layer.eig_G is not None:
                entry["eig_A_Q"] = layer.eig_A.Q.copy()
                entry["eig_A_lam"] = layer.eig_A.lam.copy()
                entry["eig_G_Q"] = layer.eig_G.Q.copy()
                entry["eig_G_lam"] = layer.eig_G.lam.copy()
            if layer.inv_A is not None and layer.inv_G is not None:
                entry["inv_A"] = layer.inv_A.copy()
                entry["inv_G"] = layer.inv_G.copy()
            layers[layer.name] = entry
        return {
            "steps": self.steps,
            "lr": self.lr,
            "damping": self.damping,
            "fac_update_freq": self.fac_update_freq,
            "kfac_update_freq": self.kfac_update_freq,
            "layers": layers,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`state_dict`."""
        self.steps = int(state["steps"])
        self.lr = float(state["lr"])
        self.damping = float(state["damping"])
        self.fac_update_freq = int(state["fac_update_freq"])
        self.kfac_update_freq = int(state["kfac_update_freq"])
        by_name = {layer.name: layer for layer in self.layers}
        for name, entry in state["layers"].items():
            if name not in by_name:
                raise KeyError(f"checkpoint has unknown K-FAC layer {name!r}")
            layer = by_name[name]
            if "A" in entry:
                layer.A = entry["A"].copy()
                layer.G = entry["G"].copy()
            if "eig_A_Q" in entry:
                from repro.core.inverse import FactorEig

                layer.eig_A = FactorEig(entry["eig_A_Q"].copy(), entry["eig_A_lam"].copy())
                layer.eig_G = FactorEig(entry["eig_G_Q"].copy(), entry["eig_G_lam"].copy())
            if "inv_A" in entry:
                layer.inv_A = entry["inv_A"].copy()
                layer.inv_G = entry["inv_G"].copy()

    # ------------------------------------------------------------------
    # convenience: run the step with no communication (world of one)
    # ------------------------------------------------------------------
    def step(self) -> None:
        """Single-worker step (Listing 1's ``preconditioner.step()``)."""
        if self.world_size != 1:
            raise RuntimeError(
                "step() is the single-worker entry point; use a driver from "
                "repro.core.distributed for multi-worker execution"
            )
        gen = self.step_generator()
        try:
            req = next(gen)
            while True:
                if isinstance(req, AllReduceRequest):
                    req = gen.send(list(req.tensors))
                elif isinstance(req, AllGatherRequest):
                    req = gen.send([req.tensor])
                else:  # pragma: no cover - defensive
                    raise TypeError(f"unknown comm request {type(req)}")
        except StopIteration:
            pass
