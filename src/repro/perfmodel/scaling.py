"""Time-to-solution projection and scaling studies (Figs. 7–9, Tables IV–VI).

Epoch budgets follow the paper: SGD reaches the MLPerf baseline in 90
epochs, K-FAC (either distribution strategy) in 55.  K-FAC update intervals
scale with the number of GPUs so the update frequency per *epoch* is
constant: 2000/1000/500/250/125 iterations at 16/32/64/128/256 GPUs
(§VI-C2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.perfmodel.hardware import (
    FRONTERA_LIKE,
    V100_LIKE,
    ClusterProfile,
    DeviceProfile,
)
from repro.perfmodel.iteration import IterationModel, KfacIntervals
from repro.perfmodel.specs import ModelSpec, resnet_spec

__all__ = [
    "IMAGENET_TRAIN_SIZE",
    "SGD_EPOCHS",
    "KFAC_EPOCHS",
    "PAPER_GPU_SCALES",
    "scale_interval_schedule",
    "ScalingPoint",
    "ScalingStudy",
    "improvement_table",
    "worker_speedup_table",
]

IMAGENET_TRAIN_SIZE = 1_281_167
SGD_EPOCHS = 90
KFAC_EPOCHS = 55
PAPER_GPU_SCALES = (16, 32, 64, 128, 256)


def scale_interval_schedule(gpus: int, base_gpus: int = 16, base_interval: int = 2000) -> int:
    """The paper's scale-proportional K-FAC update interval (§VI-C2).

    Example
    -------
    >>> from repro.perfmodel.scaling import scale_interval_schedule
    >>> scale_interval_schedule(16), scale_interval_schedule(256)
    (2000, 125)
    """
    if gpus < 1:
        raise ValueError(f"gpus must be >= 1, got {gpus}")
    return max(1, base_interval * base_gpus // gpus)


@dataclass(frozen=True)
class ScalingPoint:
    """Time-to-solution at one GPU count."""

    gpus: int
    sgd_minutes: float
    kfac_lw_minutes: float
    kfac_opt_minutes: float

    def improvement_opt(self) -> float:
        """Fractional improvement of K-FAC-opt over SGD (Table IV entry)."""
        return 1.0 - self.kfac_opt_minutes / self.sgd_minutes

    def improvement_lw(self) -> float:
        return 1.0 - self.kfac_lw_minutes / self.sgd_minutes


@dataclass
class ScalingStudy:
    """Full Figs. 7–9 sweep for one model depth.

    Example
    -------
    >>> from repro.perfmodel.scaling import ScalingStudy
    >>> points = ScalingStudy(depth=50, gpus=(16, 64)).run()
    >>> points[0].gpus, points[0].sgd_minutes > points[1].sgd_minutes
    (16, True)
    """

    depth: int
    gpus: tuple[int, ...] = PAPER_GPU_SCALES
    device: DeviceProfile = V100_LIKE
    cluster: ClusterProfile = FRONTERA_LIKE
    local_batch: int = 32
    dataset_size: int = IMAGENET_TRAIN_SIZE
    sgd_epochs: int = SGD_EPOCHS
    kfac_epochs: int = KFAC_EPOCHS
    assignment_policy: str = "round_robin"
    model: ModelSpec = field(init=False)

    def __post_init__(self) -> None:
        self.model = resnet_spec(self.depth)

    def _iteration_model(self) -> IterationModel:
        return IterationModel(self.model, self.device, self.cluster, self.local_batch)

    def run(self) -> list[ScalingPoint]:
        im = self._iteration_model()
        points = []
        for p in self.gpus:
            intervals = KfacIntervals.from_eig_interval(scale_interval_schedule(p))
            sgd = self.sgd_epochs * im.epoch_time(p, "sgd", self.dataset_size)
            lw = self.kfac_epochs * im.epoch_time(
                p, "kfac-lw", self.dataset_size, intervals
            )
            opt = self.kfac_epochs * im.epoch_time(
                p, "kfac-opt", self.dataset_size, intervals, self.assignment_policy
            )
            points.append(
                ScalingPoint(
                    gpus=p,
                    sgd_minutes=sgd / 60.0,
                    kfac_lw_minutes=lw / 60.0,
                    kfac_opt_minutes=opt / 60.0,
                )
            )
        return points

    def scaling_efficiency(self, points: list[ScalingPoint] | None = None) -> dict[str, list[float]]:
        """Time-to-solution scaling efficiency relative to the smallest scale.

        ``eff(P) = (T(P0) * P0) / (T(P) * P)`` per optimizer.
        """
        pts = points if points is not None else self.run()
        base = pts[0]
        out: dict[str, list[float]] = {"sgd": [], "kfac-lw": [], "kfac-opt": []}
        for pt in pts:
            scale = base.gpus / pt.gpus
            out["sgd"].append(base.sgd_minutes / pt.sgd_minutes * scale)
            out["kfac-lw"].append(base.kfac_lw_minutes / pt.kfac_lw_minutes * scale)
            out["kfac-opt"].append(base.kfac_opt_minutes / pt.kfac_opt_minutes * scale)
        return out


def improvement_table(
    depths: tuple[int, ...] = (50, 101, 152),
    gpus: tuple[int, ...] = PAPER_GPU_SCALES,
    **study_kw: object,
) -> dict[int, list[float]]:
    """Table IV: fractional K-FAC-opt improvement over SGD, per depth/scale.

    Example
    -------
    >>> from repro.perfmodel.scaling import improvement_table
    >>> table = improvement_table(depths=(50,), gpus=(16, 64))
    >>> len(table[50]) == 2 and all(0 < v < 1 for v in table[50])
    True
    """
    table: dict[int, list[float]] = {}
    for depth in depths:
        study = ScalingStudy(depth=depth, gpus=gpus, **study_kw)  # type: ignore[arg-type]
        table[depth] = [pt.improvement_opt() for pt in study.run()]
    return table


def worker_speedup_table(
    depth: int,
    gpus: tuple[int, ...] = (16, 32, 64),
    policy: str = "round_robin",
    device: DeviceProfile = V100_LIKE,
    cluster: ClusterProfile = FRONTERA_LIKE,
) -> dict[int, tuple[float, float]]:
    """Table VI: (min, max) eigendecomposition worker speedup vs the base scale.

    ``min`` follows the slowest worker (the stage barrier), ``max`` the
    fastest — the widening gap quantifies round-robin load imbalance.
    """
    im = IterationModel(resnet_spec(depth), device, cluster)
    base_times = im.eig_worker_times(gpus[0], "comm-opt", policy)
    base_slow, base_fast = max(base_times), min(base_times)
    out: dict[int, tuple[float, float]] = {}
    for p in gpus:
        times = im.eig_worker_times(p, "comm-opt", policy)
        slow, fast = max(times), min(times)
        min_speedup = base_slow / slow if slow > 0 else float("inf")
        max_speedup = base_fast / fast if fast > 0 else float("inf")
        out[p] = (min_speedup, max_speedup)
    return out
