"""Symbolic K-FAC layer specs for the ResNet and transformer families.

Walks the architecture definitions from :mod:`repro.nn.resnet` (and the
:mod:`repro.nn.transformer` layout) *without instantiating weights* and
yields, per K-FAC-supported layer, the factor dimensions and positional
extent — everything the cost model and the assignment-imbalance analysis
(Table VI) need.  Using the genuine ResNet-50/101/152 shapes is what
makes the reproduced imbalance numbers meaningful; ``transformer_spec``
prices the embedding/attention workload, whose wide vocabulary factor is
the showcase for ``KFAC(diag_blocks=k)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.approx.blocks import block_eig_elements, plan_block_bounds
from repro.comm.fusion import block_tri_len, tri_len
from repro.nn.resnet import IMAGENET_DEPTH_CONFIGS
from repro.tensor.im2col import conv_out_size

__all__ = [
    "KfacLayerSpec",
    "ModelSpec",
    "resnet_spec",
    "cifar_resnet_spec",
    "transformer_spec",
]


@dataclass(frozen=True)
class KfacLayerSpec:
    """Shape summary of one K-FAC-supported layer.

    Attributes
    ----------
    name:
        Dotted layer path.
    kind:
        ``"conv"``, ``"linear"``, ``"embedding"``, or ``"layernorm"``.
    a_dim:
        Activation-factor dimension (``C_in*kh*kw`` for conv, ``in+1``
        for a biased linear, the vocabulary size for an embedding,
        ``d+1`` for LayerNorm's elementwise affine).
    g_dim:
        Gradient-factor dimension (``C_out`` / ``out`` / embedding dim).
    spatial_positions:
        Positions per example sharing the factors: ``L = OH*OW`` of a
        conv output, the sequence length ``T`` for per-token transformer
        layers, 1 for a plain linear head — enters the
        factor-computation cost.
    weight_params:
        Scalar parameter count (weight + bias).

    Example
    -------
    >>> from repro.perfmodel.specs import resnet_spec
    >>> stem = resnet_spec(50).kfac_layers[0]
    >>> stem.name, stem.a_dim, stem.g_dim      # 7x7x3 stem conv, 64 filters
    ('stem.conv', 147, 64)
    """

    name: str
    kind: str
    a_dim: int
    g_dim: int
    spatial_positions: int
    weight_params: int

    @property
    def eig_elements(self) -> int:
        """Elements of the layer's eigendecomposition state (Q's + lambdas).

        What a gradient worker must *store* to precondition this layer —
        the per-layer unit of the ``grad_worker_frac`` memory model.
        """
        return self.a_dim**2 + self.a_dim + self.g_dim**2 + self.g_dim

    @property
    def grad_matrix_elements(self) -> int:
        """Elements of the packed ``(g_dim, a_dim)`` preconditioned gradient.

        What a group root must *broadcast* per non-gradient-worker — the
        per-layer unit of the second-stage communication model.
        """
        return self.g_dim * self.a_dim


@dataclass(frozen=True)
class ModelSpec:
    """A full model's K-FAC view plus aggregate parameter count.

    Example
    -------
    >>> from repro.perfmodel.specs import resnet_spec
    >>> spec = resnet_spec(50)
    >>> len(spec.kfac_layers), spec.n_factors
    (54, 108)
    >>> spec.factor_packed_bytes < spec.factor_bytes   # tri-packing saves
    True
    """

    name: str
    kfac_layers: tuple[KfacLayerSpec, ...] = field(default_factory=tuple)
    bn_params: int = 0

    @property
    def factor_dims(self) -> tuple[int, ...]:
        """All factor dimensions in canonical meta order (A's, then G's)."""
        return tuple(
            [l.a_dim for l in self.kfac_layers] + [l.g_dim for l in self.kfac_layers]
        )

    def block_bounds(self, diag_blocks: int = 1):
        """Per-factor diagonal-block bounds under the widest-first policy.

        Mirrors ``KFAC(diag_blocks=k)`` exactly: the block edge is set by
        the widest factor, so the modeled block shapes match what the
        preconditioner actually decomposes.

        Example
        -------
        >>> from repro.perfmodel.specs import resnet_spec
        >>> bounds = resnet_spec(50).block_bounds(4)
        >>> max(hi - lo for b in bounds for lo, hi in b)   # 4608 / 4
        1152
        """
        return plan_block_bounds(self.factor_dims, diag_blocks)

    @property
    def total_params(self) -> int:
        return sum(l.weight_params for l in self.kfac_layers) + self.bn_params

    @property
    def grad_bytes(self) -> int:
        """FP32 gradient payload exchanged every iteration."""
        return self.grad_payload_bytes()

    def grad_payload_bytes(self, itemsize: int = 4) -> int:
        """Gradient wire payload at the given transport itemsize.

        ``itemsize=2`` models the fp16/bf16 compressed gradient exchange.
        """
        return itemsize * self.total_params

    @property
    def factor_bytes(self) -> int:
        """FP32 payload of all Kronecker factors (A and G), full matrices."""
        return self.factor_payload_bytes()

    @property
    def factor_packed_bytes(self) -> int:
        """FP32 payload of all factors under triangular packing.

        Each symmetric ``d x d`` factor ships as its ``d*(d+1)/2``-element
        upper triangle (the ``KFAC(symmetric_comm=True)`` wire format).
        """
        return self.factor_payload_bytes(packed=True)

    def factor_payload_bytes(
        self, packed: bool = False, itemsize: int = 4, diag_blocks: int = 1
    ) -> int:
        """Factor wire payload: full or tri-packed, at a transport itemsize.

        ``packed=True, itemsize=2`` is the fully-compressed exchange
        (triangular packing x half-precision codec): ~0.25x the dense
        fp32 bytes.  ``diag_blocks > 1`` ships only the diagonal-block
        region of each factor (the ``KFAC(diag_blocks=k)`` wire format),
        shrinking the payload further.

        Example
        -------
        >>> from repro.perfmodel.specs import resnet_spec
        >>> spec = resnet_spec(50)
        >>> spec.factor_payload_bytes(diag_blocks=4) < spec.factor_bytes
        True
        """
        if diag_blocks > 1:
            bounds = self.block_bounds(diag_blocks)
            if packed:
                elements = sum(block_tri_len(b) for b in bounds)
            else:
                elements = sum((hi - lo) ** 2 for b in bounds for lo, hi in b)
        elif packed:
            elements = sum(tri_len(l.a_dim) + tri_len(l.g_dim) for l in self.kfac_layers)
        else:
            elements = sum(l.a_dim**2 + l.g_dim**2 for l in self.kfac_layers)
        return itemsize * elements

    @property
    def eig_bytes(self) -> int:
        """FP32 payload of all eigendecompositions (Q matrices + eigenvalues)."""
        return self.eig_payload_bytes()

    def eig_payload_bytes(self, itemsize: int = 4, diag_blocks: int = 1) -> int:
        """Eigendecomposition payload at a storage itemsize.

        The eigenbasis stays fp32 by precision policy, so ``itemsize=4``
        is the normal case; ``itemsize=8`` prices a float64 run.
        ``diag_blocks > 1`` stores only per-block ``Q``'s and eigenvalues
        — ``sum(d_b^2 + d_b)`` instead of ``d^2 + d`` per factor.

        Example
        -------
        >>> from repro.perfmodel.specs import resnet_spec
        >>> spec = resnet_spec(50)
        >>> spec.eig_payload_bytes(diag_blocks=4) < spec.eig_bytes
        True
        """
        if diag_blocks > 1:
            return itemsize * sum(
                block_eig_elements(b) for b in self.block_bounds(diag_blocks)
            )
        return itemsize * sum(l.eig_elements for l in self.kfac_layers)

    @property
    def grad_matrix_bytes(self) -> int:
        """FP32 payload of all packed per-layer preconditioned gradients.

        The K-FAC-visible gradient volume (BatchNorm parameters excluded)
        — what the ``grad_worker_frac`` second stage must move when every
        layer's group root broadcasts to the non-gradient-workers.
        """
        return 4 * sum(l.grad_matrix_elements for l in self.kfac_layers)

    @property
    def n_factors(self) -> int:
        return 2 * len(self.kfac_layers)


class _SpecBuilder:
    """Accumulates layer specs while walking an architecture."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.layers: list[KfacLayerSpec] = []
        self.bn_params = 0

    def conv(
        self, name: str, in_c: int, out_c: int, k: int, stride: int, padding: int,
        size: int,
    ) -> int:
        """Record a conv layer; returns the output spatial size."""
        out_size = conv_out_size(size, k, stride, padding)
        self.layers.append(
            KfacLayerSpec(
                name=name,
                kind="conv",
                a_dim=in_c * k * k,
                g_dim=out_c,
                spatial_positions=out_size * out_size,
                weight_params=out_c * in_c * k * k,
            )
        )
        return out_size

    def bn(self, channels: int) -> None:
        self.bn_params += 2 * channels

    def linear(self, name: str, in_f: int, out_f: int, positions: int = 1) -> None:
        self.layers.append(
            KfacLayerSpec(
                name=name,
                kind="linear",
                a_dim=in_f + 1,
                g_dim=out_f,
                spatial_positions=positions,
                weight_params=out_f * in_f + out_f,
            )
        )

    def embedding(self, name: str, vocab: int, dim: int, positions: int) -> None:
        """An embedding table: ``A`` is (vocab, vocab), ``G`` is (dim, dim)."""
        self.layers.append(
            KfacLayerSpec(
                name=name,
                kind="embedding",
                a_dim=vocab,
                g_dim=dim,
                spatial_positions=positions,
                weight_params=vocab * dim,
            )
        )

    def layernorm(self, name: str, dim: int, positions: int) -> None:
        """LayerNorm's elementwise affine: biased (d+1, d+1) / (d, d)."""
        self.layers.append(
            KfacLayerSpec(
                name=name,
                kind="layernorm",
                a_dim=dim + 1,
                g_dim=dim,
                spatial_positions=positions,
                weight_params=2 * dim,
            )
        )

    def build(self) -> ModelSpec:
        return ModelSpec(self.name, tuple(self.layers), self.bn_params)


def resnet_spec(depth: int, input_size: int = 224, num_classes: int = 1000) -> ModelSpec:
    """K-FAC spec of an ImageNet-style ResNet at the given input size.

    Example
    -------
    >>> from repro.perfmodel.specs import resnet_spec
    >>> round(resnet_spec(50).total_params / 1e6, 1)   # the familiar 25.6M
    25.6
    """
    if depth not in IMAGENET_DEPTH_CONFIGS:
        raise ValueError(f"unsupported depth {depth}; choose from {sorted(IMAGENET_DEPTH_CONFIGS)}")
    block, stage_blocks = IMAGENET_DEPTH_CONFIGS[depth]
    widths = (64, 128, 256, 512)
    expansion = 4 if block == "bottleneck" else 1
    b = _SpecBuilder(f"resnet{depth}")

    size = b.conv("stem.conv", 3, widths[0], 7, 2, 3, input_size)
    b.bn(widths[0])
    size = conv_out_size(size, 3, 2, 1)  # maxpool

    in_c = widths[0]
    for stage_idx, (n_blocks, width) in enumerate(zip(stage_blocks, widths)):
        for blk in range(n_blocks):
            stride = 2 if (blk == 0 and stage_idx > 0) else 1
            prefix = f"stage{stage_idx}.block{blk}"
            out_c = width * expansion
            if block == "bottleneck":
                size_in = size
                b.conv(f"{prefix}.conv1", in_c, width, 1, 1, 0, size_in)
                b.bn(width)
                size = b.conv(f"{prefix}.conv2", width, width, 3, stride, 1, size_in)
                b.bn(width)
                b.conv(f"{prefix}.conv3", width, out_c, 1, 1, 0, size)
                b.bn(out_c)
            else:
                size_in = size
                size = b.conv(f"{prefix}.conv1", in_c, width, 3, stride, 1, size_in)
                b.bn(width)
                b.conv(f"{prefix}.conv2", width, width, 3, 1, 1, size)
                b.bn(width)
            if stride != 1 or in_c != out_c:
                b.conv(f"{prefix}.shortcut", in_c, out_c, 1, stride, 0, size_in)
                b.bn(out_c)
            in_c = out_c
    b.linear("fc", in_c, num_classes)
    return b.build()


def transformer_spec(
    vocab_size: int = 4096,
    seq_len: int = 128,
    dim: int = 256,
    num_heads: int = 4,
    depth: int = 4,
    num_classes: int = 10,
    hidden_mult: int = 2,
) -> ModelSpec:
    """K-FAC spec of a :class:`repro.nn.transformer.TinyTransformer`.

    Walks the model in registration order: token/positional embeddings,
    per block the pre-LN norms, the four attention projections and the
    two MLP linears, then the final norm and classifier head.  The token
    embedding's ``(vocab, vocab)`` activation factor is by far the widest
    — the natural first customer of ``KFAC(diag_blocks=k)``, which is why
    ``block_bounds`` splits it first.

    Example
    -------
    >>> from repro.perfmodel.specs import transformer_spec
    >>> spec = transformer_spec(vocab_size=1024, depth=2)
    >>> spec.kfac_layers[0].a_dim                # token embedding factor
    1024
    >>> max(hi - lo for b in spec.block_bounds(4) for lo, hi in b)
    256
    >>> len(spec.kfac_layers)                    # 2 emb + 2*8 + norm + head
    20
    """
    if dim % num_heads != 0:
        raise ValueError(f"dim {dim} not divisible by num_heads {num_heads}")
    b = _SpecBuilder(f"transformer-L{depth}-d{dim}")
    b.embedding("tok_embed", vocab_size, dim, positions=seq_len)
    b.embedding("pos_embed", seq_len, dim, positions=seq_len)
    hidden = dim * hidden_mult
    for i in range(depth):
        prefix = f"blocks.m{i}"
        b.layernorm(f"{prefix}.norm1", dim, positions=seq_len)
        for proj in ("q_proj", "k_proj", "v_proj", "out_proj"):
            b.linear(f"{prefix}.attn.{proj}", dim, dim, positions=seq_len)
        b.layernorm(f"{prefix}.norm2", dim, positions=seq_len)
        b.linear(f"{prefix}.fc1", dim, hidden, positions=seq_len)
        b.linear(f"{prefix}.fc2", hidden, dim, positions=seq_len)
    b.layernorm("final_norm", dim, positions=seq_len)
    b.linear("head", dim, num_classes)
    return b.build()


def cifar_resnet_spec(
    depth: int,
    input_size: int = 32,
    num_classes: int = 10,
    width_multiplier: float = 1.0,
) -> ModelSpec:
    """K-FAC spec of a CIFAR-style ResNet (6n+2 layers).

    ``width_multiplier`` scales the stage widths with the same
    ``max(1, round(w * multiplier))`` rule as the trainable
    :class:`repro.nn.resnet` builder, so a drift report can model exactly
    the slimmed network an experiment actually trains.

    Example
    -------
    >>> from repro.perfmodel.specs import cifar_resnet_spec
    >>> tiny = cifar_resnet_spec(8, input_size=10, width_multiplier=0.25)
    >>> [l.g_dim for l in tiny.kfac_layers[:2]]   # 16*0.25 -> 4
    [4, 4]
    """
    if (depth - 2) % 6 != 0:
        raise ValueError(f"CIFAR ResNet depth must be 6n+2, got {depth}")
    n = (depth - 2) // 6
    widths = tuple(
        max(1, int(round(w * width_multiplier))) for w in (16, 32, 64)
    )
    b = _SpecBuilder(f"resnet{depth}-cifar")
    size = b.conv("stem.conv", 3, widths[0], 3, 1, 1, input_size)
    b.bn(widths[0])
    in_c = widths[0]
    for stage_idx, width in enumerate(widths):
        for blk in range(n):
            stride = 2 if (blk == 0 and stage_idx > 0) else 1
            prefix = f"stage{stage_idx}.block{blk}"
            size_in = size
            size = b.conv(f"{prefix}.conv1", in_c, width, 3, stride, 1, size_in)
            b.bn(width)
            b.conv(f"{prefix}.conv2", width, width, 3, 1, 1, size)
            b.bn(width)
            if stride != 1 or in_c != width:
                b.conv(f"{prefix}.shortcut", in_c, width, 1, stride, 0, size_in)
                b.bn(width)
            in_c = width
    b.linear("fc", in_c, num_classes)
    return b.build()
