"""Calibrated performance model for the paper's scaling results.

The paper's Tables III–VI and Figures 7–10 were measured on 16–256 V100
GPUs.  This package projects those quantities from first principles:

- **real layer shapes** of ResNet-50/101/152 at ImageNet resolution
  (:mod:`specs` walks the architectures symbolically);
- FLOP counts for forward/backward, Kronecker-factor computation,
  eigendecomposition, and preconditioning (:mod:`costs`);
- device and network profiles calibrated against the paper's own Table V
  measurements (:mod:`hardware`, :mod:`calibration`);
- per-iteration/per-epoch assembly for SGD, K-FAC-lw, and K-FAC-opt
  (:mod:`iteration`) and time-to-solution / efficiency projection
  (:mod:`scaling`).

Absolute times are model outputs, not measurements; EXPERIMENTS.md reports
them side-by-side with the paper's numbers and judges *shape* (ordering,
crossover, trends).
"""

from repro.perfmodel.specs import (
    KfacLayerSpec,
    ModelSpec,
    resnet_spec,
)
from repro.perfmodel.hardware import DeviceProfile, V100_LIKE
from repro.perfmodel.costs import (
    eig_flops,
    factor_flops,
    model_backward_flops,
    model_forward_flops,
    precondition_flops,
)
from repro.perfmodel.iteration import IterationModel, KfacIntervals
from repro.perfmodel.scaling import (
    ScalingStudy,
    improvement_table,
    scale_interval_schedule,
)

__all__ = [
    "KfacLayerSpec",
    "ModelSpec",
    "resnet_spec",
    "DeviceProfile",
    "V100_LIKE",
    "model_forward_flops",
    "model_backward_flops",
    "factor_flops",
    "eig_flops",
    "precondition_flops",
    "IterationModel",
    "KfacIntervals",
    "ScalingStudy",
    "improvement_table",
    "scale_interval_schedule",
]
