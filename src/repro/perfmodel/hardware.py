"""Device and cluster profiles for the performance model.

``V100_LIKE`` / ``FRONTERA_LIKE`` are calibrated against the paper's own
measurements (Frontera GPU subsystem: 4x V100 per node, InfiniBand EDR,
FP32, local batch 32 — §VI-A).  Anchors and the corresponding constants:

- **SGD iteration time** — ResNet-50 @ 64 GPUs: 178 min / 90 epochs
  (Table III) fixes ``gemm_flops``; the per-model efficiency scaling
  (``gemm_scaling_exp``) reconciles ResNet-101/152 SGD times, whose
  larger layers run closer to peak.
- **Scaling efficiency** — SGD ~68.6% at 128 GPUs, <50% at 256 (§VI-C3)
  fixes the straggler penalty on *per-iteration* collectives
  (``straggler_coef * p**straggler_exp``).
- **Factor stage** — Table V compute times (36.8/125.2/218.4 ms for
  R50/101/152) are bandwidth-bound patch traffic (``factor_bandwidth``);
  Table V also shows factor/eig *communication* nearly flat in GPU count,
  so the rare K-FAC collectives get ring cost + per-op launches but no
  straggler penalty.
- **Per-update overhead** — back-deriving the K-FAC per-iteration cost
  from the Table III update-frequency sweep yields a factor-stage overhead
  growing ~quadratically with layer count (hook capture, running-average
  dispatch: ``factor_capture_coef * L^2``) and an eigen-basis
  preconditioning overhead ``precond_layer_coef * L`` per layer.  These
  super-linear terms reproduce Fig. 10 and the Table IV trend, including
  K-FAC-opt losing to SGD on ResNet-152 at 256 GPUs.
- **Eigendecomposition** — slowest-worker times in Table V fix
  ``eig_flops`` with a ``10 n^3`` FLOP model plus a per-factor launch
  floor.

All constants absorb framework overheads the paper's measured times
include; EXPERIMENTS.md reports model-vs-paper numbers side by side.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.comm.costmodel import NetworkProfile

__all__ = ["DeviceProfile", "ClusterProfile", "V100_LIKE", "FRONTERA_LIKE"]


@dataclass(frozen=True)
class DeviceProfile:
    """Effective single-GPU performance characteristics (FP32).

    Example
    -------
    >>> from repro.perfmodel.hardware import V100_LIKE
    >>> V100_LIKE.gemm_flops > 1e12       # effective TFLOP/s scale
    True
    """

    name: str
    #: effective FLOP/s for conv/GEMM forward+backward at the reference model
    gemm_flops: float
    #: reference per-image forward FLOPs (ResNet-50) for efficiency scaling
    gemm_ref_image_flops: float
    #: GEMM efficiency grows as (model flops-per-image / ref)^exp
    gemm_scaling_exp: float
    #: clamp range for the efficiency multiplier
    gemm_eff_bounds: tuple[float, float]
    #: effective FLOP/s for eigen-basis preconditioning GEMMs (dense, square)
    precond_flops: float
    #: per-layer preconditioning dispatch overhead = coef * L_total seconds
    precond_layer_coef: float
    #: bytes/s streamed by the factor-computation covariance GEMMs
    factor_bandwidth: float
    #: per-layer factor kernel overhead: coef * L_total^exp seconds total
    #: (small tall-skinny GEMMs are launch/latency bound; fits the
    #: super-linear Tcomp growth of Table V / Fig. 10)
    factor_layer_coef: float
    factor_layer_exp: float
    #: factor-stage capture/dispatch overhead = coef * L_total^2 seconds
    factor_capture_coef: float
    #: effective FLOP/s for symmetric eigendecomposition
    eig_flops: float
    #: FLOPs per eigendecomposition = coef * n^3
    eig_flop_coef: float
    #: fixed seconds per factor decomposed (launch/latency floor)
    eig_factor_overhead: float
    #: fixed per-iteration seconds (data pipeline, launches, sync)
    per_iter_overhead: float
    #: effective FLOP/s for fp16/bf16 GEMMs on the Tensor Cores (0 means
    #: no Tensor Cores: half-precision compute falls back to gemm_flops).
    #: Effective, not peak: V100 HMMA peaks at 125 TFLOPs but framework
    #: kernels with fp32 accumulation land nearer 3x the fp32 rate.
    tensorcore_flops: float = 0.0
    #: effective FLOP/s multiplier for fp64 GEMMs (V100: half rate)
    fp64_flops_scale: float = 0.5


@dataclass(frozen=True)
class ClusterProfile:
    """Network + synchronization behaviour of the cluster.

    The straggler penalty applies to *per-iteration* blocking collectives
    (gradient allreduce; K-FAC-lw's per-iteration preconditioned-gradient
    allgather).  Rare bulk K-FAC collectives are bandwidth-dominated and
    empirically flat across scales (paper Table V), so they only pay ring
    cost plus ``op_launch`` per tensor posted (§V-A registers one op per
    factor).
    """

    name: str
    net: NetworkProfile
    straggler_coef: float
    straggler_exp: float
    op_launch: float

    def sync_penalty(self, p: int) -> float:
        """Multiplier on per-iteration collective time at world size ``p``."""
        if p <= 1:
            return 1.0
        return max(1.0, self.straggler_coef * float(p) ** self.straggler_exp)


V100_LIKE = DeviceProfile(
    name="v100-fp32",
    gemm_flops=7.0e12,
    gemm_ref_image_flops=8.18e9,
    gemm_scaling_exp=0.45,
    gemm_eff_bounds=(0.6, 2.0),
    precond_flops=20.0e12,
    precond_layer_coef=3.0e-6,
    factor_bandwidth=600.0e9,
    factor_layer_coef=3.27e-5,
    factor_layer_exp=1.7,
    factor_capture_coef=1.2e-4,
    eig_flops=0.55e12,
    eig_flop_coef=10.0,
    eig_factor_overhead=0.010,
    per_iter_overhead=0.020,
    tensorcore_flops=21.0e12,
)

FRONTERA_LIKE = ClusterProfile(
    name="frontera-edr",
    net=NetworkProfile(latency=2.0e-6, bandwidth=10.5e9, name="infiniband-edr"),
    straggler_coef=0.178,
    straggler_exp=0.678,
    op_launch=0.5e-3,
)
