"""FLOP and byte counts for every stage of a training iteration.

All counts are derived from the symbolic layer specs (real ResNet shapes).
Conventions: one multiply-accumulate = 2 FLOPs; backward = 2x forward
(input-gradient + weight-gradient GEMMs).

The factor-stage formulas carry a ``syrk`` switch modelling the
symmetry-aware fast path: a rank-k update computes only one triangle of
the Gram product (``d*(d+1)/2`` dot products instead of ``d^2``) and
writes only that triangle.  The triangular-packed allreduce *payload* is
modelled by :attr:`repro.perfmodel.specs.ModelSpec.factor_packed_bytes`
(``d*(d+1)/2`` elements per ``d x d`` factor).  Defaults remain the
GEMM/full-matrix rates the hardware profiles were calibrated against.
"""

from __future__ import annotations

from repro.comm.fusion import tri_len
from repro.perfmodel.specs import KfacLayerSpec, ModelSpec

__all__ = [
    "layer_forward_flops",
    "model_forward_flops",
    "model_backward_flops",
    "layer_factor_flops",
    "factor_flops",
    "layer_factor_bytes",
    "factor_stage_bytes",
    "eig_flops",
    "layer_precondition_flops",
    "precondition_flops",
]


def _tri(d: int) -> float:
    """Element count of one triangle (diagonal included) of a ``d x d``."""
    return float(tri_len(d))


def layer_forward_flops(layer: KfacLayerSpec, batch: int) -> float:
    """Forward GEMM FLOPs of one layer for a local batch."""
    return 2.0 * batch * layer.spatial_positions * layer.a_dim * layer.g_dim


def model_forward_flops(model: ModelSpec, batch: int) -> float:
    """Forward FLOPs of the whole model (BN/activations negligible).

    Example
    -------
    >>> from repro.perfmodel.costs import model_forward_flops
    >>> from repro.perfmodel.specs import resnet_spec
    >>> round(model_forward_flops(resnet_spec(50), 1) / 1e9)   # ~8 GFLOPs/img
    8
    """
    return sum(layer_forward_flops(l, batch) for l in model.kfac_layers)


def model_backward_flops(model: ModelSpec, batch: int) -> float:
    """Backward = dgrad + wgrad = 2x forward.

    Example
    -------
    >>> from repro.perfmodel.costs import model_backward_flops, model_forward_flops
    >>> from repro.perfmodel.specs import resnet_spec
    >>> spec = resnet_spec(50)
    >>> model_backward_flops(spec, 4) == 2 * model_forward_flops(spec, 4)
    True
    """
    return 2.0 * model_forward_flops(model, batch)


def layer_factor_flops(layer: KfacLayerSpec, batch: int, syrk: bool = False) -> float:
    """FLOPs to form both covariance factors for one layer.

    ``A = patches^T patches`` costs ``(N*L) * a_dim^2`` MACs and
    ``G = g^T g`` costs ``(N*L) * g_dim^2`` MACs as plain GEMMs; the
    ``syrk`` rank-k kernel computes only one triangle of each symmetric
    result, ``(N*L) * d*(d+1)/2`` MACs — asymptotically half.
    """
    rows = batch * layer.spatial_positions
    if syrk:
        return 2.0 * rows * (_tri(layer.a_dim) + _tri(layer.g_dim))
    return 2.0 * rows * (layer.a_dim**2 + layer.g_dim**2)


def factor_flops(model: ModelSpec, batch: int, syrk: bool = False) -> float:
    """FLOPs of the full factor-computation stage (per worker, local batch).

    Example
    -------
    >>> from repro.perfmodel.costs import factor_flops
    >>> from repro.perfmodel.specs import resnet_spec
    >>> spec = resnet_spec(50)
    >>> factor_flops(spec, 32, syrk=True) < factor_flops(spec, 32)
    True
    """
    return sum(layer_factor_flops(l, batch, syrk) for l in model.kfac_layers)


def layer_factor_bytes(layer: KfacLayerSpec, batch: int, syrk: bool = False) -> float:
    """Memory traffic of one layer's factor computation (FP32).

    Reads the im2col patch matrix (``N*L*a_dim``) and the reshaped output
    gradients (``N*L*g_dim``), writes both factors — only one triangle of
    each under ``syrk``.  On GPUs this stage is bandwidth-bound (the
    covariance GEMMs are tall-skinny), which is why the measured stage
    time (paper Table V) tracks traffic, not FLOPs.
    """
    rows = batch * layer.spatial_positions
    factor_elems = (
        _tri(layer.a_dim) + _tri(layer.g_dim)
        if syrk
        else layer.a_dim**2 + layer.g_dim**2
    )
    return 4.0 * (rows * (layer.a_dim + layer.g_dim) + factor_elems)


def factor_stage_bytes(model: ModelSpec, batch: int, syrk: bool = False) -> float:
    """Total factor-computation traffic for one local mini-batch."""
    return sum(layer_factor_bytes(l, batch, syrk) for l in model.kfac_layers)


def eig_flops(dim: int, coef: float = 10.0) -> float:
    """FLOPs of one symmetric eigendecomposition, ``coef * n^3``.

    Example
    -------
    >>> from repro.perfmodel.costs import eig_flops
    >>> eig_flops(100)
    10000000.0
    """
    return coef * float(dim) ** 3


def layer_precondition_flops(layer: KfacLayerSpec) -> float:
    """FLOPs of Eqs. 13–15 for one layer.

    Two GEMM pairs (``Q_G^T grad Q_A`` and ``Q_G V2 Q_A^T``), each
    ``g*g*a + g*a*a`` MACs, plus the elementwise divide (negligible).
    """
    a, g = layer.a_dim, layer.g_dim
    return 2.0 * 2.0 * (g * g * a + g * a * a)


def precondition_flops(model: ModelSpec) -> float:
    """FLOPs to precondition every layer's gradient once.

    Example
    -------
    >>> from repro.perfmodel.costs import precondition_flops
    >>> from repro.perfmodel.specs import resnet_spec
    >>> precondition_flops(resnet_spec(50)) > 0
    True
    """
    return sum(layer_precondition_flops(l) for l in model.kfac_layers)
