"""Per-iteration / per-stage time model (paper Fig. 1 decomposition).

Assembles stage times for the three optimizers the paper benchmarks:

- **SGD**: ``T_iter = T_f + T_e + overhead + T_x`` with ``T_x`` the
  straggler-inflated ring allreduce of the gradients;
- **K-FAC-opt** adds, amortized over the update intervals: the factor
  stage (bandwidth-bound compute + capture overhead + flat allreduce),
  the slowest-worker eigendecomposition under *per-factor* round-robin
  assignment, the eigendecomposition allgather, and a per-iteration local
  preconditioning stage with **no communication** (the §IV-C claim);
- **K-FAC-lw** assigns whole layers, keeps decompositions local, and must
  allgather *preconditioned gradients every iteration* (a per-iteration
  blocking collective, so it pays the straggler penalty — the root of its
  worse scaling in Fig. 7).

All stage times derive from the real layer shapes via
:mod:`repro.perfmodel.costs` and the calibrated profiles in
:mod:`repro.perfmodel.hardware`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.comm.costmodel import allgather_time, allreduce_time, scatter_broadcast_time
from repro.comm.engine import DEFAULT_BUCKET_BYTES
from repro.core.assignment import (
    FactorMeta,
    build_group_placement,
    grad_worker_count,
    greedy_balanced_assignment,
    layer_wise_assignment,
    plan_block_metas,
    round_robin_assignment,
    worker_costs,
)
from repro.perfmodel.costs import (
    eig_flops,
    factor_stage_bytes,
    layer_precondition_flops,
    model_backward_flops,
    model_forward_flops,
)
from repro.perfmodel.hardware import ClusterProfile, DeviceProfile
from repro.perfmodel.specs import ModelSpec

__all__ = ["KfacIntervals", "IterationModel", "StageProfile", "PRECISIONS"]

#: precision names the model understands (mirrors repro.precision policies)
PRECISIONS = ("fp32", "fp16", "bf16", "fp64")

#: wire itemsize of the compressed gradient/factor collectives per policy
_COMM_ITEMSIZE = {"fp32": 4, "fp16": 2, "bf16": 2, "fp64": 8}

#: storage itemsize of the compute-dtype operands (im2col patch traffic)
_COMPUTE_ITEMSIZE = {"fp32": 4, "fp16": 2, "bf16": 2, "fp64": 8}


def _check_precision(precision: str) -> str:
    if precision not in PRECISIONS:
        raise ValueError(f"unknown precision {precision!r}; choose from {PRECISIONS}")
    return precision


@dataclass(frozen=True)
class KfacIntervals:
    """Update intervals in iterations.

    ``eig_interval`` is the paper's *K-FAC update frequency* knob; factors
    are refreshed/communicated 10x more often (§V-C).

    Example
    -------
    >>> from repro.perfmodel.iteration import KfacIntervals
    >>> iv = KfacIntervals.from_eig_interval(500)
    >>> iv.eig_interval, iv.fac_interval
    (500, 50)
    """

    eig_interval: int
    fac_interval: int

    @classmethod
    def from_eig_interval(cls, eig_interval: int) -> "KfacIntervals":
        if eig_interval < 1:
            raise ValueError(f"eig_interval must be >= 1, got {eig_interval}")
        return cls(eig_interval=eig_interval, fac_interval=max(1, eig_interval // 10))


@dataclass(frozen=True)
class StageProfile:
    """Table V row: per-stage compute and communication seconds.

    ``*_tcomm`` is the full (synchronous) communication cost;
    ``*_tcomm_exposed`` is the critical-path remainder once the pipelined
    engine hides chunked transfers behind eigendecomposition compute
    (equal to ``*_tcomm`` for a synchronous profile).
    ``factor_comm_payload_bytes`` is the per-worker factor-allreduce wire
    payload the profile was computed with — halved under triangular
    packing (``symmetric=True``), zero when unset.

    Example
    -------
    >>> from repro.perfmodel.iteration import StageProfile
    >>> sp = StageProfile(factor_tcomp=0.1, factor_tcomm=0.4,
    ...                   eig_tcomp=0.2, eig_tcomm=0.3,
    ...                   factor_tcomm_exposed=0.1, eig_tcomm_exposed=0.3)
    >>> round(sp.hidden_comm, 10)             # 0.3 s masked by pipelining
    0.3
    """

    factor_tcomp: float
    factor_tcomm: float
    eig_tcomp: float
    eig_tcomm: float
    factor_tcomm_exposed: float = -1.0
    eig_tcomm_exposed: float = -1.0
    factor_comm_payload_bytes: float = 0.0
    #: per-iteration second-stage (preconditioned-gradient broadcast)
    #: seconds — zero for COMM_OPT, the grad_worker_frac trade-off's cost
    precond_tcomm: float = 0.0
    #: per-rank eigendecomposition-state bytes a rank must hold — the
    #: grad_worker_frac trade-off's saving (full eig payload for COMM_OPT)
    eigenbasis_bytes_per_rank: float = 0.0
    #: per-rank preconditioned-gradient bytes received per iteration from
    #: group roots (zero for COMM_OPT where every rank is a grad worker)
    precond_share_bytes_per_rank: float = 0.0

    def __post_init__(self) -> None:
        # default: synchronous profile, everything exposed
        if self.factor_tcomm_exposed < 0:
            object.__setattr__(self, "factor_tcomm_exposed", self.factor_tcomm)
        if self.eig_tcomm_exposed < 0:
            object.__setattr__(self, "eig_tcomm_exposed", self.eig_tcomm)

    @property
    def hidden_comm(self) -> float:
        """Communication seconds masked behind compute by pipelining."""
        return (self.factor_tcomm - self.factor_tcomm_exposed) + (
            self.eig_tcomm - self.eig_tcomm_exposed
        )


class IterationModel:
    """Stage/iteration/epoch times for one model on one cluster.

    Example
    -------
    >>> from repro.perfmodel.hardware import FRONTERA_LIKE, V100_LIKE
    >>> from repro.perfmodel.iteration import IterationModel, KfacIntervals
    >>> from repro.perfmodel.specs import resnet_spec
    >>> im = IterationModel(resnet_spec(50), V100_LIKE, FRONTERA_LIKE)
    >>> iv = KfacIntervals.from_eig_interval(500)
    >>> sgd = im.sgd_iteration_time(64)
    >>> kfac = im.kfac_iteration_time(64, "comm-opt", iv)
    >>> 0.0 < sgd < kfac                      # K-FAC adds amortized stages
    True
    >>> mem = im.eigenbasis_bytes_per_rank(64, grad_worker_frac=0.25)
    >>> mem < im.eigenbasis_bytes_per_rank(64, grad_worker_frac=1.0)
    True
    """

    def __init__(
        self,
        model: ModelSpec,
        device: DeviceProfile,
        cluster: ClusterProfile,
        local_batch: int = 32,
    ) -> None:
        if local_batch < 1:
            raise ValueError(f"local_batch must be >= 1, got {local_batch}")
        self.model = model
        self.device = device
        self.cluster = cluster
        self.local_batch = local_batch
        self._factor_metas = self._build_metas()
        self._block_meta_cache: dict[int, list] = {}

    def _build_metas(self) -> list[FactorMeta]:
        metas: list[FactorMeta] = []
        for l in self.model.kfac_layers:
            metas.append(FactorMeta(l.name, "A", l.a_dim))
        for l in self.model.kfac_layers:
            metas.append(FactorMeta(l.name, "G", l.g_dim))
        return metas

    def _comm_metas(self, diag_blocks: int = 1) -> list:
        """Assignment/scheduling units at the given block granularity.

        ``diag_blocks=1`` is the whole-factor baseline; ``> 1`` splits
        each factor into the same widest-first diagonal blocks the real
        ``KFAC(diag_blocks=k)`` preconditioner schedules.
        """
        if diag_blocks <= 1:
            return self._factor_metas
        cached = self._block_meta_cache.get(diag_blocks)
        if cached is None:
            cached = plan_block_metas(
                self._factor_metas, self.model.block_bounds(diag_blocks)
            )
            self._block_meta_cache[diag_blocks] = cached
        return cached

    @property
    def n_layers(self) -> int:
        return len(self.model.kfac_layers)

    # ------------------------------------------------------------------
    # base (SGD) stages
    # ------------------------------------------------------------------
    def _gemm_efficiency(self) -> float:
        """Per-model GEMM efficiency (bigger layers run closer to peak)."""
        img_flops = model_forward_flops(self.model, 1)
        ratio = img_flops / self.device.gemm_ref_image_flops
        lo, hi = self.device.gemm_eff_bounds
        return min(max(ratio**self.device.gemm_scaling_exp, lo), hi)

    def effective_gemm_flops(self, precision: str = "fp32") -> float:
        """Effective GEMM throughput at the given compute precision.

        fp16/bf16 run on the Tensor-Core rate (``tensorcore_flops``; fp32
        rate if the device has none), fp64 at ``fp64_flops_scale`` of the
        fp32 rate — each modulated by the same per-model efficiency.
        """
        _check_precision(precision)
        peak = self.device.gemm_flops
        if precision in ("fp16", "bf16") and self.device.tensorcore_flops > 0:
            peak = self.device.tensorcore_flops
        elif precision == "fp64":
            peak = peak * self.device.fp64_flops_scale
        return peak * self._gemm_efficiency()

    def comm_itemsize(self, precision: str = "fp32") -> int:
        """Wire bytes per element of the compressed collectives."""
        return _COMM_ITEMSIZE[_check_precision(precision)]

    def forward_time(self, precision: str = "fp32") -> float:
        return model_forward_flops(self.model, self.local_batch) / self.effective_gemm_flops(
            precision
        )

    def backward_time(self, precision: str = "fp32") -> float:
        return model_backward_flops(self.model, self.local_batch) / self.effective_gemm_flops(
            precision
        )

    def grad_exchange_time(self, p: int, precision: str = "fp32") -> float:
        """Straggler-inflated fused ring allreduce of all gradients.

        Under a half policy the wire carries the fp16/bf16 codec payload
        — half the bytes of the fp32 exchange.
        """
        if p <= 1:
            return 0.0
        nbytes = self.model.grad_payload_bytes(self.comm_itemsize(precision))
        base = allreduce_time(nbytes, p, self.cluster.net)
        return base * self.cluster.sync_penalty(p)

    def sgd_iteration_time(self, p: int, precision: str = "fp32") -> float:
        return (
            self.forward_time(precision)
            + self.backward_time(precision)
            + self.device.per_iter_overhead
            + self.grad_exchange_time(p, precision)
        )

    # ------------------------------------------------------------------
    # K-FAC factor stage
    # ------------------------------------------------------------------
    def factor_compute_time(self, syrk: bool = False, precision: str = "fp32") -> float:
        """Factor-computation time — constant in P (Table V ``Tcomp``,
        the Fig. 10 quantity).

        Patch-traffic term plus a per-layer kernel-overhead term that
        grows ``~L^1.7`` — the paper's own Tcomp measurements grow
        super-linearly in model size (36.8 -> 218.4 ms for 2.35x params).
        ``syrk`` models the rank-k fast path, which writes only one
        triangle of each factor (the patch-read term, which dominates,
        is unchanged — hence the modest Tcomp gain the stage shows).
        The stage is bandwidth-bound, so half-precision patches
        (``precision="fp16"``/``"bf16"``) halve the traffic term.
        """
        itemsize = _COMPUTE_ITEMSIZE[_check_precision(precision)]
        traffic = (
            factor_stage_bytes(self.model, self.local_batch, syrk)
            * (itemsize / 4.0)
            / self.device.factor_bandwidth
        )
        overhead = self.device.factor_layer_coef * float(self.n_layers) ** self.device.factor_layer_exp
        return traffic + overhead

    def factor_capture_overhead(self) -> float:
        """Hook-capture / running-average dispatch overhead per update.

        Calibrated ~quadratic in layer count (see hardware.py); this is the
        super-linear model-complexity term behind the paper's §VI-C4
        deterioration analysis.
        """
        return self.device.factor_capture_coef * float(self.n_layers) ** 2

    def factor_comm_payload_bytes(
        self, packed: bool = False, precision: str = "fp32", diag_blocks: int = 1
    ) -> int:
        """Per-worker factor-allreduce wire payload.

        ``packed`` applies triangular packing (~0.5x); a half-precision
        ``precision`` applies the wire codec (another 0.5x) — combined,
        ~0.25x the dense fp32 payload.  ``diag_blocks > 1`` ships only
        the diagonal-block triangles (the blocked wire format).
        """
        return self.model.factor_payload_bytes(
            packed, self.comm_itemsize(precision), diag_blocks
        )

    def factor_comm_time(
        self,
        p: int,
        packed: bool = False,
        precision: str = "fp32",
        diag_blocks: int = 1,
    ) -> float:
        """Allreduce of all running-average factors (one op per factor).

        Rare and bandwidth-dominated — empirically flat in P (Table V), so
        no straggler penalty.  ``packed`` models the triangular-packed
        exchange (``KFAC(symmetric_comm=True)``): ~half the bytes.
        """
        if p <= 1:
            return 0.0
        base = allreduce_time(
            self.factor_comm_payload_bytes(packed, precision, diag_blocks),
            p,
            self.cluster.net,
        )
        return base + self.cluster.op_launch * len(self._comm_metas(diag_blocks))

    def factor_stage_time(
        self, p: int, symmetric: bool = False, precision: str = "fp32"
    ) -> float:
        """Full factor-update cost: compute + capture overhead + comm."""
        return (
            self.factor_compute_time(syrk=symmetric, precision=precision)
            + self.factor_capture_overhead()
            + self.factor_comm_time(p, packed=symmetric, precision=precision)
        )

    # ------------------------------------------------------------------
    # K-FAC eigendecomposition stage
    # ------------------------------------------------------------------
    def _eig_seconds(self, dim: int) -> float:
        return (
            eig_flops(dim, self.device.eig_flop_coef) / self.device.eig_flops
            + self.device.eig_factor_overhead
        )

    def eig_worker_times(
        self,
        p: int,
        strategy: str,
        policy: str = "round_robin",
        diag_blocks: int = 1,
    ) -> list[float]:
        """Per-worker eigendecomposition seconds for one K-FAC update.

        ``strategy``: ``"comm-opt"`` assigns individual factors;
        ``"layer-wise"`` assigns whole layers (both factors co-located).
        ``diag_blocks > 1`` assigns per-block eigendecompositions — the
        cubic cost drop plus the finer LPT balance of the blocked path.
        """
        metas = self._comm_metas(diag_blocks)
        if strategy == "comm-opt":
            if policy == "greedy":
                assignment = greedy_balanced_assignment(metas, p)
            else:
                assignment = round_robin_assignment(metas, p)
            return worker_costs(
                metas, assignment, p,
                cost_fn=lambda m: self._eig_seconds(m.dim),
            )
        if strategy == "layer-wise":
            layer_assignment = layer_wise_assignment(
                [l.name for l in self.model.kfac_layers], p
            )
            loads = [0.0] * p
            if diag_blocks > 1:
                for m in metas:
                    loads[layer_assignment[m.layer]] += self._eig_seconds(m.dim)
                return loads
            for l in self.model.kfac_layers:
                loads[layer_assignment[l.name]] += self._eig_seconds(l.a_dim) + self._eig_seconds(
                    l.g_dim
                )
            return loads
        raise ValueError(f"unknown strategy {strategy!r}")

    def eig_stage_time(
        self,
        p: int,
        strategy: str,
        policy: str = "round_robin",
        diag_blocks: int = 1,
    ) -> float:
        """Slowest-worker eigendecomposition time (the stage is a barrier)."""
        return max(self.eig_worker_times(p, strategy, policy, diag_blocks))

    def eig_comm_time(self, p: int, diag_blocks: int = 1) -> float:
        """Allgather of all eigendecompositions (K-FAC-opt only; flat in P)."""
        if p <= 1:
            return 0.0
        base = allgather_time(
            self.model.eig_payload_bytes(4, diag_blocks), p, self.cluster.net
        )
        return base + self.cluster.op_launch * len(self._comm_metas(diag_blocks)) * 2

    # ------------------------------------------------------------------
    # pipelined (async) communication: exposed vs. hidden
    # ------------------------------------------------------------------
    def pipeline_chunks(
        self,
        bucket_bytes: int = DEFAULT_BUCKET_BYTES,
        packed: bool = False,
        precision: str = "fp32",
        diag_blocks: int = 1,
    ) -> int:
        """Number of pipeline chunks the factor exchange splits into."""
        if bucket_bytes <= 0:
            raise ValueError(f"bucket_bytes must be positive, got {bucket_bytes}")
        return max(
            1,
            math.ceil(
                self.factor_comm_payload_bytes(packed, precision, diag_blocks)
                / bucket_bytes
            ),
        )

    def pipelined_comm_times(
        self,
        p: int,
        policy: str = "round_robin",
        bucket_bytes: int = DEFAULT_BUCKET_BYTES,
        symmetric: bool = False,
        precision: str = "fp32",
        diag_blocks: int = 1,
    ) -> tuple[float, float]:
        """(exposed factor comm, exposed eig comm) under SPD-KFAC pipelining.

        Each stream is chunked and hidden behind the compute that runs
        while its transfers are in flight, leaving one un-hideable chunk
        exposed (the leading factor chunk launches before any overlap
        compute exists; the trailing eig chunk follows the last
        decomposition):

        - the **factor allreduce** launches from the backward hooks as
          factors are produced (SPD-KFAC's pipelining), so its budget is
          the backward pass + covariance GEMMs + the *fastest* worker's
          eigendecompositions (the least-overlapped rank sets the
          barrier for each chunk's install point);
        - the **eigendecomposition allgather** is decoupled from the
          iteration (§V-B): its chunks drain into local preconditioning
          and the next iteration's forward/backward before the results
          must install.

        Each budget is spent once — a compute second that hides one chunk
        cannot hide another — and the two budgets come from disjoint
        phases, so nothing is double-counted.
        """
        if p <= 1:
            return 0.0, 0.0
        fac_total = self.factor_comm_time(
            p, packed=symmetric, precision=precision, diag_blocks=diag_blocks
        )
        eig_total = self.eig_comm_time(p, diag_blocks)
        n = self.pipeline_chunks(
            bucket_bytes, packed=symmetric, precision=precision, diag_blocks=diag_blocks
        )
        min_worker_eig = min(self.eig_worker_times(p, "comm-opt", policy, diag_blocks))

        fac_budget = (
            self.backward_time(precision)
            + self.factor_compute_time(syrk=symmetric, precision=precision)
            + min_worker_eig
        )
        fac_exposed = fac_total / n  # leading chunk
        hideable = fac_total - fac_exposed
        fac_exposed += max(0.0, hideable - fac_budget)

        eig_budget = (
            self.precondition_time_all()
            + self.forward_time(precision)
            + self.backward_time(precision)
        )
        eig_exposed = eig_total / n  # trailing chunk
        hideable = eig_total - eig_exposed
        eig_exposed += max(0.0, hideable - eig_budget)
        return fac_exposed, eig_exposed

    def factor_comm_exposed_time(
        self,
        p: int,
        policy: str = "round_robin",
        bucket_bytes: int = DEFAULT_BUCKET_BYTES,
    ) -> float:
        """Exposed factor-allreduce seconds with pipelining enabled."""
        return self.pipelined_comm_times(p, policy, bucket_bytes)[0]

    def eig_comm_exposed_time(
        self,
        p: int,
        policy: str = "round_robin",
        bucket_bytes: int = DEFAULT_BUCKET_BYTES,
    ) -> float:
        """Exposed eigendecomposition-allgather seconds with pipelining."""
        return self.pipelined_comm_times(p, policy, bucket_bytes)[1]

    # ------------------------------------------------------------------
    # KAISA-style gradient-worker fraction (HYBRID placement)
    # ------------------------------------------------------------------
    def grad_workers(self, p: int, grad_worker_frac: float) -> int:
        """Gradient-worker group size ``max(1, round(f * p))``."""
        return grad_worker_count(p, grad_worker_frac)

    def eigenbasis_bytes_per_rank(self, p: int, grad_worker_frac: float = 1.0) -> float:
        """Second-order state bytes one rank must hold under fraction ``f``.

        A rank stores the eigenbases only of layers whose gradient-worker
        group it belongs to — ``g/p`` of the model with contiguous
        groups.  ``f = 1`` is the COMM_OPT memory footprint (every rank
        holds every basis); ``f = 1/p`` the LAYER_WISE one.  Strictly
        decreasing in the group size, hence in ``f`` along a halving
        sweep — the memory side of the KAISA Pareto frontier.
        """
        if p < 1:
            raise ValueError(f"world size must be >= 1, got {p}")
        g = grad_worker_count(p, grad_worker_frac)
        return self.model.eig_bytes * g / p

    def precond_share_bytes_per_rank(self, p: int, grad_worker_frac: float) -> float:
        """Per-iteration preconditioned-gradient bytes one rank receives.

        A rank outside a layer's group receives that layer's packed
        gradient from the group root each iteration; a rank is a
        non-member for ``(p - g)/p`` of the layers.  Zero at ``f = 1``
        (COMM_OPT: no second stage), maximal at ``f = 1/p`` — the
        communication side of the Pareto frontier, strictly increasing
        as ``f`` decreases.
        """
        if p < 1:
            raise ValueError(f"world size must be >= 1, got {p}")
        if p == 1:
            return 0.0
        g = grad_worker_count(p, grad_worker_frac)
        return self.model.grad_matrix_bytes * (p - g) / p

    def precond_share_time(self, p: int, grad_worker_frac: float) -> float:
        """Second-stage broadcast seconds per iteration under fraction ``f``.

        Each group root broadcasts its fused per-root gradient shard to
        the ``p - g`` non-members (a ``p - g + 1``-rank
        scatter+allgather broadcast, the bandwidth-optimal large-payload
        algorithm).  Groups start at the layer's canonical owner
        ``i % p``, so only ``min(p, n_layers)`` distinct roots exist —
        the launch count and shard size follow the real placement, not
        ``p``.  A per-iteration blocking stage, so the straggler penalty
        applies — the LAYER_WISE scaling pathology, dialled in
        continuously by ``f``.
        """
        if p <= 1:
            return 0.0
        g = grad_worker_count(p, grad_worker_frac)
        if g >= p:
            return 0.0
        participants = p - g + 1
        roots = min(p, self.n_layers)
        per_root = self.model.grad_matrix_bytes / roots
        base = roots * scatter_broadcast_time(per_root, participants, self.cluster.net)
        launches = self.cluster.op_launch * roots
        return base * self.cluster.sync_penalty(p) + launches

    def eig_group_comm_time(
        self, p: int, grad_worker_frac: float, diag_blocks: int = 1
    ) -> float:
        """Group eigenbasis-share seconds for one K-FAC update.

        ``f = 1`` degenerates to the COMM_OPT world allgather
        (:meth:`eig_comm_time`); ``f = 1/p`` to zero (LAYER_WISE keeps
        decompositions local).  In between, each rank performs the window
        allgathers it belongs to, each moving one group's share of the
        eig payload among ``g`` ranks.  Only ``min(p, n_layers)``
        distinct windows exist (one per canonical owner), so a rank sits
        in ``g * min(p, L) / p`` of them on average.  The assignment
        policy does not enter: the gathered payload per group is the
        group's full eigenbasis regardless of which member decomposed
        which factor.
        """
        if p <= 1:
            return 0.0
        g = grad_worker_count(p, grad_worker_frac)
        if g == 1:
            return 0.0
        if g >= p:
            return self.eig_comm_time(p, diag_blocks)
        n_groups = min(p, self.n_layers)
        per_rank_windows = g * n_groups / p
        per_group = self.model.eig_payload_bytes(4, diag_blocks) / n_groups
        launches = (
            self.cluster.op_launch * len(self._comm_metas(diag_blocks)) * 2 * g / p
        )
        return per_rank_windows * allgather_time(per_group, g, self.cluster.net) + launches

    def hybrid_share_exposed_time(
        self, p: int, grad_worker_frac: float, precision: str = "fp32"
    ) -> float:
        """Exposed group eigenbasis-share seconds under the graph scheduler.

        The task-graph scheduler (``KFAC(scheduler="graph")``) launches
        each group's allgather as soon as its members' eigendecompositions
        finish, so all but the first of the ``min(p, n_layers)`` group
        windows can hide behind the replicated in-group preconditioning
        and the next iteration's forward/backward pass.  Only the first
        window's latency plus whatever the remainder overflows that
        budget stays on the critical path.  The retired hand-written
        hybrid pipeline ran the share synchronously, so this is strictly
        below :meth:`eig_group_comm_time` whenever more than one window
        exists and the overlap budget is positive.  ``f = 1`` degenerates
        to the single world allgather (no intra-stage overlap — the
        COMM_OPT bucketed numbers apply instead); ``f = 1/p`` to zero.
        """
        total = self.eig_group_comm_time(p, grad_worker_frac)
        if total <= 0.0:
            return 0.0
        g = grad_worker_count(p, grad_worker_frac)
        n_windows = 1 if g >= p else min(p, self.n_layers)
        if n_windows <= 1:
            return total
        budget = (
            self.hybrid_precondition_time(p, grad_worker_frac)
            + self.forward_time(precision)
            + self.backward_time(precision)
        )
        first = total / n_windows
        return first + max(0.0, (total - first) - budget)

    def hybrid_eig_stage_time(
        self,
        p: int,
        grad_worker_frac: float,
        policy: str = "round_robin",
        diag_blocks: int = 1,
    ) -> float:
        """Slowest rank's eigendecomposition time under group placement.

        Uses the *real* within-group assignment
        (:func:`repro.core.assignment.build_group_placement`), so the
        modeled imbalance is exactly what the simulated preconditioner
        would exhibit; degenerates to the COMM_OPT assignment at
        ``f = 1`` and the LAYER_WISE loads at ``f = 1/p``.
        """
        metas = self._comm_metas(diag_blocks)
        placement = build_group_placement(metas, p, grad_worker_frac, policy=policy)
        loads = worker_costs(
            metas, placement.assignment, p,
            cost_fn=lambda m: self._eig_seconds(m.dim),
        )
        return max(loads)

    def hybrid_precondition_time(self, p: int, grad_worker_frac: float) -> float:
        """Slowest rank's preconditioning time under fraction ``f``.

        Every gradient worker of a layer preconditions it (redundantly —
        that is the KAISA trade: compute replicated inside the group so
        the eigenbasis need not leave it).  ``f = 1`` reproduces
        :meth:`precondition_time_all`; ``f = 1/p`` the LAYER_WISE
        slowest-owner load.
        """
        placement = build_group_placement(self._factor_metas, p, grad_worker_frac)
        loads = [0.0] * p
        for l in self.model.kfac_layers:
            t = self._precond_layer_time(layer_precondition_flops(l))
            for r in placement.groups[l.name]:
                loads[r] += t
        return max(loads)

    # ------------------------------------------------------------------
    # K-FAC preconditioning stage
    # ------------------------------------------------------------------
    def _precond_layer_time(self, layer_flops: float) -> float:
        overhead = self.device.precond_layer_coef * self.n_layers
        return layer_flops / self.device.precond_flops + overhead

    def precondition_time_all(self) -> float:
        """Precondition every layer locally (K-FAC-opt per-iteration stage)."""
        return sum(
            self._precond_layer_time(layer_precondition_flops(l))
            for l in self.model.kfac_layers
        )

    def precondition_time_layer_wise(self, p: int) -> float:
        """Slowest owner's preconditioning time (K-FAC-lw per-iteration)."""
        assignment = layer_wise_assignment([l.name for l in self.model.kfac_layers], p)
        loads = [0.0] * p
        for l in self.model.kfac_layers:
            loads[assignment[l.name]] += self._precond_layer_time(
                layer_precondition_flops(l)
            )
        return max(loads)

    def precond_gather_time(self, p: int) -> float:
        """Allgather of preconditioned gradients (K-FAC-lw, EVERY iteration).

        Per-iteration blocking collective => straggler penalty applies.
        """
        if p <= 1:
            return 0.0
        base = allgather_time(self.model.grad_bytes, p, self.cluster.net)
        launches = self.cluster.op_launch * self.n_layers
        return base * self.cluster.sync_penalty(p) + launches

    # ------------------------------------------------------------------
    # amortized iteration & epoch times
    # ------------------------------------------------------------------
    def kfac_iteration_time(
        self,
        p: int,
        strategy: str,
        intervals: KfacIntervals,
        policy: str = "round_robin",
        pipelined: bool = False,
        bucket_bytes: int = DEFAULT_BUCKET_BYTES,
        symmetric: bool = False,
        precision: str = "fp32",
        grad_worker_frac: float | None = None,
        scheduler: str | None = None,
        diag_blocks: int = 1,
    ) -> float:
        """Average per-iteration time including amortized K-FAC stages.

        ``pipelined=True`` models the async engine: only the *exposed*
        factor/eig communication (comm-opt strategy) contributes to the
        critical path; the hidden remainder overlaps eigendecompositions.
        ``symmetric=True`` applies the syrk compute and triangular-packed
        communication rates of the symmetry-aware fast path.
        ``precision`` applies the mixed-precision rates: Tensor-Core
        forward/backward, half-width patch traffic, and codec-compressed
        gradient/factor wire bytes (eig exchange stays fp32 per the
        precision policy).
        ``strategy="hybrid"`` with ``grad_worker_frac=f`` models the
        KAISA-style placement: group eigenbasis share, replicated
        in-group preconditioning, and the per-iteration second-stage
        broadcast; ``f = 1`` reproduces the comm-opt numbers exactly.
        ``scheduler="graph"`` prices the dependency-graph task scheduler
        (pipelined factor buckets, and for hybrid the overlapped group
        share of :meth:`hybrid_share_exposed_time`); ``"sync"`` the
        synchronous stream; ``None`` defers to the ``pipelined`` flag
        (the retired hand-written pipelines).
        ``diag_blocks > 1`` prices the block-diagonal approximation of
        ``KFAC(diag_blocks=k)``: per-block eigendecompositions (cubic
        cost drop, finer LPT balance) and the block-triangle wire.
        """
        if scheduler is not None:
            if scheduler not in ("sync", "graph"):
                raise ValueError(
                    f"scheduler must be 'sync' or 'graph', got {scheduler!r}"
                )
            pipelined = scheduler == "graph"
        base = self.sgd_iteration_time(p, precision)
        if strategy == "hybrid":
            if grad_worker_frac is None:
                raise ValueError("strategy='hybrid' requires grad_worker_frac")
            if pipelined:
                fac_comm = self.pipelined_comm_times(
                    p, policy, bucket_bytes, symmetric, precision, diag_blocks
                )[0]
            else:
                fac_comm = self.factor_comm_time(
                    p, packed=symmetric, precision=precision, diag_blocks=diag_blocks
                )
            per_fac = (
                self.factor_compute_time(syrk=symmetric, precision=precision)
                + self.factor_capture_overhead()
                + fac_comm
            )
            share_comm = (
                self.hybrid_share_exposed_time(p, grad_worker_frac, precision)
                if scheduler == "graph"
                else self.eig_group_comm_time(p, grad_worker_frac, diag_blocks)
            )
            per_eig = (
                self.hybrid_eig_stage_time(p, grad_worker_frac, policy, diag_blocks)
                + share_comm
            )
            per_iter = self.hybrid_precondition_time(
                p, grad_worker_frac
            ) + self.precond_share_time(p, grad_worker_frac)
        elif strategy == "comm-opt":
            if pipelined:
                fac_comm, eig_comm = self.pipelined_comm_times(
                    p, policy, bucket_bytes, symmetric, precision, diag_blocks
                )
            else:
                fac_comm = self.factor_comm_time(
                    p, packed=symmetric, precision=precision, diag_blocks=diag_blocks
                )
                eig_comm = self.eig_comm_time(p, diag_blocks)
            per_fac = (
                self.factor_compute_time(syrk=symmetric, precision=precision)
                + self.factor_capture_overhead()
                + fac_comm
            )
            per_eig = self.eig_stage_time(p, strategy, policy, diag_blocks) + eig_comm
            per_iter = self.precondition_time_all()
        elif strategy == "layer-wise":
            per_fac = self.factor_stage_time(p, symmetric=symmetric, precision=precision)
            per_eig = self.eig_stage_time(p, strategy, diag_blocks=diag_blocks)
            per_iter = self.precondition_time_layer_wise(p) + self.precond_gather_time(p)
        else:
            raise ValueError(f"unknown strategy {strategy!r}")
        return (
            base
            + per_iter
            + per_fac / intervals.fac_interval
            + per_eig / intervals.eig_interval
        )

    def fig1_stage_times(
        self,
        p: int,
        strategy: str | None = None,
        intervals: KfacIntervals | None = None,
        policy: str = "round_robin",
        bucket_bytes: int = DEFAULT_BUCKET_BYTES,
        symmetric: bool = False,
        precision: str = "fp32",
        grad_worker_frac: float | None = None,
        scheduler: str | None = None,
    ) -> dict[str, float]:
        """Per-iteration seconds for the paper's Fig. 1 decomposition.

        Returns the five stages of the Fig. 1 breakdown — ``io``,
        ``forward``, ``gradient`` (the backward pass), ``exchange`` (the
        gradient allreduce), and ``update`` — as modeled per-iteration
        times.  With a ``strategy`` (and ``intervals``), ``update`` is
        the full amortized K-FAC surcharge over plain SGD
        (:meth:`kfac_iteration_time` minus :meth:`sgd_iteration_time`);
        without one it is 0 (pure SGD applies the step in-place).

        The drift report (:mod:`repro.obs.report`) aligns these rows
        against a traced run's measured stage times.

        Example
        -------
        >>> from repro.perfmodel.hardware import FRONTERA_LIKE, V100_LIKE
        >>> from repro.perfmodel.iteration import IterationModel, KfacIntervals
        >>> from repro.perfmodel.specs import resnet_spec
        >>> im = IterationModel(resnet_spec(50), V100_LIKE, FRONTERA_LIKE)
        >>> stages = im.fig1_stage_times(8, "comm-opt",
        ...                              KfacIntervals.from_eig_interval(10))
        >>> sorted(stages)
        ['exchange', 'forward', 'gradient', 'io', 'update']
        >>> all(v > 0 for v in stages.values())
        True
        >>> im.fig1_stage_times(8)["update"]
        0.0
        """
        stages = {
            "io": self.device.per_iter_overhead,
            "forward": self.forward_time(precision),
            "gradient": self.backward_time(precision),
            "exchange": self.grad_exchange_time(p, precision),
        }
        if strategy is None:
            stages["update"] = 0.0
        else:
            if intervals is None:
                raise ValueError("fig1_stage_times with a strategy needs intervals")
            stages["update"] = self.kfac_iteration_time(
                p,
                strategy,
                intervals,
                policy=policy,
                bucket_bytes=bucket_bytes,
                symmetric=symmetric,
                precision=precision,
                grad_worker_frac=grad_worker_frac,
                scheduler=scheduler,
            ) - self.sgd_iteration_time(p, precision)
        return stages

    def straggler_penalty(
        self,
        p: int,
        straggler_seconds: float,
        policy: str = "round_robin",
        scheduler: str = "sync",
        symmetric: bool = False,
        precision: str = "fp32",
        grad_worker_frac: float | None = None,
    ) -> float:
        """Extra seconds one slow rank adds to a K-FAC update step.

        Synchronous collectives are lockstep: every rank waits out the
        straggler's full lateness.  The graph scheduler launches the
        K-FAC collectives asynchronously and only settles them when a
        dependent task needs the data, so a straggler's lateness is
        absorbed up to the profile's hidden-communication budget
        (``StageProfile.hidden_comm``) before it reaches the critical
        path: ``max(0, lateness - hidden_comm)``.  The penalty is
        monotone in the lateness, and strictly smaller under
        ``scheduler="graph"`` whenever the profile hides any
        communication at all.

        Example
        -------
        >>> from repro.perfmodel.hardware import FRONTERA_LIKE, V100_LIKE
        >>> from repro.perfmodel.iteration import IterationModel
        >>> from repro.perfmodel.specs import resnet_spec
        >>> im = IterationModel(resnet_spec(50), V100_LIKE, FRONTERA_LIKE)
        >>> sync = im.straggler_penalty(64, 0.05, scheduler="sync")
        >>> graph = im.straggler_penalty(64, 0.05, scheduler="graph")
        >>> sync == 0.05 and 0.0 <= graph < sync
        True
        """
        if scheduler not in ("sync", "graph"):
            raise ValueError(
                f"scheduler must be 'sync' or 'graph', got {scheduler!r}"
            )
        if straggler_seconds < 0:
            raise ValueError(
                f"straggler_seconds must be >= 0, got {straggler_seconds}"
            )
        if scheduler == "sync":
            return float(straggler_seconds)
        profile = self.stage_profile(
            p,
            policy=policy,
            symmetric=symmetric,
            precision=precision,
            grad_worker_frac=grad_worker_frac,
            scheduler="graph",
        )
        return max(0.0, float(straggler_seconds) - profile.hidden_comm)

    def iterations_per_epoch(self, p: int, dataset_size: int) -> int:
        global_batch = self.local_batch * p
        return (dataset_size + global_batch - 1) // global_batch

    def epoch_time(
        self,
        p: int,
        optimizer: str,
        dataset_size: int,
        intervals: KfacIntervals | None = None,
        policy: str = "round_robin",
        precision: str = "fp32",
    ) -> float:
        """Seconds per epoch for ``optimizer`` in {"sgd","kfac-opt","kfac-lw"}."""
        iters = self.iterations_per_epoch(p, dataset_size)
        if optimizer == "sgd":
            return iters * self.sgd_iteration_time(p, precision)
        if intervals is None:
            raise ValueError("K-FAC epoch time requires update intervals")
        strategy = {"kfac-opt": "comm-opt", "kfac-lw": "layer-wise"}.get(optimizer)
        if strategy is None:
            raise ValueError(f"unknown optimizer {optimizer!r}")
        return iters * self.kfac_iteration_time(
            p, strategy, intervals, policy, precision=precision
        )

    # ------------------------------------------------------------------
    # Table V profile
    # ------------------------------------------------------------------
    def stage_profile(
        self,
        p: int,
        policy: str = "round_robin",
        pipelined: bool = False,
        bucket_bytes: int = DEFAULT_BUCKET_BYTES,
        symmetric: bool = False,
        precision: str = "fp32",
        grad_worker_frac: float | None = None,
        scheduler: str | None = None,
        diag_blocks: int = 1,
    ) -> StageProfile:
        """Per-update-step stage profile (the paper's Table V row).

        ``factor_tcomp`` is the covariance-GEMM time only, matching what
        Table V instruments (the capture overhead shows up in iteration
        times instead — see hardware.py notes).  With ``pipelined=True``
        the exposed-communication fields reflect the async engine's
        overlap; otherwise they equal the synchronous costs.  With
        ``symmetric=True`` the profile uses the syrk compute rate and the
        triangular-packed allreduce payload.  ``precision="fp16"`` applies
        the mixed-precision rates (half-width patch traffic, compressed
        factor wire); the eigendecomposition stage stays fp32 by policy.
        With ``grad_worker_frac=f`` the profile models the KAISA-style
        hybrid placement: group eigenbasis share instead of the world
        allgather, a non-zero ``precond_tcomm`` second stage, and the
        per-rank memory/volume fields that trace the memory-vs-comm
        Pareto frontier (``f=1`` reproduces the COMM_OPT profile).

        ``scheduler`` prices a named execution route: ``"graph"`` is the
        dependency-graph task scheduler (pipelined factor buckets AND
        overlapped hybrid group shares — the exposed eig comm follows
        :meth:`hybrid_share_exposed_time`); ``"sync"`` the synchronous
        request stream.  ``None`` defers to the legacy ``pipelined``
        flag, which models the retired hand-written pipelines (hybrid
        overlapped the factor stage only, leaving the group share fully
        exposed).

        ``diag_blocks > 1`` prices the block-diagonal approximation:
        per-block eigendecompositions shrink ``eig_tcomp`` (cubic cost)
        and ``eig_tcomm``/``factor_comm_payload_bytes`` (block-triangle
        wire); ``diag_blocks=1`` reproduces the whole-factor numbers
        exactly.
        """
        if scheduler is not None:
            if scheduler not in ("sync", "graph"):
                raise ValueError(
                    f"scheduler must be 'sync' or 'graph', got {scheduler!r}"
                )
            pipelined = scheduler == "graph"
        fac_comm = self.factor_comm_time(
            p, packed=symmetric, precision=precision, diag_blocks=diag_blocks
        )
        if grad_worker_frac is None:
            eig_comm = self.eig_comm_time(p, diag_blocks)
            eig_tcomp = self.eig_stage_time(p, "comm-opt", policy, diag_blocks)
            precond_tcomm = 0.0
            eig_mem = float(self.model.eig_payload_bytes(4, diag_blocks))
            share_bytes = 0.0
        else:
            eig_comm = self.eig_group_comm_time(p, grad_worker_frac, diag_blocks)
            eig_tcomp = self.hybrid_eig_stage_time(
                p, grad_worker_frac, policy, diag_blocks
            )
            precond_tcomm = self.precond_share_time(p, grad_worker_frac)
            eig_mem = self.eigenbasis_bytes_per_rank(p, grad_worker_frac)
            share_bytes = self.precond_share_bytes_per_rank(p, grad_worker_frac)
        if pipelined:
            fac_exposed, eig_exposed = self.pipelined_comm_times(
                p, policy, bucket_bytes, symmetric, precision, diag_blocks
            )
            if grad_worker_frac is not None:
                if scheduler == "graph":
                    # group shares are schedulable nodes: all but the first
                    # window hides behind preconditioning + fwd/bwd
                    eig_exposed = self.hybrid_share_exposed_time(
                        p, grad_worker_frac, precision
                    )
                else:
                    # the retired hand-written hybrid pipeline overlapped
                    # the factor stage only; its group share ran synchronous
                    eig_exposed = eig_comm
        else:
            fac_exposed, eig_exposed = fac_comm, eig_comm
        return StageProfile(
            factor_tcomp=self.factor_compute_time(syrk=symmetric, precision=precision),
            factor_tcomm=fac_comm,
            eig_tcomp=eig_tcomp,
            eig_tcomm=eig_comm,
            factor_tcomm_exposed=fac_exposed,
            eig_tcomm_exposed=eig_exposed,
            factor_comm_payload_bytes=float(
                self.factor_comm_payload_bytes(symmetric, precision, diag_blocks)
            ),
            precond_tcomm=precond_tcomm,
            eigenbasis_bytes_per_rank=eig_mem,
            precond_share_bytes_per_rank=share_bytes,
        )
