"""Symmetric Gram products ``X^T X`` via BLAS rank-k updates.

Every K-FAC factor is a Gram matrix, and a plain GEMM computes both
triangles of that symmetric result — twice the necessary FLOPs.  BLAS
``?syrk`` computes only one triangle (half the multiply-accumulates); we
mirror it into the other triangle once, which also makes the result
*exactly* symmetric — the property the triangular-packed factor
communication in :mod:`repro.comm.fusion` relies on for losslessness.

Implementation note: for a C-contiguous ``X`` of shape ``(m, n)``, ``X.T``
is Fortran-contiguous, so ``syrk(a=X.T, trans=0)`` computes
``X^T (X^T)^T = X^T X`` with zero input copies; passing ``c=out.T`` with
``overwrite_c`` makes BLAS fill the *upper* triangle of our C-ordered
``out`` in place.  Falls back to ``X.T @ X`` (symmetrized) for dtypes
without a syrk routine or when SciPy is unavailable.
"""

from __future__ import annotations

import numpy as np

__all__ = ["gram", "has_syrk", "mirror_upper"]

try:  # SciPy ships with the toolchain; gate anyway so the GEMM path survives
    from scipy.linalg.blas import dsyrk as _dsyrk
    from scipy.linalg.blas import ssyrk as _ssyrk

    _SYRK = {np.dtype(np.float32): _ssyrk, np.dtype(np.float64): _dsyrk}
except ImportError:  # pragma: no cover - scipy is a baked-in dependency
    _SYRK = {}

#: cached strict-lower-triangle index pairs, keyed by matrix side length
_TRIL_CACHE: dict[int, tuple[np.ndarray, np.ndarray]] = {}

#: mirror tile side: big enough to amortize the python loop, small enough
#: that a (tile, tile) block transpose stays cache-resident — measured ~8x
#: faster than a whole-matrix fancy-index mirror at ResNet factor sizes.
_MIRROR_TILE = 256


def has_syrk(dtype: np.dtype | str) -> bool:
    """True when a BLAS rank-k kernel exists for ``dtype``.

    Example
    -------
    >>> from repro.tensor.gram import has_syrk
    >>> has_syrk("float16")    # halves fall back to the GEMM path
    False
    """
    return np.dtype(dtype) in _SYRK


def _tril_indices(n: int) -> tuple[np.ndarray, np.ndarray]:
    idx = _TRIL_CACHE.get(n)
    if idx is None:
        idx = np.tril_indices(n, -1)
        _TRIL_CACHE[n] = idx
    return idx


def mirror_upper(mat: np.ndarray) -> np.ndarray:
    """Copy the upper triangle into the lower, in place; returns ``mat``.

    Tiled: off-diagonal blocks are blockwise transposed copies (cache
    friendly), only the small diagonal blocks use index pairs.

    Example
    -------
    >>> import numpy as np
    >>> from repro.tensor.gram import mirror_upper
    >>> m = np.array([[1., 2.], [0., 3.]], dtype=np.float32)
    >>> mirror_upper(m)
    array([[1., 2.],
           [2., 3.]], dtype=float32)
    """
    n = mat.shape[0]
    if n <= 1:
        return mat
    tile = _MIRROR_TILE
    for i0 in range(0, n, tile):
        i1 = min(i0 + tile, n)
        for j0 in range(0, i0, tile):
            j1 = min(j0 + tile, n)
            mat[i0:i1, j0:j1] = mat[j0:j1, i0:i1].T
        blk = mat[i0:i1, i0:i1]
        rows, cols = _tril_indices(i1 - i0)
        blk[rows, cols] = blk.T[rows, cols]
    return mat


def gram(x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
    """``x.T @ x`` as an exactly symmetric matrix, at half the GEMM FLOPs.

    Parameters
    ----------
    x:
        Data matrix of shape ``(m, n)``; rows are samples.
    out:
        Optional ``(n, n)`` C-contiguous output buffer (e.g. from a
        :class:`repro.tensor.workspace.Workspace`); contents are
        overwritten.

    Returns
    -------
    numpy.ndarray
        ``(n, n)`` Gram matrix with ``gram(x) == gram(x).T`` holding
        bit-for-bit.

    Example
    -------
    >>> import numpy as np
    >>> from repro.tensor.gram import gram
    >>> x = np.random.default_rng(0).normal(size=(64, 8)).astype(np.float32)
    >>> G = gram(x)
    >>> bool(np.array_equal(G, G.T))          # exactly symmetric
    True
    >>> bool(np.allclose(G, x.T @ x, atol=1e-4))
    True
    """
    if x.ndim != 2:
        raise ValueError(f"gram expects a 2-D matrix, got shape {x.shape}")
    n = x.shape[1]
    if out is not None and (
        out.shape != (n, n) or out.dtype != x.dtype or not out.flags.c_contiguous
    ):
        raise ValueError(
            f"gram out buffer must be C-contiguous {(n, n)} {x.dtype}, "
            f"got {out.shape} {out.dtype}"
        )
    fn = _SYRK.get(x.dtype)
    if fn is None:
        res = x.T @ x
        if out is not None:
            out[...] = res
            res = out
        return mirror_upper(np.ascontiguousarray(res))
    if out is None:
        out = np.empty((n, n), dtype=x.dtype)
    # lower=1 on the F-ordered view c=out.T fills out's *upper* triangle
    res = fn(alpha=1.0, a=x.T, trans=0, lower=1, c=out.T, overwrite_c=1)
    if not np.shares_memory(res, out):  # pragma: no cover - BLAS made a copy
        out[...] = res.T
    return mirror_upper(out)
