"""Process-wide default dtype resolution.

The stack trains in FP32 by default (the paper's precision), but every
dtype-preservation guarantee added since PR 1 (comm packing, triangular
factors, workspace pooling) is supposed to hold at FP64 too.  Setting
``REPRO_DEFAULT_DTYPE=float64`` switches the *storage* default — weight
initializers, BatchNorm parameters — so the whole test suite can run in
double precision and keep those guarantees honest (CI runs exactly that
job).  Compute-precision overrides (fp16/bf16 autocast) are a separate,
orthogonal axis: see :mod:`repro.tensor.amp`.
"""

from __future__ import annotations

import os

__all__ = ["DEFAULT_DTYPE", "resolve_default_dtype"]

_ALLOWED = ("float32", "float64")


def resolve_default_dtype() -> str:
    """The storage dtype from ``REPRO_DEFAULT_DTYPE`` (default ``float32``).

    Example
    -------
    >>> from repro.tensor.dtypes import resolve_default_dtype
    >>> resolve_default_dtype() in ("float32", "float64")
    True
    """
    value = os.environ.get("REPRO_DEFAULT_DTYPE", "float32")
    if value not in _ALLOWED:
        raise ValueError(
            f"REPRO_DEFAULT_DTYPE must be one of {_ALLOWED}, got {value!r} "
            "(half precisions are compute/transport dtypes — use a "
            "PrecisionPolicy, not the storage default)"
        )
    return value


#: resolved once at import; tests monkeypatching the environment should
#: call :func:`resolve_default_dtype` directly.
DEFAULT_DTYPE = resolve_default_dtype()
