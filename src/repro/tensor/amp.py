"""Automatic mixed precision: compute-dtype state and cast helpers.

Models the Tensor-Core contract the paper's hardware (V100) offers —
*multiply in half precision, accumulate in FP32* — on top of NumPy:

- ``float16`` compute: operands are **rounded to fp16** (the values a real
  fp16 GEMM would see) and the product is taken in FP32, which is exactly
  the fp16-multiply / fp32-accumulate semantics of a Tensor-Core HMMA op
  (and, conveniently, runs through BLAS sgemm instead of NumPy's slow
  half-precision loops);
- ``bfloat16`` compute: NumPy has no bf16 dtype, so operands are rounded
  to the bf16 grid (round-to-nearest-even on the top 16 bits of the fp32
  encoding) while staying fp32 in storage — same multiply-rounding /
  fp32-accumulation model;
- ``float64`` compute: full double-precision operands and accumulation;
- ``None`` (default): exact pass-through — ``amp_matmul`` *is* ``@``.

The active compute dtype is thread-local state set by
:func:`repro.precision.PrecisionPolicy.autocast` (or :func:`autocast`
directly); layers consult it through :func:`amp_matmul` /
:func:`cast_compute_storage` so that forward/backward GEMMs and the
im2col lowering run in the compute dtype while parameters, activations
between layers, gradients, and factors stay in the storage dtype.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator

import numpy as np

__all__ = [
    "COMPUTE_DTYPES",
    "amp_matmul",
    "autocast",
    "bf16_pack",
    "bf16_unpack",
    "cast_compute_storage",
    "get_compute_dtype",
    "quantize_bf16",
    "set_compute_dtype",
]

#: valid compute-dtype names (``None`` = pass-through full precision)
COMPUTE_DTYPES = ("float16", "bfloat16", "float32", "float64")

#: the active compute dtype, *thread-local*: SPMD rank threads each enter
#: their own ``autocast`` per step, and sharing one global would let rank
#: A's context exit silently flip rank B back to fp32 mid-backward (and
#: leak autocast past the last exit).  Each thread that computes under a
#: policy must install it itself (the trainer and each quickstart rank do).
_STATE = threading.local()


def get_compute_dtype() -> str | None:
    """The active compute dtype name, or ``None`` outside any autocast.

    Example
    -------
    >>> from repro.tensor.amp import autocast, get_compute_dtype
    >>> get_compute_dtype() is None
    True
    >>> with autocast("float16"):
    ...     get_compute_dtype()
    'float16'
    """
    return getattr(_STATE, "dtype", None)


def set_compute_dtype(dtype: str | None) -> None:
    """Install a compute dtype for this thread (``None`` disables it).

    Example
    -------
    >>> from repro.tensor.amp import get_compute_dtype, set_compute_dtype
    >>> set_compute_dtype("bfloat16"); get_compute_dtype()
    'bfloat16'
    >>> set_compute_dtype(None)   # restore full precision
    """
    if dtype is not None and dtype not in COMPUTE_DTYPES:
        raise ValueError(f"unknown compute dtype {dtype!r}; choose from {COMPUTE_DTYPES}")
    _STATE.dtype = dtype


@contextmanager
def autocast(dtype: str | None) -> Iterator[None]:
    """Run the enclosed block with the given compute dtype installed.

    Example
    -------
    >>> import numpy as np
    >>> from repro.tensor.amp import amp_matmul, autocast
    >>> a = np.ones((2, 3), dtype=np.float32)
    >>> with autocast("float16"):
    ...     amp_matmul(a, a.T).dtype     # fp16 multiply, fp32 accumulate
    dtype('float32')
    """
    previous = get_compute_dtype()
    set_compute_dtype(dtype)
    try:
        yield
    finally:
        set_compute_dtype(previous)


def bf16_pack(x: np.ndarray) -> np.ndarray:
    """Pack fp32 values into their 16-bit bfloat16 encodings (``uint16``).

    Round-to-nearest-even on the truncated 16 mantissa bits — the rounding
    real bf16 hardware applies.  Non-float32 inputs are converted first;
    infinities survive, and NaNs stay non-finite (a payload NaN may round
    to infinity, which is all the overflow detection needs).  This is the
    single definition of the bf16 grid: the wire codec in
    :mod:`repro.comm.compression` and :func:`quantize_bf16` both build on
    it, so the transport encoding and the compute grid can never diverge.
    """
    bits = np.ascontiguousarray(x, dtype=np.float32).view(np.uint32)
    rounded = bits + np.uint32(0x7FFF) + ((bits >> np.uint32(16)) & np.uint32(1))
    return (rounded >> np.uint32(16)).astype(np.uint16)


def bf16_unpack(packed: np.ndarray) -> np.ndarray:
    """Expand 16-bit bfloat16 encodings back to fp32 values (lossless)."""
    return (packed.astype(np.uint32) << np.uint32(16)).view(np.float32)


def quantize_bf16(x: np.ndarray) -> np.ndarray:
    """Round fp32 values to the bfloat16 grid (storage stays float32).

    Example
    -------
    >>> import numpy as np
    >>> from repro.tensor.amp import quantize_bf16
    >>> q = quantize_bf16(np.array([1.0 + 2.0**-10], dtype=np.float32))
    >>> float(q[0]), q.dtype.name     # below bf16 resolution: back to 1.0
    (1.0, 'float32')
    """
    return bf16_unpack(bf16_pack(x))


def _round_fp16(x: np.ndarray) -> np.ndarray:
    """Round to fp16 values (as a float16 array); overflow becomes inf."""
    if x.dtype == np.float16:
        return x
    with np.errstate(over="ignore"):
        return x.astype(np.float16)


def cast_compute_storage(x: np.ndarray) -> np.ndarray:
    """Cast a tensor that *lives* in the compute dtype (e.g. im2col input).

    Under fp16 the result is a genuine float16 array (half the memory
    traffic, like the half-precision patch buffers of Osawa et al.);
    under bf16 it is fp32 storage rounded to the bf16 grid; otherwise the
    input passes through (or is cast for an explicit fp32/fp64 policy).

    Example
    -------
    >>> import numpy as np
    >>> from repro.tensor.amp import autocast, cast_compute_storage
    >>> x = np.ones(4, dtype=np.float32)
    >>> with autocast("float16"):
    ...     cast_compute_storage(x).dtype
    dtype('float16')
    >>> cast_compute_storage(x) is x     # no autocast: pass-through
    True
    """
    dt = get_compute_dtype()
    if dt is None or x.dtype.name == dt:
        return x
    if dt == "float16":
        return _round_fp16(x)
    if dt == "bfloat16":
        return quantize_bf16(x) if x.dtype == np.float32 else quantize_bf16(
            x.astype(np.float32)
        )
    return x.astype(dt)


def amp_matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``a @ b`` in the active compute dtype with fp32+ accumulation.

    Outside autocast (or under an explicit fp32 policy with fp32 inputs)
    this is exactly ``a @ b`` — bit-identical, zero overhead.  Under fp16
    and bf16 the *operands* are rounded to the half-precision grid and the
    product accumulates in fp32 (Tensor-Core semantics); the result is
    fp32.  Under fp64 both operands are promoted and the result is fp64.

    Example
    -------
    >>> import numpy as np
    >>> from repro.tensor.amp import amp_matmul, autocast
    >>> a = np.full((1, 3), 1/3, dtype=np.float32)
    >>> np.array_equal(amp_matmul(a, a.T), a @ a.T)   # no autocast: exact
    True
    >>> with autocast("float16"):
    ...     out = amp_matmul(a, a.T)                  # rounded operands...
    >>> out.dtype                                     # ...fp32 accumulator
    dtype('float32')
    """
    dt = get_compute_dtype()
    if dt is None or dt == "float32":
        if a.dtype == np.float16 and b.dtype == np.float16:
            # fp16-stored operands (cached patches) outside fp16 autocast:
            # still accumulate in fp32, never in numpy's half loops
            return a.astype(np.float32) @ b.astype(np.float32)
        return a @ b
    # overflow steps under loss scaling legitimately push inf/nan through
    # these products; detection happens downstream (GradScaler), not here
    with np.errstate(invalid="ignore", over="ignore"):
        if dt == "float16":
            return _round_fp16(a).astype(np.float32) @ _round_fp16(b).astype(np.float32)
        if dt == "bfloat16":
            a32 = a.astype(np.float32) if a.dtype != np.float32 else a
            b32 = b.astype(np.float32) if b.dtype != np.float32 else b
            return quantize_bf16(a32) @ quantize_bf16(b32)
        return a.astype(np.float64, copy=False) @ b.astype(np.float64, copy=False)
