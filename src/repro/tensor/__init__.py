"""Low-level numerical kernels for the numpy neural-network framework.

All kernels operate on NCHW arrays in the storage dtype (``float32`` by
default — the paper trains in FP32; ``REPRO_DEFAULT_DTYPE=float64``
switches the whole stack to double) and are fully vectorized: convolution
is im2col + GEMM, which both gives BLAS-level throughput and produces
exactly the patch matrices the K-FAC ``A`` factors are built from (Grosse
& Martens' KFC formulation).  :mod:`repro.tensor.amp` layers the
fp16/bf16 *compute* precision (fp32-accumulating cast helpers) on top.
"""

from repro.tensor.amp import (
    amp_matmul,
    autocast,
    cast_compute_storage,
    get_compute_dtype,
    quantize_bf16,
    set_compute_dtype,
)
from repro.tensor.dtypes import DEFAULT_DTYPE, resolve_default_dtype
from repro.tensor.gram import gram, has_syrk, mirror_upper
from repro.tensor.im2col import col2im, conv_out_size, im2col
from repro.tensor.initializers import (
    kaiming_normal,
    kaiming_uniform,
    xavier_uniform,
    zeros_init,
)
from repro.tensor.workspace import Workspace, default_workspace

__all__ = [
    "DEFAULT_DTYPE",
    "resolve_default_dtype",
    "amp_matmul",
    "autocast",
    "cast_compute_storage",
    "get_compute_dtype",
    "quantize_bf16",
    "set_compute_dtype",
    "im2col",
    "col2im",
    "conv_out_size",
    "gram",
    "has_syrk",
    "mirror_upper",
    "Workspace",
    "default_workspace",
    "kaiming_normal",
    "kaiming_uniform",
    "xavier_uniform",
    "zeros_init",
]
