"""Low-level numerical kernels for the numpy neural-network framework.

All kernels operate on NCHW ``float32`` arrays (the paper trains in FP32)
and are fully vectorized: convolution is im2col + GEMM, which both gives
BLAS-level throughput and produces exactly the patch matrices the K-FAC
``A`` factors are built from (Grosse & Martens' KFC formulation).
"""

from repro.tensor.gram import gram, has_syrk, mirror_upper
from repro.tensor.im2col import col2im, conv_out_size, im2col
from repro.tensor.initializers import (
    kaiming_normal,
    kaiming_uniform,
    xavier_uniform,
    zeros_init,
)
from repro.tensor.workspace import Workspace, default_workspace

DEFAULT_DTYPE = "float32"

__all__ = [
    "DEFAULT_DTYPE",
    "im2col",
    "col2im",
    "conv_out_size",
    "gram",
    "has_syrk",
    "mirror_upper",
    "Workspace",
    "default_workspace",
    "kaiming_normal",
    "kaiming_uniform",
    "xavier_uniform",
    "zeros_init",
]
