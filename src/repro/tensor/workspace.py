"""Reusable scratch-buffer arena for hot-path temporaries.

Steady-state K-FAC training performs the same tensor ops with the same
shapes every iteration, yet the original implementation re-allocated its
largest temporaries each time: the ``im2col`` patch matrix of every
``Conv2d``, the bias-augmented activation matrix, and the EMA-update
scratch.  A :class:`Workspace` pools those buffers: :meth:`request` hands
out a buffer (recycled when one of matching size exists, freshly allocated
otherwise) and :meth:`release` returns it to the pool, so after a warm-up
iteration the factor stage allocates nothing.

Buffers are keyed by ``(dtype, element count)`` — exact-size matching,
which is the right policy for a fixed-shape training loop — and handed out
*uninitialized* (callers must overwrite, exactly like ``np.empty``).
``list.append``/``list.pop`` are atomic under the GIL, so a shared arena is
safe for the threaded SPMD driver: a popped buffer is exclusively owned by
the thread that popped it.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

import numpy as np

__all__ = ["Workspace", "default_workspace"]


class Workspace:
    """Size-keyed pool of reusable scratch arrays.

    Example
    -------
    >>> from repro.tensor.workspace import Workspace
    >>> ws = Workspace()
    >>> a = ws.request((4, 4), "float32")     # warm-up: allocates
    >>> ws.release(a)
    >>> b = ws.request((2, 8), "float32")     # same element count: recycled
    >>> ws.hits, ws.misses
    (1, 1)
    """

    def __init__(self) -> None:
        self._pool: dict[tuple[str, int], list[np.ndarray]] = {}
        #: requests served from the pool (steady state: every request hits)
        self.hits = 0
        #: requests that had to allocate (warm-up / shape changes)
        self.misses = 0

    def request(self, shape: tuple[int, ...], dtype: np.dtype | str) -> np.ndarray:
        """A buffer of ``shape``/``dtype`` with *uninitialized* contents.

        Recycles a pooled buffer of the exact element count when one is
        available; otherwise allocates.  The caller owns the buffer until
        it is :meth:`release`-d back.
        """
        dt = np.dtype(dtype)
        size = 1
        for s in shape:
            size *= int(s)
        stack = self._pool.get((dt.str, size))
        if stack:
            # pop() itself is atomic under the GIL, but check-then-pop is
            # not: another thread may drain the stack in between, so treat
            # an empty pop as a miss rather than crashing
            try:
                buf = stack.pop()
            except IndexError:
                pass
            else:
                self.hits += 1
                return buf.reshape(shape)
        self.misses += 1
        return np.empty(shape, dtype=dt)

    def release(self, arr: np.ndarray | None) -> None:
        """Return a buffer to the pool (no-op for None / non-contiguous views).

        The caller must not touch ``arr`` afterwards — the next
        :meth:`request` of the same size may hand it to someone else.
        """
        if arr is None or not arr.flags.c_contiguous:
            return
        key = (arr.dtype.str, int(arr.size))
        self._pool.setdefault(key, []).append(arr.reshape(-1))

    @contextmanager
    def borrow(self, shape: tuple[int, ...], dtype: np.dtype | str) -> Iterator[np.ndarray]:
        """Scoped :meth:`request`/:meth:`release` pair."""
        buf = self.request(shape, dtype)
        try:
            yield buf
        finally:
            self.release(buf)

    @property
    def pooled_buffers(self) -> int:
        """Number of buffers currently parked in the pool."""
        return sum(len(v) for v in self._pool.values())

    @property
    def pooled_bytes(self) -> int:
        """Bytes currently parked in the pool."""
        return sum(b.nbytes for v in self._pool.values() for b in v)

    def clear(self) -> None:
        """Drop every pooled buffer (frees the memory) and reset counters."""
        self._pool.clear()
        self.hits = 0
        self.misses = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Workspace(buffers={self.pooled_buffers}, bytes={self.pooled_bytes}, "
            f"hits={self.hits}, misses={self.misses})"
        )


_DEFAULT = Workspace()


def default_workspace() -> Workspace:
    """The process-wide shared arena (used by layers unless given their own).

    Example
    -------
    >>> from repro.tensor.workspace import Workspace, default_workspace
    >>> default_workspace() is default_workspace()   # one shared arena
    True
    >>> isinstance(default_workspace(), Workspace)
    True
    """
    return _DEFAULT
