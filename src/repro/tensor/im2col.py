"""im2col / col2im transforms for NCHW tensors.

``im2col`` lowers convolution to matrix multiplication and, crucially for
this reproduction, its output *is* the expanded-activation matrix whose
second moment is the K-FAC ``A`` factor for Conv2d layers: each row is one
receptive-field patch of shape ``C_in * kh * kw`` at one spatial location of
one example.

The forward transform uses ``sliding_window_view`` (zero-copy until the
final reshape); the inverse uses a kernel-position loop of strided
slice-adds, which is the standard vectorized scatter for overlap-add.
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

__all__ = ["conv_out_size", "im2col", "col2im"]


def conv_out_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Output spatial size of a convolution along one dimension.

    Example
    -------
    >>> from repro.tensor.im2col import conv_out_size
    >>> conv_out_size(224, 7, 2, 3)     # ResNet stem conv
    112
    >>> conv_out_size(8, 3, 1, 1)       # 'same' 3x3
    8
    """
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"non-positive conv output size: size={size} kernel={kernel} "
            f"stride={stride} padding={padding}"
        )
    return out


def im2col(
    x: np.ndarray,
    kernel_size: tuple[int, int],
    stride: tuple[int, int],
    padding: tuple[int, int],
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Extract convolution patches.

    Parameters
    ----------
    x:
        Input of shape ``(N, C, H, W)``.
    kernel_size, stride, padding:
        ``(height, width)`` pairs.
    out:
        Optional preallocated ``(N*OH*OW, C*kh*kw)`` C-contiguous output
        (e.g. a recycled :class:`repro.tensor.workspace.Workspace` buffer);
        contents are overwritten.

    Returns
    -------
    numpy.ndarray
        Patch matrix of shape ``(N * OH * OW, C * kh * kw)``.  The column
        layout is ``(C, kh, kw)`` flattened C-contiguously, matching
        ``weight.reshape(C_out, -1)``.

    Example
    -------
    >>> import numpy as np
    >>> from repro.tensor.im2col import im2col
    >>> x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
    >>> im2col(x, (3, 3), (1, 1), (0, 0)).shape   # 2x2 positions, 9-el patches
    (4, 9)
    """
    if x.ndim != 4:
        raise ValueError(f"im2col expects NCHW input, got shape {x.shape}")
    n, c, h, w = x.shape
    kh, kw = kernel_size
    sh, sw = stride
    ph, pw = padding
    oh = conv_out_size(h, kh, sh, ph)
    ow = conv_out_size(w, kw, sw, pw)

    if ph or pw:
        x = np.pad(x, ((0, 0), (0, 0), (ph, ph), (pw, pw)))
    # (N, C, H', W') -> windows (N, C, OH_full, OW_full, kh, kw)
    windows = sliding_window_view(x, (kh, kw), axis=(2, 3))
    windows = windows[:, :, ::sh, ::sw]
    assert windows.shape[2] == oh and windows.shape[3] == ow
    # -> (N, OH, OW, C, kh, kw) -> (N*OH*OW, C*kh*kw)
    if out is not None:
        expected = (n * oh * ow, c * kh * kw)
        if out.shape != expected or out.dtype != x.dtype or not out.flags.c_contiguous:
            raise ValueError(
                f"im2col out buffer must be C-contiguous {expected} {x.dtype}, "
                f"got {out.shape} {out.dtype}"
            )
        np.copyto(
            out.reshape(n, oh, ow, c, kh, kw), windows.transpose(0, 2, 3, 1, 4, 5)
        )
        return out
    cols = windows.transpose(0, 2, 3, 1, 4, 5).reshape(n * oh * ow, c * kh * kw)
    return np.ascontiguousarray(cols)


def col2im(
    cols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kernel_size: tuple[int, int],
    stride: tuple[int, int],
    padding: tuple[int, int],
    scratch: np.ndarray | None = None,
) -> np.ndarray:
    """Adjoint of :func:`im2col` (overlap-add scatter back to NCHW).

    Parameters
    ----------
    cols:
        Patch matrix of shape ``(N * OH * OW, C * kh * kw)``.
    x_shape:
        Shape of the original (unpadded) input.
    scratch:
        Optional preallocated ``(N, C, H+2ph, W+2pw)`` accumulation buffer
        (zero-filled here; contents overwritten).  When padding is zero the
        returned array *is* this buffer, so callers recycling it through a
        workspace must only release it once the result is dead.

    Returns
    -------
    numpy.ndarray
        Array of shape ``x_shape`` where every patch value has been added
        back into its source position.

    Example
    -------
    >>> import numpy as np
    >>> from repro.tensor.im2col import col2im, im2col
    >>> x = np.ones((1, 1, 3, 3), dtype=np.float32)
    >>> cols = im2col(x, (2, 2), (1, 1), (0, 0))
    >>> back = col2im(cols, x.shape, (2, 2), (1, 1), (0, 0))
    >>> float(back[0, 0, 1, 1])          # centre pixel overlaps 4 patches
    4.0
    """
    n, c, h, w = x_shape
    kh, kw = kernel_size
    sh, sw = stride
    ph, pw = padding
    oh = conv_out_size(h, kh, sh, ph)
    ow = conv_out_size(w, kw, sw, pw)
    if cols.shape != (n * oh * ow, c * kh * kw):
        raise ValueError(
            f"col2im shape mismatch: cols {cols.shape}, "
            f"expected {(n * oh * ow, c * kh * kw)}"
        )

    patches = cols.reshape(n, oh, ow, c, kh, kw).transpose(0, 3, 4, 5, 1, 2)
    # patches: (N, C, kh, kw, OH, OW)
    padded_shape = (n, c, h + 2 * ph, w + 2 * pw)
    if scratch is not None:
        if scratch.shape != padded_shape or scratch.dtype != cols.dtype:
            raise ValueError(
                f"col2im scratch must be {padded_shape} {cols.dtype}, "
                f"got {scratch.shape} {scratch.dtype}"
            )
        out = scratch
        out[...] = 0.0
    else:
        out = np.zeros(padded_shape, dtype=cols.dtype)
    for i in range(kh):
        h_end = i + sh * oh
        for j in range(kw):
            w_end = j + sw * ow
            out[:, :, i:h_end:sh, j:w_end:sw] += patches[:, :, i, j]
    if ph or pw:
        out = out[:, :, ph : ph + h, pw : pw + w]
    return np.ascontiguousarray(out)
