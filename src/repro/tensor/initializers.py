"""Weight initializers (PyTorch-compatible semantics).

ResNets use Kaiming-normal with ``fan_out`` for conv weights and
uniform-fan-in for linear layers; matching these matters for reproducing
the paper's early-epoch optimization behaviour.
"""

from __future__ import annotations

import math

import numpy as np

from repro.tensor.dtypes import DEFAULT_DTYPE

__all__ = ["kaiming_normal", "kaiming_uniform", "xavier_uniform", "zeros_init"]


def _fans(shape: tuple[int, ...]) -> tuple[int, int]:
    """``(fan_in, fan_out)`` for linear ``(out, in)`` or conv ``(out, in, kh, kw)``."""
    if len(shape) == 2:
        out_f, in_f = shape
        return in_f, out_f
    if len(shape) == 4:
        out_c, in_c, kh, kw = shape
        receptive = kh * kw
        return in_c * receptive, out_c * receptive
    raise ValueError(f"unsupported weight shape for fan computation: {shape}")


def kaiming_normal(
    shape: tuple[int, ...],
    rng: np.random.Generator,
    mode: str = "fan_out",
    nonlinearity_gain: float = math.sqrt(2.0),
    dtype: str = DEFAULT_DTYPE,
) -> np.ndarray:
    """He-normal initialization: ``N(0, gain^2 / fan)``.

    Example
    -------
    >>> import numpy as np
    >>> from repro.tensor.initializers import kaiming_normal
    >>> w = kaiming_normal((64, 3, 7, 7), np.random.default_rng(0), dtype="float32")
    >>> w.shape, w.dtype.name
    ((64, 3, 7, 7), 'float32')
    """
    fan_in, fan_out = _fans(shape)
    fan = fan_out if mode == "fan_out" else fan_in
    std = nonlinearity_gain / math.sqrt(fan)
    return rng.normal(0.0, std, size=shape).astype(dtype)


def kaiming_uniform(
    shape: tuple[int, ...],
    rng: np.random.Generator,
    a: float = math.sqrt(5.0),
    dtype: str = DEFAULT_DTYPE,
) -> np.ndarray:
    """He-uniform with leaky-relu slope ``a`` (PyTorch's Linear default).

    Example
    -------
    >>> import numpy as np
    >>> from repro.tensor.initializers import kaiming_uniform
    >>> w = kaiming_uniform((16, 8), np.random.default_rng(0))
    >>> bool(np.all(np.abs(w) < 1.0))
    True
    """
    fan_in, _ = _fans(shape)
    gain = math.sqrt(2.0 / (1.0 + a * a))
    bound = gain * math.sqrt(3.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape).astype(dtype)


def xavier_uniform(
    shape: tuple[int, ...],
    rng: np.random.Generator,
    gain: float = 1.0,
    dtype: str = DEFAULT_DTYPE,
) -> np.ndarray:
    """Glorot-uniform initialization.

    Example
    -------
    >>> import numpy as np
    >>> from repro.tensor.initializers import xavier_uniform
    >>> xavier_uniform((10, 10), np.random.default_rng(0)).shape
    (10, 10)
    """
    fan_in, fan_out = _fans(shape)
    bound = gain * math.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape).astype(dtype)


def zeros_init(shape: tuple[int, ...], dtype: str = DEFAULT_DTYPE) -> np.ndarray:
    """All-zeros array (bias default).

    Example
    -------
    >>> from repro.tensor.initializers import zeros_init
    >>> float(zeros_init((3,)).sum())
    0.0
    """
    return np.zeros(shape, dtype=dtype)
