"""Dataset sharding across data-parallel workers.

Equivalent to PyTorch's ``DistributedSampler``: every epoch, all ranks
derive the *same* global permutation from the shared seed + epoch number,
then each rank takes a disjoint contiguous slice.  The dataset is padded
(by wrapping) to a multiple of the world size so every rank sees the same
number of samples — required for lockstep collectives.
"""

from __future__ import annotations

import numpy as np

__all__ = ["shard_indices", "ShardedIndexSampler"]


def shard_indices(
    n: int, world_size: int, rank: int, seed: int, epoch: int, shuffle: bool = True
) -> np.ndarray:
    """Indices of rank ``rank``'s shard for the given epoch.

    Deterministic in ``(seed, epoch)`` and identical across ranks modulo
    the slice taken, exactly like ``DistributedSampler.set_epoch``.

    Example
    -------
    >>> from repro.parallel.sharding import shard_indices
    >>> a = shard_indices(8, world_size=2, rank=0, seed=0, epoch=0)
    >>> b = shard_indices(8, world_size=2, rank=1, seed=0, epoch=0)
    >>> sorted(int(i) for i in [*a, *b])       # the shards tile the dataset
    [0, 1, 2, 3, 4, 5, 6, 7]
    """
    if world_size < 1 or not 0 <= rank < world_size:
        raise ValueError(f"invalid rank/world_size {rank}/{world_size}")
    if n <= 0:
        raise ValueError(f"dataset must be non-empty, got n={n}")
    if shuffle:
        rng = np.random.default_rng(np.random.SeedSequence((seed, epoch)))
        perm = rng.permutation(n)
    else:
        perm = np.arange(n)
    per_rank = (n + world_size - 1) // world_size
    # wrap-pad to a multiple of world_size, then take a *strided* slice —
    # identical to torch's DistributedSampler.  Striding makes the union of
    # all ranks' j-th mini-batches equal the single-process j-th batch of
    # size world_size * B, which is what exact data-parallel equivalence
    # requires.
    padded = np.resize(perm, per_rank * world_size)
    return padded[rank::world_size]


class ShardedIndexSampler:
    """Epoch-stateful wrapper around :func:`shard_indices`.

    Example
    -------
    >>> from repro.parallel.sharding import ShardedIndexSampler
    >>> sampler = ShardedIndexSampler(10, world_size=2, rank=0, seed=3)
    >>> sampler.set_epoch(1)
    >>> len(sampler.indices())                 # ceil(10 / 2)
    5
    """

    def __init__(
        self, n: int, world_size: int, rank: int, seed: int = 0, shuffle: bool = True
    ) -> None:
        self.n = n
        self.world_size = world_size
        self.rank = rank
        self.seed = seed
        self.shuffle = shuffle
        self.epoch = 0

    def set_epoch(self, epoch: int) -> None:
        self.epoch = epoch

    def indices(self) -> np.ndarray:
        return shard_indices(
            self.n, self.world_size, self.rank, self.seed, self.epoch, self.shuffle
        )

    def __len__(self) -> int:
        return (self.n + self.world_size - 1) // self.world_size
