"""Synchronous data-parallel training (paper Fig. 1 and §II-B).

The five-step iteration — I/O, forward, gradient evaluation, gradient
exchange, variable update — executed over simulated workers with per-phase
wall-clock and simulated-communication accounting.
"""

from repro.parallel.sharding import ShardedIndexSampler, shard_indices
from repro.parallel.trainer import (
    DataParallelTrainer,
    EpochStats,
    TrainerConfig,
    TrainingHistory,
)

__all__ = [
    "shard_indices",
    "ShardedIndexSampler",
    "DataParallelTrainer",
    "TrainerConfig",
    "TrainingHistory",
    "EpochStats",
]
