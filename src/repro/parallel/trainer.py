"""The synchronous data-parallel trainer (paper Fig. 1).

Executes, per iteration:

1. **I/O** — each worker reads its shard of the global mini-batch;
2. **Forward** — loss on the local mini-batch;
3. **Gradient evaluation** — explicit backward pass;
4. **Gradient exchange** — fused ring allreduce (Horovod fusion buffer);
5. **Variable update** — optional distributed K-FAC preconditioning
   (Listing 1 ordering: gradients are averaged *before* ``KFAC.step``),
   then the wrapped first-order optimizer.

Wall-clock per phase is measured (``Stopwatch``), simulated communication
time is accounted by the :class:`repro.comm.World`, and validation runs on
the rank-0 replica at configurable epoch intervals — mirroring how the
paper's experiments report Top-1 validation accuracy per epoch.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from typing import Callable, Iterator

import numpy as np

from repro.comm.backend import World
from repro.comm.engine import CommEngine, task_overlap_profile
from repro.comm.faults import FaultPlan, RetryPolicy
from repro.core.distributed import PhaseController
from repro.core.preconditioner import KFAC, KFACHyperParams
from repro.data.loader import batch_iterator
from repro.nn.loss import CrossEntropyLoss
from repro.nn.metrics import topk_accuracy
from repro.nn.module import Module
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.optim.base import Optimizer
from repro.optim.lr_scheduler import ConstantSchedule, LRSchedule
from repro.optim.sgd import SGD
from repro.parallel.sharding import ShardedIndexSampler
from repro.precision import GradScaler, PrecisionPolicy, resolve_policy
from repro.utils.timer import Stopwatch

__all__ = ["TrainerConfig", "EpochStats", "TrainingHistory", "DataParallelTrainer"]


@dataclass
class TrainerConfig:
    """Configuration of one data-parallel training run.

    ``batch_size`` is per-worker (the paper's ``N x 32`` / ``N x 128``
    recipes mean per-worker sizes 32 / 128).

    Example
    -------
    >>> from repro.core.preconditioner import KFACHyperParams
    >>> from repro.parallel.trainer import TrainerConfig
    >>> cfg = TrainerConfig(world_size=4, batch_size=32, epochs=2,
    ...                     kfac=KFACHyperParams(kfac_update_freq=20))
    >>> cfg.world_size * cfg.batch_size        # global batch
    128
    """

    world_size: int = 1
    batch_size: int = 32
    epochs: int = 10
    momentum: float = 0.9
    weight_decay: float = 0.0
    label_smoothing: float = 0.0
    seed: int = 0
    eval_every: int = 1
    fusion_capacity_bytes: int = 16 << 20
    kfac: KFACHyperParams | None = None
    lr_schedule: LRSchedule = field(default_factory=lambda: ConstantSchedule(0.1))
    kfac_scheduler_factory: Callable[[KFAC], object] | None = None
    #: precision policy name ("fp32"/"fp16"/"bf16"/"fp64") or a
    #: :class:`repro.precision.PrecisionPolicy`; governs the compute dtype
    #: of forward/backward GEMMs, the wire codec of gradient *and* factor
    #: collectives, and whether dynamic loss scaling is armed
    precision: str | PrecisionPolicy = "fp32"
    #: optional pre-configured scaler (e.g. custom growth interval); by
    #: default one is built armed iff the policy calls for loss scaling
    grad_scaler: GradScaler | None = None
    #: fault/straggler injection plan installed on the simulated world
    #: (see :mod:`repro.elastic`); None trains on a healthy fleet
    fault_plan: FaultPlan | None = None
    #: bounded retry-with-backoff for failed K-FAC collectives, with
    #: stale-eigenbasis fallback past the budget; None fails fast
    retry_policy: RetryPolicy | None = field(default_factory=RetryPolicy)
    #: span recorder from :mod:`repro.obs` — installed on the world, every
    #: preconditioner, and the trainer's phase loop; None disables tracing
    #: at zero cost (the shared null tracer allocates nothing)
    tracer: Tracer | None = None

    def __post_init__(self) -> None:
        if self.world_size < 1:
            raise ValueError(f"world_size must be >= 1, got {self.world_size}")
        if self.batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.epochs < 1:
            raise ValueError(f"epochs must be >= 1, got {self.epochs}")
        resolve_policy(self.precision)  # fail fast on unknown names


@dataclass
class EpochStats:
    """Per-epoch record.

    Example
    -------
    >>> from repro.parallel.trainer import EpochStats
    >>> EpochStats(epoch=0, train_loss=2.3, val_accuracy=0.4,
    ...            lr=0.1, iterations=100).val_accuracy
    0.4
    """

    epoch: int
    train_loss: float
    val_accuracy: float | None
    lr: float
    iterations: int


@dataclass
class TrainingHistory:
    """Full run record: per-epoch stats plus phase timings.

    ``comm_seconds`` holds *exposed* (critical-path) simulated seconds per
    phase; ``comm_hidden_seconds`` the portion masked behind local compute
    by the pipelined engine (zero for fully synchronous runs).
    ``comm_bytes`` counts the true fused payload per phase — what actually
    crossed the (simulated) wire after fusion, not per-tensor bookkeeping.

    Example
    -------
    >>> from repro.parallel.trainer import EpochStats, TrainingHistory
    >>> history = TrainingHistory()
    >>> history.epochs.append(EpochStats(0, 2.3, 0.25, 0.1, 10))
    >>> history.epochs.append(EpochStats(1, 1.9, 0.50, 0.1, 10))
    >>> history.best_val_accuracy, history.epochs_to_accuracy(0.5)
    (0.5, 1)
    """

    epochs: list[EpochStats] = field(default_factory=list)
    phase_seconds: dict[str, float] = field(default_factory=dict)
    comm_seconds: dict[str, float] = field(default_factory=dict)
    comm_hidden_seconds: dict[str, float] = field(default_factory=dict)
    #: exposed/hidden seconds keyed by scheduler task kind (``FactorComm``,
    #: ``EigShare``, ``GradShare``, ``GradAllReduce``) — the per-task view
    #: of the same overlap ledger (:func:`repro.comm.engine.task_overlap_profile`)
    comm_task_profile: dict[str, dict[str, float]] = field(default_factory=dict)
    comm_bytes: dict[str, float] = field(default_factory=dict)
    total_iterations: int = 0
    grad_fusion_flushes: int = 0
    #: precision policy the run used, plus its loss-scaling record: updates
    #: skipped on overflow (scale backed off) and the final scale value
    precision: str = "fp32"
    amp_skipped_steps: int = 0
    final_loss_scale: float = 1.0
    #: K-FAC placement record: the strategy the run used and — for the
    #: KAISA-style HYBRID strategy — its gradient-worker fraction and the
    #: resulting per-layer group size (None/0 without K-FAC)
    kfac_strategy: str | None = None
    grad_worker_frac: float | None = None
    grad_worker_count: int = 0
    #: robustness ledger: collective retries and degraded (fallback)
    #: exchanges in the drivers, stale-eigenbasis fallbacks taken by the
    #: preconditioner, the surviving per-factor staleness counters, and
    #: what the fault plan actually injected
    comm_retries: int = 0
    comm_fallbacks: int = 0
    kfac_stale_fallbacks: int = 0
    kfac_staleness: dict[str, int] = field(default_factory=dict)
    faults_injected: int = 0
    fault_delay_seconds: float = 0.0
    #: the unified :class:`repro.obs.MetricsRegistry` snapshot the scalar
    #: ledger fields above are rebuilt from — the one collection point for
    #: counters that used to live only on World/GradScaler/FaultPlan
    metrics: dict = field(default_factory=dict)

    @property
    def final_val_accuracy(self) -> float:
        accs = [e.val_accuracy for e in self.epochs if e.val_accuracy is not None]
        if not accs:
            raise ValueError("no validation accuracy recorded")
        return accs[-1]

    @property
    def best_val_accuracy(self) -> float:
        accs = [e.val_accuracy for e in self.epochs if e.val_accuracy is not None]
        if not accs:
            raise ValueError("no validation accuracy recorded")
        return max(accs)

    def epochs_to_accuracy(self, target: float) -> int | None:
        """First epoch whose validation accuracy reaches ``target`` (or None)."""
        for e in self.epochs:
            if e.val_accuracy is not None and e.val_accuracy >= target:
                return e.epoch
        return None

    def accuracy_curve(self) -> tuple[list[int], list[float]]:
        xs = [e.epoch for e in self.epochs if e.val_accuracy is not None]
        ys = [e.val_accuracy for e in self.epochs if e.val_accuracy is not None]
        return xs, ys


class DataParallelTrainer:
    """Synchronous data-parallel SGD (optionally K-FAC-preconditioned).

    Example
    -------
    >>> import numpy as np
    >>> from repro.nn import Linear, Sequential
    >>> from repro.parallel.trainer import DataParallelTrainer, TrainerConfig
    >>> rng = np.random.default_rng(0)
    >>> x = rng.normal(size=(32, 4)).astype(np.float32)
    >>> y = (x.sum(axis=1) > 0).astype(np.int64)
    >>> trainer = DataParallelTrainer(
    ...     model_factory=lambda r: Sequential(Linear(4, 2, rng=r)),
    ...     train_x=x, train_y=y, val_x=x[:8], val_y=y[:8],
    ...     config=TrainerConfig(world_size=2, batch_size=8, epochs=1),
    ... )
    >>> history = trainer.train()
    >>> history.total_iterations
    2
    >>> "grad_allreduce" in history.comm_bytes
    True
    """

    def __init__(
        self,
        model_factory: Callable[[np.random.Generator], Module],
        train_x: np.ndarray,
        train_y: np.ndarray,
        val_x: np.ndarray,
        val_y: np.ndarray,
        config: TrainerConfig,
        world: World | None = None,
    ) -> None:
        self.config = config
        self.world = world if world is not None else World(config.world_size)
        if self.world.size != config.world_size:
            raise ValueError(
                f"world size {self.world.size} != config world_size {config.world_size}"
            )
        if config.fault_plan is not None:
            self.world.fault_plan = config.fault_plan
        # one tracer shared by the world's collectives, the schedulers, and
        # the trainer's phase loop; the null tracer records nothing
        self.tracer = config.tracer if config.tracer is not None else NULL_TRACER
        self.world.tracer = self.tracer
        self.train_x, self.train_y = train_x, train_y
        self.val_x, self.val_y = val_x, val_y

        # identical initial weights on every replica: same init stream,
        # semantically equivalent to hvd.broadcast_parameters from rank 0
        self.replicas: list[Module] = [
            model_factory(np.random.default_rng(config.seed)) for _ in range(config.world_size)
        ]
        self.optimizers: list[Optimizer] = [
            SGD(
                m.parameters(),
                lr=config.lr_schedule(0.0),
                momentum=config.momentum,
                weight_decay=config.weight_decay,
            )
            for m in self.replicas
        ]
        self.losses = [
            CrossEntropyLoss(config.label_smoothing) for _ in range(config.world_size)
        ]
        self.policy = resolve_policy(config.precision)
        # one scaler shared by every replica: the overflow verdict is taken
        # on allreduced (identical) gradients, so all ranks skip in lockstep
        self.grad_scaler = (
            config.grad_scaler
            if config.grad_scaler is not None
            else GradScaler(enabled=self.policy.loss_scaling)
        )
        self.kfacs: list[KFAC] | None = None
        self.kfac_controller: PhaseController | None = None
        self.kfac_schedulers: list[object] | None = None
        if config.kfac is not None:
            kfac_hp = config.kfac
            if self.policy.comm_dtype is not None and kfac_hp.comm_dtype is None:
                # the policy's wire precision extends to factor comm unless
                # the user pinned comm_dtype explicitly
                kfac_hp = replace(kfac_hp, comm_dtype=self.policy.comm_dtype)
            self.kfacs = [
                KFAC(
                    m,
                    rank=r,
                    world_size=config.world_size,
                    hyper=kfac_hp,
                    grad_scaler=self.grad_scaler,
                )
                for r, m in enumerate(self.replicas)
            ]
            for k in self.kfacs:
                k.tracer = self.tracer
            self.kfac_controller = PhaseController(
                self.kfacs, self.world, retry_policy=config.retry_policy
            )
            if config.kfac_scheduler_factory is not None:
                self.kfac_schedulers = [
                    config.kfac_scheduler_factory(k) for k in self.kfacs
                ]
        self.samplers = [
            ShardedIndexSampler(len(train_x), config.world_size, r, seed=config.seed)
            for r in range(config.world_size)
        ]
        self._param_names = [n for n, _ in self.replicas[0].named_parameters()]
        # one persistent engine per trainer: the gradient fusion buffer
        # lives for the whole run (capacity-respecting flushes across
        # iterations) instead of being rebuilt every iteration
        self.comm_engine = CommEngine(
            self.world, bucket_bytes=config.fusion_capacity_bytes
        )
        self._grad_fusion = self.comm_engine.fusion(
            op="average", phase="grad_allreduce", codec=self.policy.comm_dtype
        )
        self.stopwatches = {
            name: Stopwatch() for name in ("io", "forward", "backward", "exchange", "update")
        }
        # resume cursor (advanced by load_checkpoint and by train()):
        # train() continues from this epoch/step instead of a cold start
        self._start_epoch = 0
        self._epochs_done = 0
        self._global_step = 0

    # ------------------------------------------------------------------
    def _global_iterations_per_epoch(self) -> int:
        shard = (len(self.train_x) + self.config.world_size - 1) // self.config.world_size
        return (shard + self.config.batch_size - 1) // self.config.batch_size

    @contextmanager
    def _phase(self, name: str, **attrs: object) -> Iterator[None]:
        """Time one Fig. 1 phase, recording a trace span when tracing is on.

        The span carries simulated duration 0.0 — wall time lives in the
        span's wall fields — so phase tracing never perturbs the per-rank
        simulated clocks the communication spans advance.
        """
        sw = self.stopwatches[name]
        before = sw.total
        with sw:
            yield
        if self.tracer.enabled:
            self.tracer.span(
                f"phase:{name}",
                "phase",
                0,
                duration=0.0,
                attrs={"step": self.world.current_step, **attrs},
                wall_seconds=sw.total - before,
            )

    def _exchange_gradients(self) -> None:
        """Fused gradient allreduce (Fig. 1 step X / Horovod fusion buffer).

        Uses the trainer's persistent fusion buffer: capacity-triggered
        flushes fire mid-add exactly as in a real Horovod cycle, and the
        trailing flush drains the remainder before the optimizer step.
        """
        fusion = self._grad_fusion
        per_rank_params = [dict(m.named_parameters()) for m in self.replicas]
        for name in self._param_names:
            fusion.add(name, [per_rank_params[r][name].grad for r in range(self.world.size)])
        fusion.flush()
        for name in self._param_names:
            reduced = fusion.pop(name)
            for r in range(self.world.size):
                per_rank_params[r][name].grad[...] = reduced[r]

    def train_iteration(self, batches: list[tuple[np.ndarray, np.ndarray]], lr: float) -> float:
        """Run one synchronous iteration; returns the mean local loss.

        Under a half-precision policy the forward/backward pass runs in the
        policy's compute dtype (autocast), the backward seed is multiplied
        by the dynamic loss scale, and — after the (possibly compressed)
        gradient exchange — gradients are unscaled and checked: any inf/NaN
        skips *both* the K-FAC preconditioning and the optimizer step and
        backs the scale off (skip-step-and-rescale).
        """
        cfg = self.config
        scaler = self.grad_scaler
        local_losses = []
        # scaled backward passes overflow by design while the scale probes
        # its ceiling; inf/nan is detected after the exchange, not warned
        overflow_ok = (
            np.errstate(invalid="ignore", over="ignore")
            if scaler.enabled
            else np.errstate()
        )
        with self.policy.autocast(), overflow_ok:
            for r in range(cfg.world_size):
                x, y = batches[r]
                with self._phase("forward", replica=r):
                    self.optimizers[r].zero_grad()
                    logits = self.replicas[r](x)
                    loss_val = self.losses[r](logits, y)
                with self._phase("backward", replica=r):
                    seed = scaler.scale_grad(self.losses[r].backward())
                    self.replicas[r].backward(seed)
                local_losses.append(loss_val)
        with self._phase("exchange"):
            self._exchange_gradients()
        with self._phase("update"):
            if scaler.enabled:
                found_inf = False
                for r in range(cfg.world_size):
                    found = scaler.unscale_(
                        p.grad for p in self.replicas[r].parameters()
                    )
                    if r == 0:
                        found_inf = found  # grads identical across ranks
                prev_scale = scaler.scale
                scaler.update(found_inf)
                if scaler.scale != prev_scale:
                    # fusion-buffer EF residuals are banked in *scaled*
                    # gradient units; convert them to the new scale
                    self._grad_fusion.rescale_residuals(scaler.scale / prev_scale)
                if found_inf:
                    # overflow: skip preconditioning and update, rescale
                    return float(np.mean(local_losses))
            if self.kfac_controller is not None:
                assert self.kfacs is not None
                for k in self.kfacs:
                    k.lr = lr
                self.kfac_controller.step()
            for opt in self.optimizers:
                opt.lr = lr
                opt.step()
        return float(np.mean(local_losses))

    def evaluate(self, batch_size: int = 256) -> float:
        """Top-1 accuracy of the rank-0 replica on the validation set."""
        model = self.replicas[0]
        model.eval()
        correct = 0.0
        total = 0
        for lo in range(0, len(self.val_x), batch_size):
            x = self.val_x[lo : lo + batch_size]
            y = self.val_y[lo : lo + batch_size]
            logits = model(x)
            correct += topk_accuracy(logits, y, k=1) * len(y)
            total += len(y)
        model.train()
        return correct / total

    def train(self, verbose: bool = False) -> TrainingHistory:
        """Run the configured number of epochs; returns the history."""
        cfg = self.config
        history = TrainingHistory()
        iters_per_epoch = self._global_iterations_per_epoch()
        global_step = self._global_step
        for epoch in range(self._start_epoch, cfg.epochs):
            if self.kfac_schedulers is not None:
                for s in self.kfac_schedulers:
                    s.step(epoch)  # type: ignore[attr-defined]
            epoch_losses = []
            shard_batches: list[list[tuple[np.ndarray, np.ndarray]]] = []
            with self._phase("io", epoch=epoch):
                for r in range(cfg.world_size):
                    self.samplers[r].set_epoch(epoch)
                    idx = self.samplers[r].indices()
                    shard_batches.append(
                        list(
                            batch_iterator(
                                self.train_x, self.train_y, idx, cfg.batch_size
                            )
                        )
                    )
            for it in range(iters_per_epoch):
                frac_epoch = epoch + it / iters_per_epoch
                lr = cfg.lr_schedule(frac_epoch)
                batches = [shard_batches[r][it] for r in range(cfg.world_size)]
                self.world.begin_step(global_step)  # fault plan step cursor
                epoch_losses.append(self.train_iteration(batches, lr))
                global_step += 1
                self._global_step = global_step
            val_acc = None
            if (epoch + 1) % cfg.eval_every == 0 or epoch == cfg.epochs - 1:
                val_acc = self.evaluate()
            stats = EpochStats(
                epoch=epoch,
                train_loss=float(np.mean(epoch_losses)),
                val_accuracy=val_acc,
                lr=lr,
                iterations=iters_per_epoch,
            )
            history.epochs.append(stats)
            self._epochs_done = epoch + 1
            if verbose:
                acc_str = f"{val_acc:.4f}" if val_acc is not None else "-"
                print(
                    f"epoch {epoch:3d}  loss {stats.train_loss:.4f}  "
                    f"val_acc {acc_str}  lr {lr:.4f}"
                )
        history.total_iterations = global_step
        history.phase_seconds = {k: sw.total for k, sw in self.stopwatches.items()}
        history.comm_seconds = self.world.timers.as_dict()
        history.comm_hidden_seconds = {
            p: h for p, h in self.world.overlap.hidden_by_phase.items() if h > 0.0
        }
        history.comm_task_profile = task_overlap_profile(self.world.overlap)
        history.comm_bytes = dict(self.world.stats.bytes_by_phase)
        history.grad_fusion_flushes = self._grad_fusion.flush_count
        history.precision = self.policy.name
        # unified registry pull: the scalar ledger fields below are read
        # back out of the registry so history and metrics cannot diverge
        registry = MetricsRegistry()
        registry.collect_training_run(self)
        history.metrics = registry.snapshot()
        history.amp_skipped_steps = int(
            registry.counter("amp.steps_skipped").total()
        )
        history.final_loss_scale = registry.gauge("amp.loss_scale").value()
        if self.kfacs is not None:
            kfac = self.kfacs[0]
            history.kfac_strategy = kfac.hp.strategy
            history.grad_worker_frac = kfac.hp.grad_worker_frac
            history.grad_worker_count = kfac.grad_worker_count
            # staleness is tracked per replica (group shares are noted by
            # members only): surface the worst counter per factor
            history.kfac_stale_fallbacks = int(
                max(registry.counter("kfac.stale_fallbacks").snapshot().values())
            )
            for k in self.kfacs:
                for key, count in k.staleness.items():
                    if count > history.kfac_staleness.get(key, 0):
                        history.kfac_staleness[key] = count
        if self.kfac_controller is not None:
            history.comm_retries = int(registry.counter("comm.retries").total())
            history.comm_fallbacks = int(
                registry.counter("comm.fallbacks").total()
            )
        if self.world.fault_plan is not None:
            history.faults_injected = int(
                registry.counter("faults.injected").total()
            )
            history.fault_delay_seconds = registry.gauge(
                "faults.delay_seconds"
            ).value()
        return history

    # ------------------------------------------------------------------
    # elastic checkpointing
    # ------------------------------------------------------------------
    def save_checkpoint(self, path: str) -> None:
        """Write a world-size-portable checkpoint of the current state.

        The K-FAC bundle is gathered across all replicas
        (:func:`repro.elastic.gather_state_dict` with ``peers=``), so a
        run trained here at ``P`` ranks can resume in a trainer built for
        a *different* world size or ``grad_worker_frac`` — model params,
        optimizer slots, loss scale, and the step/epoch cursor included.
        """
        from repro.elastic import Checkpoint, gather_state_dict

        kfac_state = None
        if self.kfacs is not None:
            kfac_state = gather_state_dict(self.kfacs[0], peers=self.kfacs)
        ckpt = Checkpoint(path)
        payload = ckpt.capture(
            model=self.replicas[0],
            optimizer=self.optimizers[0],
            kfac_state=kfac_state,
            grad_scaler=self.grad_scaler,
            step=self._global_step,
            epoch=self._epochs_done,
        )
        ckpt.save(payload)

    def load_checkpoint(self, path: str, strict: bool = True) -> int:
        """Resume from a checkpoint written by :meth:`save_checkpoint`.

        Every replica hydrates model + optimizer state; each replica's
        K-FAC redistributes the portable bundle for *its own* rank under
        the *current* placement; the shared ``GradScaler`` is restored
        once.  ``train()`` then continues from the saved epoch.  Returns
        the restored global step.
        """
        from repro.elastic import Checkpoint

        payload = Checkpoint(path).load()
        for r in range(self.config.world_size):
            if payload["model"] is not None:
                self.replicas[r].load_state_dict(payload["model"])
            if payload["optimizer"] is not None:
                self.optimizers[r].load_state_dict(payload["optimizer"])
        if self.kfacs is not None and payload["kfac"] is not None:
            for k in self.kfacs:
                k.load_state_dict(payload["kfac"], strict=strict)
        if payload["grad_scaler"] is not None:
            self.grad_scaler.load_state_dict(payload["grad_scaler"])
        self._start_epoch = int(payload["epoch"])
        self._epochs_done = int(payload["epoch"])
        self._global_step = int(payload["step"])
        return self._global_step
