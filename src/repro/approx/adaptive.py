"""Staleness-tolerant eigenbases and adaptive damping.

Two adaptivity mechanisms that replace fixed schedules with feedback:

- :class:`DriftTrigger` — instead of refreshing eigendecompositions every
  ``kfac_update_freq`` steps, refresh when the factor running averages
  have *drifted* from the snapshot they were last decomposed in, with the
  per-factor staleness budget (``max_eig_staleness``, shared with the
  graceful-degradation machinery in :mod:`repro.elastic`) as a hard upper
  bound: a basis must refresh once its budget is exhausted even when the
  drift metric says "fresh enough".
- :class:`AdaptiveDamping` — a Levenberg–Marquardt-style damping schedule
  driven by the Eq. 18 KL-clip statistic ``nu``: persistent clipping
  (``nu`` far below 1) means the preconditioned step is too aggressive,
  so damping grows; persistently unclipped steps let damping decay back
  toward its floor.  This targets the large-batch pathologies of Ma et
  al. (arXiv:1903.06237) without introducing any cross-rank state: ``nu``
  is computed from already-averaged gradients, so every rank takes the
  same decision in lockstep.

Both classes are deterministic pure-python state machines so the drift /
damping behavior is unit-testable without running a training loop.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = ["DriftTrigger", "AdaptiveDamping"]


@dataclass(frozen=True)
class DriftTrigger:
    """Decide eigenbasis refreshes from factor drift, under a staleness cap.

    ``tol`` is the relative Frobenius drift above which a refresh fires;
    ``budget`` is the maximum number of *skipped* refresh candidates a
    basis may survive (one more candidate forces a refresh).  A missing
    basis (step 0, or the warmup-to-blocked transition) always refreshes.

    Example
    -------
    >>> import numpy as np
    >>> from repro.approx.adaptive import DriftTrigger
    >>> trig = DriftTrigger(tol=0.5, budget=2)
    >>> trig.drift(np.eye(2), np.eye(2))
    0.0
    >>> round(trig.drift(2.0 * np.eye(2), np.eye(2)), 3)   # ||A - S|| / ||S||
    1.0
    >>> trig.should_refresh(max_drift=0.1, worst_staleness=0)
    False
    >>> trig.should_refresh(max_drift=0.9, worst_staleness=0)
    True
    >>> trig.should_refresh(max_drift=0.1, worst_staleness=2)   # budget spent
    True
    >>> trig.should_refresh(max_drift=0.0, worst_staleness=0, has_basis=False)
    True
    """

    tol: float
    budget: int

    def __post_init__(self) -> None:
        if not self.tol > 0:
            raise ValueError(f"drift tol must be > 0, got {self.tol}")
        if self.budget < 0:
            raise ValueError(f"staleness budget must be >= 0, got {self.budget}")

    @staticmethod
    def drift(current: np.ndarray, snapshot: np.ndarray) -> float:
        """Relative Frobenius change ``||current - snapshot|| / ||snapshot||``."""
        ref = float(np.linalg.norm(snapshot))
        if ref == 0.0:
            return math.inf
        delta = np.asarray(current, dtype=np.float64) - np.asarray(
            snapshot, dtype=np.float64
        )
        return float(np.linalg.norm(delta)) / ref

    def should_refresh(
        self, max_drift: float, worst_staleness: int, has_basis: bool = True
    ) -> bool:
        """True when any of: no basis, drift over tol, budget exhausted."""
        if not has_basis:
            return True
        if worst_staleness >= self.budget:
            return True
        return max_drift > self.tol


class AdaptiveDamping:
    """LM-style damping schedule fed by the Eq. 18 KL-clip factor ``nu``.

    An EMA of ``nu`` smooths single-step noise.  When the EMA falls below
    ``nu_low`` the KL constraint is persistently clipping the update —
    the curvature estimate is under-damped — so damping is multiplied by
    ``growth`` (capped at ``damping_max``).  When the EMA exceeds
    ``nu_high`` the constraint is slack and damping decays by ``1 /
    growth`` toward ``damping_min``.  Deterministic given the ``nu``
    stream, hence lockstep across ranks.

    Example
    -------
    >>> from repro.approx.adaptive import AdaptiveDamping
    >>> ad = AdaptiveDamping(0.01, nu_low=0.5, nu_high=0.95, ema=0.0)
    >>> ad.update(0.1)          # heavily clipped: damping grows
    0.015
    >>> ad.update(1.0) < 0.015  # unclipped: damping decays
    True
    >>> ad.damping >= ad.damping_min
    True
    """

    def __init__(
        self,
        damping: float,
        damping_min: float = 1e-6,
        damping_max: float = 10.0,
        growth: float = 1.5,
        nu_low: float = 0.5,
        nu_high: float = 0.95,
        ema: float = 0.75,
    ) -> None:
        if not damping > 0:
            raise ValueError(f"damping must be > 0, got {damping}")
        if not 0 < damping_min <= damping <= damping_max:
            raise ValueError(
                f"need 0 < damping_min <= damping <= damping_max, got "
                f"({damping_min}, {damping}, {damping_max})"
            )
        if not growth > 1:
            raise ValueError(f"growth must be > 1, got {growth}")
        if not 0 <= nu_low < nu_high <= 1:
            raise ValueError(f"need 0 <= nu_low < nu_high <= 1, got ({nu_low}, {nu_high})")
        if not 0 <= ema < 1:
            raise ValueError(f"ema must be in [0, 1), got {ema}")
        self.damping = damping
        self.damping_min = damping_min
        self.damping_max = damping_max
        self.growth = growth
        self.nu_low = nu_low
        self.nu_high = nu_high
        self.ema = ema
        self._nu_ema = 1.0
        self.n_grows = 0
        self.n_shrinks = 0

    def update(self, nu: float) -> float:
        """Fold one step's ``nu`` in; return the damping for the next step."""
        if not 0 <= nu <= 1:
            raise ValueError(f"nu must be in [0, 1], got {nu}")
        self._nu_ema = self.ema * self._nu_ema + (1.0 - self.ema) * nu
        if self._nu_ema < self.nu_low:
            self.damping = min(self.damping_max, self.damping * self.growth)
            self.n_grows += 1
        elif self._nu_ema > self.nu_high:
            self.damping = max(self.damping_min, self.damping / self.growth)
            self.n_shrinks += 1
        return self.damping
