"""Approximation & adaptivity: block-diagonal factors, drift-triggered
eigenbasis refresh, and adaptive damping.

The exact K-FAC pipeline eigendecomposes every d×d factor on a fixed
schedule.  This package trades bounded approximation error for
superlinear FLOP/byte savings on the widest layers, and replaces the
fixed refresh schedule with feedback:

- :mod:`repro.approx.blocks` — the ``diag_blocks`` widest-layer-first
  block partition policy (pure index math, shared by preconditioner,
  planner, perfmodel, and tests).
- :mod:`repro.approx.blockeig` — per-block eigendecomposition and the
  blocked Eq. 13–15 preconditioner (:class:`BlockFactorEig`), exact-path
  bit-identical at one block.
- :mod:`repro.approx.adaptive` — :class:`DriftTrigger` (refresh when the
  factor EMA drifts from the decomposed snapshot, hard-capped by the
  ``max_eig_staleness`` budget) and :class:`AdaptiveDamping` (LM-style
  damping driven by the Eq. 18 KL-clip statistic).

Everything is wired into :class:`repro.core.preconditioner.KFAC` via the
``diag_blocks`` / ``diag_warmup`` / ``drift_tol`` / ``adapt_damping``
hyperparameters; see ``docs/approximation.md``.
"""

from repro.approx.adaptive import AdaptiveDamping, DriftTrigger
from repro.approx.blockeig import (
    BlockFactorEig,
    block_eigendecompose,
    precondition_block_eigen,
)
from repro.approx.blocks import (
    block_boundaries,
    block_eig_elements,
    plan_block_bounds,
    widest_first_block_dim,
)

__all__ = [
    "block_boundaries",
    "widest_first_block_dim",
    "plan_block_bounds",
    "block_eig_elements",
    "BlockFactorEig",
    "block_eigendecompose",
    "precondition_block_eigen",
    "DriftTrigger",
    "AdaptiveDamping",
]
