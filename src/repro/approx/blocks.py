"""Block-diagonal factor partitioning (the ``diag_blocks`` policy).

The paper eigendecomposes every d×d Kronecker factor exactly — cubic in
``d``, dominated by ResNet-50's widest 3×3×512 factor (d = 4608).  A
block-diagonal approximation keeps only ``k`` diagonal blocks of each
factor, cutting the eig cost from ``d^3`` to roughly ``d^3 / k^2`` and
the shipped triangle from ``d(d+1)/2`` to the sum of the block
triangles.

**Widest-layer-first policy.**  ``diag_blocks=k`` fixes a target block
edge from the *widest* factor in the model: ``block_dim =
ceil(max_dim / k)``.  The widest factor gets ``k`` blocks; narrower
factors get proportionally fewer (``ceil(d / block_dim)``), and factors
narrower than one block stay exact.  This concentrates the
approximation where the FLOP/byte savings live and leaves small layers
untouched, matching the ``diag_blocks`` idiom of block-diagonal K-FAC
preconditioners for wide layers.

This module is pure index arithmetic — no numerics — so the planner,
the perfmodel, and the hypothesis test suite can all share one source
of truth for what a "block" is.
"""

from __future__ import annotations

import math
from typing import Sequence

__all__ = [
    "block_boundaries",
    "widest_first_block_dim",
    "plan_block_bounds",
    "block_eig_elements",
]

#: A factor's block partition: ``((lo, hi), ...)`` half-open row/col ranges.
Bounds = tuple[tuple[int, int], ...]


def block_boundaries(dim: int, n_blocks: int) -> Bounds:
    """Split ``range(dim)`` into ``n_blocks`` contiguous near-equal blocks.

    Ragged splits put the larger blocks first; ``n_blocks`` is clamped to
    ``[1, dim]`` so ``k > d`` degrades gracefully to one block per index.
    The returned ranges tile ``[0, dim)`` exactly — the hypothesis suite
    holds this for arbitrary ``(dim, n_blocks)``.

    Example
    -------
    >>> from repro.approx.blocks import block_boundaries
    >>> block_boundaries(7, 3)
    ((0, 3), (3, 5), (5, 7))
    >>> block_boundaries(2, 5)        # k > d: clamped to d singleton blocks
    ((0, 1), (1, 2))
    >>> block_boundaries(4, 1)
    ((0, 4),)
    """
    if dim < 1:
        raise ValueError(f"dim must be >= 1, got {dim}")
    if n_blocks < 1:
        raise ValueError(f"n_blocks must be >= 1, got {n_blocks}")
    n = min(n_blocks, dim)
    base, extra = divmod(dim, n)
    bounds = []
    lo = 0
    for i in range(n):
        hi = lo + base + (1 if i < extra else 0)
        bounds.append((lo, hi))
        lo = hi
    return tuple(bounds)


def widest_first_block_dim(dims: Sequence[int], diag_blocks: int) -> int:
    """Target block edge: the widest factor split into ``diag_blocks``.

    Example
    -------
    >>> from repro.approx.blocks import widest_first_block_dim
    >>> widest_first_block_dim([97, 36, 17], 4)    # ceil(97 / 4)
    25
    """
    if not dims:
        raise ValueError("dims must be non-empty")
    if diag_blocks < 1:
        raise ValueError(f"diag_blocks must be >= 1, got {diag_blocks}")
    return max(1, math.ceil(max(dims) / diag_blocks))


def plan_block_bounds(dims: Sequence[int], diag_blocks: int) -> list[Bounds]:
    """Per-factor block partitions under the widest-layer-first policy.

    Each factor of dimension ``d`` gets ``ceil(d / block_dim)`` blocks
    where ``block_dim = ceil(max(dims) / diag_blocks)`` — the widest
    factor gets ``diag_blocks`` blocks, narrow factors stay exact.

    Example
    -------
    >>> from repro.approx.blocks import plan_block_bounds
    >>> plan_block_bounds([97, 36, 17], 4)        # block edge 25
    [((0, 25), (25, 49), (49, 73), (73, 97)), ((0, 18), (18, 36)), ((0, 17),)]
    >>> plan_block_bounds([97, 36, 17], 1)        # k = 1: everything exact
    [((0, 97),), ((0, 36),), ((0, 17),)]
    """
    if diag_blocks == 1:
        return [((0, d),) for d in dims]
    block_dim = widest_first_block_dim(dims, diag_blocks)
    return [block_boundaries(d, math.ceil(d / block_dim)) for d in dims]


def block_eig_elements(bounds: Bounds) -> int:
    """Elements of one factor's blocked eigenbasis: ``sum(db^2 + db)``.

    Per block, the dense basis ``Q`` (``db^2``) plus the eigenvalue
    vector (``db``) — the payload an EigShare task ships for that
    factor.  With a single block this is the exact path's ``d^2 + d``.

    Example
    -------
    >>> from repro.approx.blocks import block_boundaries, block_eig_elements
    >>> block_eig_elements(block_boundaries(4, 1))    # 16 + 4
    20
    >>> block_eig_elements(block_boundaries(4, 2))    # 2 * (4 + 2)
    12
    """
    return sum((hi - lo) ** 2 + (hi - lo) for lo, hi in bounds)
