"""Blocked eigenbases: per-block decomposition and preconditioning.

A :class:`BlockFactorEig` holds one :class:`~repro.core.inverse.FactorEig`
per diagonal block of a factor.  Mathematically it is exactly the
eigendecomposition of the block-diagonal *approximation* of the factor:
the dense basis is the block-diagonal assembly of the per-block ``Q``'s
and the spectrum is the concatenation of the per-block eigenvalues — so
:func:`precondition_block_eigen` with blocked bases equals
:func:`~repro.core.inverse.precondition_eigen` applied to that assembled
dense basis, while costing only ``sum(db^3)`` instead of ``d^3``.

With a single block everything delegates to the exact-path functions,
which keeps ``diag_blocks=1`` bit-identical to the seed code path.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.approx.blocks import Bounds
from repro.core.inverse import FactorEig, eigendecompose, precondition_eigen

__all__ = [
    "BlockFactorEig",
    "block_eigendecompose",
    "precondition_block_eigen",
]


@dataclass
class BlockFactorEig:
    """Eigendecomposition of a factor's block-diagonal approximation.

    Exposes the same ``Q`` / ``lam`` / ``dim`` surface as
    :class:`~repro.core.inverse.FactorEig` (the dense properties assemble
    the block-diagonal basis), so checkpointing and the elastic
    redistribute path work unchanged on blocked state.

    Example
    -------
    >>> import numpy as np
    >>> from repro.approx.blockeig import block_eigendecompose
    >>> eig = block_eigendecompose(np.diag([4.0, 9.0]), ((0, 1), (1, 2)))
    >>> eig.n_blocks, eig.dim, eig.lam.tolist()
    (2, 2, [4.0, 9.0])
    >>> eig.Q.shape                    # dense block-diagonal assembly
    (2, 2)
    """

    blocks: tuple[FactorEig, ...]
    bounds: Bounds

    def __post_init__(self) -> None:
        if len(self.blocks) != len(self.bounds):
            raise ValueError(
                f"{len(self.blocks)} blocks for {len(self.bounds)} bounds"
            )
        for eig, (lo, hi) in zip(self.blocks, self.bounds):
            if eig.dim != hi - lo:
                raise ValueError(
                    f"block dim {eig.dim} != bound width {hi - lo} at ({lo}, {hi})"
                )

    @property
    def dim(self) -> int:
        return self.bounds[-1][1]

    @property
    def n_blocks(self) -> int:
        return len(self.blocks)

    @property
    def lam(self) -> np.ndarray:
        """Concatenated per-block eigenvalues (the full spectrum)."""
        return np.concatenate([b.lam for b in self.blocks])

    @property
    def Q(self) -> np.ndarray:
        """Dense block-diagonal basis (for checkpoints; not the hot path)."""
        d = self.dim
        out = np.zeros((d, d), dtype=self.blocks[0].Q.dtype)
        for eig, (lo, hi) in zip(self.blocks, self.bounds):
            out[lo:hi, lo:hi] = eig.Q
        return out

    def nbytes(self) -> int:
        return sum(b.nbytes() for b in self.blocks)


def block_eigendecompose(factor: np.ndarray, bounds: Bounds) -> BlockFactorEig:
    """Eigendecompose each diagonal block of ``factor`` independently.

    Off-block entries are discarded — this *is* the approximation.  Cost
    drops from ``d^3`` to ``sum(db^3)`` (``~d^3 / k^2`` for ``k`` equal
    blocks).

    Example
    -------
    >>> import numpy as np
    >>> from repro.approx.blockeig import block_eigendecompose
    >>> eig = block_eigendecompose(np.eye(4), ((0, 2), (2, 4)))
    >>> [b.dim for b in eig.blocks]
    [2, 2]
    """
    if factor.ndim != 2 or factor.shape[0] != factor.shape[1]:
        raise ValueError(f"factor must be square, got {factor.shape}")
    if bounds[-1][1] != factor.shape[0]:
        raise ValueError(
            f"bounds cover {bounds[-1][1]} rows, factor has {factor.shape[0]}"
        )
    return BlockFactorEig(
        blocks=tuple(
            eigendecompose(np.ascontiguousarray(factor[lo:hi, lo:hi]))
            for lo, hi in bounds
        ),
        bounds=bounds,
    )


def _as_blocks(eig: "FactorEig | BlockFactorEig") -> tuple[tuple, Bounds]:
    if isinstance(eig, BlockFactorEig):
        return eig.blocks, eig.bounds
    return (eig,), ((0, eig.dim),)


def precondition_block_eigen(
    grad: np.ndarray,
    eig_A: "FactorEig | BlockFactorEig",
    eig_G: "FactorEig | BlockFactorEig",
    gamma: float,
) -> np.ndarray:
    """Eqs. 13–15 with block-diagonal bases, never densifying ``Q``.

    Each side's rotation is applied block-by-block (``Q_b^T x`` on the
    row blocks of ``grad``, ``x Q_b`` on the column blocks), the damped
    denominator uses the concatenated spectra, and the inverse rotations
    mirror the forward ones.  When both sides are plain
    :class:`~repro.core.inverse.FactorEig` this delegates to
    :func:`~repro.core.inverse.precondition_eigen`, making the single
    block case bit-identical to the exact path.

    Example
    -------
    >>> import numpy as np
    >>> from repro.approx.blockeig import (block_eigendecompose,
    ...                                    precondition_block_eigen)
    >>> eig = block_eigendecompose(np.eye(2), ((0, 1), (1, 2)))
    >>> precondition_block_eigen(np.ones((2, 2)), eig, eig, gamma=1.0).tolist()
    [[0.5, 0.5], [0.5, 0.5]]
    """
    if grad.shape != (eig_G.dim, eig_A.dim):
        raise ValueError(
            f"grad shape {grad.shape} incompatible with factors "
            f"G:{eig_G.dim} A:{eig_A.dim}"
        )
    if gamma <= 0:
        raise ValueError(f"damping must be positive for the eigen path, got {gamma}")
    if not isinstance(eig_A, BlockFactorEig) and not isinstance(eig_G, BlockFactorEig):
        return precondition_eigen(grad, eig_A, eig_G, gamma)

    a_blocks, a_bounds = _as_blocks(eig_A)
    g_blocks, g_bounds = _as_blocks(eig_G)

    v1 = np.empty_like(grad)
    for eig, (lo, hi) in zip(g_blocks, g_bounds):
        v1[lo:hi, :] = eig.Q.T @ grad[lo:hi, :]
    for eig, (lo, hi) in zip(a_blocks, a_bounds):
        v1[:, lo:hi] = v1[:, lo:hi] @ eig.Q

    v2 = v1 / (np.outer(eig_G.lam, eig_A.lam) + gamma)

    out = np.empty_like(v2)
    for eig, (lo, hi) in zip(g_blocks, g_bounds):
        out[lo:hi, :] = eig.Q @ v2[lo:hi, :]
    for eig, (lo, hi) in zip(a_blocks, a_bounds):
        out[:, lo:hi] = out[:, lo:hi] @ eig.Q.T
    return out
