"""Transformer workload layers: Embedding, LayerNorm, attention, blocks.

The second model family next to the ResNets: every layer here is written
so the K-FAC capture pipeline (:mod:`repro.core.layers`) sees it through
the same hook mechanism as Linear/Conv2d.

- :class:`Embedding` is a Linear layer applied to one-hot rows; its
  activation factor is therefore ``diag(bincount(indices)) / rows`` and
  the handler builds it by *gather* — the dense one-hot matrix is never
  materialized (see ``repro.core.factors.embedding_factor_A``).
- :class:`LayerNorm` caches its normalized activations so the capture
  hook can treat the affine part as an elementwise Linear layer.
- :class:`MultiHeadAttention` routes its Q/K/V/out projections through
  ordinary :class:`~repro.nn.layers.Linear` children via ``__call__`` /
  ``backprop``, so each projection registers with K-FAC as a standalone
  Linear over the flattened ``(N*T, dim)`` token rows — exactly the
  per-projection factorization of the transformer K-FAC literature.

Sequence convention: per-token layers treat ``N*T`` token rows as the
sample dimension, so the mean-loss de-averaging of
``repro.core.factors`` applies unchanged.
"""

from __future__ import annotations

import numpy as np

from repro.nn.container import Sequential
from repro.nn.layers import Linear, ReLU
from repro.nn.loss import softmax
from repro.nn.module import Module, Parameter
from repro.tensor.dtypes import DEFAULT_DTYPE

__all__ = [
    "Embedding",
    "LayerNorm",
    "MultiHeadAttention",
    "TransformerBlock",
    "TinyTransformer",
]


class Embedding(Module):
    """Token embedding table: integer indices -> learned rows.

    Semantically a :class:`~repro.nn.layers.Linear` (without bias) applied
    to one-hot rows; the forward is a gather, the backward a scatter-add.
    The K-FAC activation factor of this one-hot "input" is diagonal, which
    the handler exploits (``embedding_factor_A``) instead of ever building
    the ``(rows, num_embeddings)`` one-hot matrix.

    Example
    -------
    >>> import numpy as np
    >>> from repro.nn.transformer import Embedding
    >>> emb = Embedding(10, 4, rng=np.random.default_rng(0))
    >>> emb(np.array([[1, 2], [3, 1]])).shape
    (2, 2, 4)
    """

    def __init__(
        self,
        num_embeddings: int,
        embedding_dim: int,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        scale = 1.0 / np.sqrt(embedding_dim)
        self.weight = Parameter(
            (rng.normal(size=(num_embeddings, embedding_dim)) * scale).astype(
                DEFAULT_DTYPE
            ),
            name="weight",
        )
        self._indices: np.ndarray | None = None

    def forward(self, indices: np.ndarray) -> np.ndarray:
        if not np.issubdtype(indices.dtype, np.integer):
            raise ValueError(f"Embedding expects integer indices, got {indices.dtype}")
        self._indices = indices
        return self.weight.data[indices]

    def backward(self, grad_out: np.ndarray) -> None:
        assert self._indices is not None, "backward called before forward"
        flat = grad_out.reshape(-1, self.embedding_dim)
        np.add.at(self.weight.grad, self._indices.ravel(), flat)
        return None  # indices are not differentiable

    @property
    def cached_indices(self) -> np.ndarray | None:
        """The index array of the last forward (the A-factor's input)."""
        return self._indices

    def __repr__(self) -> str:  # pragma: no cover
        return f"Embedding({self.num_embeddings}, {self.embedding_dim})"


class LayerNorm(Module):
    """Layer normalization over the last axis, with affine parameters.

    Caches the normalized activations ``x_hat`` so the K-FAC handler can
    capture them: the affine part ``y = w * x_hat + b`` is an elementwise
    Linear layer whose activation statistics live on ``x_hat``, the same
    trick the BatchNorm K-FAC literature uses.

    Example
    -------
    >>> import numpy as np
    >>> from repro.nn.transformer import LayerNorm
    >>> ln = LayerNorm(4)
    >>> y = ln(np.random.default_rng(0).normal(size=(2, 3, 4)))
    >>> bool(abs(y.mean()) < 1e-6)        # normalized along the last axis
    True
    """

    def __init__(self, dim: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.dim = dim
        self.eps = eps
        self.weight = Parameter(np.ones(dim, dtype=DEFAULT_DTYPE), name="weight")
        self.bias = Parameter(np.zeros(dim, dtype=DEFAULT_DTYPE), name="bias")
        self._x_hat: np.ndarray | None = None
        self._inv_std: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.shape[-1] != self.dim:
            raise ValueError(f"LayerNorm({self.dim}) got trailing dim {x.shape[-1]}")
        mean = x.mean(axis=-1, keepdims=True)
        var = x.var(axis=-1, keepdims=True)
        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = (x - mean) * inv_std
        self._x_hat = x_hat
        self._inv_std = inv_std
        return self.weight.data * x_hat + self.bias.data

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        assert self._x_hat is not None and self._inv_std is not None, (
            "backward called before forward"
        )
        x_hat, inv_std = self._x_hat, self._inv_std
        d = self.dim
        self.weight.grad += (grad_out * x_hat).reshape(-1, d).sum(axis=0)
        self.bias.grad += grad_out.reshape(-1, d).sum(axis=0)
        gh = grad_out * self.weight.data
        gh_mean = gh.mean(axis=-1, keepdims=True)
        ghx_mean = (gh * x_hat).mean(axis=-1, keepdims=True)
        return (gh - gh_mean - x_hat * ghx_mean) * inv_std

    @property
    def cached_normalized(self) -> np.ndarray | None:
        """The ``x_hat`` of the last forward (the affine part's input)."""
        return self._x_hat

    def __repr__(self) -> str:  # pragma: no cover
        return f"LayerNorm({self.dim})"


class MultiHeadAttention(Module):
    """Multi-head self-attention with K-FAC-visible projections.

    The four projections are plain :class:`~repro.nn.layers.Linear`
    children called on the flattened ``(N*T, dim)`` token rows through
    ``__call__`` / ``backprop`` — so K-FAC's hooks see each projection as
    an ordinary Linear layer and capture per-projection A/G factors,
    while the softmax-attention mixing in between stays (correctly)
    unpreconditioned.  No causal mask: this is the encoder-style block of
    the BERT-image exemplar.

    Example
    -------
    >>> import numpy as np
    >>> from repro.nn.transformer import MultiHeadAttention
    >>> mha = MultiHeadAttention(8, num_heads=2, rng=np.random.default_rng(0))
    >>> mha(np.zeros((2, 5, 8), dtype=np.float32)).shape
    (2, 5, 8)
    """

    def __init__(
        self, dim: int, num_heads: int, rng: np.random.Generator | None = None
    ) -> None:
        super().__init__()
        if dim % num_heads != 0:
            raise ValueError(f"dim {dim} not divisible by num_heads {num_heads}")
        rng = rng if rng is not None else np.random.default_rng(0)
        self.dim = dim
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        self.q_proj = Linear(dim, dim, rng=rng)
        self.k_proj = Linear(dim, dim, rng=rng)
        self.v_proj = Linear(dim, dim, rng=rng)
        self.out_proj = Linear(dim, dim, rng=rng)
        self._cache: tuple | None = None

    def _split_heads(self, x: np.ndarray, n: int, t: int) -> np.ndarray:
        """(N*T, dim) -> (N, heads, T, head_dim)."""
        return x.reshape(n, t, self.num_heads, self.head_dim).transpose(0, 2, 1, 3)

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 3 or x.shape[-1] != self.dim:
            raise ValueError(f"expected (N, T, {self.dim}), got {x.shape}")
        n, t, d = x.shape
        flat = np.ascontiguousarray(x.reshape(n * t, d))
        q = self._split_heads(self.q_proj(flat), n, t)
        k = self._split_heads(self.k_proj(flat), n, t)
        v = self._split_heads(self.v_proj(flat), n, t)
        scale = 1.0 / np.sqrt(self.head_dim)
        scores = np.matmul(q, k.transpose(0, 1, 3, 2)) * scale
        attn = softmax(scores)
        ctx = np.matmul(attn, v)  # (N, heads, T, head_dim)
        ctx_flat = np.ascontiguousarray(ctx.transpose(0, 2, 1, 3)).reshape(n * t, d)
        self._cache = (q, k, v, attn, n, t)
        return self.out_proj(ctx_flat).reshape(n, t, d)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        assert self._cache is not None, "backward called before forward"
        q, k, v, attn, n, t = self._cache
        d = self.dim
        g_flat = np.ascontiguousarray(grad_out.reshape(n * t, d))
        dctx = self._split_heads(self.out_proj.backprop(g_flat), n, t)
        dattn = np.matmul(dctx, v.transpose(0, 1, 3, 2))
        dv = np.matmul(attn.transpose(0, 1, 3, 2), dctx)
        # softmax Jacobian along the key axis
        dscores = attn * (dattn - (dattn * attn).sum(axis=-1, keepdims=True))
        dscores = dscores * (1.0 / np.sqrt(self.head_dim))
        dq = np.matmul(dscores, k)
        dk = np.matmul(dscores.transpose(0, 1, 3, 2), q)

        def merge(h: np.ndarray) -> np.ndarray:
            """(N, heads, T, head_dim) -> (N*T, dim)."""
            return np.ascontiguousarray(h.transpose(0, 2, 1, 3)).reshape(n * t, d)

        dx = self.q_proj.backprop(merge(dq))
        dx = dx + self.k_proj.backprop(merge(dk))
        dx = dx + self.v_proj.backprop(merge(dv))
        return dx.reshape(n, t, d)

    def __repr__(self) -> str:  # pragma: no cover
        return f"MultiHeadAttention(dim={self.dim}, heads={self.num_heads})"


class TransformerBlock(Module):
    """Pre-LN transformer block: attention and MLP with residuals.

    ``y = a + MLP(norm2(a))`` with ``a = x + Attn(norm1(x))``.  Every
    parameterized child (two LayerNorms, four attention projections, two
    MLP Linears) is routed through ``__call__`` / ``backprop`` so K-FAC
    hooks fire for all of them.

    Example
    -------
    >>> import numpy as np
    >>> from repro.nn.transformer import TransformerBlock
    >>> blk = TransformerBlock(8, num_heads=2, rng=np.random.default_rng(0))
    >>> blk(np.zeros((2, 3, 8), dtype=np.float32)).shape
    (2, 3, 8)
    """

    def __init__(
        self,
        dim: int,
        num_heads: int,
        hidden_mult: int = 2,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.dim = dim
        self.norm1 = LayerNorm(dim)
        self.attn = MultiHeadAttention(dim, num_heads, rng=rng)
        self.norm2 = LayerNorm(dim)
        hidden = dim * hidden_mult
        self.fc1 = Linear(dim, hidden, rng=rng)
        self.act = ReLU()
        self.fc2 = Linear(hidden, dim, rng=rng)
        self._shape: tuple[int, int, int] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        n, t, d = x.shape
        self._shape = (n, t, d)
        a = x + self.attn(self.norm1(x))
        m = self.norm2(a)
        z = self.fc2(self.act(self.fc1(np.ascontiguousarray(m.reshape(n * t, d)))))
        return a + z.reshape(n, t, d)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        assert self._shape is not None, "backward called before forward"
        n, t, d = self._shape
        g_flat = np.ascontiguousarray(grad_out.reshape(n * t, d))
        gm_flat = self.fc1.backprop(self.act.backprop(self.fc2.backprop(g_flat)))
        ga = grad_out + self.norm2.backprop(gm_flat.reshape(n, t, d))
        gh = self.attn.backprop(ga)
        return ga + self.norm1.backprop(gh)


class TinyTransformer(Module):
    """Token + positional embeddings, transformer blocks, mean-pool head.

    The transformer customer of the whole K-FAC stack: its embeddings
    exercise the diagonal gather fast path (and, at real vocabulary
    sizes, the ``diag_blocks`` approximation on the wide ``A`` factor),
    the attention projections and MLP exercise per-projection Linear
    capture, and the LayerNorms exercise the elementwise capture rule.

    Example
    -------
    >>> import numpy as np
    >>> from repro.nn.transformer import TinyTransformer
    >>> model = TinyTransformer(vocab_size=20, seq_len=6, dim=8, num_heads=2,
    ...                         depth=1, num_classes=3,
    ...                         rng=np.random.default_rng(0))
    >>> tokens = np.random.default_rng(1).integers(0, 20, size=(4, 6))
    >>> model(tokens).shape
    (4, 3)
    """

    def __init__(
        self,
        vocab_size: int,
        seq_len: int,
        dim: int = 32,
        num_heads: int = 2,
        depth: int = 2,
        num_classes: int = 10,
        hidden_mult: int = 2,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.vocab_size = vocab_size
        self.seq_len = seq_len
        self.dim = dim
        self.tok_embed = Embedding(vocab_size, dim, rng=rng)
        self.pos_embed = Embedding(seq_len, dim, rng=rng)
        self.blocks = Sequential(
            *[
                TransformerBlock(dim, num_heads, hidden_mult, rng=rng)
                for _ in range(depth)
            ]
        )
        self.final_norm = LayerNorm(dim)
        self.head = Linear(dim, num_classes, rng=rng)
        self._pooled_t: int | None = None

    def forward(self, tokens: np.ndarray) -> np.ndarray:
        if tokens.ndim != 2:
            raise ValueError(f"expected (N, T) token indices, got {tokens.shape}")
        n, t = tokens.shape
        if t > self.seq_len:
            raise ValueError(f"sequence length {t} exceeds seq_len={self.seq_len}")
        pos = np.broadcast_to(np.arange(t), (n, t))
        x = self.tok_embed(tokens) + self.pos_embed(pos)
        x = self.final_norm(self.blocks(x))
        self._pooled_t = t
        return self.head(x.mean(axis=1))

    def backward(self, grad_out: np.ndarray) -> None:
        assert self._pooled_t is not None, "backward called before forward"
        t = self._pooled_t
        gp = self.head.backprop(grad_out)
        n, d = gp.shape
        gx = np.broadcast_to((gp / t)[:, None, :], (n, t, d))
        gx = self.blocks.backprop(self.final_norm.backprop(gx))
        self.tok_embed.backprop(gx)
        self.pos_embed.backprop(gx)
        return None  # token indices are not differentiable

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"TinyTransformer(vocab={self.vocab_size}, seq={self.seq_len}, "
            f"dim={self.dim})"
        )
