"""The ResNet family (He et al. 2016), CIFAR and ImageNet variants.

The paper evaluates ResNet-32 on CIFAR-10 and ResNet-50/101/152 on
ImageNet-1k.  We provide:

- CIFAR-style ResNets (3x3 stem, 3 stages of ``n`` basic blocks,
  widths 16/32/64): ``resnet20_cifar``, ``resnet32_cifar``;
- ImageNet-style ResNets (7x7/2 stem + maxpool, 4 stages): basic-block
  ResNet-34 and bottleneck ResNet-50/101/152;
- a ``width_multiplier`` / arbitrary input-size escape hatch so convergence
  experiments can run width- and resolution-scaled variants on CPU while
  the performance model uses the full-size architectures.

Convolutions are bias-free (BatchNorm supplies the affine terms), matching
the reference torchvision models the paper trains.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.nn.container import Sequential
from repro.nn.layers import (
    BatchNorm2d,
    Conv2d,
    GlobalAvgPool2d,
    Identity,
    Linear,
    MaxPool2d,
    ReLU,
)
from repro.nn.module import Module

__all__ = [
    "ResNetConfig",
    "BasicBlock",
    "Bottleneck",
    "ResNet",
    "build_resnet",
    "resnet20_cifar",
    "resnet32_cifar",
    "resnet34",
    "resnet50",
    "resnet101",
    "resnet152",
    "IMAGENET_DEPTH_CONFIGS",
]


def _conv3x3(in_c: int, out_c: int, stride: int, rng: np.random.Generator) -> Conv2d:
    return Conv2d(in_c, out_c, 3, stride=stride, padding=1, bias=False, rng=rng)


def _conv1x1(in_c: int, out_c: int, stride: int, rng: np.random.Generator) -> Conv2d:
    return Conv2d(in_c, out_c, 1, stride=stride, padding=0, bias=False, rng=rng)


class BasicBlock(Module):
    """Two 3x3 convs with a residual connection.  ``expansion = 1``."""

    expansion = 1

    def __init__(
        self, in_c: int, out_c: int, stride: int, rng: np.random.Generator
    ) -> None:
        super().__init__()
        self.conv1 = _conv3x3(in_c, out_c, stride, rng)
        self.bn1 = BatchNorm2d(out_c)
        self.relu1 = ReLU()
        self.conv2 = _conv3x3(out_c, out_c, 1, rng)
        self.bn2 = BatchNorm2d(out_c)
        if stride != 1 or in_c != out_c * self.expansion:
            self.shortcut = Sequential(
                _conv1x1(in_c, out_c * self.expansion, stride, rng),
                BatchNorm2d(out_c * self.expansion),
            )
        else:
            self.shortcut = Identity()
        self.relu_out = ReLU()

    def forward(self, x: np.ndarray) -> np.ndarray:
        main = self.relu1(self.bn1(self.conv1(x)))
        main = self.bn2(self.conv2(main))
        short = self.shortcut(x)
        return self.relu_out(main + short)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        g = self.relu_out.backprop(grad_out)
        g_main = self.conv2.backprop(self.bn2.backprop(g))
        g_main = self.relu1.backprop(g_main)
        g_main = self.conv1.backprop(self.bn1.backprop(g_main))
        g_short = self.shortcut.backprop(g)
        return g_main + g_short


class Bottleneck(Module):
    """1x1 reduce -> 3x3 -> 1x1 expand(4x), residual.  ``expansion = 4``."""

    expansion = 4

    def __init__(
        self, in_c: int, width: int, stride: int, rng: np.random.Generator
    ) -> None:
        super().__init__()
        out_c = width * self.expansion
        self.conv1 = _conv1x1(in_c, width, 1, rng)
        self.bn1 = BatchNorm2d(width)
        self.relu1 = ReLU()
        self.conv2 = _conv3x3(width, width, stride, rng)
        self.bn2 = BatchNorm2d(width)
        self.relu2 = ReLU()
        self.conv3 = _conv1x1(width, out_c, 1, rng)
        self.bn3 = BatchNorm2d(out_c)
        if stride != 1 or in_c != out_c:
            self.shortcut = Sequential(
                _conv1x1(in_c, out_c, stride, rng), BatchNorm2d(out_c)
            )
        else:
            self.shortcut = Identity()
        self.relu_out = ReLU()

    def forward(self, x: np.ndarray) -> np.ndarray:
        main = self.relu1(self.bn1(self.conv1(x)))
        main = self.relu2(self.bn2(self.conv2(main)))
        main = self.bn3(self.conv3(main))
        short = self.shortcut(x)
        return self.relu_out(main + short)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        g = self.relu_out.backprop(grad_out)
        gm = self.conv3.backprop(self.bn3.backprop(g))
        gm = self.relu2.backprop(gm)
        gm = self.conv2.backprop(self.bn2.backprop(gm))
        gm = self.relu1.backprop(gm)
        gm = self.conv1.backprop(self.bn1.backprop(gm))
        gs = self.shortcut.backprop(g)
        return gm + gs


@dataclass(frozen=True)
class ResNetConfig:
    """Full architectural description of a ResNet variant.

    Attributes
    ----------
    block:
        ``"basic"`` or ``"bottleneck"``.
    stage_blocks:
        Number of residual blocks per stage.
    stage_widths:
        Base width of each stage (pre-expansion for bottlenecks).
    stem:
        ``"cifar"`` (3x3/1 conv) or ``"imagenet"`` (7x7/2 conv + 3x3/2 maxpool).
    num_classes:
        Classifier output dimension.
    in_channels:
        Input image channels.
    width_multiplier:
        Scales every stage width (and the stem width); used to produce
        CPU-trainable variants with identical topology.
    name:
        Human-readable variant name.

    Example
    -------
    >>> from repro.nn.resnet import ResNetConfig
    >>> cfg = ResNetConfig(block="basic", stage_blocks=(3, 3, 3),
    ...                    stage_widths=(16, 32, 64), stem="cifar")
    >>> cfg.expansion, cfg.scaled_widths()
    (1, (16, 32, 64))
    """

    block: str
    stage_blocks: tuple[int, ...]
    stage_widths: tuple[int, ...]
    stem: str
    num_classes: int = 10
    in_channels: int = 3
    width_multiplier: float = 1.0
    name: str = "resnet"

    def scaled_widths(self) -> tuple[int, ...]:
        return tuple(max(1, int(round(w * self.width_multiplier))) for w in self.stage_widths)

    @property
    def expansion(self) -> int:
        return 4 if self.block == "bottleneck" else 1


# depth -> (block type, per-stage block counts) for ImageNet ResNets
IMAGENET_DEPTH_CONFIGS: dict[int, tuple[str, tuple[int, ...]]] = {
    18: ("basic", (2, 2, 2, 2)),
    34: ("basic", (3, 4, 6, 3)),
    50: ("bottleneck", (3, 4, 6, 3)),
    101: ("bottleneck", (3, 4, 23, 3)),
    152: ("bottleneck", (3, 8, 36, 3)),
}


class ResNet(Module):
    """A ResNet assembled from a :class:`ResNetConfig`."""

    def __init__(self, config: ResNetConfig, rng: np.random.Generator | None = None) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.config = config
        widths = config.scaled_widths()
        stem_width = widths[0]

        if config.stem == "cifar":
            self.stem = Sequential(
                _conv3x3(config.in_channels, stem_width, 1, rng),
                BatchNorm2d(stem_width),
                ReLU(),
            )
        elif config.stem == "imagenet":
            self.stem = Sequential(
                Conv2d(config.in_channels, stem_width, 7, stride=2, padding=3, bias=False, rng=rng),
                BatchNorm2d(stem_width),
                ReLU(),
                MaxPool2d(3, stride=2, padding=1),
            )
        else:
            raise ValueError(f"unknown stem {config.stem!r}")

        block_cls = Bottleneck if config.block == "bottleneck" else BasicBlock
        stages = []
        in_c = stem_width
        for stage_idx, (n_blocks, width) in enumerate(zip(config.stage_blocks, widths)):
            blocks = []
            for b in range(n_blocks):
                stride = 2 if (b == 0 and stage_idx > 0) else 1
                blocks.append(block_cls(in_c, width, stride, rng))
                in_c = width * block_cls.expansion
            stages.append(Sequential(*blocks))
        self.stages = Sequential(*stages)
        self.pool = GlobalAvgPool2d()
        self.fc = Linear(in_c, config.num_classes, bias=True, rng=rng)

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = self.stem(x)
        x = self.stages(x)
        x = self.pool(x)
        return self.fc(x)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        g = self.fc.backprop(grad_out)
        g = self.pool.backprop(g)
        g = self.stages.backprop(g)
        return self.stem.backprop(g)


def build_resnet(config: ResNetConfig, rng: np.random.Generator | None = None) -> ResNet:
    """Build a ResNet from an explicit config.

    Example
    -------
    >>> import numpy as np
    >>> from repro.nn.resnet import ResNetConfig, build_resnet
    >>> cfg = ResNetConfig(block="basic", stage_blocks=(1, 1), num_classes=4,
    ...                    stage_widths=(4, 8), stem="cifar", name="tiny")
    >>> model = build_resnet(cfg, np.random.default_rng(0))
    >>> model(np.zeros((2, 3, 8, 8), dtype=np.float32)).shape
    (2, 4)
    """
    return ResNet(config, rng)


def _cifar_config(depth: int, **kw: object) -> ResNetConfig:
    if (depth - 2) % 6 != 0:
        raise ValueError(f"CIFAR ResNet depth must be 6n+2, got {depth}")
    n = (depth - 2) // 6
    defaults: dict = dict(
        block="basic",
        stage_blocks=(n, n, n),
        stage_widths=(16, 32, 64),
        stem="cifar",
        num_classes=10,
        name=f"resnet{depth}-cifar",
    )
    defaults.update(kw)
    return ResNetConfig(**defaults)


def resnet20_cifar(rng: np.random.Generator | None = None, **kw: object) -> ResNet:
    """CIFAR ResNet-20 (n=3).

    Example
    -------
    >>> from repro.nn.resnet import resnet20_cifar
    >>> model = resnet20_cifar(width_multiplier=0.25)
    >>> model.config.stage_blocks             # 3 stages of n=3 basic blocks
    (3, 3, 3)
    """
    return ResNet(_cifar_config(20, **kw), rng)


def resnet32_cifar(rng: np.random.Generator | None = None, **kw: object) -> ResNet:
    """CIFAR ResNet-32 (n=5) — the paper's correctness-study model.

    Example
    -------
    >>> from repro.nn.resnet import resnet32_cifar
    >>> resnet32_cifar(width_multiplier=0.25).config.stage_blocks
    (5, 5, 5)
    """
    return ResNet(_cifar_config(32, **kw), rng)


def _imagenet_config(depth: int, **kw: object) -> ResNetConfig:
    block, stage_blocks = IMAGENET_DEPTH_CONFIGS[depth]
    defaults: dict = dict(
        block=block,
        stage_blocks=stage_blocks,
        stage_widths=(64, 128, 256, 512),
        stem="imagenet",
        num_classes=1000,
        name=f"resnet{depth}",
    )
    defaults.update(kw)
    return ResNetConfig(**defaults)


def resnet34(rng: np.random.Generator | None = None, **kw: object) -> ResNet:
    """ImageNet ResNet-34 (basic blocks).

    Example
    -------
    >>> from repro.nn.resnet import resnet34
    >>> resnet34(width_multiplier=0.0625).config.stage_blocks
    (3, 4, 6, 3)
    """
    return ResNet(_imagenet_config(34, **kw), rng)


def resnet50(rng: np.random.Generator | None = None, **kw: object) -> ResNet:
    """ImageNet ResNet-50 (bottleneck).

    Example
    -------
    >>> from repro.nn.resnet import resnet50
    >>> model = resnet50(width_multiplier=0.0625)   # narrow, same topology
    >>> model.config.block, model.config.num_classes
    ('bottleneck', 1000)
    """
    return ResNet(_imagenet_config(50, **kw), rng)


def resnet101(rng: np.random.Generator | None = None, **kw: object) -> ResNet:
    """ImageNet ResNet-101 (bottleneck).

    Example
    -------
    >>> from repro.nn.resnet import resnet101
    >>> resnet101(width_multiplier=0.0625).config.stage_blocks
    (3, 4, 23, 3)
    """
    return ResNet(_imagenet_config(101, **kw), rng)


def resnet152(rng: np.random.Generator | None = None, **kw: object) -> ResNet:
    """ImageNet ResNet-152 (bottleneck).

    Example
    -------
    >>> from repro.nn.resnet import resnet152
    >>> resnet152(width_multiplier=0.0625).config.stage_blocks
    (3, 8, 36, 3)
    """
    return ResNet(_imagenet_config(152, **kw), rng)
