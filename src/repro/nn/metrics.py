"""Classification metrics."""

from __future__ import annotations

import numpy as np

__all__ = ["topk_accuracy", "confusion_counts"]


def topk_accuracy(logits: np.ndarray, targets: np.ndarray, k: int = 1) -> float:
    """Fraction of rows whose true label is among the top-``k`` logits.

    The paper reports Top-1 validation accuracy throughout (75.9% MLPerf
    baseline etc.); Top-5 is supported for completeness.

    Example
    -------
    >>> import numpy as np
    >>> from repro.nn.metrics import topk_accuracy
    >>> logits = np.array([[0.1, 0.9], [0.8, 0.2]])
    >>> topk_accuracy(logits, np.array([1, 1]), k=1)
    0.5
    """
    if logits.ndim != 2:
        raise ValueError(f"expected (N, C) logits, got {logits.shape}")
    n, c = logits.shape
    if not 1 <= k <= c:
        raise ValueError(f"k must be in [1, {c}], got {k}")
    if k == 1:
        pred = logits.argmax(axis=1)
        return float((pred == targets).mean())
    topk = np.argpartition(logits, -k, axis=1)[:, -k:]
    return float((topk == targets[:, None]).any(axis=1).mean())


def confusion_counts(logits: np.ndarray, targets: np.ndarray, num_classes: int) -> np.ndarray:
    """Confusion matrix ``M[true, pred]`` of raw counts."""
    pred = logits.argmax(axis=1)
    m = np.zeros((num_classes, num_classes), dtype=np.int64)
    np.add.at(m, (targets, pred), 1)
    return m
