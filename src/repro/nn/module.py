"""Module / Parameter base classes with forward & backward hooks.

Every module implements ``forward(x)`` and ``backward(grad_out)``; the
framework provides parameter registration, recursive traversal, train/eval
mode, state dicts (used to broadcast initial weights across simulated
workers, exactly like ``hvd.broadcast_parameters``), and the two hook types
K-FAC needs:

- *forward hooks* fire after ``forward`` with ``(module, input, output)``
  — K-FAC captures ``input`` to build the activation factor ``A``;
- *backward hooks* fire at the start of ``backprop`` with
  ``(module, grad_output)`` — K-FAC captures the gradient w.r.t. the
  module's output to build the factor ``G``.

Containers must route child calls through ``child(x)`` / ``child.backprop``
so hooks always fire.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable, Iterator

import numpy as np

__all__ = ["Parameter", "Module"]

ForwardHook = Callable[["Module", np.ndarray, np.ndarray], None]
BackwardHook = Callable[["Module", np.ndarray], None]


class Parameter:
    """A trainable array with an accumulated gradient.

    Example
    -------
    >>> import numpy as np
    >>> from repro.nn.module import Parameter
    >>> p = Parameter(np.zeros((2, 3)), name="weight")
    >>> p.grad += 1.0
    >>> p.zero_grad(); float(p.grad.sum())
    0.0
    """

    __slots__ = ("data", "grad", "name")

    def __init__(self, data: np.ndarray, name: str = "") -> None:
        self.data = np.asarray(data)
        self.grad = np.zeros_like(self.data)
        self.name = name

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def size(self) -> int:
        """Number of scalar elements."""
        return int(self.data.size)

    def zero_grad(self) -> None:
        self.grad[...] = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Parameter(name={self.name!r}, shape={self.data.shape})"


class Module:
    """Base class for all layers and containers.

    Example
    -------
    >>> import numpy as np
    >>> from repro.nn import Linear, ReLU, Sequential
    >>> model = Sequential(Linear(4, 8), ReLU(), Linear(8, 2))
    >>> [name for name, _ in model.named_parameters()][:2]
    ['m0.weight', 'm0.bias']
    >>> model(np.zeros((5, 4), dtype=np.float32)).shape
    (5, 2)
    """

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_buffers", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())
        object.__setattr__(self, "_forward_hooks", [])
        object.__setattr__(self, "_backward_hooks", [])
        object.__setattr__(self, "training", True)

    # -- registration ---------------------------------------------------
    def __setattr__(self, name: str, value: Any) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Register non-trainable state (e.g. BN running statistics)."""
        self._buffers[name] = value
        object.__setattr__(self, name, value)

    def _set_buffer(self, name: str, value: np.ndarray) -> None:
        """Update a registered buffer, keeping attribute and dict in sync."""
        if name not in self._buffers:
            raise KeyError(f"buffer {name!r} was never registered")
        self._buffers[name] = value
        object.__setattr__(self, name, value)

    # -- hooks ------------------------------------------------------------
    def register_forward_hook(self, hook: ForwardHook) -> Callable[[], None]:
        """Add a hook fired after forward; returns a removal callable."""
        self._forward_hooks.append(hook)
        return lambda: self._forward_hooks.remove(hook)

    def register_backward_hook(self, hook: BackwardHook) -> Callable[[], None]:
        """Add a hook fired at the start of backprop; returns removal callable."""
        self._backward_hooks.append(hook)
        return lambda: self._backward_hooks.remove(hook)

    # -- compute ----------------------------------------------------------
    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __call__(self, x: np.ndarray) -> np.ndarray:
        out = self.forward(x)
        for hook in self._forward_hooks:
            hook(self, x, out)
        return out

    def backprop(self, grad_out: np.ndarray) -> np.ndarray:
        """Run backward hooks, then the module's backward pass."""
        for hook in self._backward_hooks:
            hook(self, grad_out)
        return self.backward(grad_out)

    # -- traversal ----------------------------------------------------------
    def named_modules(self, prefix: str = "") -> Iterator[tuple[str, "Module"]]:
        yield prefix, self
        for name, child in self._modules.items():
            child_prefix = f"{prefix}.{name}" if prefix else name
            yield from child.named_modules(child_prefix)

    def modules(self) -> Iterator["Module"]:
        for _, m in self.named_modules():
            yield m

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for name, p in self._parameters.items():
            yield (f"{prefix}.{name}" if prefix else name), p
        for name, child in self._modules.items():
            child_prefix = f"{prefix}.{name}" if prefix else name
            yield from child.named_parameters(child_prefix)

    def parameters(self) -> list[Parameter]:
        return [p for _, p in self.named_parameters()]

    def named_buffers(self, prefix: str = "") -> Iterator[tuple[str, np.ndarray]]:
        for name, b in self._buffers.items():
            yield (f"{prefix}.{name}" if prefix else name), b
        for name, child in self._modules.items():
            child_prefix = f"{prefix}.{name}" if prefix else name
            yield from child.named_buffers(child_prefix)

    def num_parameters(self) -> int:
        """Total scalar parameter count."""
        return sum(p.size for p in self.parameters())

    # -- mode / grads -----------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        object.__setattr__(self, "training", mode)
        for child in self._modules.values():
            child.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def cast_(self, dtype: "np.dtype | str") -> "Module":
        """Cast every parameter (data + grad) and buffer to ``dtype`` in place.

        This converts *storage*: ``model.cast_(np.float16)`` produces the
        low-precision working copies of the mixed-precision recipe (pair
        with :class:`repro.precision.MasterWeightOptimizer`, which keeps
        the fp32 masters), and ``cast_(np.float64)`` produces a
        double-precision model.
        """
        dt = np.dtype(dtype)
        for module in self.modules():
            for p in module._parameters.values():
                p.data = p.data.astype(dt)
                p.grad = p.grad.astype(dt)
            for bname in list(module._buffers):
                module._set_buffer(bname, np.asarray(module._buffers[bname]).astype(dt))
        return self

    # -- state ----------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """Copy of all parameters and buffers, keyed by dotted path."""
        out: dict[str, np.ndarray] = {}
        for name, p in self.named_parameters():
            out[name] = p.data.copy()
        for name, b in self.named_buffers():
            out[f"buffer:{name}"] = np.asarray(b).copy()
        return out

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """In-place load; shapes must match exactly."""
        params = dict(self.named_parameters())
        buffer_owners = self._buffer_owners()
        for key, value in state.items():
            if key.startswith("buffer:"):
                path = key[len("buffer:") :]
                owner, bname = buffer_owners[path]
                current = np.asarray(getattr(owner, bname))
                if current.shape != value.shape:
                    raise ValueError(
                        f"buffer {path}: shape {value.shape} != {current.shape}"
                    )
                owner._set_buffer(bname, value.copy())
            else:
                if key not in params:
                    raise KeyError(f"unknown parameter {key!r} in state dict")
                p = params[key]
                if p.data.shape != value.shape:
                    raise ValueError(
                        f"param {key}: shape {value.shape} != {p.data.shape}"
                    )
                p.data[...] = value
        return None

    def _buffer_owners(self) -> dict[str, tuple["Module", str]]:
        owners: dict[str, tuple[Module, str]] = {}
        for mod_path, module in self.named_modules():
            for bname in module._buffers:
                full = f"{mod_path}.{bname}" if mod_path else bname
                owners[full] = (module, bname)
        return owners

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}()"
