"""Numpy neural-network framework with explicit forward/backward.

Mirrors the subset of ``torch.nn`` the paper's implementation relies on:
``Linear``, ``Conv2d``, ``BatchNorm2d``, activations, pooling, ``Sequential``
containers, the ResNet family, cross-entropy with label smoothing — plus the
module *hook* mechanism K-FAC uses to capture per-layer input activations
and output gradients ("Hooks are registered to the input and output of each
layer", §IV-B).

The transformer workload tier (:mod:`repro.nn.transformer`) adds
``Embedding``, ``LayerNorm``, ``MultiHeadAttention``, ``TransformerBlock``
and ``TinyTransformer``, with margin/center loss heads in
:mod:`repro.nn.loss` — the second model family the K-FAC stack
preconditions (see ``docs/workloads.md``).
"""

from repro.nn.module import Module, Parameter
from repro.nn.container import Sequential
from repro.nn.layers import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Flatten,
    GlobalAvgPool2d,
    Identity,
    Linear,
    MaxPool2d,
    ReLU,
)
from repro.nn.loss import CenterLoss, CrossEntropyLoss, MarginSoftmaxLoss, MSELoss
from repro.nn.metrics import topk_accuracy
from repro.nn.transformer import (
    Embedding,
    LayerNorm,
    MultiHeadAttention,
    TinyTransformer,
    TransformerBlock,
)
from repro.nn.resnet import (
    ResNetConfig,
    build_resnet,
    resnet20_cifar,
    resnet32_cifar,
    resnet34,
    resnet50,
    resnet101,
    resnet152,
)

__all__ = [
    "Module",
    "Parameter",
    "Sequential",
    "Linear",
    "Conv2d",
    "BatchNorm2d",
    "ReLU",
    "MaxPool2d",
    "AvgPool2d",
    "GlobalAvgPool2d",
    "Flatten",
    "Identity",
    "Embedding",
    "LayerNorm",
    "MultiHeadAttention",
    "TransformerBlock",
    "TinyTransformer",
    "CrossEntropyLoss",
    "MSELoss",
    "MarginSoftmaxLoss",
    "CenterLoss",
    "topk_accuracy",
    "ResNetConfig",
    "build_resnet",
    "resnet20_cifar",
    "resnet32_cifar",
    "resnet34",
    "resnet50",
    "resnet101",
    "resnet152",
]
