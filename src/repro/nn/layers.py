"""Core layers: Linear, Conv2d, BatchNorm2d, activations, pooling.

Each layer caches exactly what its backward pass needs during forward, and
releases intermediate state lazily (overwritten on the next forward).  The
K-FAC preconditioner supports ``Linear`` and ``Conv2d``; every other layer
is "ignored by the K-FAC preconditioner and updated normally" (§V), same as
the paper's implementation.
"""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module, Parameter
from repro.tensor.amp import amp_matmul, cast_compute_storage
from repro.tensor.dtypes import DEFAULT_DTYPE
from repro.tensor.im2col import col2im, conv_out_size, im2col
from repro.tensor.initializers import kaiming_normal, kaiming_uniform, zeros_init
from repro.tensor.workspace import Workspace, default_workspace

__all__ = [
    "Linear",
    "Conv2d",
    "BatchNorm2d",
    "ReLU",
    "MaxPool2d",
    "AvgPool2d",
    "GlobalAvgPool2d",
    "Flatten",
    "Identity",
]


def _pair(v: int | tuple[int, int]) -> tuple[int, int]:
    if isinstance(v, tuple):
        return v
    return (v, v)


class Linear(Module):
    """Fully-connected layer ``y = x W^T + b``.

    Weight shape is ``(out_features, in_features)`` (PyTorch layout), so the
    K-FAC factor shapes are ``A: (in[+1], in[+1])`` and ``G: (out, out)``.

    Example
    -------
    >>> import numpy as np
    >>> from repro.nn.layers import Linear
    >>> layer = Linear(3, 2, rng=np.random.default_rng(0))
    >>> layer(np.ones((4, 3), dtype=np.float32)).shape
    (4, 2)
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            kaiming_uniform((out_features, in_features), rng), name="weight"
        )
        self.bias = Parameter(zeros_init((out_features,)), name="bias") if bias else None
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 2:
            raise ValueError(f"Linear expects (N, in_features), got {x.shape}")
        self._x = x
        y = amp_matmul(x, self.weight.data.T)
        if self.bias is not None:
            y += self.bias.data
        return y

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        assert self._x is not None, "backward called before forward"
        self.weight.grad += amp_matmul(grad_out.T, self._x)
        if self.bias is not None:
            self.bias.grad += grad_out.sum(axis=0)
        return amp_matmul(grad_out, self.weight.data)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"Linear(in={self.in_features}, out={self.out_features}, "
            f"bias={self.bias is not None})"
        )


class Conv2d(Module):
    """2-D convolution implemented as im2col + GEMM.

    Weight shape ``(out_channels, in_channels, kh, kw)``; the flattened
    weight matrix ``(out, in*kh*kw)`` is what K-FAC preconditions, giving
    factors ``A: (in*kh*kw[+1])^2`` and ``G: out^2`` — identical shapes to
    the paper's PyTorch implementation.

    The im2col patch matrix — the largest live buffer in the model — is
    drawn from a :class:`~repro.tensor.workspace.Workspace` arena and
    recycled as soon as its last consumer finishes: normally at the end of
    ``backward``, or (on K-FAC factor-capture iterations) after the factor
    hook that :meth:`claim_patches`-ed it folds it into the ``A`` factor.
    Steady-state training therefore re-lowers into the same buffer every
    iteration instead of allocating a fresh one.

    Example
    -------
    >>> import numpy as np
    >>> from repro.nn.layers import Conv2d
    >>> conv = Conv2d(3, 8, 3, padding=1, rng=np.random.default_rng(0))
    >>> conv(np.zeros((2, 3, 8, 8), dtype=np.float32)).shape
    (2, 8, 8, 8)
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int | tuple[int, int],
        stride: int | tuple[int, int] = 1,
        padding: int | tuple[int, int] = 0,
        bias: bool = False,
        rng: np.random.Generator | None = None,
        workspace: Workspace | None = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = _pair(kernel_size)
        self.stride = _pair(stride)
        self.padding = _pair(padding)
        kh, kw = self.kernel_size
        self.weight = Parameter(
            kaiming_normal((out_channels, in_channels, kh, kw), rng), name="weight"
        )
        self.bias = Parameter(zeros_init((out_channels,)), name="bias") if bias else None
        self.workspace = workspace if workspace is not None else default_workspace()
        self._cols: np.ndarray | None = None
        self._cols_claimed = False
        self._x_shape: tuple[int, int, int, int] | None = None

    def out_shape(self, x_shape: tuple[int, ...]) -> tuple[int, int, int, int]:
        n, _, h, w = x_shape
        oh = conv_out_size(h, self.kernel_size[0], self.stride[0], self.padding[0])
        ow = conv_out_size(w, self.kernel_size[1], self.stride[1], self.padding[1])
        return (n, self.out_channels, oh, ow)

    def forward(self, x: np.ndarray) -> np.ndarray:
        n, c, h, w = x.shape
        if c != self.in_channels:
            raise ValueError(f"expected {self.in_channels} input channels, got {c}")
        self._x_shape = (n, c, h, w)
        _, _, oh, ow = self.out_shape((n, c, h, w))
        kh, kw = self.kernel_size
        if self._cols is not None and not self._cols_claimed:
            # consecutive forwards with no backward (eval): recycle the
            # previous lowering instead of orphaning it
            self.workspace.release(self._cols)
            self._cols = None
        # im2col runs in the compute dtype (fp16 patches under AMP: half
        # the lowering traffic, the Osawa et al. half-precision capture)
        x_c = cast_compute_storage(x)
        cols = self.workspace.request((n * oh * ow, c * kh * kw), x_c.dtype)
        cols = im2col(x_c, self.kernel_size, self.stride, self.padding, out=cols)
        self._cols = cols
        self._cols_claimed = False
        w_mat = self.weight.data.reshape(self.out_channels, -1)
        y = amp_matmul(cols, w_mat.T)  # (N*OH*OW, out), fp32+ accumulation
        if self.bias is not None:
            y += self.bias.data
        return np.ascontiguousarray(
            y.reshape(n, oh, ow, self.out_channels).transpose(0, 3, 1, 2)
        )

    @property
    def cached_patches(self) -> np.ndarray | None:
        """The im2col matrix of the last forward (None once consumed)."""
        return self._cols

    def claim_patches(self) -> np.ndarray | None:
        """Transfer ownership of the cached patch matrix to the caller.

        The K-FAC capture hook calls this so ``conv2d_factor_A`` never
        re-lowers the activations.  A claimed buffer is *not* recycled at
        the end of ``backward`` — the claimant releases it back to
        :attr:`workspace` once the factor is computed.
        """
        if self._cols is None or self._cols_claimed:
            return None  # single-shot: a second claimant must re-lower
        self._cols_claimed = True
        return self._cols

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        assert self._cols is not None and self._x_shape is not None
        n, out_c, oh, ow = grad_out.shape
        dy = grad_out.transpose(0, 2, 3, 1).reshape(n * oh * ow, out_c)
        w_mat = self.weight.data.reshape(self.out_channels, -1)
        self.weight.grad += amp_matmul(dy.T, self._cols).reshape(self.weight.data.shape)
        if self.bias is not None:
            self.bias.grad += dy.sum(axis=0)
        dcols = amp_matmul(dy, w_mat)
        cols, self._cols = self._cols, None
        if not self._cols_claimed:
            self.workspace.release(cols)
        self._cols_claimed = False
        nc, cc, h, w = self._x_shape
        ph, pw = self.padding
        if ph or pw:
            scratch = self.workspace.request(
                (nc, cc, h + 2 * ph, w + 2 * pw), dcols.dtype
            )
            dx = col2im(
                dcols, self._x_shape, self.kernel_size, self.stride, self.padding,
                scratch=scratch,
            )
            # the trimming slice is usually a copy, but a single-sided pad
            # with leading size-1 dims can stay contiguous — then dx IS a
            # view of scratch and the buffer must escape, not be pooled
            if not np.shares_memory(dx, scratch):
                self.workspace.release(scratch)
            return dx
        return col2im(dcols, self._x_shape, self.kernel_size, self.stride, self.padding)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"Conv2d({self.in_channels}, {self.out_channels}, "
            f"k={self.kernel_size}, s={self.stride}, p={self.padding}, "
            f"bias={self.bias is not None})"
        )


class BatchNorm2d(Module):
    """Batch normalization over (N, H, W) per channel, with running stats.

    As in the paper, BN layers are *not* preconditioned by K-FAC; they are
    trained with the wrapped first-order optimizer.  Running statistics stay
    rank-local (the paper does not use distributed/sync BN — that is called
    out in §III-A as a hardware-specific technique they avoid).

    Example
    -------
    >>> import numpy as np
    >>> from repro.nn.layers import BatchNorm2d
    >>> bn = BatchNorm2d(4)
    >>> y = bn(np.random.default_rng(0).normal(size=(8, 4, 2, 2)))
    >>> bool(abs(y.mean()) < 1e-6)        # normalized per channel
    True
    """

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1) -> None:
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.weight = Parameter(np.ones(num_features, dtype=DEFAULT_DTYPE), name="weight")
        self.bias = Parameter(np.zeros(num_features, dtype=DEFAULT_DTYPE), name="bias")
        self.register_buffer("running_mean", np.zeros(num_features, dtype=DEFAULT_DTYPE))
        self.register_buffer("running_var", np.ones(num_features, dtype=DEFAULT_DTYPE))
        self._cache: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 4 or x.shape[1] != self.num_features:
            raise ValueError(f"BatchNorm2d expects (N,{self.num_features},H,W), got {x.shape}")
        if self.training:
            mean = x.mean(axis=(0, 2, 3))
            var = x.var(axis=(0, 2, 3))
            self._set_buffer(
                "running_mean",
                (1 - self.momentum) * self.running_mean + self.momentum * mean,
            )
            n = x.shape[0] * x.shape[2] * x.shape[3]
            unbiased = var * n / max(n - 1, 1)
            self._set_buffer(
                "running_var",
                (1 - self.momentum) * self.running_var + self.momentum * unbiased,
            )
        else:
            mean = self.running_mean
            var = self.running_var
        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = (x - mean[None, :, None, None]) * inv_std[None, :, None, None]
        if self.training:
            self._cache = (x_hat, inv_std.astype(x.dtype), np.asarray(mean))
        return self.weight.data[None, :, None, None] * x_hat + self.bias.data[None, :, None, None]

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        assert self._cache is not None, "backward requires a training-mode forward"
        x_hat, inv_std, _ = self._cache
        n = grad_out.shape[0] * grad_out.shape[2] * grad_out.shape[3]
        self.weight.grad += (grad_out * x_hat).sum(axis=(0, 2, 3))
        self.bias.grad += grad_out.sum(axis=(0, 2, 3))
        g = grad_out * self.weight.data[None, :, None, None]
        g_mean = g.mean(axis=(0, 2, 3), keepdims=True)
        gx_mean = (g * x_hat).mean(axis=(0, 2, 3), keepdims=True)
        dx = (g - g_mean - x_hat * gx_mean) * inv_std[None, :, None, None]
        # note: the batch statistics see all N*H*W samples, hence the means.
        del n
        return dx


class ReLU(Module):
    """Rectified linear unit.

    Example
    -------
    >>> import numpy as np
    >>> from repro.nn.layers import ReLU
    >>> ReLU()(np.array([-1.0, 2.0], dtype=np.float32)).tolist()
    [0.0, 2.0]
    """

    def __init__(self) -> None:
        super().__init__()
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, 0.0).astype(x.dtype)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        assert self._mask is not None
        return np.where(self._mask, grad_out, 0.0).astype(grad_out.dtype)


class MaxPool2d(Module):
    """Max pooling (general kernel/stride/padding, via per-channel im2col).

    Example
    -------
    >>> import numpy as np
    >>> from repro.nn.layers import MaxPool2d
    >>> x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
    >>> MaxPool2d(2, 2)(x)[0, 0].tolist()
    [[5.0, 7.0], [13.0, 15.0]]
    """

    def __init__(
        self,
        kernel_size: int | tuple[int, int],
        stride: int | tuple[int, int] | None = None,
        padding: int | tuple[int, int] = 0,
    ) -> None:
        super().__init__()
        self.kernel_size = _pair(kernel_size)
        self.stride = _pair(stride) if stride is not None else self.kernel_size
        self.padding = _pair(padding)
        self._argmax: np.ndarray | None = None
        self._x_shape: tuple[int, int, int, int] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        n, c, h, w = x.shape
        self._x_shape = (n, c, h, w)
        flat = x.reshape(n * c, 1, h, w)
        if any(self.padding):
            # pad with -inf so padded cells never win the max
            ph, pw = self.padding
            flat = np.pad(
                flat,
                ((0, 0), (0, 0), (ph, ph), (pw, pw)),
                constant_values=-np.inf,
            )
            cols = im2col(flat, self.kernel_size, self.stride, (0, 0))
        else:
            cols = im2col(flat, self.kernel_size, self.stride, (0, 0))
        self._argmax = np.argmax(cols, axis=1)
        out = cols[np.arange(cols.shape[0]), self._argmax]
        oh = conv_out_size(h, self.kernel_size[0], self.stride[0], self.padding[0])
        ow = conv_out_size(w, self.kernel_size[1], self.stride[1], self.padding[1])
        return np.ascontiguousarray(out.reshape(n, c, oh, ow))

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        assert self._argmax is not None and self._x_shape is not None
        n, c, h, w = self._x_shape
        ph, pw = self.padding
        hp, wp = h + 2 * ph, w + 2 * pw
        kh, kw = self.kernel_size
        dy = grad_out.reshape(-1)
        dcols = np.zeros((dy.shape[0], kh * kw), dtype=grad_out.dtype)
        dcols[np.arange(dy.shape[0]), self._argmax] = dy
        dx_flat = col2im(dcols, (n * c, 1, hp, wp), self.kernel_size, self.stride, (0, 0))
        dx = dx_flat.reshape(n, c, hp, wp)
        if ph or pw:
            dx = dx[:, :, ph : ph + h, pw : pw + w]
        return np.ascontiguousarray(dx)


class AvgPool2d(Module):
    """Average pooling.

    Example
    -------
    >>> import numpy as np
    >>> from repro.nn.layers import AvgPool2d
    >>> x = np.arange(4, dtype=np.float32).reshape(1, 1, 2, 2)
    >>> AvgPool2d(2, 2)(x)[0, 0].tolist()
    [[1.5]]
    """

    def __init__(
        self,
        kernel_size: int | tuple[int, int],
        stride: int | tuple[int, int] | None = None,
        padding: int | tuple[int, int] = 0,
    ) -> None:
        super().__init__()
        self.kernel_size = _pair(kernel_size)
        self.stride = _pair(stride) if stride is not None else self.kernel_size
        self.padding = _pair(padding)
        self._x_shape: tuple[int, int, int, int] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        n, c, h, w = x.shape
        self._x_shape = (n, c, h, w)
        flat = x.reshape(n * c, 1, h, w)
        cols = im2col(flat, self.kernel_size, self.stride, self.padding)
        out = cols.mean(axis=1)
        oh = conv_out_size(h, self.kernel_size[0], self.stride[0], self.padding[0])
        ow = conv_out_size(w, self.kernel_size[1], self.stride[1], self.padding[1])
        return np.ascontiguousarray(out.reshape(n, c, oh, ow))

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        assert self._x_shape is not None
        n, c, h, w = self._x_shape
        kh, kw = self.kernel_size
        dy = grad_out.reshape(-1, 1) / (kh * kw)
        dcols = np.broadcast_to(dy, (dy.shape[0], kh * kw)).astype(grad_out.dtype)
        dx_flat = col2im(
            np.ascontiguousarray(dcols), (n * c, 1, h, w), self.kernel_size, self.stride, self.padding
        )
        return dx_flat.reshape(n, c, h, w)


class GlobalAvgPool2d(Module):
    """Mean over the spatial dimensions: (N, C, H, W) -> (N, C).

    Example
    -------
    >>> import numpy as np
    >>> from repro.nn.layers import GlobalAvgPool2d
    >>> GlobalAvgPool2d()(np.ones((2, 3, 4, 4), dtype=np.float32)).shape
    (2, 3)
    """

    def __init__(self) -> None:
        super().__init__()
        self._x_shape: tuple[int, int, int, int] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x_shape = x.shape  # type: ignore[assignment]
        return x.mean(axis=(2, 3))

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        assert self._x_shape is not None
        n, c, h, w = self._x_shape
        scale = 1.0 / (h * w)
        return np.broadcast_to(
            grad_out[:, :, None, None] * scale, (n, c, h, w)
        ).astype(grad_out.dtype)


class Flatten(Module):
    """(N, ...) -> (N, prod(...)).

    Example
    -------
    >>> import numpy as np
    >>> from repro.nn.layers import Flatten
    >>> Flatten()(np.zeros((2, 3, 4, 4), dtype=np.float32)).shape
    (2, 48)
    """

    def __init__(self) -> None:
        super().__init__()
        self._x_shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x_shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        assert self._x_shape is not None
        return grad_out.reshape(self._x_shape)


class Identity(Module):
    """Pass-through (used for parameter-free residual shortcuts).

    Example
    -------
    >>> import numpy as np
    >>> from repro.nn.layers import Identity
    >>> x = np.ones(3, dtype=np.float32)
    >>> Identity()(x) is x
    True
    """

    def forward(self, x: np.ndarray) -> np.ndarray:
        return x

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return grad_out
