"""Loss functions with explicit backward passes.

The paper trains with softmax cross-entropy; for ImageNet runs "labels are
smoothed with a factor of 0.1" (§VI-C1), so label smoothing is built in.
Losses are *mean-reduced over the batch*; K-FAC's ``G``-factor computation
de-averages them to recover per-example output gradients (see
``repro.core.factors``).
"""

from __future__ import annotations

import numpy as np

__all__ = ["CrossEntropyLoss", "MSELoss", "log_softmax", "softmax"]


def log_softmax(logits: np.ndarray) -> np.ndarray:
    """Numerically stable log-softmax along the last axis."""
    z = logits - logits.max(axis=-1, keepdims=True)
    return z - np.log(np.exp(z).sum(axis=-1, keepdims=True))


def softmax(logits: np.ndarray) -> np.ndarray:
    """Numerically stable softmax along the last axis."""
    return np.exp(log_softmax(logits))


class CrossEntropyLoss:
    """Softmax cross-entropy over integer class targets, mean-reduced.

    Parameters
    ----------
    label_smoothing:
        Mixing factor ``eps``: the target distribution becomes
        ``(1 - eps) * onehot + eps / num_classes``.

    Example
    -------
    >>> import numpy as np
    >>> from repro.nn.loss import CrossEntropyLoss
    >>> loss_fn = CrossEntropyLoss()
    >>> logits = np.zeros((2, 4), dtype=np.float32)      # uniform predictions
    >>> round(loss_fn(logits, np.array([0, 3])), 4)      # == log(4)
    1.3863
    >>> loss_fn.backward().shape                          # grad w.r.t. logits
    (2, 4)
    """

    def __init__(self, label_smoothing: float = 0.0) -> None:
        if not 0.0 <= label_smoothing < 1.0:
            raise ValueError(f"label_smoothing must be in [0, 1), got {label_smoothing}")
        self.label_smoothing = label_smoothing
        self._probs: np.ndarray | None = None
        self._targets_dist: np.ndarray | None = None

    def forward(self, logits: np.ndarray, targets: np.ndarray) -> float:
        if logits.ndim != 2:
            raise ValueError(f"expected (N, C) logits, got {logits.shape}")
        n, c = logits.shape
        if targets.shape != (n,):
            raise ValueError(f"expected (N,) integer targets, got {targets.shape}")
        logp = log_softmax(logits)
        dist = np.full((n, c), self.label_smoothing / c, dtype=logits.dtype)
        dist[np.arange(n), targets] += 1.0 - self.label_smoothing
        self._probs = np.exp(logp)
        self._targets_dist = dist
        return float(-(dist * logp).sum() / n)

    __call__ = forward

    def backward(self) -> np.ndarray:
        """Gradient of the mean loss w.r.t. the logits: ``(p - t) / N``."""
        assert self._probs is not None and self._targets_dist is not None, (
            "backward called before forward"
        )
        n = self._probs.shape[0]
        return (self._probs - self._targets_dist) / n


class MSELoss:
    """Mean-squared error, mean-reduced over all elements.

    Example
    -------
    >>> import numpy as np
    >>> from repro.nn.loss import MSELoss
    >>> MSELoss()(np.array([1.0, 3.0]), np.array([1.0, 1.0]))
    2.0
    """

    def __init__(self) -> None:
        self._diff: np.ndarray | None = None

    def forward(self, pred: np.ndarray, target: np.ndarray) -> float:
        if pred.shape != target.shape:
            raise ValueError(f"shape mismatch: {pred.shape} vs {target.shape}")
        self._diff = pred - target
        return float((self._diff**2).mean())

    __call__ = forward

    def backward(self) -> np.ndarray:
        assert self._diff is not None, "backward called before forward"
        return (2.0 / self._diff.size) * self._diff
