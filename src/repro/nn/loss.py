"""Loss functions with explicit backward passes.

The paper trains with softmax cross-entropy; for ImageNet runs "labels are
smoothed with a factor of 0.1" (§VI-C1), so label smoothing is built in.
Losses are *mean-reduced over the batch*; K-FAC's ``G``-factor computation
de-averages them to recover per-example output gradients (see
``repro.core.factors``).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "CrossEntropyLoss",
    "MSELoss",
    "MarginSoftmaxLoss",
    "CenterLoss",
    "log_softmax",
    "softmax",
]


def log_softmax(logits: np.ndarray) -> np.ndarray:
    """Numerically stable log-softmax along the last axis."""
    z = logits - logits.max(axis=-1, keepdims=True)
    return z - np.log(np.exp(z).sum(axis=-1, keepdims=True))


def softmax(logits: np.ndarray) -> np.ndarray:
    """Numerically stable softmax along the last axis."""
    return np.exp(log_softmax(logits))


class CrossEntropyLoss:
    """Softmax cross-entropy over integer class targets, mean-reduced.

    Parameters
    ----------
    label_smoothing:
        Mixing factor ``eps``: the target distribution becomes
        ``(1 - eps) * onehot + eps / num_classes``.

    Example
    -------
    >>> import numpy as np
    >>> from repro.nn.loss import CrossEntropyLoss
    >>> loss_fn = CrossEntropyLoss()
    >>> logits = np.zeros((2, 4), dtype=np.float32)      # uniform predictions
    >>> round(loss_fn(logits, np.array([0, 3])), 4)      # == log(4)
    1.3863
    >>> loss_fn.backward().shape                          # grad w.r.t. logits
    (2, 4)
    """

    def __init__(self, label_smoothing: float = 0.0) -> None:
        if not 0.0 <= label_smoothing < 1.0:
            raise ValueError(f"label_smoothing must be in [0, 1), got {label_smoothing}")
        self.label_smoothing = label_smoothing
        self._probs: np.ndarray | None = None
        self._targets_dist: np.ndarray | None = None

    def forward(self, logits: np.ndarray, targets: np.ndarray) -> float:
        if logits.ndim != 2:
            raise ValueError(f"expected (N, C) logits, got {logits.shape}")
        n, c = logits.shape
        if targets.shape != (n,):
            raise ValueError(f"expected (N,) integer targets, got {targets.shape}")
        logp = log_softmax(logits)
        dist = np.full((n, c), self.label_smoothing / c, dtype=logits.dtype)
        dist[np.arange(n), targets] += 1.0 - self.label_smoothing
        self._probs = np.exp(logp)
        self._targets_dist = dist
        return float(-(dist * logp).sum() / n)

    __call__ = forward

    def backward(self) -> np.ndarray:
        """Gradient of the mean loss w.r.t. the logits: ``(p - t) / N``."""
        assert self._probs is not None and self._targets_dist is not None, (
            "backward called before forward"
        )
        n = self._probs.shape[0]
        return (self._probs - self._targets_dist) / n


class MarginSoftmaxLoss:
    """Additive-margin softmax (AM-softmax style) over integer targets.

    The target class logit is reduced by ``margin`` before a scaled
    softmax cross-entropy: ``z = scale * (logits - margin * onehot)``.
    With ``margin=0, scale=1`` this is exactly :class:`CrossEntropyLoss`
    (no smoothing).  The backward is the exact gradient
    ``scale * (softmax(z) - onehot) / N``, so K-FAC's ``G``-factor
    de-averaging convention applies unchanged.

    Example
    -------
    >>> import numpy as np
    >>> from repro.nn.loss import MarginSoftmaxLoss
    >>> loss_fn = MarginSoftmaxLoss(margin=0.35, scale=10.0)
    >>> logits = np.zeros((2, 4), dtype=np.float32)
    >>> plain = MarginSoftmaxLoss(margin=0.0, scale=10.0)
    >>> loss_fn(logits, np.array([0, 3])) > plain(logits, np.array([0, 3]))
    True
    >>> loss_fn.backward().shape
    (2, 4)
    """

    def __init__(self, margin: float = 0.35, scale: float = 10.0) -> None:
        if margin < 0:
            raise ValueError(f"margin must be >= 0, got {margin}")
        if scale <= 0:
            raise ValueError(f"scale must be > 0, got {scale}")
        self.margin = margin
        self.scale = scale
        self._probs: np.ndarray | None = None
        self._onehot: np.ndarray | None = None

    def forward(self, logits: np.ndarray, targets: np.ndarray) -> float:
        if logits.ndim != 2:
            raise ValueError(f"expected (N, C) logits, got {logits.shape}")
        n, c = logits.shape
        if targets.shape != (n,):
            raise ValueError(f"expected (N,) integer targets, got {targets.shape}")
        onehot = np.zeros((n, c), dtype=logits.dtype)
        onehot[np.arange(n), targets] = 1.0
        z = self.scale * (logits - self.margin * onehot)
        logp = log_softmax(z)
        self._probs = np.exp(logp)
        self._onehot = onehot
        return float(-(onehot * logp).sum() / n)

    __call__ = forward

    def backward(self) -> np.ndarray:
        """Gradient of the mean loss w.r.t. the raw logits."""
        assert self._probs is not None and self._onehot is not None, (
            "backward called before forward"
        )
        n = self._probs.shape[0]
        return self.scale * (self._probs - self._onehot) / n


class CenterLoss:
    """Center loss on feature vectors: ``0.5 * mean_i ||f_i - c_{y_i}||^2``.

    Pulls each example's feature toward its class center (Wen et al.
    2016).  The centers are *state*, not parameters: :meth:`backward`
    returns the gradient w.r.t. the features only, and
    :meth:`update_centers` moves the centers toward the batch means with
    rate ``alpha`` — exactly the decoupled update of the original paper.

    Example
    -------
    >>> import numpy as np
    >>> from repro.nn.loss import CenterLoss
    >>> loss_fn = CenterLoss(num_classes=2, feature_dim=3)
    >>> f = np.ones((2, 3), dtype=np.float32)
    >>> loss_fn(f, np.array([0, 1]))       # centers start at 0: 0.5*||1||^2
    1.5
    >>> loss_fn.update_centers()
    >>> bool(loss_fn.centers[0, 0] > 0)    # centers moved toward the batch
    True
    """

    def __init__(
        self, num_classes: int, feature_dim: int, alpha: float = 0.5
    ) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.num_classes = num_classes
        self.feature_dim = feature_dim
        self.alpha = alpha
        self.centers = np.zeros((num_classes, feature_dim), dtype=np.float32)
        self._diff: np.ndarray | None = None
        self._targets: np.ndarray | None = None

    def forward(self, features: np.ndarray, targets: np.ndarray) -> float:
        if features.ndim != 2 or features.shape[1] != self.feature_dim:
            raise ValueError(
                f"expected (N, {self.feature_dim}) features, got {features.shape}"
            )
        n = features.shape[0]
        if targets.shape != (n,):
            raise ValueError(f"expected (N,) integer targets, got {targets.shape}")
        self._diff = features - self.centers[targets]
        self._targets = targets
        return float(0.5 * (self._diff**2).sum() / n)

    __call__ = forward

    def backward(self) -> np.ndarray:
        """Gradient of the mean loss w.r.t. the features: ``diff / N``."""
        assert self._diff is not None, "backward called before forward"
        return self._diff / self._diff.shape[0]

    def update_centers(self) -> None:
        """Move each class center toward its batch mean (rate ``alpha``).

        The per-class step is ``alpha * sum(diff_c) / (1 + count_c)``, the
        count-damped update of the original formulation.
        """
        assert self._diff is not None and self._targets is not None, (
            "update_centers called before forward"
        )
        counts = np.bincount(self._targets, minlength=self.num_classes)
        sums = np.zeros_like(self.centers)
        np.add.at(sums, self._targets, self._diff)
        self.centers += self.alpha * sums / (1.0 + counts[:, None])


class MSELoss:
    """Mean-squared error, mean-reduced over all elements.

    Example
    -------
    >>> import numpy as np
    >>> from repro.nn.loss import MSELoss
    >>> MSELoss()(np.array([1.0, 3.0]), np.array([1.0, 1.0]))
    2.0
    """

    def __init__(self) -> None:
        self._diff: np.ndarray | None = None

    def forward(self, pred: np.ndarray, target: np.ndarray) -> float:
        if pred.shape != target.shape:
            raise ValueError(f"shape mismatch: {pred.shape} vs {target.shape}")
        self._diff = pred - target
        return float((self._diff**2).mean())

    __call__ = forward

    def backward(self) -> np.ndarray:
        assert self._diff is not None, "backward called before forward"
        return (2.0 / self._diff.size) * self._diff
