"""Module containers."""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.nn.module import Module

__all__ = ["Sequential"]


class Sequential(Module):
    """Runs children in order (and in reverse order for backward).

    Children are invoked through ``__call__`` / ``backprop`` so that any
    hooks registered on them (e.g. by the K-FAC preconditioner) fire.

    Example
    -------
    >>> import numpy as np
    >>> from repro.nn import Linear, ReLU, Sequential
    >>> net = Sequential(Linear(4, 8), ReLU())
    >>> len(net), net(np.zeros((2, 4), dtype=np.float32)).shape
    (2, (2, 8))
    """

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self._order: list[str] = []
        for i, m in enumerate(modules):
            name = f"m{i}"
            setattr(self, name, m)
            self._order.append(name)

    def append(self, module: Module) -> "Sequential":
        name = f"m{len(self._order)}"
        setattr(self, name, module)
        self._order.append(name)
        return self

    def __len__(self) -> int:
        return len(self._order)

    def __iter__(self) -> Iterator[Module]:
        for name in self._order:
            yield self._modules[name]

    def __getitem__(self, idx: int) -> Module:
        return self._modules[self._order[idx]]

    def forward(self, x: np.ndarray) -> np.ndarray:
        for name in self._order:
            x = self._modules[name](x)
        return x

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        for name in reversed(self._order):
            grad_out = self._modules[name].backprop(grad_out)
        return grad_out
