#!/usr/bin/env python3
"""Block-diagonal factors, drift-triggered refresh, adaptive damping.

Two views of the ``repro.approx`` tier:

1. The performance model prices ``KFAC(diag_blocks=k)`` at ResNet
   scale: per-``k`` slowest-worker eigendecomposition stage time,
   eigenbasis/factor wire payloads, and amortized iteration time
   (``~k^2`` FLOP cut at the widest factor, block triangles on the
   wire).
2. A tiny training run with the drift trigger and adaptive damping on:
   every refresh decision (go/skip), the staleness counters, and the
   damping trajectory, printed step by step.

Run:  python examples/approximation.py [--blocks 1 2 4 8] [--depth 50]
                                       [--gpus 64] [--drift-tol 0.05]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.core.distributed import LocalDriver
from repro.core.preconditioner import KFAC
from repro.experiments.approx_exp import run_approximation_sweep
from repro.nn import Linear, Sequential
from repro.nn.loss import CrossEntropyLoss
from repro.optim.sgd import SGD
from repro.utils.tables import format_table


def drift_demo(drift_tol: float, steps: int = 10) -> None:
    """Train a toy model; print per-step refresh verdicts and damping."""
    rng = np.random.default_rng(0)
    x = rng.normal(size=(64, 24)).astype(np.float32)
    y = rng.integers(0, 3, size=64).astype(np.int64)
    model = Sequential(Linear(24, 16, rng=rng), Linear(16, 3, rng=rng))
    kfac = KFAC(
        model, damping=0.01, kfac_update_freq=1, fac_update_freq=1, lr=0.1,
        diag_blocks=4, diag_warmup=1, drift_tol=drift_tol, adapt_damping=True,
    )
    driver = LocalDriver(kfac)
    opt = SGD(model.parameters(), lr=0.1, momentum=0.9)
    loss_fn = CrossEntropyLoss()

    rows = []
    for step in range(steps):
        refreshes = kfac.n_second_order_updates
        opt.zero_grad()
        loss = loss_fn(model(x), y)
        model.backward(loss_fn.backward())
        driver.step()
        opt.step()
        rows.append(
            [
                step,
                "go" if kfac.n_second_order_updates > refreshes else "skip",
                max(kfac.staleness.values(), default=0),
                f"{kfac.damping:.2e}",
                f"{float(loss):.4f}",
            ]
        )
    print(
        format_table(
            ["step", "refresh", "worst staleness", "damping", "loss"],
            rows,
            title=(
                f"drift trigger (tol={drift_tol}, diag_blocks=4, "
                f"budget={kfac.hp.max_eig_staleness}) + adaptive damping"
            ),
        )
    )
    print(
        f"refreshes: {kfac.n_drift_refreshes}   skips: {kfac.n_drift_skips}   "
        f"damping grows/shrinks: {kfac._adaptive_damping.n_grows}"
        f"/{kfac._adaptive_damping.n_shrinks}"
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--blocks", type=int, nargs="+", default=[1, 2, 4, 8])
    parser.add_argument("--depth", type=int, default=50)
    parser.add_argument("--gpus", type=int, default=64)
    parser.add_argument("--drift-tol", type=float, default=0.05)
    args = parser.parse_args()

    print(
        run_approximation_sweep(
            depth=args.depth, p=args.gpus, blocks=tuple(args.blocks)
        ).render()
    )
    print()
    drift_demo(args.drift_tol)


if __name__ == "__main__":
    main()
