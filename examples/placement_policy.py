#!/usr/bin/env python3
"""Placement policies: round-robin vs greedy LPT, and the KAISA fraction sweep.

Two placement spectra over the same factor set:

1. The paper's §VI-C4 future-work direction — round-robin factor
   assignment causes the Table VI eigendecomposition load imbalance;
   greedy longest-processing-time placement removes most of it.
2. The KAISA-style ``grad_worker_frac`` spectrum (arXiv:2107.01739)
   between the paper's two strategies: sweeping ``f`` from 1 (COMM_OPT)
   down to ``1/P`` (LAYER_WISE) trades per-rank eigenbasis memory
   against per-iteration preconditioned-gradient broadcasts.  The
   performance model prices the whole frontier.

Run:  python examples/placement_policy.py [--depth 101] [--gpus 16 32 64]
                                          [--fracs 1 0.5 0.25 0.125]
"""

from __future__ import annotations

import argparse

from repro.experiments.ablations import (
    run_grad_worker_frac_sweep,
    run_placement_ablation,
)
from repro.perfmodel.hardware import FRONTERA_LIKE, V100_LIKE
from repro.perfmodel.iteration import IterationModel
from repro.perfmodel.specs import resnet_spec
from repro.utils.tables import format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--depth", type=int, default=101)
    parser.add_argument("--gpus", type=int, nargs="+", default=[16, 32, 64])
    parser.add_argument(
        "--fracs", type=float, nargs="+", default=None,
        help="grad_worker_frac sweep values (default: halving sweep 1 .. 1/P)",
    )
    args = parser.parse_args()

    print(run_placement_ablation(depths=(args.depth,), gpus=tuple(args.gpus)).render())

    im = IterationModel(resnet_spec(args.depth), V100_LIKE, FRONTERA_LIKE)
    rows = []
    for p in args.gpus:
        for policy in ("round_robin", "greedy"):
            times = im.eig_worker_times(p, "comm-opt", policy)
            rows.append(
                [
                    p,
                    policy,
                    f"{min(times) * 1e3:.1f}",
                    f"{max(times) * 1e3:.1f}",
                    f"{max(times) / max(min(times), 1e-9):.1f}x",
                ]
            )
    print()
    print(
        format_table(
            ["GPUs", "policy", "fastest worker (ms)", "slowest worker (ms)", "spread"],
            rows,
            title=f"ResNet-{args.depth} per-worker eigendecomposition load",
        )
    )

    # the KAISA memory-vs-communication frontier at the largest scale
    p = max(args.gpus)
    fracs = tuple(args.fracs) if args.fracs else ()
    print()
    print(run_grad_worker_frac_sweep(depth=args.depth, p=p, fracs=fracs).render())


if __name__ == "__main__":
    main()
