#!/usr/bin/env python3
"""Factor-placement ablation (the paper's §VI-C4 future-work direction).

The paper diagnoses round-robin factor assignment as the eigendecomposition
load-imbalance culprit (Table VI) and proposes size-aware placement.  This
example quantifies that fix: it compares the slowest-worker
eigendecomposition time under round-robin vs greedy LPT placement, shows
the per-worker load distributions, and reports how much of the Table VI
imbalance the policy removes.

Run:  python examples/placement_policy.py [--depth 101] [--gpus 16 32 64]
"""

from __future__ import annotations

import argparse

from repro.experiments.ablations import run_placement_ablation
from repro.perfmodel.hardware import FRONTERA_LIKE, V100_LIKE
from repro.perfmodel.iteration import IterationModel
from repro.perfmodel.specs import resnet_spec
from repro.utils.tables import format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--depth", type=int, default=101)
    parser.add_argument("--gpus", type=int, nargs="+", default=[16, 32, 64])
    args = parser.parse_args()

    print(run_placement_ablation(depths=(args.depth,), gpus=tuple(args.gpus)).render())

    im = IterationModel(resnet_spec(args.depth), V100_LIKE, FRONTERA_LIKE)
    rows = []
    for p in args.gpus:
        for policy in ("round_robin", "greedy"):
            times = im.eig_worker_times(p, "comm-opt", policy)
            rows.append(
                [
                    p,
                    policy,
                    f"{min(times) * 1e3:.1f}",
                    f"{max(times) * 1e3:.1f}",
                    f"{max(times) / max(min(times), 1e-9):.1f}x",
                ]
            )
    print()
    print(
        format_table(
            ["GPUs", "policy", "fastest worker (ms)", "slowest worker (ms)", "spread"],
            rows,
            title=f"ResNet-{args.depth} per-worker eigendecomposition load",
        )
    )


if __name__ == "__main__":
    main()
