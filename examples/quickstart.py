#!/usr/bin/env python3
"""Quickstart: the paper's Listing 1 on a simulated 4-worker world.

Each simulated worker runs the exact integration pattern the paper ships::

    optimizer = SGD(model.parameters(), ...)
    optimizer = DistributedOptimizer(optimizer, ...)   # Horovod wrapper
    preconditioner = KFAC(model, ...)
    ...
    loss.backward()
    optimizer.synchronize()          # average gradients across workers
    preconditioner.step()            # K-FAC preconditions averaged grads
    with optimizer.skip_synchronize():
        optimizer.step()             # SGD applies the update

Workers are threads communicating through matched named collectives
(ring allreduce / allgather), so this exercises the real distributed code
path of Algorithm 1, strategy K-FAC-opt.

``--precision fp16`` (or ``bf16``) runs the mixed-precision recipe end to
end: autocast forward/backward, dynamic loss scaling with
skip-step-and-rescale, compressed gradient *and* factor collectives.

``--save PATH`` writes a world-size-portable checkpoint after the last
step (K-FAC state gathered across ranks); ``--resume PATH`` continues
from one — at *any* worker count, since the bundle is redistributed for
the current placement on load.

``--trace PATH`` records every collective, scheduler task, and retry as
typed spans and writes a Chrome-trace JSON (one process track per rank;
open it at ``ui.perfetto.dev``).

Run:  python examples/quickstart.py [--workers 4] [--steps 30]
                                    [--precision {fp32,fp16,bf16}]
                                    [--save ckpt] [--resume ckpt]
                                    [--trace trace.json]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.comm.backend import World
from repro.comm.horovod import DistributedOptimizer, HorovodContext
from repro.core.distributed import SPMDDriver
from repro.core.preconditioner import KFAC
from repro.data.synthetic import SyntheticImageDataset, SyntheticSpec
from repro.elastic import Checkpoint, broadcast_scaler_state, gather_state_dict
from repro.nn.loss import CrossEntropyLoss
from repro.nn.metrics import topk_accuracy
from repro.nn.resnet import resnet20_cifar
from repro.obs.tracer import Tracer, validate_chrome_trace
from repro.optim.sgd import SGD
from repro.parallel.sharding import shard_indices
from repro.precision import GradScaler, resolve_policy


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--steps", type=int, default=30)
    parser.add_argument("--batch", type=int, default=16, help="per-worker batch size")
    parser.add_argument("--lr", type=float, default=0.2)
    parser.add_argument("--precision", choices=["fp32", "fp16", "bf16"],
                        default="fp32", help="mixed-precision policy")
    parser.add_argument("--save", default=None, metavar="PATH",
                        help="write a portable checkpoint after the last step")
    parser.add_argument("--resume", default=None, metavar="PATH",
                        help="resume from a checkpoint (any worker count)")
    parser.add_argument("--trace", default=None, metavar="PATH",
                        help="write a Chrome-trace JSON of the run "
                             "(open at ui.perfetto.dev)")
    args = parser.parse_args()
    policy = resolve_policy(args.precision)

    dataset = SyntheticImageDataset(
        SyntheticSpec(n_train=640, n_val=256, num_classes=4, image_size=10,
                      channels=3, noise=0.6, seed=1)
    )
    tx, ty, vx, vy = dataset.splits
    world = World(args.workers)
    if args.trace:
        world.tracer = Tracer()

    def worker(view) -> float:
        hvd = HorovodContext(view)
        model = resnet20_cifar(np.random.default_rng(0), width_multiplier=0.25,
                               num_classes=4)
        hvd.broadcast_parameters(model)  # identical initial weights

        # every rank holds an identical scaler: the overflow verdict comes
        # from allreduced (identical) gradients, so skips stay in lockstep
        scaler = GradScaler(init_scale=2.0**10, enabled=policy.loss_scaling)
        optimizer = SGD(model.parameters(), lr=args.lr, momentum=0.9)
        optimizer = DistributedOptimizer(
            optimizer, hvd, model.named_parameters(),
            compression=policy.comm_dtype,  # ~ hvd.Compression.fp16
        )
        preconditioner = KFAC(
            model, rank=hvd.rank(), world_size=hvd.size(),
            lr=args.lr, damping=0.003, fac_update_freq=1, kfac_update_freq=5,
            comm_dtype=policy.comm_dtype, grad_scaler=scaler,
        )
        preconditioner.tracer = view.world.tracer  # span recorder (no-op off)
        driver = SPMDDriver(preconditioner, hvd)
        criterion = CrossEntropyLoss(label_smoothing=0.1)

        start_step = 0
        if args.resume:
            # every rank reads the file; the portable K-FAC bundle is
            # redistributed for THIS world size on load, and the loss
            # scale is re-shared from rank 0 so no replica diverges
            payload = Checkpoint(args.resume).load()
            model.load_state_dict(payload["model"])
            optimizer.load_state_dict(payload["optimizer"])
            if payload["kfac"] is not None:
                preconditioner.load_state_dict(payload["kfac"])
            if hvd.rank() == 0 and payload["grad_scaler"] is not None:
                scaler.load_state_dict(payload["grad_scaler"])
            broadcast_scaler_state(scaler, hvd, root=0)
            start_step = payload["step"]
            if hvd.rank() == 0:
                print(f"resumed from step {start_step}")

        indices = shard_indices(len(tx), hvd.size(), hvd.rank(), seed=0, epoch=0)
        skipped = 0
        for step in range(start_step, start_step + args.steps):
            lo = (step * args.batch) % max(1, len(indices) - args.batch)
            idx = indices[lo : lo + args.batch]
            optimizer.zero_grad()
            with policy.autocast():
                output = model(tx[idx])
                loss = criterion(output, ty[idx])
                model.backward(scaler.scale_grad(criterion.backward()))

            optimizer.synchronize()
            found_inf = scaler.unscale_(p.grad for p in model.parameters())
            prev_scale = scaler.scale
            scaler.update(found_inf)
            if scaler.scale != prev_scale:
                # compression residuals were banked in old-scale units
                optimizer.rescale_error_feedback(scaler.scale / prev_scale)
            if found_inf:
                skipped += 1  # skip-step-and-rescale: no update this step
                continue
            driver.step()  # preconditioner.step() across the world
            with optimizer.skip_synchronize():
                optimizer.step()

            if hvd.rank() == 0 and step % 5 == 0:
                print(f"step {step:3d}  loss {loss:.4f}")
        if hvd.rank() == 0 and scaler.enabled:
            print(f"loss scale {scaler.scale:g}, {skipped} overflow-skipped steps")

        if args.save:
            # the gather is a collective (every rank contributes its owned
            # second-order shards); only rank 0 touches the filesystem
            bundle = gather_state_dict(preconditioner, hvd=hvd)
            if hvd.rank() == 0:
                ckpt = Checkpoint(args.save)
                ckpt.save(ckpt.capture(
                    model=model, optimizer=optimizer, kfac_state=bundle,
                    grad_scaler=scaler, step=start_step + args.steps,
                ))
                print(f"saved checkpoint at step {start_step + args.steps}")

        model.eval()
        accuracy = topk_accuracy(model(vx), vy)
        # checksum of trainable parameters (BatchNorm running statistics are
        # legitimately rank-local, as in real Horovod training)
        checksum = float(sum(abs(p.data).sum() for p in model.parameters()))
        return accuracy, checksum

    results = world.run_spmd(worker, timeout=600)
    accuracies = [acc for acc, _ in results]
    checksums = [cs for _, cs in results]
    print(f"\nfinal validation accuracy per worker replica: "
          f"{[f'{a:.3f}' for a in accuracies]}")
    print(f"communication time by phase (simulated): "
          f"{ {k: f'{v*1e3:.2f}ms' for k, v in world.timers.as_dict().items()} }")
    assert max(checksums) - min(checksums) < 1e-3 * max(checksums), "replicas diverged!"
    print("replica parameters stayed in sync — distributed K-FAC is consistent.")
    if args.trace:
        n_events = validate_chrome_trace(world.tracer.to_chrome())
        world.tracer.write(args.trace)
        print(f"trace: {n_events} events -> {args.trace} (valid Chrome trace)")


if __name__ == "__main__":
    main()
