#!/usr/bin/env python3
"""Traced K-FAC training: drift report + Chrome-trace export.

Runs a few K-FAC steps on a simulated 4-worker world with the KAISA-style
HYBRID placement (``grad_worker_frac=0.5``) under the dependency-graph
scheduler, with a transient collective failure and a compute straggler
injected so the retry/fault paths appear in the trace.  Then:

- prints the modeled-vs-measured drift table (``repro.obs.report``):
  every Fig. 1 stage plus the K-FAC comm sub-stages, perfmodel prediction
  next to what the traced run measured;
- writes the run as Chrome-trace JSON — one process track per rank, flow
  arrows linking each collective launch to its wait — and validates it
  with :func:`repro.obs.tracer.validate_chrome_trace`.

Open the JSON at ``ui.perfetto.dev`` (or ``chrome://tracing``).

Run:  python examples/trace_step.py [--out trace.json] [--workers 4]
                                    [--epochs 2]
"""

from __future__ import annotations

import argparse
import json
from collections import Counter

from repro.experiments.drift import run_drift_report
from repro.obs.tracer import validate_chrome_trace


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="trace.json", metavar="PATH",
                        help="where to write the Chrome-trace JSON")
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--epochs", type=int, default=2)
    args = parser.parse_args()

    result = run_drift_report(
        world_size=args.workers, epochs=args.epochs, trace_path=args.out
    )
    print(result.render())

    # consume the exported file the way a viewer would: parse, validate,
    # and summarise the per-rank tracks
    with open(args.out) as fh:
        trace = json.load(fh)
    n_events = validate_chrome_trace(trace)
    spans_per_rank = Counter(
        ev["pid"] for ev in trace["traceEvents"] if ev["ph"] == "X"
    )
    print(f"\nwrote {args.out}: {n_events} events (valid Chrome trace; "
          f"open at ui.perfetto.dev)")
    for pid in sorted(spans_per_rank):
        print(f"  rank {pid}: {spans_per_rank[pid]} spans")


if __name__ == "__main__":
    main()
