#!/usr/bin/env python3
"""ImageNet-scale scaling study (paper Figs. 7-9, Table IV).

Projects time-to-solution for SGD (90 epochs), K-FAC-lw and K-FAC-opt
(55 epochs) on ResNet-50/101/152 across 16-256 GPUs using the calibrated
performance model over the real layer shapes, and prints the improvement
matrix next to the paper's reported numbers.

Run:  python examples/imagenet_scaling_study.py [--depths 50 101 152]
"""

from __future__ import annotations

import argparse

from repro.experiments.scaling_exp import run_scaling_figure, run_table4


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--depths", type=int, nargs="+", default=[50, 101, 152])
    args = parser.parse_args()

    for depth in args.depths:
        print(run_scaling_figure(depth).render())
        print()
    print(run_table4().render())


if __name__ == "__main__":
    main()
