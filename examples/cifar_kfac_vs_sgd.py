#!/usr/bin/env python3
"""CIFAR-style convergence study: K-FAC vs SGD (paper Fig. 4 / Table II).

Trains a width-scaled CIFAR ResNet-20 on the paired-class synthetic task
with the paper's recipe proportions — K-FAC gets the short epoch budget,
SGD gets 90/55 of it — and prints both accuracy curves plus the
epochs-to-baseline comparison.

Run:  python examples/cifar_kfac_vs_sgd.py [--scale tiny|small] [--workers 2]
"""

from __future__ import annotations

import argparse

from repro.experiments.common import (
    SCALE_PRESETS,
    default_kfac_hp,
    make_paired_task,
    sgd_epochs_for,
    train_once,
)
from repro.utils.tables import format_series


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=sorted(SCALE_PRESETS), default="tiny")
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--precision", choices=["fp32", "fp16", "bf16"],
                        default="fp32",
                        help="mixed-precision policy (autocast compute, "
                             "loss scaling, compressed collectives)")
    args = parser.parse_args()

    preset = SCALE_PRESETS[args.scale]
    dataset = make_paired_task(preset, seed=args.seed)
    print(
        f"task: {preset.n_train} train / {preset.n_val} val, "
        f"{dataset.spec.num_classes} paired classes, "
        f"{preset.image_size}x{preset.image_size}px, noise {preset.noise}"
    )

    kfac_epochs = preset.kfac_epochs
    sgd_epochs = sgd_epochs_for(preset)
    print(f"epoch budgets (paper 55:90 ratio): K-FAC {kfac_epochs}, SGD {sgd_epochs}\n")

    hist_kfac = train_once(
        dataset, preset, args.workers, kfac_epochs, default_kfac_hp(),
        seed=args.seed, precision=args.precision,
    )
    hist_sgd = train_once(
        dataset, preset, args.workers, sgd_epochs, None,
        seed=args.seed, precision=args.precision,
    )

    for name, hist in (("K-FAC", hist_kfac), ("SGD", hist_sgd)):
        xs, ys = hist.accuracy_curve()
        print(format_series(name, xs, [f"{y:.3f}" for y in ys], "epoch", "val_acc"))

    baseline = preset.baseline_accuracy
    e_kfac = hist_kfac.epochs_to_accuracy(baseline)
    e_sgd = hist_sgd.epochs_to_accuracy(baseline)
    print(f"\nbaseline accuracy (acceptance threshold): {baseline:.2f}")
    print(f"K-FAC: reached at epoch {e_kfac}, final {hist_kfac.final_val_accuracy:.3f}")
    print(f"SGD:   reached at epoch {e_sgd}, final {hist_sgd.final_val_accuracy:.3f}")
    print(
        "\nK-FAC per-phase wall seconds:",
        {k: round(v, 2) for k, v in hist_kfac.phase_seconds.items()},
    )
    print(
        "K-FAC simulated comm seconds:",
        {k: round(v * 1e3, 3) for k, v in hist_kfac.comm_seconds.items()},
    )
    if args.precision != "fp32":
        print(
            f"precision {hist_kfac.precision}: "
            f"{hist_kfac.amp_skipped_steps} overflow-skipped steps, "
            f"final loss scale {hist_kfac.final_loss_scale:g}, "
            "wire bytes:",
            {k: int(v) for k, v in hist_kfac.comm_bytes.items()},
        )


if __name__ == "__main__":
    main()
