#!/usr/bin/env python3
"""K-FAC beyond ResNet: a transformer under the full feature stack.

Trains a TinyTransformer (token + positional embeddings, pre-LN attention
blocks, margin-softmax head) with ``KFAC(scheduler="graph",
grad_worker_frac=0.5, comm_dtype="fp16", diag_blocks=4)`` and then
verifies the workload-tier invariants on the live preconditioner:

1. the loss decreased under the combined feature stack;
2. the embedding activation factor is *exactly* diagonal — the gather
   fast path built it from index counts, never from a dense one-hot;
3. the wide embedding factor runs blocked (``BlockFactorEig``) past the
   diag_blocks warmup;
4. no parameterized layer was silently skipped.

Run:  python examples/transformer.py [--workers 2] [--steps 8]
                                     [--vocab 40] [--seq-len 6] [--dim 16]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.approx.blockeig import BlockFactorEig
from repro.experiments.transformer_exp import run_transformer_smoke
from repro.obs.metrics import MetricsRegistry


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--steps", type=int, default=8)
    parser.add_argument("--vocab", type=int, default=40)
    parser.add_argument("--seq-len", type=int, default=6)
    parser.add_argument("--dim", type=int, default=16)
    parser.add_argument("--heads", type=int, default=2)
    parser.add_argument("--depth", type=int, default=1)
    args = parser.parse_args()

    result = run_transformer_smoke(
        world_size=args.workers,
        steps=args.steps,
        vocab=args.vocab,
        seq_len=args.seq_len,
        dim=args.dim,
        num_heads=args.heads,
        depth=args.depth,
    )
    print(result.render())

    losses = result.data["losses"]
    assert losses[-1] < losses[0], "loss did not decrease"
    print(f"loss decreased: {losses[0]:.4f} -> {losses[-1]:.4f}")

    # re-run one rank locally to inspect the live preconditioner state
    from repro.core.distributed import LocalDriver
    from repro.core.preconditioner import KFAC
    from repro.experiments.transformer_exp import make_token_task
    from repro.nn import MarginSoftmaxLoss, TinyTransformer
    from repro.optim.sgd import SGD

    model = TinyTransformer(
        args.vocab, args.seq_len, dim=args.dim, num_heads=args.heads,
        depth=args.depth, num_classes=4, rng=np.random.default_rng(5),
    )
    kfac = KFAC(
        model, damping=0.01, kfac_update_freq=2, fac_update_freq=1, lr=0.1,
        scheduler="graph", comm_dtype="fp16", diag_blocks=4, diag_warmup=1,
    )
    driver = LocalDriver(kfac)
    opt = SGD(model.parameters(), lr=0.1, momentum=0.9)
    loss_fn = MarginSoftmaxLoss()
    x, y = make_token_task(24, args.seq_len, args.vocab, 4)
    for _ in range(args.steps):
        opt.zero_grad()
        loss_fn(model(x), y)
        model.backward(loss_fn.backward())
        driver.step()
        opt.step()

    emb = next(l for l in kfac.layers if l.name == "tok_embed")
    off_diag = emb.A - np.diag(np.diag(emb.A))
    assert float(np.abs(off_diag).max()) == 0.0
    print("embedding A-factor is diagonal (gather fast path, no dense one-hot)")
    if isinstance(emb.eig_A, BlockFactorEig):
        widths = [hi - lo for lo, hi in emb.eig_A.bounds]
        print(f"embedding A eigendecomposition is blocked: widths {widths}")

    reg = MetricsRegistry()
    reg.collect_kfacs([kfac])
    n_unsupported = reg.gauge("kfac.unsupported_layers").value()
    print(
        f"captured layers: {len(kfac.layers)}; "
        f"unsupported (first-order-only) layers: {int(n_unsupported)}"
    )


if __name__ == "__main__":
    main()
