"""The mixed-precision subsystem: policies, AMP compute, loss scaling,
master weights, compressed collectives, and the end-to-end fp16 trainer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.comm.backend import World
from repro.comm.compression import (
    BF16Codec,
    ErrorFeedback,
    FP16Codec,
    get_codec,
    wire_nbytes,
)
from repro.comm.fusion import FusionBuffer
from repro.core.clipping import kl_clip_factor
from repro.core.preconditioner import KFAC, KFACHyperParams
from repro.data.synthetic import SyntheticImageDataset, SyntheticSpec
from repro.nn.layers import Conv2d, Linear
from repro.nn.module import Parameter
from repro.nn.resnet import resnet20_cifar
from repro.optim.sgd import SGD
from repro.parallel.trainer import DataParallelTrainer, TrainerConfig
from repro.precision import (
    POLICIES,
    GradScaler,
    MasterWeightOptimizer,
    PrecisionPolicy,
    resolve_policy,
)
from repro.tensor.amp import amp_matmul, autocast, cast_compute_storage, quantize_bf16
from repro.tensor.dtypes import DEFAULT_DTYPE


class TestPolicy:
    def test_presets_and_aliases(self):
        assert resolve_policy(None).name == "fp32"
        assert resolve_policy("fp16-amp") is POLICIES["fp16"]
        assert resolve_policy("bfloat16") is POLICIES["bf16"]
        p = POLICIES["fp16"]
        assert resolve_policy(p) is p
        assert p.is_amp and p.loss_scaling and p.comm_dtype == "fp16"
        assert POLICIES["bf16"].is_amp and not POLICIES["bf16"].loss_scaling
        assert not POLICIES["fp32"].is_amp and POLICIES["fp32"].comm_dtype is None

    def test_unknown_policy_raises(self):
        with pytest.raises(ValueError, match="unknown precision policy"):
            resolve_policy("fp8")

    def test_autocast_scopes_compute_dtype(self):
        from repro.tensor.amp import get_compute_dtype

        assert get_compute_dtype() is None
        with POLICIES["fp16"].autocast():
            assert get_compute_dtype() == "float16"
            with POLICIES["fp32"].autocast():
                assert get_compute_dtype() is None
            assert get_compute_dtype() == "float16"
        assert get_compute_dtype() is None

    def test_autocast_is_thread_local(self):
        # SPMD rank threads each install their own policy; one thread
        # exiting its context must not flip another back to fp32 mid-step,
        # and nothing may leak past the last exit
        import threading

        from repro.tensor.amp import get_compute_dtype

        entered = threading.Barrier(2)
        observed: dict[str, str | None] = {}

        def rank(name: str, dtype: str) -> None:
            with autocast(dtype):
                entered.wait(timeout=10)
                # both threads are inside *different* autocasts right now
                observed[name] = get_compute_dtype()
            observed[name + ":after"] = get_compute_dtype()

        t1 = threading.Thread(target=rank, args=("a", "float16"))
        t2 = threading.Thread(target=rank, args=("b", "bfloat16"))
        t1.start(); t2.start(); t1.join(); t2.join()
        assert observed == {
            "a": "float16", "a:after": None,
            "b": "bfloat16", "b:after": None,
        }
        assert get_compute_dtype() is None  # main thread untouched


class TestAmpMatmul:
    def test_passthrough_bit_identical(self, rng):
        a = rng.normal(size=(8, 5)).astype(np.float32)
        b = rng.normal(size=(5, 7)).astype(np.float32)
        np.testing.assert_array_equal(amp_matmul(a, b), a @ b)

    def test_fp16_rounds_operands_accumulates_fp32(self, rng):
        a = rng.normal(size=(16, 9)).astype(np.float32)
        b = rng.normal(size=(9, 4)).astype(np.float32)
        with autocast("float16"):
            out = amp_matmul(a, b)
        assert out.dtype == np.float32
        expect = a.astype(np.float16).astype(np.float32) @ b.astype(np.float16).astype(
            np.float32
        )
        np.testing.assert_array_equal(out, expect)

    def test_fp16_accumulation_beats_half_sum(self):
        # 4096 addends of 1.0 + tiny: a pure-fp16 accumulator saturates at
        # 2048 (adding 1.0 to 2048 in fp16 is a no-op); fp32 accumulation
        # keeps every addend
        n = 4096
        a = np.ones((1, n), dtype=np.float32)
        b = np.ones((n, 1), dtype=np.float32)
        with autocast("float16"):
            out = amp_matmul(a, b)
        assert out[0, 0] == n
        # the failure mode fp32 accumulation avoids: a sequential fp16
        # accumulator saturates at 2048 (1.0 is below the ulp there)
        acc = np.float16(0.0)
        for _ in range(4096):
            acc = np.float16(acc + np.float16(1.0))
        assert float(acc) < n

    def test_bf16_quantizes_on_fp32_storage(self, rng):
        a = rng.normal(size=(6, 6)).astype(np.float32)
        b = rng.normal(size=(6, 6)).astype(np.float32)
        with autocast("bfloat16"):
            out = amp_matmul(a, b)
        assert out.dtype == np.float32
        np.testing.assert_array_equal(out, quantize_bf16(a) @ quantize_bf16(b))

    def test_fp64_policy_promotes(self, rng):
        a = rng.normal(size=(3, 3)).astype(np.float32)
        with autocast("float64"):
            assert amp_matmul(a, a).dtype == np.float64

    def test_cast_compute_storage(self, rng):
        x = rng.normal(size=(4, 4)).astype(np.float32)
        assert cast_compute_storage(x) is x
        with autocast("float16"):
            assert cast_compute_storage(x).dtype == np.float16
        with autocast("bfloat16"):
            out = cast_compute_storage(x)
            assert out.dtype == np.float32
            np.testing.assert_array_equal(out, quantize_bf16(x))


class TestQuantizeBf16:
    def test_idempotent_and_lossless_on_grid(self, rng):
        x = rng.normal(size=257).astype(np.float32)
        q = quantize_bf16(x)
        np.testing.assert_array_equal(quantize_bf16(q), q)

    def test_round_to_nearest_even(self):
        # 1 + 2^-8 sits exactly between the bf16 neighbours 1.0 and
        # 1 + 2^-7; ties round to the even mantissa (1.0)
        tie = np.float32(1.0 + 2.0**-8)
        assert quantize_bf16(np.array([tie]))[0] == np.float32(1.0)
        above = np.float32(1.0 + 2.0**-8 + 2.0**-12)
        assert quantize_bf16(np.array([above]))[0] == np.float32(1.0 + 2.0**-7)

    def test_preserves_nonfinite(self):
        x = np.array([np.inf, -np.inf, np.nan, 0.0, -0.0], dtype=np.float32)
        q = quantize_bf16(x)
        assert np.isinf(q[0]) and q[0] > 0
        assert np.isinf(q[1]) and q[1] < 0
        assert not np.isfinite(q[2])
        assert q[3] == 0.0 and q[4] == 0.0

    def test_relative_error_bound(self, rng):
        x = (rng.normal(size=1000) * 10.0**rng.integers(-20, 20, size=1000)).astype(
            np.float32
        )
        q = quantize_bf16(x)
        err = np.abs(q - x) / np.maximum(np.abs(x), 1e-30)
        assert err.max() <= 2.0**-8  # bf16 has 8 mantissa bits incl. implicit


class TestWireCodecs:
    @pytest.mark.parametrize("codec", [FP16Codec(), BF16Codec()])
    def test_roundtrip_fixed_point(self, codec, rng):
        x = rng.normal(size=128).astype(np.float32)
        q = codec.quantize(x)
        np.testing.assert_array_equal(codec.decode(codec.encode(q)), q)
        assert codec.encode(x).nbytes == x.nbytes // 2
        assert wire_nbytes(x, codec) == x.nbytes // 2
        assert wire_nbytes(x, None) == x.nbytes

    def test_get_codec_names(self):
        assert get_codec(None) is None
        assert get_codec("none") is None and get_codec("fp32") is None
        assert isinstance(get_codec("fp16"), FP16Codec)
        assert isinstance(get_codec("bf16"), BF16Codec)
        with pytest.raises(ValueError, match="unknown wire codec"):
            get_codec("int8")

    def test_compressed_allreduce_charges_wire_bytes(self):
        world = World(4)
        bufs = [np.full(256, float(r), dtype=np.float32) for r in range(4)]
        world.allreduce(bufs, phase="plain")
        world.allreduce(bufs, phase="wire", codec="fp16")
        assert world.stats.bytes_by_phase["wire"] == world.stats.bytes_by_phase["plain"] / 2

    def test_fp32_accumulators_survive_fp16_range(self):
        # summing four 20000s overflows fp16 (max 65504); with fp32
        # reduction accumulators the *average* is exact
        world = World(4)
        bufs = [np.full(8, 20000.0, dtype=np.float32) for _ in range(4)]
        out = world.allreduce(bufs, op="average", codec="fp16")
        np.testing.assert_array_equal(out[0], np.full(8, 20000.0, dtype=np.float32))

    def test_compressed_result_is_wire_precision(self):
        world = World(2)
        bufs = [np.full(4, 1.0, dtype=np.float32), np.full(4, 1.0 + 2.0**-13, dtype=np.float32)]
        out = world.allreduce(bufs, op="average", codec="fp16")
        # the mean is re-quantized: it must sit on the fp16 grid
        np.testing.assert_array_equal(
            out[0], out[0].astype(np.float16).astype(np.float32)
        )


class TestErrorFeedback:
    def test_residual_accumulates_tiny_values(self):
        # 1e-9 is far below fp16 resolution: without EF every send rounds
        # to zero forever; with EF the residual builds until it emits
        ef = ErrorFeedback(FP16Codec())
        value = np.full(4, 1e-9, dtype=np.float32)
        emitted = np.zeros(4, dtype=np.float64)
        for _ in range(100000):
            q = ef.apply("g", value)
            emitted += q
            if emitted[0] > 0:
                break
        assert emitted[0] > 0  # the quantizer eventually released the mass

    def test_total_mass_conserved(self, rng):
        ef = ErrorFeedback(FP16Codec())
        sent = np.zeros(16, dtype=np.float64)
        total = np.zeros(16, dtype=np.float64)
        for i in range(50):
            v = rng.normal(size=16).astype(np.float32) * 1e-3
            total += v
            sent += ef.apply("k", v)
        residual = ef.residual("k")
        np.testing.assert_allclose(sent + residual, total, rtol=0, atol=1e-6)

    def test_nonfinite_residuals_are_dropped(self):
        ef = ErrorFeedback(FP16Codec())
        ef.apply("g", np.array([1e30], dtype=np.float32))  # saturates to inf
        assert np.isfinite(ef.residual("g")).all()

    def test_rescale_tracks_loss_scale_changes(self):
        # residuals banked at scale S must convert to scale S/2 after a
        # backoff, or the re-injected correction is 2x its true value
        ef = ErrorFeedback(FP16Codec())
        g = np.array([1.0 + 2.0**-12], dtype=np.float32)  # below fp16 ulp@1
        ef.apply("k", g * 1024.0)  # banked in scale-1024 units
        r_before = ef.residual("k").copy()
        ef.rescale(512.0 / 1024.0)  # scaler backed off
        np.testing.assert_allclose(ef.residual("k"), r_before * 0.5)
        # unscaled residual value is identical pre/post backoff
        np.testing.assert_allclose(ef.residual("k") / 512.0, r_before / 1024.0)

    def test_fusion_buffer_rescale_residuals(self):
        world = World(1)
        fusion = FusionBuffer(world, capacity_bytes=1 << 20, codec="fp16", phase="g")
        fusion.add("grad", [np.array([3e-9], dtype=np.float32)])
        fusion.flush()
        fusion.pop("grad")
        assert fusion._error_feedback is not None
        r = fusion._error_feedback.residual(("grad", 0)).copy()
        fusion.rescale_residuals(2.0)
        np.testing.assert_allclose(fusion._error_feedback.residual(("grad", 0)), r * 2)
        # no codec -> no EF -> rescale is a harmless no-op
        plain = FusionBuffer(world, capacity_bytes=1 << 20)
        plain.rescale_residuals(2.0)

    def test_fusion_buffer_error_feedback_end_to_end(self):
        world = World(2)
        fusion = FusionBuffer(world, capacity_bytes=1 << 20, codec="fp16", phase="g")
        value = np.full(8, 3e-9, dtype=np.float32)  # below fp16 subnormal
        received = np.zeros(8, dtype=np.float64)
        rounds = 0
        for _ in range(200000):
            rounds += 1
            fusion.add("grad", [value.copy(), value.copy()])
            fusion.flush()
            received += fusion.pop("grad")[0]
            if received[0] > 0:
                break
        assert received[0] > 0, "error feedback never released the gradient mass"
        # wire accounting is at fp16 itemsize
        assert fusion.bytes_flushed == rounds * 8 * 2


class TestGradScaler:
    def test_backoff_and_growth(self):
        s = GradScaler(init_scale=16.0, growth_factor=2.0, backoff_factor=0.5,
                       growth_interval=2)
        assert s.scale == 16.0
        s.update(found_inf=True)
        assert s.scale == 8.0 and s.steps_skipped == 1
        s.update(found_inf=False)
        s.update(found_inf=False)
        assert s.scale == 16.0 and s.steps_taken == 2  # grew after interval

    def test_unscale_detects_nonfinite(self):
        s = GradScaler(init_scale=4.0)
        g_ok = np.array([4.0, 8.0], dtype=np.float32)
        assert s.unscale_([g_ok]) is False
        np.testing.assert_array_equal(g_ok, [1.0, 2.0])
        g_bad = np.array([np.inf], dtype=np.float32)
        assert s.unscale_([g_bad]) is True

    def test_disabled_is_identity(self):
        s = GradScaler(enabled=False)
        assert s.scale == 1.0
        g = np.array([2.0], dtype=np.float32)
        assert s.scale_grad(g) is g
        assert s.unscale_([g]) is False
        s.update(found_inf=True)
        assert s.steps_skipped == 0

    def test_min_scale_floor(self):
        s = GradScaler(init_scale=2.0**-13, backoff_factor=0.5, min_scale=2.0**-14)
        s.update(found_inf=True)
        s.update(found_inf=True)
        assert s.scale == 2.0**-14

    def test_state_dict_roundtrip(self):
        s = GradScaler(init_scale=32.0, growth_interval=3)
        s.update(found_inf=False)
        s.update(found_inf=True)
        state = s.state_dict()
        restored = GradScaler()
        restored.load_state_dict(state)
        assert restored.scale == s.scale
        assert restored.steps_taken == 1 and restored.steps_skipped == 1
        assert restored.state_dict() == state

    def test_validation(self):
        with pytest.raises(ValueError):
            GradScaler(init_scale=0.0)
        with pytest.raises(ValueError):
            GradScaler(growth_factor=1.0)
        with pytest.raises(ValueError):
            GradScaler(backoff_factor=1.5)
        with pytest.raises(ValueError):
            GradScaler(growth_interval=0)


class TestMasterWeights:
    def test_small_updates_accumulate_in_masters(self):
        # at weight magnitude 1.0, fp16 resolution is ~5e-4: a 1e-4 update
        # applied directly to fp16 weights rounds to nothing, forever
        w = Parameter(np.ones(4, dtype=np.float16))
        opt = MasterWeightOptimizer(lambda ps: SGD(ps, lr=1.0), [w])
        for _ in range(20):
            w.grad[...] = np.float16(1e-4)
            opt.step()
        # master accumulated 20 * 1e-4 = 2e-3, visible in fp16 too
        assert abs(float(w.data[0]) - (1.0 - 2e-3)) < 5e-4
        naked = Parameter(np.ones(4, dtype=np.float16))
        sgd = SGD([naked], lr=1.0)
        for _ in range(20):
            naked.grad[...] = np.float16(1e-4)
            sgd.step()
        assert float(naked.data[0]) == 1.0  # the failure mode masters fix

    def test_cast_module_roundtrip(self):
        model = resnet20_cifar(np.random.default_rng(0), width_multiplier=0.25,
                               num_classes=4)
        model.cast_(np.float16)
        assert all(p.data.dtype == np.float16 for p in model.parameters())
        assert all(b.dtype == np.float16 for _, b in model.named_buffers())
        model.cast_(np.float32)
        assert all(p.data.dtype == np.float32 for p in model.parameters())

    def test_state_dict_roundtrip(self):
        w = Parameter(np.ones(3, dtype=np.float16))
        opt = MasterWeightOptimizer(lambda ps: SGD(ps, lr=0.5, momentum=0.9), [w])
        w.grad[...] = np.float16(0.25)
        opt.step()
        state = opt.state_dict()
        w2 = Parameter(np.zeros(3, dtype=np.float16))
        opt2 = MasterWeightOptimizer(lambda ps: SGD(ps, lr=0.5, momentum=0.9), [w2])
        opt2.load_state_dict(state)
        np.testing.assert_array_equal(opt2.master_params[0].data,
                                      opt.master_params[0].data)
        np.testing.assert_array_equal(w2.data, w.data)


class TestClippingFp16Regression:
    def test_large_magnitude_fp16_grads(self):
        # products ~1e8 overflow fp16 (max 65504); accumulation must run
        # in fp32+ regardless of the gradient dtype
        rng = np.random.default_rng(3)
        pg16 = (rng.normal(size=(64, 64)) * 1e4).astype(np.float16)
        g16 = pg16.copy()
        nu16 = kl_clip_factor([pg16], [g16], lr=0.1, kl_clip=1e-3)
        nu64 = kl_clip_factor(
            [pg16.astype(np.float64)], [g16.astype(np.float64)], lr=0.1, kl_clip=1e-3
        )
        assert np.isfinite(nu16) and 0.0 < nu16 <= 1.0
        assert nu16 == pytest.approx(nu64, rel=1e-3)

    def test_tiny_fp16_grads_do_not_underflow_to_full_scale(self):
        # 4096 products of 4e-4^2 = 1.6e-7 each: every *individual* product
        # underflows fp16 (min subnormal 6e-8 holds, but a half-precision
        # running sum loses most of them); fp64 accumulation keeps the mass
        pg = np.full((64, 64), 4e-4, dtype=np.float16)
        nu = kl_clip_factor([pg], [pg], lr=10.0, kl_clip=1e-9)
        expect = np.sqrt(1e-9 / (64 * 64 * np.float64(np.float16(4e-4)) ** 2 * 100.0))
        assert nu == pytest.approx(float(expect), rel=1e-3)


def _tiny_dataset(seed: int = 5) -> SyntheticImageDataset:
    return SyntheticImageDataset(
        SyntheticSpec(n_train=96, n_val=48, num_classes=4, image_size=8,
                      channels=3, noise=0.5, seed=seed)
    )


def _trainer(precision, world_size=2, epochs=2, kfac=True, seed=3, **cfg_kw):
    ds = _tiny_dataset()
    tx, ty, vx, vy = ds.splits
    cfg = TrainerConfig(
        world_size=world_size,
        batch_size=16,
        epochs=epochs,
        seed=seed,
        precision=precision,
        kfac=KFACHyperParams(damping=0.003, fac_update_freq=1, kfac_update_freq=2)
        if kfac
        else None,
        **cfg_kw,
    )

    def factory(rng):
        return resnet20_cifar(rng, width_multiplier=0.25, num_classes=4)

    return DataParallelTrainer(factory, tx, ty, vx, vy, cfg)


class TestTrainerPrecisionEndToEnd:
    def test_fp16_trajectory_matches_fp32(self):
        hist32 = _trainer("fp32").train()
        # a conservative initial scale avoids warmup overflow skips, so the
        # two runs see identical update counts (skip recovery is exercised
        # separately below)
        hist16 = _trainer(
            "fp16", grad_scaler=GradScaler(init_scale=2.0**10)
        ).train()
        assert hist16.precision == "fp16"
        assert hist16.amp_skipped_steps == 0
        # documented tolerance: per-epoch training loss within 5% relative
        for e32, e16 in zip(hist32.epochs, hist16.epochs):
            assert np.isfinite(e16.train_loss)
            assert e16.train_loss == pytest.approx(e32.train_loss, rel=0.05)
        assert hist16.final_val_accuracy == pytest.approx(
            hist32.final_val_accuracy, abs=0.15
        )

    def test_fp16_wire_bytes_halved(self):
        hist32 = _trainer("fp32").train()
        hist16 = _trainer(
            "fp16", grad_scaler=GradScaler(init_scale=2.0**10)
        ).train()
        assert hist16.amp_skipped_steps == 0  # same number of updates
        # fp16 wire = 2 bytes/element vs the storage default (4, or 8
        # under REPRO_DEFAULT_DTYPE=float64)
        shrink = np.dtype(DEFAULT_DTYPE).itemsize / 2
        for phase in ("grad_allreduce", "factor_comm"):
            assert hist16.comm_bytes[phase] == pytest.approx(
                hist32.comm_bytes[phase] / shrink
            ), phase
        # the eigenbasis exchange is never codec-compressed: it travels in
        # fp32 (the factor precision after a compressed reduce), i.e. at
        # exactly 4 bytes/element whatever the storage default
        assert hist16.comm_bytes["eig_comm"] == hist32.comm_bytes["eig_comm"] * 4 / np.dtype(
            DEFAULT_DTYPE
        ).itemsize

    def test_bf16_runs_without_loss_scaling(self):
        hist = _trainer("bf16", epochs=1).train()
        assert hist.precision == "bf16"
        assert hist.final_loss_scale == 1.0 and hist.amp_skipped_steps == 0
        assert np.isfinite(hist.epochs[-1].train_loss)

    def test_overflow_steps_skipped_and_scale_recovers(self):
        # an absurd initial scale overflows fp32 gradients immediately;
        # skip-step-and-rescale must back off until steps succeed, and the
        # tail of training must be overflow-free
        scaler = GradScaler(init_scale=2.0**120, growth_interval=10_000)
        trainer = _trainer("fp16", epochs=2, grad_scaler=scaler)
        hist = trainer.train()
        assert hist.amp_skipped_steps > 0
        assert hist.final_loss_scale < 2.0**120
        assert np.isfinite(hist.epochs[-1].train_loss)
        # after the warmup backoff, every remaining step succeeded: the
        # last-epoch skip count is zero
        assert scaler.steps_taken >= hist.total_iterations - hist.amp_skipped_steps
        # weights stayed finite on every replica
        for m in trainer.replicas:
            assert all(np.isfinite(p.data).all() for p in m.parameters())

    def test_skipped_steps_do_not_advance_kfac(self):
        scaler = GradScaler(init_scale=2.0**120, growth_interval=10_000)
        trainer = _trainer("fp16", epochs=1, grad_scaler=scaler)
        hist = trainer.train()
        assert trainer.kfacs is not None
        # KFAC stepped only on non-skipped iterations
        assert trainer.kfacs[0].steps == hist.total_iterations - hist.amp_skipped_steps

    def test_fp64_policy_runs(self):
        hist = _trainer("fp64", epochs=1, kfac=False, world_size=1).train()
        assert np.isfinite(hist.epochs[-1].train_loss)


class TestKfacCommDtype:
    def test_comm_dtype_validation(self):
        assert KFACHyperParams(comm_dtype="fp32").comm_dtype is None
        assert KFACHyperParams(comm_dtype="none").comm_dtype is None
        with pytest.raises(ValueError, match="comm_dtype"):
            KFACHyperParams(comm_dtype="int8")

    def test_compressed_factors_close_to_full_precision(self, rng):
        from repro.comm.backend import World as W
        from repro.core.distributed import PhaseController

        def build(comm_dtype):
            world = W(2)
            replicas = [
                resnet20_cifar(np.random.default_rng(0), width_multiplier=0.25,
                               num_classes=4)
                for _ in range(2)
            ]
            hp = KFACHyperParams(fac_update_freq=1, kfac_update_freq=1,
                                 comm_dtype=comm_dtype)
            kfacs = [KFAC(m, rank=r, world_size=2, hyper=hp)
                     for r, m in enumerate(replicas)]
            return world, replicas, PhaseController(kfacs, world)

        x = rng.normal(size=(8, 3, 8, 8)).astype(np.float32)
        y = rng.integers(0, 4, size=8)
        results = {}
        for dtype in (None, "fp16", "bf16"):
            world, replicas, controller = build(dtype)
            from repro.nn.loss import CrossEntropyLoss

            for m in replicas:
                loss = CrossEntropyLoss()
                m.zero_grad()
                loss(m(x), y)
                m.backward(loss.backward())
            controller.step()
            results[dtype] = [p.grad.copy() for p in replicas[0].parameters()]
            results[(dtype, "bytes")] = world.stats.bytes_by_phase["factor_comm"]
        shrink = np.dtype(DEFAULT_DTYPE).itemsize / 2
        for dtype in ("fp16", "bf16"):
            assert results[(dtype, "bytes")] == results[(None, "bytes")] / shrink
            for g_c, g_f in zip(results[dtype], results[None]):
                # eigendecompositions amplify small factor perturbations,
                # so compare direction and magnitude, not elementwise
                a, b = g_c.ravel(), g_f.ravel()
                cos = float(a @ b / (np.linalg.norm(a) * np.linalg.norm(b) + 1e-30))
                assert cos > 0.93, (dtype, cos)
                ratio = float(np.linalg.norm(a) / (np.linalg.norm(b) + 1e-30))
                assert 0.7 < ratio < 1.4, (dtype, ratio)
