"""Elastic fleet: portable checkpoints, fault injection, degradation.

Covers the three robustness layers end to end:

- fault/straggler injection through the simulated ``World`` and both
  driver styles (phase-controller lockstep, SPMD threads);
- bounded retry + stale-eigenbasis fallback, including the
  rank-death-past-the-retry-budget scenario completing a step on the
  last-known eigenbasis with the staleness counter surfaced in
  ``TrainingHistory``;
- world-size-portable checkpoints: the gather / redistribute-on-load
  round trip, the trainer-level save/resume bit-identity matrix, and the
  hypothesis coverage properties of :func:`repro.elastic.redistribution_plan`.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm.backend import World
from repro.comm.faults import CollectiveError
from repro.comm.horovod import HorovodContext
from repro.core.distributed import SPMDDriver
from repro.core.preconditioner import COMM_OPT, HYBRID, KFAC, KFACHyperParams, LAYER_WISE
from repro.elastic import (
    Checkpoint,
    CheckpointError,
    CollectiveFailure,
    ComputeJitter,
    FaultPlan,
    LatencySpike,
    RankDeath,
    RetryPolicy,
    StaleEigenbasisError,
    broadcast_scaler_state,
    gather_state_dict,
    redistribution_plan,
)
from repro.nn import Linear, Sequential
from repro.nn.loss import CrossEntropyLoss
from repro.parallel.trainer import DataParallelTrainer, TrainerConfig

RNG = np.random.default_rng(0)
X = RNG.normal(size=(84, 6)).astype(np.float32)
Y = (X.sum(axis=1) > 0).astype(np.int64)


def model_factory(rng: np.random.Generator) -> Sequential:
    return Sequential(Linear(6, 5, rng=rng), Linear(5, 4, rng=rng), Linear(4, 2, rng=rng))


def make_trainer(
    p: int,
    *,
    strategy: str = COMM_OPT,
    frac: float | None = None,
    epochs: int = 2,
    scheduler: str = "sync",
    fault_plan: FaultPlan | None = None,
    retry_policy: RetryPolicy | None = RetryPolicy(),
    max_eig_staleness: int = 3,
    kfac_update_freq: int = 1,
) -> DataParallelTrainer:
    hp = KFACHyperParams(
        strategy=strategy,
        grad_worker_frac=frac,
        kfac_update_freq=kfac_update_freq,
        fac_update_freq=1,
        damping=0.01,
        scheduler=scheduler,
        max_eig_staleness=max_eig_staleness,
    )
    return DataParallelTrainer(
        model_factory=model_factory,
        train_x=X,
        train_y=Y,
        val_x=X[:8],
        val_y=Y[:8],
        config=TrainerConfig(
            world_size=p,
            batch_size=6,
            epochs=epochs,
            kfac=hp,
            fault_plan=fault_plan,
            retry_policy=retry_policy,
        ),
    )


def flat_params(trainer: DataParallelTrainer) -> np.ndarray:
    return np.concatenate(
        [p.data.reshape(-1) for p in trainer.replicas[0].parameters()]
    )


# ----------------------------------------------------------------------
# fault plan semantics
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_jitter_fires_once_per_step_per_spec(self):
        plan = FaultPlan(jitter=(ComputeJitter(rank=0, seconds=0.5),))
        assert plan.apply(0, "eig_comm", (0, 1)) == 0.5
        assert plan.apply(0, "factor_comm", (0, 1)) == 0.0  # same step: spent
        assert plan.apply(1, "eig_comm", (0, 1)) == 0.5  # new step: fires again

    def test_jitter_rank_and_phase_filters(self):
        plan = FaultPlan(
            jitter=(ComputeJitter(rank=3, seconds=0.2, phases=("eig_comm",)),)
        )
        assert plan.apply(0, "eig_comm", (0, 1)) == 0.0  # rank 3 not in group
        assert plan.apply(0, "factor_comm", (0, 3)) == 0.0  # wrong phase
        assert plan.apply(0, "eig_comm", (2, 3)) == 0.2

    def test_failure_count_consumed_then_clean(self):
        plan = FaultPlan(failures=(CollectiveFailure(phase="factor_comm", count=2),))
        for _ in range(2):
            with pytest.raises(CollectiveError):
                plan.apply(0, "factor_comm", (0, 1))
        assert plan.apply(0, "factor_comm", (0, 1)) == 0.0
        assert plan.injected_failures == 2

    def test_rank_death_is_permanent(self):
        plan = FaultPlan(deaths=(RankDeath(rank=1, step=3),))
        assert plan.apply(2, "eig_comm", (0, 1)) == 0.0  # before death
        for step in (3, 4, 100):
            with pytest.raises(CollectiveError):
                plan.apply(step, "eig_comm", (0, 1))
        # groups that exclude the dead rank keep working
        assert plan.apply(5, "eig_comm", (0, 2)) == 0.0

    def test_spike_every(self):
        plan = FaultPlan(spikes=(LatencySpike(seconds=0.1, every=3),))
        fired = [plan.apply(s, "grad_allreduce", (0,)) for s in range(6)]
        assert fired == [0.1, 0.0, 0.0, 0.1, 0.0, 0.0]

    def test_reset_clears_consumption(self):
        plan = FaultPlan(failures=(CollectiveFailure(phase="eig_comm", count=1),))
        with pytest.raises(CollectiveError):
            plan.apply(0, "eig_comm", (0,))
        plan.reset()
        with pytest.raises(CollectiveError):
            plan.apply(0, "eig_comm", (0,))
        assert plan.injected_failures == 1  # counters restarted too


# ----------------------------------------------------------------------
# world integration
# ----------------------------------------------------------------------
class TestWorldFaultGate:
    def test_jitter_charged_into_phase_timer(self):
        world = World(2)
        world.fault_plan = FaultPlan(jitter=(ComputeJitter(rank=1, seconds=0.25),))
        world.begin_step(0)
        world.allreduce([np.ones(4, np.float32), np.ones(4, np.float32)])
        assert world.timers.as_dict()["allreduce"] >= 0.25

    def test_spmd_lockstep_failure_and_rewait_retry(self):
        """Every member observes the same failure; re-waiting re-posts."""

        def program(view):
            hvd = HorovodContext(view)
            view.world.fault_plan = FaultPlan(
                failures=(CollectiveFailure(phase="grad_allreduce", count=1),)
            )
            try:
                hvd.allreduce(np.ones(2, np.float32), name="g0", phase="grad_allreduce")
            except CollectiveError:
                pass
            else:  # pragma: no cover
                raise AssertionError("expected injected failure")
            out = hvd.allreduce(np.ones(2, np.float32), name="g1", phase="grad_allreduce")
            return float(out[0])

        assert World(2).run_spmd(program) == [1.0, 1.0]


# ----------------------------------------------------------------------
# retry + graceful degradation through the drivers
# ----------------------------------------------------------------------
class TestRetryAndDegradation:
    def test_transient_failure_is_retried_bitwise_clean(self):
        clean = make_trainer(2, epochs=1, fault_plan=None)
        h_clean = clean.train()
        plan = FaultPlan(
            failures=(CollectiveFailure(phase="factor_comm", step=1, count=1),)
        )
        faulty = make_trainer(2, epochs=1, fault_plan=plan)
        h_faulty = faulty.train()
        assert h_faulty.comm_retries == 1
        assert h_faulty.comm_fallbacks == 0
        assert np.array_equal(flat_params(clean), flat_params(faulty))
        assert [e.train_loss for e in h_clean.epochs] == [
            e.train_loss for e in h_faulty.epochs
        ]

    def test_eig_share_exhaustion_falls_back_to_stale_basis(self):
        # step 2 fails forever: all retries burn, the step completes on
        # the step-1 eigenbasis, and later refreshes clear the counter
        plan = FaultPlan(
            failures=(CollectiveFailure(phase="eig_comm", step=2, count=None),)
        )
        trainer = make_trainer(2, epochs=1, fault_plan=plan)
        history = trainer.train()
        assert history.comm_fallbacks >= 1
        assert history.kfac_stale_fallbacks >= 1
        assert history.kfac_staleness == {}  # cleared by later successes
        assert np.isfinite(history.epochs[0].train_loss)

    def test_rank_death_completes_via_stale_fallback(self):
        """Acceptance: rank death + retry exhaustion finishes the epoch on
        the last-known eigenbasis, staleness visible in TrainingHistory."""
        iters = 7  # 84 samples / 2 ranks / batch 6
        plan = FaultPlan(
            deaths=(RankDeath(rank=1, step=iters - 3, phases=("eig_comm",)),)
        )
        trainer = make_trainer(2, epochs=1, fault_plan=plan)
        history = trainer.train()
        # the last 3 eig refreshes all failed past the retry budget
        assert history.comm_fallbacks >= 3
        assert history.kfac_stale_fallbacks >= 3
        assert history.kfac_staleness  # non-empty: counters survived the run
        assert max(history.kfac_staleness.values()) == 3
        assert np.isfinite(history.epochs[0].train_loss)
        assert history.faults_injected > 0

    def test_staleness_past_bound_hard_fails(self):
        plan = FaultPlan(
            failures=(CollectiveFailure(phase="eig_comm", step=2, count=None),)
        )
        # step 2 fails forever *and* the bound is 0: first fallback raises
        trainer = make_trainer(
            2, epochs=1, fault_plan=plan, max_eig_staleness=0
        )
        with pytest.raises(StaleEigenbasisError):
            trainer.train()

    def test_no_prior_state_hard_fails(self):
        # the very first eigenbasis exchange fails: nothing to fall back to
        plan = FaultPlan(
            failures=(CollectiveFailure(phase="eig_comm", step=0, count=None),)
        )
        trainer = make_trainer(2, epochs=1, fault_plan=plan)
        with pytest.raises(StaleEigenbasisError):
            trainer.train()

    def test_non_fallback_phase_exhaustion_raises(self):
        # precond_comm (hybrid grad broadcast) is not a fallback phase:
        # losing it would diverge the replicas, so exhaustion re-raises
        plan = FaultPlan(
            failures=(CollectiveFailure(phase="precond_comm", step=1, count=None),)
        )
        trainer = make_trainer(
            4, strategy=HYBRID, frac=0.5, epochs=1, fault_plan=plan
        )
        with pytest.raises(CollectiveError):
            trainer.train()

    def test_retry_disabled_fails_fast(self):
        plan = FaultPlan(
            failures=(CollectiveFailure(phase="factor_comm", step=1, count=1),)
        )
        trainer = make_trainer(2, epochs=1, fault_plan=plan, retry_policy=None)
        with pytest.raises(CollectiveError):
            trainer.train()

    def test_hybrid_group_share_degrades(self):
        plan = FaultPlan(
            failures=(CollectiveFailure(phase="eig_comm", step=2, count=None),)
        )
        trainer = make_trainer(
            4, strategy=HYBRID, frac=0.5, epochs=1, fault_plan=plan
        )
        history = trainer.train()
        assert history.comm_fallbacks >= 1
        assert history.kfac_stale_fallbacks >= 1
        assert np.isfinite(history.epochs[0].train_loss)

    def test_spmd_driver_retries_transient_failure(self):
        def program(view):
            hvd = HorovodContext(view)
            rng = np.random.default_rng(0)
            model = Sequential(Linear(6, 4, rng=rng), Linear(4, 2, rng=rng))
            kfac = KFAC(
                model, rank=view.rank, world_size=view.world.size,
                kfac_update_freq=1, fac_update_freq=1, damping=0.01,
            )
            driver = SPMDDriver(kfac, hvd)
            loss = CrossEntropyLoss()
            view.world.fault_plan = FaultPlan(
                failures=(CollectiveFailure(phase="factor_comm", step=0, count=1),)
            )
            view.begin_step(0)
            x = np.random.default_rng(1).normal(size=(8, 6)).astype(np.float32)
            loss(model(x), np.arange(8) % 2)
            model.backward(loss.backward())
            driver.step()
            return driver.comm_retries, float(
                sum(abs(p.grad).sum() for p in model.parameters())
            )

        results = World(2).run_spmd(program)
        retries = [r for r, _ in results]
        checks = [c for _, c in results]
        assert all(r >= 1 for r in retries)
        assert checks[0] == checks[1]  # replicas stayed in lockstep


# ----------------------------------------------------------------------
# straggler sensitivity: graph scheduler absorbs lateness
# ----------------------------------------------------------------------
class TestStragglerSensitivity:
    @staticmethod
    def _exposed(p: int, scheduler: str, jitter: float) -> float:
        plan = None
        if jitter > 0:
            plan = FaultPlan(
                jitter=(
                    ComputeJitter(rank=p - 1, seconds=jitter, phases=("eig_comm",)),
                )
            )
        rng = np.random.default_rng(3)
        x = rng.normal(size=(64, 64)).astype(np.float32)
        y = (x.sum(axis=1) > 0).astype(np.int64)
        hp = KFACHyperParams(
            kfac_update_freq=1, fac_update_freq=1, damping=0.01, scheduler=scheduler
        )
        trainer = DataParallelTrainer(
            model_factory=lambda r: Sequential(
                Linear(64, 64, rng=r), Linear(64, 32, rng=r), Linear(32, 2, rng=r)
            ),
            train_x=x, train_y=y, val_x=x[:8], val_y=y[:8],
            config=TrainerConfig(
                world_size=p, batch_size=8, epochs=1, kfac=hp, fault_plan=plan
            ),
        )
        history = trainer.train()
        return sum(history.comm_seconds.values())

    def test_graph_strictly_less_sensitive_than_sync_at_p4(self):
        jitter = 1e-5
        sync = self._exposed(4, "sync", jitter) - self._exposed(4, "sync", 0.0)
        graph = self._exposed(4, "graph", jitter) - self._exposed(4, "graph", 0.0)
        assert sync > 0.0
        assert graph < sync

    def test_graph_fully_absorbs_small_jitter_at_p2(self):
        jitter = 1e-5
        sync = self._exposed(2, "sync", jitter) - self._exposed(2, "sync", 0.0)
        graph = self._exposed(2, "graph", jitter) - self._exposed(2, "graph", 0.0)
        assert sync > 0.0
        assert graph == 0.0


# ----------------------------------------------------------------------
# portable bundles
# ----------------------------------------------------------------------
def _warm_trainer(p: int, strategy: str = COMM_OPT, frac: float | None = None):
    trainer = make_trainer(p, strategy=strategy, frac=frac, epochs=1)
    trainer.train()
    return trainer


class TestPortableGather:
    def test_world_of_one_is_already_complete(self):
        trainer = _warm_trainer(1)
        bundle = gather_state_dict(trainer.kfacs[0])
        assert bundle["portable"] is True
        for entry in bundle["layers"].values():
            assert "eig_A_Q" in entry and "eig_G_Q" in entry

    def test_sharded_strategies_require_peers_or_hvd(self):
        trainer = _warm_trainer(2, strategy=LAYER_WISE)
        with pytest.raises(ValueError, match="peers"):
            gather_state_dict(trainer.kfacs[0])

    def test_peers_gather_completes_every_layer(self):
        for strategy, frac in ((LAYER_WISE, None), (HYBRID, 0.5)):
            trainer = _warm_trainer(4, strategy=strategy, frac=frac)
            bundle = gather_state_dict(trainer.kfacs[0], peers=trainer.kfacs)
            for name, entry in bundle["layers"].items():
                assert "eig_A_Q" in entry and "eig_G_Q" in entry, (strategy, name)

    def test_spmd_gather_matches_on_every_rank(self):
        def program(view):
            hvd = HorovodContext(view)
            rng = np.random.default_rng(0)
            model = Sequential(Linear(6, 4, rng=rng), Linear(4, 2, rng=rng))
            kfac = KFAC(
                model, rank=view.rank, world_size=view.world.size,
                kfac_update_freq=1, fac_update_freq=1, damping=0.01,
                grad_worker_frac=0.5,
            )
            driver = SPMDDriver(kfac, hvd)
            loss = CrossEntropyLoss()
            x = np.random.default_rng(1).normal(size=(8, 6)).astype(np.float32)
            loss(model(x), np.arange(8) % 2)
            model.backward(loss.backward())
            driver.step()
            return gather_state_dict(kfac, hvd=hvd)

        bundles = World(4).run_spmd(program)
        ref = bundles[0]
        for other in bundles[1:]:
            for name, entry in ref["layers"].items():
                assert set(entry) == set(other["layers"][name])
                for key, arr in entry.items():
                    got = other["layers"][name][key]
                    assert arr.dtype == got.dtype
                    assert np.array_equal(arr, got), (name, key)

    @pytest.mark.parametrize(
        "src,dst",
        [
            ((7, HYBRID, 0.5), (2, COMM_OPT, None)),
            ((2, COMM_OPT, None), (7, HYBRID, 0.5)),
        ],
    )
    def test_gather_load_regather_is_bitwise(self, src, dst):
        """Redistribute-on-load loses nothing: a fleet hydrated from a
        bundle re-gathers the identical bundle."""
        p_src, strat_src, frac_src = src
        p_dst, strat_dst, frac_dst = dst
        source = _warm_trainer(p_src, strategy=strat_src, frac=frac_src)
        bundle = gather_state_dict(source.kfacs[0], peers=source.kfacs)

        dest = make_trainer(p_dst, strategy=strat_dst, frac=frac_dst, epochs=1)
        for k in dest.kfacs:
            k.load_state_dict(bundle)
        regathered = gather_state_dict(dest.kfacs[0], peers=dest.kfacs)
        assert regathered["layers"].keys() == bundle["layers"].keys()
        for name, entry in bundle["layers"].items():
            got = regathered["layers"][name]
            assert set(entry) == set(got), name
            for key, arr in entry.items():
                assert arr.dtype == got[key].dtype, (name, key)
                assert np.array_equal(arr, got[key]), (name, key)

    def test_redistribute_hydrates_only_current_grad_workers(self):
        source = _warm_trainer(1)
        bundle = gather_state_dict(source.kfacs[0])
        dest = make_trainer(2, strategy=LAYER_WISE, epochs=1)
        for k in dest.kfacs:
            k.load_state_dict(bundle)
        for k in dest.kfacs:
            for layer in k.layers:
                owned = k.is_grad_worker(layer.name)
                assert (layer.eig_A is not None) == owned, (k.rank, layer.name)
                # running averages hydrate everywhere regardless
                assert layer.A is not None and layer.G is not None


# ----------------------------------------------------------------------
# trainer checkpoint matrix: resume == unbroken, bit for bit
# ----------------------------------------------------------------------
class TestTrainerCheckpointMatrix:
    CONFIGS = [
        (1, COMM_OPT, None),
        (2, COMM_OPT, None),
        (2, LAYER_WISE, None),
        (2, HYBRID, 0.5),
        (4, COMM_OPT, None),
        (4, LAYER_WISE, None),
        (4, HYBRID, 0.25),
        (4, HYBRID, 0.5),
        (7, HYBRID, 0.5),
    ]

    @pytest.mark.parametrize("p,strategy,frac", CONFIGS)
    def test_resume_bitwise_equals_unbroken(self, tmp_path, p, strategy, frac):
        unbroken = make_trainer(p, strategy=strategy, frac=frac, epochs=2)
        h_unbroken = unbroken.train()

        first = make_trainer(p, strategy=strategy, frac=frac, epochs=1)
        first.train()
        path = str(tmp_path / "mid.ckpt")
        first.save_checkpoint(path)

        resumed = make_trainer(p, strategy=strategy, frac=frac, epochs=2)
        step = resumed.load_checkpoint(path)
        assert step == first._global_step
        h_resumed = resumed.train()

        assert [e.epoch for e in h_resumed.epochs] == [1]
        assert h_resumed.epochs[0].train_loss == h_unbroken.epochs[1].train_loss
        assert np.array_equal(flat_params(unbroken), flat_params(resumed))

    @pytest.mark.parametrize(
        "src,dst",
        [
            ((7, HYBRID, 0.5), (2, COMM_OPT, None)),
            ((2, COMM_OPT, None), (7, HYBRID, 0.5)),
        ],
    )
    def test_cross_world_resume_is_deterministic(self, tmp_path, src, dst):
        """A HYBRID f=0.5 checkpoint at P=7 resumes at P=2 COMM_OPT (and
        vice versa): independent resumes are bit-identical, i.e. the file
        round trip adds no noise over the redistributed state."""
        p_src, strat_src, frac_src = src
        p_dst, strat_dst, frac_dst = dst
        source = make_trainer(p_src, strategy=strat_src, frac=frac_src, epochs=1)
        source.train()
        path = str(tmp_path / "cross.ckpt")
        source.save_checkpoint(path)

        runs = []
        for _ in range(2):
            dest = make_trainer(p_dst, strategy=strat_dst, frac=frac_dst, epochs=2)
            assert dest.load_checkpoint(path) == source._global_step
            history = dest.train()
            runs.append((flat_params(dest), [e.train_loss for e in history.epochs]))
        assert np.array_equal(runs[0][0], runs[1][0])
        assert runs[0][1] == runs[1][1]

    def test_scaler_state_round_trips(self, tmp_path):
        trainer = make_trainer(2, epochs=1)
        trainer.train()
        trainer.grad_scaler.load_state_dict(
            {
                "scale": 4096.0,
                "growth_tracker": 7,
                "steps_taken": 11,
                "steps_skipped": 2,
                "enabled": True,
            }
        )
        path = str(tmp_path / "scaler.ckpt")
        trainer.save_checkpoint(path)
        fresh = make_trainer(2, epochs=2)
        fresh.load_checkpoint(path)
        assert fresh.grad_scaler.scale == 4096.0
        assert fresh.grad_scaler.steps_taken == 11
        assert fresh.grad_scaler.steps_skipped == 2
        assert fresh.grad_scaler.enabled is True

    def test_spmd_scaler_broadcast(self):
        from repro.precision import GradScaler

        def program(view):
            hvd = HorovodContext(view)
            scaler = GradScaler(init_scale=float(2 ** (10 + view.rank)))
            broadcast_scaler_state(scaler, hvd, root=0)
            return scaler.scale

        assert World(3).run_spmd(program) == [1024.0, 1024.0, 1024.0]


class TestCheckpointFile:
    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(CheckpointError, match="no checkpoint"):
            Checkpoint(tmp_path / "absent.ckpt").load()

    def test_corrupt_file_raises(self, tmp_path):
        path = tmp_path / "corrupt.ckpt"
        path.write_bytes(b"not a pickle")
        with pytest.raises(CheckpointError):
            Checkpoint(path).load()

    def test_foreign_pickle_raises(self, tmp_path):
        path = tmp_path / "foreign.ckpt"
        path.write_bytes(pickle.dumps({"something": "else"}))
        with pytest.raises(CheckpointError, match="not a"):
            Checkpoint(path).load()

    def test_save_rejects_unstamped_payload(self, tmp_path):
        with pytest.raises(CheckpointError, match="capture"):
            Checkpoint(tmp_path / "x.ckpt").save({"step": 0})

    def test_atomic_save_leaves_no_temp_files(self, tmp_path):
        ckpt = Checkpoint(tmp_path / "clean.ckpt")
        ckpt.save(ckpt.capture(step=3))
        ckpt.save(ckpt.capture(step=4))  # overwrite is atomic too
        assert sorted(p.name for p in tmp_path.iterdir()) == ["clean.ckpt"]
        assert ckpt.load()["step"] == 4


# ----------------------------------------------------------------------
# strict load_state_dict (satellite fix)
# ----------------------------------------------------------------------
class TestStrictLoad:
    @staticmethod
    def _warm_kfac(n_layers: int = 2, world_size: int = 1, rank: int = 0) -> KFAC:
        rng = np.random.default_rng(0)
        layers = [Linear(4, 4, rng=rng) for _ in range(n_layers)]
        model = Sequential(*layers)
        kfac = KFAC(
            model, rank=rank, world_size=world_size,
            kfac_update_freq=1, fac_update_freq=1, damping=0.01,
        )
        if world_size == 1:
            loss = CrossEntropyLoss()
            x = rng.normal(size=(8, 4)).astype(np.float32)
            loss(model(x), np.arange(8) % 4)
            model.backward(loss.backward())
            kfac.step()
        return kfac

    def test_missing_layer_raises_by_default(self):
        state = self._warm_kfac(n_layers=2).state_dict()
        del state["layers"]["m1"]
        target = self._warm_kfac(n_layers=2)
        with pytest.raises(KeyError, match="missing"):
            target.load_state_dict(state)
        target.load_state_dict(state, strict=False)  # intersection is fine

    def test_unknown_layer_raises_by_default(self):
        state = self._warm_kfac(n_layers=2).state_dict()
        state["layers"]["ghost"] = dict(state["layers"]["m0"])
        target = self._warm_kfac(n_layers=2)
        with pytest.raises(KeyError, match="unknown"):
            target.load_state_dict(state)
        target.load_state_dict(state, strict=False)

    def test_world_size_mismatch_raises_with_pointer_to_gather(self):
        state = self._warm_kfac(world_size=1).state_dict()
        assert state["portable"] is False
        assert state["placement"]["world_size"] == 1
        target = self._warm_kfac(world_size=2, rank=0)
        with pytest.raises(ValueError, match="gather_state_dict"):
            target.load_state_dict(state)
        target.load_state_dict(state, strict=False)  # escape hatch

    def test_portable_bundle_crosses_world_sizes_strictly(self):
        kfac = self._warm_kfac(world_size=1)
        bundle = gather_state_dict(kfac)
        target = self._warm_kfac(world_size=3, rank=1)
        target.load_state_dict(bundle)  # strict, but portable: accepted
        assert target.steps == kfac.steps


# ----------------------------------------------------------------------
# redistribution plan properties
# ----------------------------------------------------------------------
LAYER_NAMES = st.integers(1, 8).map(lambda n: [f"layer{i}" for i in range(n)])


class TestRedistributionPlan:
    @settings(max_examples=40, deadline=None)
    @given(names=LAYER_NAMES, p=st.integers(1, 8))
    def test_comm_opt_replicates_everywhere(self, names, p):
        plan = redistribution_plan(names, p, COMM_OPT)
        assert set(plan) == set(range(p))
        for held in plan.values():
            assert list(held) == names

    @settings(max_examples=40, deadline=None)
    @given(names=LAYER_NAMES, p=st.integers(1, 8))
    def test_layer_wise_covers_each_layer_exactly_once(self, names, p):
        plan = redistribution_plan(names, p, LAYER_WISE)
        counts = {n: 0 for n in names}
        for held in plan.values():
            for name in held:
                counts[name] += 1
        assert all(c == 1 for c in counts.values())

    @settings(max_examples=40, deadline=None)
    @given(
        names=LAYER_NAMES,
        p=st.integers(1, 8),
        num=st.integers(1, 8),
    )
    def test_hybrid_covers_each_layer_group_size_times(self, names, p, num):
        from repro.core.assignment import grad_worker_count

        frac = min(1.0, num / p)
        plan = redistribution_plan(names, p, HYBRID, grad_worker_frac=frac)
        g = grad_worker_count(p, frac)
        counts = {n: 0 for n in names}
        for held in plan.values():
            for name in held:
                counts[name] += 1
        assert all(c == g for c in counts.values()), (p, frac, counts)

    @settings(max_examples=15, deadline=None)
    @given(
        n_layers=st.integers(1, 4),
        p=st.integers(1, 6),
        num=st.integers(0, 6),
    )
    def test_plan_agrees_with_kfac_is_grad_worker(self, n_layers, p, num):
        """The pure-metadata plan is exactly the hydration rule the
        redistribute-on-load path applies rank by rank."""
        rng = np.random.default_rng(0)
        model = Sequential(*[Linear(3, 3, rng=rng) for _ in range(n_layers)])
        frac = None if num == 0 else min(1.0, max(num, 1) / p)
        kfac = KFAC(
            model, rank=0, world_size=p, damping=0.01, grad_worker_frac=frac,
        )
        names = [l.name for l in kfac.layers]
        plan = redistribution_plan(
            names, p, kfac.hp.strategy, grad_worker_frac=kfac.hp.grad_worker_frac
        )
        for rank in range(p):
            derived = tuple(
                n for n in names if kfac.is_grad_worker(n, rank=rank)
            )
            assert plan[rank] == derived, (rank, kfac.hp.strategy)
