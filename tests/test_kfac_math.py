"""K-FAC factor and inverse math against dense references.

These are the correctness anchors listed in DESIGN.md §4:

- single-sample Kronecker identity: ``vec(g a^T) vec(g a^T)^T == G (x) A``;
- the eigendecomposition path equals the *exact* dense Tikhonov-damped
  inverse ``(G (x) A + gamma I)^{-1} vec(grad)``;
- the explicit-inverse path equals the *factored* damped operator
  ``(G + gamma I)^{-1} (x) (A + gamma I)^{-1}`` — a different operator,
  which is the whole point of the paper's Table I.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.factors import (
    append_bias_column,
    conv2d_factor_A,
    conv2d_factor_G,
    ema_update,
    linear_factor_A,
    linear_factor_G,
)
from repro.core.inverse import (
    dense_damped_inverse_apply,
    dense_fisher_block,
    eigendecompose,
    explicit_damped_inverse,
    precondition_eigen,
    precondition_inverse,
)


class TestFactors:
    def test_linear_A_shape_and_symmetry(self, rng):
        a = rng.normal(size=(16, 5)).astype(np.float32)
        A = linear_factor_A(a, has_bias=True)
        assert A.shape == (6, 6)
        np.testing.assert_allclose(A, A.T, rtol=1e-6)
        # bias corner is E[1*1] = 1
        assert A[-1, -1] == pytest.approx(1.0)

    def test_linear_factors_psd(self, rng):
        a = rng.normal(size=(8, 4))
        g = rng.normal(size=(8, 3))
        for m in (linear_factor_A(a, True), linear_factor_G(g)):
            eig = np.linalg.eigvalsh(m)
            assert eig.min() > -1e-10

    def test_single_sample_kronecker_identity(self, rng):
        """For one sample: Fisher block == G (x) A exactly (row-major vec)."""
        a = rng.normal(size=(1, 4))
        g = rng.normal(size=(1, 3))
        grad = g.T @ a  # dW for the summed loss of this single sample
        fisher = np.outer(grad.reshape(-1), grad.reshape(-1))
        A = linear_factor_A(a, has_bias=False)
        G = linear_factor_G(g, batch_averaged=False)
        np.testing.assert_allclose(fisher, dense_fisher_block(A, G), rtol=1e-10)

    def test_batch_averaged_matches_de_averaged(self, rng):
        """G from mean-loss grads (xN) == G from per-example sum-loss grads."""
        n = 8
        g_sum = rng.normal(size=(n, 3))  # per-example grads of summed loss
        g_mean = g_sum / n  # what backprop of the mean loss yields
        G1 = linear_factor_G(g_mean, batch_averaged=True)
        G2 = (g_sum.T @ g_sum) / n
        np.testing.assert_allclose(G1, G2, rtol=1e-10)

    def test_conv_A_matches_manual_patches(self, rng):
        from repro.tensor.im2col import im2col

        x = rng.normal(size=(2, 3, 6, 6)).astype(np.float32)
        A = conv2d_factor_A(x, (3, 3), (1, 1), (1, 1), has_bias=True)
        patches = append_bias_column(im2col(x, (3, 3), (1, 1), (1, 1)))
        want = patches.T @ patches / patches.shape[0]
        np.testing.assert_allclose(A, want, rtol=1e-5)
        assert A.shape == (3 * 9 + 1, 3 * 9 + 1)

    def test_conv_G_shape(self, rng):
        g = rng.normal(size=(4, 5, 3, 3)).astype(np.float32)
        G = conv2d_factor_G(g)
        assert G.shape == (5, 5)
        np.testing.assert_allclose(G, G.T, rtol=1e-6)

    def test_factor_averaging_equals_full_batch(self, rng):
        """Average of per-shard factors == factor of the full batch (the
        property that makes Algorithm 1's factor allreduce exact)."""
        a = rng.normal(size=(16, 5))
        shard_A = [linear_factor_A(a[:8], True), linear_factor_A(a[8:], True)]
        np.testing.assert_allclose(
            (shard_A[0] + shard_A[1]) / 2, linear_factor_A(a, True), rtol=1e-10
        )

    def test_validation_errors(self, rng):
        with pytest.raises(ValueError):
            linear_factor_A(rng.normal(size=(3,)), True)
        with pytest.raises(ValueError):
            linear_factor_G(rng.normal(size=(3, 2, 2)))
        with pytest.raises(ValueError):
            conv2d_factor_G(rng.normal(size=(3, 2)))


class TestEMA:
    def test_first_call_adopts_value(self, rng):
        new = rng.normal(size=(3, 3))
        out = ema_update(None, new, 0.95)
        np.testing.assert_array_equal(out, new)
        assert out is not new

    def test_update_formula(self):
        ema = np.ones((2, 2))
        out = ema_update(ema, np.zeros((2, 2)), 0.9)
        np.testing.assert_allclose(out, np.full((2, 2), 0.9))
        assert out is ema  # in place

    def test_converges_to_constant_signal(self):
        ema = None
        target = np.full((2,), 5.0)
        for _ in range(200):
            ema = ema_update(ema, target, 0.9)
        np.testing.assert_allclose(ema, target, rtol=1e-8)

    def test_invalid_decay(self):
        with pytest.raises(ValueError):
            ema_update(None, np.zeros(1), 1.0)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            ema_update(np.zeros(2), np.zeros(3), 0.9)


def _random_psd(rng, n):
    m = rng.normal(size=(n, n))
    return (m @ m.T / n + 0.01 * np.eye(n)).astype(np.float64)


class TestEigendecomposition:
    def test_reconstruction(self, rng):
        m = _random_psd(rng, 6)
        eig = eigendecompose(m)
        np.testing.assert_allclose(eig.Q @ np.diag(eig.lam) @ eig.Q.T, m, rtol=1e-8, atol=1e-10)

    def test_negative_eigenvalues_clipped(self):
        m = np.diag([1.0, -1e-9])
        eig = eigendecompose(m)
        assert eig.lam.min() >= 0.0

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            eigendecompose(np.zeros((2, 3)))


class TestPreconditioningPaths:
    @settings(max_examples=20, deadline=None)
    @given(
        d_out=st.integers(2, 5),
        d_in=st.integers(2, 5),
        gamma=st.floats(1e-4, 1.0),
        seed=st.integers(0, 10_000),
    )
    def test_eigen_path_is_exact_tikhonov(self, d_out, d_in, gamma, seed):
        """Eqs. 13-15 == dense (F + gamma I)^{-1} vec(grad)."""
        rng = np.random.default_rng(seed)
        A = _random_psd(rng, d_in)
        G = _random_psd(rng, d_out)
        grad = rng.normal(size=(d_out, d_in))
        fast = precondition_eigen(grad, eigendecompose(A), eigendecompose(G), gamma)
        dense = dense_damped_inverse_apply(grad, A, G, gamma)
        np.testing.assert_allclose(fast, dense, rtol=1e-6, atol=1e-9)

    def test_inverse_path_is_factored_damping(self, rng):
        """Eq. 12 == kron((G+cI)^-1, (A+cI)^-1) applied to vec(grad)."""
        gamma = 0.1
        A = _random_psd(rng, 4)
        G = _random_psd(rng, 3)
        grad = rng.normal(size=(3, 4))
        fast = precondition_inverse(
            grad, explicit_damped_inverse(A, gamma), explicit_damped_inverse(G, gamma)
        )
        dense_op = np.kron(
            np.linalg.inv(G + gamma * np.eye(3)), np.linalg.inv(A + gamma * np.eye(4))
        )
        np.testing.assert_allclose(fast.reshape(-1), dense_op @ grad.reshape(-1), rtol=1e-7)

    def test_paths_differ_under_damping(self, rng):
        """The two operators are genuinely different (Table I's subject)."""
        gamma = 0.5
        A = _random_psd(rng, 4)
        G = _random_psd(rng, 4)
        grad = rng.normal(size=(4, 4))
        eig_out = precondition_eigen(grad, eigendecompose(A), eigendecompose(G), gamma)
        inv_out = precondition_inverse(
            grad, explicit_damped_inverse(A, gamma), explicit_damped_inverse(G, gamma)
        )
        assert not np.allclose(eig_out, inv_out, rtol=1e-3)

    def test_paths_agree_as_damping_vanishes(self, rng):
        """With well-conditioned factors and tiny gamma, both approximate
        the undamped Kronecker inverse."""
        gamma = 1e-8
        A = _random_psd(rng, 3) + np.eye(3)
        G = _random_psd(rng, 3) + np.eye(3)
        grad = rng.normal(size=(3, 3))
        eig_out = precondition_eigen(grad, eigendecompose(A), eigendecompose(G), gamma)
        inv_out = precondition_inverse(
            grad, explicit_damped_inverse(A, gamma), explicit_damped_inverse(G, gamma)
        )
        np.testing.assert_allclose(eig_out, inv_out, rtol=1e-4)

    def test_large_damping_approaches_scaled_gradient(self, rng):
        """gamma -> inf: (F + gamma I)^{-1} grad -> grad / gamma."""
        gamma = 1e8
        A = _random_psd(rng, 3)
        G = _random_psd(rng, 3)
        grad = rng.normal(size=(3, 3))
        out = precondition_eigen(grad, eigendecompose(A), eigendecompose(G), gamma)
        np.testing.assert_allclose(out, grad / gamma, rtol=1e-4)

    def test_shape_validation(self, rng):
        A = _random_psd(rng, 3)
        G = _random_psd(rng, 2)
        with pytest.raises(ValueError):
            precondition_eigen(
                rng.normal(size=(3, 3)), eigendecompose(A), eigendecompose(G), 0.1
            )
        with pytest.raises(ValueError):
            precondition_inverse(rng.normal(size=(3, 3)), A, np.eye(2))

    def test_eigen_requires_positive_damping(self, rng):
        A = _random_psd(rng, 2)
        with pytest.raises(ValueError):
            precondition_eigen(np.ones((2, 2)), eigendecompose(A), eigendecompose(A), 0.0)

    def test_singular_factor_explicit_inverse_fallback(self):
        """Singular damped factor falls back to pinv without exploding."""
        m = np.zeros((3, 3))
        out = explicit_damped_inverse(m, 0.0)
        assert np.isfinite(out).all()
