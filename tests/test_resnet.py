"""ResNet construction, shape propagation, and spec cross-validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.resnet import (
    ResNetConfig,
    build_resnet,
    resnet20_cifar,
    resnet32_cifar,
    resnet50,
)
from repro.perfmodel.specs import cifar_resnet_spec, resnet_spec


class TestCifarResNets:
    def test_forward_backward_shapes(self, rng):
        model = resnet20_cifar(rng, width_multiplier=0.25)
        x = rng.normal(size=(2, 3, 16, 16)).astype(np.float32)
        out = model(x)
        assert out.shape == (2, 10)
        dx = model.backward(np.ones_like(out))
        assert dx.shape == x.shape

    def test_depth_arithmetic(self, rng):
        m20 = resnet20_cifar(rng, width_multiplier=0.25)
        m32 = resnet32_cifar(rng, width_multiplier=0.25)
        conv_count_20 = sum(1 for _, m in m20.named_modules() if type(m).__name__ == "Conv2d")
        conv_count_32 = sum(1 for _, m in m32.named_modules() if type(m).__name__ == "Conv2d")
        # 6n+2: 20 -> n=3 (18 block convs + stem + shortcuts), 32 -> n=5
        assert conv_count_32 > conv_count_20

    def test_invalid_depth_raises(self):
        with pytest.raises(ValueError):
            build_resnet(
                ResNetConfig(
                    block="basic", stage_blocks=(1,), stage_widths=(8,), stem="bogus"
                )
            )

    def test_param_count_matches_spec(self, rng):
        """The symbolic spec walk must agree with the built model."""
        model = resnet20_cifar(rng)
        spec = cifar_resnet_spec(20)
        assert model.num_parameters() == spec.total_params

    def test_param_count_matches_spec_r32(self, rng):
        model = resnet32_cifar(rng)
        spec = cifar_resnet_spec(32)
        assert model.num_parameters() == spec.total_params

    def test_gradient_flows_everywhere(self, rng):
        model = resnet20_cifar(rng, width_multiplier=0.25)
        x = rng.normal(size=(4, 3, 8, 8)).astype(np.float32)
        out = model(x)
        model.backward(rng.normal(size=out.shape).astype(np.float32))
        for name, p in model.named_parameters():
            assert np.abs(p.grad).sum() > 0, f"no gradient reached {name}"

    def test_width_multiplier_scales_params(self, rng):
        full = resnet20_cifar(np.random.default_rng(0))
        half = resnet20_cifar(np.random.default_rng(0), width_multiplier=0.5)
        assert half.num_parameters() < full.num_parameters() / 2.5


class TestImageNetResNets:
    def test_resnet50_param_count_exact(self, rng):
        """Matches torchvision's 25,557,032 (and our spec module)."""
        model = resnet50(rng)
        spec = resnet_spec(50)
        assert model.num_parameters() == spec.total_params == 25_557_032

    def test_bottleneck_forward_small_input(self, rng):
        model = resnet50(rng, num_classes=5)
        x = rng.normal(size=(1, 3, 32, 32)).astype(np.float32)
        out = model(x)
        assert out.shape == (1, 5)

    def test_bottleneck_backward(self, rng):
        model = resnet50(rng, num_classes=4)
        x = rng.normal(size=(1, 3, 32, 32)).astype(np.float32)
        out = model(x)
        dx = model.backward(np.ones_like(out))
        assert dx.shape == x.shape
        assert np.isfinite(dx).all()


class TestSpecWalk:
    @pytest.mark.parametrize(
        "depth,params",
        [(34, 21_797_672), (50, 25_557_032), (101, 44_549_160), (152, 60_192_808)],
    )
    def test_known_param_counts(self, depth, params):
        assert resnet_spec(depth).total_params == params

    def test_spatial_sizes_r50(self):
        spec = resnet_spec(50)
        by_name = {l.name: l for l in spec.kfac_layers}
        assert by_name["stem.conv"].spatial_positions == 112 * 112
        assert by_name["stage0.block0.conv1"].spatial_positions == 56 * 56
        assert by_name["stage3.block0.conv2"].spatial_positions == 7 * 7
        assert by_name["fc"].spatial_positions == 1

    def test_factor_dims_r50(self):
        spec = resnet_spec(50)
        by_name = {l.name: l for l in spec.kfac_layers}
        # bottleneck 3x3 at width 512: a = 512*9 (bias-free), g = 512
        assert by_name["stage3.block0.conv2"].a_dim == 4608
        assert by_name["stage3.block0.conv2"].g_dim == 512
        # classifier with bias
        assert by_name["fc"].a_dim == 2049
        assert by_name["fc"].g_dim == 1000

    def test_layer_counts(self):
        # conv layers (incl. shortcuts) + fc
        assert len(resnet_spec(50).kfac_layers) == 54
        assert len(resnet_spec(101).kfac_layers) == 105
        assert len(resnet_spec(152).kfac_layers) == 156

    def test_unknown_depth_raises(self):
        with pytest.raises(ValueError):
            resnet_spec(77)

    def test_cifar_spec_depth_validation(self):
        with pytest.raises(ValueError):
            cifar_resnet_spec(21)
