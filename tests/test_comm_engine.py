"""The pipelined communication engine: bucketing, async handles, overlap."""

from __future__ import annotations

import numpy as np
import pytest

from repro.comm.backend import World
from repro.comm.engine import (
    CommEngine,
    estimate_second_order_seconds,
    partition_buckets,
)


class TestPartitionBuckets:
    def test_respects_capacity(self):
        # 3 x 100B items with 200B buckets -> [0,1] then [2]
        assert partition_buckets([100, 100, 100], 200) == [[0, 1], [2]]

    def test_oversized_item_gets_own_bucket(self):
        assert partition_buckets([50, 500, 50], 100) == [[0], [1], [2]]

    def test_single_bucket_when_under_capacity(self):
        assert partition_buckets([10, 10, 10], 1 << 20) == [[0, 1, 2]]

    def test_empty(self):
        assert partition_buckets([], 100) == []

    def test_order_preserved(self):
        buckets = partition_buckets([60, 60, 60, 60], 100)
        assert [i for b in buckets for i in b] == [0, 1, 2, 3]

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            partition_buckets([1], 0)


class TestEstimate:
    def test_deterministic_and_monotone(self):
        small = estimate_second_order_seconds([16])
        big = estimate_second_order_seconds([64])
        assert 0 < small < big
        assert estimate_second_order_seconds([16]) == small

    def test_inverse_cheaper_than_eigen(self):
        assert estimate_second_order_seconds([64], eigen=False) < (
            estimate_second_order_seconds([64], eigen=True)
        )

    def test_empty_is_zero(self):
        assert estimate_second_order_seconds([]) == 0.0


class TestAsyncWorld:
    def test_async_allreduce_matches_sync_values(self, rng):
        w_sync, w_async = World(3), World(3)
        bufs = [rng.normal(size=8) for _ in range(3)]
        expected = w_sync.allreduce([b.copy() for b in bufs])
        handle = w_async.allreduce_async([b.copy() for b in bufs])
        out = handle.wait()
        for a, b in zip(out, expected):
            np.testing.assert_allclose(a, b, rtol=1e-12)

    def test_overlap_splits_exposed_and_hidden(self, rng):
        w = World(2)
        bufs = [rng.normal(size=1024) for _ in range(2)]
        handle = w.allreduce_async(bufs, phase="p")
        t = handle.comm_seconds
        assert t > 0
        handle.wait(overlap_seconds=t / 2)
        assert w.overlap.hidden("p") == pytest.approx(t / 2)
        assert w.overlap.exposed("p") == pytest.approx(t / 2)
        assert w.overlap.total("p") == pytest.approx(t)
        # exposed time is what lands in the phase timers
        assert w.timers.total("p") == pytest.approx(t / 2)

    def test_overlap_budget_capped_at_comm_time(self, rng):
        w = World(2)
        handle = w.allreduce_async([rng.normal(size=64) for _ in range(2)], phase="p")
        handle.wait(overlap_seconds=1e9)
        assert w.overlap.exposed("p") == 0.0
        assert w.overlap.hidden("p") == pytest.approx(handle.comm_seconds)

    def test_double_wait_settles_once(self, rng):
        w = World(2)
        handle = w.allgather_async([rng.normal(size=4) for _ in range(2)], phase="g")
        handle.wait()
        handle.wait()
        assert w.overlap.total("g") == pytest.approx(handle.comm_seconds)

    def test_sync_ops_are_fully_exposed(self, rng):
        w = World(2)
        w.allreduce([rng.normal(size=16) for _ in range(2)], phase="p")
        assert w.overlap.hidden("p") == 0.0
        assert w.overlap.exposed("p") == pytest.approx(w.timers.total("p"))


class TestCommEngine:
    def test_fusion_buffers_are_persistent(self):
        engine = CommEngine(World(2), bucket_bytes=1 << 20)
        fb1 = engine.fusion(op="average", phase="grad_allreduce")
        fb2 = engine.fusion(op="average", phase="grad_allreduce")
        assert fb1 is fb2
        assert engine.fusion(op="sum", phase="grad_allreduce") is not fb1

    def test_fusion_inherits_bucket_policy(self):
        engine = CommEngine(World(2), bucket_bytes=4096)
        assert engine.fusion().capacity_bytes == 4096

    def test_in_flight_tracking_and_wait_all(self, rng):
        w = World(2)
        engine = CommEngine(w)
        engine.allreduce_async([rng.normal(size=8) for _ in range(2)], phase="a")
        engine.allgather_async([rng.normal(size=4) for _ in range(2)], phase="b")
        assert engine.in_flight == 2
        engine.wait_all()
        assert engine.in_flight == 0
        assert w.overlap.exposed("a") > 0 and w.overlap.exposed("b") > 0

    def test_make_buckets_uses_engine_policy(self, rng):
        engine = CommEngine(World(2), bucket_bytes=100)
        arrays = [np.zeros(10), np.zeros(10), np.zeros(10)]  # 80B each
        assert engine.make_buckets(arrays) == [[0], [1], [2]]

    def test_overlap_report(self, rng):
        w = World(2)
        engine = CommEngine(w)
        engine.allreduce_async([rng.normal(size=8) for _ in range(2)], phase="p").wait(1e9)
        report = engine.overlap_report()
        assert report["p"]["exposed"] == 0.0
        assert report["p"]["hidden"] > 0.0
        assert engine.hidden_seconds("p") == report["p"]["hidden"]
        assert engine.exposed_seconds("p") == 0.0

    def test_invalid_bucket_bytes(self):
        with pytest.raises(ValueError):
            CommEngine(World(1), bucket_bytes=0)
