"""im2col / col2im correctness and adjointness."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tensor.im2col import col2im, conv_out_size, im2col


def naive_im2col(x, kh, kw, sh, sw, ph, pw):
    n, c, h, w = x.shape
    oh = (h + 2 * ph - kh) // sh + 1
    ow = (w + 2 * pw - kw) // sw + 1
    xp = np.pad(x, ((0, 0), (0, 0), (ph, ph), (pw, pw)))
    out = np.zeros((n * oh * ow, c * kh * kw), dtype=x.dtype)
    row = 0
    for b in range(n):
        for i in range(oh):
            for j in range(ow):
                patch = xp[b, :, i * sh : i * sh + kh, j * sw : j * sw + kw]
                out[row] = patch.reshape(-1)
                row += 1
    return out


class TestConvOutSize:
    def test_basic(self):
        assert conv_out_size(8, 3, 1, 1) == 8
        assert conv_out_size(8, 3, 2, 1) == 4
        assert conv_out_size(224, 7, 2, 3) == 112

    def test_invalid_raises(self):
        with pytest.raises(ValueError):
            conv_out_size(2, 5, 1, 0)


class TestIm2col:
    @pytest.mark.parametrize(
        "shape,k,s,p",
        [
            ((2, 3, 8, 8), (3, 3), (1, 1), (1, 1)),
            ((1, 2, 7, 9), (3, 2), (2, 1), (0, 1)),
            ((3, 1, 5, 5), (1, 1), (1, 1), (0, 0)),
            ((2, 4, 6, 6), (3, 3), (2, 2), (1, 1)),
            ((1, 3, 10, 10), (5, 5), (3, 3), (2, 2)),
        ],
    )
    def test_matches_naive(self, shape, k, s, p):
        rng = np.random.default_rng(0)
        x = rng.normal(size=shape).astype(np.float32)
        got = im2col(x, k, s, p)
        want = naive_im2col(x, k[0], k[1], s[0], s[1], p[0], p[1])
        np.testing.assert_array_equal(got, want)

    def test_rejects_non_4d(self):
        with pytest.raises(ValueError):
            im2col(np.zeros((3, 3)), (1, 1), (1, 1), (0, 0))

    def test_identity_kernel(self):
        """1x1 kernel, stride 1: rows are just channel vectors per pixel."""
        rng = np.random.default_rng(1)
        x = rng.normal(size=(2, 3, 4, 4)).astype(np.float32)
        cols = im2col(x, (1, 1), (1, 1), (0, 0))
        want = x.transpose(0, 2, 3, 1).reshape(-1, 3)
        np.testing.assert_array_equal(cols, want)


class TestCol2im:
    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            col2im(np.zeros((5, 9)), (1, 1, 4, 4), (3, 3), (1, 1), (1, 1))

    def test_non_overlapping_roundtrip(self):
        """With stride == kernel and no padding, col2im inverts im2col."""
        rng = np.random.default_rng(2)
        x = rng.normal(size=(2, 3, 6, 6)).astype(np.float32)
        cols = im2col(x, (2, 2), (2, 2), (0, 0))
        back = col2im(cols, x.shape, (2, 2), (2, 2), (0, 0))
        np.testing.assert_allclose(back, x, rtol=1e-6)

    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(1, 3),
        c=st.integers(1, 3),
        size=st.integers(4, 9),
        k=st.integers(1, 3),
        s=st.integers(1, 2),
        p=st.integers(0, 1),
        seed=st.integers(0, 10_000),
    )
    def test_adjoint_property(self, n, c, size, k, s, p, seed):
        """<im2col(x), y> == <x, col2im(y)> for all x, y (true adjoint)."""
        if size + 2 * p < k:
            return
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(n, c, size, size))
        oh = conv_out_size(size, k, s, p)
        ow = conv_out_size(size, k, s, p)
        y = rng.normal(size=(n * oh * ow, c * k * k))
        lhs = float((im2col(x, (k, k), (s, s), (p, p)) * y).sum())
        rhs = float((x * col2im(y, x.shape, (k, k), (s, s), (p, p))).sum())
        assert lhs == pytest.approx(rhs, rel=1e-9, abs=1e-9)
