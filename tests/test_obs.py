"""Observability (``repro.obs``): tracer, metrics registry, drift report.

Covers the acceptance guarantees of the tracing subsystem:

1. Chrome-trace export is schema-valid for arbitrary recording sequences
   (hypothesis round-trip), with per-rank monotone timestamps and every
   flow arrow's ``"f"`` end preceded by its ``"s"`` start;
2. lockstep determinism — two runs of the same SPMD program on the
   simulated clock produce *identical* canonical span lists;
3. reconciliation — a traced P=4 HYBRID ``scheduler="graph"`` training
   run's per-phase span sums equal the ``TrainingHistory`` comm ledgers
   to 1e-9 (exactly, in fact: the spans are recorded at the ledger
   charge sites with the same floats in the same order);
4. zero cost when disabled — a run without a tracer produces a history
   equal to the traced run's, field for field;
5. the unified metrics registry and the modeled-vs-measured drift report.
"""

from __future__ import annotations

import io
import json
import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm.backend import OverlapStats, World
from repro.comm.engine import task_overlap_profile
from repro.comm.faults import (
    CollectiveFailure,
    ComputeJitter,
    FaultPlan,
    RetryPolicy,
)
from repro.comm.horovod import HorovodContext
from repro.core.distributed import PhaseController, SPMDDriver
from repro.core.preconditioner import KFAC, KFACHyperParams
from repro.nn.loss import CrossEntropyLoss
from repro.obs import (
    MetricsRegistry,
    NULL_TRACER,
    Tracer,
    fig1_drift_report,
    validate_chrome_trace,
)
from repro.optim.sgd import SGD
from repro.parallel.trainer import DataParallelTrainer, TrainerConfig
from repro.perfmodel.hardware import FRONTERA_LIKE, V100_LIKE
from repro.perfmodel.iteration import IterationModel, KfacIntervals
from repro.perfmodel.specs import resnet_spec
from repro.utils.logging import Logger
from tests.conftest import build_tiny_cnn

# ----------------------------------------------------------------------
# hypothesis: arbitrary recording sequences -> valid Chrome traces
# ----------------------------------------------------------------------

#: one recording op: ("span", rank, duration) | ("launch", rank) | ("wait", rank)
_OPS = st.lists(
    st.one_of(
        st.tuples(
            st.just("span"),
            st.integers(0, 3),
            st.floats(0.0, 1.0, allow_nan=False, allow_infinity=False),
        ),
        st.tuples(st.just("launch"), st.integers(0, 3), st.just(0.0)),
        st.tuples(st.just("wait"), st.integers(0, 3), st.just(0.0)),
    ),
    max_size=60,
)


def _replay(ops) -> Tracer:
    """Replay a generated op sequence; waits fire only for open launches."""
    tr = Tracer()
    pending = {r: 0 for r in range(4)}
    for kind, rank, dur in ops:
        if kind == "span":
            tr.span("work", "task", rank, duration=dur)
        elif kind == "launch":
            tr.launch(rank, f"op:{rank}", attrs={"bytes": 128.0})
            pending[rank] += 1
        elif pending[rank] > 0:
            tr.wait(rank, f"op:{rank}", duration=dur)
            pending[rank] -= 1
    return tr


class TestChromeTraceRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(_OPS)
    def test_export_is_schema_valid(self, ops):
        tr = _replay(ops)
        trace = tr.to_chrome()
        assert validate_chrome_trace(trace) == len(trace["traceEvents"])

    @settings(max_examples=60, deadline=None)
    @given(_OPS)
    def test_json_round_trip_preserves_trace(self, ops):
        tr = _replay(ops)
        assert json.loads(tr.to_json()) == tr.to_chrome()

    @settings(max_examples=60, deadline=None)
    @given(_OPS)
    def test_per_rank_timestamps_monotone(self, ops):
        tr = _replay(ops)
        cursor: dict[int, float] = {}
        for ev in tr.to_chrome()["traceEvents"]:
            if ev["ph"] != "X":
                continue
            # same float slack as validate_chrome_trace: µs conversion of
            # exact sim-clock sums can wobble in the last bit
            assert ev["ts"] >= cursor.get(ev["pid"], 0.0) - 1e-9
            assert ev["dur"] >= 0.0
            cursor[ev["pid"]] = ev["ts"] + ev["dur"]

    @settings(max_examples=60, deadline=None)
    @given(_OPS)
    def test_flow_waits_follow_their_launches(self, ops):
        tr = _replay(ops)
        opened: set[str] = set()
        for ev in tr.to_chrome()["traceEvents"]:
            if ev["ph"] == "s":
                assert ev["id"] not in opened
                opened.add(ev["id"])
            elif ev["ph"] == "f":
                assert ev["id"] in opened

    def test_validator_rejects_broken_traces(self):
        with pytest.raises(ValueError, match="missing keys"):
            validate_chrome_trace({"traceEvents": [{"ph": "X"}]})
        with pytest.raises(ValueError, match="closed before open"):
            validate_chrome_trace(
                {
                    "traceEvents": [
                        {"name": "t", "cat": "flow", "ph": "f", "pid": 0,
                         "tid": 0, "ts": 0.0, "id": "0:t:0"}
                    ]
                }
            )
        bad_order = Tracer()
        bad_order.span("a", "task", 0, duration=1.0)
        trace = bad_order.to_chrome()
        trace["traceEvents"].append(
            {"name": "b", "cat": "task", "ph": "X", "pid": 0, "tid": 0,
             "ts": 0.0, "dur": 1.0}
        )
        with pytest.raises(ValueError, match="regresses"):
            validate_chrome_trace(trace)


# ----------------------------------------------------------------------
# lockstep determinism on the simulated clock
# ----------------------------------------------------------------------


def _traced_spmd_run():
    """One fixed SPMD K-FAC program (P=4, HYBRID f=0.5, graph scheduler)."""
    rng = np.random.default_rng(99)
    x = rng.normal(size=(32, 1, 8, 8)).astype(np.float32)
    y = rng.integers(0, 3, size=32).astype(np.int64)
    idx = [np.arange(r, 32, 4) for r in range(4)]
    world = World(4)
    world.tracer = Tracer()

    def program(view):
        model = build_tiny_cnn(seed=5)
        kfac = KFAC(
            model, rank=view.rank, world_size=4, damping=0.01, lr=0.1,
            kfac_update_freq=2, fac_update_freq=1,
            grad_worker_frac=0.5, scheduler="graph",
        )
        kfac.tracer = view.world.tracer
        driver = SPMDDriver(kfac, HorovodContext(view))
        opt = SGD(model.parameters(), lr=0.1, momentum=0.9)
        loss_fn = CrossEntropyLoss()
        for _ in range(3):
            opt.zero_grad()
            loss_fn(model(x[idx[view.rank]]), y[idx[view.rank]])
            model.backward(loss_fn.backward())
            for name, p in model.named_parameters():
                p.grad[...] = view.allreduce(p.grad, name=f"g:{name}", op="average")
            driver.step()
            opt.step()
        return None

    world.run_spmd(program, timeout=120)
    return world.tracer


class TestLockstepDeterminism:
    def test_identical_program_identical_trace(self):
        """Two runs of the same SPMD program yield equal span lists (wall
        times are excluded from span equality by design)."""
        first = _traced_spmd_run().spans()
        second = _traced_spmd_run().spans()
        assert len(first) > 0
        assert first == second

    def test_every_rank_has_a_track(self):
        tracer = _traced_spmd_run()
        assert tracer.ranks() == [0, 1, 2, 3]
        assert validate_chrome_trace(tracer.to_chrome()) > 0


# ----------------------------------------------------------------------
# traced training: reconciliation + zero-cost-off
# ----------------------------------------------------------------------


def _train(tracer=None, fault_plan=None, retry_policy=RetryPolicy()):
    """One P=4 HYBRID f=0.5 graph-scheduler training epoch (tiny CNN)."""
    rng = np.random.default_rng(0)
    x = rng.normal(size=(64, 1, 8, 8)).astype(np.float32)
    y = rng.integers(0, 3, size=64).astype(np.int64)
    cfg = TrainerConfig(
        world_size=4,
        batch_size=8,
        epochs=1,
        seed=3,
        kfac=KFACHyperParams(
            damping=0.01, kfac_update_freq=2, fac_update_freq=1,
            grad_worker_frac=0.5, scheduler="graph",
        ),
        tracer=tracer,
        fault_plan=fault_plan,
        retry_policy=retry_policy,
    )
    trainer = DataParallelTrainer(
        model_factory=lambda r: build_tiny_cnn(seed=5),
        train_x=x, train_y=y, val_x=x[:16], val_y=y[:16], config=cfg,
    )
    return trainer.train()


class TestTracedTraining:
    def test_trace_valid_and_reconciles_with_history(self):
        """Acceptance: the per-phase span sums equal the history's comm
        ledgers to 1e-9 on the simulated clock."""
        tracer = Tracer()
        history = _train(tracer=tracer)
        assert validate_chrome_trace(tracer.to_chrome()) > 0
        totals = tracer.phase_totals()  # ledger view: one count per op
        for phase, seconds in history.comm_seconds.items():
            assert abs(totals[phase]["exposed"] - seconds) <= 1e-9, phase
        for phase, hidden in history.comm_hidden_seconds.items():
            assert abs(totals[phase]["hidden"] - hidden) <= 1e-9, phase
        for phase, nbytes in history.comm_bytes.items():
            assert abs(totals[phase]["bytes"] - nbytes) <= 1e-9, phase
        # and nothing was traced that the ledgers don't know about
        assert set(totals) <= set(history.comm_seconds)

    def test_trace_covers_every_event_family(self):
        tracer = Tracer()
        _train(tracer=tracer)
        cats = {s.cat for s in tracer.spans()}
        assert {"comm", "task", "sched", "phase"} <= cats
        names = {s.name for s in tracer.spans()}
        assert any(n.startswith("Eig:") for n in names)
        assert any(n.startswith("Precondition:") for n in names)
        assert any(n.startswith("launch:") for n in names)
        assert any(n.startswith("wait:") for n in names)
        for phase in ("io", "forward", "backward", "exchange", "update"):
            assert f"phase:{phase}" in names

    def test_fault_and_retry_events_are_traced(self):
        tracer = Tracer()
        plan = FaultPlan(
            jitter=[ComputeJitter(rank=1, seconds=0.002, start_step=1, end_step=2)],
            failures=[CollectiveFailure(phase="factor_comm", step=1, count=1)],
        )
        history = _train(tracer=tracer, fault_plan=plan)
        assert history.comm_retries >= 1
        assert history.faults_injected >= 2
        names = {s.name for s in tracer.spans(cat="fault")}
        assert "retry:factor_comm" in names
        assert "fault:factor_comm" in names
        # the retry backoff is charged and traced under its own phase,
        # so reconciliation holds on degraded runs too
        totals = tracer.phase_totals()
        assert abs(
            totals["retry_backoff"]["exposed"]
            - history.comm_seconds["retry_backoff"]
        ) <= 1e-9

    def test_disabled_tracing_leaves_history_unchanged(self):
        """NULL tracer vs. live tracer: every deterministic history field
        is identical (wall-clock stopwatches legitimately differ run to
        run, instrumented or not)."""
        import dataclasses

        baseline = _train(tracer=None)
        traced = _train(tracer=Tracer())
        assert dataclasses.replace(baseline, phase_seconds={}) == (
            dataclasses.replace(traced, phase_seconds={})
        )
        assert set(baseline.phase_seconds) == set(traced.phase_seconds)

    def test_null_tracer_is_inert(self):
        assert NULL_TRACER.enabled is False
        assert NULL_TRACER.span("x", "task", rank=0) is None
        assert NULL_TRACER.spans() == []
        assert validate_chrome_trace(NULL_TRACER.to_chrome()) == 0


# ----------------------------------------------------------------------
# satellite: task_overlap_profile stable key set
# ----------------------------------------------------------------------


class TestTaskOverlapProfile:
    def test_all_task_kinds_present_when_empty(self):
        profile = task_overlap_profile(OverlapStats())
        assert sorted(profile) == [
            "EigShare", "FactorComm", "GradAllReduce", "GradShare",
        ]
        assert all(
            entry == {"exposed": 0.0, "hidden": 0.0} for entry in profile.values()
        )

    def test_recorded_phases_fold_into_their_kind(self):
        stats = OverlapStats()
        stats.record("factor_comm", exposed=0.25, hidden=0.5)
        stats.record("grad_allreduce", exposed=1.0, hidden=0.0)
        profile = task_overlap_profile(stats)
        assert profile["FactorComm"] == {"exposed": 0.25, "hidden": 0.5}
        assert profile["GradAllReduce"]["exposed"] == 1.0
        assert profile["EigShare"] == {"exposed": 0.0, "hidden": 0.0}

    def test_history_profile_has_stable_schema(self):
        history = _train()
        assert set(history.comm_task_profile) >= {
            "EigShare", "FactorComm", "GradAllReduce", "GradShare",
        }


# ----------------------------------------------------------------------
# metrics registry
# ----------------------------------------------------------------------


class TestMetricsRegistry:
    def test_counter_is_monotone(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(2, phase="a")
        reg.counter("c").inc(3, phase="b")
        assert reg.counter("c").value(phase="a") == 2.0
        assert reg.counter("c").total() == 5.0
        with pytest.raises(ValueError, match="cannot decrease"):
            reg.counter("c").inc(-1)

    def test_histogram_summary(self):
        reg = MetricsRegistry()
        for v in (0.1, 0.2, 0.3):
            reg.histogram("h").observe(v, kind="Eig")
        s = reg.histogram("h").summary(kind="Eig")
        assert s["count"] == 3
        assert math.isclose(s["mean"], 0.2)
        assert s["min"] == 0.1 and s["max"] == 0.3

    def test_collect_world_matches_ledgers(self):
        world = World(2)
        world.allreduce(
            [np.ones(8, dtype=np.float32) for _ in range(2)],
            phase="grad_allreduce",
        )
        reg = MetricsRegistry()
        reg.collect_world(world)
        assert reg.gauge("comm.exposed_seconds").value(
            phase="grad_allreduce"
        ) == world.timers.as_dict()["grad_allreduce"]
        assert reg.gauge("comm.bytes").value(
            phase="grad_allreduce"
        ) == world.stats.bytes_by_phase["grad_allreduce"]

    def test_history_metrics_snapshot_is_the_single_source(self):
        """The history's scalar ledger fields round-trip the registry."""
        history = _train()
        snap = history.metrics
        assert sorted(snap) == ["counters", "gauges", "histograms"]
        assert "kfac.steps" in snap["counters"]
        assert "comm.exposed_seconds" in snap["gauges"]
        exposed = snap["gauges"]["comm.exposed_seconds"]
        for phase, seconds in history.comm_seconds.items():
            assert exposed[f"phase={phase}"] == seconds
        assert history.final_loss_scale == snap["gauges"]["amp.loss_scale"][""]


# ----------------------------------------------------------------------
# drift report
# ----------------------------------------------------------------------


def _model() -> IterationModel:
    return IterationModel(resnet_spec(50), V100_LIKE, FRONTERA_LIKE)


class TestDriftReport:
    def _history(self):
        history = _train()
        return history

    def test_every_fig1_stage_present(self):
        report = fig1_drift_report(
            self._history(), _model(), p=4,
            intervals=KfacIntervals.from_eig_interval(10), scheduler="graph",
        )
        stages = report.stages()
        assert stages[:5] == ["io", "forward", "gradient", "exchange", "update"]
        # HYBRID run: the K-FAC comm sub-stages are reported too
        assert stages[5:] == ["factor_comm", "eig_comm", "precond_comm"]
        for row in report.rows:
            assert row.modeled >= 0.0 and row.measured >= 0.0
            assert not math.isnan(row.rel_error)

    def test_render_and_dict_views_agree(self):
        report = fig1_drift_report(
            self._history(), _model(), p=4,
            intervals=KfacIntervals.from_eig_interval(10),
        )
        table = report.render()
        as_dict = report.as_dict()
        for stage in report.stages():
            assert f"| {stage}" in table
            assert set(as_dict[stage]) == {
                "modeled", "measured", "abs_error", "rel_error",
            }
        assert report.meta["p"] == 4
        assert report.meta["strategy"] == "hybrid"

    def test_inf_error_when_model_predicts_zero(self):
        from repro.obs.report import DriftRow

        row = DriftRow(stage="update", modeled=0.0, measured=0.5)
        assert math.isinf(row.rel_error)
        assert DriftRow(stage="update", modeled=0.0, measured=0.0).rel_error == 0.0


# ----------------------------------------------------------------------
# satellite: Logger.warn and degraded-path routing
# ----------------------------------------------------------------------


class TestLoggerWarn:
    def test_warn_prefix_and_level_gate(self):
        buf = io.StringIO()
        Logger("driver", level=1, stream=buf).warn("eig_comm retry 1/2")
        assert buf.getvalue() == "[driver:warn] eig_comm retry 1/2\n"
        silent = io.StringIO()
        Logger("driver", level=0, stream=silent).warn("dropped")
        assert silent.getvalue() == ""

    def test_controller_routes_retries_through_warn(self):
        world = World(4)
        world.fault_plan = FaultPlan(
            failures=[CollectiveFailure(phase="factor_comm", step=0, count=1)]
        )
        models = [build_tiny_cnn(seed=5) for _ in range(4)]
        kfacs = [
            KFAC(m, rank=r, world_size=4, damping=0.01,
                 kfac_update_freq=2, fac_update_freq=1)
            for r, m in enumerate(models)
        ]
        buf = io.StringIO()
        controller = PhaseController(
            kfacs, world, retry_policy=RetryPolicy(),
            logger=Logger("driver", stream=buf),
        )
        rng = np.random.default_rng(1)
        x = rng.normal(size=(16, 1, 8, 8)).astype(np.float32)
        y = rng.integers(0, 3, size=16).astype(np.int64)
        losses = [CrossEntropyLoss() for _ in range(4)]
        world.begin_step(0)
        for r in range(4):
            models[r].zero_grad()
            losses[r](models[r](x), y)
            models[r].backward(losses[r].backward())
        controller.step()
        out = buf.getvalue()
        assert "[driver:warn]" in out
        assert "factor_comm" in out and "retry 1/" in out
        assert controller.comm_retries == 1
