"""K-FAC assignment, clipping, schedule, and layer handlers."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.assignment import (
    FactorMeta,
    eig_cost,
    greedy_balanced_assignment,
    layer_wise_assignment,
    round_robin_assignment,
    worker_costs,
)
from repro.core.clipping import kl_clip_factor
from repro.core.layers import Conv2dKFACLayer, LinearKFACLayer, make_kfac_layer
from repro.core.preconditioner import KFAC
from repro.core.schedule import KFACParamScheduler
from repro.nn.layers import BatchNorm2d, Conv2d, Linear, ReLU


def metas(dims):
    return [FactorMeta(f"l{i}", "A", d) for i, d in enumerate(dims)]


class TestAssignment:
    def test_round_robin_layout(self):
        ms = metas([4, 8, 16, 32, 64])
        assignment = round_robin_assignment(ms, 2)
        assert [assignment[m.key] for m in ms] == [0, 1, 0, 1, 0]

    def test_round_robin_doubles_utilization(self):
        """2L factors spread over up to 2L workers — twice the layer-wise
        scheme's utilization (§IV-C): with P = 2L every worker is busy."""
        ms = [FactorMeta("l0", "A", 4), FactorMeta("l1", "A", 4),
              FactorMeta("l0", "G", 2), FactorMeta("l1", "G", 2)]
        assignment = round_robin_assignment(ms, 4)
        assert sorted(assignment.values()) == [0, 1, 2, 3]
        # layer-wise placement would only ever use L workers
        lw = layer_wise_assignment(["l0", "l1"], 4)
        assert len(set(lw.values())) == 2

    def test_greedy_never_worse_than_round_robin(self):
        ms = metas([512, 8, 8, 8, 256, 8, 8, 8])
        for p in (2, 3, 4):
            rr = max(worker_costs(ms, round_robin_assignment(ms, p), p))
            gr = max(worker_costs(ms, greedy_balanced_assignment(ms, p), p))
            assert gr <= rr + 1e-9

    @settings(max_examples=30, deadline=None)
    @given(
        dims=st.lists(st.integers(1, 128), min_size=1, max_size=20),
        p=st.integers(1, 8),
    )
    def test_greedy_property(self, dims, p):
        ms = metas(dims)
        rr = max(worker_costs(ms, round_robin_assignment(ms, p), p))
        gr = max(worker_costs(ms, greedy_balanced_assignment(ms, p), p))
        # LPT is NOT universally <= round-robin (hypothesis found
        # counterexamples, e.g. dims=[15,14,30,14,1,29] at p=2); its
        # guarantee is the Graham bound: makespan <= (4/3 - 1/(3p)) * OPT,
        # and round-robin is a feasible schedule, so OPT <= rr.
        assert gr <= (4.0 / 3.0 - 1.0 / (3.0 * p)) * rr + 1e-9
        # every factor assigned to a valid worker
        assignment = greedy_balanced_assignment(ms, p)
        assert set(assignment) == {m.key for m in ms}
        assert all(0 <= w < p for w in assignment.values())

    def test_layer_wise(self):
        assignment = layer_wise_assignment(["a", "b", "c"], 2)
        assert assignment == {"a": 0, "b": 1, "c": 0}

    def test_eig_cost_cubic(self):
        assert eig_cost(FactorMeta("x", "A", 10)) == 1000.0

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            round_robin_assignment(metas([2]), 0)


class TestKlClip:
    def test_no_clip_when_small(self, rng):
        g = [rng.normal(size=(2, 2)) * 1e-6]
        assert kl_clip_factor(g, g, lr=0.1, kl_clip=1e-3) == 1.0

    def test_clips_large_updates(self, rng):
        g = [np.full((4, 4), 10.0)]
        nu = kl_clip_factor(g, g, lr=1.0, kl_clip=1e-3)
        assert 0 < nu < 1
        # matches the closed form
        vg = float((g[0] * g[0]).sum())
        assert nu == pytest.approx(np.sqrt(1e-3 / vg))

    def test_scaling_invariance_of_threshold(self, rng):
        """Doubling lr quarters the allowed update norm."""
        g = [np.full((2, 2), 5.0)]
        nu1 = kl_clip_factor(g, g, lr=1.0)
        nu2 = kl_clip_factor(g, g, lr=2.0)
        assert nu2 == pytest.approx(nu1 / 2)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            kl_clip_factor([np.ones(2)], [], lr=0.1)
        with pytest.raises(ValueError):
            kl_clip_factor([np.ones(2)], [np.ones(2)], lr=0.1, kl_clip=0.0)
        with pytest.raises(ValueError):
            kl_clip_factor([np.ones(2)], [np.ones(3)], lr=0.1)


class TestScheduler:
    def _kfac(self):
        lin = Linear(4, 3, rng=np.random.default_rng(0))
        return KFAC(lin, damping=0.01, kfac_update_freq=100, fac_update_freq=10)

    def test_damping_decay(self):
        k = self._kfac()
        sched = KFACParamScheduler(k, damping_alpha=0.5, damping_schedule=[5, 10])
        sched.step(0)
        assert k.damping == pytest.approx(0.01)
        sched.step(5)
        assert k.damping == pytest.approx(0.005)
        sched.step(12)
        assert k.damping == pytest.approx(0.0025)

    def test_update_freq_growth(self):
        k = self._kfac()
        sched = KFACParamScheduler(k, update_freq_alpha=2.0, update_freq_schedule=[3])
        sched.step(4)
        assert k.kfac_update_freq == 200
        assert k.fac_update_freq == 20

    def test_step_is_idempotent_per_epoch(self):
        k = self._kfac()
        sched = KFACParamScheduler(k, damping_alpha=0.5, damping_schedule=[1])
        sched.step(2)
        sched.step(2)
        assert k.damping == pytest.approx(0.005)

    def test_validation(self):
        k = self._kfac()
        with pytest.raises(ValueError):
            KFACParamScheduler(k, damping_alpha=0.0)
        with pytest.raises(ValueError):
            KFACParamScheduler(k, damping_schedule=[5, 1])


class TestLayerHandlers:
    def test_factory_dispatch(self, rng):
        assert isinstance(make_kfac_layer("l", Linear(2, 2, rng=rng)), LinearKFACLayer)
        assert isinstance(make_kfac_layer("c", Conv2d(1, 2, 3, rng=rng)), Conv2dKFACLayer)
        assert make_kfac_layer("r", ReLU()) is None
        assert make_kfac_layer("b", BatchNorm2d(2)) is None

    def test_dims(self, rng):
        lin = make_kfac_layer("l", Linear(5, 3, bias=True, rng=rng))
        assert (lin.a_dim, lin.g_dim) == (6, 3)
        conv = make_kfac_layer("c", Conv2d(2, 4, 3, bias=False, rng=rng))
        assert (conv.a_dim, conv.g_dim) == (18, 4)

    def test_grad_matrix_roundtrip_linear(self, rng):
        lin = Linear(4, 3, bias=True, rng=rng)
        h = make_kfac_layer("l", lin)
        lin.weight.grad[...] = rng.normal(size=(3, 4))
        lin.bias.grad[...] = rng.normal(size=3)
        mat = h.get_grad_matrix()
        assert mat.shape == (3, 5)
        np.testing.assert_array_equal(mat[:, :-1], lin.weight.grad)
        np.testing.assert_array_equal(mat[:, -1], lin.bias.grad)
        h.set_grad_matrix(2 * mat)
        np.testing.assert_allclose(lin.bias.grad, 2 * mat[:, -1])

    def test_grad_matrix_roundtrip_conv(self, rng):
        conv = Conv2d(2, 3, 3, bias=False, rng=rng)
        h = make_kfac_layer("c", conv)
        conv.weight.grad[...] = rng.normal(size=conv.weight.shape)
        mat = h.get_grad_matrix()
        assert mat.shape == (3, 18)
        h.set_grad_matrix(mat * 0.5)
        np.testing.assert_allclose(
            conv.weight.grad, (mat * 0.5).reshape(conv.weight.shape)
        )

    def test_update_factors_requires_captures(self, rng):
        h = make_kfac_layer("l", Linear(2, 2, rng=rng))
        with pytest.raises(RuntimeError):
            h.update_factors(0.95)

    def test_update_factors_releases_captures(self, rng):
        h = make_kfac_layer("l", Linear(2, 2, rng=rng))
        h.save_input(rng.normal(size=(4, 2)).astype(np.float32))
        h.save_grad_output(rng.normal(size=(4, 2)).astype(np.float32))
        h.update_factors(0.95)
        assert h.a_input is None and h.g_output is None
        assert h.A is not None and h.G is not None

    def test_set_grad_matrix_validates_shape(self, rng):
        h = make_kfac_layer("l", Linear(2, 2, bias=False, rng=rng))
        with pytest.raises(ValueError):
            h.set_grad_matrix(np.zeros((3, 3)))
