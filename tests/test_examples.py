"""The example scripts must run end-to-end (tiny arguments)."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(script: str, *args: str, timeout: float = 400.0) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, f"{script} failed:\n{proc.stderr[-2000:]}"
    return proc.stdout


@pytest.mark.slow
class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py", "--workers", "2", "--steps", "6")
        assert "replica parameters stayed in sync" in out

    def test_quickstart_fp16(self):
        out = run_example(
            "quickstart.py", "--workers", "2", "--steps", "6", "--precision", "fp16"
        )
        assert "replica parameters stayed in sync" in out
        assert "loss scale" in out

    def test_quickstart_save_resume_across_world_sizes(self, tmp_path):
        """--save at 3 workers, --resume at 2: the portable bundle
        redistributes for the new placement on load."""
        ckpt = tmp_path / "quickstart.ckpt"
        out = run_example(
            "quickstart.py", "--workers", "3", "--steps", "4",
            "--save", str(ckpt),
        )
        assert "saved checkpoint at step 4" in out
        assert ckpt.exists()
        out = run_example(
            "quickstart.py", "--workers", "2", "--steps", "3",
            "--resume", str(ckpt),
        )
        assert "resumed from step 4" in out
        assert "replica parameters stayed in sync" in out

    def test_quickstart_trace_export(self, tmp_path):
        trace = tmp_path / "quickstart-trace.json"
        out = run_example(
            "quickstart.py", "--workers", "2", "--steps", "6",
            "--trace", str(trace),
        )
        assert "valid Chrome trace" in out
        assert trace.exists()

    def test_trace_step(self, tmp_path):
        trace = tmp_path / "trace.json"
        out = run_example("trace_step.py", "--out", str(trace))
        assert "drift-report" in out
        assert "valid Chrome trace" in out
        assert "rank 0:" in out and "rank 3:" in out
        assert trace.exists()

    def test_imagenet_scaling_study(self):
        out = run_example("imagenet_scaling_study.py", "--depths", "50")
        assert "ResNet-50 time-to-solution" in out
        assert "Table IV" in out

    def test_approximation(self):
        out = run_example(
            "approximation.py",
            "--blocks", "1", "4", "--gpus", "8", "--drift-tol", "0.05",
        )
        # the perfmodel FLOP/byte sweep table...
        assert "diag_blocks" in out and "eig stage (ms)" in out
        assert "factor wire (MiB)" in out
        # ...and the drift/damping demo with both verdicts exercised
        assert "drift trigger" in out
        assert "| go " in out and "| skip " in out
        assert "adaptive damping" in out

    def test_transformer(self):
        out = run_example("transformer.py", "--workers", "2", "--steps", "6")
        assert "transformer-smoke" in out
        assert "loss decreased" in out
        assert "gather fast path, no dense one-hot" in out
        assert "embedding A eigendecomposition is blocked" in out
        assert "unsupported (first-order-only) layers: 0" in out

    def test_placement_policy(self):
        out = run_example(
            "placement_policy.py",
            "--depth", "50", "--gpus", "16", "32",
            "--fracs", "1", "0.5", "0.25",
        )
        assert "round-robin" in out and "greedy" in out
        # the grad_worker_frac sweep prints the perfmodel memory/comm table
        assert "grad_worker_frac sweep" in out
        assert "eig mem/rank (MiB)" in out and "bcast recv/rank (MiB)" in out
