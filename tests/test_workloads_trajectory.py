"""Trajectory lock-down for the transformer workload tier.

Mirrors ``test_approx_trajectory.py`` for the second model family: a
:class:`~repro.nn.transformer.TinyTransformer` (embeddings + LayerNorms +
attention projections + margin loss) must train *bitwise identically*
under the phase-controller and SPMD drivers across the placement matrix,
the ``diag_blocks=4`` approximation on the wide embedding factor must
stay within a bounded loss band of exact, and the acceptance-criteria
config (graph + hybrid f=0.5 + fp16 + diag_blocks=4) must decrease the
loss while building the embedding ``A`` factor through the gather fast
path — never the dense one-hot.  The unsupported-layer warning fix rides
along with its regression tests.
"""

from __future__ import annotations

import io

import numpy as np
import pytest

import repro.core.factors as factors_mod
import repro.core.layers as core_layers
from repro.approx.blockeig import BlockFactorEig
from repro.comm.backend import World
from repro.core.distributed import (
    HorovodContext,
    LocalDriver,
    PhaseController,
    SPMDDriver,
)
from repro.core.preconditioner import COMM_OPT, HYBRID, KFAC
from repro.nn import MarginSoftmaxLoss, TinyTransformer
from repro.nn.layers import BatchNorm2d, Conv2d, Flatten, Linear, ReLU
from repro.nn.container import Sequential
from repro.obs.metrics import MetricsRegistry
from repro.optim.sgd import SGD
from repro.utils.logging import Logger

N_SAMPLES = 16  # divisible by every world size in the matrix
VOCAB, SEQ, DIM, HEADS, DEPTH, CLASSES = 24, 6, 16, 2, 1, 3


def build_tiny_transformer(seed: int = 5) -> TinyTransformer:
    return TinyTransformer(
        VOCAB, SEQ, dim=DIM, num_heads=HEADS, depth=DEPTH,
        num_classes=CLASSES, rng=np.random.default_rng(seed),
    )


def make_batch(seed: int = 17) -> tuple[np.ndarray, np.ndarray]:
    """Class-banded token task: learnable in a handful of K-FAC steps."""
    rng = np.random.default_rng(seed)
    y = rng.integers(0, CLASSES, N_SAMPLES)
    band = VOCAB // CLASSES
    tokens = (y[:, None] * band + rng.integers(0, band, (N_SAMPLES, SEQ))) % VOCAB
    return tokens.astype(np.int64), y.astype(np.int64)


def run_transformer(
    world_size: int,
    steps: int = 4,
    seed: int = 5,
    driver: str = "phase",
    return_losses: bool = False,
    **kfac_kw,
):
    """Train the tiny transformer data-parallel; return final weights.

    Mirrors ``test_grad_worker_frac.run_hybrid``: strided shards, a
    shared gradient allreduce, then the K-FAC driver under test.
    """
    kw = dict(damping=0.01, kfac_update_freq=2, fac_update_freq=1, lr=0.1)
    kw.update(kfac_kw)
    x, y = make_batch()
    shard = [np.arange(r, N_SAMPLES, world_size) for r in range(world_size)]
    world = World(world_size)

    if driver == "spmd":

        def program(view):
            model = build_tiny_transformer(seed)
            kfac = KFAC(model, rank=view.rank, world_size=world_size, **kw)
            drv = SPMDDriver(kfac, HorovodContext(view))
            opt = SGD(model.parameters(), lr=0.1, momentum=0.9)
            loss_fn = MarginSoftmaxLoss()
            for _ in range(steps):
                opt.zero_grad()
                out = model(x[shard[view.rank]])
                loss_fn(out, y[shard[view.rank]])
                model.backward(loss_fn.backward())
                for name, prm in model.named_parameters():
                    prm.grad[...] = view.allreduce(
                        prm.grad, name=f"g:{name}", op="average"
                    )
                drv.step()
                opt.step()
            return model.state_dict()

        return world.run_spmd(program, timeout=60)[0]

    models = [build_tiny_transformer(seed) for _ in range(world_size)]
    kfacs = [
        KFAC(m, rank=r, world_size=world_size, **kw)
        for r, m in enumerate(models)
    ]
    controller = PhaseController(kfacs, world)
    opts = [SGD(m.parameters(), lr=0.1, momentum=0.9) for m in models]
    loss_fns = [MarginSoftmaxLoss() for _ in range(world_size)]
    losses = []
    for _ in range(steps):
        step_loss = 0.0
        for r in range(world_size):
            opts[r].zero_grad()
            out = models[r](x[shard[r]])
            step_loss += loss_fns[r](out, y[shard[r]]) / world_size
            models[r].backward(loss_fns[r].backward())
        for grads in zip(*[[p.grad for p in m.parameters()] for m in models]):
            reduced = world.allreduce(list(grads), op="average", phase="grad_allreduce")
            for g, red in zip(grads, reduced):
                g[...] = red
        controller.step()
        for r in range(world_size):
            opts[r].step()
        losses.append(float(step_loss))
    state = models[0].state_dict()
    if return_losses:
        return state, losses
    return state


_BASELINES: dict = {}


def _phase_baseline(key, **kw):
    if key not in _BASELINES:
        _BASELINES[key] = run_transformer(**kw)
    return _BASELINES[key]


_MATRIX = [
    pytest.param(strategy, p, scheduler, id=f"{strategy}-p{p}-{scheduler}")
    for strategy in (COMM_OPT, HYBRID)
    for p in (1, 2, 4)
    for scheduler in ("sync", "graph")
]


class TestTransformerParity:
    @pytest.mark.parametrize("strategy,p,scheduler", _MATRIX)
    def test_phase_spmd_bitwise(self, strategy, p, scheduler):
        kw = dict(strategy=strategy, scheduler=scheduler, steps=4)
        if strategy == HYBRID:
            kw["grad_worker_frac"] = 0.5
        phase = _phase_baseline((strategy, p, scheduler), world_size=p, **kw)
        spmd = run_transformer(p, driver="spmd", **kw)
        assert phase.keys() == spmd.keys()
        for name in phase:
            np.testing.assert_array_equal(
                phase[name], spmd[name], err_msg=f"{name} diverged"
            )


def _train_local(steps: int, **kfac_kw):
    """Single-process transformer training; returns (final loss, kfac)."""
    x, y = make_batch()
    model = build_tiny_transformer(seed=11)
    kfac = KFAC(
        model, damping=0.01, kfac_update_freq=1, fac_update_freq=1, lr=0.1,
        **kfac_kw,
    )
    driver = LocalDriver(kfac)
    opt = SGD(model.parameters(), lr=0.1, momentum=0.9)
    loss_fn = MarginSoftmaxLoss()
    loss = np.inf
    for _ in range(steps):
        opt.zero_grad()
        out = model(x)
        loss = loss_fn(out, y)
        model.backward(loss_fn.backward())
        driver.step()
        opt.step()
    return float(loss), kfac


class TestBlockedEmbedding:
    def test_diag_blocks_four_bounded_loss(self):
        exact_loss, _ = _train_local(steps=8)
        blocked_loss, kfac = _train_local(steps=8, diag_blocks=4, diag_warmup=1)
        assert kfac.blocks_active
        # the wide embedding factor is the one that must actually split
        emb = next(l for l in kfac.layers if l.name == "tok_embed")
        assert isinstance(emb.eig_A, BlockFactorEig)
        # planner may merge below its minimum block width; it must split
        assert 1 < len(emb.eig_A.bounds) <= 4
        assert np.isfinite(blocked_loss)
        assert blocked_loss < exact_loss + 0.5

    def test_diag_blocks_four_spmd_matches_phase(self):
        kw = dict(steps=6, diag_blocks=4, diag_warmup=1, strategy=COMM_OPT)
        phase = run_transformer(2, **kw)
        spmd = run_transformer(2, driver="spmd", **kw)
        for name in phase:
            np.testing.assert_array_equal(phase[name], spmd[name])


ACCEPTANCE_KW = dict(
    scheduler="graph", grad_worker_frac=0.5, comm_dtype="fp16",
    diag_blocks=4, diag_warmup=1,
)


class TestAcceptanceConfig:
    def test_loss_decreases_under_full_stack(self):
        _, losses = run_transformer(
            2, steps=8, return_losses=True, **ACCEPTANCE_KW
        )
        assert losses[-1] < losses[0]
        assert all(np.isfinite(l) for l in losses)

    def test_embedding_factor_uses_gather_fast_path(self, monkeypatch):
        """The fast path runs; the dense one-hot reference never does."""
        calls = {"fast": 0}
        real_fast = core_layers.embedding_factor_A

        def counting_fast(*args, **kwargs):
            calls["fast"] += 1
            return real_fast(*args, **kwargs)

        def forbidden_dense(*args, **kwargs):  # pragma: no cover
            raise AssertionError(
                "dense one-hot embedding factor constructed during training"
            )

        monkeypatch.setattr(core_layers, "embedding_factor_A", counting_fast)
        monkeypatch.setattr(
            factors_mod, "embedding_factor_A_dense", forbidden_dense
        )
        _, losses = run_transformer(
            1, steps=4, return_losses=True, **ACCEPTANCE_KW
        )
        # two embeddings (token + positional) capture on every factor step
        assert calls["fast"] >= 8
        assert losses[-1] < losses[0]

    def test_embedding_factor_exactly_diagonal(self):
        _, kfac = _train_local(steps=4, **ACCEPTANCE_KW)
        for name in ("tok_embed", "pos_embed"):
            handler = next(l for l in kfac.layers if l.name == name)
            off = handler.A - np.diag(np.diag(handler.A))
            assert float(np.abs(off).max()) == 0.0, f"{name} A not diagonal"


def _bn_model(seed: int = 3) -> Sequential:
    rng = np.random.default_rng(seed)
    return Sequential(
        Conv2d(1, 4, 3, padding=1, rng=rng),
        BatchNorm2d(4),
        ReLU(),
        Flatten(),
        Linear(4 * 8 * 8, 3, rng=rng),
    )


class TestUnsupportedLayerWarning:
    def test_warns_and_exposes_unsupported_layers(self):
        stream = io.StringIO()
        kfac = KFAC(_bn_model(), logger=Logger("kfac", stream=stream))
        assert kfac.unsupported_layers == (("m1", "BatchNorm2d"),)
        text = stream.getvalue()
        assert "[kfac:warn]" in text
        assert "BatchNorm2d" in text and "m1" in text
        assert "first-order only" in text

    def test_default_logger_warns_on_stderr(self, capsys):
        KFAC(_bn_model())
        captured = capsys.readouterr()
        assert "[kfac:warn]" in captured.err
        assert "BatchNorm2d" in captured.err
        assert captured.out == ""  # never pollutes stdout (doctest safety)

    def test_nonzero_ranks_stay_quiet(self):
        stream = io.StringIO()
        KFAC(
            _bn_model(), rank=1, world_size=2,
            logger=Logger("kfac", stream=stream),
        )
        assert stream.getvalue() == ""

    def test_fully_supported_model_stays_silent(self):
        stream = io.StringIO()
        kfac = KFAC(
            build_tiny_transformer(), logger=Logger("kfac", stream=stream)
        )
        assert kfac.unsupported_layers == ()
        assert stream.getvalue() == ""

    def test_metrics_registry_exposes_gauge(self):
        kfac = KFAC(_bn_model(), logger=Logger("kfac", stream=io.StringIO()))
        reg = MetricsRegistry()
        reg.collect_kfacs([kfac])
        gauge = reg.gauge("kfac.unsupported_layers")
        assert gauge.value() == 1.0
        assert gauge.value(kind="BatchNorm2d") == 1.0

    def test_metrics_registry_zero_when_all_supported(self):
        kfac = KFAC(
            build_tiny_transformer(), logger=Logger("kfac", stream=io.StringIO())
        )
        reg = MetricsRegistry()
        reg.collect_kfacs([kfac])
        assert reg.gauge("kfac.unsupported_layers").value() == 0.0
