"""Alpha-beta collective cost model."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm.costmodel import (
    EDR_LIKE,
    NetworkProfile,
    allgather_time,
    allreduce_time,
    broadcast_time,
    reduce_scatter_time,
)


class TestNetworkProfile:
    def test_transfer_time(self):
        net = NetworkProfile(latency=1e-3, bandwidth=1e6)
        assert net.transfer_time(1e6) == pytest.approx(1.001)

    def test_validation(self):
        with pytest.raises(ValueError):
            NetworkProfile(latency=-1, bandwidth=1)
        with pytest.raises(ValueError):
            NetworkProfile(latency=0, bandwidth=0)


class TestCollectiveCosts:
    def test_single_rank_is_free(self):
        for fn in (allreduce_time, allgather_time, broadcast_time, reduce_scatter_time):
            assert fn(1e9, 1, EDR_LIKE) == 0.0

    def test_zero_bytes_is_free(self):
        assert allreduce_time(0, 16, EDR_LIKE) == 0.0

    def test_allreduce_is_two_phases(self):
        n, p = 1e8, 8
        ar = allreduce_time(n, p, EDR_LIKE)
        rs = reduce_scatter_time(n, p, EDR_LIKE)
        ag = allgather_time(n, p, EDR_LIKE)
        assert ar == pytest.approx(rs + ag, rel=1e-9)

    def test_bandwidth_term_saturates_with_p(self):
        """Ring allreduce bandwidth term -> 2n/beta as p grows (bandwidth
        optimality, the property §II-D relies on)."""
        n = 1e9
        t64 = allreduce_time(n, 64, EDR_LIKE)
        t256 = allreduce_time(n, 256, EDR_LIKE)
        limit = 2 * n / EDR_LIKE.bandwidth
        assert t64 < t256 < limit * 1.1
        assert t256 / t64 < 1.05

    def test_broadcast_log_rounds(self):
        n = 8 << 20
        t2 = broadcast_time(n, 2, EDR_LIKE)
        t16 = broadcast_time(n, 16, EDR_LIKE)
        assert t16 == pytest.approx(4 * t2, rel=1e-9)

    @settings(max_examples=30, deadline=None)
    @given(nbytes=st.floats(1, 1e9), p=st.integers(2, 512))
    def test_costs_positive_and_monotone_in_bytes(self, nbytes, p):
        t1 = allreduce_time(nbytes, p, EDR_LIKE)
        t2 = allreduce_time(nbytes * 2, p, EDR_LIKE)
        assert 0 < t1 < t2

    def test_negative_bytes_raises(self):
        with pytest.raises(ValueError):
            allreduce_time(-1, 4, EDR_LIKE)
