"""World backend: phase-style collectives, accounting, SPMD matching."""

from __future__ import annotations

import numpy as np
import pytest

from repro.comm.backend import DeadlockError, World


class TestPhaseStyle:
    def test_allreduce_average(self, rng):
        w = World(4)
        bufs = [np.full(3, float(r)) for r in range(4)]
        out = w.allreduce(bufs, op="average")
        np.testing.assert_allclose(out[0], np.full(3, 1.5))

    def test_allreduce_sum(self, rng):
        w = World(3)
        out = w.allreduce([np.ones(2)] * 3, op="sum")
        np.testing.assert_allclose(out[1], np.full(2, 3.0))

    def test_unknown_op_raises(self):
        with pytest.raises(ValueError):
            World(2).allreduce([np.ones(1)] * 2, op="max")

    def test_wrong_buffer_count_raises(self):
        with pytest.raises(ValueError):
            World(3).allreduce([np.ones(1)] * 2)

    def test_time_and_bytes_accounted(self):
        w = World(4)
        w.allreduce([np.ones(1000, dtype=np.float32)] * 4, phase="grad")
        assert w.timers.total("grad") > 0
        assert w.stats.bytes_by_phase["grad"] == 4000
        assert w.stats.ops_by_phase["grad"] == 1

    def test_single_rank_no_time(self):
        w = World(1)
        w.allreduce([np.ones(10)])
        assert w.timers.grand_total() == 0.0

    def test_broadcast_from_nonzero_root(self, rng):
        w = World(3)
        value = rng.normal(size=4)
        out = w.broadcast(value, root=2)
        for copy in out:
            np.testing.assert_array_equal(copy, value)

    def test_reduce_scatter(self, rng):
        w = World(2)
        bufs = [rng.normal(size=6) for _ in range(2)]
        out = w.reduce_scatter(bufs)
        total = bufs[0] + bufs[1]
        np.testing.assert_allclose(out[0], total[3:], rtol=1e-12)
        np.testing.assert_allclose(out[1], total[:3], rtol=1e-12)


class TestSPMD:
    def test_allreduce_across_threads(self):
        w = World(4)

        def program(view):
            local = np.full(5, float(view.rank))
            return view.allreduce(local, name="x")

        results = w.run_spmd(program, timeout=10)
        for res in results:
            np.testing.assert_allclose(res, np.full(5, 1.5))

    def test_allgather_and_barrier(self):
        w = World(3)

        def program(view):
            view.barrier("start")
            got = view.allgather(np.full(view.rank + 1, view.rank), name="g")
            return [g.shape[0] for g in got]

        results = w.run_spmd(program, timeout=10)
        assert results[0] == [1, 2, 3]

    def test_name_reuse_across_iterations(self):
        w = World(2)

        def program(view):
            total = 0.0
            for _ in range(5):
                total += float(view.allreduce(np.ones(1), name="loop", op="sum")[0])
            return total

        results = w.run_spmd(program, timeout=10)
        assert results == [10.0, 10.0]

    def test_mismatched_meta_raises(self):
        w = World(2)

        def program(view):
            op = "sum" if view.rank == 0 else "average"
            return view.allreduce(np.ones(1), name="x", op=op)

        with pytest.raises(DeadlockError):
            w.run_spmd(program, timeout=5)

    def test_missing_rank_times_out(self):
        w = World(2)

        def program(view):
            if view.rank == 0:
                return view.allreduce(np.ones(1), name="only-rank0")
            return None

        with pytest.raises(DeadlockError):
            w.run_spmd(program, timeout=0.5)

    def test_exception_propagates_and_unblocks(self):
        w = World(2)

        def program(view):
            if view.rank == 1:
                raise RuntimeError("boom")
            return view.allreduce(np.ones(1), name="x")

        with pytest.raises((RuntimeError, DeadlockError)):
            w.run_spmd(program, timeout=5)

    def test_broadcast_spmd(self):
        w = World(3)

        def program(view):
            value = np.full(2, 7.0) if view.rank == 1 else np.zeros(2)
            return view.broadcast(value, name="b", root=1)

        results = w.run_spmd(program, timeout=10)
        for res in results:
            np.testing.assert_array_equal(res, np.full(2, 7.0))
