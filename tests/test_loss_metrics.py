"""Loss functions and metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.loss import CrossEntropyLoss, MSELoss, log_softmax, softmax
from repro.nn.metrics import confusion_counts, topk_accuracy
from tests.conftest import numerical_gradient


class TestSoftmax:
    def test_softmax_rows_sum_to_one(self, rng):
        logits = rng.normal(size=(5, 7))
        np.testing.assert_allclose(softmax(logits).sum(axis=1), np.ones(5), rtol=1e-6)

    def test_log_softmax_stability(self):
        logits = np.array([[1000.0, 1000.0, 999.0]])
        out = log_softmax(logits)
        assert np.isfinite(out).all()


class TestCrossEntropy:
    def test_matches_manual(self, rng):
        loss = CrossEntropyLoss()
        logits = rng.normal(size=(4, 3))
        targets = np.array([0, 1, 2, 1])
        want = -log_softmax(logits)[np.arange(4), targets].mean()
        assert loss(logits, targets) == pytest.approx(want, rel=1e-6)

    def test_label_smoothing_increases_loss_on_confident_correct(self):
        logits = np.array([[10.0, -10.0], [-10.0, 10.0]])
        targets = np.array([0, 1])
        plain = CrossEntropyLoss(0.0)(logits, targets)
        smoothed = CrossEntropyLoss(0.1)(logits, targets)
        assert smoothed > plain

    def test_backward_matches_numerical(self, rng):
        loss = CrossEntropyLoss(label_smoothing=0.1)
        logits = rng.normal(size=(3, 4))
        targets = np.array([1, 3, 0])

        def f():
            return loss(logits, targets)

        f()
        analytic = loss.backward()
        numeric = numerical_gradient(f, logits)
        np.testing.assert_allclose(analytic, numeric, rtol=1e-4, atol=1e-6)

    def test_invalid_smoothing_raises(self):
        with pytest.raises(ValueError):
            CrossEntropyLoss(1.0)

    def test_shape_validation(self, rng):
        loss = CrossEntropyLoss()
        with pytest.raises(ValueError):
            loss(rng.normal(size=(3,)), np.zeros(3, dtype=int))
        with pytest.raises(ValueError):
            loss(rng.normal(size=(3, 2)), np.zeros(4, dtype=int))

    def test_backward_before_forward_raises(self):
        with pytest.raises(AssertionError):
            CrossEntropyLoss().backward()


class TestMSE:
    def test_value_and_gradient(self, rng):
        loss = MSELoss()
        pred = rng.normal(size=(4, 3))
        target = rng.normal(size=(4, 3))
        val = loss(pred, target)
        assert val == pytest.approx(((pred - target) ** 2).mean())
        np.testing.assert_allclose(
            loss.backward(), 2 * (pred - target) / pred.size, rtol=1e-6
        )

    def test_shape_mismatch(self, rng):
        with pytest.raises(ValueError):
            MSELoss()(rng.normal(size=(2, 2)), rng.normal(size=(2, 3)))


class TestMetrics:
    def test_top1(self):
        logits = np.array([[0.9, 0.1], [0.2, 0.8], [0.6, 0.4]])
        targets = np.array([0, 1, 1])
        assert topk_accuracy(logits, targets, k=1) == pytest.approx(2 / 3)

    def test_top5_always_geq_top1(self, rng):
        logits = rng.normal(size=(50, 10))
        targets = rng.integers(0, 10, size=50)
        assert topk_accuracy(logits, targets, k=5) >= topk_accuracy(logits, targets, k=1)

    def test_topk_perfect_when_k_equals_classes(self, rng):
        logits = rng.normal(size=(20, 4))
        targets = rng.integers(0, 4, size=20)
        assert topk_accuracy(logits, targets, k=4) == 1.0

    def test_k_validation(self, rng):
        with pytest.raises(ValueError):
            topk_accuracy(rng.normal(size=(2, 3)), np.zeros(2, dtype=int), k=4)

    def test_confusion_counts(self):
        logits = np.array([[1.0, 0.0], [1.0, 0.0], [0.0, 1.0]])
        targets = np.array([0, 1, 1])
        m = confusion_counts(logits, targets, 2)
        assert m[0, 0] == 1 and m[1, 0] == 1 and m[1, 1] == 1 and m.sum() == 3
