"""Loss functions and metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.loss import (
    CenterLoss,
    CrossEntropyLoss,
    MarginSoftmaxLoss,
    MSELoss,
    log_softmax,
    softmax,
)
from repro.nn.metrics import confusion_counts, topk_accuracy
from tests.conftest import numerical_gradient


class TestSoftmax:
    def test_softmax_rows_sum_to_one(self, rng):
        logits = rng.normal(size=(5, 7))
        np.testing.assert_allclose(softmax(logits).sum(axis=1), np.ones(5), rtol=1e-6)

    def test_log_softmax_stability(self):
        logits = np.array([[1000.0, 1000.0, 999.0]])
        out = log_softmax(logits)
        assert np.isfinite(out).all()


class TestCrossEntropy:
    def test_matches_manual(self, rng):
        loss = CrossEntropyLoss()
        logits = rng.normal(size=(4, 3))
        targets = np.array([0, 1, 2, 1])
        want = -log_softmax(logits)[np.arange(4), targets].mean()
        assert loss(logits, targets) == pytest.approx(want, rel=1e-6)

    def test_label_smoothing_increases_loss_on_confident_correct(self):
        logits = np.array([[10.0, -10.0], [-10.0, 10.0]])
        targets = np.array([0, 1])
        plain = CrossEntropyLoss(0.0)(logits, targets)
        smoothed = CrossEntropyLoss(0.1)(logits, targets)
        assert smoothed > plain

    def test_backward_matches_numerical(self, rng):
        loss = CrossEntropyLoss(label_smoothing=0.1)
        logits = rng.normal(size=(3, 4))
        targets = np.array([1, 3, 0])

        def f():
            return loss(logits, targets)

        f()
        analytic = loss.backward()
        numeric = numerical_gradient(f, logits)
        np.testing.assert_allclose(analytic, numeric, rtol=1e-4, atol=1e-6)

    def test_invalid_smoothing_raises(self):
        with pytest.raises(ValueError):
            CrossEntropyLoss(1.0)

    def test_shape_validation(self, rng):
        loss = CrossEntropyLoss()
        with pytest.raises(ValueError):
            loss(rng.normal(size=(3,)), np.zeros(3, dtype=int))
        with pytest.raises(ValueError):
            loss(rng.normal(size=(3, 2)), np.zeros(4, dtype=int))

    def test_backward_before_forward_raises(self):
        with pytest.raises(AssertionError):
            CrossEntropyLoss().backward()


class TestMarginSoftmax:
    def test_zero_margin_unit_scale_is_cross_entropy(self, rng):
        logits = rng.normal(size=(5, 4)).astype(np.float64)
        targets = np.array([0, 3, 1, 2, 2])
        margin = MarginSoftmaxLoss(margin=0.0, scale=1.0)
        ce = CrossEntropyLoss()
        assert margin(logits, targets) == pytest.approx(
            ce(logits, targets), rel=1e-12
        )
        np.testing.assert_allclose(
            margin.backward(), ce.backward(), rtol=1e-12, atol=1e-15
        )

    def test_margin_penalizes_target_logit(self, rng):
        logits = rng.normal(size=(4, 3)).astype(np.float64)
        targets = np.array([0, 1, 2, 0])
        plain = MarginSoftmaxLoss(margin=0.0, scale=5.0)(logits, targets)
        hard = MarginSoftmaxLoss(margin=0.5, scale=5.0)(logits, targets)
        assert hard > plain

    def test_backward_matches_numerical(self, rng):
        """Float64 central differences on the exact backward."""
        loss = MarginSoftmaxLoss(margin=0.35, scale=10.0)
        logits = rng.normal(size=(3, 5)).astype(np.float64)
        targets = np.array([1, 4, 0])

        def f():
            return loss(logits, targets)

        f()
        analytic = loss.backward()
        numeric = numerical_gradient(f, logits)
        np.testing.assert_allclose(analytic, numeric, rtol=1e-4, atol=1e-7)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            MarginSoftmaxLoss(margin=-0.1)
        with pytest.raises(ValueError):
            MarginSoftmaxLoss(scale=0.0)
        loss = MarginSoftmaxLoss()
        with pytest.raises(ValueError):
            loss(rng.normal(size=(3,)), np.zeros(3, dtype=int))
        with pytest.raises(ValueError):
            loss(rng.normal(size=(3, 2)), np.zeros(4, dtype=int))
        with pytest.raises(AssertionError):
            MarginSoftmaxLoss().backward()


class TestCenterLoss:
    def test_value_matches_manual(self, rng):
        loss = CenterLoss(num_classes=3, feature_dim=4)
        loss.centers = rng.normal(size=(3, 4)).astype(np.float64)
        f = rng.normal(size=(5, 4)).astype(np.float64)
        y = np.array([0, 2, 1, 0, 2])
        want = 0.5 * ((f - loss.centers[y]) ** 2).sum() / 5
        assert loss(f, y) == pytest.approx(want, rel=1e-12)

    def test_backward_matches_numerical(self, rng):
        loss = CenterLoss(num_classes=3, feature_dim=4)
        loss.centers = rng.normal(size=(3, 4)).astype(np.float64)
        features = rng.normal(size=(6, 4)).astype(np.float64)
        targets = rng.integers(0, 3, size=6)

        def f():
            return loss(features, targets)

        f()
        analytic = loss.backward()
        numeric = numerical_gradient(f, features)
        np.testing.assert_allclose(analytic, numeric, rtol=1e-6, atol=1e-9)

    def test_update_centers_moves_toward_batch_mean(self, rng):
        loss = CenterLoss(num_classes=2, feature_dim=3, alpha=1.0)
        f = np.vstack([np.full((4, 3), 2.0), np.full((2, 3), -1.0)])
        y = np.array([0, 0, 0, 0, 1, 1])
        loss(f.astype(np.float64), y)
        loss.update_centers()
        # count-damped step: alpha * sum(diff) / (1 + count)
        np.testing.assert_allclose(loss.centers[0], 4 * 2.0 / 5 * np.ones(3))
        np.testing.assert_allclose(loss.centers[1], 2 * -1.0 / 3 * np.ones(3))

    def test_unseen_class_center_stays_put(self, rng):
        loss = CenterLoss(num_classes=3, feature_dim=2)
        loss(rng.normal(size=(4, 2)), np.array([0, 0, 1, 1]))
        loss.update_centers()
        np.testing.assert_array_equal(loss.centers[2], np.zeros(2))

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            CenterLoss(2, 3, alpha=0.0)
        loss = CenterLoss(2, 3)
        with pytest.raises(ValueError):
            loss(rng.normal(size=(2, 4)), np.zeros(2, dtype=int))
        with pytest.raises(ValueError):
            loss(rng.normal(size=(2, 3)), np.zeros(3, dtype=int))
        with pytest.raises(AssertionError):
            CenterLoss(2, 3).backward()


class TestMSE:
    def test_value_and_gradient(self, rng):
        loss = MSELoss()
        pred = rng.normal(size=(4, 3))
        target = rng.normal(size=(4, 3))
        val = loss(pred, target)
        assert val == pytest.approx(((pred - target) ** 2).mean())
        np.testing.assert_allclose(
            loss.backward(), 2 * (pred - target) / pred.size, rtol=1e-6
        )

    def test_shape_mismatch(self, rng):
        with pytest.raises(ValueError):
            MSELoss()(rng.normal(size=(2, 2)), rng.normal(size=(2, 3)))


class TestMetrics:
    def test_top1(self):
        logits = np.array([[0.9, 0.1], [0.2, 0.8], [0.6, 0.4]])
        targets = np.array([0, 1, 1])
        assert topk_accuracy(logits, targets, k=1) == pytest.approx(2 / 3)

    def test_top5_always_geq_top1(self, rng):
        logits = rng.normal(size=(50, 10))
        targets = rng.integers(0, 10, size=50)
        assert topk_accuracy(logits, targets, k=5) >= topk_accuracy(logits, targets, k=1)

    def test_topk_perfect_when_k_equals_classes(self, rng):
        logits = rng.normal(size=(20, 4))
        targets = rng.integers(0, 4, size=20)
        assert topk_accuracy(logits, targets, k=4) == 1.0

    def test_k_validation(self, rng):
        with pytest.raises(ValueError):
            topk_accuracy(rng.normal(size=(2, 3)), np.zeros(2, dtype=int), k=4)

    def test_confusion_counts(self):
        logits = np.array([[1.0, 0.0], [1.0, 0.0], [0.0, 1.0]])
        targets = np.array([0, 1, 1])
        m = confusion_counts(logits, targets, 2)
        assert m[0, 0] == 1 and m[1, 0] == 1 and m[1, 1] == 1 and m.sum() == 3
