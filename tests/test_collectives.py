"""Ring collective algorithms: bit-level correctness and properties."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm.collectives import (
    binomial_broadcast,
    chunk_bounds,
    ring_allgather,
    ring_allreduce,
    ring_reduce_scatter,
)


class TestChunkBounds:
    def test_even_split(self):
        assert chunk_bounds(8, 4) == [(0, 2), (2, 4), (4, 6), (6, 8)]

    def test_ragged_split(self):
        bounds = chunk_bounds(10, 4)
        sizes = [hi - lo for lo, hi in bounds]
        assert sizes == [3, 3, 2, 2]
        assert bounds[-1][1] == 10

    @settings(max_examples=50, deadline=None)
    @given(n=st.integers(0, 1000), p=st.integers(1, 32))
    def test_partition_property(self, n, p):
        bounds = chunk_bounds(n, p)
        assert len(bounds) == p
        assert bounds[0][0] == 0 and bounds[-1][1] == n
        for (a0, a1), (b0, b1) in zip(bounds, bounds[1:]):
            assert a1 == b0 and a1 >= a0 and b1 >= b0


class TestRingAllreduce:
    @pytest.mark.parametrize("p", [1, 2, 3, 4, 7, 8])
    def test_sum_matches_reference(self, p, rng):
        bufs = [rng.normal(size=(5, 3)) for _ in range(p)]
        out = ring_allreduce(bufs)
        want = np.sum(bufs, axis=0)
        for r in range(p):
            np.testing.assert_allclose(out[r], want, rtol=1e-12)

    def test_all_ranks_identical(self, rng):
        bufs = [rng.normal(size=17).astype(np.float32) for _ in range(5)]
        out = ring_allreduce(bufs)
        for r in range(1, 5):
            np.testing.assert_array_equal(out[0], out[r])

    def test_payload_smaller_than_world(self, rng):
        """n < p leaves some chunks empty; result must still be exact."""
        bufs = [rng.normal(size=2) for _ in range(6)]
        out = ring_allreduce(bufs)
        np.testing.assert_allclose(out[3], np.sum(bufs, axis=0), rtol=1e-12)

    def test_inputs_not_mutated(self, rng):
        bufs = [rng.normal(size=8) for _ in range(3)]
        copies = [b.copy() for b in bufs]
        ring_allreduce(bufs)
        for b, c in zip(bufs, copies):
            np.testing.assert_array_equal(b, c)

    def test_shape_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            ring_allreduce([np.zeros(3), np.zeros(4)])

    def test_empty_list_raises(self):
        with pytest.raises(ValueError):
            ring_allreduce([])

    @settings(max_examples=30, deadline=None)
    @given(
        p=st.integers(1, 8),
        n=st.integers(1, 40),
        seed=st.integers(0, 10_000),
    )
    def test_property_matches_numpy_sum(self, p, n, seed):
        r = np.random.default_rng(seed)
        bufs = [r.normal(size=n) for _ in range(p)]
        out = ring_allreduce(bufs)
        want = np.sum(bufs, axis=0)
        for res in out:
            np.testing.assert_allclose(res, want, rtol=1e-10, atol=1e-12)


class TestReduceScatter:
    def test_ownership_layout(self, rng):
        """Rank r owns chunk (r+1) % p of the sum."""
        p = 4
        bufs = [rng.normal(size=8) for _ in range(p)]
        owned = ring_reduce_scatter(bufs)
        total = np.sum(bufs, axis=0)
        bounds = chunk_bounds(8, p)
        for r in range(p):
            lo, hi = bounds[(r + 1) % p]
            np.testing.assert_allclose(owned[r], total[lo:hi], rtol=1e-12)

    def test_single_rank(self, rng):
        buf = rng.normal(size=5)
        out = ring_reduce_scatter([buf])
        np.testing.assert_array_equal(out[0], buf)


class TestAllgather:
    @pytest.mark.parametrize("p", [1, 2, 3, 5, 8])
    def test_all_contributions_arrive(self, p, rng):
        contribs = [rng.normal(size=r + 1) for r in range(p)]
        gathered = ring_allgather(contribs)
        for r in range(p):
            assert len(gathered[r]) == p
            for i in range(p):
                np.testing.assert_array_equal(gathered[r][i], contribs[i])

    def test_copies_are_independent(self, rng):
        contribs = [rng.normal(size=3) for _ in range(2)]
        gathered = ring_allgather(contribs)
        gathered[0][1][...] = 0.0
        assert not np.all(gathered[1][1] == 0.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            ring_allgather([])


class TestBroadcast:
    @pytest.mark.parametrize("p,root", [(1, 0), (4, 0), (5, 3), (8, 7)])
    def test_everyone_receives_copy(self, p, root, rng):
        value = rng.normal(size=(2, 2))
        out = binomial_broadcast(value, p, root)
        assert len(out) == p
        for copy in out:
            np.testing.assert_array_equal(copy, value)
            assert copy is not value

    def test_bad_root_raises(self):
        with pytest.raises(ValueError):
            binomial_broadcast(np.zeros(1), 4, root=4)
